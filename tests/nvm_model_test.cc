// Second-layer NVM model tests: sequential-prefetch accounting, bandwidth
// pacing, and generation alignment (gen_sync).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/nvm/bandwidth.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/pool_file.h"
#include "src/nvm/shadow.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/pmem/heap.h"
#include "src/sync/gen_sync.h"
#include "src/sync/version_lock.h"

namespace pactree {
namespace {

class NvmModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    DropThreadReadCache();
  }
};

TEST_F(NvmModelTest, SequentialReadsAreCheaperThanRandom) {
  NvmConfig& cfg = GlobalNvmConfig();
  cfg.emulate_latency = true;
  cfg.read_miss_ns = 2000;  // exaggerate so timing dominates noise
  cfg.seq_read_ns = 100;
  std::string path = NvmConfig::DefaultPoolDir() + "/nvm_model_seq.pool";
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 8 << 20, 0, 5));
  char* base = static_cast<char*>(f.base());

  // Sequential: one 64 KiB pass = 256 XPLines, all but the first sequential.
  DropThreadReadCache();
  uint64_t t0 = NowNs();
  AnnotateNvmRead(base, 64 << 10);
  uint64_t seq_ns = NowNs() - t0;

  // Random: the same 256 XPLines in a scattered order.
  DropThreadReadCache();
  t0 = NowNs();
  for (int i = 0; i < 256; ++i) {
    int line = (i * 97) % 256;
    AnnotateNvmRead(base + (1 << 20) + line * 256, 1);
  }
  uint64_t rnd_ns = NowNs() - t0;
  EXPECT_GT(rnd_ns, seq_ns * 3) << "FH3: sequential must be several times faster";
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmModelTest, TokenBucketPacesSustainedTraffic) {
  TokenBucket bucket;
  bucket.Configure(/*bytes_per_sec=*/100 * 1000 * 1000, /*burst=*/64 * 1024);
  // 10 MB at 100 MB/s should take ~100 ms (minus one burst allowance).
  uint64_t t0 = NowNs();
  for (int i = 0; i < 160; ++i) {
    bucket.Consume(64 * 1024);
  }
  double secs = static_cast<double>(NowNs() - t0) / 1e9;
  EXPECT_GT(secs, 0.07);
  EXPECT_LT(secs, 0.3);
}

TEST_F(NvmModelTest, TokenBucketUnconfiguredIsFree) {
  TokenBucket bucket;
  uint64_t t0 = NowNs();
  for (int i = 0; i < 1000; ++i) {
    bucket.Consume(1 << 20);
  }
  EXPECT_LT(NowNs() - t0, 10'000'000u) << "unconfigured bucket must not throttle";
}

TEST_F(NvmModelTest, AdvanceGenerationsVoidsHeldLocks) {
  PmemHeap::Destroy("gen_test");
  PmemHeapOptions opts;
  opts.pool_id_base = 90;
  opts.pool_size = 8 << 20;
  auto heap = PmemHeap::OpenOrCreate("gen_test", opts);
  ASSERT_NE(heap, nullptr);
  AdvanceGenerations({heap.get()});

  auto* lock = static_cast<OptVersionLock*>(heap->Alloc(64).get());
  lock->WriteLock();
  EXPECT_TRUE(lock->IsLocked());
  // A "reopen": every pool generation moves past the global one.
  uint32_t g = AdvanceGenerations({heap.get()});
  EXPECT_GT(g, 0u);
  uint64_t token;
  EXPECT_TRUE(lock->TryReadLock(&token)) << "held lock must be void after open";
  heap.reset();
  PmemHeap::Destroy("gen_test");
}

TEST_F(NvmModelTest, AdvanceGenerationsIsMonotonic) {
  PmemHeap::Destroy("gen_test2");
  PmemHeapOptions opts;
  opts.pool_id_base = 95;
  opts.pool_size = 8 << 20;
  auto heap = PmemHeap::OpenOrCreate("gen_test2", opts);
  uint32_t g1 = AdvanceGenerations({heap.get()});
  uint32_t g2 = AdvanceGenerations({heap.get()});
  EXPECT_GT(g2, g1);
  EXPECT_EQ(GlobalGeneration(), g2);
  EXPECT_EQ(heap->generation(), g2);
  heap.reset();
  PmemHeap::Destroy("gen_test2");
}

TEST_F(NvmModelTest, RemoteAccessCountsAgainstOtherNode) {
  GlobalNvmConfig().numa_nodes = 2;
  std::string path = NvmConfig::DefaultPoolDir() + "/nvm_model_remote.pool";
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, /*node=*/1, 6));
  SetCurrentNumaNode(0);
  DropThreadReadCache();
  NvmStatsSnapshot before = GlobalNvmStats();
  AnnotateNvmRead(f.base(), 1024);
  PersistFence(f.base(), 64);
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.remote_reads, 4u);
  EXPECT_EQ(d.remote_writes, 1u);
  // Same accesses from the owning node are local.
  SetCurrentNumaNode(1);
  DropThreadReadCache();
  before = GlobalNvmStats();
  AnnotateNvmRead(static_cast<char*>(f.base()) + 4096, 1024);
  d = GlobalNvmStats() - before;
  EXPECT_EQ(d.remote_reads, 0u);
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmModelTest, ChaosCaptureIsDeterministicForSeed) {
  // Eviction decisions must be a pure function of (seed, region, line offset):
  // a crash-point sweep re-runs the same trace with the same seed and relies
  // on observing the same durable image both times (regression test for the
  // draw-count-dependent eviction sampling this replaced).
  std::string path = NvmConfig::DefaultPoolDir() + "/nvm_model_chaos.pool";
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, 0, 7));
  char* base = static_cast<char*>(f.base());
  auto run = [&](uint64_t seed) {
    std::memset(base, 0, 1 << 20);
    ShadowHeap::Enable(base, 1 << 20);
    for (int i = 0; i < 1024; ++i) {
      base[i * 64] = static_cast<char>(i | 1);
      if (i % 3 == 0) {
        PersistRange(base + i * 64, 1);  // fenced below: durable
      }
    }
    Fence();
    for (int i = 0; i < 1024; ++i) {
      base[i * 64 + 1] = 7;  // never flushed: survives only via chaos eviction
    }
    std::vector<uint8_t> img = ShadowHeap::Capture(CrashMode::kChaos, seed, 0.2);
    ShadowHeap::Disable();
    return img;
  };
  std::vector<uint8_t> a = run(42);
  std::vector<uint8_t> b = run(42);
  std::vector<uint8_t> c = run(43);
  EXPECT_EQ(a, b) << "same seed must evict the same lines";
  EXPECT_NE(a, c) << "different seeds must pick different eviction sets";
  f.Close();
  NvmPoolFile::Remove(path);
}

}  // namespace
}  // namespace pactree
