#include "src/pactree/pactree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

class PacTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PacTree::Destroy("pt_test");
    opts_.name = "pt_test";
    opts_.pool_id_base = 100;
    opts_.pool_size = 256 << 20;
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("pt_test");
  }

  void Reopen() {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  PacTreeOptions opts_;
  std::unique_ptr<PacTree> tree_;
};

TEST_F(PacTreeTest, EmptyLookup) {
  uint64_t v;
  EXPECT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kNotFound);
  EXPECT_EQ(tree_->Size(), 0u);
}

TEST_F(PacTreeTest, InsertLookupBasic) {
  EXPECT_EQ(tree_->Insert(Key::FromInt(10), 100), Status::kOk);
  uint64_t v = 0;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(10), &v), Status::kOk);
  EXPECT_EQ(v, 100u);
  EXPECT_EQ(tree_->Insert(Key::FromInt(10), 200), Status::kExists);
  ASSERT_EQ(tree_->Lookup(Key::FromInt(10), &v), Status::kOk);
  EXPECT_EQ(v, 200u);
}

TEST_F(PacTreeTest, UpdateRequiresExistence) {
  EXPECT_EQ(tree_->Update(Key::FromInt(5), 1), Status::kNotFound);
  tree_->Insert(Key::FromInt(5), 1);
  EXPECT_EQ(tree_->Update(Key::FromInt(5), 2), Status::kOk);
  uint64_t v;
  tree_->Lookup(Key::FromInt(5), &v);
  EXPECT_EQ(v, 2u);
}

TEST_F(PacTreeTest, RemoveBasic) {
  tree_->Insert(Key::FromInt(1), 1);
  EXPECT_EQ(tree_->Remove(Key::FromInt(1)), Status::kOk);
  EXPECT_EQ(tree_->Remove(Key::FromInt(1)), Status::kNotFound);
  EXPECT_EQ(tree_->Lookup(Key::FromInt(1), nullptr), Status::kNotFound);
}

TEST_F(PacTreeTest, SplitsUnderSequentialLoad) {
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 7), Status::kOk) << i;
  }
  EXPECT_GT(tree_->Stats().splits, kN / 64) << "node splits must have happened";
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 7);
  }
  EXPECT_EQ(tree_->Size(), kN);
  std::string why;
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_F(PacTreeTest, RandomKeysAgainstModel) {
  Rng rng(2024);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 80000; ++i) {
    uint64_t k = rng.Next() >> 16;
    model[k] = i;
    tree_->Insert(Key::FromInt(k), i);
  }
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &got), Status::kOk) << k;
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(tree_->Size(), model.size());
}

TEST_F(PacTreeTest, StringKeys) {
  Rng rng(7);
  std::map<std::string, uint64_t> model;
  for (int i = 0; i < 40000; ++i) {
    std::string s = "user" + std::to_string(rng.Uniform(10000000));
    model[s] = i;
    tree_->Insert(Key::FromString(s), i);
  }
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(Key::FromString(k), &got), Status::kOk) << k;
    ASSERT_EQ(got, v);
  }
}

TEST_F(PacTreeTest, ScanMatchesSortedModel) {
  Rng rng(31);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = rng.Next() >> 20;
    model[k] = i;
    tree_->Insert(Key::FromInt(k), i);
  }
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t start = rng.Next() >> 20;
    std::vector<std::pair<Key, uint64_t>> out;
    size_t n = tree_->Scan(Key::FromInt(start), 100, &out);
    auto it = model.lower_bound(start);
    size_t expect = 0;
    for (auto jt = it; jt != model.end() && expect < 100; ++jt) {
      expect++;
    }
    ASSERT_EQ(n, expect) << start;
    for (size_t i = 0; i < n; ++i, ++it) {
      ASSERT_EQ(out[i].first.ToInt(), it->first);
      ASSERT_EQ(out[i].second, it->second);
    }
  }
}

TEST_F(PacTreeTest, MergeOnMassDelete) {
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  for (uint64_t i = 0; i < kN; ++i) {
    if (i % 10 != 0) {
      ASSERT_EQ(tree_->Remove(Key::FromInt(i)), Status::kOk) << i;
    }
  }
  EXPECT_GT(tree_->Stats().merges, 0u) << "merges must trigger on underflow";
  tree_->DrainSmoLogs();
  for (uint64_t i = 0; i < kN; ++i) {
    Status expect = (i % 10 == 0) ? Status::kOk : Status::kNotFound;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), nullptr), expect) << i;
  }
  EXPECT_EQ(tree_->Size(), kN / 10);
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
  // Scans across merged regions stay correct.
  std::vector<std::pair<Key, uint64_t>> out;
  size_t n = tree_->Scan(Key::FromInt(0), 1000, &out);
  ASSERT_EQ(n, 1000u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].first.ToInt(), i * 10);
  }
}

TEST_F(PacTreeTest, PersistsAcrossReopen) {
  constexpr uint64_t kN = 30000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(Key::FromInt(i * 3), i);
  }
  Reopen();
  EXPECT_EQ(tree_->Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i * 3), &v), Status::kOk) << i;
    ASSERT_EQ(v, i);
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
  // And it is still writable.
  tree_->Insert(Key::FromInt(1), 42);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kOk);
  EXPECT_EQ(v, 42u);
}

TEST_F(PacTreeTest, SyncSearchLayerMode) {
  tree_.reset();
  PacTree::Destroy("pt_test");
  opts_.async_search_update = false;
  tree_ = PacTree::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < 30000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  for (uint64_t i = 0; i < 30000; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk);
  }
  // In sync mode every lookup should land directly on the target node.
  auto stats = tree_->Stats();
  EXPECT_GT(stats.jump_hops[0], 0u);
}

TEST_F(PacTreeTest, DramSearchLayerModeSurvivesReopenByRebuild) {
  tree_.reset();
  PacTree::Destroy("pt_test");
  opts_.dram_search_layer = true;
  tree_ = PacTree::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < 20000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  tree_.reset();
  EpochManager::Instance().DrainAll();
  tree_ = PacTree::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < 20000; i += 91) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
  }
  EXPECT_EQ(tree_->Size(), 20000u);
}

TEST_F(PacTreeTest, NonSelectivePersistenceMode) {
  tree_.reset();
  PacTree::Destroy("pt_test");
  opts_.selective_persistence = false;
  tree_ = PacTree::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < 10000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  std::vector<std::pair<Key, uint64_t>> out;
  EXPECT_EQ(tree_->Scan(Key::FromInt(100), 50, &out), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i].first.ToInt(), 100 + i);
  }
}

TEST_F(PacTreeTest, JumpHopsObservedUnderAsyncUpdates) {
  // Heavy sequential inserts outpace the updater (worst case for the async
  // design); the jump-node fix-up must absorb the inconsistency.
  for (uint64_t i = 0; i < 100000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  auto s = tree_->Stats();
  uint64_t total = s.jump_hops[0] + s.jump_hops[1] + s.jump_hops[2] + s.jump_hops[3];
  EXPECT_GT(total, 0u);
  // Once the search layer catches up, lookups land directly on the target.
  tree_->DrainSmoLogs();
  auto before = tree_->Stats();
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i * 97 % 100000), &v), Status::kOk);
  }
  auto after = tree_->Stats();
  EXPECT_EQ(after.jump_hops[0] - before.jump_hops[0], 1000u)
      << "all post-drain lookups must be direct (paper §6.7)";
}

TEST_F(PacTreeTest, ConcurrentInsertLookup) {
  constexpr int kWriters = 3;
  constexpr uint64_t kPerThread = 30000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = i * kWriters + t;
        tree_->Insert(Key::FromInt(k), k);
      }
    });
  }
  std::atomic<bool> fail{false};
  std::thread reader([&] {
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
      uint64_t k = rng.Uniform(kPerThread * kWriters);
      uint64_t v;
      if (tree_->Lookup(Key::FromInt(k), &v) == Status::kOk && v != k) {
        fail.store(true);
      }
    }
  });
  for (auto& th : threads) {
    th.join();
  }
  reader.join();
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(tree_->Size(), kPerThread * kWriters);
  tree_->DrainSmoLogs();
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_F(PacTreeTest, ConcurrentMixedOpsInvariants) {
  constexpr uint64_t kSpace = 40000;
  for (uint64_t i = 0; i < kSpace; i += 2) {
    tree_->Insert(Key::FromInt(i), i);
  }
  std::vector<std::thread> threads;
  std::atomic<bool> fail{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 100);
      std::vector<std::pair<Key, uint64_t>> out;
      for (int i = 0; i < 20000; ++i) {
        uint64_t k = rng.Uniform(kSpace);
        switch (rng.Uniform(5)) {
          case 0:
            tree_->Insert(Key::FromInt(k), k);
            break;
          case 1:
            tree_->Remove(Key::FromInt(k));
            break;
          case 2: {
            tree_->Scan(Key::FromInt(k), 20, &out);
            for (size_t j = 1; j < out.size(); ++j) {
              if (!(out[j - 1].first < out[j].first)) {
                fail.store(true);
              }
            }
            break;
          }
          default: {
            uint64_t v;
            if (tree_->Lookup(Key::FromInt(k), &v) == Status::kOk && v != k) {
              fail.store(true);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(fail.load());
  tree_->DrainSmoLogs();
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_F(PacTreeTest, ReopenAfterMixedWorkloadPreservesEverything) {
  Rng rng(55);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = rng.Uniform(100000);
    if (rng.Uniform(4) == 0) {
      model.erase(k);
      tree_->Remove(Key::FromInt(k));
    } else {
      model[k] = i;
      tree_->Insert(Key::FromInt(k), i);
    }
  }
  Reopen();
  EXPECT_EQ(tree_->Size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &got), Status::kOk) << k;
    ASSERT_EQ(got, v);
  }
  // Scan equivalence.
  std::vector<std::pair<Key, uint64_t>> out;
  tree_->Scan(Key::Min(), model.size() + 10, &out);
  ASSERT_EQ(out.size(), model.size());
  auto it = model.begin();
  for (size_t i = 0; i < out.size(); ++i, ++it) {
    ASSERT_EQ(out[i].first.ToInt(), it->first);
  }
}

}  // namespace
}  // namespace pactree
