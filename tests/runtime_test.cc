// Tests for the per-thread runtime layer: ThreadContext registration and
// teardown, per-instance scratch words, epoch-record lifecycle, and the
// fold-at-exit behavior of the NVM traffic counters.
#include "src/runtime/thread_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/nvm/config.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

TEST(ThreadRegistryTest, LiveCountReturnsToBaselineAfterJoin) {
  ThreadContext::Current();  // the test thread is part of the baseline
  size_t baseline = ThreadRegistry::Instance().LiveCount();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] { ThreadContext::Current(); });
  }
  for (auto& t : threads) {
    t.join();
  }
  // join() returns only after the thread's TLS destructors ran, so the
  // contexts are already torn down.
  EXPECT_EQ(ThreadRegistry::Instance().LiveCount(), baseline);
}

TEST(ThreadRegistryTest, TidsAreUnique) {
  constexpr int kThreads = 16;
  std::mutex mu;
  std::set<uint32_t> tids;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      uint32_t tid = ThreadContext::Current().tid();
      std::lock_guard<std::mutex> lock(mu);
      tids.insert(tid);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(tids.count(ThreadContext::Current().tid()), 0u);
}

TEST(ThreadRegistryTest, ExplicitUnregisterAllowsReRegistration) {
  std::thread([] {
    uint32_t tid1 = ThreadContext::Current().tid();
    ThreadRegistry::UnregisterCurrentThread();
    EXPECT_EQ(ThreadContext::CurrentIfRegistered(), nullptr);
    // The same OS thread re-registers as a logically fresh thread.
    uint32_t tid2 = ThreadContext::Current().tid();
    EXPECT_NE(tid1, tid2);
  }).join();
}

TEST(ThreadRegistryTest, ScopeTearsDownOnExit) {
  std::thread([] {
    {
      ThreadContextScope scope;
      EXPECT_NE(ThreadContext::CurrentIfRegistered(), nullptr);
    }
    EXPECT_EQ(ThreadContext::CurrentIfRegistered(), nullptr);
  }).join();
}

TEST(ThreadRegistryTest, ForEachSeesLiveThreads) {
  ThreadContext::Current();
  std::atomic<bool> go{false};
  std::atomic<bool> ready{false};
  std::thread helper([&] {
    ThreadContext::Current();
    ready.store(true);
    while (!go.load()) {
      std::this_thread::yield();
    }
  });
  while (!ready.load()) {
    std::this_thread::yield();
  }
  size_t seen = 0;
  ThreadRegistry::Instance().ForEach([&](ThreadContext&) { seen++; });
  EXPECT_GE(seen, 2u);
  go.store(true);
  helper.join();
}

TEST(InstanceWordTest, KeyedByOwnerAndTag) {
  int owner_a = 0;
  int owner_b = 0;
  ThreadContext& ctx = ThreadContext::Current();
  EXPECT_EQ(ctx.InstanceWord(&owner_a), 0u);  // zero-initialized on first use
  ctx.InstanceWord(&owner_a) = 7;
  ctx.InstanceWord(&owner_b) = 9;
  ctx.InstanceWord(&owner_a, /*tag=*/1) = 11;
  EXPECT_EQ(ctx.InstanceWord(&owner_a), 7u);
  EXPECT_EQ(ctx.InstanceWord(&owner_b), 9u);
  EXPECT_EQ(ctx.InstanceWord(&owner_a, /*tag=*/1), 11u);
}

TEST(InstanceWordTest, IndependentAcrossThreads) {
  int owner = 0;
  ThreadContext::Current().InstanceWord(&owner) = 42;
  std::thread([&] {
    EXPECT_EQ(ThreadContext::Current().InstanceWord(&owner), 0u);
    ThreadContext::Current().InstanceWord(&owner) = 17;
  }).join();
  EXPECT_EQ(ThreadContext::Current().InstanceWord(&owner), 42u);
}

// Regression test for the epoch-record leak: the old EpochManager pushed one
// ThreadRecord per thread into a process-global vector and never removed it,
// so every epoch advance scanned every thread that had EVER existed. Records
// now live in the thread's ThreadContext and die with it.
TEST(EpochRecordTest, RecordCountReturnsToBaselineAfterJoin) {
  EpochManager& mgr = EpochManager::Instance();
  { EpochGuard g; }  // the test thread holds a record and is the baseline
  size_t baseline = mgr.LiveRecordCount();
  EXPECT_GE(baseline, 1u);

  constexpr int kThreads = 8;
  std::atomic<int> entered{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      { EpochGuard g; }
      entered.fetch_add(1);
      while (!go.load()) {
        std::this_thread::yield();
      }
    });
  }
  while (entered.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(mgr.LiveRecordCount(), baseline + kThreads);
  go.store(true);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(mgr.LiveRecordCount(), baseline);
  // The manager stays functional with the records gone.
  mgr.TryAdvanceAndReclaim();
  uint64_t e = mgr.CurrentEpoch();
  mgr.TryAdvanceAndReclaim();
  EXPECT_GE(mgr.CurrentEpoch(), e);
}

TEST(EpochRecordTest, ActiveGuardBlocksAdvance) {
  EpochManager& mgr = EpochManager::Instance();
  std::atomic<bool> in_guard{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    EpochGuard g;
    in_guard.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!in_guard.load()) {
    std::this_thread::yield();
  }
  uint64_t pinned = mgr.CurrentEpoch();
  // The holder pins the epoch: repeated advances make at most one step (the
  // advance that was already permitted when the holder entered).
  for (int i = 0; i < 5; ++i) {
    mgr.TryAdvanceAndReclaim();
  }
  EXPECT_LE(mgr.CurrentEpoch(), pinned + 1);
  release.store(true);
  holder.join();
}

// Exited threads' traffic folds into the process-wide totals: the aggregate
// must not drop when a worker joins.
TEST(NvmStatsFoldTest, ExitedThreadCountersFoldIntoGlobals) {
  uint64_t before = GlobalNvmStats().fences;
  std::thread([] { LocalNvmCounters().fences += 123; }).join();
  EXPECT_GE(GlobalNvmStats().fences - before, 123u);
}

TEST(TopologyTest, NumaAssignmentIsPerThread) {
  NvmConfig saved = GlobalNvmConfig();
  GlobalNvmConfig() = NvmConfig();
  GlobalNvmConfig().numa_nodes = 2;
  SetCurrentNumaNode(1);
  std::thread([] {
    SetCurrentNumaNode(0);
    EXPECT_EQ(CurrentNumaNode(), 0u);
  }).join();
  EXPECT_EQ(CurrentNumaNode(), 1u);
  GlobalNvmConfig() = saved;
}

TEST(TopologyTest, AssignWorkerThreadStripesAcrossNodes) {
  NvmConfig saved = GlobalNvmConfig();
  GlobalNvmConfig() = NvmConfig();
  GlobalNvmConfig().numa_nodes = 2;
  for (uint32_t w : {0u, 1u, 2u, 5u}) {
    std::thread([w] {
      AssignWorkerThread(w);
      EXPECT_EQ(CurrentNumaNode(), w % 2);
    }).join();
  }
  GlobalNvmConfig() = saved;
}

}  // namespace
}  // namespace pactree
