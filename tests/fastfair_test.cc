#include "src/baselines/fastfair.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

class FastFairTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    FastFair::Destroy("ff_test");
    opts_.name = "ff_test";
    opts_.pool_id_base = 200;
    opts_.pool_size = 256 << 20;
    opts_.string_keys = GetParam();
    tree_ = FastFair::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    FastFair::Destroy("ff_test");
  }

  Key MakeKey(uint64_t i) const {
    if (opts_.string_keys) {
      return Key::FromString("user" + std::to_string(10000000 + i));
    }
    return Key::FromInt(i);
  }

  FastFairOptions opts_;
  std::unique_ptr<FastFair> tree_;
};

TEST_P(FastFairTest, EmptyLookup) {
  EXPECT_EQ(tree_->Lookup(MakeKey(1), nullptr), Status::kNotFound);
}

TEST_P(FastFairTest, InsertLookupUpsert) {
  EXPECT_EQ(tree_->Insert(MakeKey(5), 50), Status::kOk);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(MakeKey(5), &v), Status::kOk);
  EXPECT_EQ(v, 50u);
  EXPECT_EQ(tree_->Insert(MakeKey(5), 51), Status::kExists);
  ASSERT_EQ(tree_->Lookup(MakeKey(5), &v), Status::kOk);
  EXPECT_EQ(v, 51u);
}

TEST_P(FastFairTest, BulkSequential) {
  constexpr uint64_t kN = 60000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(MakeKey(i), i), Status::kOk) << i;
  }
  EXPECT_EQ(tree_->Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(MakeKey(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i);
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_P(FastFairTest, RandomAgainstModel) {
  Rng rng(77);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 40000; ++i) {
    uint64_t k = rng.Uniform(1 << 24);
    model[k] = i;
    tree_->Insert(MakeKey(k), i);
  }
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(MakeKey(k), &got), Status::kOk) << k;
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(tree_->Size(), model.size());
}

TEST_P(FastFairTest, RemoveHalf) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(MakeKey(i), i);
  }
  for (uint64_t i = 0; i < kN; i += 2) {
    ASSERT_EQ(tree_->Remove(MakeKey(i)), Status::kOk) << i;
  }
  for (uint64_t i = 0; i < kN; ++i) {
    Status expect = (i % 2 == 0) ? Status::kNotFound : Status::kOk;
    ASSERT_EQ(tree_->Lookup(MakeKey(i), nullptr), expect) << i;
  }
}

TEST_P(FastFairTest, ScanSortedAndComplete) {
  // Dense integer keys scan in order in both key modes (string keys of equal
  // length sort like their numeric suffix).
  constexpr uint64_t kN = 30000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(MakeKey(i), i);
  }
  std::vector<std::pair<Key, uint64_t>> out;
  size_t n = tree_->Scan(MakeKey(1000), 200, &out);
  ASSERT_EQ(n, 200u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].second, 1000 + i);
    if (i > 0) {
      EXPECT_LT(out[i - 1].first.Compare(out[i].first), 0);
    }
  }
}

TEST_P(FastFairTest, PersistsAcrossReopen) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(MakeKey(i * 3), i);
  }
  tree_.reset();
  EpochManager::Instance().DrainAll();
  tree_ = FastFair::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(MakeKey(i * 3), &v), Status::kOk) << i;
    ASSERT_EQ(v, i);
  }
}

TEST_P(FastFairTest, ConcurrentInsertsAndReads) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 15000;
  std::vector<std::thread> threads;
  std::atomic<bool> fail{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = i * kThreads + static_cast<uint64_t>(t);
        tree_->Insert(MakeKey(k), k);
        if (i % 7 == 0) {
          uint64_t probe = rng.Uniform(i + 1) * kThreads + static_cast<uint64_t>(t);
          uint64_t v;
          if (tree_->Lookup(MakeKey(probe), &v) == Status::kOk && v != probe) {
            fail.store(true);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(tree_->Size(), kPerThread * kThreads);
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(IntAndString, FastFairTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "StringKeys" : "IntKeys";
                         });

TEST(FastFairStringCost, StringKeysReadMoreNvm) {
  // GA1/Figure 4 precondition: the string-key mode must do more NVM reads per
  // lookup than the integer mode (out-of-node key records).
  GlobalNvmConfig() = NvmConfig();
  SetCurrentNumaNode(0);
  auto run = [](bool strings) {
    FastFair::Destroy("ff_cost");
    FastFairOptions o;
    o.name = "ff_cost";
    o.pool_id_base = 210;
    o.pool_size = 128 << 20;
    o.string_keys = strings;
    auto tree = FastFair::Open(o);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
      uint64_t k = rng.Uniform(1 << 30);
      tree->Insert(strings ? Key::FromString("user" + std::to_string(k))
                           : Key::FromInt(k),
                   k);
    }
    NvmStatsSnapshot before = GlobalNvmStats();
    Rng rng2(5);
    for (int i = 0; i < 20000; ++i) {
      uint64_t k = rng2.Uniform(1 << 30);
      tree->Lookup(strings ? Key::FromString("user" + std::to_string(k))
                           : Key::FromInt(k),
                   nullptr);
    }
    uint64_t reads = (GlobalNvmStats() - before).media_read_bytes;
    tree.reset();
    FastFair::Destroy("ff_cost");
    return reads;
  };
  uint64_t int_reads = run(false);
  uint64_t str_reads = run(true);
  EXPECT_GT(str_reads, int_reads * 2) << "string lookups must chase key pointers";
}

}  // namespace
}  // namespace pactree
