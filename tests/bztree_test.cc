#include "src/baselines/bztree.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "src/common/failpoint.h"
#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/pmem/registry.h"
#include "src/pmwcas/pmwcas.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"

namespace pactree {
namespace {

// --- PMwCAS substrate --------------------------------------------------------

class PmwcasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PmemHeap::Destroy("pmwcas_test");
    PmemHeapOptions opts;
    opts.pool_id_base = 70;
    opts.pool_size = 64 << 20;
    heap_ = PmemHeap::OpenOrCreate("pmwcas_test", opts);
    ASSERT_NE(heap_, nullptr);
    AdvanceGenerations({heap_.get()});
    anchor_ = static_cast<uint64_t*>(heap_->Root<uint64_t>());
    *anchor_ = 0;
    pool_ = std::make_unique<PmwcasPool>(heap_.get(), anchor_, 256);
    words_ = static_cast<uint64_t*>(heap_->Alloc(4096).get());
  }

  void TearDown() override {
    FailPoints::DisarmAll();
    pool_.reset();
    EpochManager::Instance().DrainAll();
    heap_.reset();
    PmemHeap::Destroy("pmwcas_test");
  }

  std::unique_ptr<PmemHeap> heap_;
  uint64_t* anchor_ = nullptr;
  std::unique_ptr<PmwcasPool> pool_;
  uint64_t* words_ = nullptr;
};

TEST_F(PmwcasTest, SingleWordSwap) {
  words_[0] = 5;
  PmwcasWordEntry e = {ToPPtr(&words_[0]).raw, 5, 9};
  EXPECT_TRUE(pool_->Run(&e, 1));
  EXPECT_EQ(pool_->ReadWord(&words_[0]), 9u);
}

TEST_F(PmwcasTest, FailsOnMismatch) {
  words_[0] = 5;
  PmwcasWordEntry e = {ToPPtr(&words_[0]).raw, 6, 9};
  EXPECT_FALSE(pool_->Run(&e, 1));
  EXPECT_EQ(pool_->ReadWord(&words_[0]), 5u);
}

TEST_F(PmwcasTest, MultiWordAllOrNothing) {
  words_[0] = 1;
  words_[8] = 2;
  words_[16] = 3;
  PmwcasWordEntry ok[3] = {{ToPPtr(&words_[0]).raw, 1, 10},
                           {ToPPtr(&words_[8]).raw, 2, 20},
                           {ToPPtr(&words_[16]).raw, 3, 30}};
  EXPECT_TRUE(pool_->Run(ok, 3));
  PmwcasWordEntry bad[3] = {{ToPPtr(&words_[0]).raw, 10, 11},
                            {ToPPtr(&words_[8]).raw, 99, 21},  // mismatch
                            {ToPPtr(&words_[16]).raw, 30, 31}};
  EXPECT_FALSE(pool_->Run(bad, 3));
  EXPECT_EQ(pool_->ReadWord(&words_[0]), 10u) << "failed PMwCAS must roll back";
  EXPECT_EQ(pool_->ReadWord(&words_[8]), 20u);
  EXPECT_EQ(pool_->ReadWord(&words_[16]), 30u);
}

TEST_F(PmwcasTest, CheckEntrySameOldNew) {
  words_[0] = 7;
  words_[8] = 1;
  PmwcasWordEntry e[2] = {{ToPPtr(&words_[0]).raw, 7, 7},  // pure check
                          {ToPPtr(&words_[8]).raw, 1, 2}};
  EXPECT_TRUE(pool_->Run(e, 2));
  EXPECT_EQ(pool_->ReadWord(&words_[0]), 7u);
  EXPECT_EQ(pool_->ReadWord(&words_[8]), 2u);
}

TEST_F(PmwcasTest, ConcurrentCountersLinearize) {
  words_[0] = 0;
  words_[8] = 0;
  constexpr int kThreads = 4;
  constexpr int kIncs = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncs; ++i) {
        while (true) {
          // Per-attempt guard: a guard held across retries would stall
          // descriptor recycling forever.
          EpochGuard guard;
          uint64_t a = pool_->ReadWord(&words_[0]);
          uint64_t b = pool_->ReadWord(&words_[8]);
          PmwcasWordEntry e[2] = {{ToPPtr(&words_[0]).raw, a, a + 1},
                                  {ToPPtr(&words_[8]).raw, b, b + 1}};
          if (pool_->Run(e, 2)) {
            break;
          }
        }
        if (i % 64 == 0) {
          EpochManager::Instance().TryAdvanceAndReclaim();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EpochManager::Instance().DrainAll();
  EXPECT_EQ(pool_->ReadWord(&words_[0]), uint64_t{kThreads} * kIncs);
  EXPECT_EQ(pool_->ReadWord(&words_[8]), uint64_t{kThreads} * kIncs);
}

TEST_F(PmwcasTest, RecoveryRollsForwardAndBack) {
  words_[0] = 1;
  words_[8] = 2;
  // Forge an in-flight succeeded descriptor installed at words_[0].
  auto* descs = PPtr<PmwcasDescriptor>(*anchor_).get();
  descs[0].words[0] = {ToPPtr(&words_[0]).raw, 1, 100};
  descs[0].count = 1;
  descs[0].status = kPmwcasSucceeded;
  words_[0] = (*anchor_ + 0) | kPmwcasDescriptorFlag;
  // And an undecided one at words_[8].
  descs[1].words[0] = {ToPPtr(&words_[8]).raw, 2, 200};
  descs[1].count = 1;
  descs[1].status = kPmwcasUndecided;
  words_[8] = (*anchor_ + sizeof(PmwcasDescriptor)) | kPmwcasDescriptorFlag;

  pool_->Recover();
  EXPECT_EQ(words_[0], 100u) << "succeeded descriptor rolls forward";
  EXPECT_EQ(words_[8], 2u) << "undecided descriptor rolls back";
}

TEST_F(PmwcasTest, DescriptorExhaustionReportsAndRetrySucceeds) {
  // The "pmwcas/descriptor" fail point makes every Acquire fail, exactly like
  // a genuinely full pool. Run's internal reclamation retries cannot help, so
  // it must give up with *exhausted set -- and leave the target word
  // untouched. After disarming (the caller has unwound its epoch guard and
  // reclamation caught up), the same operation succeeds.
  words_[0] = 5;
  bool exhausted = false;
  PmwcasWordEntry e = {ToPPtr(&words_[0]).raw, 5, 9};
  FailPoints::Arm("pmwcas/descriptor", FailPointTrigger::EveryNth(1));
  EXPECT_FALSE(pool_->Run(&e, 1, &exhausted));
  EXPECT_TRUE(exhausted);
  FailPoints::DisarmAll();
  EXPECT_EQ(pool_->ReadWord(&words_[0]), 5u) << "exhaustion must not mutate";
  exhausted = false;
  EXPECT_TRUE(pool_->Run(&e, 1, &exhausted));
  EXPECT_FALSE(exhausted);
  EXPECT_EQ(pool_->ReadWord(&words_[0]), 9u);
}

TEST_F(PmwcasTest, TinyPoolExhaustsUnderPinnedEpochAndRecoversAfterUnwind) {
  // A capacity-1 pool: the first Run consumes the only descriptor and defers
  // its recycling by an epoch grace period. A caller that keeps its epoch
  // guard pinned blocks reclamation forever, so the next Run must report
  // exhaustion instead of spinning -- the header contract that callers MUST
  // unwind far enough to drop their guard. Dropping it lets Run's internal
  // TryAdvanceAndReclaim recycle the descriptor and the retry succeeds.
  uint64_t* anchor2 = &words_[32];
  *anchor2 = 0;
  PmwcasPool tiny(heap_.get(), anchor2, /*capacity=*/1);
  words_[0] = 1;
  PmwcasWordEntry first = {ToPPtr(&words_[0]).raw, 1, 2};
  ASSERT_TRUE(tiny.Run(&first, 1));
  bool exhausted = false;
  {
    EpochGuard guard;  // pins the grace period: the descriptor cannot recycle
    PmwcasWordEntry second = {ToPPtr(&words_[0]).raw, 2, 3};
    EXPECT_FALSE(tiny.Run(&second, 1, &exhausted));
    EXPECT_TRUE(exhausted);
    EXPECT_EQ(tiny.ReadWord(&words_[0]), 2u);
  }
  exhausted = false;
  PmwcasWordEntry retry = {ToPPtr(&words_[0]).raw, 2, 3};
  EXPECT_TRUE(tiny.Run(&retry, 1, &exhausted));
  EXPECT_FALSE(exhausted);
  EXPECT_EQ(tiny.ReadWord(&words_[0]), 3u);
}

// --- BzTree ------------------------------------------------------------------

class BzTreeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    BzTree::Destroy("bz_test");
    opts_.name = "bz_test";
    opts_.pool_id_base = 240;
    opts_.pool_size = 512 << 20;
    tree_ = BzTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    BzTree::Destroy("bz_test");
  }

  Key MakeKey(uint64_t i) const {
    if (GetParam()) {
      return Key::FromString("user" + std::to_string(10000000 + i));
    }
    return Key::FromInt(i);
  }

  BzTreeOptions opts_;
  std::unique_ptr<BzTree> tree_;
};

TEST_P(BzTreeTest, EmptyLookup) {
  EXPECT_EQ(tree_->Lookup(MakeKey(1), nullptr), Status::kNotFound);
}

TEST_P(BzTreeTest, InsertLookupUpsert) {
  EXPECT_EQ(tree_->Insert(MakeKey(3), 30), Status::kOk);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(MakeKey(3), &v), Status::kOk);
  EXPECT_EQ(v, 30u);
  EXPECT_EQ(tree_->Insert(MakeKey(3), 31), Status::kExists);
  ASSERT_EQ(tree_->Lookup(MakeKey(3), &v), Status::kOk);
  EXPECT_EQ(v, 31u);
}

TEST_P(BzTreeTest, BulkSequentialWithSmos) {
  constexpr uint64_t kN = 40000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(MakeKey(i), i + 1), Status::kOk) << i;
  }
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(MakeKey(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 1);
  }
  EXPECT_EQ(tree_->Size(), kN);
}

TEST_P(BzTreeTest, RandomAgainstModel) {
  Rng rng(777);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.Uniform(1 << 24);
    model[k] = i + 1;
    tree_->Insert(MakeKey(k), i + 1);
  }
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(MakeKey(k), &got), Status::kOk) << k;
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(tree_->Size(), model.size());
}

TEST_P(BzTreeTest, RemoveAndTombstones) {
  for (uint64_t i = 0; i < 5000; ++i) {
    tree_->Insert(MakeKey(i), i + 1);
  }
  for (uint64_t i = 0; i < 5000; i += 2) {
    ASSERT_EQ(tree_->Remove(MakeKey(i)), Status::kOk) << i;
  }
  EXPECT_EQ(tree_->Remove(MakeKey(0)), Status::kNotFound);
  for (uint64_t i = 0; i < 5000; ++i) {
    Status expect = (i % 2 == 0) ? Status::kNotFound : Status::kOk;
    ASSERT_EQ(tree_->Lookup(MakeKey(i), nullptr), expect) << i;
  }
  // Re-insert previously deleted keys.
  for (uint64_t i = 0; i < 5000; i += 2) {
    ASSERT_EQ(tree_->Insert(MakeKey(i), i + 100), Status::kOk) << i;
  }
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(MakeKey(0), &v), Status::kOk);
  EXPECT_EQ(v, 100u);
}

TEST_P(BzTreeTest, ScanOrdered) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(MakeKey(i), i);
  }
  std::vector<std::pair<Key, uint64_t>> out;
  size_t n = tree_->Scan(MakeKey(500), 100, &out);
  ASSERT_EQ(n, 100u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].second, 500 + i);
    if (i > 0) {
      EXPECT_LT(out[i - 1].first.Compare(out[i].first), 0);
    }
  }
}

TEST_P(BzTreeTest, PersistsAcrossReopen) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(MakeKey(i * 3), i + 1);
  }
  tree_.reset();
  EpochManager::Instance().DrainAll();
  tree_ = BzTree::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(MakeKey(i * 3), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 1);
  }
}

TEST_P(BzTreeTest, ConcurrentInserts) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = i * kThreads + static_cast<uint64_t>(t);
        tree_->Insert(MakeKey(k), k + 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (uint64_t k = 0; k < kPerThread * kThreads; k += 37) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(MakeKey(k), &v), Status::kOk) << k;
    ASSERT_EQ(v, k + 1);
  }
  EXPECT_EQ(tree_->Size(), kPerThread * kThreads);
}

INSTANTIATE_TEST_SUITE_P(IntAndString, BzTreeTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "StringKeys" : "IntKeys";
                         });

}  // namespace
}  // namespace pactree
