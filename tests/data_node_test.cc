#include "src/pactree/data_node.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/pmem/heap.h"

namespace pactree {
namespace {

class DataNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PmemHeap::Destroy("dn_test");
    PmemHeapOptions opts;
    opts.pool_id_base = 80;
    opts.pool_size = 16 << 20;
    heap_ = PmemHeap::OpenOrCreate("dn_test", opts);
    ASSERT_NE(heap_, nullptr);
    node_ = static_cast<DataNode*>(heap_->Alloc(sizeof(DataNode)).get());
    ASSERT_NE(node_, nullptr);
  }

  void TearDown() override {
    heap_.reset();
    PmemHeap::Destroy("dn_test");
  }

  std::unique_ptr<PmemHeap> heap_;
  DataNode* node_ = nullptr;
};

TEST_F(DataNodeTest, LayoutIsTwelveXpLines) {
  EXPECT_EQ(sizeof(DataNode), 3072u);
  EXPECT_EQ(offsetof(DataNode, anchor), 64u);
  EXPECT_EQ(offsetof(DataNode, fp), 128u);
  EXPECT_EQ(offsetof(DataNode, perm), 192u);
  EXPECT_EQ(offsetof(DataNode, keys), 256u);
  EXPECT_EQ(offsetof(DataNode, values), 2560u);
}

TEST_F(DataNodeTest, FillAndFindSlot) {
  Key k = Key::FromInt(1234);
  node_->FillSlot(5, k, k.Fingerprint(), 99);
  EXPECT_EQ(node_->FindKey(k, k.Fingerprint()), -1) << "invisible until bitmap set";
  node_->PublishBitmap(1ULL << 5);
  EXPECT_EQ(node_->FindKey(k, k.Fingerprint()), 5);
  EXPECT_EQ(node_->values[5], 99u);
}

TEST_F(DataNodeTest, BitmapIsVisibilityPivot) {
  Key a = Key::FromInt(1);
  Key b = Key::FromInt(2);
  node_->FillSlot(0, a, a.Fingerprint(), 10);
  node_->FillSlot(1, b, b.Fingerprint(), 20);
  node_->PublishBitmap(0b01);
  EXPECT_GE(node_->FindKey(a, a.Fingerprint()), 0);
  EXPECT_EQ(node_->FindKey(b, b.Fingerprint()), -1);
  node_->PublishBitmap(0b10);  // one atomic store flips both (update protocol)
  EXPECT_EQ(node_->FindKey(a, a.Fingerprint()), -1);
  EXPECT_GE(node_->FindKey(b, b.Fingerprint()), 0);
}

TEST_F(DataNodeTest, FindFreeSlotScansBitmap) {
  EXPECT_EQ(node_->FindFreeSlot(), 0);
  node_->PublishBitmap(0b111);
  EXPECT_EQ(node_->FindFreeSlot(), 3);
  node_->PublishBitmap(~0ULL);
  EXPECT_EQ(node_->FindFreeSlot(), -1);
}

TEST_F(DataNodeTest, FingerprintFilterNeverMissesAndRarelyLies) {
  // Property: FindKey(k) finds exactly the slot holding k, for random fills.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::memset(static_cast<void*>(node_), 0, sizeof(DataNode));
    int n = 1 + static_cast<int>(rng.Uniform(kDataNodeEntries));
    uint64_t bitmap = 0;
    std::vector<uint64_t> keys;
    for (int i = 0; i < n; ++i) {
      uint64_t kv = rng.Next();
      Key k = Key::FromInt(kv);
      node_->FillSlot(i, k, k.Fingerprint(), kv ^ 0xabc);
      bitmap |= 1ULL << i;
      keys.push_back(kv);
    }
    node_->PublishBitmap(bitmap);
    for (int i = 0; i < n; ++i) {
      Key k = Key::FromInt(keys[i]);
      int slot = node_->FindKey(k, k.Fingerprint());
      ASSERT_EQ(slot, i);
      ASSERT_EQ(node_->values[slot], keys[i] ^ 0xabc);
    }
    // Absent keys are not found.
    for (int probe = 0; probe < 16; ++probe) {
      uint64_t kv = rng.Next();
      if (std::find(keys.begin(), keys.end(), kv) != keys.end()) {
        continue;
      }
      Key k = Key::FromInt(kv);
      ASSERT_EQ(node_->FindKey(k, k.Fingerprint()), -1);
    }
  }
}

TEST_F(DataNodeTest, ComputeSortedOrderIsSorted) {
  Rng rng(5);
  std::memset(static_cast<void*>(node_), 0, sizeof(DataNode));
  uint64_t bitmap = 0;
  // Scatter 40 keys into random slots.
  for (int placed = 0; placed < 40;) {
    int slot = static_cast<int>(rng.Uniform(kDataNodeEntries));
    if (bitmap & (1ULL << slot)) {
      continue;
    }
    Key k = Key::FromInt(rng.Next());
    node_->FillSlot(slot, k, k.Fingerprint(), 0);
    bitmap |= 1ULL << slot;
    placed++;
  }
  node_->PublishBitmap(bitmap);
  uint8_t order[kDataNodeEntries];
  int n = node_->ComputeSortedOrder(order);
  ASSERT_EQ(n, 40);
  for (int i = 1; i < n; ++i) {
    EXPECT_LT(node_->keys[order[i - 1]].Compare(node_->keys[order[i]]), 0);
  }
}

TEST_F(DataNodeTest, SimdAndScalarFingerprintMatchAgree) {
  // The AVX2 path and a reference scalar implementation must agree on every
  // candidate set.
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::memset(static_cast<void*>(node_), 0, sizeof(DataNode));
    uint64_t bitmap = rng.Next();
    for (size_t i = 0; i < kDataNodeEntries; ++i) {
      node_->fp[i] = static_cast<uint8_t>(rng.Next());
      node_->keys[i] = Key::FromInt(rng.Next());
    }
    node_->PublishBitmap(bitmap);
    uint8_t probe_fp = static_cast<uint8_t>(rng.Next());
    Key probe = Key::FromInt(rng.Next());  // almost surely absent
    int simd = node_->FindKey(probe, probe_fp);
    // Scalar reference.
    int ref = -1;
    for (size_t i = 0; i < kDataNodeEntries; ++i) {
      if ((bitmap >> i & 1) && node_->fp[i] == probe_fp && node_->keys[i] == probe) {
        ref = static_cast<int>(i);
        break;
      }
    }
    ASSERT_EQ(simd, ref);
  }
}

TEST_F(DataNodeTest, SiblingPointerStores) {
  node_->StoreNextPersist(0x1234500);
  node_->StorePrevPersist(0x6789a00);
  EXPECT_EQ(node_->NextRaw(), 0x1234500u);
  EXPECT_EQ(node_->PrevRaw(), 0x6789a00u);
  EXPECT_FALSE(node_->IsDeleted());
}

}  // namespace
}  // namespace pactree
