#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/sync/epoch.h"
#include "src/sync/generation.h"
#include "src/sync/soft_htm.h"
#include "src/sync/version_lock.h"

namespace pactree {
namespace {

TEST(VersionLockTest, ReadValidateCycle) {
  OptVersionLock lock;
  uint64_t t = lock.ReadLock();
  EXPECT_TRUE(lock.Validate(t));
  lock.WriteLock();
  EXPECT_FALSE(lock.Validate(t));
  lock.WriteUnlock();
  EXPECT_FALSE(lock.Validate(t)) << "version advanced across write";
  uint64_t t2 = lock.ReadLock();
  EXPECT_NE(t, t2);
  EXPECT_TRUE(lock.Validate(t2));
}

TEST(VersionLockTest, TryWriteLockExcludes) {
  OptVersionLock lock;
  EXPECT_TRUE(lock.TryWriteLock());
  EXPECT_TRUE(lock.IsLocked());
  EXPECT_FALSE(lock.TryWriteLock());
  uint64_t token;
  EXPECT_FALSE(lock.TryReadLock(&token));
  lock.WriteUnlock();
  EXPECT_TRUE(lock.TryReadLock(&token));
}

TEST(VersionLockTest, TryUpgrade) {
  OptVersionLock lock;
  uint64_t t = lock.ReadLock();
  EXPECT_TRUE(lock.TryUpgrade(t));
  EXPECT_TRUE(lock.IsLocked());
  lock.WriteUnlock();
  // Stale token cannot upgrade.
  EXPECT_FALSE(lock.TryUpgrade(t));
}

TEST(VersionLockTest, GenerationBumpVoidsLockState) {
  uint32_t saved = GlobalGeneration();
  OptVersionLock lock;
  lock.WriteLock();
  EXPECT_TRUE(lock.IsLocked());
  // A "restart": the held lock becomes void under the new generation.
  SetGlobalGeneration(saved + 1);
  uint64_t token;
  EXPECT_TRUE(lock.TryReadLock(&token)) << "stale lock must self-reset";
  EXPECT_TRUE(lock.Validate(token));
  SetGlobalGeneration(saved);
}

TEST(VersionLockTest, WritersCountMatchesUnderContention) {
  OptVersionLock lock;
  uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncs; ++i) {
        lock.WriteLock();
        counter++;
        lock.WriteUnlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, uint64_t{kThreads} * kIncs);
}

TEST(VersionLockTest, ReadersNeverSeeTornState) {
  OptVersionLock lock;
  // Relaxed atomics stand in for the protected fields: optimistic readers
  // race with the writer by design (validation discards torn observations),
  // and relaxed access keeps each word's read well-defined without adding
  // any ordering the lock protocol doesn't provide itself.
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};  // invariant under the lock: a == b
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    for (int i = 1; i < 50000; ++i) {
      lock.WriteLock();
      a.store(i, std::memory_order_relaxed);
      b.store(i, std::memory_order_relaxed);
      lock.WriteUnlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t token = lock.ReadLock();
        uint64_t ra = a.load(std::memory_order_relaxed);
        uint64_t rb = b.load(std::memory_order_relaxed);
        if (lock.Validate(token) && ra != rb) {
          torn.store(true);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(torn.load());
}

// --- Epoch reclamation -----------------------------------------------------

TEST(EpochTest, RetireIsDeferredAcrossTwoEpochs) {
  auto& mgr = EpochManager::Instance();
  static std::atomic<int> freed{0};
  freed = 0;
  auto cb = [](void*) { freed.fetch_add(1); };
  {
    EpochGuard guard;
    mgr.Retire(PPtr<void>::Null(), cb, nullptr);
    mgr.TryAdvanceAndReclaim();
    EXPECT_EQ(freed.load(), 0) << "must not reclaim under an active guard";
  }
  mgr.TryAdvanceAndReclaim();
  mgr.TryAdvanceAndReclaim();
  mgr.TryAdvanceAndReclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, DrainReclaimsEverything) {
  auto& mgr = EpochManager::Instance();
  static std::atomic<int> freed{0};
  freed = 0;
  for (int i = 0; i < 10; ++i) {
    mgr.Retire(PPtr<void>::Null(), [](void*) { freed.fetch_add(1); }, nullptr);
  }
  mgr.DrainAll();
  EXPECT_EQ(freed.load(), 10);
}

TEST(EpochTest, ConcurrentGuardsDoNotBlockEachOther) {
  auto& mgr = EpochManager::Instance();
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        EpochGuard guard;
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(done.load(), 40000);
  mgr.DrainAll();
}

// --- SoftHtm ----------------------------------------------------------------

TEST(SoftHtmTest, ReadOnlyTxnCommits) {
  SoftHtm htm;
  uint64_t data[4] = {1, 2, 3, 4};
  SoftHtm::Txn txn(&htm);
  ASSERT_TRUE(txn.Begin());
  EXPECT_EQ(txn.Read64(&data[0]), 1u);
  EXPECT_EQ(txn.Read64(&data[3]), 4u);
  EXPECT_TRUE(txn.Commit());
  EXPECT_EQ(htm.Stats().commits, 1u);
}

TEST(SoftHtmTest, WriteIsBufferedUntilCommit) {
  SoftHtm htm;
  uint64_t word = 7;
  SoftHtm::Txn txn(&htm);
  ASSERT_TRUE(txn.Begin());
  txn.Write64(&word, 42);
  EXPECT_EQ(word, 7u) << "no in-place write before commit";
  EXPECT_EQ(txn.Read64(&word), 42u) << "read-your-writes";
  ASSERT_TRUE(txn.Commit());
  EXPECT_EQ(word, 42u);
}

TEST(SoftHtmTest, FallbackLockAbortsTransactions) {
  SoftHtm htm;
  htm.LockFallback();
  SoftHtm::Txn txn(&htm);
  EXPECT_FALSE(txn.Begin());
  EXPECT_EQ(txn.cause(), HtmAbortCause::kFallbackLocked);
  htm.UnlockFallback();
  SoftHtm::Txn txn2(&htm);
  EXPECT_TRUE(txn2.Begin());
  EXPECT_TRUE(txn2.Commit());
}

TEST(SoftHtmTest, FallbackAcquiredMidTxnInvalidatesCommit) {
  SoftHtm htm;
  uint64_t word = 1;
  SoftHtm::Txn txn(&htm);
  ASSERT_TRUE(txn.Begin());
  txn.Read64(&word);
  htm.LockFallback();
  htm.UnlockFallback();
  EXPECT_FALSE(txn.Commit());
}

TEST(SoftHtmTest, ConflictingWriterAbortsReader) {
  SoftHtm htm;
  uint64_t word = 0;
  SoftHtm::Txn reader(&htm);
  ASSERT_TRUE(reader.Begin());
  reader.Read64(&word);
  // A second transaction commits a write to the same word.
  SoftHtm::Txn writer(&htm);
  ASSERT_TRUE(writer.Begin());
  writer.Write64(&word, 99);
  ASSERT_TRUE(writer.Commit());
  EXPECT_FALSE(reader.Commit());
  EXPECT_GE(htm.Stats().conflict_aborts, 1u);
}

TEST(SoftHtmTest, CapacityAbortOnLargeFootprint) {
  SoftHtmConfig cfg;
  cfg.l1_sets = 4;
  cfg.l1_ways = 2;  // tiny L1: 8 lines
  SoftHtm htm(cfg);
  std::vector<uint64_t> data(4096, 1);
  SoftHtm::Txn txn(&htm);
  ASSERT_TRUE(txn.Begin());
  for (size_t i = 0; i < data.size(); i += 8) {
    txn.Read64(&data[i]);
    if (!txn.ok()) {
      break;
    }
  }
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(txn.cause(), HtmAbortCause::kCapacity);
  EXPECT_GE(htm.Stats().capacity_aborts, 1u);
}

TEST(SoftHtmTest, SpuriousAbortRateRoughlyMatchesConfig) {
  SoftHtmConfig cfg;
  cfg.spurious_abort_per_line = 0.01;
  SoftHtm htm(cfg);
  uint64_t data[64] = {};
  int aborted = 0;
  constexpr int kTxns = 2000;
  for (int i = 0; i < kTxns; ++i) {
    SoftHtm::Txn txn(&htm);
    ASSERT_TRUE(txn.Begin());
    for (int j = 0; j < 16 && txn.ok(); ++j) {
      txn.Read64(&data[j * 4 % 64]);
    }
    if (!txn.Commit()) {
      aborted++;
    }
  }
  // Expected abort probability per txn ~= 1-(1-0.01)^lines. With dedup the
  // touched-line count per txn is small; just check it is in a sane band.
  EXPECT_GT(aborted, 10);
  EXPECT_LT(aborted, kTxns / 2);
}

TEST(SoftHtmTest, ConcurrentCountersAreConsistent) {
  SoftHtm htm;
  uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncs; ++i) {
        while (true) {
          SoftHtm::Txn txn(&htm);
          if (!txn.Begin()) {
            continue;
          }
          uint64_t v = txn.Read64(&counter);
          txn.Write64(&counter, v + 1);
          if (txn.Commit()) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, uint64_t{kThreads} * kIncs);
}

}  // namespace
}  // namespace pactree
