// Write-absorption buffer tests (src/absorb + PacTree integration): ack/drain
// semantics, scan merge against a model under forced drains, writer
// backpressure, unit-level op-log replay with torn entries, drain-service
// registration, and the media-write ablation the subsystem exists for.
#include "src/absorb/absorb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/pmem/heap.h"
#include "src/runtime/maintenance.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

// ---------------------------------------------------------------------------
// PacTree integration fixture
// ---------------------------------------------------------------------------

class AbsorbTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PacTree::Destroy("absorb_test");
    opts_.name = "absorb_test";
    opts_.pool_id_base = 700;
    opts_.pool_size = 256 << 20;
    opts_.absorb_writes = true;
    opts_.absorb_shards = 2;
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("absorb_test");
  }

  void Open() {
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void Reopen() {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  PacTreeOptions opts_;
  std::unique_ptr<PacTree> tree_;
};

// Sync mode: no services, drains run inline -- fully deterministic.
class AbsorbSyncTest : public AbsorbTreeTest {
 protected:
  void SetUp() override {
    AbsorbTreeTest::SetUp();
    opts_.async_search_update = false;
    Open();
  }
};

TEST_F(AbsorbSyncTest, SemanticsServedFromStaging) {
  // Nothing drained yet: every answer below comes from the absorb shards.
  EXPECT_EQ(tree_->Insert(Key::FromInt(1), 10), Status::kOk);
  EXPECT_EQ(tree_->Insert(Key::FromInt(1), 11), Status::kExists);
  uint64_t v = 0;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kOk);
  EXPECT_EQ(v, 11u);
  EXPECT_EQ(tree_->Update(Key::FromInt(2), 1), Status::kNotFound);
  EXPECT_EQ(tree_->Update(Key::FromInt(1), 12), Status::kOk);
  ASSERT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kOk);
  EXPECT_EQ(v, 12u);
  EXPECT_EQ(tree_->Remove(Key::FromInt(2)), Status::kNotFound);
  EXPECT_EQ(tree_->Remove(Key::FromInt(1)), Status::kOk);
  EXPECT_EQ(tree_->Lookup(Key::FromInt(1), nullptr), Status::kNotFound);
  EXPECT_EQ(tree_->Remove(Key::FromInt(1)), Status::kNotFound);
  // Re-insert over the staged tombstone.
  EXPECT_EQ(tree_->Insert(Key::FromInt(1), 13), Status::kOk);
  ASSERT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kOk);
  EXPECT_EQ(v, 13u);
  EXPECT_EQ(tree_->Size(), 1u);
}

TEST_F(AbsorbSyncTest, SemanticsSurviveDrain) {
  ASSERT_EQ(tree_->Insert(Key::FromInt(7), 70), Status::kOk);
  ASSERT_EQ(tree_->Insert(Key::FromInt(8), 80), Status::kOk);
  ASSERT_EQ(tree_->Remove(Key::FromInt(8)), Status::kOk);
  EXPECT_FALSE(tree_->AbsorbDrained());
  tree_->DrainAbsorb();
  EXPECT_TRUE(tree_->AbsorbDrained());
  uint64_t v = 0;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(7), &v), Status::kOk);
  EXPECT_EQ(v, 70u);
  EXPECT_EQ(tree_->Lookup(Key::FromInt(8), nullptr), Status::kNotFound);
  // Presence checks now consult the data layer (staging is empty).
  EXPECT_EQ(tree_->Insert(Key::FromInt(7), 71), Status::kExists);
  EXPECT_EQ(tree_->Update(Key::FromInt(8), 1), Status::kNotFound);
  AbsorbStats st = tree_->Stats().absorb;
  EXPECT_GE(st.staged, 4u);
  EXPECT_GE(st.drained, 3u);
  EXPECT_GE(st.batches, 1u);
}

TEST_F(AbsorbSyncTest, LargeLoadDrainsIntoConsistentTree) {
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 3), Status::kOk) << i;
  }
  tree_->DrainAbsorb();
  tree_->DrainSmoLogs();
  EXPECT_EQ(tree_->Size(), kN);
  for (uint64_t i = 0; i < kN; i += 17) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 3);
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
  EXPECT_GT(tree_->Stats().splits, kN / 64);
}

TEST_F(AbsorbSyncTest, CleanShutdownDrainsThenAbsorbOffReadsEverything) {
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i), Status::kOk);
  }
  // The destructor drains the shards; the rings are empty on disk, so the
  // next incarnation -- even with absorption off -- sees every ack'd write.
  opts_.absorb_writes = false;
  Reopen();
  EXPECT_EQ(tree_->Size(), 5000u);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(4999), &v), Status::kOk);
  EXPECT_EQ(v, 4999u);
}

TEST_F(AbsorbSyncTest, ScanMergesStagingAndBase) {
  // Base layer: even keys 0..98 (drained); staging: odd keys 1..99 plus a
  // tombstone over one base key and an overwrite of another.
  for (uint64_t i = 0; i < 100; i += 2) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i), Status::kOk);
  }
  tree_->DrainAbsorb();
  for (uint64_t i = 1; i < 100; i += 2) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1000), Status::kOk);
  }
  ASSERT_EQ(tree_->Remove(Key::FromInt(40)), Status::kOk);
  ASSERT_EQ(tree_->Update(Key::FromInt(42), 4242), Status::kOk);

  std::vector<std::pair<Key, uint64_t>> out;
  size_t n = tree_->Scan(Key::FromInt(0), 200, &out);
  EXPECT_EQ(n, 99u);  // 100 keys minus the tombstoned 40
  uint64_t prev = 0;
  bool first = true;
  for (const auto& [k, v] : out) {
    uint64_t ki = k.ToInt();
    if (!first) {
      EXPECT_LT(prev, ki) << "scan must be ascending and duplicate-free";
    }
    first = false;
    prev = ki;
    EXPECT_NE(ki, 40u) << "tombstone must mask the base key";
    if (ki == 42) {
      EXPECT_EQ(v, 4242u) << "staged overwrite must win over the base value";
    } else if (ki % 2 == 1) {
      EXPECT_EQ(v, ki + 1000);
    } else {
      EXPECT_EQ(v, ki);
    }
  }
  // Bounded scans still fill their window despite tombstones in range.
  n = tree_->Scan(Key::FromInt(39), 5, &out);
  ASSERT_EQ(n, 5u);
  EXPECT_EQ(out[0].first.ToInt(), 39u);
  EXPECT_EQ(out[1].first.ToInt(), 41u);  // 40 masked
  EXPECT_EQ(out[2].first.ToInt(), 42u);
}

// The satellite property test: random interleavings of buffered upserts and
// tombstones against a std::map model, with drains forced at random points
// between (and, in the async variant below, during) scans.
TEST_F(AbsorbSyncTest, ScanMergePropertyAgainstModel) {
  Rng rng(20260807);
  std::map<uint64_t, uint64_t> model;
  constexpr uint64_t kDomain = 4000;
  for (int step = 0; step < 30000; ++step) {
    uint64_t k = rng.Uniform(kDomain);
    uint32_t what = static_cast<uint32_t>(rng.Uniform(100));
    if (what < 55) {
      tree_->Insert(Key::FromInt(k), step);
      model[k] = static_cast<uint64_t>(step);
    } else if (what < 75) {
      Status s = tree_->Update(Key::FromInt(k), step);
      ASSERT_EQ(s == Status::kOk, model.count(k) == 1) << k;
      if (s == Status::kOk) {
        model[k] = static_cast<uint64_t>(step);
      }
    } else if (what < 95) {
      Status s = tree_->Remove(Key::FromInt(k));
      ASSERT_EQ(s == Status::kOk, model.erase(k) == 1) << k;
    } else {
      tree_->DrainAbsorb();  // forced drain at a random interleaving point
    }
    if (step % 97 == 0) {
      uint64_t start = rng.Uniform(kDomain);
      size_t count = 1 + rng.Uniform(60);
      std::vector<std::pair<Key, uint64_t>> got;
      tree_->Scan(Key::FromInt(start), count, &got);
      std::vector<std::pair<uint64_t, uint64_t>> want;
      for (auto it = model.lower_bound(start);
           it != model.end() && want.size() < count; ++it) {
        want.emplace_back(it->first, it->second);
      }
      ASSERT_EQ(got.size(), want.size()) << "start=" << start;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].first.ToInt(), want[i].first) << "start=" << start;
        ASSERT_EQ(got[i].second, want[i].second) << "key=" << want[i].first;
      }
    }
  }
  tree_->DrainAbsorb();
  tree_->DrainSmoLogs();
  EXPECT_EQ(tree_->Size(), model.size());
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_F(AbsorbSyncTest, RingFullBackpressureDrainsInline) {
  opts_.absorb_ring_capacity = 4;
  Reopen();
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i), Status::kOk) << i;
  }
  // Capacity 4 forces the writers to drain inline; every op still lands.
  AbsorbStats st = tree_->Stats().absorb;
  EXPECT_GT(st.drained, 400u);
  tree_->DrainAbsorb();
  EXPECT_EQ(tree_->Size(), 500u);
}

// The reason the subsystem exists: an upsert-heavy workload over a bounded key
// set must cost measurably fewer media write bytes per acked insert with
// absorption on. Off-path, every upsert pays its own slot flushes plus a
// bitmap publish on a random node (whose XPLines have long left the combining
// window); absorbed, the ack is a sequential 128 B log append and the sorted
// full-ring drain lands several ops per node -- in-place value overwrites
// coalescing in shared XPLines, one bitmap publish per node per batch.
TEST_F(AbsorbSyncTest, MediaWriteBytesPerInsertDrop) {
  constexpr uint64_t kN = 30000;
  constexpr uint64_t kDomain = 2000;
  Rng rng(99);
  std::vector<uint64_t> keys(kN);
  uint64_t distinct;
  {
    std::map<uint64_t, bool> seen;
    for (auto& k : keys) {
      k = rng.Uniform(kDomain);
      seen[k] = true;
    }
    distinct = seen.size();
  }

  auto run = [&](bool absorb, uint16_t pool_base) -> uint64_t {
    PacTreeOptions o = opts_;
    o.absorb_writes = absorb;
    o.absorb_drain_batch = kAbsorbLogEntries;  // full-ring sorted batches
    o.name = "absorb_media";
    o.pool_id_base = pool_base;
    PacTree::Destroy(o.name);
    auto t = PacTree::Open(o);
    EXPECT_NE(t, nullptr);
    NvmStatsSnapshot before = t->data_heap()->MediaStats();
    before += t->log_heap()->MediaStats();
    for (uint64_t k : keys) {
      t->Insert(Key::FromInt(k), k);
    }
    t->DrainAbsorb();  // charge the drain to the absorb run: end-to-end cost
    NvmStatsSnapshot after = t->data_heap()->MediaStats();
    after += t->log_heap()->MediaStats();
    uint64_t size = t->Size();
    t.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("absorb_media");
    EXPECT_EQ(size, distinct);
    return after.media_write_bytes - before.media_write_bytes;
  };

  uint64_t off = run(false, 740);
  uint64_t on = run(true, 770);  // distinct pool ids: no shared model state
  EXPECT_LT(on, off) << "absorption must reduce media write traffic";
  EXPECT_LT(static_cast<double>(on), 0.8 * static_cast<double>(off))
      << "coalescing should be a measurable win, not noise: on=" << on
      << " off=" << off;
}

// ---------------------------------------------------------------------------
// Async mode: real drain services
// ---------------------------------------------------------------------------

class AbsorbAsyncTest : public AbsorbTreeTest {
 protected:
  void SetUp() override {
    AbsorbTreeTest::SetUp();
    Open();
  }
};

TEST_F(AbsorbAsyncTest, DrainServicesRegistered) {
  ASSERT_NE(tree_->absorb(), nullptr);
  const auto& services = tree_->absorb()->services();
  ASSERT_EQ(services.size(), 2u);
  for (size_t i = 0; i < services.size(); ++i) {
    EXPECT_EQ(services[i]->name(),
              "absorb_test/absorb/drain-" + std::to_string(i));
    EXPECT_TRUE(services[i]->running());
  }
  // Discoverable through the process-wide registry, like every other
  // maintenance service (the bench's stats printer relies on this).
  auto snap = MaintenanceRegistry::Instance().StatsSnapshot("absorb_test/absorb/");
  EXPECT_EQ(snap.size(), 2u);
}

TEST_F(AbsorbAsyncTest, ServicesDrainWithoutExplicitHelp) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i), Status::kOk);
  }
  tree_->DrainAbsorb();  // CV barrier against the live services
  EXPECT_TRUE(tree_->AbsorbDrained());
  AbsorbStats st = tree_->Stats().absorb;
  EXPECT_EQ(st.drained, st.staged);
  EXPECT_EQ(st.pending, 0u);
  EXPECT_EQ(tree_->Size(), kN);
}

TEST_F(AbsorbAsyncTest, ConcurrentWritersAndDrains) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SetCurrentNumaNode(static_cast<uint32_t>(t) % 2);
      uint64_t base = static_cast<uint64_t>(t) * 1000000;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_EQ(tree_->Insert(Key::FromInt(base + i), base + i), Status::kOk);
        if (i % 7 == 0) {
          uint64_t v;
          ASSERT_EQ(tree_->Lookup(Key::FromInt(base + i), &v), Status::kOk);
          ASSERT_EQ(v, base + i);
        }
        if (i % 5 == 0) {
          ASSERT_EQ(tree_->Remove(Key::FromInt(base + i)), Status::kOk);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  tree_->DrainAbsorb();
  tree_->DrainSmoLogs();
  uint64_t expect = kThreads * (kPerThread - (kPerThread + 4) / 5);
  EXPECT_EQ(tree_->Size(), expect);
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

// Scans racing the drain services over a fixed key set: the merge must return
// exactly the model regardless of how far the drains have progressed.
TEST_F(AbsorbAsyncTest, ScanExactWhileDrainsProgress) {
  constexpr uint64_t kN = 30000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i * 2), Status::kOk);
  }
  // No writers from here on: every scan below must see exactly [0, kN),
  // whether an op is still staged, mid-drain, or applied.
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    SetCurrentNumaNode(0);
    Rng rng(5);
    std::vector<std::pair<Key, uint64_t>> out;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t start = rng.Uniform(kN);
      size_t count = 1 + rng.Uniform(200);
      size_t n = tree_->Scan(Key::FromInt(start), count, &out);
      size_t want = std::min<size_t>(count, kN - start);
      ASSERT_EQ(n, want) << "start=" << start;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i].first.ToInt(), start + i);
        ASSERT_EQ(out[i].second, (start + i) * 2);
      }
    }
  });
  tree_->DrainAbsorb();  // drains progress under the scanner's feet
  stop.store(true, std::memory_order_relaxed);
  scanner.join();
  EXPECT_TRUE(tree_->AbsorbDrained());
}

// ---------------------------------------------------------------------------
// Unit-level op-log replay (recovery semantics without a crash harness)
// ---------------------------------------------------------------------------

// Sink that applies to a plain map and records every batch it was handed.
class MapSink : public AbsorbSink {
 public:
  Status AbsorbBaseLookup(const Key& key, uint64_t* value) const override {
    auto it = data_.find(key);
    if (it == data_.end()) {
      return Status::kNotFound;
    }
    if (value != nullptr) {
      *value = it->second;
    }
    return Status::kOk;
  }
  bool AbsorbApply(const AbsorbOp* ops, size_t n) override {
    batches_.emplace_back(ops, ops + n);
    if (reject_applies_ > 0) {
      --reject_applies_;  // simulate a full data layer for the next N batches
      return false;
    }
    for (size_t i = 0; i < n; ++i) {
      if (ops[i].type == kAbsorbOpTombstone) {
        data_.erase(ops[i].key);
      } else {
        data_[ops[i].key] = ops[i].value;
      }
    }
    return true;
  }
  std::map<Key, uint64_t>& data() { return data_; }
  const std::vector<std::vector<AbsorbOp>>& batches() const { return batches_; }
  void RejectNextApplies(int n) { reject_applies_ = n; }

 private:
  std::map<Key, uint64_t> data_;
  std::vector<std::vector<AbsorbOp>> batches_;
  int reject_applies_ = 0;
};

class AbsorbRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PmemHeap::Destroy("absorb_ring");
    PmemHeapOptions h;
    h.pool_id_base = 760;
    h.pool_size = 64 << 20;
    heap_ = PmemHeap::OpenOrCreate("absorb_ring", h);
    ASSERT_NE(heap_, nullptr);
    PPtr<void> p = heap_->Alloc(sizeof(AbsorbLogRing));
    ASSERT_FALSE(p.IsNull());
    ring_ = static_cast<AbsorbLogRing*>(p.get());
    std::memset(static_cast<void*>(ring_), 0, sizeof(AbsorbLogRing));
    PersistFence(ring_, sizeof(AbsorbLogRing));
  }

  void TearDown() override {
    heap_.reset();
    PmemHeap::Destroy("absorb_ring");
  }

  std::unique_ptr<PmemHeap> heap_;
  AbsorbLogRing* ring_ = nullptr;
};

TEST_F(AbsorbRingTest, ReplayAppliesUndrainedOpsInSeqOrder) {
  AbsorbOptions ao;
  ao.shards = 1;
  ao.async = false;
  MapSink sink;
  {
    AbsorbBuffer buf(ao, &sink);
    buf.AttachRing(0, ring_);
    EXPECT_EQ(buf.Insert(Key::FromInt(3), 30), Status::kOk);
    EXPECT_EQ(buf.Insert(Key::FromInt(1), 10), Status::kOk);
    EXPECT_EQ(buf.Insert(Key::FromInt(1), 11), Status::kExists);
    EXPECT_EQ(buf.Remove(Key::FromInt(3)), Status::kOk);
    // Not drained: the buffer dies, the ring keeps all four entries.
  }
  ASSERT_TRUE(sink.data().empty());

  MapSink sink2;
  AbsorbBuffer recovered(ao, &sink2);
  recovered.AttachRing(0, ring_);
  EXPECT_EQ(recovered.ReplayAndReset(), 4u);
  EXPECT_TRUE(recovered.Drained());
  // Net effect: key 1 -> 11 (seq order kept the overwrite last), key 3 gone.
  ASSERT_EQ(sink2.data().size(), 1u);
  EXPECT_EQ(sink2.data()[Key::FromInt(1)], 11u);
  // Batches arrive (key, seq)-sorted.
  ASSERT_EQ(sink2.batches().size(), 1u);
  const auto& b = sink2.batches()[0];
  for (size_t i = 1; i < b.size(); ++i) {
    bool ordered = b[i - 1].key < b[i].key ||
                   (b[i - 1].key == b[i].key && b[i - 1].seq < b[i].seq);
    EXPECT_TRUE(ordered) << i;
  }
  // Replay reset the ring durably: a second replay finds nothing.
  MapSink sink3;
  AbsorbBuffer again(ao, &sink3);
  again.AttachRing(0, ring_);
  EXPECT_EQ(again.ReplayAndReset(), 0u);
  EXPECT_TRUE(sink3.data().empty());
}

TEST_F(AbsorbRingTest, TornEntriesAreDiscarded) {
  AbsorbOptions ao;
  ao.shards = 1;
  ao.async = false;
  MapSink sink;
  {
    AbsorbBuffer buf(ao, &sink);
    buf.AttachRing(0, ring_);
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_EQ(buf.Insert(Key::FromInt(i), i + 100), Status::kOk);
    }
  }
  // Tear entry 2 the way an 8-byte-granular media crash can: one word of the
  // flushed line committed, the rest did not. The checksum must reject it.
  ring_->entries[2].value ^= 0xdeadULL;
  PersistFence(&ring_->entries[2], sizeof(AbsorbLogEntry));

  MapSink sink2;
  AbsorbBuffer recovered(ao, &sink2);
  recovered.AttachRing(0, ring_);
  EXPECT_EQ(recovered.ReplayAndReset(), 4u);
  EXPECT_EQ(sink2.data().size(), 4u);
  EXPECT_EQ(sink2.data().count(Key::FromInt(2)), 0u)
      << "a torn entry is an unacked op and must vanish";
  // Torn-seq variant: corrupting the seq word also invalidates the checksum.
  {
    AbsorbBuffer buf(ao, &sink);
    buf.AttachRing(0, ring_);
    ASSERT_EQ(buf.Insert(Key::FromInt(9), 900), Status::kOk);
  }
  ring_->entries[0].seq += 7;
  PersistFence(&ring_->entries[0], sizeof(AbsorbLogEntry));
  MapSink sink3;
  AbsorbBuffer r2(ao, &sink3);
  r2.AttachRing(0, ring_);
  EXPECT_EQ(r2.ReplayAndReset(), 0u);
}

TEST_F(AbsorbRingTest, FuzzBitFlipsNeverAdmitCorruptEntries) {
  // Adversarial media corruption: flip random bits anywhere in the persisted
  // ring (entries, counters, padding) and replay. Recovery trusts only the
  // per-entry checksum, so every op it admits must be byte-identical to one
  // the writer actually logged -- a flipped entry may vanish (it was never
  // acked durable in that state) but must never replay with altered contents.
  AbsorbOptions ao;
  ao.shards = 1;
  ao.async = false;
  constexpr uint64_t kOps = 48;
  MapSink sink;
  {
    AbsorbBuffer buf(ao, &sink);
    buf.AttachRing(0, ring_);
    for (uint64_t i = 0; i < kOps; ++i) {
      if (i % 5 == 4) {
        ASSERT_EQ(buf.Remove(Key::FromInt(i - 1)), Status::kOk);
      } else {
        ASSERT_EQ(buf.Insert(Key::FromInt(i), i + 1000), Status::kOk);
      }
    }
  }
  // Model: the exact (seq -> entry) map the writer made durable.
  std::map<uint64_t, AbsorbLogEntry> model;
  for (size_t i = 0; i < kAbsorbLogEntries; ++i) {
    if (ring_->entries[i].type != 0) {
      model[ring_->entries[i].seq] = ring_->entries[i];
    }
  }
  ASSERT_EQ(model.size(), kOps);
  std::vector<uint8_t> pristine(sizeof(AbsorbLogRing));
  std::memcpy(pristine.data(), ring_, sizeof(AbsorbLogRing));

  Rng rng(0xf00dfeedULL);
  for (int round = 0; round < 256; ++round) {
    std::memcpy(static_cast<void*>(ring_), pristine.data(), sizeof(AbsorbLogRing));
    uint64_t flips = 1 + rng.Uniform(8);
    for (uint64_t f = 0; f < flips; ++f) {
      size_t byte = rng.Uniform(sizeof(AbsorbLogRing));
      reinterpret_cast<uint8_t*>(ring_)[byte] ^= uint8_t{1} << rng.Uniform(8);
    }
    PersistFence(ring_, sizeof(AbsorbLogRing));

    MapSink replayed;
    AbsorbBuffer r(ao, &replayed);
    r.AttachRing(0, ring_);
    bool complete = true;
    r.ReplayAndReset(&complete);
    EXPECT_TRUE(complete) << "round " << round << ": corruption is discarded, "
                          << "never surfaced as an apply failure";
    for (const auto& batch : replayed.batches()) {
      for (const AbsorbOp& op : batch) {
        auto it = model.find(op.seq);
        ASSERT_NE(it, model.end())
            << "round " << round << ": admitted op with forged seq " << op.seq;
        EXPECT_TRUE(op.key == it->second.key)
            << "round " << round << " seq " << op.seq << ": corrupt key admitted";
        EXPECT_EQ(op.value, it->second.value)
            << "round " << round << " seq " << op.seq << ": corrupt value admitted";
        EXPECT_EQ(op.type, it->second.type)
            << "round " << round << " seq " << op.seq << ": corrupt type admitted";
      }
    }
  }
}

TEST_F(AbsorbRingTest, ReplayIsIdempotentOverAppliedPrefix) {
  // Simulate a crash mid-drain: the sink already absorbed a prefix of the
  // ops, but the log was not yet trimmed. Replay must converge to the same
  // final state.
  AbsorbOptions ao;
  ao.shards = 1;
  ao.async = false;
  MapSink sink;
  {
    AbsorbBuffer buf(ao, &sink);
    buf.AttachRing(0, ring_);
    ASSERT_EQ(buf.Insert(Key::FromInt(1), 10), Status::kOk);
    ASSERT_EQ(buf.Insert(Key::FromInt(2), 20), Status::kOk);
    ASSERT_EQ(buf.Remove(Key::FromInt(1)), Status::kOk);
  }
  // "Crashed drain" already applied everything once.
  MapSink partial;
  partial.data()[Key::FromInt(2)] = 20;  // upsert applied
  // (key 1: insert+remove both applied -- absent, as after the full batch)
  AbsorbBuffer recovered(ao, &partial);
  recovered.AttachRing(0, ring_);
  EXPECT_EQ(recovered.ReplayAndReset(), 3u);
  ASSERT_EQ(partial.data().size(), 1u);
  EXPECT_EQ(partial.data()[Key::FromInt(2)], 20u);
  EXPECT_EQ(partial.data().count(Key::FromInt(1)), 0u);
}

}  // namespace
}  // namespace pactree
