// Parameterized allocator sweeps: every size class must hand out distinct,
// aligned, usable, reusable blocks, in both crash-consistent and transient
// modes, and persist its metadata across reopen.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/pmem/pool.h"
#include "src/pmem/registry.h"

namespace pactree {
namespace {

struct ClassParam {
  size_t size_class;
  bool crash_consistent;
};

class PmemClassTest : public ::testing::TestWithParam<ClassParam> {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    path_ = NvmConfig::DefaultPoolDir() + "/pmem_class.pool";
    NvmPoolFile::Remove(path_);
    PmemPoolOptions opts;
    opts.size = 64 << 20;
    opts.crash_consistent = GetParam().crash_consistent;
    pool_ = PmemPool::Create(path_, 60, 0, opts);
    ASSERT_NE(pool_, nullptr);
  }

  void TearDown() override {
    pool_.reset();
    NvmPoolFile::Remove(path_);
  }

  std::string path_;
  std::unique_ptr<PmemPool> pool_;
};

TEST_P(PmemClassTest, DistinctAlignedReusable) {
  const size_t cls = GetParam().size_class;
  const size_t count = std::min<size_t>(2048, (48 << 20) / cls);
  std::set<uint64_t> offsets;
  std::vector<uint64_t> order;
  Rng rng(cls);
  for (size_t i = 0; i < count; ++i) {
    // Allocate a random size that maps to this class: (previous class, cls].
    size_t prev = 0;
    for (size_t c : kSizeClasses) {
      if (c < cls) {
        prev = c;
      }
    }
    size_t want = prev + 1 + rng.Uniform(cls - prev);
    PPtr<void> p = pool_->Alloc(want);
    ASSERT_FALSE(p.IsNull()) << i;
    ASSERT_EQ(pool_->BlockSize(p.offset()), cls);
    ASSERT_EQ(p.offset() % 64, 0u) << "blocks must be cache-line aligned";
    ASSERT_TRUE(offsets.insert(p.offset()).second) << "duplicate block";
    // Blocks of one class must be spaced by at least the class size.
    std::memset(p.get(), static_cast<int>(i & 0xff), 8);
    order.push_back(p.offset());
  }
  // Free every other one, reallocate, and expect reuse from the same class.
  for (size_t i = 0; i < order.size(); i += 2) {
    pool_->Free(order[i]);
  }
  for (size_t i = 0; i < order.size() / 2; ++i) {
    PPtr<void> p = pool_->Alloc(cls);
    ASSERT_FALSE(p.IsNull());
    ASSERT_EQ(pool_->BlockSize(p.offset()), cls);
  }
}

TEST_P(PmemClassTest, BlocksDoNotOverlap) {
  const size_t cls = GetParam().size_class;
  const size_t count = std::min<size_t>(512, (16 << 20) / cls);
  std::vector<PPtr<void>> blocks;
  for (size_t i = 0; i < count; ++i) {
    PPtr<void> p = pool_->Alloc(cls);
    ASSERT_FALSE(p.IsNull());
    std::memset(p.get(), static_cast<int>(i % 251), cls);
    blocks.push_back(p);
  }
  for (size_t i = 0; i < count; ++i) {
    auto* bytes = static_cast<uint8_t*>(blocks[i].get());
    for (size_t b = 0; b < cls; b += 61) {
      ASSERT_EQ(bytes[b], static_cast<uint8_t>(i % 251)) << "overlap at block " << i;
    }
  }
}

std::vector<ClassParam> AllClasses() {
  std::vector<ClassParam> params;
  for (size_t cls : kSizeClasses) {
    if (cls > (8u << 20)) {
      continue;
    }
    params.push_back({cls, true});
    params.push_back({cls, false});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllSizeClasses, PmemClassTest, ::testing::ValuesIn(AllClasses()),
                         [](const ::testing::TestParamInfo<ClassParam>& info) {
                           return std::to_string(info.param.size_class) +
                                  (info.param.crash_consistent ? "_cc" : "_tr");
                         });

}  // namespace
}  // namespace pactree
