#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/pmem/heap.h"
#include "src/pmem/pool.h"
#include "src/pmem/registry.h"

namespace pactree {
namespace {

std::string TestPath(const std::string& name) {
  return NvmConfig::DefaultPoolDir() + "/" + name;
}

class PmemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
  }
};

TEST_F(PmemTest, SizeClassSelection) {
  EXPECT_EQ(kSizeClasses[SizeClassFor(1)], 64u);
  EXPECT_EQ(kSizeClasses[SizeClassFor(64)], 64u);
  EXPECT_EQ(kSizeClasses[SizeClassFor(65)], 128u);
  EXPECT_EQ(kSizeClasses[SizeClassFor(3000)], 3072u);
  EXPECT_EQ(SizeClassFor(300000), kNumClasses);  // whole-chunk path
}

TEST_F(PmemTest, AllocFreeRoundTrip) {
  std::string path = TestPath("pmem_rt.pool");
  PmemPoolOptions opts;
  opts.size = 8 << 20;
  auto pool = PmemPool::Create(path, 11, 0, opts);
  ASSERT_NE(pool, nullptr);
  PPtr<void> p = pool->Alloc(100);
  ASSERT_FALSE(p.IsNull());
  EXPECT_EQ(p.pool(), 11u);
  std::memset(p.get(), 0xab, 100);
  EXPECT_EQ(pool->BlockSize(p.offset()), 128u);
  pool->Free(p.offset());
  EXPECT_EQ(pool->Stats().allocs, 1u);
  EXPECT_EQ(pool->Stats().frees, 1u);
  pool.reset();
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, DistinctBlocksDoNotOverlap) {
  std::string path = TestPath("pmem_overlap.pool");
  PmemPoolOptions opts;
  opts.size = 32 << 20;
  auto pool = PmemPool::Create(path, 12, 0, opts);
  ASSERT_NE(pool, nullptr);
  std::set<uint64_t> offsets;
  for (int i = 0; i < 10000; ++i) {
    PPtr<void> p = pool->Alloc(64);
    ASSERT_FALSE(p.IsNull());
    EXPECT_TRUE(offsets.insert(p.offset()).second) << "duplicate offset";
  }
  // All offsets 64B-aligned and distinct by >= 64.
  uint64_t prev = 0;
  for (uint64_t off : offsets) {
    EXPECT_EQ(off % 64, 0u);
    if (prev != 0) {
      EXPECT_GE(off - prev, 64u);
    }
    prev = off;
  }
  pool.reset();
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, FreeMakesSpaceReusable) {
  std::string path = TestPath("pmem_reuse.pool");
  PmemPoolOptions opts;
  opts.size = 4 << 20;  // small pool: 1-2 usable chunks
  auto pool = PmemPool::Create(path, 13, 0, opts);
  ASSERT_NE(pool, nullptr);
  std::vector<uint64_t> offs;
  // Exhaust the pool with 64 KiB blocks.
  while (true) {
    PPtr<void> p = pool->Alloc(65536);
    if (p.IsNull()) {
      break;
    }
    offs.push_back(p.offset());
  }
  ASSERT_GT(offs.size(), 10u);
  EXPECT_TRUE(pool->Alloc(65536).IsNull());
  for (uint64_t o : offs) {
    pool->Free(o);
  }
  // Everything must be allocatable again.
  for (size_t i = 0; i < offs.size(); ++i) {
    EXPECT_FALSE(pool->Alloc(65536).IsNull()) << i;
  }
  pool.reset();
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, WholeChunkAllocation) {
  std::string path = TestPath("pmem_whole.pool");
  PmemPoolOptions opts;
  opts.size = 16 << 20;
  auto pool = PmemPool::Create(path, 14, 0, opts);
  ASSERT_NE(pool, nullptr);
  PPtr<void> big = pool->Alloc(3 << 20);  // 3 MiB -> 3 chunks
  ASSERT_FALSE(big.IsNull());
  EXPECT_EQ(pool->BlockSize(big.offset()), 3u << 20);
  std::memset(big.get(), 0x5a, 3 << 20);
  pool->Free(big.offset());
  PPtr<void> again = pool->Alloc(3 << 20);
  EXPECT_FALSE(again.IsNull());
  pool.reset();
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, PersistentAcrossReopen) {
  std::string path = TestPath("pmem_reopen.pool");
  PmemPoolOptions opts;
  opts.size = 8 << 20;
  uint64_t off;
  uint64_t gen1;
  {
    auto pool = PmemPool::Create(path, 15, 0, opts);
    ASSERT_NE(pool, nullptr);
    gen1 = pool->generation();
    PPtr<void> p = pool->Alloc(4096);
    ASSERT_FALSE(p.IsNull());
    off = p.offset();
    std::memcpy(p.get(), "persist-me", 11);
    PersistFence(p.get(), 11);
  }
  {
    std::unique_ptr<PmemPool> pool;
    ASSERT_EQ(PmemPool::Open(path, 15, 0, opts, &pool), Status::kOk);
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->generation(), gen1 + 1) << "generation bumps on open";
    PPtr<char> p = PPtr<char>::FromParts(15, off);
    EXPECT_STREQ(p.get(), "persist-me");
    // The block is still accounted allocated: freeing and reallocating works.
    pool->Free(off);
    EXPECT_FALSE(pool->Alloc(4096).IsNull());
  }
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, AllocToAttachesAtomically) {
  std::string path = TestPath("pmem_mallocto.pool");
  PmemPoolOptions opts;
  opts.size = 8 << 20;
  auto pool = PmemPool::Create(path, 16, 0, opts);
  ASSERT_NE(pool, nullptr);
  // Destination word lives in the pool's root area.
  auto* root = static_cast<uint64_t*>(pool->RootArea());
  *root = 0;
  PPtr<uint64_t> dest = ToPPtr(root);
  ASSERT_FALSE(dest.IsNull());
  PPtr<void> block = pool->AllocTo(dest, 256);
  ASSERT_FALSE(block.IsNull());
  EXPECT_EQ(*root, block.raw);
  pool.reset();
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, TransientModeSkipsPersistence) {
  std::string path_cc = TestPath("pmem_cc.pool");
  std::string path_tr = TestPath("pmem_tr.pool");
  PmemPoolOptions cc;
  cc.size = 16 << 20;
  PmemPoolOptions tr = cc;
  tr.crash_consistent = false;

  auto pool_cc = PmemPool::Create(path_cc, 17, 0, cc);
  auto pool_tr = PmemPool::Create(path_tr, 18, 0, tr);
  ASSERT_NE(pool_cc, nullptr);
  ASSERT_NE(pool_tr, nullptr);

  auto flushes = [] { return GlobalNvmStats().flushes; };
  uint64_t f0 = flushes();
  for (int i = 0; i < 1000; ++i) {
    pool_cc->Free(pool_cc->Alloc(64).offset());
  }
  uint64_t cc_cost = flushes() - f0;
  f0 = flushes();
  for (int i = 0; i < 1000; ++i) {
    pool_tr->Free(pool_tr->Alloc(64).offset());
  }
  uint64_t tr_cost = flushes() - f0;
  EXPECT_GT(cc_cost, 1000u * 2) << "crash-consistent mode must flush";
  EXPECT_EQ(tr_cost, 0u) << "transient mode must not flush";
  pool_cc.reset();
  pool_tr.reset();
  NvmPoolFile::Remove(path_cc);
  NvmPoolFile::Remove(path_tr);
}

TEST_F(PmemTest, InterruptedAllocToRollsBackOnRecovery) {
  // Simulate a crash between "block taken" and "attached": write the log slot
  // state by hand, then re-open and verify the block is free again.
  std::string path = TestPath("pmem_recover.pool");
  PmemPoolOptions opts;
  opts.size = 8 << 20;
  uint64_t leaked_off;
  {
    auto pool = PmemPool::Create(path, 19, 0, opts);
    ASSERT_NE(pool, nullptr);
    PPtr<void> block = pool->Alloc(4096);
    leaked_off = block.offset();
    // Forge a pending log entry claiming this block was mid-AllocTo with a
    // destination that never got the pointer.
    auto* logs = reinterpret_cast<AllocLogSlot*>(static_cast<char*>(pool->base()) +
                                                 pool->header()->log_off);
    auto* root = static_cast<uint64_t*>(pool->RootArea());
    *root = 0;
    logs[0].dest = ToPPtr(root).raw;
    logs[0].block = PPtr<void>::FromParts(19, leaked_off).raw;
    logs[0].size = 4096;
    logs[0].state = kLogAllocPending;
    logs[0].checksum = AllocSlotChecksum(logs[0]);
    PersistFence(&logs[0], sizeof(AllocLogSlot));
  }
  {
    std::unique_ptr<PmemPool> pool;
    ASSERT_EQ(PmemPool::Open(path, 19, 0, opts, &pool), Status::kOk);
    ASSERT_NE(pool, nullptr);
    // Recovery must have rolled the allocation back; allocating until
    // exhaustion must hand the same offset out again at some point.
    bool seen = false;
    while (true) {
      PPtr<void> p = pool->Alloc(4096);
      if (p.IsNull()) {
        break;
      }
      if (p.offset() == leaked_off) {
        seen = true;
        break;
      }
    }
    EXPECT_TRUE(seen) << "interrupted AllocTo leaked a block";
  }
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, CompletedAllocToSurvivesRecovery) {
  std::string path = TestPath("pmem_recover2.pool");
  PmemPoolOptions opts;
  opts.size = 8 << 20;
  uint64_t attached_off;
  {
    auto pool = PmemPool::Create(path, 20, 0, opts);
    ASSERT_NE(pool, nullptr);
    auto* root = static_cast<uint64_t*>(pool->RootArea());
    *root = 0;
    PPtr<void> block = pool->AllocTo(ToPPtr(root), 4096);
    attached_off = block.offset();
    // Forge the log as if the crash happened after attach but before the log
    // entry was retired.
    auto* logs = reinterpret_cast<AllocLogSlot*>(static_cast<char*>(pool->base()) +
                                                 pool->header()->log_off);
    logs[0].dest = ToPPtr(root).raw;
    logs[0].block = block.raw;
    logs[0].size = 4096;
    logs[0].state = kLogAllocPending;
    logs[0].checksum = AllocSlotChecksum(logs[0]);
    PersistFence(&logs[0], sizeof(AllocLogSlot));
    PersistFence(root, sizeof(*root));
  }
  {
    std::unique_ptr<PmemPool> pool;
    ASSERT_EQ(PmemPool::Open(path, 20, 0, opts, &pool), Status::kOk);
    ASSERT_NE(pool, nullptr);
    auto* root = static_cast<uint64_t*>(pool->RootArea());
    PPtr<void> attached(*root);
    EXPECT_EQ(attached.offset(), attached_off) << "attached block must survive";
    // And the block must NOT be handed out again.
    while (true) {
      PPtr<void> p = pool->Alloc(4096);
      if (p.IsNull()) {
        break;
      }
      EXPECT_NE(p.offset(), attached_off) << "double allocation after recovery";
    }
  }
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, ConcurrentAllocFreeStress) {
  std::string path = TestPath("pmem_mt.pool");
  PmemPoolOptions opts;
  opts.size = 64 << 20;
  auto pool = PmemPool::Create(path, 21, 0, opts);
  ASSERT_NE(pool, nullptr);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      std::vector<uint64_t> mine;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (mine.empty() || rng.Uniform(2) == 0) {
          size_t size = 64 << rng.Uniform(5);
          PPtr<void> p = pool->Alloc(size);
          if (p.IsNull()) {
            failed.store(true);
            return;
          }
          // Stamp the block; concurrent overlap would corrupt the stamp.
          std::memset(p.get(), t + 1, 64);
          mine.push_back(p.offset());
        } else {
          size_t idx = rng.Uniform(mine.size());
          uint64_t off = mine[idx];
          char* p = static_cast<char*>(pool->base()) + off;
          for (int b = 0; b < 64; ++b) {
            if (p[b] != t + 1) {
              failed.store(true);
              return;
            }
          }
          pool->Free(off);
          mine[idx] = mine.back();
          mine.pop_back();
        }
      }
      for (uint64_t off : mine) {
        pool->Free(off);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load()) << "corruption or OOM under concurrency";
  EXPECT_EQ(pool->Stats().allocs, pool->Stats().frees);
  pool.reset();
  NvmPoolFile::Remove(path);
}

TEST_F(PmemTest, HeapStripesAcrossNumaNodes) {
  GlobalNvmConfig().numa_nodes = 2;
  PmemHeap::Destroy("pmem_heap_test");
  PmemHeapOptions opts;
  opts.pool_id_base = 30;
  opts.pool_size = 8 << 20;
  auto heap = PmemHeap::OpenOrCreate("pmem_heap_test", opts);
  ASSERT_NE(heap, nullptr);
  EXPECT_EQ(heap->pool_count(), 2u);
  SetCurrentNumaNode(0);
  PPtr<void> a = heap->Alloc(64);
  SetCurrentNumaNode(1);
  PPtr<void> b = heap->Alloc(64);
  EXPECT_EQ(a.pool(), 30u);
  EXPECT_EQ(b.pool(), 31u);
  heap.reset();
  PmemHeap::Destroy("pmem_heap_test");
}

TEST_F(PmemTest, DramHeapHasNoMediaTraffic) {
  PmemHeapOptions opts;
  opts.pool_id_base = 40;
  opts.pool_size = 8 << 20;
  opts.dram = true;
  auto heap = PmemHeap::OpenOrCreate("pmem_dram_test", opts);
  ASSERT_NE(heap, nullptr);
  NvmStatsSnapshot before = GlobalNvmStats();
  for (int i = 0; i < 100; ++i) {
    PPtr<void> p = heap->Alloc(256);
    ASSERT_FALSE(p.IsNull());
    PersistFence(p.get(), 256);  // should be a no-op on DRAM
  }
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.flushes, 0u);
  EXPECT_EQ(d.media_write_bytes, 0u);
}

TEST_F(PmemTest, OpenRejectsCorruptPoolFiles) {
  std::string path = TestPath("pmem_corrupt.pool");
  PmemPoolOptions opts;
  opts.size = 8 << 20;
  {
    auto pool = PmemPool::Create(path, 17, 0, opts);
    ASSERT_NE(pool, nullptr);
    ASSERT_FALSE(pool->Alloc(100).IsNull());
  }
  std::unique_ptr<PmemPool> out;
  // Missing file is reported as such, not as corruption.
  EXPECT_EQ(PmemPool::Open(TestPath("pmem_no_such.pool"), 17, 0, opts, &out),
            Status::kNotFound);
  // A foreign pool id must be rejected: silently adopting another pool's file
  // would scramble every persistent pointer into it.
  EXPECT_EQ(PmemPool::Open(path, 18, 0, opts, &out), Status::kCorrupted);
  EXPECT_EQ(out, nullptr);
  // The file itself is intact.
  EXPECT_EQ(PmemPool::Open(path, 17, 0, opts, &out), Status::kOk);
  ASSERT_NE(out, nullptr);
  out.reset();
  // Truncated mid-header: too small for a PoolHeader.
  std::filesystem::resize_file(path, 512);
  EXPECT_EQ(PmemPool::Open(path, 17, 0, opts, &out), Status::kCorrupted);
  EXPECT_EQ(out, nullptr);
  // Zero length: cannot even be mapped.
  std::filesystem::resize_file(path, 0);
  EXPECT_EQ(PmemPool::Open(path, 17, 0, opts, &out), Status::kCorrupted);
  NvmPoolFile::Remove(path);
  // Bad magic (e.g., a foreign file at the pool's path).
  {
    auto pool = PmemPool::Create(path, 17, 0, opts);
    ASSERT_NE(pool, nullptr);
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    uint64_t junk = 0x6b6e756a6b6e756aULL;
    f.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_EQ(PmemPool::Open(path, 17, 0, opts, &out), Status::kCorrupted);
  NvmPoolFile::Remove(path);
}

}  // namespace
}  // namespace pactree
