#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace pactree {
namespace {

TEST(HistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99.99), 0u);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.TotalCount(), 1u);
  uint64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, 900u);
  EXPECT_LE(p50, 1000u);
}

TEST(HistogramTest, PercentilesWithinBucketError) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  // Buckets keep 4 mantissa bits -> <= 6.25% relative error.
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    uint64_t expect = static_cast<uint64_t>(p / 100.0 * 100000);
    uint64_t got = h.Percentile(p);
    EXPECT_GE(got, expect * 93 / 100) << p;
    EXPECT_LE(got, expect) << p;  // lower bound of containing bucket
  }
}

TEST(HistogramTest, MergeEqualsCombined) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(1 << 20);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), both.TotalCount());
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0, 99.99}) {
    EXPECT_EQ(a.Percentile(p), both.Percentile(p)) << p;
  }
  EXPECT_EQ(a.Max(), both.Max());
}

TEST(HistogramTest, MonotonePercentiles) {
  LatencyHistogram h;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.Uniform(1'000'000));
  }
  uint64_t prev = 0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, LargeValues) {
  LatencyHistogram h;
  h.Record(~0ULL >> 1);
  h.Record(1ULL << 40);
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_GT(h.Percentile(99), 1ULL << 39);
}

}  // namespace
}  // namespace pactree
