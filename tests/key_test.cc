#include "src/common/key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/random.h"

namespace pactree {
namespace {

TEST(KeyTest, IntRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 255ULL, 256ULL, 0xdeadbeefULL, ~0ULL}) {
    EXPECT_EQ(Key::FromInt(v).ToInt(), v) << v;
  }
}

TEST(KeyTest, IntOrderMatchesByteOrder) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    Key ka = Key::FromInt(a);
    Key kb = Key::FromInt(b);
    EXPECT_EQ(a < b, ka < kb);
    EXPECT_EQ(a == b, ka == kb);
  }
}

TEST(KeyTest, StringOrder) {
  Key a = Key::FromString("apple");
  Key b = Key::FromString("banana");
  Key ab = Key::FromString("applesauce");
  EXPECT_LT(a, b);
  EXPECT_LT(a, ab);
  EXPECT_LT(ab, b);
  EXPECT_EQ(a, Key::FromString("apple"));
}

TEST(KeyTest, TruncatesTo32Bytes) {
  std::string long_str(100, 'x');
  Key k = Key::FromString(long_str);
  EXPECT_EQ(k.size(), Key::kMaxLen);
}

TEST(KeyTest, CanonicalizationStripsTrailingZeros) {
  uint8_t raw[4] = {'a', 'b', 0, 0};
  Key k = Key::FromBytes(raw, 4);
  EXPECT_EQ(k.size(), 2u);
  EXPECT_EQ(k, Key::FromString("ab"));
}

TEST(KeyTest, PaddedAtReadsZeroBeyondLength) {
  Key k = Key::FromString("ab");
  EXPECT_EQ(k.At(0), 'a');
  EXPECT_EQ(k.At(1), 'b');
  EXPECT_EQ(k.At(2), 0);
  EXPECT_EQ(k.At(31), 0);
}

TEST(KeyTest, MinMaxBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    Key k = Key::FromInt(rng.Next());
    EXPECT_LE(Key::Min(), k);
    EXPECT_LE(k, Key::Max());
  }
}

TEST(KeyTest, FingerprintIsDeterministicAndSpread) {
  std::vector<int> counts(256, 0);
  for (uint64_t i = 0; i < 4096; ++i) {
    Key k = Key::FromInt(i * 2654435761ULL);
    EXPECT_EQ(k.Fingerprint(), Key::FromInt(i * 2654435761ULL).Fingerprint());
    counts[k.Fingerprint()]++;
  }
  int zero_buckets = static_cast<int>(std::count(counts.begin(), counts.end(), 0));
  EXPECT_LT(zero_buckets, 32) << "fingerprints poorly distributed";
}

TEST(KeyTest, SortMatchesLexicographic) {
  Rng rng(11);
  std::vector<Key> keys;
  std::vector<std::string> strs;
  for (int i = 0; i < 500; ++i) {
    size_t len = 1 + rng.Uniform(20);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    strs.push_back(s);
    keys.push_back(Key::FromString(s));
  }
  std::sort(keys.begin(), keys.end());
  std::sort(strs.begin(), strs.end());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i].ToString(), strs[i]);
  }
}

}  // namespace
}  // namespace pactree
