// Crash-consistency tests for PACTree (paper §6.8 plus a stricter model).
//
// Two methodologies:
//   1. ShadowHeap (strict ADR): every store that was not clwb+sfence'd before
//      the simulated crash is discarded; the pool files are rewritten from the
//      captured durable images and the index is recovered from them.
//   2. fork + SIGKILL (the paper's §6.8 method): a child process loads keys and
//      is killed at a random moment; the parent reopens the pools (page-cache
//      contents survive, like NVM contents) and verifies every acknowledged
//      key.
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/shadow.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0) << path;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::pwrite(fd, bytes.data() + off, bytes.size() - off,
                         static_cast<off_t>(off));
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

class CrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    GlobalNvmConfig().numa_nodes = 1;  // one pool per heap keeps captures simple
    SetCurrentNumaNode(0);
    PacTree::Destroy("crash");
    opts_.name = "crash";
    opts_.pool_id_base = 130;
    opts_.pool_size = 48 << 20;
  }

  void TearDown() override {
    ShadowHeap::Disable();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("crash");
  }

  // Runs |ops| acknowledged operations against a fresh shadowed tree, crashes
  // (strict or chaos), restores the durable images, recovers, and verifies
  // that every acknowledged operation survived.
  void RunCrashPoint(int ops, CrashMode mode, uint64_t seed) {
    PacTree::Destroy("crash");
    auto tree = PacTree::Open(opts_);
    ASSERT_NE(tree, nullptr);
    struct PoolInfo {
      std::string path;
      void* base;
    };
    std::vector<PoolInfo> pools;
    for (PmemHeap* heap : {tree->search_heap(), tree->data_heap(), tree->log_heap()}) {
      for (uint32_t i = 0; i < heap->pool_count(); ++i) {
        PmemPool* pool = heap->pool(i);
        ShadowHeap::Enable(pool->base(), pool->size());
        pools.push_back({pool->path(), pool->base()});
      }
    }

    // Acknowledged state: key -> value (deletes remove).
    std::map<uint64_t, uint64_t> acked;
    Rng rng(seed);
    for (int i = 0; i < ops; ++i) {
      uint64_t k = rng.Uniform(5000);
      if (rng.Uniform(5) == 0 && !acked.empty()) {
        tree->Remove(Key::FromInt(k));
        acked.erase(k);
      } else {
        uint64_t v = rng.Next() | 1;
        tree->Insert(Key::FromInt(k), v);
        acked[k] = v;
      }
    }

    // Crash: capture the durable image of every pool.
    std::vector<std::vector<uint8_t>> images;
    for (const PoolInfo& p : pools) {
      images.push_back(ShadowHeap::CaptureRegion(p.base, mode, seed));
      ASSERT_FALSE(images.back().empty());
    }
    // The dying process goes away...
    tree.reset();
    EpochManager::Instance().DrainAll();
    ShadowHeap::Disable();
    // ...and the machine reboots with only the durable bytes.
    for (size_t i = 0; i < pools.size(); ++i) {
      OverwriteFile(pools[i].path, images[i]);
    }

    auto recovered = PacTree::Open(opts_);
    ASSERT_NE(recovered, nullptr) << "recovery failed";
    for (const auto& [k, v] : acked) {
      uint64_t got = 0;
      ASSERT_EQ(recovered->Lookup(Key::FromInt(k), &got), Status::kOk)
          << "acked key lost: " << k << " (ops=" << ops << ", seed=" << seed << ")";
      ASSERT_EQ(got, v) << "acked value wrong for key " << k;
    }
    std::string why;
    ASSERT_TRUE(recovered->CheckInvariants(&why)) << why;
    // Recovery must be idempotent: reopen once more.
    recovered.reset();
    EpochManager::Instance().DrainAll();
    auto again = PacTree::Open(opts_);
    ASSERT_NE(again, nullptr);
    for (const auto& [k, v] : acked) {
      uint64_t got = 0;
      ASSERT_EQ(again->Lookup(Key::FromInt(k), &got), Status::kOk) << k;
      ASSERT_EQ(got, v);
    }
    again.reset();
    EpochManager::Instance().DrainAll();
  }

  PacTreeOptions opts_;
};

TEST_F(CrashTest, StrictAdrCrashSweep) {
  // Many crash points: op counts chosen to land inside and around node splits.
  for (int ops : {1, 10, 63, 64, 65, 120, 200, 500, 1500, 4000}) {
    RunCrashPoint(ops, CrashMode::kStrict, static_cast<uint64_t>(ops) * 7919);
  }
}

TEST_F(CrashTest, ChaosEvictionCrashSweep) {
  // Random unflushed lines become durable (cache evictions): recovery must
  // tolerate "too much" durability as well.
  for (int ops : {64, 300, 1000, 3000}) {
    RunCrashPoint(ops, CrashMode::kChaos, static_cast<uint64_t>(ops) * 104729);
  }
}

TEST_F(CrashTest, SigkillRecoveryLoop) {
  // The paper's §6.8 methodology, scaled for a unit test (the bench binary
  // sec68_recovery runs the full 100 iterations).
  const std::string progress_path = NvmConfig::DefaultPoolDir() + "/crash.progress";
  constexpr int kIterations = 6;
  for (int iter = 0; iter < kIterations; ++iter) {
    PacTree::Destroy("crash");
    ::unlink(progress_path.c_str());
    // Progress file: child stores the count of acknowledged inserts.
    int pfd = ::open(progress_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(pfd, 0);
    ASSERT_EQ(::ftruncate(pfd, 4096), 0);
    auto* progress = static_cast<volatile uint64_t*>(
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, pfd, 0));
    ASSERT_NE(progress, MAP_FAILED);
    ::close(pfd);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: load keys forever; the parent will SIGKILL us.
      auto tree = PacTree::Open(opts_);
      if (tree == nullptr) {
        _exit(1);
      }
      Rng rng(static_cast<uint64_t>(iter) + 1);
      for (uint64_t i = 0;; ++i) {
        tree->Insert(Key::FromInt(i), i * 2 + 1);
        *progress = i + 1;  // acked; page cache survives SIGKILL
      }
    }
    // Parent: let the child run briefly, then kill it mid-flight.
    Rng rng(static_cast<uint64_t>(iter) * 31 + 7);
    ::usleep(static_cast<useconds_t>(20000 + rng.Uniform(120000)));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    uint64_t acked = *progress;
    ::munmap(const_cast<uint64_t*>(progress), 4096);
    auto tree = PacTree::Open(opts_);
    ASSERT_NE(tree, nullptr) << "recovery failed at iteration " << iter;
    for (uint64_t i = 0; i < acked; ++i) {
      uint64_t v = 0;
      ASSERT_EQ(tree->Lookup(Key::FromInt(i), &v), Status::kOk)
          << "iteration " << iter << ": acked key " << i << "/" << acked << " lost";
      ASSERT_EQ(v, i * 2 + 1);
    }
    std::string why;
    ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
    tree.reset();
    EpochManager::Instance().DrainAll();
  }
  ::unlink(progress_path.c_str());
}

}  // namespace
}  // namespace pactree
