#include "src/workload/ycsb.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/workload/keyset.h"
#include "src/workload/zipf.h"

namespace pactree {
namespace {

TEST(KeySetTest, DistinctAndDeterministic) {
  KeySet a(false);
  KeySet b(false);
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    Key k = a.At(i);
    EXPECT_EQ(k, b.At(i)) << "must be deterministic";
    EXPECT_TRUE(seen.insert(k.ToInt()).second) << "must be distinct at " << i;
  }
}

TEST(KeySetTest, StringKeysAre23Bytes) {
  KeySet ks(true);
  for (uint64_t i = 0; i < 1000; ++i) {
    Key k = ks.At(i);
    EXPECT_EQ(k.size(), 23u);
    EXPECT_EQ(k.ToString().substr(0, 4), "user");
  }
}

TEST(KeySetTest, DifferentSeedsDiffer) {
  KeySet a(false, 1);
  KeySet b(false, 2);
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.At(i) == b.At(i)) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(ZipfTest, InRangeAndSkewed) {
  constexpr uint64_t kN = 10000;
  ZipfGenerator zipf(kN, 0.99);
  Rng rng(3);
  std::vector<uint64_t> counts(kN, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, kN);
    counts[v]++;
  }
  // Rank-0 must dominate: with theta=0.99, p(0) ~ 1/zeta(n) ~ 10%.
  EXPECT_GT(counts[0], kDraws / 20);
  // Head heaviness: top-10 items cover a large share.
  uint64_t head = 0;
  for (int i = 0; i < 10; ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, static_cast<uint64_t>(kDraws) / 4);
  // Tail still reachable.
  uint64_t tail = 0;
  for (uint64_t i = kN / 2; i < kN; ++i) {
    tail += counts[i];
  }
  EXPECT_GT(tail, 0u);
}

TEST(ZipfTest, LowerThetaIsFlatter) {
  constexpr uint64_t kN = 10000;
  ZipfGenerator hot(kN, 0.99);
  ZipfGenerator mild(kN, 0.5);
  Rng rng(4);
  uint64_t hot0 = 0;
  uint64_t mild0 = 0;
  for (int i = 0; i < 100000; ++i) {
    if (hot.Next(rng) == 0) {
      hot0++;
    }
    if (mild.Next(rng) == 0) {
      mild0++;
    }
  }
  EXPECT_GT(hot0, mild0 * 3);
}

// Driver smoke test over a trivial in-memory index.
class MapIndex : public RangeIndex {
 public:
  Status Insert(const Key& k, uint64_t v) override {
    std::lock_guard<std::mutex> lock(mu_);
    bool existed = map_.count(k) > 0;
    map_[k] = v;
    return existed ? Status::kExists : Status::kOk;
  }
  Status Lookup(const Key& k, uint64_t* v) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) {
      return Status::kNotFound;
    }
    if (v != nullptr) {
      *v = it->second;
    }
    return Status::kOk;
  }
  Status Remove(const Key& k) override {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.erase(k) > 0 ? Status::kOk : Status::kNotFound;
  }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    std::lock_guard<std::mutex> lock(mu_);
    out->clear();
    for (auto it = map_.lower_bound(s); it != map_.end() && out->size() < n; ++it) {
      out->push_back(*it);
    }
    return out->size();
  }
  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  std::string Name() const override { return "MapIndex"; }

 private:
  mutable std::mutex mu_;
  std::map<Key, uint64_t> map_;
};

class YcsbDriverTest : public ::testing::TestWithParam<YcsbKind> {};

TEST_P(YcsbDriverTest, RunsCleanlyAndCountsOps) {
  GlobalNvmConfig() = NvmConfig();
  SetCurrentNumaNode(0);
  MapIndex index;
  YcsbSpec spec;
  spec.kind = GetParam();
  spec.record_count = 5000;
  spec.op_count = 20000;
  spec.threads = 2;
  spec.sample_rate = 1.0;
  YcsbResult load = YcsbDriver::Load(&index, spec);
  EXPECT_EQ(load.ops, spec.record_count);
  EXPECT_EQ(index.Size(), spec.record_count);
  YcsbResult run = YcsbDriver::Run(&index, spec);
  EXPECT_EQ(run.ops, spec.op_count);
  EXPECT_GT(run.mops, 0.0);
  EXPECT_EQ(run.latency.TotalCount(), run.ops) << "sample_rate=1 records all ops";
  if (spec.kind == YcsbKind::kE || spec.kind == YcsbKind::kAInsert) {
    EXPECT_GT(index.Size(), spec.record_count) << "run-phase inserts add keys";
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, YcsbDriverTest,
                         ::testing::Values(YcsbKind::kA, YcsbKind::kB, YcsbKind::kC,
                                           YcsbKind::kE, YcsbKind::kAInsert),
                         [](const ::testing::TestParamInfo<YcsbKind>& info) {
                           std::string n = YcsbKindName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace pactree
