// Exhaustive crash-point sweeps (RECIPE-style) over the fault-injection layer.
//
// For each trace (one index operation over a known base state) the harness
// first runs a count-only fault window to discover N, the number of
// persistence events the operation issues, then re-runs the trace once per
// crash point K in [1, N]: the shadow image is frozen at event K, the pool
// files are rebuilt from the captured images, the index is recovered from
// them, and the generic invariant checker (src/index/verify.h) audits the
// result. Every K of every trace must recover with zero violations, in all
// three fault modes:
//   strict -- nothing un-fenced survives;
//   chaos  -- plus random cache-line evictions at the crash instant;
//   torn   -- the event-K line/fence commits partially (8 B atomicity).
//
// Traces: PACTree single insert, leaf split, leaf merge, and delete, plus an
// insert-that-splits trace for each baseline (FastFair, FP-Tree, BzTree).
// Single-threaded with synchronous SMO application, so the event numbering is
// identical run to run and the sweep is genuinely exhaustive.
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <functional>

#include "src/index/range_index.h"
#include "src/index/verify.h"
#include "src/nvm/config.h"
#include "src/nvm/fault.h"
#include "src/nvm/shadow.h"
#include "src/nvm/topology.h"
#include "src/pmem/heap.h"
#include "src/pmem/pool.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0) << path;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::pwrite(fd, bytes.data() + off, bytes.size() - off,
                         static_cast<off_t>(off));
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

// One trace: |setup| builds the acknowledged base state (fully fenced, so it
// is durable in the shadow image), |window| runs the single operation under
// the armed fault window and records its key(s) as in-flight.
struct SweepScenario {
  std::function<void(RangeIndex*, RecoveryExpectation*)> setup;
  std::function<void(RangeIndex*, RecoveryExpectation*)> window;
};

void InsertAcked(RangeIndex* idx, RecoveryExpectation* exp, uint64_t k, uint64_t v) {
  ASSERT_EQ(idx->Insert(Key::FromInt(k), v), Status::kOk) << k;
  exp->acked[Key::FromInt(k)] = v;
}

void RemoveAcked(RangeIndex* idx, RecoveryExpectation* exp, uint64_t k) {
  ASSERT_EQ(idx->Remove(Key::FromInt(k)), Status::kOk) << k;
  exp->acked.erase(Key::FromInt(k));
  exp->removed.push_back(Key::FromInt(k));
}

class CrashSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    GlobalNvmConfig().numa_nodes = 1;  // one pool per heap keeps captures simple
    SetCurrentNumaNode(0);
  }

  void TearDown() override {
    FaultInjector::Disarm();
    ShadowHeap::Disable();
    EpochManager::Instance().DrainAll();
    for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kFastFair,
                           IndexKind::kFpTree, IndexKind::kBzTree}) {
      DestroyIndex(kind, IndexName(kind));
    }
  }

  static std::string IndexName(IndexKind kind) {
    return std::string("sweep_") + IndexKindName(kind);
  }

  std::unique_ptr<RangeIndex> OpenIndex(IndexKind kind, bool open_existing) {
    IndexFactoryOptions o;
    o.name = IndexName(kind);
    o.pool_id_base = static_cast<uint16_t>(400 + 32 * static_cast<int>(kind));
    o.pool_size = 32 << 20;
    o.per_numa_pools = false;
    // Synchronous SMO application: all persistence events of a split/merge
    // land on the arming thread, making the event numbering deterministic.
    // The same flag keeps the absorb buffer service-free, so window drains
    // (and their log trims) run inline on the arming thread too.
    o.pactree_async_update = false;
    o.pactree_absorb_writes = absorb_;
    o.open_existing = open_existing;
    if (open_existing && recover_updaters_ > 0) {
      // Recovery-side override: bring the index back up with live per-shard
      // updater services, proving recovery composes with multi-updater mode
      // (recovery itself still runs single-threaded before services start).
      o.pactree_async_update = true;
      o.pactree_updaters = recover_updaters_;
    }
    return CreateIndex(kind, o);
  }

  // When nonzero, recovery-side opens run async with this many updaters.
  uint32_t recover_updaters_ = 0;
  // Route the trace's writes through the absorb buffer (both the pre-crash
  // index and the recovered one, whose Open replays the op-log rings).
  bool absorb_ = false;

  // Builds the trace's base state, arms the window, runs the operation,
  // captures the (possibly frozen) durable image, rebuilds the pool files and
  // recovers. Returns the window's event count; reports checker violations as
  // test failures tagged with (kind, mode, K).
  uint64_t RunCrashPoint(IndexKind kind, const SweepScenario& sc, FaultMode mode,
                         uint64_t crash_event, uint64_t seed) {
    DestroyIndex(kind, IndexName(kind));
    auto index = OpenIndex(kind, /*open_existing=*/false);
    EXPECT_NE(index, nullptr);
    if (index == nullptr) {
      return 0;
    }
    RecoveryExpectation exp;
    sc.setup(index.get(), &exp);
    index->Drain();

    struct PoolInfo {
      std::string path;
      void* base;
    };
    std::vector<PoolInfo> pools;
    for (PmemHeap* heap : index->Heaps()) {
      for (uint32_t i = 0; i < heap->pool_count(); ++i) {
        PmemPool* pool = heap->pool(i);
        ShadowHeap::Enable(pool->base(), pool->size());
        pools.push_back({pool->path(), pool->base()});
      }
    }
    EXPECT_FALSE(pools.empty()) << "index exposes no heaps to shadow";

    CrashPlan plan;
    plan.mode = mode;
    plan.crash_event = crash_event;
    plan.seed = seed;
    FaultInjector::Arm(plan);
    sc.window(index.get(), &exp);
    uint64_t events = FaultInjector::EventCount();
    bool triggered = FaultInjector::Triggered();
    FaultInjector::Disarm();
    EXPECT_EQ(triggered, crash_event != 0 && crash_event <= events)
        << "crash_event=" << crash_event << " events=" << events;

    // Mode side effects (evictions, torn lines) were applied by the injector
    // at the crash instant; the frozen image is captured as-is.
    std::vector<std::vector<uint8_t>> images;
    for (const PoolInfo& p : pools) {
      images.push_back(ShadowHeap::CaptureRegion(p.base, CrashMode::kStrict));
      EXPECT_FALSE(images.back().empty());
    }
    index.reset();
    EpochManager::Instance().DrainAll();
    ShadowHeap::Disable();
    for (size_t i = 0; i < pools.size(); ++i) {
      OverwriteFile(pools[i].path, images[i]);
    }

    auto recovered = OpenIndex(kind, /*open_existing=*/true);
    EXPECT_NE(recovered, nullptr)
        << IndexName(kind) << " recovery failed at K=" << crash_event;
    if (recovered != nullptr) {
      VerifyReport report = VerifyRecoveredIndex(*recovered, exp);
      EXPECT_TRUE(report.ok())
          << IndexName(kind) << " mode=" << static_cast<int>(mode)
          << " K=" << crash_event << "/" << events << ": " << report.ToString();
      recovered.reset();
    }
    EpochManager::Instance().DrainAll();
    return events;
  }

  // Exhaustive sweep: discover N with a count-only window, then crash at
  // every K in [1, N].
  void Sweep(IndexKind kind, const SweepScenario& sc, FaultMode mode) {
    uint64_t n = RunCrashPoint(kind, sc, mode, /*crash_event=*/0, /*seed=*/0);
    ASSERT_GT(n, 0u) << "operation issued no persistence events";
    for (uint64_t k = 1; k <= n; ++k) {
      RunCrashPoint(kind, sc, mode, k, /*seed=*/0x9e3779b9ULL * k + 1);
      if (HasFatalFailure()) {
        return;
      }
    }
  }

  void SweepAllModes(IndexKind kind, const SweepScenario& sc) {
    for (FaultMode mode : {FaultMode::kStrict, FaultMode::kChaos, FaultMode::kTorn}) {
      Sweep(kind, sc, mode);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        return;  // one failing mode produces enough diagnostics
      }
    }
  }
};

// --- PACTree traces ---------------------------------------------------------

TEST_F(CrashSweepTest, PacTreeInsert) {
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 3; ++i) {
      InsertAcked(idx, exp, i * 70, i * 70 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    idx->Insert(Key::FromInt(100), 101);
    exp->inflight[Key::FromInt(100)] = 101;
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

TEST_F(CrashSweepTest, PacTreeSplit) {
  // 64 keys fill one data node (kDataNodeEntries); the window insert has no
  // free slot and must split.
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 64; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    idx->Insert(Key::FromInt(645), 646);
    exp->inflight[Key::FromInt(645)] = 646;
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

TEST_F(CrashSweepTest, PacTreeMerge) {
  // Build two sibling data nodes, then delete down to exactly the merge
  // threshold (kMergeThreshold = 24 combined live keys) so the window remove
  // is the one that triggers the merge.
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 64; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
    InsertAcked(idx, exp, 650, 651);  // 65th key: splits into 32 + 33
    for (uint64_t i = 1; i <= 20; ++i) {
      RemoveAcked(idx, exp, i * 10);  // left node: 32 -> 12
    }
    for (uint64_t i = 33; i <= 53; ++i) {
      RemoveAcked(idx, exp, i * 10);  // right node: 33 -> 12
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    // 23 combined live keys after this remove: merge fires.
    idx->Remove(Key::FromInt(210));
    exp->acked.erase(Key::FromInt(210));
    exp->inflight[Key::FromInt(210)] = 211;
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

TEST_F(CrashSweepTest, PacTreeSplitMultiUpdaterRecovery) {
  // Same split trace as PacTreeSplit, but every post-crash open runs with two
  // background updater services: the single-threaded recovery pass must hand
  // the (reset) rings to the sharded replay path without losing the §4.3
  // guarantees.
  recover_updaters_ = 2;
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 64; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    idx->Insert(Key::FromInt(645), 646);
    exp->inflight[Key::FromInt(645)] = 646;
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

TEST_F(CrashSweepTest, PacTreeDelete) {
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 10; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    idx->Remove(Key::FromInt(50));
    exp->acked.erase(Key::FromInt(50));
    exp->inflight[Key::FromInt(50)] = 51;
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

// --- PACTree absorb traces --------------------------------------------------
//
// With absorb_writes on, an acknowledged write's durability point is its
// op-log append, and the data-layer application (plus the log trim that
// retires the entries) happens in a drain pass. Three windows cover the three
// persistence phases: the bare append, a drain that must split a full node,
// and a tombstone drain ending in a trim. Setup state is always fully drained
// (RunCrashPoint calls Drain() after setup), so acked keys live in the data
// layer and only the window's ops ride the log across the crash.

TEST_F(CrashSweepTest, PacTreeAbsorbLogAppend) {
  absorb_ = true;
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 3; ++i) {
      InsertAcked(idx, exp, i * 70, i * 70 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    // Only the append happens in the window: the op either became durable in
    // the ring (recovery replays it) or tore (recovery discards it).
    idx->Insert(Key::FromInt(100), 101);
    exp->inflight[Key::FromInt(100)] = 101;
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

TEST_F(CrashSweepTest, PacTreeAbsorbDrainSplit) {
  // Setup drains 64 keys into one full data node; the window stages two
  // inserts and forces the drain, whose batched application finds no free
  // slot and splits mid-apply. Crash points cover append, sorted apply, the
  // logged SMO, and the trailing log trim.
  absorb_ = true;
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 64; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    idx->Insert(Key::FromInt(645), 646);
    exp->inflight[Key::FromInt(645)] = 646;
    idx->Insert(Key::FromInt(15), 16);
    exp->inflight[Key::FromInt(15)] = 16;
    idx->Drain();
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

TEST_F(CrashSweepTest, PacTreeAbsorbTombstoneDrain) {
  absorb_ = true;
  SweepScenario sc;
  sc.setup = [](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 10; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
  };
  sc.window = [](RangeIndex* idx, RecoveryExpectation* exp) {
    // A staged tombstone over an acked key plus a fresh upsert, drained and
    // trimmed in the window. The removed key may survive (append not durable)
    // with its prior value or be gone; never half-applied.
    idx->Remove(Key::FromInt(50));
    exp->acked.erase(Key::FromInt(50));
    exp->inflight[Key::FromInt(50)] = 51;
    idx->Insert(Key::FromInt(55), 56);
    exp->inflight[Key::FromInt(55)] = 56;
    idx->Drain();
  };
  SweepAllModes(IndexKind::kPacTree, sc);
}

// --- Baseline insert+split traces -------------------------------------------
//
// Each setup fills one leaf exactly (kFfCardinality = 30, kFpLeafSlots = 32,
// kBzMaxRecords = 48 > kBzConsolidateMax, so the replacement splits); the
// window insert finds the leaf full and performs the structure modification.

SweepScenario BaselineSplitScenario(uint64_t leaf_capacity) {
  SweepScenario sc;
  sc.setup = [leaf_capacity](RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= leaf_capacity; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
  };
  sc.window = [leaf_capacity](RangeIndex* idx, RecoveryExpectation* exp) {
    uint64_t k = (leaf_capacity + 1) * 10;
    idx->Insert(Key::FromInt(k), k + 1);
    exp->inflight[Key::FromInt(k)] = k + 1;
  };
  return sc;
}

TEST_F(CrashSweepTest, FastFairInsertSplit) {
  SweepAllModes(IndexKind::kFastFair, BaselineSplitScenario(30));
}

TEST_F(CrashSweepTest, FpTreeInsertSplit) {
  SweepAllModes(IndexKind::kFpTree, BaselineSplitScenario(32));
}

TEST_F(CrashSweepTest, BzTreeInsertSplit) {
  SweepAllModes(IndexKind::kBzTree, BaselineSplitScenario(48));
}

}  // namespace
}  // namespace pactree
