#include <gtest/gtest.h>

#include <cstring>

#include "src/common/compiler.h"
#include "src/nvm/address_map.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/pool_file.h"
#include "src/nvm/shadow.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"

namespace pactree {
namespace {

std::string TestPath(const std::string& name) {
  return NvmConfig::DefaultPoolDir() + "/" + name;
}

class NvmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();  // reset knobs
    SetCurrentNumaNode(0);
    DropThreadReadCache();
  }
};

TEST_F(NvmTest, PoolFileCreateOpenPersistsContents) {
  std::string path = TestPath("nvm_test_a.pool");
  {
    NvmPoolFile f;
    ASSERT_TRUE(f.Create(path, 1 << 20, 0, 1));
    std::memcpy(f.base(), "hello", 6);
    PersistFence(f.base(), 6);
  }
  {
    NvmPoolFile f;
    ASSERT_TRUE(f.Open(path, 0, 1));
    EXPECT_STREQ(static_cast<const char*>(f.base()), "hello");
  }
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, AddressMapLookup) {
  std::string path = TestPath("nvm_test_map.pool");
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, 1, 7));
  NvmRange r;
  ASSERT_TRUE(LookupNvmRange(static_cast<char*>(f.base()) + 100, &r));
  EXPECT_EQ(r.node, 1u);
  EXPECT_EQ(r.pool_id, 7u);
  EXPECT_FALSE(LookupNvmRange(&path, &r));  // stack address is not NVM
  f.Close();
  EXPECT_FALSE(LookupNvmRange(static_cast<char*>(nullptr) + 100, &r));
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, FlushCountsAndXpLineCharging) {
  std::string path = TestPath("nvm_test_flush.pool");
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, 0, 2));
  NvmStatsSnapshot before = GlobalNvmStats();
  // 256 bytes = 4 cache lines in one XPLine: 4 flushes, one 256 B media write.
  char* p = static_cast<char*>(f.base());  // base is page-aligned -> XPLine-aligned
  PersistFence(p, 256);
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.flushes, 4u);
  EXPECT_EQ(d.media_write_bytes, kXpLineSize);
  EXPECT_EQ(d.fences, 1u);
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, XpBufferCombinesRepeatedFlushes) {
  std::string path = TestPath("nvm_test_comb.pool");
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, 0, 2));
  char* p = static_cast<char*>(f.base());
  PersistFence(p, 64);
  NvmStatsSnapshot before = GlobalNvmStats();
  for (int i = 0; i < 10; ++i) {
    PersistFence(p + 64 * (i % 4), 64);  // same XPLine repeatedly
  }
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.flushes, 10u);
  EXPECT_EQ(d.media_write_bytes, 0u) << "XPBuffer should combine";
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, ReadModelHitsAndMisses) {
  std::string path = TestPath("nvm_test_read.pool");
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, 0, 2));
  DropThreadReadCache();
  char* p = static_cast<char*>(f.base());
  NvmStatsSnapshot before = GlobalNvmStats();
  AnnotateNvmRead(p, 512);  // 2 XPLines, cold
  AnnotateNvmRead(p, 512);  // warm
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.read_misses, 2u);
  EXPECT_EQ(d.read_hits, 2u);
  EXPECT_EQ(d.media_read_bytes, 2 * kXpLineSize);
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, DirectoryProtocolChargesRemoteReadWrites) {
  GlobalNvmConfig().coherence = CoherenceProtocol::kDirectory;
  std::string path = TestPath("nvm_test_dir.pool");
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, /*node=*/1, 2));  // remote from node 0
  DropThreadReadCache();
  NvmStatsSnapshot before = GlobalNvmStats();
  AnnotateNvmRead(f.base(), 256);
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.remote_reads, 1u);
  EXPECT_EQ(d.directory_writes, 1u);
  EXPECT_EQ(d.media_write_bytes, kCacheLineSize) << "remote read wrote directory state";
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, SnoopProtocolDoesNotWriteOnRemoteRead) {
  GlobalNvmConfig().coherence = CoherenceProtocol::kSnoop;
  std::string path = TestPath("nvm_test_snoop.pool");
  NvmPoolFile f;
  ASSERT_TRUE(f.Create(path, 1 << 20, 1, 2));
  DropThreadReadCache();
  NvmStatsSnapshot before = GlobalNvmStats();
  AnnotateNvmRead(f.base(), 256);
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.remote_reads, 1u);
  EXPECT_EQ(d.directory_writes, 0u);
  EXPECT_EQ(d.media_write_bytes, 0u);
  f.Close();
  NvmPoolFile::Remove(path);
}

TEST_F(NvmTest, DramAddressesAreUnmodeled) {
  NvmStatsSnapshot before = GlobalNvmStats();
  char buf[256];
  PersistFence(buf, sizeof(buf));
  AnnotateNvmRead(buf, sizeof(buf));
  NvmStatsSnapshot d = GlobalNvmStats() - before;
  EXPECT_EQ(d.flushes, 0u);
  EXPECT_EQ(d.media_read_bytes, 0u);
}

// --- ShadowHeap crash-simulation semantics --------------------------------

class ShadowTest : public NvmTest {
 protected:
  void SetUp() override {
    NvmTest::SetUp();
    path_ = TestPath("nvm_test_shadow.pool");
    ASSERT_TRUE(f_.Create(path_, 1 << 20, 0, 3));
    ShadowHeap::Enable(f_.base(), f_.size());
  }
  void TearDown() override {
    ShadowHeap::Disable();
    f_.Close();
    NvmPoolFile::Remove(path_);
  }
  NvmPoolFile f_;
  std::string path_;
};

TEST_F(ShadowTest, UnpersistedStoresAreLostOnStrictCrash) {
  char* p = static_cast<char*>(f_.base());
  std::memcpy(p, "durable", 8);
  PersistFence(p, 8);
  std::memcpy(p + 64, "volatile", 9);  // never flushed
  auto img = ShadowHeap::Capture(CrashMode::kStrict);
  EXPECT_STREQ(reinterpret_cast<const char*>(img.data()), "durable");
  EXPECT_NE(std::string(reinterpret_cast<const char*>(img.data() + 64)), "volatile");
}

TEST_F(ShadowTest, FlushWithoutFenceIsNotDurable) {
  char* p = static_cast<char*>(f_.base());
  std::memcpy(p, "staged", 7);
  PersistRange(p, 7);  // clwb issued, no sfence yet
  auto img = ShadowHeap::Capture(CrashMode::kStrict);
  EXPECT_NE(std::string(reinterpret_cast<const char*>(img.data())), "staged");
  Fence();
  img = ShadowHeap::Capture(CrashMode::kStrict);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(img.data())), "staged");
}

TEST_F(ShadowTest, FlushCapturesContentsAtFlushTime) {
  char* p = static_cast<char*>(f_.base());
  std::memcpy(p, "AAAA", 5);
  PersistRange(p, 5);
  std::memcpy(p, "BBBB", 5);  // after clwb, before fence: not what was flushed
  Fence();
  auto img = ShadowHeap::Capture(CrashMode::kStrict);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(img.data())), "AAAA");
}

TEST_F(ShadowTest, ChaosModeMayEvictUnflushedLines) {
  char* p = static_cast<char*>(f_.base());
  for (size_t off = 0; off < (1 << 20); off += kCacheLineSize) {
    p[off] = 'x';
  }
  auto img = ShadowHeap::Capture(CrashMode::kChaos, /*seed=*/1, /*evict_probability=*/0.5);
  size_t evicted = 0;
  for (size_t off = 0; off < (1 << 20); off += kCacheLineSize) {
    if (img[off] == 'x') {
      evicted++;
    }
  }
  EXPECT_GT(evicted, 1000u);
  EXPECT_LT(evicted, 15000u);
}

}  // namespace
}  // namespace pactree
