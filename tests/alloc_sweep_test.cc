// Exhaustive allocation-failure sweeps (the robustness analogue of
// crash_sweep_test.cc): pool exhaustion as a first-class outcome.
//
// For each scenario (one write operation over a known base state) the harness
// first runs a count-only fail-point window to discover N, the number of
// allocation events the operation performs, then re-runs the scenario once per
// K in [1, N] with the K-th allocation forced to fail. Every K must leave the
// tree invariant-clean: the operation either completes anyway (the failed
// allocation was absorbable -- e.g. a deferred search-layer update) or returns
// kFull after a clean unwind, acknowledged keys stay served, a disarmed retry
// succeeds, and a clean close + reopen recovers with zero checker violations.
// The crash variant freezes the shadow heap at the exact failed-allocation
// instant (via the fail-point trigger hook) and recovers from that image.
//
// Scenarios: insert that splits a full data node (swept over both the
// "pmem/alloc" and "pmem/alloc_to" sites), an absorb drain whose batched
// application must split, recovery-time op-log replay over a captured image,
// and crash-at-failed-alloc. A final integration test genuinely fills a tiny
// pool: writes fail fast with kFull in read-only degraded mode while
// concurrent lookups and scans keep serving, deletes shrink the pool below the
// resume watermark, and the tree re-admits writes.
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/failpoint.h"
#include "src/index/range_index.h"
#include "src/index/verify.h"
#include "src/nvm/config.h"
#include "src/nvm/shadow.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/pmem/heap.h"
#include "src/pmem/pool.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

constexpr char kIndexName[] = "alloc_sweep";

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0) << path;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::pwrite(fd, bytes.data() + off, bytes.size() - off,
                         static_cast<off_t>(off));
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

void InsertAcked(RangeIndex* idx, RecoveryExpectation* exp, uint64_t k, uint64_t v) {
  ASSERT_EQ(idx->Insert(Key::FromInt(k), v), Status::kOk) << k;
  exp->acked[Key::FromInt(k)] = v;
}

class AllocSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    GlobalNvmConfig().numa_nodes = 1;  // single pool: no cross-node fallback
    SetCurrentNumaNode(0);
  }

  void TearDown() override {
    FailPoints::SetTriggerHook(nullptr);
    FailPoints::DisarmAll();
    ShadowHeap::Disable();
    EpochManager::Instance().DrainAll();
    DestroyIndex(IndexKind::kPacTree, kIndexName);
  }

  std::unique_ptr<RangeIndex> OpenIndex(bool open_existing) {
    IndexFactoryOptions o;
    o.name = kIndexName;
    o.pool_id_base = 560;
    o.pool_size = 32 << 20;
    o.per_numa_pools = false;
    // Synchronous SMO application: every allocation of the operation happens
    // on the arming thread, so thread-scoped fail points see a deterministic
    // event numbering and the sweep is genuinely exhaustive.
    o.pactree_async_update = false;
    o.pactree_absorb_writes = absorb_;
    o.open_existing = open_existing;
    return CreateIndex(IndexKind::kPacTree, o);
  }

  // Builds a full 64-key data node so the window insert has to split.
  void SetupFullNode(RangeIndex* idx, RecoveryExpectation* exp) {
    for (uint64_t i = 1; i <= 64; ++i) {
      InsertAcked(idx, exp, i * 10, i * 10 + 1);
    }
    idx->Drain();
  }

  // Closes |index| cleanly, reopens the pools, and audits the recovered tree.
  void ReopenAndVerify(std::unique_ptr<RangeIndex> index,
                       const RecoveryExpectation& exp, const char* tag,
                       uint64_t k) {
    index.reset();
    EpochManager::Instance().DrainAll();
    auto recovered = OpenIndex(/*open_existing=*/true);
    ASSERT_NE(recovered, nullptr) << tag << " K=" << k;
    VerifyReport report = VerifyRecoveredIndex(*recovered, exp);
    EXPECT_TRUE(report.ok()) << tag << " K=" << k << ": " << report.ToString();
    recovered.reset();
    EpochManager::Instance().DrainAll();
  }

  // One point of the insert-split sweep: fail the K-th allocation at |site|
  // (K=0 = count-only discovery). Returns the window's allocation-event count.
  uint64_t RunInsertSplitPoint(const char* site, uint64_t k) {
    DestroyIndex(IndexKind::kPacTree, kIndexName);
    auto index = OpenIndex(/*open_existing=*/false);
    EXPECT_NE(index, nullptr);
    if (index == nullptr) {
      return 0;
    }
    RecoveryExpectation exp;
    SetupFullNode(index.get(), &exp);

    FailPoints::Arm(site, k == 0 ? FailPointTrigger::CountOnly()
                                 : FailPointTrigger::NthHit(k));
    Status s = index->Insert(Key::FromInt(645), 646);
    uint64_t events = FailPoints::HitCount(site);
    bool triggered = FailPoints::TriggerCount(site) > 0;
    FailPoints::Disarm(site);

    EXPECT_EQ(triggered, k != 0 && k <= events)
        << site << " K=" << k << " events=" << events;
    // Exhaustion is a clean outcome, never a corrupt one: the op either
    // completed (the failed allocation was deferrable) or unwound to kFull.
    EXPECT_TRUE(s == Status::kOk || s == Status::kFull)
        << site << " K=" << k << " status=" << static_cast<int>(s);
    if (s == Status::kFull) {
      EXPECT_TRUE(triggered) << "kFull without an injected failure";
    }

    // Invariants hold right at the failure point (pending SMOs tolerated).
    std::string why;
    EXPECT_TRUE(index->CheckInvariants(&why)) << site << " K=" << k << ": " << why;
    // A failed insert is invisible; a completed one is served.
    uint64_t v = 0;
    EXPECT_EQ(index->Lookup(Key::FromInt(645), &v),
              s == Status::kOk ? Status::kOk : Status::kNotFound);
    // No acknowledged key was harmed by the unwind.
    for (uint64_t i = 1; i <= 64; i += 9) {
      EXPECT_EQ(index->Lookup(Key::FromInt(i * 10), &v), Status::kOk) << i * 10;
      EXPECT_EQ(v, i * 10 + 1);
    }

    // The unwind released every lock and retired nothing: a disarmed retry
    // takes the same split path and must succeed.
    Status rs = index->Insert(Key::FromInt(645), 646);
    EXPECT_TRUE(rs == Status::kOk || rs == Status::kExists)
        << site << " K=" << k << " retry=" << static_cast<int>(rs);
    if (s == Status::kFull) {
      EXPECT_EQ(rs, Status::kOk) << "retry after kFull must be a fresh insert";
    }
    exp.acked[Key::FromInt(645)] = 646;
    index->Drain();

    ReopenAndVerify(std::move(index), exp, site, k);
    return events;
  }

  void SweepInsertSplit(const char* site) {
    uint64_t n = RunInsertSplitPoint(site, 0);
    ASSERT_GT(n, 0u) << site << ": window performed no allocations";
    for (uint64_t k = 1; k <= n; ++k) {
      RunInsertSplitPoint(site, k);
      if (HasFatalFailure()) {
        return;
      }
    }
  }

  // Route writes through the absorb buffer (and replay its op-log rings on
  // every reopen).
  bool absorb_ = false;
};

// --- insert-split sweep ------------------------------------------------------

TEST_F(AllocSweepTest, InsertSplitSweepAllocSite) {
  SweepInsertSplit("pmem/alloc");
}

TEST_F(AllocSweepTest, InsertSplitSweepAllocToSite) {
  SweepInsertSplit("pmem/alloc_to");
}

// --- absorb drain-with-split sweep -------------------------------------------
//
// Acked ops live in the op-log ring; the drain's batched application finds the
// target node full and must split. A failed split aborts the batch with the
// durable prefix applied, the buffer keeps every entry logged and staged, and
// the next pass converges (the §4.2 re-application contract) -- acked writes
// survive the allocation failure without a single loss.

TEST_F(AllocSweepTest, AbsorbDrainSplitSweep) {
  absorb_ = true;
  auto run = [&](uint64_t k) -> uint64_t {
    DestroyIndex(IndexKind::kPacTree, kIndexName);
    auto index = OpenIndex(/*open_existing=*/false);
    EXPECT_NE(index, nullptr);
    if (index == nullptr) {
      return 0;
    }
    RecoveryExpectation exp;
    SetupFullNode(index.get(), &exp);

    FailPoints::Arm("pmem/alloc", k == 0 ? FailPointTrigger::CountOnly()
                                         : FailPointTrigger::NthHit(k));
    // Appends ack immediately (no allocation); the drain below applies them.
    InsertAcked(index.get(), &exp, 645, 646);
    InsertAcked(index.get(), &exp, 15, 16);
    index->Drain();
    uint64_t events = FailPoints::HitCount("pmem/alloc");
    FailPoints::Disarm("pmem/alloc");

    std::string why;
    EXPECT_TRUE(index->CheckInvariants(&why)) << "K=" << k << ": " << why;
    // One injected failure is not pool pressure: the tree must not degrade.
    EXPECT_NE(index->StatsJson().find("\"degraded\":0"), std::string::npos);
    uint64_t v = 0;
    EXPECT_EQ(index->Lookup(Key::FromInt(645), &v), Status::kOk);
    EXPECT_EQ(v, 646u);
    EXPECT_EQ(index->Lookup(Key::FromInt(15), &v), Status::kOk);
    EXPECT_EQ(v, 16u);

    ReopenAndVerify(std::move(index), exp, "absorb_drain", k);
    return events;
  };
  uint64_t n = run(0);
  ASSERT_GT(n, 0u) << "drain performed no allocations";
  for (uint64_t k = 1; k <= n; ++k) {
    run(k);
    if (HasFatalFailure()) {
      return;
    }
  }
}

// --- recovery-replay sweep ---------------------------------------------------
//
// Two acked appends ride the op-log ring across a (clean-image) reopen; the
// recovery replay has to split the full node to apply them. Failing the K-th
// replay allocation exercises the handoff: the temporary replay buffer leaves
// the failed ring's bytes intact (they are the only durable copy), Init
// retries through the live absorb buffer, and the acked keys come back -- for
// every K, with no degraded residue.

TEST_F(AllocSweepTest, RecoveryReplaySweep) {
  absorb_ = true;

  // Build the pre-reopen image ONCE: a full node in the data layer plus two
  // undrained acked appends in the ring, captured via the shadow heap.
  DestroyIndex(IndexKind::kPacTree, kIndexName);
  auto index = OpenIndex(/*open_existing=*/false);
  ASSERT_NE(index, nullptr);
  RecoveryExpectation exp;
  SetupFullNode(index.get(), &exp);

  struct PoolInfo {
    std::string path;
    void* base;
  };
  std::vector<PoolInfo> pools;
  for (PmemHeap* heap : index->Heaps()) {
    for (uint32_t i = 0; i < heap->pool_count(); ++i) {
      PmemPool* pool = heap->pool(i);
      ShadowHeap::Enable(pool->base(), pool->size());
      pools.push_back({pool->path(), pool->base()});
    }
  }
  ASSERT_FALSE(pools.empty());
  // The append IS the durability point: both keys are acked, so recovery owes
  // them back no matter which replay allocation fails.
  InsertAcked(index.get(), &exp, 645, 646);
  InsertAcked(index.get(), &exp, 15, 16);
  std::vector<std::vector<uint8_t>> images;
  for (const PoolInfo& p : pools) {
    images.push_back(ShadowHeap::CaptureRegion(p.base, CrashMode::kStrict));
    ASSERT_FALSE(images.back().empty());
  }
  index.reset();
  EpochManager::Instance().DrainAll();
  ShadowHeap::Disable();

  auto reopen_at = [&](uint64_t k) -> uint64_t {
    for (size_t i = 0; i < pools.size(); ++i) {
      OverwriteFile(pools[i].path, images[i]);
    }
    FailPoints::Arm("pmem/alloc", k == 0 ? FailPointTrigger::CountOnly()
                                         : FailPointTrigger::NthHit(k));
    auto recovered = OpenIndex(/*open_existing=*/true);
    uint64_t events = FailPoints::HitCount("pmem/alloc");
    FailPoints::Disarm("pmem/alloc");
    EXPECT_NE(recovered, nullptr) << "replay K=" << k;
    if (recovered == nullptr) {
      return events;
    }
    // The retry path converged: no pinned degraded mode, logs drained, every
    // acked key (including the two that rode the ring) served.
    EXPECT_NE(recovered->StatsJson().find("\"degraded\":0"), std::string::npos)
        << "replay K=" << k << " left the tree degraded";
    VerifyReport report = VerifyRecoveredIndex(*recovered, exp);
    EXPECT_TRUE(report.ok()) << "replay K=" << k << ": " << report.ToString();
    recovered.reset();
    EpochManager::Instance().DrainAll();
    return events;
  };

  uint64_t n = reopen_at(0);
  ASSERT_GT(n, 0u) << "replay performed no allocations";
  for (uint64_t k = 1; k <= n; ++k) {
    reopen_at(k);
    if (HasFatalFailure()) {
      return;
    }
  }
}

// --- crash at the failed allocation ------------------------------------------
//
// The trigger hook freezes the shadow image at the exact instant the K-th
// allocation fails -- the unwind's own persists (SMO cancel, lock release)
// never reach the durable image. Recovery must discard the half-started split
// and serve every acked key.

TEST_F(AllocSweepTest, CrashAtFailedAllocSweep) {
  auto run = [&](uint64_t k) -> uint64_t {
    DestroyIndex(IndexKind::kPacTree, kIndexName);
    auto index = OpenIndex(/*open_existing=*/false);
    EXPECT_NE(index, nullptr);
    if (index == nullptr) {
      return 0;
    }
    RecoveryExpectation exp;
    SetupFullNode(index.get(), &exp);

    struct PoolInfo {
      std::string path;
      void* base;
    };
    std::vector<PoolInfo> pools;
    for (PmemHeap* heap : index->Heaps()) {
      for (uint32_t i = 0; i < heap->pool_count(); ++i) {
        PmemPool* pool = heap->pool(i);
        ShadowHeap::Enable(pool->base(), pool->size());
        pools.push_back({pool->path(), pool->base()});
      }
    }
    EXPECT_FALSE(pools.empty());

    FailPoints::SetTriggerHook([](const char*) { ShadowHeap::Freeze(); });
    FailPoints::Arm("pmem/alloc", k == 0 ? FailPointTrigger::CountOnly()
                                         : FailPointTrigger::NthHit(k));
    Status s = index->Insert(Key::FromInt(645), 646);
    exp.inflight[Key::FromInt(645)] = 646;
    uint64_t events = FailPoints::HitCount("pmem/alloc");
    bool triggered = FailPoints::TriggerCount("pmem/alloc") > 0;
    FailPoints::Disarm("pmem/alloc");
    FailPoints::SetTriggerHook(nullptr);

    EXPECT_EQ(triggered, k != 0 && k <= events);
    EXPECT_EQ(ShadowHeap::IsFrozen(), triggered);
    EXPECT_TRUE(s == Status::kOk || s == Status::kFull);

    std::vector<std::vector<uint8_t>> captured;
    for (const PoolInfo& p : pools) {
      captured.push_back(ShadowHeap::CaptureRegion(p.base, CrashMode::kStrict));
      EXPECT_FALSE(captured.back().empty());
    }
    index.reset();
    EpochManager::Instance().DrainAll();
    ShadowHeap::Disable();
    for (size_t i = 0; i < pools.size(); ++i) {
      OverwriteFile(pools[i].path, captured[i]);
    }

    auto recovered = OpenIndex(/*open_existing=*/true);
    EXPECT_NE(recovered, nullptr) << "crash-at-alloc K=" << k;
    if (recovered != nullptr) {
      VerifyReport report = VerifyRecoveredIndex(*recovered, exp);
      EXPECT_TRUE(report.ok())
          << "crash-at-alloc K=" << k << "/" << events << ": " << report.ToString();
      recovered.reset();
    }
    EpochManager::Instance().DrainAll();
    return events;
  };

  uint64_t n = run(0);
  ASSERT_GT(n, 0u);
  for (uint64_t k = 1; k <= n; ++k) {
    run(k);
    if (HasFatalFailure()) {
      return;
    }
  }
}

// --- full-pool integration: read-only degraded mode --------------------------

TEST_F(AllocSweepTest, FullPoolDegradedModeServesReads) {
  PacTree::Destroy("alloc_full");
  PacTreeOptions o;
  o.name = "alloc_full";
  o.pool_id_base = 580;
  o.pool_size = 8 << 20;  // tiny: genuinely fillable in a few seconds
  o.per_numa_pools = false;
  o.async_search_update = false;
  auto tree = PacTree::Open(o);
  ASSERT_NE(tree, nullptr);

  // Fill until the data pool is genuinely exhausted.
  uint64_t inserted = 0;
  Status s = Status::kOk;
  for (uint64_t i = 1; i <= 4'000'000; ++i) {
    s = tree->Insert(Key::FromInt(i), i);
    if (s == Status::kFull) {
      break;
    }
    ASSERT_EQ(s, Status::kOk) << i;
    ++inserted;
  }
  ASSERT_EQ(s, Status::kFull) << "pool never filled";
  ASSERT_GT(inserted, 1000u);

  // The failed split tripped the inline pressure poll past the hard
  // watermark: read-only degraded mode, with the failure visible in stats.
  EXPECT_TRUE(tree->Degraded());
  PacTreeStats st = tree->Stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_GE(st.split_alloc_failures, 1u);
  EXPECT_GE(st.alloc_failures, 1u);
  EXPECT_GE(st.used_fraction, o.pressure_hard);

  // Writes fail fast while concurrent lookups and scans keep serving.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_oks{0};
  std::thread reader([&] {
    std::vector<std::pair<Key, uint64_t>> out;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t v = 0;
      if (tree->Lookup(Key::FromInt(1), &v) == Status::kOk && v == 1) {
        read_oks.fetch_add(1, std::memory_order_relaxed);
      }
      if (tree->Scan(Key::FromInt(1), 16, &out) == 16) {
        read_oks.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(tree->Insert(Key::FromInt(inserted + 7 + i), 1), Status::kFull);
    EXPECT_EQ(tree->Update(Key::FromInt(1), 2), Status::kFull);
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(read_oks.load(), 0u);
  EXPECT_GE(tree->Stats().write_rejects, 128u);
  uint64_t v = 0;
  ASSERT_EQ(tree->Lookup(Key::FromInt(1), &v), Status::kOk);
  EXPECT_EQ(v, 1u) << "a rejected update must not have applied";

  // MultiGet keeps serving in degraded mode.
  std::vector<Key> keys = {Key::FromInt(1), Key::FromInt(2), Key::FromInt(3)};
  uint64_t values[3] = {};
  Status statuses[3] = {};
  EXPECT_EQ(tree->MultiGet(keys, values, statuses), 3u);

  // Deletes are deliberately NOT gated: they are the only shrink path. Merge
  // cascades free nodes; once the used fraction falls to the resume
  // watermark, the tree re-admits writes.
  for (uint64_t i = 1; i <= inserted / 2; ++i) {
    tree->Remove(Key::FromInt(i));
  }
  // Merge victims are epoch-deferred; their chunks return to the pool only
  // once reclamation drains (quiescent here: the reader thread has joined).
  tree->DrainSmoLogs();
  EpochManager::Instance().DrainAll();
  tree->PollPressure();
  EXPECT_FALSE(tree->Degraded());
  EXPECT_LT(tree->Stats().used_fraction, o.pressure_resume);
  EXPECT_EQ(tree->Insert(Key::FromInt(inserted + 7), 1), Status::kOk);

  tree.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("alloc_full");
}

}  // namespace
}  // namespace pactree
