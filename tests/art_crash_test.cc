// Strict-ADR crash tests for standalone PDL-ART: every acknowledged insert
// must survive a crash in which all unflushed stores are lost (durable
// linearizability), and the allocation-log GC must leave no leaks behind.
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <map>

#include "src/art/art.h"
#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/shadow.h"
#include "src/nvm/topology.h"
#include "src/pmem/heap.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"

namespace pactree {
namespace {

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0) << path;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::pwrite(fd, bytes.data() + off, bytes.size() - off,
                         static_cast<off_t>(off));
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

class ArtCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    GlobalNvmConfig().numa_nodes = 1;
    SetCurrentNumaNode(0);
  }
  void TearDown() override {
    ShadowHeap::Disable();
    EpochManager::Instance().DrainAll();
    PmemHeap::Destroy("art_crash");
  }

  void RunCrashPoint(int ops, CrashMode mode, uint64_t seed) {
    PmemHeap::Destroy("art_crash");
    PmemHeapOptions hopts;
    hopts.pool_id_base = 340;
    hopts.pool_size = 64 << 20;
    auto heap = PmemHeap::OpenOrCreate("art_crash", hopts);
    ASSERT_NE(heap, nullptr);
    AdvanceGenerations({heap.get()});
    auto art = std::make_unique<PdlArt>(heap.get(), heap->Root<ArtTreeRoot>());
    std::string path = heap->primary()->path();
    ShadowHeap::Enable(heap->primary()->base(), heap->primary()->size());

    std::map<uint64_t, uint64_t> acked;
    Rng rng(seed);
    uint64_t live_before = 0;
    for (int i = 0; i < ops; ++i) {
      uint64_t k = rng.Uniform(3000);
      if (rng.Uniform(6) == 0 && !acked.empty()) {
        art->Remove(Key::FromInt(k));
        acked.erase(k);
      } else {
        uint64_t v = rng.Next() | 1;
        art->Insert(Key::FromInt(k), v);
        acked[k] = v;
      }
    }
    live_before = heap->primary()->LiveBytes();
    auto image = ShadowHeap::Capture(mode, seed);
    ASSERT_FALSE(image.empty());
    art.reset();
    EpochManager::Instance().DrainAll();
    heap.reset();
    OverwriteFile(path, image);

    auto heap2 = PmemHeap::OpenOrCreate("art_crash", hopts);
    ASSERT_NE(heap2, nullptr);
    AdvanceGenerations({heap2.get()});
    auto recovered = std::make_unique<PdlArt>(heap2.get(), heap2->Root<ArtTreeRoot>());
    recovered->Recover();
    for (const auto& [k, v] : acked) {
      uint64_t got = 0;
      ASSERT_EQ(recovered->Lookup(Key::FromInt(k), &got), Status::kOk)
          << "acked key lost: " << k << " ops=" << ops;
      ASSERT_EQ(got, v) << k;
    }
    // Ordered-scan equivalence against the model.
    std::vector<std::pair<Key, uint64_t>> all;
    recovered->Scan(Key::Min(), acked.size() + 16, &all);
    ASSERT_GE(all.size(), acked.size()) << "scan lost acked keys";
    // Leak sanity: live bytes after recovery should not exceed the pre-crash
    // footprint by more than the (bounded) in-flight window.
    EXPECT_LE(heap2->primary()->LiveBytes(), live_before + 64 * 1024);
    recovered.reset();
    EpochManager::Instance().DrainAll();
  }
};

TEST_F(ArtCrashTest, StrictCrashSweep) {
  for (int ops : {1, 5, 40, 200, 1000, 5000}) {
    RunCrashPoint(ops, CrashMode::kStrict, static_cast<uint64_t>(ops) * 31 + 1);
  }
}

TEST_F(ArtCrashTest, ChaosCrashSweep) {
  for (int ops : {50, 500, 3000}) {
    RunCrashPoint(ops, CrashMode::kChaos, static_cast<uint64_t>(ops) * 131 + 7);
  }
}

}  // namespace
}  // namespace pactree
