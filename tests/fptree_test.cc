#include "src/baselines/fptree.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

class FpTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    FpTree::Destroy("fp_test");
    opts_.name = "fp_test";
    opts_.pool_id_base = 220;
    opts_.pool_size = 256 << 20;
    tree_ = FpTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    FpTree::Destroy("fp_test");
  }

  FpTreeOptions opts_;
  std::unique_ptr<FpTree> tree_;
};

TEST_F(FpTreeTest, EmptyLookup) {
  EXPECT_EQ(tree_->Lookup(Key::FromInt(1), nullptr), Status::kNotFound);
}

TEST_F(FpTreeTest, InsertLookupUpsert) {
  EXPECT_EQ(tree_->Insert(Key::FromInt(9), 90), Status::kOk);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(9), &v), Status::kOk);
  EXPECT_EQ(v, 90u);
  EXPECT_EQ(tree_->Insert(Key::FromInt(9), 91), Status::kExists);
  ASSERT_EQ(tree_->Lookup(Key::FromInt(9), &v), Status::kOk);
  EXPECT_EQ(v, 91u);
}

TEST_F(FpTreeTest, BulkSequentialWithSplits) {
  constexpr uint64_t kN = 60000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk) << i;
  }
  EXPECT_EQ(tree_->Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 1);
  }
}

TEST_F(FpTreeTest, RandomAgainstModel) {
  Rng rng(321);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 40000; ++i) {
    uint64_t k = rng.Uniform(1 << 26);
    model[k] = i;
    tree_->Insert(Key::FromInt(k), i);
  }
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &got), Status::kOk) << k;
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(tree_->Size(), model.size());
}

TEST_F(FpTreeTest, RemoveWorks) {
  for (uint64_t i = 0; i < 10000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  for (uint64_t i = 0; i < 10000; i += 3) {
    ASSERT_EQ(tree_->Remove(Key::FromInt(i)), Status::kOk) << i;
  }
  for (uint64_t i = 0; i < 10000; ++i) {
    Status expect = (i % 3 == 0) ? Status::kNotFound : Status::kOk;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), nullptr), expect) << i;
  }
}

TEST_F(FpTreeTest, ScanSortsUnsortedLeaves) {
  Rng rng(4);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.Uniform(1 << 24);
    model[k] = i;
    tree_->Insert(Key::FromInt(k), i);
  }
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t start = rng.Uniform(1 << 24);
    std::vector<std::pair<Key, uint64_t>> out;
    size_t n = tree_->Scan(Key::FromInt(start), 50, &out);
    auto it = model.lower_bound(start);
    size_t expect = 0;
    for (auto jt = it; jt != model.end() && expect < 50; ++jt) {
      expect++;
    }
    ASSERT_EQ(n, expect) << start;
    for (size_t i = 0; i < n; ++i, ++it) {
      ASSERT_EQ(out[i].first.ToInt(), it->first);
      ASSERT_EQ(out[i].second, it->second);
    }
  }
}

TEST_F(FpTreeTest, InnerNodesRebuiltOnReopen) {
  constexpr uint64_t kN = 30000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(Key::FromInt(i * 7), i);
  }
  tree_.reset();
  EpochManager::Instance().DrainAll();
  tree_ = FpTree::Open(opts_);  // DRAM inner tree rebuilt from the leaf chain
  ASSERT_NE(tree_, nullptr);
  EXPECT_EQ(tree_->Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i * 7), &v), Status::kOk) << i;
    ASSERT_EQ(v, i);
  }
}

TEST_F(FpTreeTest, HtmStatsAccumulate) {
  for (uint64_t i = 0; i < 50000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  auto stats = tree_->HtmStats();
  EXPECT_GT(stats.begins, 50000u);
  EXPECT_GT(stats.commits, 0u);
}

TEST_F(FpTreeTest, SpuriousAbortsDegradeToFallback) {
  tree_.reset();
  FpTree::Destroy("fp_test");
  opts_.htm.spurious_abort_per_line = 0.2;  // brutal TLB-miss model
  opts_.max_htm_retries = 2;
  tree_ = FpTree::Open(opts_);
  ASSERT_NE(tree_, nullptr);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i), Status::kOk) << i;
  }
  auto stats = tree_->HtmStats();
  EXPECT_GT(stats.spurious_aborts, 100u);
  EXPECT_GT(stats.fallback_acquisitions, 100u) << "fallback path must engage";
  for (uint64_t i = 0; i < 5000; i += 13) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i);
  }
}

TEST_F(FpTreeTest, ConcurrentMixedOps) {
  constexpr uint64_t kSpace = 30000;
  for (uint64_t i = 0; i < kSpace; i += 2) {
    tree_->Insert(Key::FromInt(i), i);
  }
  std::atomic<bool> fail{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 9);
      for (int i = 0; i < 15000; ++i) {
        uint64_t k = rng.Uniform(kSpace);
        switch (rng.Uniform(4)) {
          case 0:
            tree_->Insert(Key::FromInt(k), k);
            break;
          case 1:
            tree_->Remove(Key::FromInt(k));
            break;
          default: {
            uint64_t v;
            if (tree_->Lookup(Key::FromInt(k), &v) == Status::kOk && v != k) {
              fail.store(true);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(fail.load());
  // On a single core the scheduler may serialize transactions perfectly, so
  // conflicts are possible but not guaranteed; only consistency is asserted.
  auto stats = tree_->HtmStats();
  EXPECT_GE(stats.begins, stats.commits);
}

}  // namespace
}  // namespace pactree
