// Background-maintenance runtime tests: BackgroundService lifecycle and drain
// semantics, the registry, epoch reclamation as a service, and PACTree's
// per-NUMA updater sharding (routing, pause/resume, backpressure, shutdown).
#include "src/runtime/maintenance.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/pactree/updater.h"
#include "src/runtime/workers.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

// ---------------------------------------------------------------------------
// BackgroundService / MaintenanceRegistry
// ---------------------------------------------------------------------------

TEST(BackgroundServiceTest, DrainRunsUntilWorkIsGone) {
  std::atomic<int> work{1000};
  BackgroundService::Options o;
  o.name = "test/consumer";
  o.idle_min_us = 50;
  BackgroundService* svc =
      MaintenanceRegistry::Instance().Register(std::move(o), [&] {
        int batch = 0;
        while (batch < 10 && work.fetch_sub(1, std::memory_order_relaxed) > 0) {
          batch++;
        }
        if (work.load(std::memory_order_relaxed) < 0) {
          work.store(0, std::memory_order_relaxed);
        }
        return static_cast<size_t>(batch);
      });
  svc->Drain([&] { return work.load(std::memory_order_relaxed) <= 0; });
  EXPECT_LE(work.load(), 0);
  MaintenanceStats s = svc->Stats();
  EXPECT_EQ(s.name, "test/consumer");
  EXPECT_GE(s.items, 1000u);
  EXPECT_GE(s.passes, 100u);
  EXPECT_EQ(s.drains, 1u);
  EXPECT_GE(s.pass_latency.TotalCount(), 100u);  // only productive passes
  MaintenanceRegistry::Instance().Unregister(svc);
}

TEST(BackgroundServiceTest, PauseIsABarrierAndResumeRestarts) {
  std::atomic<uint64_t> executed{0};
  BackgroundService::Options o;
  o.name = "test/pausable";
  o.idle_min_us = 50;
  o.idle_max_us = 200;
  BackgroundService* svc =
      MaintenanceRegistry::Instance().Register(std::move(o), [&] {
        executed.fetch_add(1, std::memory_order_relaxed);
        return size_t{0};
      });
  while (executed.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  svc->Pause();
  EXPECT_TRUE(svc->paused());
  // Barrier: once Pause returned, the pass count is frozen.
  uint64_t frozen = executed.load(std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(executed.load(std::memory_order_relaxed), frozen);
  svc->Resume();
  svc->Notify();
  while (executed.load(std::memory_order_relaxed) == frozen) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(svc->paused());
  MaintenanceRegistry::Instance().Unregister(svc);
}

TEST(BackgroundServiceTest, DrainOnPausedServiceRunsInline) {
  std::atomic<int> work{25};
  BackgroundService::Options o;
  o.name = "test/paused-drain";
  BackgroundService* svc =
      MaintenanceRegistry::Instance().Register(std::move(o), [&] {
        if (work.load(std::memory_order_relaxed) <= 0) {
          return size_t{0};
        }
        work.fetch_sub(1, std::memory_order_relaxed);
        return size_t{1};
      });
  svc->Pause();
  // The caller becomes the maintenance thread: work finishes with the worker
  // parked.
  svc->Drain([&] { return work.load(std::memory_order_relaxed) <= 0; });
  EXPECT_LE(work.load(), 0);
  EXPECT_TRUE(svc->paused());
  MaintenanceRegistry::Instance().Unregister(svc);
}

TEST(BackgroundServiceTest, RegistryFiltersByPrefix) {
  BackgroundService::Options a;
  a.name = "alpha/one";
  BackgroundService* sa =
      MaintenanceRegistry::Instance().Register(std::move(a), [] { return size_t{0}; });
  BackgroundService::Options b;
  b.name = "beta/one";
  BackgroundService* sb =
      MaintenanceRegistry::Instance().Register(std::move(b), [] { return size_t{0}; });
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("alpha/").size(), 1u);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("beta/").size(), 1u);
  EXPECT_GE(MaintenanceRegistry::Instance().StatsSnapshot("").size(), 2u);
  MaintenanceRegistry::Instance().Unregister(sa);
  MaintenanceRegistry::Instance().Unregister(sb);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("alpha/").size(), 0u);
}

TEST(BackgroundServiceTest, ConcurrentStopCallsAreSafe) {
  // Two racing Stop() calls must not both join the worker thread: the loser
  // has to wait for the winner's join instead of throwing std::system_error
  // on a no-longer-joinable thread.
  for (int round = 0; round < 50; ++round) {
    BackgroundService::Options o;
    o.name = "test/stop-race";
    o.idle_min_us = 1;
    BackgroundService svc(std::move(o), [] { return size_t{0}; });
    svc.Start();
    RunWorkerThreads(4, [&](uint32_t) { svc.Stop(); });
    EXPECT_FALSE(svc.running());
    svc.Start();  // the service must stay restartable after a racy stop
    EXPECT_TRUE(svc.running());
    svc.Stop();
  }
}

TEST(BackgroundServiceTest, PauseAndNotifyOutsideLifetimeAreNoOps) {
  // Pause()/Notify() before Start() or after Stop() have no worker to act on
  // and must be safe no-ops. In particular, a pre-Start Pause() must not leave
  // a stale paused_ bit behind: it would either be dropped silently by
  // Start() (callers believe the service is parked when it is running) or
  // divert a later Drain() into its synchronous fallback.
  std::atomic<uint64_t> executed{0};
  BackgroundService::Options o;
  o.name = "test/lifecycle-noop";
  o.idle_min_us = 1;
  BackgroundService svc(std::move(o), [&] {
    executed.fetch_add(1, std::memory_order_relaxed);
    return size_t{0};
  });
  // Before Start().
  svc.Notify();
  svc.Pause();
  EXPECT_FALSE(svc.paused());
  EXPECT_FALSE(svc.running());
  EXPECT_EQ(svc.Stats().notifies, 0u);

  svc.Start();
  EXPECT_TRUE(svc.running());
  EXPECT_FALSE(svc.paused());  // the pre-Start Pause() left nothing behind
  svc.Notify();
  svc.Drain([&] { return executed.load(std::memory_order_relaxed) > 0; });

  svc.Stop();
  // After Stop().
  svc.Notify();
  svc.Pause();
  EXPECT_FALSE(svc.paused());
  EXPECT_FALSE(svc.running());

  // And the service must still restart cleanly afterwards.
  svc.Start();
  EXPECT_TRUE(svc.running());
  svc.Pause();
  EXPECT_TRUE(svc.paused());  // a real Pause() on a live worker still works
  svc.Resume();
  svc.Stop();
}

TEST(BackgroundServiceTest, DrainSurvivesConcurrentStop) {
  // A drainer parked on the pass CV must notice a concurrent Stop() even when
  // its wakeup loses the mutex race to Stop()'s final critical section (which
  // resets stop_ after joining the worker): the wait predicate also watches
  // running_, so the drainer falls back to inline passes instead of sleeping
  // with no notifier left.
  for (int round = 0; round < 50; ++round) {
    std::atomic<bool> flag{false};
    BackgroundService::Options o;
    o.name = "test/drain-stop";
    o.idle_min_us = 1;
    BackgroundService svc(std::move(o), [] { return size_t{0}; });
    svc.Start();
    RunWorkerThreads(
        1,
        [&](uint32_t) {
          svc.Drain([&] { return flag.load(std::memory_order_relaxed); });
        },
        [&] {
          svc.Stop();
          flag.store(true, std::memory_order_relaxed);
        });
    EXPECT_TRUE(flag.load(std::memory_order_relaxed));
    EXPECT_FALSE(svc.running());
  }
}

TEST(EpochReclaimServiceTest, RefcountedSingleton) {
  auto count = [] {
    return MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size();
  };
  EXPECT_EQ(count(), 0u);
  EpochReclaimService::Acquire();
  EpochReclaimService::Acquire();
  EXPECT_EQ(count(), 1u);
  EpochReclaimService::Release();
  EXPECT_EQ(count(), 1u);  // still one holder
  EpochReclaimService::Release();
  EXPECT_EQ(count(), 0u);
}

// ---------------------------------------------------------------------------
// PACTree on the maintenance runtime
// ---------------------------------------------------------------------------

class MaintenanceTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();  // 2 logical NUMA nodes
    SetCurrentNumaNode(0);
    PacTree::Destroy("maint_test");
    opts_.name = "maint_test";
    opts_.pool_id_base = 130;
    opts_.pool_size = 256 << 20;
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("maint_test");
  }

  void Open() {
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void PauseAll() {
    for (BackgroundService* s : tree_->UpdaterServices()) {
      s->Pause();
    }
  }
  void ResumeAll() {
    for (BackgroundService* s : tree_->UpdaterServices()) {
      s->Resume();
    }
  }

  PacTreeOptions opts_;
  std::unique_ptr<PacTree> tree_;
};

TEST_F(MaintenanceTreeTest, DefaultOneUpdaterPerNumaNode) {
  Open();
  const auto& services = tree_->UpdaterServices();
  ASSERT_EQ(services.size(), 2u);  // numa_nodes = 2
  EXPECT_EQ(services[0]->name(), "maint_test/updater0");
  EXPECT_EQ(services[1]->name(), "maint_test/updater1");
  EXPECT_EQ(services[0]->numa_node(), 0);
  EXPECT_EQ(services[1]->numa_node(), 1);
  // The shared epoch-reclaim service is up while an async tree is open.
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size(), 1u);
  tree_.reset();
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size(), 0u);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("maint_test/").size(), 0u);
}

TEST_F(MaintenanceTreeTest, OpenFailureOnCorruptPoolRegistersNothing) {
  Open();
  ASSERT_EQ(tree_->Insert(Key::FromInt(1), 2), Status::kOk);
  tree_.reset();
  // Truncate one heap file: reopening must fail cleanly (a partially
  // constructed tree must not tear down a never-created updater) and must
  // leave no services behind in the registry.
  std::string path = NvmConfig::DefaultPoolDir() + "/maint_test.data.0.pool";
  ASSERT_EQ(::truncate(path.c_str(), 777), 0);
  tree_ = PacTree::Open(opts_);
  EXPECT_EQ(tree_, nullptr);
  EXPECT_EQ(MaintenanceRegistry::Instance().ServiceCount(), 0u);
}

TEST_F(MaintenanceTreeTest, ExplicitUpdaterCountOverridesDefault) {
  opts_.updater_count = 4;
  Open();
  EXPECT_EQ(tree_->UpdaterServices().size(), 4u);
  EXPECT_EQ(tree_->updater()->shards(), 4u);
}

TEST_F(MaintenanceTreeTest, DrainBarrierLeavesLogsEmpty) {
  Open();
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 4000; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(round * 100000 + i), i + 1), Status::kOk);
    }
    // The CV barrier returns only once every ring is drained -- no caller-side
    // sleep polling, and the guarantee holds immediately.
    tree_->DrainSmoLogs();
    EXPECT_TRUE(tree_->SmoLogsDrained());
  }
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.splits, 0u);
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

TEST_F(MaintenanceTreeTest, PauseResumeUnderConcurrentInserts) {
  Open();
  PauseAll();
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 3000;
  RunWorkerThreads(kThreads, [&](uint32_t t) {
    SetCurrentNumaNode(t % 2);
    for (uint64_t i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(t * 1000000 + i), i + 1), Status::kOk);
    }
  });
  // Updaters were paused throughout: the splits' SMO entries are still queued.
  EXPECT_FALSE(tree_->SmoLogsDrained());
  EXPECT_GT(tree_->Stats().splits, 0u);
  ResumeAll();
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  uint64_t v;
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(tree_->Lookup(Key::FromInt(t * 1000000 + i), &v), Status::kOk);
      ASSERT_EQ(v, i + 1);
    }
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_F(MaintenanceTreeTest, WriterNodeRoutesToOwningUpdater) {
  Open();
  // All SMO traffic comes from a logical-node-1 writer, so only updater1's
  // shard of rings ever holds entries.
  RunWorkerThreads(1, [&](uint32_t) {
    SetCurrentNumaNode(1);
    for (uint64_t i = 0; i < 6000; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
    }
  });
  tree_->DrainSmoLogs();
  ASSERT_GT(tree_->Stats().splits, 0u);
  MaintenanceStats u0 = tree_->UpdaterServices()[0]->Stats();
  MaintenanceStats u1 = tree_->UpdaterServices()[1]->Stats();
  EXPECT_EQ(u0.items, 0u);
  EXPECT_EQ(u1.items, tree_->Stats().smo_applied);
  EXPECT_GE(u1.pass_latency.TotalCount(), 1u);
  // Both workers were idle at some point during the run.
  EXPECT_GT(u0.idle_wakeups + u1.idle_wakeups, 0u);
}

TEST_F(MaintenanceTreeTest, ShutdownWithPendingEntriesLosesNothing) {
  Open();
  PauseAll();
  constexpr uint64_t kKeys = 5000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  EXPECT_FALSE(tree_->SmoLogsDrained());
  // Destructor path: drain must complete inline (services are paused), then
  // tear the services down cleanly.
  tree_.reset();
  opts_.updater_count = 0;
  tree_ = PacTree::Open(opts_);  // re-attach, runs recovery
  ASSERT_NE(tree_, nullptr);
  EXPECT_TRUE(tree_->SmoLogsDrained());
  EXPECT_EQ(tree_->Size(), kKeys);
  uint64_t v;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk);
    ASSERT_EQ(v, i + 1);
  }
}

TEST_F(MaintenanceTreeTest, RingFullBackpressureBlocksAndRecovers) {
  opts_.smo_ring_capacity = 4;  // force backpressure after a handful of splits
  Open();
  PauseAll();
  constexpr uint64_t kKeys = 1500;  // ~40 splits from one writer >> capacity 4
  RunWorkerThreads(
      1,
      [&](uint32_t) {
        SetCurrentNumaNode(0);
        for (uint64_t i = 0; i < kKeys; ++i) {
          ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
        }
      },
      [&] {
        // Caller side of the spawn: wait until the writer is stalled on the
        // full ring, then un-pause the updaters to let it through.
        for (int spins = 0; spins < 10000; ++spins) {
          if (tree_->Stats().smo_ring_full_waits > 0) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ResumeAll();
      });
  EXPECT_GT(tree_->Stats().smo_ring_full_waits, 0u);
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  uint64_t v;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk);
  }
}

TEST_F(MaintenanceTreeTest, SyncModeRegistersNoServicesAndStaysDrained) {
  opts_.async_search_update = false;
  Open();
  EXPECT_TRUE(tree_->UpdaterServices().empty());
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("maint_test/").size(), 0u);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size(), 0u);
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  // Inline application retires each entry on the writer thread; there is no
  // separate drain path to wait on.
  EXPECT_TRUE(tree_->SmoLogsDrained());
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.splits, 0u);
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

TEST_F(MaintenanceTreeTest, CrossShardSameAnchorChainsReplayInCausalOrder) {
  // The reviewer scenario for presence-based ordering: a split(X) -> merge(X)
  // -> split(X) chain queued across three different shards. A replayer that
  // orders by "is X present in the trie" can apply the re-creating split
  // first (X absent because the original split is unapplied), let the merge
  // remove that fresh mapping, and finally apply the original split -- leaving
  // X pointing at the merged-away victim that Apply() already retired. The
  // predecessor-seq gate must serialize every such chain exactly.
  GlobalNvmConfig().numa_nodes = 3;
  PacTree::Destroy("maint_test");  // clear any stale third-node pool
  opts_.updater_count = 3;
  Open();
  ASSERT_EQ(tree_->UpdaterServices().size(), 3u);
  PauseAll();

  constexpr uint64_t kKeys = 6000;
  // Each phase runs on a fresh thread pinned to one logical node, so its SMOs
  // queue in exactly that node's shard.
  auto phase = [&](uint32_t node, const std::function<void()>& fn) {
    RunWorkerThreads(1, [&](uint32_t) {
      SetCurrentNumaNode(node);
      fn();
    });
  };
  // Build on node 0: the initial splits all queue in shard 0. Then empty the
  // tree on node 1 (merging every node away deletes every anchor; merges
  // queue in shard 1) and rebuild it with the identical insert sequence on
  // node 2 (the tree collapsed back to a lone empty head node, so the same
  // inserts re-split at the identical anchors; splits queue in shard 2).
  // Every recurring anchor now carries exactly the reviewer's chain:
  // split@shard0 -> merge@shard1 -> split@shard2.
  phase(0, [&] {
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
    }
  });
  phase(1, [&] {
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_EQ(tree_->Remove(Key::FromInt(i)), Status::kOk);
    }
  });
  phase(2, [&] {
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 2), Status::kOk);
    }
  });
  // Before releasing the updaters, confirm the rings really do hold same-
  // anchor chains whose links cross shards -- including full split/merge/split
  // chains spanning three distinct shards.
  std::map<uint64_t, std::pair<const SmoLogEntry*, uint32_t>> by_seq;
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = tree_->updater()->log(s);
    if (log == nullptr) {
      continue;
    }
    for (uint64_t i = log->head; i < log->tail; ++i) {
      const SmoLogEntry& e = log->At(i);
      if (e.seq != 0) {
        by_seq[e.seq] = {&e, static_cast<uint32_t>(s % 3)};
      }
    }
  }
  uint64_t cross_links = 0;
  uint64_t three_shard_chains = 0;
  for (const auto& [seq, entry_shard] : by_seq) {
    const auto& [e, shard] = entry_shard;
    if (e->pred_seq == 0) {
      continue;
    }
    auto pred = by_seq.find(e->pred_seq);
    if (pred == by_seq.end()) {
      continue;
    }
    const auto& [p, pred_shard] = pred->second;
    if (pred_shard != shard) {
      cross_links++;
    }
    if (p->pred_seq != 0) {
      auto grand = by_seq.find(p->pred_seq);
      if (grand != by_seq.end() && shard != pred_shard &&
          pred_shard != grand->second.second && shard != grand->second.second) {
        three_shard_chains++;
      }
    }
  }
  EXPECT_GT(cross_links, 0u);
  EXPECT_GT(three_shard_chains, 0u);

  // Adversarial resume order: wake the shard holding the *latest* link of
  // every chain first and give it several passes, then the merges, then the
  // original splits. A presence-ordered replayer deterministically applies
  // the re-creating splits first here; the predecessor-seq gate must instead
  // hold every link until its predecessor shard catches up.
  const auto& services = tree_->UpdaterServices();
  auto release = [&](uint32_t u) {
    uint64_t passes = services[u]->Stats().passes;
    services[u]->Resume();
    services[u]->Notify();
    for (int spin = 0; spin < 2000; ++spin) {
      if (services[u]->Stats().passes >= passes + 3) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  release(2);
  release(1);
  release(0);
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  // CheckInvariants verifies that the drained search layer exactly mirrors
  // the data layer -- a chain replayed out of order leaves anchors mapped to
  // the merged-away (retired) victims instead of the rebuilt nodes.
  std::string why;
  ASSERT_TRUE(tree_->CheckInvariants(&why)) << why;
  EXPECT_EQ(tree_->Size(), kKeys);
  uint64_t v = 0;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 2);  // value from the rebuild
  }
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.merges, 0u);
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

TEST_F(MaintenanceTreeTest, MultiUpdaterChurnMatchesModel) {
  opts_.updater_count = 2;
  Open();
  constexpr uint32_t kThreads = 4;
  std::vector<std::map<uint64_t, uint64_t>> models(kThreads);
  // Insert/remove churn over disjoint per-thread ranges: splits and merges
  // re-create and remove the same anchors repeatedly, which exercises the
  // same-anchor predecessor-seq deferral across shards.
  RunWorkerThreads(kThreads, [&](uint32_t t) {
    SetCurrentNumaNode(t % 2);
    uint64_t base = static_cast<uint64_t>(t) * 10'000'000;
    for (uint64_t round = 0; round < 3; ++round) {
      for (uint64_t i = 0; i < 3000; ++i) {
        uint64_t k = base + i;
        tree_->Insert(Key::FromInt(k), k + round);
        models[t][k] = k + round;
      }
      // Thin each range to ~10% so sibling nodes drop under the merge
      // threshold; the next round's reinserts split the merged nodes again.
      for (uint64_t i = 0; i < 3000; ++i) {
        if (i % 10 == round) {
          continue;
        }
        uint64_t k = base + i;
        tree_->Remove(Key::FromInt(k));
        models[t].erase(k);
      }
    }
  });
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  std::string why;
  ASSERT_TRUE(tree_->CheckInvariants(&why)) << why;
  uint64_t expected = 0;
  for (uint32_t t = 0; t < kThreads; ++t) {
    expected += models[t].size();
    for (const auto& [k, val] : models[t]) {
      uint64_t v = 0;
      ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &v), Status::kOk) << k;
      ASSERT_EQ(v, val);
    }
  }
  EXPECT_EQ(tree_->Size(), expected);
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.merges, 0u);  // churn must have produced merges
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

}  // namespace
}  // namespace pactree
