// Background-maintenance runtime tests: BackgroundService lifecycle and drain
// semantics, the registry, epoch reclamation as a service, and PACTree's
// per-NUMA updater sharding (routing, pause/resume, backpressure, shutdown).
#include "src/runtime/maintenance.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/pactree/updater.h"
#include "src/runtime/workers.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

// ---------------------------------------------------------------------------
// BackgroundService / MaintenanceRegistry
// ---------------------------------------------------------------------------

TEST(BackgroundServiceTest, DrainRunsUntilWorkIsGone) {
  std::atomic<int> work{1000};
  BackgroundService::Options o;
  o.name = "test/consumer";
  o.idle_min_us = 50;
  BackgroundService* svc =
      MaintenanceRegistry::Instance().Register(std::move(o), [&] {
        int batch = 0;
        while (batch < 10 && work.fetch_sub(1, std::memory_order_relaxed) > 0) {
          batch++;
        }
        if (work.load(std::memory_order_relaxed) < 0) {
          work.store(0, std::memory_order_relaxed);
        }
        return static_cast<size_t>(batch);
      });
  svc->Drain([&] { return work.load(std::memory_order_relaxed) <= 0; });
  EXPECT_LE(work.load(), 0);
  MaintenanceStats s = svc->Stats();
  EXPECT_EQ(s.name, "test/consumer");
  EXPECT_GE(s.items, 1000u);
  EXPECT_GE(s.passes, 100u);
  EXPECT_EQ(s.drains, 1u);
  EXPECT_GE(s.pass_latency.TotalCount(), 100u);  // only productive passes
  MaintenanceRegistry::Instance().Unregister(svc);
}

TEST(BackgroundServiceTest, PauseIsABarrierAndResumeRestarts) {
  std::atomic<uint64_t> executed{0};
  BackgroundService::Options o;
  o.name = "test/pausable";
  o.idle_min_us = 50;
  o.idle_max_us = 200;
  BackgroundService* svc =
      MaintenanceRegistry::Instance().Register(std::move(o), [&] {
        executed.fetch_add(1, std::memory_order_relaxed);
        return size_t{0};
      });
  while (executed.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  svc->Pause();
  EXPECT_TRUE(svc->paused());
  // Barrier: once Pause returned, the pass count is frozen.
  uint64_t frozen = executed.load(std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(executed.load(std::memory_order_relaxed), frozen);
  svc->Resume();
  svc->Notify();
  while (executed.load(std::memory_order_relaxed) == frozen) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(svc->paused());
  MaintenanceRegistry::Instance().Unregister(svc);
}

TEST(BackgroundServiceTest, DrainOnPausedServiceRunsInline) {
  std::atomic<int> work{25};
  BackgroundService::Options o;
  o.name = "test/paused-drain";
  BackgroundService* svc =
      MaintenanceRegistry::Instance().Register(std::move(o), [&] {
        if (work.load(std::memory_order_relaxed) <= 0) {
          return size_t{0};
        }
        work.fetch_sub(1, std::memory_order_relaxed);
        return size_t{1};
      });
  svc->Pause();
  // The caller becomes the maintenance thread: work finishes with the worker
  // parked.
  svc->Drain([&] { return work.load(std::memory_order_relaxed) <= 0; });
  EXPECT_LE(work.load(), 0);
  EXPECT_TRUE(svc->paused());
  MaintenanceRegistry::Instance().Unregister(svc);
}

TEST(BackgroundServiceTest, RegistryFiltersByPrefix) {
  BackgroundService::Options a;
  a.name = "alpha/one";
  BackgroundService* sa =
      MaintenanceRegistry::Instance().Register(std::move(a), [] { return size_t{0}; });
  BackgroundService::Options b;
  b.name = "beta/one";
  BackgroundService* sb =
      MaintenanceRegistry::Instance().Register(std::move(b), [] { return size_t{0}; });
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("alpha/").size(), 1u);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("beta/").size(), 1u);
  EXPECT_GE(MaintenanceRegistry::Instance().StatsSnapshot("").size(), 2u);
  MaintenanceRegistry::Instance().Unregister(sa);
  MaintenanceRegistry::Instance().Unregister(sb);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("alpha/").size(), 0u);
}

TEST(EpochReclaimServiceTest, RefcountedSingleton) {
  auto count = [] {
    return MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size();
  };
  EXPECT_EQ(count(), 0u);
  EpochReclaimService::Acquire();
  EpochReclaimService::Acquire();
  EXPECT_EQ(count(), 1u);
  EpochReclaimService::Release();
  EXPECT_EQ(count(), 1u);  // still one holder
  EpochReclaimService::Release();
  EXPECT_EQ(count(), 0u);
}

// ---------------------------------------------------------------------------
// PACTree on the maintenance runtime
// ---------------------------------------------------------------------------

class MaintenanceTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();  // 2 logical NUMA nodes
    SetCurrentNumaNode(0);
    PacTree::Destroy("maint_test");
    opts_.name = "maint_test";
    opts_.pool_id_base = 130;
    opts_.pool_size = 256 << 20;
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("maint_test");
  }

  void Open() {
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void PauseAll() {
    for (BackgroundService* s : tree_->UpdaterServices()) {
      s->Pause();
    }
  }
  void ResumeAll() {
    for (BackgroundService* s : tree_->UpdaterServices()) {
      s->Resume();
    }
  }

  PacTreeOptions opts_;
  std::unique_ptr<PacTree> tree_;
};

TEST_F(MaintenanceTreeTest, DefaultOneUpdaterPerNumaNode) {
  Open();
  const auto& services = tree_->UpdaterServices();
  ASSERT_EQ(services.size(), 2u);  // numa_nodes = 2
  EXPECT_EQ(services[0]->name(), "maint_test/updater0");
  EXPECT_EQ(services[1]->name(), "maint_test/updater1");
  EXPECT_EQ(services[0]->numa_node(), 0);
  EXPECT_EQ(services[1]->numa_node(), 1);
  // The shared epoch-reclaim service is up while an async tree is open.
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size(), 1u);
  tree_.reset();
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size(), 0u);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("maint_test/").size(), 0u);
}

TEST_F(MaintenanceTreeTest, OpenFailureOnCorruptPoolRegistersNothing) {
  Open();
  ASSERT_EQ(tree_->Insert(Key::FromInt(1), 2), Status::kOk);
  tree_.reset();
  // Truncate one heap file: reopening must fail cleanly (a partially
  // constructed tree must not tear down a never-created updater) and must
  // leave no services behind in the registry.
  std::string path = NvmConfig::DefaultPoolDir() + "/maint_test.data.0.pool";
  ASSERT_EQ(::truncate(path.c_str(), 777), 0);
  tree_ = PacTree::Open(opts_);
  EXPECT_EQ(tree_, nullptr);
  EXPECT_EQ(MaintenanceRegistry::Instance().ServiceCount(), 0u);
}

TEST_F(MaintenanceTreeTest, ExplicitUpdaterCountOverridesDefault) {
  opts_.updater_count = 4;
  Open();
  EXPECT_EQ(tree_->UpdaterServices().size(), 4u);
  EXPECT_EQ(tree_->updater()->shards(), 4u);
}

TEST_F(MaintenanceTreeTest, DrainBarrierLeavesLogsEmpty) {
  Open();
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 4000; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(round * 100000 + i), i + 1), Status::kOk);
    }
    // The CV barrier returns only once every ring is drained -- no caller-side
    // sleep polling, and the guarantee holds immediately.
    tree_->DrainSmoLogs();
    EXPECT_TRUE(tree_->SmoLogsDrained());
  }
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.splits, 0u);
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

TEST_F(MaintenanceTreeTest, PauseResumeUnderConcurrentInserts) {
  Open();
  PauseAll();
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 3000;
  RunWorkerThreads(kThreads, [&](uint32_t t) {
    SetCurrentNumaNode(t % 2);
    for (uint64_t i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(t * 1000000 + i), i + 1), Status::kOk);
    }
  });
  // Updaters were paused throughout: the splits' SMO entries are still queued.
  EXPECT_FALSE(tree_->SmoLogsDrained());
  EXPECT_GT(tree_->Stats().splits, 0u);
  ResumeAll();
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  uint64_t v;
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(tree_->Lookup(Key::FromInt(t * 1000000 + i), &v), Status::kOk);
      ASSERT_EQ(v, i + 1);
    }
  }
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_F(MaintenanceTreeTest, WriterNodeRoutesToOwningUpdater) {
  Open();
  // All SMO traffic comes from a logical-node-1 writer, so only updater1's
  // shard of rings ever holds entries.
  RunWorkerThreads(1, [&](uint32_t) {
    SetCurrentNumaNode(1);
    for (uint64_t i = 0; i < 6000; ++i) {
      ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
    }
  });
  tree_->DrainSmoLogs();
  ASSERT_GT(tree_->Stats().splits, 0u);
  MaintenanceStats u0 = tree_->UpdaterServices()[0]->Stats();
  MaintenanceStats u1 = tree_->UpdaterServices()[1]->Stats();
  EXPECT_EQ(u0.items, 0u);
  EXPECT_EQ(u1.items, tree_->Stats().smo_applied);
  EXPECT_GE(u1.pass_latency.TotalCount(), 1u);
  // Both workers were idle at some point during the run.
  EXPECT_GT(u0.idle_wakeups + u1.idle_wakeups, 0u);
}

TEST_F(MaintenanceTreeTest, ShutdownWithPendingEntriesLosesNothing) {
  Open();
  PauseAll();
  constexpr uint64_t kKeys = 5000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  EXPECT_FALSE(tree_->SmoLogsDrained());
  // Destructor path: drain must complete inline (services are paused), then
  // tear the services down cleanly.
  tree_.reset();
  opts_.updater_count = 0;
  tree_ = PacTree::Open(opts_);  // re-attach, runs recovery
  ASSERT_NE(tree_, nullptr);
  EXPECT_TRUE(tree_->SmoLogsDrained());
  EXPECT_EQ(tree_->Size(), kKeys);
  uint64_t v;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk);
    ASSERT_EQ(v, i + 1);
  }
}

TEST_F(MaintenanceTreeTest, RingFullBackpressureBlocksAndRecovers) {
  opts_.smo_ring_capacity = 4;  // force backpressure after a handful of splits
  Open();
  PauseAll();
  constexpr uint64_t kKeys = 1500;  // ~40 splits from one writer >> capacity 4
  RunWorkerThreads(
      1,
      [&](uint32_t) {
        SetCurrentNumaNode(0);
        for (uint64_t i = 0; i < kKeys; ++i) {
          ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
        }
      },
      [&] {
        // Caller side of the spawn: wait until the writer is stalled on the
        // full ring, then un-pause the updaters to let it through.
        for (int spins = 0; spins < 10000; ++spins) {
          if (tree_->Stats().smo_ring_full_waits > 0) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ResumeAll();
      });
  EXPECT_GT(tree_->Stats().smo_ring_full_waits, 0u);
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  uint64_t v;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk);
  }
}

TEST_F(MaintenanceTreeTest, SyncModeRegistersNoServicesAndStaysDrained) {
  opts_.async_search_update = false;
  Open();
  EXPECT_TRUE(tree_->UpdaterServices().empty());
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("maint_test/").size(), 0u);
  EXPECT_EQ(MaintenanceRegistry::Instance().StatsSnapshot("epoch/reclaim").size(), 0u);
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  // Inline application retires each entry on the writer thread; there is no
  // separate drain path to wait on.
  EXPECT_TRUE(tree_->SmoLogsDrained());
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.splits, 0u);
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

TEST_F(MaintenanceTreeTest, MultiUpdaterChurnMatchesModel) {
  opts_.updater_count = 2;
  Open();
  constexpr uint32_t kThreads = 4;
  std::vector<std::map<uint64_t, uint64_t>> models(kThreads);
  // Insert/remove churn over disjoint per-thread ranges: splits and merges
  // re-create and remove the same anchors repeatedly, which exercises the
  // cross-shard anchor-presence deferral.
  RunWorkerThreads(kThreads, [&](uint32_t t) {
    SetCurrentNumaNode(t % 2);
    uint64_t base = static_cast<uint64_t>(t) * 10'000'000;
    for (uint64_t round = 0; round < 3; ++round) {
      for (uint64_t i = 0; i < 3000; ++i) {
        uint64_t k = base + i;
        tree_->Insert(Key::FromInt(k), k + round);
        models[t][k] = k + round;
      }
      // Thin each range to ~10% so sibling nodes drop under the merge
      // threshold; the next round's reinserts split the merged nodes again.
      for (uint64_t i = 0; i < 3000; ++i) {
        if (i % 10 == round) {
          continue;
        }
        uint64_t k = base + i;
        tree_->Remove(Key::FromInt(k));
        models[t].erase(k);
      }
    }
  });
  tree_->DrainSmoLogs();
  EXPECT_TRUE(tree_->SmoLogsDrained());
  std::string why;
  ASSERT_TRUE(tree_->CheckInvariants(&why)) << why;
  uint64_t expected = 0;
  for (uint32_t t = 0; t < kThreads; ++t) {
    expected += models[t].size();
    for (const auto& [k, val] : models[t]) {
      uint64_t v = 0;
      ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &v), Status::kOk) << k;
      ASSERT_EQ(v, val);
    }
  }
  EXPECT_EQ(tree_->Size(), expected);
  PacTreeStats s = tree_->Stats();
  EXPECT_GT(s.merges, 0u);  // churn must have produced merges
  EXPECT_EQ(s.smo_applied, s.splits + s.merges);
}

}  // namespace
}  // namespace pactree
