// Strict-ADR crash sweeps for the three baseline indexes. Each baseline has
// its own crash-consistency story, all of which must hold under the
// "unflushed stores are lost" model:
//   FastFair -- logless ordered persists (entries before count; new node
//               before sibling link);
//   FP-Tree  -- leaf bitmap as durability pivot + split micro-log; DRAM inner
//               nodes rebuilt on open;
//   BzTree   -- PMwCAS dirty-bit protocol + descriptor recovery.
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <map>

#include "src/baselines/bztree.h"
#include "src/baselines/fastfair.h"
#include "src/baselines/fptree.h"
#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/shadow.h"
#include "src/nvm/topology.h"
#include "src/pmem/pool.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0) << path;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::pwrite(fd, bytes.data() + off, bytes.size() - off,
                         static_cast<off_t>(off));
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

// Generic harness: build, run acked ops under the shadow, crash, restore,
// reopen via |open_fn|, verify. The pool mapping is located through the
// persistent-pointer base table (pool id = |pool_id|).
template <typename Tree>
void RunBaselineCrash(const char* name, int ops, uint64_t seed, uint16_t pool_id,
                      const std::string& path, std::unique_ptr<Tree> (*open_fn)()) {
  auto tree = open_fn();
  ASSERT_NE(tree, nullptr);
  void* base = GetPoolBase(pool_id);
  ASSERT_NE(base, nullptr);
  size_t size = reinterpret_cast<PoolHeader*>(base)->size;
  ShadowHeap::Enable(base, size);

  std::map<uint64_t, uint64_t> acked;
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    uint64_t k = rng.Uniform(2000);
    if (rng.Uniform(6) == 0 && !acked.empty()) {
      tree->Remove(Key::FromInt(k));
      acked.erase(k);
    } else {
      // BzTree values must keep bits 62-63 clear (PMwCAS word markers).
      uint64_t v = (rng.Next() >> 2) | 1;
      tree->Insert(Key::FromInt(k), v);
      acked[k] = v;
    }
  }
  auto image = ShadowHeap::Capture(CrashMode::kStrict, seed);
  ASSERT_FALSE(image.empty());
  tree.reset();
  EpochManager::Instance().DrainAll();
  ShadowHeap::Disable();
  OverwriteFile(path, image);

  auto recovered = open_fn();
  ASSERT_NE(recovered, nullptr) << name << " recovery failed (ops=" << ops << ")";
  for (const auto& [k, v] : acked) {
    uint64_t got = 0;
    ASSERT_EQ(recovered->Lookup(Key::FromInt(k), &got), Status::kOk)
        << name << ": acked key lost: " << k << " ops=" << ops;
    ASSERT_EQ(got, v) << name << " key " << k;
  }
  recovered.reset();
  EpochManager::Instance().DrainAll();
}

class BaselineCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    GlobalNvmConfig().numa_nodes = 1;  // single pool: whole state shadowed
    SetCurrentNumaNode(0);
  }
  void TearDown() override {
    ShadowHeap::Disable();
    FastFair::Destroy("ff_crash");
    FpTree::Destroy("fp_crash");
    BzTree::Destroy("bz_crash");
  }
};

// --- FastFair ---------------------------------------------------------------

std::unique_ptr<FastFair> OpenFf() {
  FastFairOptions o;
  o.name = "ff_crash";
  o.pool_id_base = 350;
  o.pool_size = 64 << 20;
  return FastFair::Open(o);
}
TEST_F(BaselineCrashTest, FastFairStrictCrashSweep) {
  for (int ops : {1, 40, 200, 1000, 4000}) {
    FastFair::Destroy("ff_crash");
    RunBaselineCrash<FastFair>("FastFair", ops, static_cast<uint64_t>(ops) * 13 + 1,
                               350, NvmConfig::DefaultPoolDir() + "/ff_crash.0.pool",
                               &OpenFf);
  }
}

// --- FP-Tree ----------------------------------------------------------------

std::unique_ptr<FpTree> OpenFp() {
  FpTreeOptions o;
  o.name = "fp_crash";
  o.pool_id_base = 360;
  o.pool_size = 64 << 20;
  return FpTree::Open(o);
}

TEST_F(BaselineCrashTest, FpTreeStrictCrashSweep) {
  for (int ops : {1, 40, 200, 1000, 4000}) {
    FpTree::Destroy("fp_crash");
    RunBaselineCrash<FpTree>("FPTree", ops, static_cast<uint64_t>(ops) * 17 + 3, 360,
                             NvmConfig::DefaultPoolDir() + "/fp_crash.0.pool", &OpenFp);
  }
}

// --- BzTree -----------------------------------------------------------------

std::unique_ptr<BzTree> OpenBz() {
  BzTreeOptions o;
  o.name = "bz_crash";
  o.pool_id_base = 370;
  o.pool_size = 128 << 20;
  return BzTree::Open(o);
}

TEST_F(BaselineCrashTest, BzTreeStrictCrashSweep) {
  for (int ops : {1, 40, 200, 1000, 4000}) {
    BzTree::Destroy("bz_crash");
    RunBaselineCrash<BzTree>("BzTree", ops, static_cast<uint64_t>(ops) * 19 + 5, 370,
                             NvmConfig::DefaultPoolDir() + "/bz_crash.0.pool", &OpenBz);
  }
}

}  // namespace
}  // namespace pactree
