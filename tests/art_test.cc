#include "src/art/art.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"

namespace pactree {
namespace {

class ArtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PmemHeap::Destroy("art_test");
    PmemHeapOptions opts;
    opts.pool_id_base = 50;
    opts.pool_size = 256 << 20;
    heap_ = PmemHeap::OpenOrCreate("art_test", opts);
    ASSERT_NE(heap_, nullptr);
    AdvanceGenerations({heap_.get()});
    root_ = heap_->Root<ArtTreeRoot>();
    tree_ = std::make_unique<PdlArt>(heap_.get(), root_);
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    heap_.reset();
    PmemHeap::Destroy("art_test");
  }

  std::unique_ptr<PmemHeap> heap_;
  ArtTreeRoot* root_ = nullptr;
  std::unique_ptr<PdlArt> tree_;
};

TEST_F(ArtTest, EmptyLookupNotFound) {
  uint64_t v;
  EXPECT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kNotFound);
  Key found;
  EXPECT_EQ(tree_->LookupFloor(Key::FromInt(1), &found, &v), Status::kNotFound);
}

TEST_F(ArtTest, InsertLookupSingle) {
  EXPECT_EQ(tree_->Insert(Key::FromInt(42), 4200), Status::kOk);
  uint64_t v = 0;
  EXPECT_EQ(tree_->Lookup(Key::FromInt(42), &v), Status::kOk);
  EXPECT_EQ(v, 4200u);
  EXPECT_EQ(tree_->Lookup(Key::FromInt(43), &v), Status::kNotFound);
}

TEST_F(ArtTest, UpsertOverwrites) {
  EXPECT_EQ(tree_->Insert(Key::FromInt(7), 1), Status::kOk);
  EXPECT_EQ(tree_->Insert(Key::FromInt(7), 2), Status::kExists);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(7), &v), Status::kOk);
  EXPECT_EQ(v, 2u);
}

TEST_F(ArtTest, InsertIfAbsentDoesNotOverwrite) {
  EXPECT_EQ(tree_->InsertIfAbsent(Key::FromInt(7), 1), Status::kOk);
  EXPECT_EQ(tree_->InsertIfAbsent(Key::FromInt(7), 2), Status::kExists);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(7), &v), Status::kOk);
  EXPECT_EQ(v, 1u);
}

TEST_F(ArtTest, SequentialIntKeys) {
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i * 3), Status::kOk) << i;
  }
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i * 3) << i;
  }
  EXPECT_EQ(tree_->Size(), kN);
}

TEST_F(ArtTest, RandomIntKeysAgainstStdMap) {
  Rng rng(1234);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.Next();
    model[k] = i;
    tree_->Insert(Key::FromInt(k), i);
  }
  for (const auto& [k, v] : model) {
    uint64_t got;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &got), Status::kOk);
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(tree_->Size(), model.size());
}

TEST_F(ArtTest, StringKeysSharedPrefixes) {
  std::vector<std::string> words = {"a",     "ab",     "abc",   "abcd", "abcdefgh",
                                    "user1", "user10", "user2", "b",    "banana",
                                    "band",  "bandage", "zz"};
  for (size_t i = 0; i < words.size(); ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromString(words[i]), i), Status::kOk) << words[i];
  }
  for (size_t i = 0; i < words.size(); ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromString(words[i]), &v), Status::kOk) << words[i];
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(tree_->Lookup(Key::FromString("abce"), nullptr), Status::kNotFound);
  EXPECT_EQ(tree_->Lookup(Key::FromString("use"), nullptr), Status::kNotFound);
}

TEST_F(ArtTest, LongSharedPrefixBeyondStoredBytes) {
  // 30-byte shared prefix exceeds the 24 stored prefix bytes.
  std::string base(30, 'p');
  for (char c = 'a'; c <= 'z'; ++c) {
    ASSERT_EQ(tree_->Insert(Key::FromString(base + c), c), Status::kOk);
  }
  for (char c = 'a'; c <= 'z'; ++c) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromString(base + c), &v), Status::kOk) << c;
    EXPECT_EQ(v, static_cast<uint64_t>(c));
  }
  // A key diverging inside the unstored prefix region.
  std::string diverge = base.substr(0, 27) + "qqq";
  EXPECT_EQ(tree_->Lookup(Key::FromString(diverge), nullptr), Status::kNotFound);
  ASSERT_EQ(tree_->Insert(Key::FromString(diverge), 999), Status::kOk);
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromString(diverge), &v), Status::kOk);
  EXPECT_EQ(v, 999u);
  for (char c = 'a'; c <= 'z'; ++c) {
    ASSERT_EQ(tree_->Lookup(Key::FromString(base + c), &v), Status::kOk) << c;
  }
}

TEST_F(ArtTest, RemoveAndShrink) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  for (uint64_t i = 0; i < kN; i += 2) {
    ASSERT_EQ(tree_->Remove(Key::FromInt(i)), Status::kOk) << i;
  }
  EXPECT_EQ(tree_->Remove(Key::FromInt(0)), Status::kNotFound);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    Status expect = (i % 2 == 0) ? Status::kNotFound : Status::kOk;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), expect) << i;
  }
  EXPECT_EQ(tree_->Size(), kN / 2);
}

TEST_F(ArtTest, FloorSemantics) {
  for (uint64_t k : {10u, 20u, 30u, 40u}) {
    tree_->Insert(Key::FromInt(k), k);
  }
  Key found;
  uint64_t v;
  ASSERT_EQ(tree_->LookupFloor(Key::FromInt(25), &found, &v), Status::kOk);
  EXPECT_EQ(found.ToInt(), 20u);
  ASSERT_EQ(tree_->LookupFloor(Key::FromInt(30), &found, &v), Status::kOk);
  EXPECT_EQ(found.ToInt(), 30u);
  ASSERT_EQ(tree_->LookupFloor(Key::FromInt(1000), &found, &v), Status::kOk);
  EXPECT_EQ(found.ToInt(), 40u);
  EXPECT_EQ(tree_->LookupFloor(Key::FromInt(5), &found, &v), Status::kNotFound);
  ASSERT_EQ(tree_->LookupFloor(Key::FromInt(10), &found, &v), Status::kOk);
  EXPECT_EQ(found.ToInt(), 10u);
}

TEST_F(ArtTest, FloorRandomizedAgainstStdMap) {
  Rng rng(99);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Uniform(1 << 20) << 8;  // sparse keys
    model[k] = i;
    tree_->Insert(Key::FromInt(k), i);
  }
  for (int i = 0; i < 5000; ++i) {
    uint64_t probe = rng.Uniform(1 << 28);
    auto it = model.upper_bound(probe);
    Key found;
    uint64_t v;
    Status s = tree_->LookupFloor(Key::FromInt(probe), &found, &v);
    if (it == model.begin()) {
      ASSERT_EQ(s, Status::kNotFound) << probe;
    } else {
      --it;
      ASSERT_EQ(s, Status::kOk) << probe;
      ASSERT_EQ(found.ToInt(), it->first) << probe;
      ASSERT_EQ(v, it->second);
    }
  }
}

TEST_F(ArtTest, ScanOrderedAndBounded) {
  for (uint64_t i = 0; i < 1000; ++i) {
    tree_->Insert(Key::FromInt(i * 10), i);
  }
  std::vector<std::pair<Key, uint64_t>> out;
  size_t n = tree_->Scan(Key::FromInt(995), 20, &out);
  ASSERT_EQ(n, 20u);
  EXPECT_EQ(out[0].first.ToInt(), 1000u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first.ToInt(), out[i].first.ToInt());
    EXPECT_EQ(out[i].first.ToInt(), 1000 + i * 10);
  }
  // Scan past the end.
  n = tree_->Scan(Key::FromInt(9990), 20, &out);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0].first.ToInt(), 9990u);
  n = tree_->Scan(Key::FromInt(100000), 20, &out);
  EXPECT_EQ(n, 0u);
}

TEST_F(ArtTest, ScanStringsOrdered) {
  std::vector<std::string> words;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::string s = "user" + std::to_string(rng.Uniform(1000000));
    words.push_back(s);
    tree_->Insert(Key::FromString(s), i);
  }
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  std::vector<std::pair<Key, uint64_t>> out;
  size_t n = tree_->Scan(Key::FromString("user5"), 100, &out);
  auto it = std::lower_bound(words.begin(), words.end(), "user5");
  size_t expect = std::min<size_t>(100, words.end() - it);
  ASSERT_EQ(n, expect);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].first.ToString(), *(it + i));
  }
}

TEST_F(ArtTest, PersistsAcrossReopen) {
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->Insert(Key::FromInt(i), i + 1);
  }
  tree_.reset();
  EpochManager::Instance().DrainAll();
  heap_.reset();

  PmemHeapOptions opts;
  opts.pool_id_base = 50;
  opts.pool_size = 256 << 20;
  heap_ = PmemHeap::OpenOrCreate("art_test", opts);
  ASSERT_NE(heap_, nullptr);
  SetGlobalGeneration(static_cast<uint32_t>(heap_->generation()));
  root_ = heap_->Root<ArtTreeRoot>();
  tree_ = std::make_unique<PdlArt>(heap_.get(), root_);
  tree_->Recover();
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 1);
  }
}

TEST_F(ArtTest, RecoveryFreesUnreachableLoggedBlocks) {
  tree_->Insert(Key::FromInt(1), 1);
  // Forge a pending allocation-log entry pointing at an orphan block.
  PPtr<void> orphan = heap_->Alloc(sizeof(ArtLeaf));
  ASSERT_FALSE(orphan.IsNull());
  uint64_t live_before = heap_->primary()->LiveBytes();
  root_->alloc_log[3].blocks[0] = orphan.raw;
  root_->alloc_log[3].blocks[1] = 0;
  root_->alloc_log[3].key = Key::FromInt(777);
  root_->alloc_log[3].state = 1;
  tree_->Recover();
  EXPECT_LT(heap_->primary()->LiveBytes(), live_before) << "orphan must be freed";
  EXPECT_EQ(root_->alloc_log[3].state, 0u);
  // Reachable blocks must NOT be freed: forge an entry for a live leaf.
  uint64_t v;
  ASSERT_EQ(tree_->Lookup(Key::FromInt(1), &v), Status::kOk);
}

TEST_F(ArtTest, ConcurrentInsertsDisjointRanges) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>(t) << 32 | i;
        tree_->Insert(Key::FromInt(k), k);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; i += 97) {
      uint64_t k = static_cast<uint64_t>(t) << 32 | i;
      uint64_t v;
      ASSERT_EQ(tree_->Lookup(Key::FromInt(k), &v), Status::kOk);
      ASSERT_EQ(v, k);
    }
  }
  EXPECT_EQ(tree_->Size(), uint64_t{kThreads} * kPerThread);
}

TEST_F(ArtTest, ConcurrentMixedWorkload) {
  constexpr int kThreads = 4;
  constexpr uint64_t kSpace = 50000;
  // Preload half the space.
  for (uint64_t i = 0; i < kSpace; i += 2) {
    tree_->Insert(Key::FromInt(i), i);
  }
  std::atomic<bool> fail{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 30000; ++i) {
        uint64_t k = rng.Uniform(kSpace);
        switch (rng.Uniform(4)) {
          case 0:
            tree_->Insert(Key::FromInt(k), k);
            break;
          case 1:
            tree_->Remove(Key::FromInt(k));
            break;
          default: {
            uint64_t v;
            if (tree_->Lookup(Key::FromInt(k), &v) == Status::kOk && v != k) {
              fail.store(true);  // values are always == key in this test
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(fail.load()) << "lookup observed a value it should never see";
}

TEST_F(ArtTest, ConcurrentScansSeeOnlyValidValues) {
  for (uint64_t i = 0; i < 10000; ++i) {
    tree_->Insert(Key::FromInt(i), i);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> fail{false};
  std::thread writer([&] {
    Rng rng(77);
    while (!stop.load()) {
      uint64_t k = rng.Uniform(10000);
      tree_->Insert(Key::FromInt(k), k);
      tree_->Remove(Key::FromInt(rng.Uniform(10000)));
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::pair<Key, uint64_t>> out;
    tree_->Scan(Key::FromInt(iter * 13 % 9000), 50, &out);
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i].second != out[i].first.ToInt()) {
        fail.store(true);
      }
      if (i > 0 && !(out[i - 1].first < out[i].first)) {
        fail.store(true);
      }
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(fail.load());
}

}  // namespace
}  // namespace pactree
