// Multi-instance isolation: two independent heaps and two PACTree instances
// in one process must not bleed per-thread substrate state into each other --
// NVM media stats and model caches are keyed per (thread, pool), topology
// assignments are per thread, and ShadowHeap staged lines are per thread.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/pool_file.h"
#include "src/nvm/shadow.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/pmem/heap.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

std::string TestPath(const std::string& name) {
  return NvmConfig::DefaultPoolDir() + "/" + name;
}

class MultiInstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    DropThreadReadCache();
  }
};

// Raw pools: persists into pool A must show up in A's per-pool stats only.
TEST_F(MultiInstanceTest, PerPoolStatsDoNotBleed) {
  NvmPoolFile fa;
  NvmPoolFile fb;
  std::string pa = TestPath("mi_stats_a.pool");
  std::string pb = TestPath("mi_stats_b.pool");
  ASSERT_TRUE(fa.Create(pa, 1 << 20, 0, /*pool_id=*/41));
  ASSERT_TRUE(fb.Create(pb, 1 << 20, 0, /*pool_id=*/42));

  NvmStatsSnapshot a0 = PoolNvmStats(41);
  NvmStatsSnapshot b0 = PoolNvmStats(42);
  std::memset(fa.base(), 0x5a, 4096);
  PersistRange(fa.base(), 4096);
  Fence();
  AnnotateNvmRead(fa.base(), 4096);
  NvmStatsSnapshot da = PoolNvmStats(41) - a0;
  NvmStatsSnapshot db = PoolNvmStats(42) - b0;
  EXPECT_EQ(da.flushes, 4096u / kCacheLineSize);
  EXPECT_GT(da.media_write_bytes, 0u);
  EXPECT_GT(da.read_hits + da.read_misses, 0u);
  EXPECT_EQ(db.flushes, 0u);
  EXPECT_EQ(db.media_write_bytes, 0u);
  EXPECT_EQ(db.read_hits + db.read_misses, 0u);
  // Fences are unattributed: neither pool sees them, the global total does.
  EXPECT_EQ(da.fences, 0u);

  // Traffic to B lands in B only, and A's numbers stay put.
  std::memset(fb.base(), 0xa5, 2048);
  PersistRange(fb.base(), 2048);
  NvmStatsSnapshot da2 = PoolNvmStats(41) - a0;
  NvmStatsSnapshot db2 = PoolNvmStats(42) - b0;
  EXPECT_EQ(db2.flushes, 2048u / kCacheLineSize);
  EXPECT_EQ(da2.flushes, da.flushes);

  fa.Close();
  fb.Close();
  NvmPoolFile::Remove(pa);
  NvmPoolFile::Remove(pb);
}

// The per-thread media model (XPLine read cache) is keyed per pool: warming
// one pool's cache must not manufacture read hits against another pool.
TEST_F(MultiInstanceTest, MediaModelReadCacheIsPerPool) {
  NvmPoolFile fa;
  NvmPoolFile fb;
  std::string pa = TestPath("mi_cache_a.pool");
  std::string pb = TestPath("mi_cache_b.pool");
  ASSERT_TRUE(fa.Create(pa, 1 << 20, 0, /*pool_id=*/43));
  ASSERT_TRUE(fb.Create(pb, 1 << 20, 0, /*pool_id=*/44));
  DropThreadReadCache();

  AnnotateNvmRead(fa.base(), 64);  // miss: cold cache
  AnnotateNvmRead(fa.base(), 64);  // hit: warmed
  NvmStatsSnapshot a = PoolNvmStats(43);
  EXPECT_EQ(a.read_misses, 1u);
  EXPECT_EQ(a.read_hits, 1u);

  // First touch of pool B is a miss in B's own model, and B's accounting
  // starts at zero regardless of the traffic A already saw.
  AnnotateNvmRead(fb.base(), 64);
  NvmStatsSnapshot b = PoolNvmStats(44);
  EXPECT_EQ(b.read_misses, 1u);
  EXPECT_EQ(b.read_hits, 0u);

  fa.Close();
  fb.Close();
  NvmPoolFile::Remove(pa);
  NvmPoolFile::Remove(pb);
}

// Two heaps: the MediaStats() rollup of one heap excludes the other's pools.
TEST_F(MultiInstanceTest, HeapMediaStatsAreDisjoint) {
  PmemHeap::Destroy("mi_heap_a");
  PmemHeap::Destroy("mi_heap_b");
  PmemHeapOptions oa;
  oa.pool_id_base = 45;
  oa.pool_size = 8 << 20;
  PmemHeapOptions ob;
  ob.pool_id_base = 48;
  ob.pool_size = 8 << 20;
  auto ha = PmemHeap::OpenOrCreate("mi_heap_a", oa);
  auto hb = PmemHeap::OpenOrCreate("mi_heap_b", ob);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);

  NvmStatsSnapshot a0 = ha->MediaStats();
  NvmStatsSnapshot b0 = hb->MediaStats();
  PPtr<void> block = ha->Alloc(4096);
  ASSERT_FALSE(block.IsNull());
  std::memset(block.get(), 1, 4096);
  PersistRange(block.get(), 4096);
  Fence();

  NvmStatsSnapshot da = ha->MediaStats() - a0;
  NvmStatsSnapshot db = hb->MediaStats() - b0;
  EXPECT_GE(da.alloc_ops, 1u);
  EXPECT_GE(da.flushes, 4096u / kCacheLineSize);
  EXPECT_EQ(db.alloc_ops, 0u);
  EXPECT_EQ(db.flushes, 0u);
  EXPECT_EQ(db.media_write_bytes, 0u);

  ha.reset();
  hb.reset();
  PmemHeap::Destroy("mi_heap_a");
  PmemHeap::Destroy("mi_heap_b");
}

// Two PACTree instances with concurrent writers: keys stay in their own tree
// and per-thread writer-slot caching keyed per instance keeps both usable from
// the same threads.
TEST_F(MultiInstanceTest, TwoTreesOperateIndependently) {
  PacTree::Destroy("mi_t1");
  PacTree::Destroy("mi_t2");
  PacTreeOptions o1;
  o1.name = "mi_t1";
  o1.pool_id_base = 150;
  o1.pool_size = 128 << 20;
  PacTreeOptions o2;
  o2.name = "mi_t2";
  o2.pool_id_base = 180;
  o2.pool_size = 128 << 20;
  auto t1 = PacTree::Open(o1);
  auto t2 = PacTree::Open(o2);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 500;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Each worker interleaves both trees: tree 1 gets even keys, tree 2 odd.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>(w) * kPerThread + i;
        ASSERT_EQ(t1->Insert(Key::FromInt(2 * k), k + 1), Status::kOk);
        ASSERT_EQ(t2->Insert(Key::FromInt(2 * k + 1), k + 1), Status::kOk);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  for (uint64_t k = 0; k < kThreads * kPerThread; k += 97) {
    uint64_t v = 0;
    EXPECT_EQ(t1->Lookup(Key::FromInt(2 * k), &v), Status::kOk);
    EXPECT_EQ(v, k + 1);
    EXPECT_EQ(t1->Lookup(Key::FromInt(2 * k + 1), &v), Status::kNotFound);
    EXPECT_EQ(t2->Lookup(Key::FromInt(2 * k + 1), &v), Status::kOk);
    EXPECT_EQ(t2->Lookup(Key::FromInt(2 * k), &v), Status::kNotFound);
  }

  t1.reset();
  t2.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("mi_t1");
  PacTree::Destroy("mi_t2");
}

// ShadowHeap staged lines are per thread: lines flushed by a thread that
// exits without fencing die with it (like WPQ contents on a lost CPU) and
// never commit into the crash image, not even when another thread fences.
TEST_F(MultiInstanceTest, StagedLinesArePerThread) {
  NvmPoolFile f;
  std::string path = TestPath("mi_shadow.pool");
  ASSERT_TRUE(f.Create(path, 1 << 20, 0, /*pool_id=*/46));
  ShadowHeap::Enable(f.base(), f.size());

  char* p = static_cast<char*>(f.base());
  std::thread([&] {
    std::memcpy(p, "staged", 7);
    PersistRange(p, 7);  // clwb, no fence: stays staged in this thread
  }).join();
  Fence();  // another thread's fence must not retire the dead thread's lines
  auto img = ShadowHeap::Capture(CrashMode::kStrict);
  EXPECT_NE(std::string(reinterpret_cast<const char*>(img.data())), "staged");

  // A flush+fence by one live thread does commit.
  std::thread([&] {
    std::memcpy(p, "durable", 8);
    PersistFence(p, 8);
  }).join();
  img = ShadowHeap::Capture(CrashMode::kStrict);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(img.data())), "durable");

  ShadowHeap::Disable();
  f.Close();
  NvmPoolFile::Remove(path);
}

}  // namespace
}  // namespace pactree
