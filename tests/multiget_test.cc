// Batched read pipeline tests (src/pactree/multiget.cc + the RangeIndex
// default): property check against a std::map oracle with absorb on and off,
// duplicate / out-of-order keys, answers served from absorb staging without a
// drain, MultiScan vs per-call Scan, pipeline stat counters, a
// crash-sweep-style window proving the batched read path emits zero
// persistence events, and concurrent writers + forced drains (tsan label).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <span>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/index/range_index.h"
#include "src/nvm/config.h"
#include "src/nvm/stats.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

class MultiGetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PacTree::Destroy("mget_test");
    opts_.name = "mget_test";
    opts_.pool_id_base = 880;
    opts_.pool_size = 256 << 20;
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("mget_test");
  }

  void Open() {
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  PacTreeOptions opts_;
  std::unique_ptr<PacTree> tree_;
};

// Random upserts/removes mirrored into a std::map, with periodic forced
// drains, then random batches (duplicates, out-of-order, absent keys) checked
// against both the oracle and per-key Lookup.
void RunOracleProperty(PacTree* tree, bool absorb, uint64_t seed) {
  Rng rng(seed);
  std::map<uint64_t, uint64_t> oracle;
  const uint64_t domain = 8000;
  for (uint64_t op = 0; op < 4000; ++op) {
    uint64_t k = rng.Uniform(domain);
    if (rng.Uniform(4) == 0) {
      tree->Remove(Key::FromInt(k));
      oracle.erase(k);
    } else {
      uint64_t v = op + 1;
      tree->Insert(Key::FromInt(k), v);
      oracle[k] = v;
    }
    if (absorb && op % 700 == 699) {
      tree->DrainAbsorb();
      tree->DrainSmoLogs();
    }
  }
  for (int batch = 0; batch < 200; ++batch) {
    size_t n = 1 + rng.Uniform(33);
    std::vector<Key> keys(n);
    std::vector<uint64_t> picks(n);
    for (size_t i = 0; i < n; ++i) {
      // ~1/8 duplicates of the previous key; picks range over 2x the domain
      // so roughly half the batch misses.
      picks[i] = (i > 0 && rng.Uniform(8) == 0) ? picks[i - 1]
                                                : rng.Uniform(2 * domain);
      keys[i] = Key::FromInt(picks[i]);
    }
    std::vector<uint64_t> values(n, 0);
    std::vector<Status> st(n, Status::kOk);
    size_t found =
        tree->MultiGet(std::span<const Key>(keys), values.data(), st.data());
    size_t expect_found = 0;
    for (size_t i = 0; i < n; ++i) {
      auto it = oracle.find(picks[i]);
      uint64_t lv = 0;
      Status ls = tree->Lookup(keys[i], &lv);
      ASSERT_EQ(st[i], ls) << "key " << picks[i];
      if (it == oracle.end()) {
        ASSERT_EQ(st[i], Status::kNotFound) << "key " << picks[i];
      } else {
        ++expect_found;
        ASSERT_EQ(st[i], Status::kOk) << "key " << picks[i];
        ASSERT_EQ(values[i], it->second) << "key " << picks[i];
        ASSERT_EQ(lv, it->second) << "key " << picks[i];
      }
    }
    ASSERT_EQ(found, expect_found);
  }
}

TEST_F(MultiGetTest, OraclePropertyAbsorbOff) {
  Open();
  RunOracleProperty(tree_.get(), false, 0xabcdef);
}

TEST_F(MultiGetTest, OraclePropertyAbsorbOn) {
  opts_.absorb_writes = true;
  opts_.absorb_shards = 2;
  Open();
  RunOracleProperty(tree_.get(), true, 0xfedcba);
}

TEST_F(MultiGetTest, DuplicatesUnsortedAndNullStatuses) {
  Open();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  // Reverse order, duplicates, and one miss; statuses omitted.
  std::vector<Key> keys = {Key::FromInt(70), Key::FromInt(3), Key::FromInt(70),
                           Key::FromInt(500), Key::FromInt(3)};
  std::vector<uint64_t> values(keys.size(), 0);
  EXPECT_EQ(tree_->MultiGet(std::span<const Key>(keys), values.data(), nullptr),
            4u);
  EXPECT_EQ(values[0], 71u);
  EXPECT_EQ(values[1], 4u);
  EXPECT_EQ(values[2], 71u);
  EXPECT_EQ(values[4], 4u);
  // With statuses: the miss is reported in place, values[3] untouched.
  std::vector<Status> st(keys.size(), Status::kOk);
  values.assign(keys.size(), 0);
  EXPECT_EQ(tree_->MultiGet(std::span<const Key>(keys), values.data(), st.data()),
            4u);
  EXPECT_EQ(st[3], Status::kNotFound);
  EXPECT_EQ(values[3], 0u);
}

TEST_F(MultiGetTest, ServedFromAbsorbStagingWithoutDrain) {
  opts_.absorb_writes = true;
  opts_.absorb_shards = 2;
  opts_.async_search_update = false;
  Open();
  ASSERT_EQ(tree_->Insert(Key::FromInt(1), 10), Status::kOk);
  ASSERT_EQ(tree_->Insert(Key::FromInt(2), 20), Status::kOk);
  tree_->DrainAbsorb();
  ASSERT_EQ(tree_->Remove(Key::FromInt(2)), Status::kOk);  // staged tombstone
  ASSERT_EQ(tree_->Insert(Key::FromInt(3), 30), Status::kOk);  // staged value
  std::vector<Key> keys = {Key::FromInt(1), Key::FromInt(2), Key::FromInt(3)};
  std::vector<uint64_t> values(3, 0);
  std::vector<Status> st(3, Status::kOk);
  EXPECT_EQ(tree_->MultiGet(std::span<const Key>(keys), values.data(), st.data()),
            2u);
  EXPECT_EQ(st[0], Status::kOk);
  EXPECT_EQ(values[0], 10u);
  EXPECT_EQ(st[1], Status::kNotFound);  // tombstone shadows the drained value
  EXPECT_EQ(st[2], Status::kOk);
  EXPECT_EQ(values[2], 30u);
  // Same answers once everything has drained into the data layer.
  tree_->DrainAbsorb();
  tree_->DrainSmoLogs();
  values.assign(3, 0);
  EXPECT_EQ(tree_->MultiGet(std::span<const Key>(keys), values.data(), st.data()),
            2u);
  EXPECT_EQ(values[0], 10u);
  EXPECT_EQ(st[1], Status::kNotFound);
  EXPECT_EQ(values[2], 30u);
}

TEST_F(MultiGetTest, MultiScanMatchesScan) {
  Open();
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i * 2), i), Status::kOk);
  }
  tree_->DrainSmoLogs();
  // Out-of-order starts, varying counts, one past-the-end start.
  std::vector<Key> starts = {Key::FromInt(1999), Key::FromInt(0),
                             Key::FromInt(777), Key::FromInt(999999)};
  std::vector<size_t> counts = {50, 10, 128, 5};
  std::vector<std::vector<std::pair<Key, uint64_t>>> batched;
  tree_->MultiScan(std::span<const Key>(starts),
                   std::span<const size_t>(counts), &batched);
  ASSERT_EQ(batched.size(), starts.size());
  for (size_t i = 0; i < starts.size(); ++i) {
    std::vector<std::pair<Key, uint64_t>> single;
    tree_->Scan(starts[i], counts[i], &single);
    ASSERT_EQ(batched[i].size(), single.size()) << "start " << i;
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[i][j].first, single[j].first);
      EXPECT_EQ(batched[i][j].second, single[j].second);
    }
  }
}

TEST_F(MultiGetTest, PipelineStatCounters) {
  Open();
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  tree_->DrainSmoLogs();
  PacTreeStats s0 = tree_->Stats();
  // A node-clustered batch: 32 consecutive dense keys span only a few
  // 64-slot data nodes, so node-grouping must produce far fewer groups
  // (and read locks) than keys.
  std::vector<Key> keys;
  for (uint64_t i = 0; i < 32; ++i) {
    keys.push_back(Key::FromInt(1000 + i));
  }
  std::vector<uint64_t> values(keys.size(), 0);
  EXPECT_EQ(tree_->MultiGet(std::span<const Key>(keys), values.data(), nullptr),
            keys.size());
  PacTreeStats s1 = tree_->Stats();
  EXPECT_EQ(s1.multiget_batches - s0.multiget_batches, 1u);
  EXPECT_EQ(s1.multiget_keys - s0.multiget_keys, keys.size());
  uint64_t groups = s1.multiget_node_groups - s0.multiget_node_groups;
  EXPECT_GE(groups, 1u);
  EXPECT_LE(groups, 4u);  // 32 consecutive keys over 64-slot nodes
  EXPECT_EQ(s1.epoch_enters - s0.epoch_enters, 1u);  // one guard per batch
  EXPECT_LT(s1.node_locks - s0.node_locks, keys.size());
  // hop_hist is the widened histogram behind the legacy jump_hops buckets.
  uint64_t hist = 0, legacy = 0;
  for (int b = 0; b < kHopHistBuckets; ++b) {
    hist += s1.hop_hist[b];
  }
  for (int b = 0; b < 4; ++b) {
    legacy += s1.jump_hops[b];
  }
  EXPECT_EQ(hist, legacy);
}

// Crash-sweep-style check: a quiesced tree is read through MultiGet/MultiScan
// and the media model must record ZERO persistence events (no XPLine
// write-backs, no flushes, no fences) -- so no crash point inside the batched
// read path can ever torn-write or lose state.
TEST_F(MultiGetTest, ReadPathNeverPersists) {
  opts_.absorb_writes = true;
  opts_.absorb_shards = 2;
  opts_.async_search_update = false;
  Open();
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  tree_->DrainAbsorb();
  tree_->DrainSmoLogs();
  NvmStatsSnapshot w0 = GlobalNvmStats();
  Rng rng(99);
  std::vector<Key> keys(16);
  std::vector<uint64_t> values(16, 0);
  for (int batch = 0; batch < 200; ++batch) {
    for (auto& k : keys) {
      k = Key::FromInt(rng.Uniform(4000));
    }
    tree_->MultiGet(std::span<const Key>(keys), values.data(), nullptr);
  }
  std::vector<Key> starts = {Key::FromInt(0), Key::FromInt(1500)};
  std::vector<size_t> counts = {200, 200};
  std::vector<std::vector<std::pair<Key, uint64_t>>> out;
  tree_->MultiScan(std::span<const Key>(starts), std::span<const size_t>(counts),
                   &out);
  NvmStatsSnapshot d = GlobalNvmStats() - w0;
  EXPECT_EQ(d.media_write_bytes, 0u);
  EXPECT_EQ(d.flushes, 0u);
  EXPECT_EQ(d.fences, 0u);
  EXPECT_GT(d.media_read_bytes, 0u);
}

// Concurrent writers upsert a volatile key range and force absorb/SMO drains
// while readers stream MultiGet batches mixing stable and volatile keys:
// stable keys must always resolve exactly as per-key Lookup would, under
// splits, drains, and group retries (tsan label exercises the data races).
TEST_F(MultiGetTest, ConcurrentWritersAndForcedDrains) {
  opts_.absorb_writes = true;
  opts_.absorb_shards = 2;
  Open();
  const uint64_t stable = 4000, volat = 2000;
  for (uint64_t i = 0; i < stable; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i + 1), Status::kOk);
  }
  tree_->DrainAbsorb();
  tree_->DrainSmoLogs();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      SetCurrentNumaNode(0);
      Rng rng(17 * w + 5);
      uint64_t round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t k = stable + rng.Uniform(volat);
        tree_->Insert(Key::FromInt(k), ++round);
        if (round % 256 == 0) {
          tree_->DrainAbsorb();
          tree_->DrainSmoLogs();
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      SetCurrentNumaNode(0);
      Rng rng(31 * r + 7);
      std::vector<Key> keys(24);
      std::vector<uint64_t> picks(24);
      std::vector<uint64_t> values(24, 0);
      std::vector<Status> st(24, Status::kOk);
      for (int batch = 0; batch < 400; ++batch) {
        for (size_t i = 0; i < keys.size(); ++i) {
          // 2/3 stable keys (exact value known), 1/3 volatile.
          picks[i] = rng.Uniform(3) < 2 ? rng.Uniform(stable)
                                        : stable + rng.Uniform(volat);
          keys[i] = Key::FromInt(picks[i]);
        }
        tree_->MultiGet(std::span<const Key>(keys), values.data(), st.data());
        for (size_t i = 0; i < keys.size(); ++i) {
          if (picks[i] < stable) {
            if (st[i] != Status::kOk || values[i] != picks[i] + 1) {
              failures.fetch_add(1);
            }
          } else if (st[i] == Status::kOk && values[i] == 0) {
            failures.fetch_add(1);  // found a volatile key with a torn value
          }
        }
      }
    });
  }
  for (size_t i = 2; i < threads.size(); ++i) {
    threads[i].join();  // readers finish first
  }
  stop.store(true, std::memory_order_release);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(failures.load(), 0u);
  std::string why;
  EXPECT_TRUE(tree_->CheckInvariants(&why)) << why;
}

// The RangeIndex default MultiGet/MultiScan (loop over Lookup/Scan) keeps
// every baseline index working through the batch harness.
class MapIndex : public RangeIndex {
 public:
  Status Insert(const Key& key, uint64_t value) override {
    map_[key] = value;
    return Status::kOk;
  }
  Status Lookup(const Key& key, uint64_t* value) const override {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return Status::kNotFound;
    }
    *value = it->second;
    return Status::kOk;
  }
  Status Remove(const Key& key) override {
    return map_.erase(key) ? Status::kOk : Status::kNotFound;
  }
  size_t Scan(const Key& start, size_t count,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    out->clear();
    for (auto it = map_.lower_bound(start); it != map_.end() && out->size() < count;
         ++it) {
      out->push_back(*it);
    }
    return out->size();
  }
  uint64_t Size() const override { return map_.size(); }
  std::string Name() const override { return "map"; }

 private:
  std::map<Key, uint64_t> map_;
};

TEST(RangeIndexDefaultTest, MultiGetLoopsOverLookup) {
  MapIndex idx;
  for (uint64_t i = 0; i < 64; ++i) {
    idx.Insert(Key::FromInt(i * 3), i);
  }
  std::vector<Key> keys = {Key::FromInt(9), Key::FromInt(10), Key::FromInt(0),
                           Key::FromInt(9)};
  std::vector<uint64_t> values(keys.size(), 0);
  std::vector<Status> st(keys.size(), Status::kOk);
  EXPECT_EQ(idx.MultiGet(std::span<const Key>(keys), values.data(), st.data()),
            3u);
  EXPECT_EQ(values[0], 3u);
  EXPECT_EQ(st[1], Status::kNotFound);
  EXPECT_EQ(values[2], 0u);
  EXPECT_EQ(st[2], Status::kOk);
  EXPECT_EQ(values[3], 3u);
  std::vector<Key> starts = {Key::FromInt(100), Key::FromInt(0)};
  std::vector<size_t> counts = {4, 2};
  std::vector<std::vector<std::pair<Key, uint64_t>>> out;
  idx.MultiScan(std::span<const Key>(starts), std::span<const size_t>(counts),
                &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), 4u);
  EXPECT_EQ(out[1].size(), 2u);
  EXPECT_EQ(out[0][0].second, 34u);  // first key >= 100 is 102 = 34*3
  EXPECT_EQ(out[1][0].second, 0u);
}

}  // namespace
}  // namespace pactree
