// Parameterized PACTree property tests: every feature combination from the
// Figure 12 factor analysis must preserve full index semantics. Each instance
// runs a randomized mixed workload against a std::map model and then checks
// complete scan equivalence and data-layer invariants.
#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/pactree/pactree.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

struct Config {
  bool async_update;
  bool selective_persistence;
  bool per_numa;
  bool dram_sl;
  const char* name;
};

const Config kConfigs[] = {
    {true, true, true, false, "full"},
    {false, true, true, false, "sync_update"},
    {true, false, true, false, "persist_perm"},
    {true, true, false, false, "single_pool"},
    {true, true, true, true, "dram_sl"},
    {false, false, false, false, "all_off"},
};

class PacTreeParamTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    PacTree::Destroy("ptp");
    const Config& c = GetParam();
    opts_.name = "ptp";
    opts_.pool_id_base = 330;
    opts_.pool_size = 256 << 20;
    opts_.async_search_update = c.async_update;
    opts_.selective_persistence = c.selective_persistence;
    opts_.per_numa_pools = c.per_numa;
    opts_.dram_search_layer = c.dram_sl;
    tree_ = PacTree::Open(opts_);
    ASSERT_NE(tree_, nullptr);
  }

  void TearDown() override {
    tree_.reset();
    EpochManager::Instance().DrainAll();
    PacTree::Destroy("ptp");
  }

  PacTreeOptions opts_;
  std::unique_ptr<PacTree> tree_;
};

TEST_P(PacTreeParamTest, RandomizedMixedWorkloadMatchesModel) {
  Rng rng(GetParam().async_update * 2 + GetParam().per_numa + 17);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 60000; ++i) {
    uint64_t k = rng.Uniform(30000);
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2: {  // remove
        Status s = tree_->Remove(Key::FromInt(k));
        ASSERT_EQ(s == Status::kOk, model.erase(k) > 0) << "op " << i;
        break;
      }
      case 3: {  // update-only
        Status s = tree_->Update(Key::FromInt(k), i);
        ASSERT_EQ(s == Status::kOk, model.count(k) > 0) << "op " << i;
        if (s == Status::kOk) {
          model[k] = i;
        }
        break;
      }
      default: {  // upsert
        Status s = tree_->Insert(Key::FromInt(k), i);
        ASSERT_EQ(s == Status::kExists, model.count(k) > 0) << "op " << i;
        model[k] = i;
        break;
      }
    }
    if (i % 9973 == 0) {
      // Periodic point-read spot check.
      uint64_t probe = rng.Uniform(30000);
      uint64_t v;
      Status s = tree_->Lookup(Key::FromInt(probe), &v);
      auto it = model.find(probe);
      ASSERT_EQ(s == Status::kOk, it != model.end());
      if (s == Status::kOk) {
        ASSERT_EQ(v, it->second);
      }
    }
  }
  tree_->DrainSmoLogs();
  // Full-scan equivalence.
  std::vector<std::pair<Key, uint64_t>> all;
  tree_->Scan(Key::Min(), model.size() + 16, &all);
  ASSERT_EQ(all.size(), model.size());
  auto it = model.begin();
  for (size_t i = 0; i < all.size(); ++i, ++it) {
    ASSERT_EQ(all[i].first.ToInt(), it->first) << i;
    ASSERT_EQ(all[i].second, it->second) << i;
  }
  std::string why;
  ASSERT_TRUE(tree_->CheckInvariants(&why)) << why;
}

TEST_P(PacTreeParamTest, SmoLogRingWrapsSafely) {
  // A single writer slot's ring holds kSmoLogEntries entries; force far more
  // splits than that through one thread and verify nothing is lost.
  constexpr uint64_t kN = 80000;  // ~2400 splits > 500-entry ring
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(tree_->Insert(Key::FromInt(i), i), Status::kOk) << i;
  }
  tree_->DrainSmoLogs();
  EXPECT_GT(tree_->Stats().splits, kSmoLogEntries);
  for (uint64_t i = 0; i < kN; i += 41) {
    uint64_t v;
    ASSERT_EQ(tree_->Lookup(Key::FromInt(i), &v), Status::kOk) << i;
  }
  // Post-drain lookups must be direct (the SL caught up despite ring wrap).
  auto s0 = tree_->Stats();
  for (uint64_t i = 0; i < 500; ++i) {
    tree_->Lookup(Key::FromInt(i * 151 % kN), nullptr);
  }
  auto s1 = tree_->Stats();
  EXPECT_EQ(s1.jump_hops[0] - s0.jump_hops[0], 500u);
}

INSTANTIATE_TEST_SUITE_P(FeatureMatrix, PacTreeParamTest, ::testing::ValuesIn(kConfigs),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace pactree
