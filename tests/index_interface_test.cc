// Cross-index conformance tests: every index behind the RangeIndex interface
// must implement the same semantics. Parameterized over all five kinds and
// both key types (where supported).
#include "src/index/range_index.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

struct Combo {
  IndexKind kind;
  bool strings;
};

class IndexConformanceTest : public ::testing::TestWithParam<Combo> {
 protected:
  void SetUp() override {
    GlobalNvmConfig() = NvmConfig();
    SetCurrentNumaNode(0);
    IndexFactoryOptions opts;
    opts.name = "conform";
    opts.pool_id_base = 300;
    opts.pool_size = 256 << 20;
    opts.string_keys = GetParam().strings;
    index_ = CreateIndex(GetParam().kind, opts);
    ASSERT_NE(index_, nullptr);
  }

  void TearDown() override {
    index_.reset();
    EpochManager::Instance().DrainAll();
    DestroyIndex(GetParam().kind, "conform");
  }

  Key MakeKey(uint64_t i) const {
    if (GetParam().strings) {
      return Key::FromString("key" + std::to_string(100000000 + i));
    }
    return Key::FromInt(i);
  }

  std::unique_ptr<RangeIndex> index_;
};

TEST_P(IndexConformanceTest, UpsertSemantics) {
  EXPECT_EQ(index_->Insert(MakeKey(1), 10), Status::kOk);
  EXPECT_EQ(index_->Insert(MakeKey(1), 11), Status::kExists);
  uint64_t v;
  ASSERT_EQ(index_->Lookup(MakeKey(1), &v), Status::kOk);
  EXPECT_EQ(v, 11u);
}

TEST_P(IndexConformanceTest, NotFoundSemantics) {
  EXPECT_EQ(index_->Lookup(MakeKey(404), nullptr), Status::kNotFound);
  EXPECT_EQ(index_->Remove(MakeKey(404)), Status::kNotFound);
}

TEST_P(IndexConformanceTest, InsertLookupRemoveRoundTrip) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(index_->Insert(MakeKey(i), i + 1), Status::kOk) << i;
  }
  index_->Drain();
  EXPECT_EQ(index_->Size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t v;
    ASSERT_EQ(index_->Lookup(MakeKey(i), &v), Status::kOk) << i;
    ASSERT_EQ(v, i + 1);
  }
  for (uint64_t i = 0; i < kN; i += 2) {
    ASSERT_EQ(index_->Remove(MakeKey(i)), Status::kOk) << i;
  }
  index_->Drain();
  for (uint64_t i = 0; i < kN; ++i) {
    Status expect = (i % 2 == 0) ? Status::kNotFound : Status::kOk;
    ASSERT_EQ(index_->Lookup(MakeKey(i), nullptr), expect) << i;
  }
}

TEST_P(IndexConformanceTest, ScanIsSortedBoundedComplete) {
  std::map<Key, uint64_t> model;
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    uint64_t id = rng.Uniform(1 << 22);
    Key k = MakeKey(id);
    model[k] = id;
    index_->Insert(k, id);
  }
  index_->Drain();
  for (int trial = 0; trial < 10; ++trial) {
    Key start = MakeKey(rng.Uniform(1 << 22));
    std::vector<std::pair<Key, uint64_t>> out;
    size_t n = index_->Scan(start, 64, &out);
    auto it = model.lower_bound(start);
    size_t expect = 0;
    for (auto jt = it; jt != model.end() && expect < 64; ++jt) {
      expect++;
    }
    ASSERT_EQ(n, expect);
    for (size_t i = 0; i < n; ++i, ++it) {
      ASSERT_EQ(out[i].first.Compare(it->first), 0);
      ASSERT_EQ(out[i].second, it->second);
    }
  }
}

std::vector<Combo> AllCombos() {
  std::vector<Combo> combos;
  for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kFastFair,
                         IndexKind::kFpTree, IndexKind::kBzTree}) {
    combos.push_back({kind, false});
    if (kind != IndexKind::kFpTree) {  // FPTree: integer keys only (as in paper)
      combos.push_back({kind, true});
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexConformanceTest,
                         ::testing::ValuesIn(AllCombos()),
                         [](const ::testing::TestParamInfo<Combo>& info) {
                           std::string name = IndexKindName(info.param.kind);
                           name += info.param.strings ? "_str" : "_int";
                           return name;
                         });

}  // namespace
}  // namespace pactree
