# Lint: `thread_local` is allowed only inside src/runtime/ (the ThreadContext
# layer owns the one TLS pointer). Everything else must hold per-thread state
# in the thread's ThreadContext -- see src/runtime/thread_context.h and the
# runtime-layer section of DESIGN.md.
#
# Run as: cmake -DSOURCE_DIR=<repo root> -P check_no_thread_local.cmake
if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/src/*.cc")

set(violations "")
foreach(f IN LISTS sources)
  if(f MATCHES "/src/runtime/")
    continue()
  endif()
  file(STRINGS "${f}" hits REGEX "thread_local")
  if(hits)
    file(RELATIVE_PATH rel "${SOURCE_DIR}" "${f}")
    foreach(line IN LISTS hits)
      string(APPEND violations "  ${rel}: ${line}\n")
    endforeach()
  endif()
endforeach()

if(violations)
  message(FATAL_ERROR
    "thread_local found outside src/runtime/ -- move the state into "
    "ThreadContext (src/runtime/thread_context.h):\n${violations}")
endif()
message(STATUS "no thread_local outside src/runtime/")
