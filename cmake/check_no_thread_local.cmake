# Lint: `thread_local` is allowed only inside src/runtime/ (the ThreadContext
# layer owns the one TLS pointer). Everything else must hold per-thread state
# in the thread's ThreadContext -- see src/runtime/thread_context.h and the
# runtime-layer section of DESIGN.md.
#
# Run as: cmake -DSOURCE_DIR=<repo root> -P check_no_thread_local.cmake
if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/src/*.cc")

# Coverage guard: every linted subsystem must actually appear in the glob --
# a directory rename or glob typo would otherwise silently drop it from scope
# and the lint would keep passing vacuously.
foreach(dir IN ITEMS absorb art baselines common index nvm pactree pmem pmwcas sync workload)
  set(covered FALSE)
  foreach(f IN LISTS sources)
    if(f MATCHES "/src/${dir}/")
      set(covered TRUE)
      break()
    endif()
  endforeach()
  if(NOT covered)
    message(FATAL_ERROR
      "lint coverage hole: no sources matched under src/${dir}/ -- update the "
      "glob or the subsystem list")
  endif()
endforeach()

set(violations "")
foreach(f IN LISTS sources)
  if(f MATCHES "/src/runtime/")
    continue()
  endif()
  file(STRINGS "${f}" hits REGEX "thread_local")
  if(hits)
    file(RELATIVE_PATH rel "${SOURCE_DIR}" "${f}")
    foreach(line IN LISTS hits)
      string(APPEND violations "  ${rel}: ${line}\n")
    endforeach()
  endif()
endforeach()

if(violations)
  message(FATAL_ERROR
    "thread_local found outside src/runtime/ -- move the state into "
    "ThreadContext (src/runtime/thread_context.h):\n${violations}")
endif()
message(STATUS "no thread_local outside src/runtime/")
