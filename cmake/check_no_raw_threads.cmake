# Lint: `std::thread` construction is allowed only inside src/runtime/ --
# BackgroundService (maintenance.h) for long-running maintenance workers and
# RunWorkerThreads (workers.h) for bounded worker fan-out. Everything else in
# src/ must go through those helpers so thread lifecycle (ThreadContext
# registration, NUMA placement, stats) stays in one layer.
#
# `std::thread::hardware_concurrency` and `std::this_thread::*` are fine:
# the regex requires `std::thread` NOT followed by `::`.
#
# Run as: cmake -DSOURCE_DIR=<repo root> -P check_no_raw_threads.cmake
if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/src/*.cc")

# Coverage guard: every linted subsystem must actually appear in the glob --
# a directory rename or glob typo would otherwise silently drop it from scope
# and the lint would keep passing vacuously.
foreach(dir IN ITEMS absorb art baselines common index nvm pactree pmem pmwcas sync workload)
  set(covered FALSE)
  foreach(f IN LISTS sources)
    if(f MATCHES "/src/${dir}/")
      set(covered TRUE)
      break()
    endif()
  endforeach()
  if(NOT covered)
    message(FATAL_ERROR
      "lint coverage hole: no sources matched under src/${dir}/ -- update the "
      "glob or the subsystem list")
  endif()
endforeach()

set(violations "")
foreach(f IN LISTS sources)
  if(f MATCHES "/src/runtime/")
    continue()
  endif()
  file(STRINGS "${f}" hits REGEX "std::thread([^:]|$)")
  if(hits)
    file(RELATIVE_PATH rel "${SOURCE_DIR}" "${f}")
    foreach(line IN LISTS hits)
      string(APPEND violations "  ${rel}: ${line}\n")
    endforeach()
  endif()
endforeach()

if(violations)
  message(FATAL_ERROR
    "std::thread used outside src/runtime/ -- spawn workers through "
    "RunWorkerThreads (src/runtime/workers.h) or register a BackgroundService "
    "(src/runtime/maintenance.h):\n${violations}")
endif()
message(STATUS "no raw std::thread outside src/runtime/")
