# Lint: `std::thread` construction is allowed only inside src/runtime/ --
# BackgroundService (maintenance.h) for long-running maintenance workers and
# RunWorkerThreads (workers.h) for bounded worker fan-out. Everything else in
# src/ must go through those helpers so thread lifecycle (ThreadContext
# registration, NUMA placement, stats) stays in one layer.
#
# `std::thread::hardware_concurrency` and `std::this_thread::*` are fine:
# the regex requires `std::thread` NOT followed by `::`.
#
# Run as: cmake -DSOURCE_DIR=<repo root> -P check_no_raw_threads.cmake
if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/src/*.cc")

set(violations "")
foreach(f IN LISTS sources)
  if(f MATCHES "/src/runtime/")
    continue()
  endif()
  file(STRINGS "${f}" hits REGEX "std::thread([^:]|$)")
  if(hits)
    file(RELATIVE_PATH rel "${SOURCE_DIR}" "${f}")
    foreach(line IN LISTS hits)
      string(APPEND violations "  ${rel}: ${line}\n")
    endforeach()
  endif()
endforeach()

if(violations)
  message(FATAL_ERROR
    "std::thread used outside src/runtime/ -- spawn workers through "
    "RunWorkerThreads (src/runtime/workers.h) or register a BackgroundService "
    "(src/runtime/maintenance.h):\n${violations}")
endif()
message(STATUS "no raw std::thread outside src/runtime/")
