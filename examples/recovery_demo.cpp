// Recovery demo: crash a writer process with SIGKILL mid-load and watch
// PACTree recover every acknowledged key (paper §6.8), including replaying
// interrupted structural modifications from the SMO log.
//
//   $ ./build/examples/recovery_demo
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "src/common/clock.h"
#include "src/nvm/config.h"
#include "src/pactree/pactree.h"

using namespace pactree;

int main() {
  GlobalNvmConfig().numa_nodes = 1;
  PacTreeOptions options;
  options.name = "recovery_demo";
  options.pool_id_base = 720;
  options.pool_size = 128ULL << 20;
  PacTree::Destroy(options.name);

  // Shared progress counter: the child bumps it after each ACKNOWLEDGED insert.
  std::string progress_path = NvmConfig::DefaultPoolDir() + "/recovery_demo.progress";
  int pfd = ::open(progress_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (pfd < 0 || ::ftruncate(pfd, 4096) != 0) {
    return 1;
  }
  auto* progress = static_cast<volatile uint64_t*>(
      ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, pfd, 0));
  ::close(pfd);

  std::printf("forking a writer child; it will be SIGKILLed mid-flight...\n");
  pid_t pid = ::fork();
  if (pid == 0) {
    auto tree = PacTree::Open(options);
    if (tree == nullptr) {
      _exit(1);
    }
    for (uint64_t i = 0;; ++i) {
      tree->Insert(Key::FromInt(i), i * 7 + 1);
      *progress = i + 1;
    }
  }
  ::usleep(150 * 1000);  // let the child insert for ~150 ms
  ::kill(pid, SIGKILL);
  int status;
  ::waitpid(pid, &status, 0);
  uint64_t acked = *progress;
  std::printf("child killed after acknowledging %llu inserts\n",
              static_cast<unsigned long long>(acked));

  uint64_t t0 = NowNs();
  auto tree = PacTree::Open(options);  // runs SMO-log + allocation-log recovery
  uint64_t t1 = NowNs();
  if (tree == nullptr) {
    std::fprintf(stderr, "recovery failed!\n");
    return 1;
  }
  std::printf("recovered in %.2f ms (both layers live on NVM: no rebuild)\n",
              static_cast<double>(t1 - t0) / 1e6);

  uint64_t missing = 0;
  for (uint64_t i = 0; i < acked; ++i) {
    uint64_t v = 0;
    if (tree->Lookup(Key::FromInt(i), &v) != Status::kOk || v != i * 7 + 1) {
      missing++;
    }
  }
  std::string why;
  bool consistent = tree->CheckInvariants(&why);
  std::printf("verified %llu acknowledged keys: %llu missing; invariants %s\n",
              static_cast<unsigned long long>(acked),
              static_cast<unsigned long long>(missing),
              consistent ? "hold" : ("VIOLATED: " + why).c_str());
  ::munmap(const_cast<uint64_t*>(progress), 4096);
  ::unlink(progress_path.c_str());
  tree.reset();
  PacTree::Destroy(options.name);
  return missing == 0 && consistent ? 0 : 1;
}
