// A persistent key-value store CLI backed by PACTree -- the kind of storage
// component the paper's introduction motivates (key-value stores and database
// engines building on a persistent range index).
//
//   $ ./build/examples/kvstore_cli put user42 "value-as-int:9000"
//   $ ./build/examples/kvstore_cli put user7 123
//   $ ./build/examples/kvstore_cli get user42
//   $ ./build/examples/kvstore_cli scan user 10
//   $ ./build/examples/kvstore_cli del user42
//   $ ./build/examples/kvstore_cli stats
//
// Values are 64-bit integers (the paper's 8-byte values); string payloads
// would live in a log referenced by the value, as in WiscKey-style designs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/pactree/pactree.h"

using namespace pactree;

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: kvstore_cli <command> [args]\n"
               "  put <key> <int-value>   insert or update\n"
               "  get <key>               point lookup\n"
               "  del <key>               delete\n"
               "  scan <key> <n>          n pairs starting at key\n"
               "  count                   total keys\n"
               "  stats                   index statistics\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  PacTreeOptions options;
  options.name = "kvstore";
  options.pool_id_base = 710;
  options.pool_size = 128ULL << 20;
  auto tree = PacTree::Open(options);
  if (tree == nullptr) {
    std::fprintf(stderr, "cannot open store\n");
    return 1;
  }

  std::string cmd = argv[1];
  if (cmd == "put" && argc == 4) {
    Key k = Key::FromString(argv[2]);
    uint64_t v = std::strtoull(argv[3], nullptr, 10);
    Status s = tree->Insert(k, v);
    if (s == Status::kFull) {
      std::fprintf(stderr, "store full (read-only degraded mode)\n");
      return 1;
    }
    std::printf("%s\n", s == Status::kExists ? "updated" : "inserted");
    return 0;
  }
  if (cmd == "get" && argc == 3) {
    uint64_t v = 0;
    if (tree->Lookup(Key::FromString(argv[2]), &v) == Status::kOk) {
      std::printf("%llu\n", static_cast<unsigned long long>(v));
      return 0;
    }
    std::printf("(not found)\n");
    return 1;
  }
  if (cmd == "del" && argc == 3) {
    Status s = tree->Remove(Key::FromString(argv[2]));
    std::printf("%s\n", s == Status::kOk ? "deleted" : "(not found)");
    return s == Status::kOk ? 0 : 1;
  }
  if (cmd == "scan" && argc == 4) {
    size_t n = std::strtoull(argv[3], nullptr, 10);
    std::vector<std::pair<Key, uint64_t>> out;
    tree->Scan(Key::FromString(argv[2]), n, &out);
    for (const auto& [k, v] : out) {
      std::printf("%-32s %llu\n", k.ToString().c_str(),
                  static_cast<unsigned long long>(v));
    }
    return 0;
  }
  if (cmd == "count" && argc == 2) {
    std::printf("%llu\n", static_cast<unsigned long long>(tree->Size()));
    return 0;
  }
  if (cmd == "stats" && argc == 2) {
    PacTreeStats s = tree->Stats();
    std::printf("keys            %llu\n", static_cast<unsigned long long>(tree->Size()));
    std::printf("splits          %llu\n", static_cast<unsigned long long>(s.splits));
    std::printf("merges          %llu\n", static_cast<unsigned long long>(s.merges));
    std::printf("smo applied     %llu\n", static_cast<unsigned long long>(s.smo_applied));
    std::printf("direct lookups  %llu\n", static_cast<unsigned long long>(s.jump_hops[0]));
    std::printf("1-hop lookups   %llu\n", static_cast<unsigned long long>(s.jump_hops[1]));
    return 0;
  }
  Usage();
  return 2;
}
