// Run any YCSB workload against any index from the command line -- the same
// harness the figure benches use, exposed interactively.
//
//   $ ./build/examples/ycsb_runner pactree C 100000 100000 4
//   $ ./build/examples/ycsb_runner fastfair A 500000 200000 2 --string
//   $ ./build/examples/ycsb_runner bztree E 100000 50000 1
#include <cstdio>
#include <cstring>
#include <string>

#include "src/index/range_index.h"
#include "src/nvm/bandwidth.h"
#include "src/nvm/config.h"
#include "src/workload/ycsb.h"

using namespace pactree;

namespace {

bool ParseKind(const std::string& s, IndexKind* out) {
  for (IndexKind k : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kFastFair,
                      IndexKind::kFpTree, IndexKind::kBzTree}) {
    if (s == IndexKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool ParseWorkload(const std::string& s, YcsbKind* out) {
  if (s == "A" || s == "a") {
    *out = YcsbKind::kA;
  } else if (s == "B" || s == "b") {
    *out = YcsbKind::kB;
  } else if (s == "C" || s == "c") {
    *out = YcsbKind::kC;
  } else if (s == "E" || s == "e") {
    *out = YcsbKind::kE;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: ycsb_runner <pactree|pdlart|fastfair|fptree|bztree> "
                 "<A|B|C|E> <keys> <ops> <threads> [--string] [--uniform]\n");
    return 2;
  }
  IndexKind kind;
  YcsbKind wl;
  if (!ParseKind(argv[1], &kind) || !ParseWorkload(argv[2], &wl)) {
    std::fprintf(stderr, "unknown index or workload\n");
    return 2;
  }
  YcsbSpec spec;
  spec.kind = wl;
  spec.record_count = std::strtoull(argv[3], nullptr, 10);
  spec.op_count = std::strtoull(argv[4], nullptr, 10);
  spec.threads = static_cast<uint32_t>(std::strtoul(argv[5], nullptr, 10));
  for (int i = 6; i < argc; ++i) {
    if (std::strcmp(argv[i], "--string") == 0) {
      spec.string_keys = true;
    } else if (std::strcmp(argv[i], "--uniform") == 0) {
      spec.zipfian = false;
    }
  }

  NvmConfig& cfg = GlobalNvmConfig();
  cfg.numa_nodes = 2;
  cfg.emulate_latency = true;
  BandwidthModel::Instance().Reconfigure();

  IndexFactoryOptions opts;
  opts.string_keys = spec.string_keys;
  opts.pool_size = std::max<size_t>(512ULL << 20, spec.record_count * 3072 * 2);
  auto index = CreateIndex(kind, opts);
  if (index == nullptr) {
    std::fprintf(stderr, "failed to create index\n");
    return 1;
  }
  std::printf("loading %llu keys into %s...\n",
              static_cast<unsigned long long>(spec.record_count),
              index->Name().c_str());
  YcsbSpec load_spec = spec;
  load_spec.kind = YcsbKind::kLoadA;
  YcsbResult load = YcsbDriver::Load(index.get(), spec);
  index->Drain();
  YcsbDriver::PrintHeader();
  YcsbDriver::PrintRow(index->Name(), load_spec, load);
  YcsbResult run = YcsbDriver::Run(index.get(), spec);
  YcsbDriver::PrintRow(index->Name(), spec, run);
  DestroyIndex(kind, "");
  return 0;
}
