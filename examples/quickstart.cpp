// Quickstart: open a PACTree, write, read, scan, survive a restart.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart        # run again: the data is still there
//
// PACTree lives in pool files under /dev/shm/pactree (or $PAC_POOL_DIR); this
// example reopens the same index on every run, demonstrating near-instant
// recovery of a fully NVM-resident index.
#include <cstdio>

#include "src/pactree/pactree.h"

using namespace pactree;

int main() {
  PacTreeOptions options;
  options.name = "quickstart";
  options.pool_id_base = 700;
  options.pool_size = 64ULL << 20;

  // Open() creates the index on first use and recovers it afterwards.
  std::unique_ptr<PacTree> tree = PacTree::Open(options);
  if (tree == nullptr) {
    std::fprintf(stderr, "failed to open the index\n");
    return 1;
  }
  uint64_t before = tree->Size();
  std::printf("opened index '%s': %llu keys from previous runs\n",
              options.name.c_str(), static_cast<unsigned long long>(before));

  // Point writes. Insert is an upsert; the return status tells you which.
  for (uint64_t i = 0; i < 1000; ++i) {
    tree->Insert(Key::FromInt(before + i), (before + i) * 10);
  }
  // String keys work the same way (up to 32 bytes, binary-comparable).
  tree->Insert(Key::FromString("hello"), 1);
  tree->Insert(Key::FromString("world"), 2);

  // Point reads.
  uint64_t value = 0;
  if (tree->Lookup(Key::FromInt(before + 42), &value) == Status::kOk) {
    std::printf("key %llu -> %llu\n", static_cast<unsigned long long>(before + 42),
                static_cast<unsigned long long>(value));
  }

  // Range scan: up to 5 pairs with key >= before+10, in order.
  std::vector<std::pair<Key, uint64_t>> out;
  tree->Scan(Key::FromInt(before + 10), 5, &out);
  std::printf("scan from %llu:\n", static_cast<unsigned long long>(before + 10));
  for (const auto& [k, v] : out) {
    std::printf("  %llu -> %llu\n", static_cast<unsigned long long>(k.ToInt()),
                static_cast<unsigned long long>(v));
  }

  // Delete.
  tree->Remove(Key::FromString("hello"));
  std::printf("after delete, 'hello' lookup: %s\n",
              StatusString(tree->Lookup(Key::FromString("hello"), nullptr)));

  std::printf("index now holds %llu keys; run me again to see them persist\n",
              static_cast<unsigned long long>(tree->Size()));
  return 0;
}
