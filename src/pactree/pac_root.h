// Persistent root object layout, shared by the front-end (pactree.cc) and
// crash recovery (recovery.cc). Internal to src/pactree/.
#ifndef PACTREE_SRC_PACTREE_PAC_ROOT_H_
#define PACTREE_SRC_PACTREE_PAC_ROOT_H_

#include <cstdint>

#include "src/absorb/absorb.h"
#include "src/art/art.h"
#include "src/pactree/pactree.h"
#include "src/pactree/smo_log.h"

namespace pactree {

// Placed in the data heap's primary root area.
struct PacTree::PacRoot {
  // NOLINT: must fit the pool root area (checked in Init).
  uint64_t magic;
  uint64_t head_raw;
  uint64_t pad[6];
  uint64_t log_raws[kMaxWriterSlots];
  // Absorb op-log rings (log heap), allocated lazily the first time the index
  // opens with absorb_writes on; 0 = never allocated. Recovery replays every
  // non-null ring regardless of the current option/shard count -- a ring can
  // hold acked ops from an incarnation configured differently.
  uint64_t absorb_raws[kAbsorbMaxShards];
  ArtTreeRoot art;
};

}  // namespace pactree

#endif  // PACTREE_SRC_PACTREE_PAC_ROOT_H_
