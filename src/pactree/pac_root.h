// Persistent root object layout, shared by the front-end (pactree.cc) and
// crash recovery (recovery.cc). Internal to src/pactree/.
#ifndef PACTREE_SRC_PACTREE_PAC_ROOT_H_
#define PACTREE_SRC_PACTREE_PAC_ROOT_H_

#include <cstdint>

#include "src/art/art.h"
#include "src/pactree/pactree.h"
#include "src/pactree/smo_log.h"

namespace pactree {

// Placed in the data heap's primary root area.
struct PacTree::PacRoot {
  // NOLINT: must fit the pool root area (checked in Init).
  uint64_t magic;
  uint64_t head_raw;
  uint64_t pad[6];
  uint64_t log_raws[kMaxWriterSlots];
  ArtTreeRoot art;
};

}  // namespace pactree

#endif  // PACTREE_SRC_PACTREE_PAC_ROOT_H_
