// AbsorbSink implementation: applies a key-sorted drain batch from the absorb
// buffer to the data layer (paper §4.2's batched write absorption).
//
// The win over per-op Insert/Remove is media-write coalescing: all ops that
// land in one data node are applied under a single lock acquisition, their
// slot writes are flushed together (adjacent slots share XPLines, all 64
// fingerprints share one), and the valid bitmap -- the durability pivot -- is
// published ONCE per node per batch instead of once per op.
//
// Crash consistency: the caller (AbsorbBuffer::Pass) trims the op log only
// after this returns, so every state this function can crash in is repaired by
// re-replaying the batch. Application is idempotent: an upsert of a present
// key overwrites its value in place (8-byte, media-atomic), a tombstone of an
// absent key is a no-op. Readers never observe intermediate states -- the
// node's write lock is held across the whole group and dirty slots are fenced
// durable before the bitmap publish that makes them visible.
#include <cassert>

#include "src/common/compiler.h"
#include "src/nvm/persist.h"
#include "src/pactree/pactree.h"
#include "src/sync/epoch.h"

namespace pactree {

namespace {

// Slot of |key| among the bits of |bm| (the batch-local live view, which can
// differ from the published bitmap mid-group), or -1. Compares keys directly:
// fingerprints of slots written earlier in this batch are not yet flushed, but
// both live in DRAM-coherent cache, so plain compares are exact under the
// node's write lock. NO_TSAN: slots race with optimistic readers, which
// discard their observations when lock validation fails (see data_node.cc).
PACTREE_NO_TSAN int FindKeyMasked(const DataNode* node, const Key& key,
                                  uint64_t bm) {
  while (bm != 0) {
    int i = __builtin_ctzll(bm);
    if (node->keys[i] == key) {
      return i;
    }
    bm &= bm - 1;
  }
  return -1;
}

// Raw slot writes without per-slot flushes (coalesced in FlushDirtySlots).
// NO_TSAN for the same optimistic-reader race FillSlot tolerates.
PACTREE_NO_TSAN void WriteSlot(DataNode* node, int slot, const Key& key,
                               uint64_t value) {
  node->keys[slot] = key;
  node->values[slot] = value;
  node->fp[slot] = key.Fingerprint();
}

PACTREE_NO_TSAN void WriteValue(DataNode* node, int slot, uint64_t value) {
  node->values[slot] = value;
}

// Flushes every dirty slot's key/value/fingerprint and fences once. Adjacent
// dirty slots coalesce into shared XPLines via the flush-combining window;
// the fingerprint array contributes at most one line for the whole batch.
void FlushDirtySlots(DataNode* node, uint64_t dirty) {
  uint64_t d = dirty;
  while (d != 0) {
    int s = __builtin_ctzll(d);
    d &= d - 1;
    PersistRange(&node->keys[s], sizeof(Key));
    PersistRange(&node->values[s], sizeof(uint64_t));
    PersistRange(&node->fp[s], 1);
  }
  if (dirty != 0) {
    Fence();  // slots durable BEFORE the bitmap publish that exposes them
  }
}

}  // namespace

bool PacTree::AbsorbApply(const AbsorbOp* ops, size_t n) {
  EpochGuard guard;
  size_t i = 0;
  while (i < n) {
    uint64_t version;
    DataNode* node = FindDataNode(ops[i].key, &version);
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    AnnotateNvmRead(node, sizeof(DataNode));
    // |bm| is the batch-local live view, |dirty| the slots needing a flush;
    // both publish at group end (or just before a split).
    uint64_t bm = node->Bitmap();
    // Last-published bitmap: a slot live here has durable contents readers
    // (and a recovering crash image) may rely on, even if an in-batch
    // tombstone already cleared it from |bm|. Such a slot must not be
    // rewritten until the cleared bitmap is published -- otherwise a torn
    // flush leaves a live slot with mixed old/new key/fingerprint bytes.
    uint64_t published = bm;
    uint64_t dirty = 0;
    bool removed_any = false;
    while (i < n) {
      const AbsorbOp& op = ops[i];
      DataNode* next = node->Next();
      if (op.key < node->anchor ||
          (next != nullptr && next->anchor <= op.key)) {
        break;  // next op belongs to another node: finish this group
      }
      int slot = FindKeyMasked(node, op.key, bm);
      if (op.type == kAbsorbOpTombstone) {
        if (slot >= 0) {
          bm &= ~(1ULL << slot);
          dirty &= ~(1ULL << slot);  // a dead slot never needs its flush
          removed_any = true;
        }
        ++i;
        continue;
      }
      if (slot >= 0) {
        // In-place value overwrite: 8-byte media-atomic, invisible until the
        // write lock drops (optimistic readers fail validation), re-replayed
        // from the op log if it crashes unflushed.
        WriteValue(node, slot, op.value);
        dirty |= 1ULL << slot;
        ++i;
        continue;
      }
      if (bm == ~0ULL) {
        // Full: make the batch-local state real, then split. SplitLocked
        // reads the published bitmap and returns the locked half owning
        // op.key; the op is re-dispatched against it.
        FlushDirtySlots(node, dirty);
        node->PublishBitmap(bm);
        DataNode* owner = SplitLocked(node, op.key);
        if (owner == nullptr) {
          // Data pool exhausted mid-batch. Everything applied so far is
          // already durably published (flushes + bitmap above), which is
          // safe: the caller keeps the whole batch logged and staged, and
          // re-application converges. Unwind the lock and report failure.
          node->lock.WriteUnlock();
          return false;
        }
        node = owner;
        bm = node->Bitmap();
        published = bm;
        dirty = 0;
        continue;
      }
      if ((bm | published) == ~0ULL) {
        // Only tombstone-freed slots remain. Retire them durably (publish the
        // cleared bitmap) before reuse; see |published| above.
        FlushDirtySlots(node, dirty);
        node->PublishBitmap(bm);
        published = bm;
        dirty = 0;
      }
      int free = __builtin_ctzll(~(bm | published));
      WriteSlot(node, free, op.key, op.value);
      bm |= 1ULL << free;
      dirty |= 1ULL << free;
      ++i;
    }
    FlushDirtySlots(node, dirty);
    if (bm != node->Bitmap()) {
      node->PublishBitmap(bm);  // ONE durability-pivot publish for the group
    }
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    if (removed_any) {
      TryMergeLocked(node);
    }
    node->lock.WriteUnlock();
  }
  return true;
}

}  // namespace pactree
