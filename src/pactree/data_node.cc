#include "src/pactree/data_node.h"

#include <algorithm>
#include <atomic>

#if defined(PACTREE_AVX2)
#include <immintrin.h>
#endif

#include "src/common/compiler.h"
#include "src/nvm/persist.h"

namespace pactree {

uint64_t DataNode::Bitmap() const {
  return std::atomic_ref<uint64_t>(const_cast<DataNode*>(this)->bitmap)
      .load(std::memory_order_acquire);
}

int DataNode::CountLive() const { return __builtin_popcountll(Bitmap()); }

// Optimistic probe: runs under a version-lock read token and deliberately
// races with FillSlot on slots outside the live bitmap (or being recycled);
// the caller's Validate() discards any observation made during a write.
PACTREE_NO_TSAN
int DataNode::FindKey(const Key& key, uint8_t fingerprint) const {
  uint64_t live = Bitmap();
  uint64_t candidates;
#if defined(PACTREE_AVX2)
  // 64-byte fingerprint match in two 32-byte compares (the paper uses one
  // AVX-512 compare; two AVX2 compares are the portable equivalent).
  __m256i needle = _mm256_set1_epi8(static_cast<char>(fingerprint));
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fp));
  __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fp + 32));
  uint32_t mlo = static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)));
  uint32_t mhi = static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)));
  candidates = (static_cast<uint64_t>(mhi) << 32 | mlo) & live;
#else
  candidates = 0;
  for (size_t i = 0; i < kDataNodeEntries; ++i) {
    if (fp[i] == fingerprint) {
      candidates |= 1ULL << i;
    }
  }
  candidates &= live;
#endif
  while (candidates != 0) {
    int i = __builtin_ctzll(candidates);
    AnnotateNvmRead(&keys[i], sizeof(Key));
    if (keys[i] == key) {
      return i;
    }
    candidates &= candidates - 1;
  }
  return -1;
}

int DataNode::FindFreeSlot() const {
  uint64_t live = Bitmap();
  if (live == ~0ULL) {
    return -1;
  }
  return __builtin_ctzll(~live);
}

// Writer side of the optimistic-probe pattern (see FindKey): fills a slot that
// is not yet (or no longer) in the live bitmap while readers may be scanning.
PACTREE_NO_TSAN
void DataNode::FillSlot(int slot, const Key& key, uint8_t fingerprint, uint64_t value) {
  keys[slot] = key;
  values[slot] = value;
  fp[slot] = fingerprint;
  PersistRange(&keys[slot], sizeof(Key));
  PersistRange(&values[slot], sizeof(uint64_t));
  PersistRange(&fp[slot], 1);
  Fence();
}

void DataNode::PublishBitmap(uint64_t new_bitmap) {
  AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&bitmap), new_bitmap);
}

// Reads live-slot keys optimistically; callers version-check the result.
PACTREE_NO_TSAN
int DataNode::ComputeSortedOrder(uint8_t* out) const {
  uint64_t live = Bitmap();
  int n = 0;
  while (live != 0) {
    out[n++] = static_cast<uint8_t>(__builtin_ctzll(live));
    live &= live - 1;
  }
  std::sort(out, out + n, [this](uint8_t a, uint8_t b) { return keys[a] < keys[b]; });
  return n;
}

uint64_t DataNode::NextRaw() const {
  return std::atomic_ref<uint64_t>(const_cast<DataNode*>(this)->next_raw)
      .load(std::memory_order_acquire);
}

uint64_t DataNode::PrevRaw() const {
  return std::atomic_ref<uint64_t>(const_cast<DataNode*>(this)->prev_raw)
      .load(std::memory_order_acquire);
}

void DataNode::StoreNextPersist(uint64_t raw) {
  std::atomic_ref<uint64_t>(next_raw).store(raw, std::memory_order_release);
  PersistFence(&next_raw, sizeof(uint64_t));
}

void DataNode::StorePrevPersist(uint64_t raw) {
  std::atomic_ref<uint64_t>(prev_raw).store(raw, std::memory_order_release);
  PersistFence(&prev_raw, sizeof(uint64_t));
}

bool DataNode::IsDeleted() const {
  return std::atomic_ref<uint32_t>(const_cast<DataNode*>(this)->deleted)
             .load(std::memory_order_acquire) != 0;
}

}  // namespace pactree
