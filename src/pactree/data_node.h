// PACTree data node (paper Figure 8): a B+-tree-style slotted leaf.
//
// 64 unsorted key-value slots; an 8-byte valid bitmap whose atomic persisted
// update is the linearization AND durability point for every common-case write
// (§5.5); a cache-line-aligned fingerprint array matched with SIMD; a
// permutation array that is deliberately NOT persisted (selective persistence,
// §4.4) and is regenerated on demand, version-checked; anchor key fixed at
// creation; doubly-linked siblings.
//
// Layout is exactly 3072 bytes = 12 XPLines with the fingerprint array on its
// own cache line, chosen for the reasons the paper gives in §5.2.
#ifndef PACTREE_SRC_PACTREE_DATA_NODE_H_
#define PACTREE_SRC_PACTREE_DATA_NODE_H_

#include <cstdint>

#include "src/common/key.h"
#include "src/nvm/persist.h"
#include "src/pmem/pptr.h"
#include "src/sync/version_lock.h"

namespace pactree {

inline constexpr size_t kDataNodeEntries = 64;

struct DataNode {
  // --- cache line 0: mutable metadata (persisted, except perm_version) ---
  OptVersionLock lock;     // 0
  uint64_t bitmap;         // 8   valid-slot bitmap: the durability pivot
  uint64_t next_raw;       // 16  PPtr of right sibling (0 = tail)
  uint64_t prev_raw;       // 24  PPtr of left sibling (0 = head)
  uint32_t deleted;        // 32  logical-delete mark set by merge
  uint32_t pad0;           // 36
  uint64_t perm_version;   // 40  volatile: version the perm array matches
  uint8_t pad1[16];        // 48
  // --- cache line 1: anchor key (immutable after creation, persisted) ---
  Key anchor;              // 64
  uint8_t pad2[28];        // 100
  // --- cache line 2: fingerprints (persisted) ---
  uint8_t fp[kDataNodeEntries];    // 128
  // --- cache line 3: permutation array (NOT persisted) ---
  uint8_t perm[kDataNodeEntries];  // 192
  // --- slots ---
  Key keys[kDataNodeEntries];      // 256
  uint64_t values[kDataNodeEntries];  // 2560

  // ---- helpers (all assume the caller handles concurrency) ----

  uint64_t Bitmap() const;
  int CountLive() const;

  // Slot of |key| (fingerprint-filtered full compare) or -1.
  int FindKey(const Key& key, uint8_t fingerprint) const;

  // First free slot or -1.
  int FindFreeSlot() const;

  // Writes slot contents + fingerprint and persists them (bitmap untouched:
  // callers flip the bit afterwards as the linearization point).
  void FillSlot(int slot, const Key& key, uint8_t fingerprint, uint64_t value);

  // Atomically stores+persists a new bitmap value (linearization point).
  void PublishBitmap(uint64_t new_bitmap);

  // Computes the sorted order of live slots into |out| (up to 64 entries);
  // returns the count. Pure function of the current slot contents.
  int ComputeSortedOrder(uint8_t* out) const;

  // Software-prefetches everything a FindKey probe reads before the slot
  // compare -- metadata (lock/bitmap/links), anchor, and the fingerprint
  // array, i.e. the node's first XPLine. The batched read pipeline issues
  // this one node ahead of the probe so the modeled media fetch overlaps
  // useful work (see AnnotateNvmPrefetch).
  void PrefetchProbe() const { AnnotateNvmPrefetch(this, 256); }

  DataNode* Next() const { return PPtr<DataNode>(NextRaw()).get(); }
  DataNode* Prev() const { return PPtr<DataNode>(PrevRaw()).get(); }
  uint64_t NextRaw() const;
  uint64_t PrevRaw() const;
  void StoreNextPersist(uint64_t raw);
  void StorePrevPersist(uint64_t raw);
  bool IsDeleted() const;
};

static_assert(sizeof(DataNode) == 3072, "data node must be exactly 12 XPLines");
static_assert(offsetof(DataNode, fp) == 128, "fingerprints on their own line");
static_assert(offsetof(DataNode, keys) == 256, "keys XPLine-aligned");

}  // namespace pactree

#endif  // PACTREE_SRC_PACTREE_DATA_NODE_H_
