// Per-writer persistent SMO logs (paper §4.3, §5.6).
//
// A split or merge is logged (and the log entry persisted) before the data
// layer is modified; the background updater thread later replays entries in
// global timestamp order to synchronize the search layer, keeping the
// expensive trie update off the critical path. The log also drives §5.9 crash
// recovery: any entry still pending at restart is re-examined and the SMO is
// rolled forward.
#ifndef PACTREE_SRC_PACTREE_SMO_LOG_H_
#define PACTREE_SRC_PACTREE_SMO_LOG_H_

#include <cstdint>
#include <cstring>

#include "src/common/checksum.h"
#include "src/common/key.h"

namespace pactree {

inline constexpr uint32_t kSmoTypeSplit = 1;
inline constexpr uint32_t kSmoTypeMerge = 2;

// Entries carry a checksum over (type, node_raw, other_raw, anchor) so that a
// torn line write -- e.g. a fresh type word committed next to stale payload
// left in a recycled slot -- is rejected at recovery instead of replayed as a
// garbage SMO. seq and applied are excluded: both are updated after the entry
// is published, each with a single-word (8 B failure-atomic) persist. All
// checksummed words plus the checksum live in the entry's first cache line so
// retirement can durably clear them with one flush.
struct SmoLogEntry {
  uint64_t seq;        // global timestamp; 0 = empty. Published LAST.
  uint32_t type;
  uint32_t applied;    // set by the updater after the search layer caught up
  uint64_t node_raw;   // splitting node / surviving left node
  uint64_t other_raw;  // split: new-node placeholder (AllocTo target);
                       // merge: the deleted right node
  uint64_t checksum;   // SmoEntryChecksum; 0 when the slot is retired
  Key anchor;          // split: new node's anchor; merge: deleted node's anchor
  uint8_t pad0[4];
  // seq of the previous SMO on the same anchor that was still unapplied at
  // publish time; 0 = none. Written before seq's release store; consumed only
  // by the runtime sharded-replay ordering gate (recovery replays the rings
  // single-threaded in global seq order and never reads it, so it needs no
  // flush of its own).
  uint64_t pred_seq;
  uint8_t pad[40];
};
static_assert(sizeof(SmoLogEntry) == 128, "two cache lines per entry");

inline uint64_t SmoEntryChecksum(const SmoLogEntry& e) {
  uint64_t kw[5] = {};
  std::memcpy(kw, &e.anchor, sizeof(Key));
  return LogChecksum({e.type, e.node_raw, e.other_raw, kw[0], kw[1], kw[2], kw[3], kw[4]});
}

inline constexpr size_t kSmoLogEntries = 500;

// One ring per writer slot. head/tail are element counters (mod capacity).
struct SmoLog {
  uint64_t head;  // first unapplied entry (advanced by the updater, persisted)
  uint64_t tail;  // next append position (advanced by the owning writer)
  uint8_t pad[112];
  SmoLogEntry entries[kSmoLogEntries];

  SmoLogEntry& At(uint64_t i) { return entries[i % kSmoLogEntries]; }
};
static_assert(sizeof(SmoLog) == 128 + sizeof(SmoLogEntry) * kSmoLogEntries,
              "log layout");

inline constexpr size_t kMaxWriterSlots = 64;

}  // namespace pactree

#endif  // PACTREE_SRC_PACTREE_SMO_LOG_H_
