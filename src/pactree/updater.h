// SMO-log replay subsystem: writer-slot routing, ring backpressure, and the
// per-NUMA background updater services (paper §4.3, §5.6).
//
// PACTree keeps trie updates off the critical path: a split/merge persists an
// SMO-log entry, mutates only the data layer, and publishes a global sequence
// number; background *updater* services later replay the entries into the
// search layer. This class owns everything on that path -- the kMaxWriterSlots
// persistent rings, the global sequence counter, the per-(thread, tree) writer
// slot assignment, the writer-side ring-full backpressure, and the N updater
// services registered with the MaintenanceRegistry (default: one per logical
// NUMA node).
//
// Sharded replay and ordering (§4.3): ring s belongs to shard s mod N, and a
// writer on logical node n appends only to rings of shard n mod N, so each
// node's SMO traffic is replayed by that node's updater. The global-order
// guarantee is preserved per anchor, which is all readers can observe:
//   * within one ring, entries replay in published-seq order (a pass stops at
//     the first unpublished entry);
//   * across the rings of one shard, a pass merges entries by seq;
//   * across shards (and across a pass's racy snapshot of its own rings),
//     only same-anchor SMOs need ordering, and that ordering is exact, not
//     heuristic: every SMO on anchor A publishes while its caller holds the
//     data-node lock covering A's range, so same-anchor publishes are
//     serialized and their seq order equals causal order. Publish records the
//     anchor's previous still-unapplied seq into the entry (pred_seq), and
//     the apply loop defers any entry until its predecessor has applied
//     (tracked in a volatile per-anchor map; recovery replays the rings
//     single-threaded in global seq order and then resets them, so the map
//     legitimately starts empty). A mere presence probe of A in the trie
//     cannot do this -- for a split(A)/merge(A)/split(A) chain spread over
//     three shards, "A absent" does not distinguish "merge already removed A"
//     from "A never created yet". Different-anchor SMOs commute -- trie
//     inserts/removes of distinct anchors are independent, and a reader that
//     arrives through a not-yet-applied anchor walks the data layer's sibling
//     pointers to the target (the jump-node mechanism, §5.3).
// Deferral keeps seq order *within* the shard: the rest of the pass is
// postponed, and the worker retries on its next pass (short cadence while a
// drain is pending). Progress is guaranteed: the globally smallest unapplied
// published entry's predecessor is always already applied, so every full
// round over all shards applies at least one entry.
#ifndef PACTREE_SRC_PACTREE_UPDATER_H_
#define PACTREE_SRC_PACTREE_UPDATER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/key.h"
#include "src/pactree/smo_log.h"

namespace pactree {

class BackgroundService;
class PdlArt;

class SmoUpdater {
 public:
  struct Options {
    std::string name = "pactree";  // service-name prefix: "<name>/updater<i>"
    uint32_t shards = 1;           // updater count; rings partition s mod shards
    size_t ring_capacity = kSmoLogEntries;  // tests shrink to force backpressure
    bool async = true;  // false: no services; SMOs are applied inline by writers
  };

  SmoUpdater(Options opts, PdlArt* art);
  ~SmoUpdater();  // stops services

  SmoUpdater(const SmoUpdater&) = delete;
  SmoUpdater& operator=(const SmoUpdater&) = delete;

  // Ring plumbing (set by PacTree::Init after the log heap maps, read by
  // recovery before services start).
  void AttachLog(size_t slot, SmoLog* log) { logs_[slot] = log; }
  SmoLog* log(size_t slot) const { return logs_[slot]; }
  uint32_t shards() const { return opts_.shards; }

  // Recovery publishes the next sequence number after scanning all rings.
  void SetNextSeq(uint64_t seq) { smo_seq_.store(seq, std::memory_order_relaxed); }

  // Registers the per-shard updater services (async mode only; no-op
  // otherwise). Call once, after recovery has reset the rings.
  void StartServices();
  // Stops and unregisters every service. Idempotent.
  void StopServices();
  const std::vector<BackgroundService*>& services() const { return services_; }

  // --- writer side ---------------------------------------------------------

  // Appends a pending SMO record to the calling thread's ring and persists it.
  // Blocks with exponential backoff (and counts a ring-full wait per retry)
  // while the ring is full, kicking the owning updater service each time.
  SmoLogEntry* Log(uint32_t type, uint64_t node_raw, uint64_t other_raw,
                   const Key& anchor);
  // Publishes the entry's sequence number once its data-layer work is durable.
  // MUST be called while the caller still holds the data-node lock(s) covering
  // the anchor's range: that lock serializes same-anchor publishes, which is
  // what makes seq order equal causal order per anchor (see header comment).
  void Publish(SmoLogEntry* e);
  // Unwinds a logged-but-never-published entry when the SMO aborts between Log
  // and Publish (the split's data-node allocation failed). Durably zeroes the
  // payload, then assigns a seq with applied already set so the live ring
  // retires the slot; the anchor map is untouched (nothing was published).
  // After a crash *before* Cancel, recovery classifies the entry as a
  // pre-allocation split (other_raw == 0) and drops it -- same net effect.
  void Cancel(SmoLogEntry* e);
  // Synchronous-mode path: applies |e| to the search layer on the calling
  // thread and retires the writer's ring entries.
  void ApplySync(SmoLogEntry* e);

  // --- replay side ---------------------------------------------------------

  // One replay round over shard |shard|'s rings; returns entries applied.
  size_t Pass(uint32_t shard);

  // Blocks until every ring is drained. Live services: CV drain barrier per
  // shard. Any service stopped/paused (or sync mode): the caller runs passes
  // over *all* shards inline -- cross-shard anchor deferral means one shard's
  // progress can require another's.
  void Drain();
  bool Drained() const;
  bool ShardDrained(uint32_t shard) const;

  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }
  uint64_t ring_full_waits() const {
    return ring_full_waits_.load(std::memory_order_relaxed);
  }

 private:
  // Per-(thread, tree) ring assignment, routed to the thread's NUMA shard.
  uint32_t WriterSlot();
  // Applies one entry to the search layer and marks it applied. Returns false
  // when the trie mutation failed on search-layer pool exhaustion (kFull); the
  // entry stays pending and a later pass retries it.
  bool Apply(SmoLogEntry* e);
  // Retires contiguously-applied entries and advances ring heads (shard only).
  void AdvanceHeads(uint32_t shard);
  // True once the same-anchor predecessor with seq |pred| has been applied.
  bool AnchorApplied(const Key& anchor, uint64_t pred) const;
  // Records that |seq| has been applied for |anchor|; drops the map entry
  // once no published SMO for the anchor remains unapplied.
  void MarkAnchorApplied(const Key& anchor, uint64_t seq);

  Options opts_;
  PdlArt* art_;
  SmoLog* logs_[kMaxWriterSlots] = {};
  std::atomic<uint64_t> smo_seq_{1};
  // Round-robin cursor per shard for assigning writer slots within the shard.
  std::unique_ptr<std::atomic<uint32_t>[]> next_slot_;
  std::vector<BackgroundService*> services_;

  // Volatile same-anchor ordering state (see the header comment). An anchor
  // appears here iff some published SMO on it is not yet applied; absence
  // therefore means "no ordering constraint remains". Guarded by anchor_mu_
  // (leaf lock, SMO-rate traffic only).
  struct AnchorSeqs {
    uint64_t published = 0;  // largest published seq for the anchor
    uint64_t applied = 0;    // largest applied seq for the anchor
  };
  mutable std::mutex anchor_mu_;
  std::unordered_map<Key, AnchorSeqs> anchor_seqs_;

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> ring_full_waits_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_PACTREE_UPDATER_H_
