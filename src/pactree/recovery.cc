// PACTree recovery (paper §5.6): roll every pending SMO forward (or discard
// it when its data-layer effects never became visible), rebuild the volatile
// search layer when configured, and reset the SMO rings. Runs single-threaded
// from PacTree::Init, after the heaps map and before updater services start.
#include <algorithm>
#include <cstring>
#include <vector>

#include "src/nvm/persist.h"
#include "src/pactree/pac_root.h"
#include "src/pactree/pactree.h"
#include "src/pactree/updater.h"
#include "src/pmem/registry.h"

namespace pactree {

void PacTree::Recover() {
  // Gather every pending SMO entry across the per-writer logs.
  // Scan entire rings (not just [head, tail]): the persisted tail may lag a
  // published entry that a crash cut off.
  std::vector<SmoLogEntry*> pending;
  uint64_t max_seq = 0;
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = updater_->log(s);
    if (log == nullptr) {
      continue;
    }
    for (size_t i = 0; i < kSmoLogEntries; ++i) {
      SmoLogEntry& e = log->entries[i];
      if (e.type == 0) {
        continue;
      }
      if (e.checksum != SmoEntryChecksum(e)) {
        // A split crash between AllocTo's attach and the checksum re-seal
        // leaves the entry validating only with other_raw treated as 0. The
        // data layer is untouched at that point, so release the fresh node
        // and forget the split.
        SmoLogEntry probe = e;
        probe.other_raw = 0;
        if (e.type == kSmoTypeSplit && e.other_raw != 0 &&
            e.checksum == SmoEntryChecksum(probe)) {
          PmemFree(PPtr<void>(e.other_raw));
        }
        // Anything else is a torn publish: part of the entry committed next
        // to a recycled slot's stale payload. The entry's fence precedes all
        // data mutation, so discarding it means the SMO never started.
        std::memset(static_cast<void*>(&e), 0, sizeof(e));
        PersistFence(&e, sizeof(e));
        continue;
      }
      max_seq = std::max(max_seq, e.seq);
      if (!e.applied) {
        pending.push_back(&e);
      }
    }
  }
  updater_->SetNextSeq(max_seq + 1);
  // In-flight entries (seq not yet published) are the last op of their writer
  // and replay after every published one.
  auto order = [](const SmoLogEntry* e) { return e->seq == 0 ? ~uint64_t{0} : e->seq; };
  std::sort(pending.begin(), pending.end(),
            [&](const SmoLogEntry* a, const SmoLogEntry* b) { return order(a) < order(b); });

  for (SmoLogEntry* e : pending) {
    if (e->type == kSmoTypeSplit) {
      RecoverSplit(e);
    } else {
      RecoverMerge(e);
    }
  }

  if (opts_.dram_search_layer) {
    // Rebuild the volatile trie from the (now consistent) data layer.
    DataNode* node = PPtr<DataNode>(root_->head_raw).get();
    while (node != nullptr) {
      if (!node->IsDeleted()) {
        art_->Insert(node->anchor, ToPPtr(node).Cast<void>().raw);
      }
      node = node->Next();
    }
  }

  art_->Recover();

  // All pending work has been rolled forward; reset the rings.
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = updater_->log(s);
    if (log == nullptr) {
      continue;
    }
    std::memset(static_cast<void*>(log->entries), 0, sizeof(log->entries));
    log->head = 0;
    log->tail = 0;
    PersistFence(log, sizeof(SmoLog));
  }

  // Absorb op-log replay: every acked-but-undrained Insert/Update/Remove that
  // went through the write-absorption buffer sits in a persistent ring hanging
  // off the root. Replay ALL non-null rings -- regardless of this
  // incarnation's absorb option or shard count, since the rings may come from
  // an incarnation configured differently -- through a temporary buffer sized
  // for every possible shard, then reset them. Replay is idempotent and
  // seq-ordered per shard (same key always hashes to the same shard).
  {
    bool any = false;
    for (size_t i = 0; i < kAbsorbMaxShards; ++i) {
      any = any || root_->absorb_raws[i] != 0;
    }
    if (any) {
      AbsorbOptions ao;
      ao.name = opts_.name;
      ao.shards = kAbsorbMaxShards;
      ao.async = false;
      AbsorbBuffer replay(ao, static_cast<AbsorbSink*>(this));
      for (size_t i = 0; i < kAbsorbMaxShards; ++i) {
        if (root_->absorb_raws[i] != 0) {
          replay.AttachRing(static_cast<uint32_t>(i),
                            PPtr<AbsorbLogRing>(root_->absorb_raws[i]).get());
        }
      }
      bool complete = true;
      absorb_replayed_ = replay.ReplayAndReset(&complete);
      if (!complete) {
        // Some ring's ops could not be applied (pool exhaustion): its bytes
        // were left intact as the only durable copy. Init retries through the
        // live absorb buffer once it attaches; if that also fails, the tree
        // runs this incarnation in pinned degraded mode.
        absorb_replay_incomplete_ = true;
      }
      // Replayed batches can log SMOs (splits/merges); in async mode those
      // would otherwise wait for the services that have not started yet, and
      // VerifyRecoveredIndex-style callers expect a fully-drained tree right
      // after Open. Recovery is single-threaded: drain inline.
      updater_->Drain();
    }
  }
}

void PacTree::RecoverSplit(SmoLogEntry* e) {
  DataNode* node = PPtr<DataNode>(e->node_raw).get();
  uint64_t new_raw = e->other_raw;
  if (new_raw == 0) {
    // Crash before the new node was even allocated: the split never became
    // visible and the triggering insert was never acknowledged. Drop it.
    return;
  }
  DataNode* new_node = PPtr<DataNode>(new_raw).get();
  // Is the new node linked into the list? Walk forward from the split node.
  bool linked = false;
  DataNode* cur = node;
  for (int hops = 0; hops < 1 << 20 && cur != nullptr; ++hops) {
    uint64_t nxt = cur->NextRaw();
    if (nxt == new_raw) {
      linked = true;
      break;
    }
    cur = PPtr<DataNode>(nxt).get();
    if (cur == nullptr || cur->anchor > e->anchor) {
      break;
    }
  }
  if (!linked) {
    // Not visible: release the allocated node and forget the split.
    PmemFree(PPtr<void>(new_raw));
    return;
  }
  // Visible: roll forward. (1) the predecessor must not keep keys that moved.
  DataNode* pred = PPtr<DataNode>(new_node->PrevRaw()).get();
  if (pred != nullptr) {
    uint64_t bm = pred->Bitmap();
    uint64_t trimmed = bm;
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      if (pred->keys[i] >= e->anchor) {
        trimmed &= ~(1ULL << i);
      }
      bm &= bm - 1;
    }
    if (trimmed != pred->Bitmap()) {
      pred->PublishBitmap(trimmed);
    }
  }
  // (2) the right neighbor's back-pointer.
  DataNode* right = PPtr<DataNode>(new_node->NextRaw()).get();
  if (right != nullptr && right->PrevRaw() != new_raw) {
    right->StorePrevPersist(new_raw);
  }
  // (3) the search layer.
  art_->Insert(e->anchor, new_raw);
  e->applied = 1;
  PersistFence(&e->applied, sizeof(e->applied));
}

void PacTree::RecoverMerge(SmoLogEntry* e) {
  DataNode* node = PPtr<DataNode>(e->node_raw).get();
  DataNode* right = PPtr<DataNode>(e->other_raw).get();
  if (right == nullptr) {
    return;
  }
  if (!right->IsDeleted()) {
    // Copy phase may be incomplete: move over every live key the survivor does
    // not already hold, then mark the victim deleted.
    uint64_t bm = right->Bitmap();
    uint64_t add = 0;
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      bm &= bm - 1;
      const Key& k = right->keys[i];
      if (node->FindKey(k, k.Fingerprint()) >= 0) {
        continue;
      }
      uint64_t live = node->Bitmap() | add;
      if (live == ~0ULL) {
        break;  // no room: abandon the merge roll-forward (victim stays live)
      }
      int free = __builtin_ctzll(~live);
      node->FillSlot(free, k, k.Fingerprint(), right->values[i]);
      add |= 1ULL << free;
    }
    if ((right->Bitmap() != 0 && add == 0 && node->Bitmap() == ~0ULL)) {
      return;  // could not complete; leave both nodes live (list still valid)
    }
    if (add != 0) {
      node->PublishBitmap(node->Bitmap() | add);
    }
    std::atomic_ref<uint32_t>(right->deleted).store(1, std::memory_order_release);
    PersistFence(&right->deleted, sizeof(right->deleted));
  }
  // Unlink.
  if (node->NextRaw() == e->other_raw) {
    node->StoreNextPersist(right->NextRaw());
  }
  DataNode* r2 = PPtr<DataNode>(right->NextRaw()).get();
  if (r2 != nullptr && r2->PrevRaw() == e->other_raw) {
    r2->StorePrevPersist(e->node_raw);
  }
  // Search layer + physical free (recovery is single-threaded: free directly).
  art_->Remove(e->anchor);
  e->applied = 1;
  PersistFence(&e->applied, sizeof(e->applied));
  PmemFree(PPtr<void>(e->other_raw));
}

}  // namespace pactree
