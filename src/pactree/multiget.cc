// Batched point-read pipeline (DESIGN.md §6f).
//
// PacTree::Lookup pays three per-key costs: an absorb shard-lock, an
// EpochGuard enter/exit, and an ART descent followed by a version-validated
// data-node probe. MultiGet amortizes all three across a batch:
//
//   Stage 1 -- absorb routing: AbsorbBuffer::MultiLookup routes every key to
//   its owning shard and takes each involved shard's mutex ONCE, answering
//   staged values and tombstones exactly as the per-key Lookup would.
//
//   Stage 2 -- floor resolution: ONE EpochGuard covers the rest of the batch.
//   The remaining (miss) keys are sorted and their ART floors resolved in a
//   software-pipelined loop: before resolving key j, key j+1's trie path is
//   prefetched (PdlArt::PrefetchFloorPath -> AnnotateNvmPrefetch warms the
//   modeled XPLine cache without stalling), and each resolved floor node's
//   metadata/anchor/fingerprint XPLine is prefetched for stage 3. One key's
//   worth of work always sits between a prefetch and its use, which is the
//   overlap window the non-stalling prefetch model assumes.
//
//   Stage 3 -- node-grouped probing: because the miss keys are sorted, keys
//   owned by one data node are contiguous. Each group jump-walks once
//   (JumpWalk re-uses the stage-2 floor as its start), reads the sibling's
//   anchor as the group's upper bound, fingerprint-probes every key of the
//   group, and validates the node version ONCE. Validation failure retries
//   that group only.
//
// Safety of the group upper bound: anchors are immutable after node creation
// and the epoch guard keeps any node reachable through next_raw mapped, so
// reading next->anchor before validation is safe; if a concurrent split or
// merge changed the linkage after JumpWalk's token was taken, the single
// Validate fails and the group re-walks. This is exactly the optimistic
// read protocol of LookupBase, applied once per group instead of per key.
#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "src/nvm/persist.h"
#include "src/pactree/pac_root.h"
#include "src/pactree/pactree.h"
#include "src/sync/epoch.h"

namespace pactree {

size_t PacTree::MultiGet(std::span<const Key> keys, uint64_t* values,
                         Status* statuses) const {
  const size_t n = keys.size();
  if (n == 0) {
    return 0;
  }
  stat_multiget_batches_.fetch_add(1, std::memory_order_relaxed);
  stat_multiget_keys_.fetch_add(n, std::memory_order_relaxed);

  std::vector<Status> local_status;
  Status* st = statuses;
  if (st == nullptr) {
    local_status.resize(n);
    st = local_status.data();
  }

  // --- stage 1: absorb routing --------------------------------------------
  size_t found = 0;
  std::vector<size_t> miss;
  miss.reserve(n);
  if (absorb_ != nullptr) {
    std::vector<AbsorbBuffer::Hit> hits(n);
    absorb_->MultiLookup(keys, hits.data(), values);
    for (size_t i = 0; i < n; ++i) {
      switch (hits[i]) {
        case AbsorbBuffer::Hit::kValue:
          st[i] = Status::kOk;
          ++found;
          break;
        case AbsorbBuffer::Hit::kTombstone:
          st[i] = Status::kNotFound;
          break;
        case AbsorbBuffer::Hit::kMiss:
          miss.push_back(i);
          break;
      }
    }
  } else {
    miss.resize(n);
    std::iota(miss.begin(), miss.end(), size_t{0});
  }
  if (miss.empty()) {
    return found;
  }

  stat_epoch_enters_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard;

  // Sort the misses by key (ties by position, so duplicate keys resolve
  // deterministically and stay adjacent within their group).
  std::sort(miss.begin(), miss.end(), [&keys](size_t a, size_t b) {
    if (keys[a] < keys[b]) {
      return true;
    }
    if (keys[b] < keys[a]) {
      return false;
    }
    return a < b;
  });

  // --- stage 2: software-pipelined floor resolution ------------------------
  // floor[j] = trie floor node for keys[miss[j]] (JumpWalk's start). The
  // first key's descent runs cold; every later descent runs against the
  // lines its predecessor's iteration prefetched.
  std::vector<DataNode*> floor(miss.size());
  for (size_t j = 0; j < miss.size(); ++j) {
    if (j + 1 < miss.size()) {
      art_->PrefetchFloorPath(keys[miss[j + 1]]);
    }
    Key fkey;
    uint64_t raw = 0;
    DataNode* node = nullptr;
    if (art_->LookupFloorNoGuard(keys[miss[j]], &fkey, &raw) == Status::kOk &&
        raw != 0) {
      node = PPtr<DataNode>(raw).get();
    } else {
      node = PPtr<DataNode>(root_->head_raw).get();
    }
    node->PrefetchProbe();
    floor[j] = node;
  }

  // --- stage 3: node-grouped probing ---------------------------------------
  struct Probe {
    uint64_t value;
    bool hit;
  };
  std::vector<Probe> probe;
  size_t g = 0;
  while (g < miss.size()) {
    const Key& gkey = keys[miss[g]];
    while (true) {
      uint64_t version;
      DataNode* node = JumpWalk(floor[g], gkey, &version);
      // Group upper bound = right sibling's anchor (safe pre-validation: see
      // file comment). An unbounded (tail) node owns every remaining key.
      uint64_t next_raw = node->NextRaw();
      DataNode* next = PPtr<DataNode>(next_raw).get();
      size_t gend = g + 1;
      while (gend < miss.size() &&
             (next == nullptr || keys[miss[gend]] < next->anchor)) {
        ++gend;
      }
      probe.resize(gend - g);
      for (size_t j = g; j < gend; ++j) {
        const Key& k = keys[miss[j]];
        int slot = node->FindKey(k, k.Fingerprint());
        uint64_t v = 0;
        if (slot >= 0) {
          AnnotateNvmRead(&node->values[slot], sizeof(uint64_t));
          v = std::atomic_ref<uint64_t>(node->values[slot])
                  .load(std::memory_order_acquire);
        }
        probe[j - g] = {v, slot >= 0};
      }
      if (!node->lock.Validate(version)) {
        stat_multiget_group_retries_.fetch_add(1, std::memory_order_relaxed);
        stat_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;  // re-walk this group; JumpWalk absorbs any relink
      }
      stat_multiget_node_groups_.fetch_add(1, std::memory_order_relaxed);
      for (size_t j = g; j < gend; ++j) {
        size_t i = miss[j];
        if (probe[j - g].hit) {
          st[i] = Status::kOk;
          if (values != nullptr) {
            values[i] = probe[j - g].value;
          }
          ++found;
        } else {
          st[i] = Status::kNotFound;
        }
      }
      if (gend < miss.size()) {
        floor[gend]->PrefetchProbe();  // overlap the next group's walk
      }
      g = gend;
      break;
    }
  }
  return found;
}

void PacTree::MultiScan(std::span<const Key> starts, std::span<const size_t> counts,
                        std::vector<std::vector<std::pair<Key, uint64_t>>>* out) const {
  out->resize(starts.size());
  if (starts.empty()) {
    return;
  }
  stat_multiscan_batches_.fetch_add(1, std::memory_order_relaxed);
  // Ascending start order maximizes modeled-cache reuse between adjacent
  // ranges; the outer guard makes each inner scan's EpochGuard a cheap
  // nested enter.
  std::vector<size_t> order(starts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&starts](size_t a, size_t b) {
    if (starts[a] < starts[b]) {
      return true;
    }
    if (starts[b] < starts[a]) {
      return false;
    }
    return a < b;
  });
  stat_epoch_enters_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard;
  for (size_t i : order) {
    Scan(starts[i], counts[i], &(*out)[i]);
  }
}

}  // namespace pactree
