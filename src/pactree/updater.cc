#include "src/pactree/updater.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/art/art.h"
#include "src/common/compiler.h"
#include "src/common/failpoint.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/topology.h"
#include "src/runtime/maintenance.h"
#include "src/runtime/thread_context.h"
#include "src/sync/epoch.h"

namespace pactree {

SmoUpdater::SmoUpdater(Options opts, PdlArt* art)
    : opts_(std::move(opts)), art_(art) {
  opts_.shards = std::max<uint32_t>(
      1, std::min<uint32_t>(opts_.shards, kMaxWriterSlots));
  opts_.ring_capacity =
      std::max<size_t>(1, std::min<size_t>(opts_.ring_capacity, kSmoLogEntries));
  next_slot_ = std::make_unique<std::atomic<uint32_t>[]>(opts_.shards);
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    next_slot_[i].store(0, std::memory_order_relaxed);
  }
}

SmoUpdater::~SmoUpdater() { StopServices(); }

void SmoUpdater::StartServices() {
  if (!opts_.async || !services_.empty()) {
    return;
  }
  uint32_t nodes = std::max<uint32_t>(1, GlobalNvmConfig().numa_nodes);
  for (uint32_t u = 0; u < opts_.shards; ++u) {
    uint32_t node = u % nodes;
    BackgroundService::Options o;
    o.name = opts_.name + "/updater" + std::to_string(u);
    o.numa_node = static_cast<int>(node);
    // Route placement through the topology layer so config clamping (and the
    // media model's remote-access accounting) sees the assignment.
    o.thread_init = [node] { SetCurrentNumaNode(node); };
    services_.push_back(
        MaintenanceRegistry::Instance().Register(std::move(o), [this, u] {
          return Pass(u);
        }));
  }
}

void SmoUpdater::StopServices() {
  for (BackgroundService* s : services_) {
    MaintenanceRegistry::Instance().Unregister(s);
  }
  services_.clear();
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

uint32_t SmoUpdater::WriterSlot() {
  // Per-(thread, tree) slot assignment via the thread's context, routed to the
  // shard owning the thread's logical NUMA node so this node's updater service
  // replays this thread's SMOs. Stored as slot+1 so the zero-initialized word
  // means "unassigned"; reduced modulo kMaxWriterSlots on every read because a
  // stale word surviving this updater's address being recycled must still map
  // to a valid slot (it is a routing hint, never a correctness input).
  uint64_t& w = ThreadContext::Current().InstanceWord(this);
  if (w == 0) {
    uint32_t shard = CurrentNumaNode() % opts_.shards;
    uint32_t per_shard = kMaxWriterSlots / opts_.shards;
    uint32_t k =
        next_slot_[shard].fetch_add(1, std::memory_order_relaxed) % per_shard;
    w = 1 + shard + k * opts_.shards;
  }
  return static_cast<uint32_t>((w - 1) % kMaxWriterSlots);
}

SmoLogEntry* SmoUpdater::Log(uint32_t type, uint64_t node_raw, uint64_t other_raw,
                             const Key& anchor) {
  uint32_t slot = WriterSlot();
  SmoLog* log = logs_[slot];
  // Writer slots can be shared by more threads than kMaxWriterSlots; appends
  // to one ring are serialized by the tail CAS.
  uint64_t pos;
  uint64_t backoff_us = 0;
  while (true) {
    pos = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
    uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
    // Fail point "smo/ring_full": forces one backpressure round as if the ring
    // were full (short-circuit keeps it unevaluated on genuinely full rings).
    if (pos - head >= opts_.ring_capacity || PACTREE_FAILPOINT("smo/ring_full")) {
      // Ring full: account the stall, kick the owning updater out of idle
      // backoff, and back off exponentially ourselves (bounded by SMO rate).
      ring_full_waits_.fetch_add(1, std::memory_order_relaxed);
      if (!services_.empty()) {
        services_[slot % opts_.shards]->Notify();
      } else {
        // Sync mode: no service will ever drain this ring. A full ring here
        // means entries are stuck pending (a kFull apply left stragglers);
        // retry them inline so the append can make progress.
        Pass(slot % opts_.shards);
      }
      if (backoff_us == 0) {
        CpuRelax();
        std::this_thread::yield();
        backoff_us = 1;
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us = std::min<uint64_t>(backoff_us * 2, 1000);
      }
      continue;
    }
    if (std::atomic_ref<uint64_t>(log->tail).compare_exchange_weak(
            pos, pos + 1, std::memory_order_acq_rel)) {
      break;
    }
  }
  SmoLogEntry& e = log->At(pos);
  // Published by Publish once the data-layer work is durable. Atomic: the
  // updater's ring scan may read seq of a just-claimed slot concurrently (it
  // sees 0 either way and skips, but the access itself must be non-racy).
  std::atomic_ref<uint64_t>(e.seq).store(0, std::memory_order_relaxed);
  e.applied = 0;
  e.node_raw = node_raw;
  e.other_raw = other_raw;
  e.anchor = anchor;
  std::atomic_ref<uint32_t>(e.type).store(type, std::memory_order_release);
  // Checksum last (it covers type): the whole entry becomes durable in one
  // fence, and any torn subset of its lines fails validation at recovery.
  e.checksum = SmoEntryChecksum(e);
  PersistFence(&e, sizeof(e));
  PersistFence(&log->tail, sizeof(log->tail));
  return &e;
}

void SmoUpdater::Publish(SmoLogEntry* e) {
  // The updater (and any same-anchor successor SMO) may act on this entry only
  // once the data layer reflects it; the seq store is that publication point.
  // The caller still holds the data-node lock(s) covering the anchor's range,
  // so same-anchor publishes are serialized; assigning the seq and recording
  // the anchor's previous unapplied seq under one critical section makes
  // pred_seq the exact same-anchor predecessor in causal order.
  uint64_t seq;
  uint64_t pred;
  {
    std::lock_guard<std::mutex> guard(anchor_mu_);
    seq = smo_seq_.fetch_add(1, std::memory_order_relaxed);
    AnchorSeqs& a = anchor_seqs_[e->anchor];
    pred = a.published;
    a.published = seq;
  }
  std::atomic_ref<uint64_t>(e->pred_seq).store(pred, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(e->seq).store(seq, std::memory_order_release);
  PersistFence(&e->seq, sizeof(e->seq));
}

bool SmoUpdater::AnchorApplied(const Key& anchor, uint64_t pred) const {
  std::lock_guard<std::mutex> guard(anchor_mu_);
  auto it = anchor_seqs_.find(anchor);
  // Absent means every published SMO on the anchor has applied: the map entry
  // is erased only when applied catches up to published, and published >= pred
  // from the moment the predecessor was published.
  return it == anchor_seqs_.end() || it->second.applied >= pred;
}

void SmoUpdater::MarkAnchorApplied(const Key& anchor, uint64_t seq) {
  std::lock_guard<std::mutex> guard(anchor_mu_);
  auto it = anchor_seqs_.find(anchor);
  if (it == anchor_seqs_.end()) {
    return;
  }
  it->second.applied = std::max(it->second.applied, seq);
  if (it->second.applied >= it->second.published) {
    anchor_seqs_.erase(it);  // no pending SMO left; bounds the map's size
  }
}

void SmoUpdater::Cancel(SmoLogEntry* e) {
  // Durably erase the payload first: after this fence the entry is
  // indistinguishable from a retired slot to recovery (type 0 is skipped).
  e->node_raw = 0;
  e->other_raw = 0;
  e->checksum = 0;
  std::atomic_ref<uint32_t>(e->type).store(0, std::memory_order_release);
  PersistFence(e, sizeof(*e));
  // Then let the live ring retire the slot: AdvanceHeads requires a nonzero
  // seq and applied set. applied before seq (release) mirrors the order Pass
  // reads them in. No anchor-map update -- Publish never ran, so no reader or
  // successor SMO is waiting on this entry.
  e->applied = 1;
  uint64_t seq = smo_seq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(e->seq).store(seq, std::memory_order_release);
  AdvanceHeads(WriterSlot() % opts_.shards);
}

void SmoUpdater::ApplySync(SmoLogEntry* e) {
  Apply(e);
  AdvanceHeads(WriterSlot() % opts_.shards);
}

// ---------------------------------------------------------------------------
// Replay side
// ---------------------------------------------------------------------------

bool SmoUpdater::Apply(SmoLogEntry* e) {
  uint64_t seq = std::atomic_ref<uint64_t>(e->seq).load(std::memory_order_relaxed);
  if (e->type == kSmoTypeSplit) {
    if (art_->Insert(e->anchor, e->other_raw) == Status::kFull) {
      // Search-layer pool exhausted. The entry must NOT be marked applied: a
      // retired entry would silently drop the anchor forever, whereas a
      // pending one is retried by the next pass (readers reach the new node
      // through sibling walks meanwhile).
      return false;
    }
    e->applied = 1;
    PersistFence(&e->applied, sizeof(e->applied));
    applied_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Merge: remove the anchor, then free the victim after two epochs (§5.6).
    // Remove's shrink-copy falls back to in-place removal on exhaustion, but a
    // prefix-split path can still report kFull; keep the entry pending then.
    if (art_->Remove(e->anchor) == Status::kFull) {
      return false;
    }
    e->applied = 1;
    PersistFence(&e->applied, sizeof(e->applied));
    applied_.fetch_add(1, std::memory_order_relaxed);
    EpochManager::Instance().Retire(PPtr<void>(e->other_raw));
  }
  // Only after the trie mutation is done may a same-anchor successor (possibly
  // replaying concurrently in a peer shard) be released.
  MarkAnchorApplied(e->anchor, seq);
  return true;
}

size_t SmoUpdater::Pass(uint32_t shard) {
  struct Item {
    uint64_t seq;
    SmoLogEntry* e;
  };
  std::vector<Item> items;
  for (size_t s = shard; s < kMaxWriterSlots; s += opts_.shards) {
    SmoLog* log = logs_[s];
    if (log == nullptr) {
      continue;
    }
    uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
    uint64_t tail = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
    for (uint64_t i = head; i < tail && i < head + kSmoLogEntries; ++i) {
      SmoLogEntry& e = log->At(i);
      uint64_t seq = std::atomic_ref<uint64_t>(e.seq).load(std::memory_order_acquire);
      if (seq == 0) {
        break;  // writer claimed but not yet published; later entries wait
      }
      if (!e.applied) {
        items.push_back({seq, &e});
      }
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.seq < b.seq; });
  size_t applied = 0;
  for (const Item& it : items) {
    // Same-anchor SMOs must apply in causal order even if they live in another
    // shard's rings or this pass's snapshot missed an earlier entry. pred_seq
    // names the exact predecessor; defer until it has applied. Different
    // anchors commute (see the ordering argument in the header).
    uint64_t pred =
        std::atomic_ref<uint64_t>(it.e->pred_seq).load(std::memory_order_relaxed);
    if (pred != 0 && !AnchorApplied(it.e->anchor, pred)) {
      break;  // defer the rest of this pass to preserve seq order in-shard
    }
    if (!Apply(it.e)) {
      break;  // search-layer pool exhausted; defer, a later pass retries
    }
    applied++;
  }
  AdvanceHeads(shard);
  return applied;
}

void SmoUpdater::AdvanceHeads(uint32_t shard) {
  // Advance ring heads past contiguously-applied entries.
  for (size_t s = shard; s < kMaxWriterSlots; s += opts_.shards) {
    SmoLog* log = logs_[s];
    if (log == nullptr) {
      continue;
    }
    uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
    uint64_t tail = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
    uint64_t new_head = head;
    while (new_head < tail) {
      SmoLogEntry& e = log->At(new_head);
      if (std::atomic_ref<uint64_t>(e.seq).load(std::memory_order_acquire) == 0 ||
          !e.applied) {
        break;
      }
      e.seq = 0;
      e.applied = 0;
      e.node_raw = 0;
      e.other_raw = 0;
      e.checksum = 0;
      // pred_seq is volatile-only state (recovery never reads it) and Publish
      // rewrites it before re-publishing the slot; clear it without a flush.
      std::atomic_ref<uint64_t>(e.pred_seq).store(0, std::memory_order_relaxed);
      std::atomic_ref<uint32_t>(e.type).store(0, std::memory_order_release);
      // Everything a recycled slot could leak into a torn future entry --
      // payload and checksum -- is durably cleared in one line flush.
      PersistRange(&e.seq, 5 * sizeof(uint64_t));
      new_head++;
    }
    if (new_head != head) {
      Fence();
      // Monotonic CAS advance: in sync mode two writers finishing ApplySync
      // can retire the same shard concurrently, and a plain store could
      // regress head past entries the winner already recycled (stranding the
      // ring with head < tail and an empty entry at head).
      uint64_t cur = head;
      while (cur < new_head &&
             !std::atomic_ref<uint64_t>(log->head).compare_exchange_weak(
                 cur, new_head, std::memory_order_acq_rel)) {
      }
      PersistFence(&log->head, sizeof(log->head));
    }
  }
}

bool SmoUpdater::ShardDrained(uint32_t shard) const {
  for (size_t s = shard; s < kMaxWriterSlots; s += opts_.shards) {
    SmoLog* log = logs_[s];
    if (log == nullptr) {
      continue;
    }
    if (std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire) !=
        std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire)) {
      return false;
    }
    for (size_t i = 0; i < kSmoLogEntries; ++i) {
      if (std::atomic_ref<uint32_t>(log->entries[i].type)
              .load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
  }
  return true;
}

bool SmoUpdater::Drained() const {
  for (uint32_t u = 0; u < opts_.shards; ++u) {
    if (!ShardDrained(u)) {
      return false;
    }
  }
  return true;
}

void SmoUpdater::Drain() {
  bool all_live = !services_.empty();
  for (BackgroundService* s : services_) {
    all_live = all_live && s->running() && !s->paused();
  }
  if (all_live) {
    // CV drain barrier per shard: each service keeps passing (short cadence)
    // while its drainer waits; peers replay concurrently, so cross-shard
    // anchor deferrals resolve without any caller-side polling. The stuck
    // escape releases the barrier when passes stop applying anything for an
    // extended stretch -- a search-layer pool exhausted past recovery would
    // otherwise wedge the drain (and shutdown) forever; the unapplied
    // entries stay pending in the rings and jump walks cover the staleness.
    for (uint32_t u = 0; u < opts_.shards; ++u) {
      uint64_t last_applied = applied();
      int stuck = 0;
      services_[u]->Drain([this, u, &last_applied, &stuck] {
        if (ShardDrained(u)) {
          return true;
        }
        uint64_t a = applied();
        if (a != last_applied) {
          last_applied = a;
          stuck = 0;
          return false;
        }
        return ++stuck >= 4096;  // ~0.4 s of fruitless passes: give up
      });
    }
    return;
  }
  // Synchronous path (async_search_update=false, paused services, shutdown):
  // the caller replays every shard itself. All shards advance together --
  // a deferred merge in one shard may wait on a split in another. A round
  // that applies nothing means a writer is mid-publish; yield instead of
  // burning the core it may need. The stuck escape mirrors the live path:
  // entries no pass can apply (exhausted search pool) must not spin forever.
  int stuck = 0;
  while (!Drained()) {
    size_t applied = 0;
    for (uint32_t u = 0; u < opts_.shards; ++u) {
      if (u < services_.size()) {
        applied += services_[u]->RunPassInline();  // mutually exclusive with the worker
      } else {
        applied += Pass(u);
      }
    }
    EpochManager::Instance().TryAdvanceAndReclaim();
    if (applied != 0) {
      stuck = 0;
      continue;
    }
    if (++stuck >= 65536) {
      break;  // nothing appliable; pending entries stay in the rings
    }
    std::this_thread::yield();
  }
}

}  // namespace pactree
