// PACTree: a high-performance persistent range index built on the PAC
// guidelines (SOSP'21).
//
// Architecture (paper §4): a *data layer* -- a doubly-linked list of 64-entry
// slotted data nodes -- decoupled from a *search layer* -- a PDL-ART trie over
// the data nodes' anchor keys. Splits and merges update only the data layer on
// the critical path; a persistent SMO log plus per-NUMA background updater
// services (src/pactree/updater.h) synchronize the search layer
// asynchronously. Readers that arrive through a stale search layer land on a
// "jump node" and walk the data layer's sibling pointers to the target
// (ephemeral-inconsistency-tolerant design, §4.3).
//
// Guarantees: durable linearizability (an acknowledged write is durable; a read
// never returns an unpersisted write), crash consistency without logging for
// common-case writes (bitmap = linearization + durability pivot), leak-free
// allocation, near-instant recovery (both layers live on NVM).
//
// This file is the operation front-end; SMO replay lives in updater.{h,cc} and
// crash recovery in recovery.cc.
#ifndef PACTREE_SRC_PACTREE_PACTREE_H_
#define PACTREE_SRC_PACTREE_PACTREE_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/absorb/absorb.h"
#include "src/art/art.h"
#include "src/common/key.h"
#include "src/common/status.h"
#include "src/pactree/data_node.h"
#include "src/pactree/smo_log.h"
#include "src/pactree/updater.h"
#include "src/pmem/heap.h"

namespace pactree {

struct PacTreeOptions {
  std::string name = "pactree";
  uint16_t pool_id_base = 100;  // uses [base, base+24): search/data/log heaps
  size_t pool_size = 512ULL << 20;  // per NUMA sub-pool

  // Feature toggles for the paper's Figure 12 factor analysis. All on by
  // default (full PACTree).
  bool async_search_update = true;   // off -> SL updated on the critical path
  bool per_numa_pools = true;        // off -> single pool per heap
  bool selective_persistence = true; // off -> persist the permutation array
  bool dram_search_layer = false;    // on  -> trie in DRAM (rebuilt-free: ART
                                     //        is rebuilt from SMO-na... kept
                                     //        volatile; recovery rebuilds it)

  // Background updater services (async mode). 0 = auto: PAC_UPDATERS env var
  // if set, else one per logical NUMA node. Clamped to [1, kMaxWriterSlots].
  uint32_t updater_count = 0;
  // Effective ring capacity (<= kSmoLogEntries); tests shrink it to exercise
  // writer-side backpressure without logging thousands of SMOs.
  size_t smo_ring_capacity = kSmoLogEntries;

  // Write absorption (src/absorb): route Insert/Update/Remove through per-NUMA
  // DRAM absorb shards backed by persistent op-log rings; drain services apply
  // key-sorted batches to the data layer, coalescing media writes. Also
  // enabled by PAC_ABSORB=1 (the bench --absorb flag).
  bool absorb_writes = false;
  // Absorb shard count. 0 = auto: one per logical NUMA node. Clamped to
  // [1, kAbsorbMaxShards].
  uint32_t absorb_shards = 0;
  // Effective absorb ring capacity (<= kAbsorbLogEntries); tests shrink it to
  // exercise writer-side backpressure.
  size_t absorb_ring_capacity = kAbsorbLogEntries;
  // Max ops an absorb drain pass pulls off one shard's ring.
  size_t absorb_drain_batch = 128;

  // Pool-pressure watermarks, as fractions of chunk capacity; the signal is
  // the *highest* sub-pool used-fraction across the data and log heaps (one
  // exhausted sub-pool stalls writers even when siblings have room). Past
  // |pressure_soft| the pressure service kicks absorb drains (emptying rings
  // is the only reclaim writers cannot do themselves); past |pressure_hard|
  // the tree enters read-only degraded mode -- Insert/Update fail fast with
  // kFull while lookups, scans, MultiGet, and Remove keep serving -- until
  // the used fraction falls back to |pressure_resume|. Env overrides:
  // PAC_PRESSURE_SOFT / PAC_PRESSURE_HARD / PAC_PRESSURE_RESUME (percent,
  // e.g. 95 for 0.95).
  double pressure_soft = 0.85;
  double pressure_hard = 0.95;
  double pressure_resume = 0.90;
};

// Jump-hop histogram width: bucket i counts lookups that needed i sibling
// hops; the last bucket absorbs everything >= kHopHistBuckets - 1.
inline constexpr int kHopHistBuckets = 16;

struct PacTreeStats {
  uint64_t splits = 0;
  uint64_t merges = 0;
  uint64_t smo_applied = 0;
  // Writer-side ring-full stalls: one count per backpressure retry while an
  // SMO append waited for the updater to drain its ring.
  uint64_t smo_ring_full_waits = 0;
  // Jump-node distance distribution (§6.7): how many sibling hops a lookup
  // needed after the search-layer traversal. Full histogram, plus the legacy
  // 4-bucket view (0, 1, 2, >=3) derived from it for existing consumers.
  uint64_t hop_hist[kHopHistBuckets] = {};
  uint64_t jump_hops[4] = {0, 0, 0, 0};
  uint64_t retries = 0;
  // Read-path amortization counters (what the batched pipeline saves).
  uint64_t epoch_enters = 0;  // EpochGuard constructions on read paths
  uint64_t node_locks = 0;    // data-node ReadLock acquisitions
  uint64_t multiget_batches = 0;
  uint64_t multiget_keys = 0;
  uint64_t multiget_node_groups = 0;   // groups probed under one validation
  uint64_t multiget_group_retries = 0; // group validation failures
  uint64_t multiscan_batches = 0;
  // Write-absorption counters (all zero when absorb_writes is off).
  AbsorbStats absorb;
  // Resource-exhaustion visibility (the tentpole of the robustness work).
  bool degraded = false;              // read-only degraded mode active
  uint64_t write_rejects = 0;         // writes failed fast with kFull while degraded
  uint64_t split_alloc_failures = 0;  // splits aborted on data-pool exhaustion
  double used_fraction = 0.0;         // max sub-pool used fraction, data+log heaps
  uint64_t alloc_failures = 0;        // failed pool allocations, data+log heaps
};

class PacTree : private AbsorbSink {
 public:
  // Opens (or creates) the index. Runs full recovery when attaching to an
  // existing instance. Returns null on failure.
  static std::unique_ptr<PacTree> Open(const PacTreeOptions& opts);

  // Removes the backing pool files.
  static void Destroy(const std::string& name);

  ~PacTree();
  PacTree(const PacTree&) = delete;
  PacTree& operator=(const PacTree&) = delete;

  // Upsert: kOk = fresh insert, kExists = value overwritten.
  Status Insert(const Key& key, uint64_t value);
  // Update only (kNotFound when absent). The paper's update writes the new
  // value to a fresh slot and flips both bitmap bits in one atomic store.
  Status Update(const Key& key, uint64_t value);
  Status Lookup(const Key& key, uint64_t* value) const;
  Status Remove(const Key& key);

  // Range scan: up to |count| pairs with key >= |start|, ascending.
  size_t Scan(const Key& start, size_t count,
              std::vector<std::pair<Key, uint64_t>>* out) const;

  // Batched point lookups (multiget.cc): one absorb pass per involved shard,
  // ONE EpochGuard for the batch, software-pipelined ART floor resolution
  // with path/node prefetch, and node-grouped probing that read-locks and
  // version-validates each data node once per contiguous key group. Results
  // are exactly what per-key Lookup would return; duplicate and out-of-order
  // keys are fine. Contract matches RangeIndex::MultiGet.
  size_t MultiGet(std::span<const Key> keys, uint64_t* values,
                  Status* statuses) const;

  // Batched range scans: processes starts in ascending key order under one
  // outer epoch (per-scan guards nest cheaply), so adjacent ranges reuse
  // warmed node lines. Contract matches RangeIndex::MultiScan.
  void MultiScan(std::span<const Key> starts, std::span<const size_t> counts,
                 std::vector<std::vector<std::pair<Key, uint64_t>>>* out) const;

  // Blocks until every logged SMO has been applied to the search layer
  // (CV drain barrier against the updater services; inline replay when they
  // are paused, stopped, or absent in sync mode).
  void DrainSmoLogs();
  // Blocks until every absorb shard's staged ops have drained into the data
  // layer (no-op when absorb_writes is off). Drained absorb batches may log
  // SMOs, so callers wanting a fully-quiesced tree drain absorb first, then
  // the SMO logs.
  void DrainAbsorb();

  PacTreeStats Stats() const;

  // True while the tree is in read-only degraded mode (pool pressure past the
  // hard watermark, or an absorb op-log replay that could not complete).
  // Insert/Update return kFull immediately; reads and Remove keep serving.
  bool Degraded() const { return degraded_.load(std::memory_order_relaxed); }
  // One pressure-evaluation round: recomputes the used fraction over the data
  // and log heaps and applies the watermark policy (soft -> kick absorb
  // drains, hard -> enter degraded, resume -> leave degraded). Runs
  // periodically on the "<name>/pool/pressure" service in async mode and
  // inline from allocation-failure paths, so sync-mode trees still degrade.
  void PollPressure();

  const PacTreeOptions& options() const { return opts_; }
  PdlArt* search_layer() { return art_.get(); }
  // The SMO replay subsystem and its registered background services (empty in
  // sync mode). Tests and benches read per-service MaintenanceStats here.
  SmoUpdater* updater() const { return updater_.get(); }
  const std::vector<BackgroundService*>& UpdaterServices() const {
    return updater_->services();
  }
  // Backing heaps (crash tests shadow their pools).
  PmemHeap* search_heap() const { return search_heap_.get(); }
  PmemHeap* data_heap() const { return data_heap_.get(); }
  PmemHeap* log_heap() const { return log_heap_.get(); }

  // Total live keys (O(n) data-layer walk; tests/examples only).
  uint64_t Size() const;

  // Verifies data-layer invariants (anchors ordered, ranges respected,
  // sibling links consistent). Returns false and fills |why| on violation.
  bool CheckInvariants(std::string* why) const;

  // True when every SMO ring is empty (head == tail, no live entries) --
  // guaranteed immediately after Open/Recover and after DrainSmoLogs.
  bool SmoLogsDrained() const;
  // True when no absorb op is staged (trivially true with absorb off) --
  // guaranteed immediately after Open/Recover and after DrainAbsorb.
  bool AbsorbDrained() const;
  // The write-absorption buffer; null when absorb_writes is off.
  AbsorbBuffer* absorb() const { return absorb_.get(); }

 private:
  struct PacRoot;  // persistent root object (defined in .cc)

  PacTree() = default;

  bool Init(const PacTreeOptions& opts);
  // Crash recovery (recovery.cc); runs in Init before services start.
  void Recover();
  void RecoverSplit(SmoLogEntry* e);
  void RecoverMerge(SmoLogEntry* e);

  // Finds the data node owning |key|: search-layer floor + sibling fix-up.
  // Returns the node with a validated read token.
  DataNode* FindDataNode(const Key& key, uint64_t* version) const;

  // The sibling fix-up half of FindDataNode: walks from |start| (the trie
  // floor, possibly stale; data-layer head when null) to the node owning
  // |key|, returning it with a validated read token. MultiGet resolves trie
  // floors for a whole batch first, then enters here per node group.
  DataNode* JumpWalk(DataNode* start, const Key& key, uint64_t* version) const;

  // Data-layer-only point lookup / scan (no absorb consult); the bodies of
  // the public ops when absorb_writes is off.
  Status LookupBase(const Key& key, uint64_t* value) const;
  size_t ScanBase(const Key& start, size_t count,
                  std::vector<std::pair<Key, uint64_t>>* out) const;

  // AbsorbSink: presence checks against the data layer, and the batched
  // drain application (absorb_apply.cc) -- per target node, one lock
  // acquisition, coalesced slot flushes, a single bitmap publish.
  Status AbsorbBaseLookup(const Key& key, uint64_t* value) const override {
    return LookupBase(key, value);
  }
  // Returns false when a data-node allocation failed mid-batch (a split could
  // not complete): a durable prefix of the batch may already be applied,
  // which is safe -- re-application converges -- so the absorb buffer keeps
  // the ops staged and retries the batch later.
  bool AbsorbApply(const AbsorbOp* ops, size_t n) override;

  // Splits |node| (write-locked, full). Returns the node that now owns |key|
  // (still write-locked; the other half is unlocked). Returns nullptr when
  // the new node's allocation failed: the logged SMO entry is cancelled, the
  // data and search layers are untouched, and |node| is STILL write-locked --
  // the caller unlocks it and fails its op with kFull.
  DataNode* SplitLocked(DataNode* node, const Key& key);

  // Attempts to merge |right| into |node| (both ranges adjacent). |node| is
  // write-locked; takes/releases |right|'s lock internally.
  void TryMergeLocked(DataNode* node);

  void MaintainPermutation(DataNode* node);  // !selective_persistence mode

  PacTreeOptions opts_;
  std::unique_ptr<PmemHeap> search_heap_;
  std::unique_ptr<PmemHeap> data_heap_;
  std::unique_ptr<PmemHeap> log_heap_;
  std::unique_ptr<PdlArt> art_;
  PacRoot* root_ = nullptr;
  // SMO logging + replay: rings, writer-slot routing, backpressure, and the
  // per-NUMA updater services.
  std::unique_ptr<SmoUpdater> updater_;
  // Write absorption (null when absorb_writes is off): per-NUMA shards with
  // persistent op-log rings and drain services.
  std::unique_ptr<AbsorbBuffer> absorb_;
  // Absorb op-log entries replayed by this incarnation's recovery.
  uint64_t absorb_replayed_ = 0;
  // Recovery's temp-buffer absorb replay could not fully apply some ring
  // (search/data pool exhausted even after retries). Init gives the live
  // absorb buffer one more replay attempt; if that also fails, the tree
  // stays permanently degraded for this incarnation and the un-zeroed rings
  // carry the acked ops to the next recovery.
  bool absorb_replay_incomplete_ = false;
  // Read-only degraded mode (see Degraded()). Set by watermark policy or an
  // incomplete absorb replay; cleared only by the resume watermark.
  std::atomic<bool> degraded_{false};
  // Degraded mode forced by incomplete replay is permanent: the resume
  // watermark must not clear it (the stranded ops have no durable home).
  bool degraded_pinned_ = false;
  // "<name>/pool/pressure" service (async mode only; null otherwise).
  BackgroundService* pressure_service_ = nullptr;
  // False when Init attached a pre-existing persistent search layer: trie
  // updates already applied (and persisted as "applied" in the rings) before
  // a crash may have been evicted without reaching NVM, leaving permanent but
  // jump-walk-tolerated staleness (paper section 5.9). Only when this is true
  // can CheckInvariants demand an exact trie<->data-layer mirror.
  bool search_layer_exact_ = true;

  mutable std::atomic<uint64_t> stat_splits_{0};
  mutable std::atomic<uint64_t> stat_merges_{0};
  mutable std::atomic<uint64_t> stat_hops_[kHopHistBuckets] = {};
  mutable std::atomic<uint64_t> stat_retries_{0};
  mutable std::atomic<uint64_t> stat_epoch_enters_{0};
  mutable std::atomic<uint64_t> stat_node_locks_{0};
  mutable std::atomic<uint64_t> stat_multiget_batches_{0};
  mutable std::atomic<uint64_t> stat_multiget_keys_{0};
  mutable std::atomic<uint64_t> stat_multiget_node_groups_{0};
  mutable std::atomic<uint64_t> stat_multiget_group_retries_{0};
  mutable std::atomic<uint64_t> stat_multiscan_batches_{0};
  mutable std::atomic<uint64_t> stat_write_rejects_{0};
  mutable std::atomic<uint64_t> stat_split_alloc_failures_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_PACTREE_PACTREE_H_
