#include "src/pactree/pactree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "src/common/compiler.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/pmem/registry.h"
#include "src/runtime/thread_context.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"
#include "src/sync/generation.h"

namespace pactree {

namespace {
constexpr uint64_t kPacMagic = 0x3145455254434150ULL;  // "PACTREE1"
constexpr int kMergeThreshold = 24;  // merge when combined live keys fit easily
constexpr uint64_t kPermBuilding = 1ULL << 63;
}  // namespace

// Persistent root object, placed in the data heap's primary root area.
struct PacTree::PacRoot {
  // NOLINT: must fit the pool root area (checked below).
  uint64_t magic;
  uint64_t head_raw;
  uint64_t pad[6];
  uint64_t log_raws[kMaxWriterSlots];
  ArtTreeRoot art;
};

// ---------------------------------------------------------------------------
// Open / create / recover
// ---------------------------------------------------------------------------

std::unique_ptr<PacTree> PacTree::Open(const PacTreeOptions& opts) {
  auto tree = std::unique_ptr<PacTree>(new PacTree());
  if (!tree->Init(opts)) {
    return nullptr;
  }
  return tree;
}

void PacTree::Destroy(const std::string& name) {
  PmemHeap::Destroy(name + ".search");
  PmemHeap::Destroy(name + ".data");
  PmemHeap::Destroy(name + ".log");
}

bool PacTree::Init(const PacTreeOptions& opts) {
  static_assert(sizeof(PacRoot) <= kRootAreaSize, "root area too small");
  opts_ = opts;
  PmemHeapOptions h;
  h.pool_size = opts.pool_size;
  h.single_pool = !opts.per_numa_pools;
  h.defer_log_recovery = true;  // recovered below, once all three heaps map

  h.pool_id_base = opts.pool_id_base;
  h.dram = opts.dram_search_layer;
  search_heap_ = PmemHeap::OpenOrCreate(opts.name + ".search", h);
  h.pool_id_base = static_cast<uint16_t>(opts.pool_id_base + 8);
  h.dram = false;
  bool created = false;
  data_heap_ = PmemHeap::OpenOrCreate(opts.name + ".data", h, &created);
  h.pool_id_base = static_cast<uint16_t>(opts.pool_id_base + 16);
  h.pool_size = std::max<size_t>(opts.pool_size / 8, 16ULL << 20);
  log_heap_ = PmemHeap::OpenOrCreate(opts.name + ".log", h);
  if (search_heap_ == nullptr || data_heap_ == nullptr || log_heap_ == nullptr) {
    return false;
  }

  // Alloc-log recovery was deferred above: a pending split's malloc-to dest
  // lives in the log heap while the block lives in the data heap, so no heap's
  // logs can be recovered until all three are mapped.
  search_heap_->RecoverPendingLogs();
  data_heap_->RecoverPendingLogs();
  log_heap_->RecoverPendingLogs();

  // Void every lock word persisted by the previous incarnation (including
  // locks captured held by a crash): advance all pools past the global
  // generation and publish it.
  AdvanceGenerations({search_heap_.get(), data_heap_.get(), log_heap_.get()});

  root_ = data_heap_->Root<PacRoot>();

  if (root_->magic != kPacMagic || created) {
    // ---- fresh index ----
    std::memset(static_cast<void*>(root_), 0, sizeof(PacRoot));
    PersistFence(root_, sizeof(PacRoot));
    PPtr<void> head = data_heap_->Alloc(sizeof(DataNode));
    if (head.IsNull()) {
      return false;
    }
    auto* head_node = static_cast<DataNode*>(head.get());
    head_node->anchor = Key::Min();
    head_node->perm_version = kPermBuilding;  // never matches a lock version
    PersistFence(head_node, sizeof(DataNode));
    root_->head_raw = head.raw;
    PersistFence(&root_->head_raw, sizeof(uint64_t));
    for (size_t i = 0; i < kMaxWriterSlots; ++i) {
      PPtr<void> log = log_heap_->AllocTo(ToPPtr(&root_->log_raws[i]), sizeof(SmoLog));
      if (log.IsNull()) {
        return false;
      }
      PersistFence(log.get(), 128);  // zeroed head/tail
    }
    art_ = std::make_unique<PdlArt>(search_heap_.get(), &root_->art);
    art_->Insert(Key::Min(), root_->head_raw);
    root_->magic = kPacMagic;
    PersistFence(&root_->magic, sizeof(uint64_t));
  } else {
    // ---- existing index ----
    if (opts.dram_search_layer) {
      // The volatile search layer died with the previous process: rebuild it
      // from the data layer (this is exactly the restart cost the paper's
      // DRAM-internal-node designs pay; Figure 12 "DRAM SL").
      std::memset(static_cast<void*>(&root_->art), 0, sizeof(ArtTreeRoot));
    }
    art_ = std::make_unique<PdlArt>(search_heap_.get(), &root_->art);
  }

  for (size_t i = 0; i < kMaxWriterSlots; ++i) {
    logs_[i] = PPtr<SmoLog>(root_->log_raws[i]).get();
  }

  Recover();

  if (opts_.async_search_update) {
    stop_updater_.store(false, std::memory_order_release);
    updater_ = std::thread([this] { UpdaterLoop(); });
  }
  return true;
}

PacTree::~PacTree() {
  if (updater_.joinable()) {
    DrainSmoLogs();
    stop_updater_.store(true, std::memory_order_release);
    updater_.join();
  } else {
    DrainSmoLogs();
  }
  for (int i = 0; i < 8; ++i) {
    EpochManager::Instance().TryAdvanceAndReclaim();
  }
}

void PacTree::Recover() {
  // Gather every pending SMO entry across the per-writer logs.
  // Scan entire rings (not just [head, tail]): the persisted tail may lag a
  // published entry that a crash cut off.
  std::vector<SmoLogEntry*> pending;
  uint64_t max_seq = 0;
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = logs_[s];
    if (log == nullptr) {
      continue;
    }
    for (size_t i = 0; i < kSmoLogEntries; ++i) {
      SmoLogEntry& e = log->entries[i];
      if (e.type == 0) {
        continue;
      }
      if (e.checksum != SmoEntryChecksum(e)) {
        // A split crash between AllocTo's attach and the checksum re-seal
        // leaves the entry validating only with other_raw treated as 0. The
        // data layer is untouched at that point, so release the fresh node
        // and forget the split.
        SmoLogEntry probe = e;
        probe.other_raw = 0;
        if (e.type == kSmoTypeSplit && e.other_raw != 0 &&
            e.checksum == SmoEntryChecksum(probe)) {
          PmemFree(PPtr<void>(e.other_raw));
        }
        // Anything else is a torn publish: part of the entry committed next
        // to a recycled slot's stale payload. The entry's fence precedes all
        // data mutation, so discarding it means the SMO never started.
        std::memset(static_cast<void*>(&e), 0, sizeof(e));
        PersistFence(&e, sizeof(e));
        continue;
      }
      max_seq = std::max(max_seq, e.seq);
      if (!e.applied) {
        pending.push_back(&e);
      }
    }
  }
  smo_seq_.store(max_seq + 1, std::memory_order_relaxed);
  // In-flight entries (seq not yet published) are the last op of their writer
  // and replay after every published one.
  auto order = [](const SmoLogEntry* e) { return e->seq == 0 ? ~uint64_t{0} : e->seq; };
  std::sort(pending.begin(), pending.end(),
            [&](const SmoLogEntry* a, const SmoLogEntry* b) { return order(a) < order(b); });

  for (SmoLogEntry* e : pending) {
    if (e->type == kSmoTypeSplit) {
      RecoverSplit(e);
    } else {
      RecoverMerge(e);
    }
  }

  if (opts_.dram_search_layer) {
    // Rebuild the volatile trie from the (now consistent) data layer.
    DataNode* node = PPtr<DataNode>(root_->head_raw).get();
    while (node != nullptr) {
      if (!node->IsDeleted()) {
        art_->Insert(node->anchor, ToPPtr(node).Cast<void>().raw);
      }
      node = node->Next();
    }
  }

  art_->Recover();

  // All pending work has been rolled forward; reset the rings.
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = logs_[s];
    if (log == nullptr) {
      continue;
    }
    std::memset(static_cast<void*>(log->entries), 0, sizeof(log->entries));
    log->head = 0;
    log->tail = 0;
    PersistFence(log, sizeof(SmoLog));
  }
}

void PacTree::RecoverSplit(SmoLogEntry* e) {
  DataNode* node = PPtr<DataNode>(e->node_raw).get();
  uint64_t new_raw = e->other_raw;
  if (new_raw == 0) {
    // Crash before the new node was even allocated: the split never became
    // visible and the triggering insert was never acknowledged. Drop it.
    return;
  }
  DataNode* new_node = PPtr<DataNode>(new_raw).get();
  // Is the new node linked into the list? Walk forward from the split node.
  bool linked = false;
  DataNode* cur = node;
  for (int hops = 0; hops < 1 << 20 && cur != nullptr; ++hops) {
    uint64_t nxt = cur->NextRaw();
    if (nxt == new_raw) {
      linked = true;
      break;
    }
    cur = PPtr<DataNode>(nxt).get();
    if (cur == nullptr || cur->anchor > e->anchor) {
      break;
    }
  }
  if (!linked) {
    // Not visible: release the allocated node and forget the split.
    PmemFree(PPtr<void>(new_raw));
    return;
  }
  // Visible: roll forward. (1) the predecessor must not keep keys that moved.
  DataNode* pred = PPtr<DataNode>(new_node->PrevRaw()).get();
  if (pred != nullptr) {
    uint64_t bm = pred->Bitmap();
    uint64_t trimmed = bm;
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      if (pred->keys[i] >= e->anchor) {
        trimmed &= ~(1ULL << i);
      }
      bm &= bm - 1;
    }
    if (trimmed != pred->Bitmap()) {
      pred->PublishBitmap(trimmed);
    }
  }
  // (2) the right neighbor's back-pointer.
  DataNode* right = PPtr<DataNode>(new_node->NextRaw()).get();
  if (right != nullptr && right->PrevRaw() != new_raw) {
    right->StorePrevPersist(new_raw);
  }
  // (3) the search layer.
  art_->Insert(e->anchor, new_raw);
  e->applied = 1;
  PersistFence(&e->applied, sizeof(e->applied));
}

void PacTree::RecoverMerge(SmoLogEntry* e) {
  DataNode* node = PPtr<DataNode>(e->node_raw).get();
  DataNode* right = PPtr<DataNode>(e->other_raw).get();
  if (right == nullptr) {
    return;
  }
  if (!right->IsDeleted()) {
    // Copy phase may be incomplete: move over every live key the survivor does
    // not already hold, then mark the victim deleted.
    uint64_t bm = right->Bitmap();
    uint64_t add = 0;
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      bm &= bm - 1;
      const Key& k = right->keys[i];
      if (node->FindKey(k, k.Fingerprint()) >= 0) {
        continue;
      }
      uint64_t live = node->Bitmap() | add;
      if (live == ~0ULL) {
        break;  // no room: abandon the merge roll-forward (victim stays live)
      }
      int free = __builtin_ctzll(~live);
      node->FillSlot(free, k, k.Fingerprint(), right->values[i]);
      add |= 1ULL << free;
    }
    if ((right->Bitmap() != 0 && add == 0 && node->Bitmap() == ~0ULL)) {
      return;  // could not complete; leave both nodes live (list still valid)
    }
    if (add != 0) {
      node->PublishBitmap(node->Bitmap() | add);
    }
    std::atomic_ref<uint32_t>(right->deleted).store(1, std::memory_order_release);
    PersistFence(&right->deleted, sizeof(right->deleted));
  }
  // Unlink.
  if (node->NextRaw() == e->other_raw) {
    node->StoreNextPersist(right->NextRaw());
  }
  DataNode* r2 = PPtr<DataNode>(right->NextRaw()).get();
  if (r2 != nullptr && r2->PrevRaw() == e->other_raw) {
    r2->StorePrevPersist(e->node_raw);
  }
  // Search layer + physical free (recovery is single-threaded: free directly).
  art_->Remove(e->anchor);
  e->applied = 1;
  PersistFence(&e->applied, sizeof(e->applied));
  PmemFree(PPtr<void>(e->other_raw));
}

// ---------------------------------------------------------------------------
// Writer-slot / SMO-log plumbing
// ---------------------------------------------------------------------------

uint32_t PacTree::WriterSlot() {
  // Per-(thread, tree) slot assignment via the thread's context. Stored as
  // slot+1 so the zero-initialized word means "unassigned"; reduced modulo
  // kMaxWriterSlots on every read because a stale word surviving this tree's
  // address being recycled must still map to a valid slot.
  uint64_t& w = ThreadContext::Current().InstanceWord(this);
  if (w == 0) {
    w = 1 + next_writer_slot_.fetch_add(1, std::memory_order_relaxed) %
                kMaxWriterSlots;
  }
  return static_cast<uint32_t>((w - 1) % kMaxWriterSlots);
}

SmoLog* PacTree::WriterLog() { return logs_[WriterSlot()]; }

SmoLogEntry* PacTree::LogSmo(uint32_t type, uint64_t node_raw, uint64_t other_raw,
                             const Key& anchor, SmoLog** log_out) {
  SmoLog* log = WriterLog();
  // Writer slots can be shared by more threads than kMaxWriterSlots; appends
  // to one ring are serialized by a tiny per-ring ticket embedded in tail's
  // top bit-free range (in practice thread counts here are far below 64, so
  // contention is nil; correctness is preserved by the CAS).
  uint64_t pos;
  while (true) {
    pos = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
    uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
    if (pos - head >= kSmoLogEntries) {
      // Ring full: wait for the updater to drain (bounded by SMO rate).
      CpuRelax();
      std::this_thread::yield();
      continue;
    }
    if (std::atomic_ref<uint64_t>(log->tail).compare_exchange_weak(
            pos, pos + 1, std::memory_order_acq_rel)) {
      break;
    }
  }
  SmoLogEntry& e = log->At(pos);
  // Published by PublishSmo once the data-layer work is durable. Atomic: the
  // updater's ring scan may read seq of a just-claimed slot concurrently (it
  // sees 0 either way and skips, but the access itself must be a non-racy).
  std::atomic_ref<uint64_t>(e.seq).store(0, std::memory_order_relaxed);
  e.applied = 0;
  e.node_raw = node_raw;
  e.other_raw = other_raw;
  e.anchor = anchor;
  std::atomic_ref<uint32_t>(e.type).store(type, std::memory_order_release);
  // Checksum last (it covers type): the whole entry becomes durable in one
  // fence, and any torn subset of its lines fails validation at recovery.
  e.checksum = SmoEntryChecksum(e);
  PersistFence(&e, sizeof(e));
  PersistFence(&log->tail, sizeof(log->tail));
  if (log_out != nullptr) {
    *log_out = log;
  }
  return &e;
}

void PacTree::PublishSmo(SmoLogEntry* e) {
  // The updater (and any same-anchor successor SMO) may act on this entry only
  // once the data layer reflects it; the seq store is that publication point.
  uint64_t seq = smo_seq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(e->seq).store(seq, std::memory_order_release);
  PersistFence(&e->seq, sizeof(e->seq));
}

// ---------------------------------------------------------------------------
// Search-layer synchronization (the updater)
// ---------------------------------------------------------------------------

void PacTree::ApplySmo(SmoLogEntry* e) {
  if (e->type == kSmoTypeSplit) {
    art_->Insert(e->anchor, e->other_raw);
    e->applied = 1;
    PersistFence(&e->applied, sizeof(e->applied));
    stat_applied_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Merge: remove the anchor, then free the victim after two epochs (§5.6).
  art_->Remove(e->anchor);
  e->applied = 1;
  PersistFence(&e->applied, sizeof(e->applied));
  stat_applied_.fetch_add(1, std::memory_order_relaxed);
  EpochManager::Instance().Retire(PPtr<void>(e->other_raw));
}

size_t PacTree::UpdaterPass() {
  struct Item {
    uint64_t seq;
    SmoLogEntry* e;
  };
  std::vector<Item> items;
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = logs_[s];
    uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
    uint64_t tail = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
    for (uint64_t i = head; i < tail && i < head + kSmoLogEntries; ++i) {
      SmoLogEntry& e = log->At(i);
      uint64_t seq = std::atomic_ref<uint64_t>(e.seq).load(std::memory_order_acquire);
      if (seq == 0) {
        break;  // writer claimed but not yet published; later entries wait
      }
      if (!e.applied) {
        items.push_back({seq, &e});
      }
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.seq < b.seq; });
  size_t applied = 0;
  for (const Item& it : items) {
    // Same-anchor SMOs must apply in causal order even if the ring snapshot
    // missed an earlier entry: a merge waits until its anchor is present (its
    // split applied); a split re-creating an anchor waits until the prior
    // merge removed it. Different anchors commute.
    uint64_t probe;
    bool present = art_->Lookup(it.e->anchor, &probe) == Status::kOk;
    if (it.e->type == kSmoTypeMerge ? !present : present) {
      break;  // defer the rest of this pass to preserve seq order
    }
    ApplySmo(it.e);
    applied++;
  }
  AdvanceLogHeads();
  return applied;
}

void PacTree::AdvanceLogHeads() {
  // Advance ring heads past contiguously-applied entries.
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = logs_[s];
    uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
    uint64_t tail = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
    uint64_t new_head = head;
    while (new_head < tail) {
      SmoLogEntry& e = log->At(new_head);
      if (std::atomic_ref<uint64_t>(e.seq).load(std::memory_order_acquire) == 0 ||
          !e.applied) {
        break;
      }
      e.seq = 0;
      e.applied = 0;
      e.node_raw = 0;
      e.other_raw = 0;
      e.checksum = 0;
      std::atomic_ref<uint32_t>(e.type).store(0, std::memory_order_release);
      // Everything a recycled slot could leak into a torn future entry --
      // payload and checksum -- is durably cleared in one line flush.
      PersistRange(&e.seq, 5 * sizeof(uint64_t));
      new_head++;
    }
    if (new_head != head) {
      Fence();
      std::atomic_ref<uint64_t>(log->head).store(new_head, std::memory_order_release);
      PersistFence(&log->head, sizeof(log->head));
    }
  }
}

void PacTree::UpdaterLoop() {
  // Exponential idle backoff: a hot updater drains SMOs within ~100 us, but an
  // idle one must not keep waking up and preempting worker threads (pure-read
  // phases would otherwise pay a context switch per wakeup).
  uint64_t idle_us = 100;
  while (!stop_updater_.load(std::memory_order_acquire)) {
    size_t n = UpdaterPass();
    EpochManager::Instance().TryAdvanceAndReclaim();
    if (n == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(idle_us));
      idle_us = std::min<uint64_t>(idle_us * 2, 20000);
    } else {
      idle_us = 100;
    }
  }
}

bool PacTree::SmoLogsDrained() const {
  for (size_t s = 0; s < kMaxWriterSlots; ++s) {
    SmoLog* log = logs_[s];
    if (log == nullptr) {
      continue;
    }
    if (std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire) !=
        std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire)) {
      return false;
    }
    for (size_t i = 0; i < kSmoLogEntries; ++i) {
      if (log->entries[i].type != 0) {
        return false;
      }
    }
  }
  return true;
}

void PacTree::DrainSmoLogs() {
  while (true) {
    bool empty = true;
    for (size_t s = 0; s < kMaxWriterSlots && empty; ++s) {
      SmoLog* log = logs_[s];
      if (log == nullptr) {
        continue;
      }
      uint64_t head = std::atomic_ref<uint64_t>(log->head).load(std::memory_order_acquire);
      uint64_t tail = std::atomic_ref<uint64_t>(log->tail).load(std::memory_order_acquire);
      if (head != tail) {
        empty = false;
      }
    }
    if (empty) {
      return;
    }
    if (!updater_.joinable()) {
      UpdaterPass();
      EpochManager::Instance().TryAdvanceAndReclaim();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

// ---------------------------------------------------------------------------
// Data-layer navigation (jump-node fix-up, §5.3)
// ---------------------------------------------------------------------------

DataNode* PacTree::FindDataNode(const Key& key, uint64_t* version) const {
  Key found;
  uint64_t raw = 0;
  DataNode* node;
  Status fs = art_->LookupFloor(key, &found, &raw);
  if (fs == Status::kOk && raw != 0) {
    node = PPtr<DataNode>(raw).get();
  } else {
    node = PPtr<DataNode>(root_->head_raw).get();
  }
  uint32_t hops = 0;
  while (true) {
    uint64_t v = node->lock.ReadLock();
    AnnotateNvmRead(node, 256);  // metadata + anchor + fingerprints
    if (node->IsDeleted()) {
      DataNode* prev = node->Prev();
      if (!node->lock.Validate(v) || prev == nullptr) {
        continue;
      }
      node = prev;
      hops++;
      continue;
    }
    if (key < node->anchor) {
      DataNode* prev = node->Prev();
      if (!node->lock.Validate(v) || prev == nullptr) {
        continue;
      }
      node = prev;
      hops++;
      continue;
    }
    DataNode* next = node->Next();
    if (next != nullptr && next->anchor <= key) {
      if (!node->lock.Validate(v)) {
        continue;
      }
      node = next;
      hops++;
      continue;
    }
    if (!node->lock.Validate(v)) {
      continue;
    }
    stat_hops_[hops < 3 ? hops : 3].fetch_add(1, std::memory_order_relaxed);
    *version = v;
    return node;
  }
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

Status PacTree::Lookup(const Key& key, uint64_t* value) const {
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    int slot = node->FindKey(key, fingerprint);
    uint64_t v = 0;
    if (slot >= 0) {
      AnnotateNvmRead(&node->values[slot], sizeof(uint64_t));
      v = std::atomic_ref<uint64_t>(node->values[slot]).load(std::memory_order_acquire);
    }
    if (!node->lock.Validate(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (slot < 0) {
      return Status::kNotFound;
    }
    if (value != nullptr) {
      *value = v;
    }
    return Status::kOk;
  }
}

void PacTree::MaintainPermutation(DataNode* node) {
  // "-Selective persistence" mode: keep the permutation array durable on every
  // write, paying flushes + an extra cache-line invalidation (Figure 12).
  uint8_t order[kDataNodeEntries];
  int n = node->ComputeSortedOrder(order);
  std::memcpy(node->perm, order, n);
  node->perm_version = kPermBuilding;  // durable copy is for recovery, not reads
  PersistFence(node->perm, kDataNodeEntries);
}

Status PacTree::Insert(const Key& key, uint64_t value) {
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    int existing = node->FindKey(key, fingerprint);
    int free = node->FindFreeSlot();
    if (free < 0) {
      node = SplitLocked(node, key);
      existing = node->FindKey(key, fingerprint);
      free = node->FindFreeSlot();
      assert(free >= 0 && "a freshly split node has free slots");
    }
    node->FillSlot(free, key, fingerprint, value);
    uint64_t bm = node->Bitmap() | (1ULL << free);
    if (existing >= 0) {
      bm &= ~(1ULL << existing);  // old and new flipped in one atomic store
    }
    node->PublishBitmap(bm);
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    node->lock.WriteUnlock();
    return existing >= 0 ? Status::kExists : Status::kOk;
  }
}

Status PacTree::Update(const Key& key, uint64_t value) {
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    int existing = node->FindKey(key, fingerprint);
    if (existing < 0) {
      if (!node->lock.Validate(version)) {
        stat_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return Status::kNotFound;
    }
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    existing = node->FindKey(key, fingerprint);
    if (existing < 0) {
      node->lock.WriteUnlock();
      return Status::kNotFound;
    }
    int free = node->FindFreeSlot();
    if (free < 0) {
      node = SplitLocked(node, key);
      // The key was present under the lock, so it lives in the half that now
      // owns it; a freshly split node always has free slots.
      existing = node->FindKey(key, fingerprint);
      free = node->FindFreeSlot();
    }
    if (existing < 0 || free < 0) {
      node->lock.WriteUnlock();
      return Status::kNotFound;  // defensive: invariant violated
    }
    node->FillSlot(free, key, fingerprint, value);
    uint64_t bm = (node->Bitmap() | (1ULL << free)) & ~(1ULL << existing);
    node->PublishBitmap(bm);
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    node->lock.WriteUnlock();
    return Status::kOk;
  }
}

Status PacTree::Remove(const Key& key) {
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    int slot = node->FindKey(key, fingerprint);
    if (slot < 0) {
      if (!node->lock.Validate(version)) {
        stat_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return Status::kNotFound;
    }
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    slot = node->FindKey(key, fingerprint);
    if (slot < 0) {
      node->lock.WriteUnlock();
      return Status::kNotFound;
    }
    node->PublishBitmap(node->Bitmap() & ~(1ULL << slot));
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    TryMergeLocked(node);
    node->lock.WriteUnlock();
    return Status::kOk;
  }
}

// ---------------------------------------------------------------------------
// Structural modifications
// ---------------------------------------------------------------------------

DataNode* PacTree::SplitLocked(DataNode* node, const Key& key) {
  uint8_t order[kDataNodeEntries];
  int n = node->ComputeSortedOrder(order);
  assert(n == static_cast<int>(kDataNodeEntries));
  const Key split_anchor = node->keys[order[n / 2]];

  // (1) Log the split; the new node is allocated straight into the log entry's
  // placeholder, so a crash can never leak it (§5.6).
  SmoLogEntry* e =
      LogSmo(kSmoTypeSplit, ToPPtr(node).Cast<void>().raw, 0, split_anchor, nullptr);
  PPtr<void> new_block = data_heap_->AllocTo(ToPPtr(&e->other_raw), sizeof(DataNode));
  assert(!new_block.IsNull() && "data pool exhausted");
  // AllocTo filled other_raw after the entry's checksum was computed; re-seal
  // before any data-layer mutation. A crash inside this window leaves a
  // checksum that validates only with other_raw treated as 0 -- recovery
  // detects exactly that state, frees the fresh node, and drops the split.
  e->checksum = SmoEntryChecksum(*e);
  PersistFence(&e->checksum, sizeof(e->checksum));
  auto* new_node = static_cast<DataNode*>(new_block.get());

  // (2) Build the new (right) node, born write-locked.
  new_node->lock.WriteLock();  // unreachable: uncontended
  new_node->anchor = split_anchor;
  new_node->deleted = 0;
  new_node->perm_version = kPermBuilding;
  new_node->next_raw = node->NextRaw();
  new_node->prev_raw = ToPPtr(node).Cast<void>().raw;
  uint64_t moved_bits = 0;
  uint64_t new_bitmap = 0;
  for (int i = n / 2; i < n; ++i) {
    int src = order[i];
    int dst = i - n / 2;
    new_node->keys[dst] = node->keys[src];
    new_node->values[dst] = node->values[src];
    new_node->fp[dst] = node->fp[src];
    moved_bits |= 1ULL << src;
    new_bitmap |= 1ULL << dst;
  }
  new_node->bitmap = new_bitmap;
  PersistFence(new_node, sizeof(DataNode));

  // (3) Publish in the paper's order: link right of splitting node, trim the
  // splitting node's bitmap, fix the right neighbor's back pointer.
  DataNode* old_right = node->Next();
  node->StoreNextPersist(new_block.raw);
  node->PublishBitmap(node->Bitmap() & ~moved_bits);
  if (old_right != nullptr) {
    old_right->StorePrevPersist(new_block.raw);
  }
  stat_splits_.fetch_add(1, std::memory_order_relaxed);
  PublishSmo(e);

  // (4) Search layer: asynchronously via the updater, or inline in sync mode
  // (the SL update sits on the critical path -- what Figure 12 ablates).
  if (!opts_.async_search_update) {
    ApplySmo(e);
    AdvanceLogHeads();
  }

  // Hand back the half that owns |key|, still locked; unlock the other half.
  if (key < split_anchor) {
    new_node->lock.WriteUnlock();
    return node;
  }
  node->lock.WriteUnlock();
  return new_node;
}

void PacTree::TryMergeLocked(DataNode* node) {
  // Prefer absorbing the right sibling; fall back to being absorbed by the
  // left one (sequential deletes would otherwise never find a small right
  // neighbor). All sibling locks are try-only, so lock ordering cannot
  // deadlock. |survivor| keeps its anchor; |victim| is logically deleted.
  DataNode* survivor = nullptr;
  DataNode* victim = nullptr;
  DataNode* right = node->Next();
  if (right != nullptr && right->lock.TryWriteLock()) {
    if (!right->IsDeleted() &&
        node->CountLive() + right->CountLive() < kMergeThreshold) {
      survivor = node;
      victim = right;
    } else {
      right->lock.WriteUnlock();
    }
  }
  if (survivor == nullptr) {
    DataNode* left = node->Prev();
    if (left == nullptr || !left->lock.TryWriteLock()) {
      return;
    }
    if (left->IsDeleted() || left->NextRaw() != ToPPtr(node).Cast<void>().raw ||
        left->CountLive() + node->CountLive() >= kMergeThreshold) {
      left->lock.WriteUnlock();
      return;
    }
    survivor = left;
    victim = node;
  }
  uint64_t survivor_raw = ToPPtr(survivor).Cast<void>().raw;
  uint64_t victim_raw = ToPPtr(victim).Cast<void>().raw;
  SmoLogEntry* e =
      LogSmo(kSmoTypeMerge, survivor_raw, victim_raw, victim->anchor, nullptr);

  // Move the victim's live pairs into the survivor.
  uint64_t bm = victim->Bitmap();
  uint64_t add = 0;
  while (bm != 0) {
    int i = __builtin_ctzll(bm);
    bm &= bm - 1;
    uint64_t live = survivor->Bitmap() | add;
    int free = __builtin_ctzll(~live);
    survivor->FillSlot(free, victim->keys[i], victim->fp[i], victim->values[i]);
    add |= 1ULL << free;
  }
  survivor->PublishBitmap(survivor->Bitmap() | add);

  // Logically delete the victim, then unlink it.
  std::atomic_ref<uint32_t>(victim->deleted).store(1, std::memory_order_release);
  PersistFence(&victim->deleted, sizeof(victim->deleted));
  DataNode* r2 = victim->Next();
  survivor->StoreNextPersist(victim->NextRaw());
  if (r2 != nullptr) {
    r2->StorePrevPersist(survivor_raw);
  }
  // Unlock whichever sibling we locked here; the caller's node stays locked.
  DataNode* locked_sibling = survivor == node ? victim : survivor;
  locked_sibling->lock.WriteUnlock();
  stat_merges_.fetch_add(1, std::memory_order_relaxed);
  PublishSmo(e);

  if (!opts_.async_search_update) {
    ApplySmo(e);
    AdvanceLogHeads();
  }
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

size_t PacTree::Scan(const Key& start, size_t count,
                     std::vector<std::pair<Key, uint64_t>>* out) const {
  EpochGuard guard;
  out->clear();
  Key cursor = start;  // smallest key still wanted
  uint64_t version;
  DataNode* node = FindDataNode(cursor, &version);

  std::pair<Key, uint64_t> batch[kDataNodeEntries];
  while (node != nullptr && out->size() < count) {
    size_t batch_n;
    uint64_t next_raw;
    while (true) {
      batch_n = 0;
      AnnotateNvmRead(node, sizeof(DataNode));  // sequential whole-node read (GA5)
      uint8_t order[kDataNodeEntries];
      int n;
      // Permutation-array fast path (§5.4): reuse the cached sorted order when
      // its version matches; otherwise rebuild and try to publish it. The
      // kPermBuilding bit makes publishers mutually exclusive; the array is
      // never persisted (selective persistence, §4.4).
      uint64_t pv = std::atomic_ref<uint64_t>(node->perm_version)
                        .load(std::memory_order_acquire);
      if (pv == version) {
        n = node->CountLive();
        std::memcpy(order, node->perm, kDataNodeEntries);
      } else {
        n = node->ComputeSortedOrder(order);
        if ((pv & kPermBuilding) == 0 &&
            std::atomic_ref<uint64_t>(node->perm_version)
                .compare_exchange_strong(pv, kPermBuilding, std::memory_order_acq_rel)) {
          std::memcpy(node->perm, order, kDataNodeEntries);
          std::atomic_ref<uint64_t>(node->perm_version)
              .store(node->lock.Validate(version) ? version : 0,
                     std::memory_order_release);
        }
      }
      for (int i = 0; i < n && i < static_cast<int>(kDataNodeEntries); ++i) {
        const Key& k = node->keys[order[i]];
        if (k < cursor) {
          continue;
        }
        batch[batch_n++] = {k, node->values[order[i]]};
      }
      next_raw = node->NextRaw();
      if (node->lock.Validate(version)) {
        break;
      }
      // Concurrent writer (or merge) hit this node: re-locate the cursor.
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      node = FindDataNode(cursor, &version);
    }
    for (size_t i = 0; i < batch_n && out->size() < count; ++i) {
      out->push_back(batch[i]);
    }
    if (next_raw == 0) {
      break;
    }
    node = PPtr<DataNode>(next_raw).get();
    cursor = node->anchor;  // anchors are immutable
    version = node->lock.ReadLock();
    if (node->IsDeleted()) {
      node = FindDataNode(cursor, &version);
    }
  }
  return out->size();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t PacTree::Size() const {
  uint64_t total = 0;
  DataNode* node = PPtr<DataNode>(root_->head_raw).get();
  while (node != nullptr) {
    if (!node->IsDeleted()) {
      total += static_cast<uint64_t>(node->CountLive());
    }
    node = node->Next();
  }
  return total;
}

bool PacTree::CheckInvariants(std::string* why) const {
  DataNode* node = PPtr<DataNode>(root_->head_raw).get();
  if (node == nullptr) {
    *why = "missing head node";
    return false;
  }
  if (node->anchor != Key::Min()) {
    *why = "head anchor is not Min";
    return false;
  }
  uint64_t prev_raw = 0;
  while (node != nullptr) {
    if (node->IsDeleted()) {
      *why = "deleted node still linked";
      return false;
    }
    if (node->PrevRaw() != prev_raw) {
      *why = "prev pointer mismatch at anchor " + node->anchor.ToString();
      return false;
    }
    DataNode* next = node->Next();
    Key upper = next != nullptr ? next->anchor : Key::Max();
    if (next != nullptr && !(node->anchor < next->anchor)) {
      *why = "anchors not strictly increasing";
      return false;
    }
    uint64_t bm = node->Bitmap();
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      bm &= bm - 1;
      if (node->keys[i] < node->anchor ||
          (next != nullptr && node->keys[i] >= upper)) {
        *why = "key outside node range";
        return false;
      }
      if (node->fp[i] != node->keys[i].Fingerprint()) {
        *why = "stale fingerprint";
        return false;
      }
    }
    prev_raw = ToPPtr(node).Cast<void>().raw;
    node = next;
  }
  return true;
}

PacTreeStats PacTree::Stats() const {
  PacTreeStats s;
  s.splits = stat_splits_.load(std::memory_order_relaxed);
  s.merges = stat_merges_.load(std::memory_order_relaxed);
  s.smo_applied = stat_applied_.load(std::memory_order_relaxed);
  for (int i = 0; i < 4; ++i) {
    s.jump_hops[i] = stat_hops_[i].load(std::memory_order_relaxed);
  }
  s.retries = stat_retries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pactree
