#include "src/pactree/pactree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "src/common/compiler.h"
#include "src/common/env.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/pactree/pac_root.h"
#include "src/pmem/registry.h"
#include "src/runtime/maintenance.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"
#include "src/sync/generation.h"

namespace pactree {

namespace {
constexpr uint64_t kPacMagic = 0x3145455254434150ULL;  // "PACTREE1"
constexpr int kMergeThreshold = 24;  // merge when combined live keys fit easily
constexpr uint64_t kPermBuilding = 1ULL << 63;

// Updater-service count: explicit option, else PAC_UPDATERS, else one per
// logical NUMA node (§4.3's per-NUMA replay sharding).
uint32_t ResolveUpdaterCount(const PacTreeOptions& opts) {
  uint64_t n = opts.updater_count;
  if (n == 0) {
    n = EnvU64("PAC_UPDATERS", 0);
  }
  if (n == 0) {
    n = std::max<uint32_t>(1, GlobalNvmConfig().numa_nodes);
  }
  return static_cast<uint32_t>(std::min<uint64_t>(n, kMaxWriterSlots));
}

// Absorb shard count: explicit option, else one per logical NUMA node.
uint32_t ResolveAbsorbShards(const PacTreeOptions& opts) {
  uint64_t n = opts.absorb_shards;
  if (n == 0) {
    n = std::max<uint32_t>(1, GlobalNvmConfig().numa_nodes);
  }
  return static_cast<uint32_t>(std::min<uint64_t>(n, kAbsorbMaxShards));
}
}  // namespace

// ---------------------------------------------------------------------------
// Open / create / recover
// ---------------------------------------------------------------------------

std::unique_ptr<PacTree> PacTree::Open(const PacTreeOptions& opts) {
  auto tree = std::unique_ptr<PacTree>(new PacTree());
  if (!tree->Init(opts)) {
    return nullptr;
  }
  return tree;
}

void PacTree::Destroy(const std::string& name) {
  PmemHeap::Destroy(name + ".search");
  PmemHeap::Destroy(name + ".data");
  PmemHeap::Destroy(name + ".log");
}

bool PacTree::Init(const PacTreeOptions& opts) {
  static_assert(sizeof(PacRoot) <= kRootAreaSize, "root area too small");
  opts_ = opts;
  if (!opts_.absorb_writes && EnvU64("PAC_ABSORB", 0) != 0) {
    opts_.absorb_writes = true;  // bench --absorb routes through the env var
  }
  // Pressure watermark overrides, in percent (PAC_PRESSURE_HARD=95 -> 0.95).
  if (uint64_t v = EnvU64("PAC_PRESSURE_SOFT", 0); v != 0) {
    opts_.pressure_soft = static_cast<double>(v) / 100.0;
  }
  if (uint64_t v = EnvU64("PAC_PRESSURE_HARD", 0); v != 0) {
    opts_.pressure_hard = static_cast<double>(v) / 100.0;
  }
  if (uint64_t v = EnvU64("PAC_PRESSURE_RESUME", 0); v != 0) {
    opts_.pressure_resume = static_cast<double>(v) / 100.0;
  }
  PmemHeapOptions h;
  h.pool_size = opts.pool_size;
  h.single_pool = !opts.per_numa_pools;
  h.defer_log_recovery = true;  // recovered below, once all three heaps map

  h.pool_id_base = opts.pool_id_base;
  h.dram = opts.dram_search_layer;
  search_heap_ = PmemHeap::OpenOrCreate(opts.name + ".search", h);
  h.pool_id_base = static_cast<uint16_t>(opts.pool_id_base + 8);
  h.dram = false;
  bool created = false;
  data_heap_ = PmemHeap::OpenOrCreate(opts.name + ".data", h, &created);
  h.pool_id_base = static_cast<uint16_t>(opts.pool_id_base + 16);
  h.pool_size = std::max<size_t>(opts.pool_size / 8, 16ULL << 20);
  log_heap_ = PmemHeap::OpenOrCreate(opts.name + ".log", h);
  if (search_heap_ == nullptr || data_heap_ == nullptr || log_heap_ == nullptr) {
    return false;
  }

  // Alloc-log recovery was deferred above: a pending split's malloc-to dest
  // lives in the log heap while the block lives in the data heap, so no heap's
  // logs can be recovered until all three are mapped.
  search_heap_->RecoverPendingLogs();
  data_heap_->RecoverPendingLogs();
  log_heap_->RecoverPendingLogs();

  // Void every lock word persisted by the previous incarnation (including
  // locks captured held by a crash): advance all pools past the global
  // generation and publish it.
  AdvanceGenerations({search_heap_.get(), data_heap_.get(), log_heap_.get()});

  root_ = data_heap_->Root<PacRoot>();

  if (root_->magic != kPacMagic || created) {
    // ---- fresh index ----
    std::memset(static_cast<void*>(root_), 0, sizeof(PacRoot));
    PersistFence(root_, sizeof(PacRoot));
    PPtr<void> head = data_heap_->Alloc(sizeof(DataNode));
    if (head.IsNull()) {
      return false;
    }
    auto* head_node = static_cast<DataNode*>(head.get());
    head_node->anchor = Key::Min();
    head_node->perm_version = kPermBuilding;  // never matches a lock version
    PersistFence(head_node, sizeof(DataNode));
    root_->head_raw = head.raw;
    PersistFence(&root_->head_raw, sizeof(uint64_t));
    for (size_t i = 0; i < kMaxWriterSlots; ++i) {
      PPtr<void> log = log_heap_->AllocTo(ToPPtr(&root_->log_raws[i]), sizeof(SmoLog));
      if (log.IsNull()) {
        return false;
      }
      PersistFence(log.get(), 128);  // zeroed head/tail
    }
    art_ = std::make_unique<PdlArt>(search_heap_.get(), &root_->art);
    art_->Insert(Key::Min(), root_->head_raw);
    root_->magic = kPacMagic;
    PersistFence(&root_->magic, sizeof(uint64_t));
  } else {
    // ---- existing index ----
    if (opts.dram_search_layer) {
      // The volatile search layer died with the previous process: rebuild it
      // from the data layer (this is exactly the restart cost the paper's
      // DRAM-internal-node designs pay; Figure 12 "DRAM SL").
      std::memset(static_cast<void*>(&root_->art), 0, sizeof(ArtTreeRoot));
    } else {
      // Attaching the surviving persistent search layer: pre-crash trie
      // updates marked applied in the rings may have been evicted before
      // reaching NVM, so the trie can permanently lack (or misdirect) some
      // anchors. Jump-walk tolerates this (section 5.9); the strict mirror
      // check in CheckInvariants must not demand exactness here.
      search_layer_exact_ = false;
    }
    art_ = std::make_unique<PdlArt>(search_heap_.get(), &root_->art);
  }

  SmoUpdater::Options u;
  u.name = opts_.name;
  u.shards = ResolveUpdaterCount(opts_);
  u.ring_capacity = opts_.smo_ring_capacity;
  u.async = opts_.async_search_update;
  updater_ = std::make_unique<SmoUpdater>(u, art_.get());
  for (size_t i = 0; i < kMaxWriterSlots; ++i) {
    updater_->AttachLog(i, PPtr<SmoLog>(root_->log_raws[i]).get());
  }

  // Recovery replays the rings single-threaded, then resets them; only after
  // that do the per-shard updater services (and the shared epoch-reclaim
  // service) come up. This includes replaying every non-null absorb op-log
  // ring, independent of this incarnation's absorb configuration.
  Recover();

  if (opts_.absorb_writes) {
    AbsorbOptions ao;
    ao.name = opts_.name;
    ao.shards = ResolveAbsorbShards(opts_);
    ao.ring_capacity = opts_.absorb_ring_capacity;
    ao.drain_batch = opts_.absorb_drain_batch;
    ao.async = opts_.async_search_update;
    absorb_ = std::make_unique<AbsorbBuffer>(ao, static_cast<AbsorbSink*>(this));
    for (uint32_t i = 0; i < absorb_->shards(); ++i) {
      if (root_->absorb_raws[i] == 0) {
        PPtr<void> ring = log_heap_->AllocTo(ToPPtr(&root_->absorb_raws[i]),
                                             sizeof(AbsorbLogRing));
        if (ring.IsNull()) {
          return false;
        }
        // The allocator zeroes DRAM but does not persist it: stale media bytes
        // from a previously freed block could otherwise resurrect entries with
        // valid checksums on recovery. Make the zeroed ring durable once.
        PersistFence(ring.get(), sizeof(AbsorbLogRing));
      }
      absorb_->AttachRing(i, PPtr<AbsorbLogRing>(root_->absorb_raws[i]).get());
    }
    if (absorb_replay_incomplete_) {
      // Recovery's temp-buffer replay left at least one ring un-zeroed after
      // its apply attempts failed (pool exhaustion). Give the live buffer one
      // more try before services start: rings the temp replay did reset are
      // empty and contribute nothing, so nothing double-applies. On failure
      // the live shards freeze -- appends are refused, staging serves reads --
      // and the rings keep the acked ops durable for the next recovery.
      bool complete = true;
      absorb_replayed_ += absorb_->ReplayAndReset(&complete);
      updater_->Drain();  // replayed batches may have logged SMOs
      if (complete) {
        absorb_replay_incomplete_ = false;
      }
    }
    absorb_->StartServices();
  }
  if (absorb_replay_incomplete_) {
    // Acked-but-unapplied ops survive only in the un-zeroed rings; new writes
    // must not be admitted against state that cannot become durable (with
    // absorb off there is not even a staging view of the stranded ops).
    // Pin read-only degraded mode for the life of this incarnation.
    degraded_.store(true, std::memory_order_relaxed);
    degraded_pinned_ = true;
  }

  if (opts_.async_search_update) {
    updater_->StartServices();
    EpochReclaimService::Acquire();
    // Pool-pressure watchdog: periodically re-evaluates the watermark policy
    // (PollPressure) so the tree degrades -- and resumes -- even when no
    // writer happens to hit an allocation failure. Sync-mode trees rely on
    // the inline PollPressure calls from the failure paths instead.
    BackgroundService::Options po;
    po.name = opts_.name + "/pool/pressure";
    po.idle_min_us = 1000;
    po.idle_max_us = 50000;
    pressure_service_ =
        MaintenanceRegistry::Instance().Register(std::move(po), [this] {
          PollPressure();
          return size_t{0};  // pure polling: stay on the idle-backoff cadence
        });
  }
  return true;
}

PacTree::~PacTree() {
  if (updater_ == nullptr) {
    return;  // Init failed before the updater came up (e.g. bad pool file)
  }
  if (pressure_service_ != nullptr) {
    MaintenanceRegistry::Instance().Unregister(pressure_service_);
    pressure_service_ = nullptr;
  }
  // Quiesce front-to-back: absorb drains first (its batches log SMOs), then
  // the SMO logs, while all services are still live (CV barriers; inline
  // replay in sync mode). Only then tear the services down and release the
  // shared epoch-reclaim service.
  if (absorb_ != nullptr) {
    DrainAbsorb();
    absorb_->StopServices();
  }
  DrainSmoLogs();
  updater_->StopServices();
  if (opts_.async_search_update) {
    EpochReclaimService::Release();
  }
  for (int i = 0; i < 8; ++i) {
    EpochManager::Instance().TryAdvanceAndReclaim();
  }
}

void PacTree::DrainSmoLogs() { updater_->Drain(); }

bool PacTree::SmoLogsDrained() const { return updater_->Drained(); }

void PacTree::DrainAbsorb() {
  if (absorb_ != nullptr) {
    absorb_->Drain();
  }
}

bool PacTree::AbsorbDrained() const {
  return absorb_ == nullptr || absorb_->Drained();
}

// ---------------------------------------------------------------------------
// Data-layer navigation (jump-node fix-up, §5.3)
// ---------------------------------------------------------------------------

DataNode* PacTree::FindDataNode(const Key& key, uint64_t* version) const {
  Key found;
  uint64_t raw = 0;
  DataNode* node = nullptr;
  Status fs = art_->LookupFloor(key, &found, &raw);
  if (fs == Status::kOk && raw != 0) {
    node = PPtr<DataNode>(raw).get();
  }
  return JumpWalk(node, key, version);
}

DataNode* PacTree::JumpWalk(DataNode* start, const Key& key, uint64_t* version) const {
  DataNode* node = start != nullptr ? start : PPtr<DataNode>(root_->head_raw).get();
  uint32_t hops = 0;
  while (true) {
    uint64_t v = node->lock.ReadLock();
    stat_node_locks_.fetch_add(1, std::memory_order_relaxed);
    AnnotateNvmRead(node, 256);  // metadata + anchor + fingerprints
    if (node->IsDeleted()) {
      DataNode* prev = node->Prev();
      if (!node->lock.Validate(v) || prev == nullptr) {
        continue;
      }
      node = prev;
      hops++;
      continue;
    }
    if (key < node->anchor) {
      DataNode* prev = node->Prev();
      if (!node->lock.Validate(v) || prev == nullptr) {
        continue;
      }
      node = prev;
      hops++;
      continue;
    }
    DataNode* next = node->Next();
    if (next != nullptr && next->anchor <= key) {
      if (!node->lock.Validate(v)) {
        continue;
      }
      node = next;
      hops++;
      continue;
    }
    if (!node->lock.Validate(v)) {
      continue;
    }
    int bucket = hops < kHopHistBuckets - 1 ? static_cast<int>(hops) : kHopHistBuckets - 1;
    stat_hops_[bucket].fetch_add(1, std::memory_order_relaxed);
    *version = v;
    return node;
  }
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

Status PacTree::Lookup(const Key& key, uint64_t* value) const {
  if (absorb_ != nullptr) {
    // The owning shard's staging area holds the freshest acked write for this
    // key (if any); a staged tombstone masks the data layer.
    uint64_t v = 0;
    switch (absorb_->Lookup(key, &v)) {
      case AbsorbBuffer::Hit::kValue:
        if (value != nullptr) {
          *value = v;
        }
        return Status::kOk;
      case AbsorbBuffer::Hit::kTombstone:
        return Status::kNotFound;
      case AbsorbBuffer::Hit::kMiss:
        break;
    }
  }
  return LookupBase(key, value);
}

Status PacTree::LookupBase(const Key& key, uint64_t* value) const {
  stat_epoch_enters_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    int slot = node->FindKey(key, fingerprint);
    uint64_t v = 0;
    if (slot >= 0) {
      AnnotateNvmRead(&node->values[slot], sizeof(uint64_t));
      v = std::atomic_ref<uint64_t>(node->values[slot]).load(std::memory_order_acquire);
    }
    if (!node->lock.Validate(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (slot < 0) {
      return Status::kNotFound;
    }
    if (value != nullptr) {
      *value = v;
    }
    return Status::kOk;
  }
}

void PacTree::MaintainPermutation(DataNode* node) {
  // "-Selective persistence" mode: keep the permutation array durable on every
  // write, paying flushes + an extra cache-line invalidation (Figure 12).
  uint8_t order[kDataNodeEntries];
  int n = node->ComputeSortedOrder(order);
  std::memcpy(node->perm, order, n);
  node->perm_version = kPermBuilding;  // durable copy is for recovery, not reads
  PersistFence(node->perm, kDataNodeEntries);
}

Status PacTree::Insert(const Key& key, uint64_t value) {
  if (degraded_.load(std::memory_order_relaxed)) {
    stat_write_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::kFull;  // read-only degraded mode: fail fast, no side effects
  }
  if (absorb_ != nullptr) {
    return absorb_->Insert(key, value);
  }
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    int existing = node->FindKey(key, fingerprint);
    int free = node->FindFreeSlot();
    if (free < 0) {
      DataNode* owner = SplitLocked(node, key);
      if (owner == nullptr) {
        // Data pool exhausted: the split unwound completely (log entry
        // cancelled, both layers untouched); release the lock and fail.
        node->lock.WriteUnlock();
        return Status::kFull;
      }
      node = owner;
      existing = node->FindKey(key, fingerprint);
      free = node->FindFreeSlot();
      assert(free >= 0 && "a freshly split node has free slots");
    }
    node->FillSlot(free, key, fingerprint, value);
    uint64_t bm = node->Bitmap() | (1ULL << free);
    if (existing >= 0) {
      bm &= ~(1ULL << existing);  // old and new flipped in one atomic store
    }
    node->PublishBitmap(bm);
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    node->lock.WriteUnlock();
    return existing >= 0 ? Status::kExists : Status::kOk;
  }
}

Status PacTree::Update(const Key& key, uint64_t value) {
  if (degraded_.load(std::memory_order_relaxed)) {
    stat_write_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::kFull;  // read-only degraded mode: fail fast, no side effects
  }
  if (absorb_ != nullptr) {
    return absorb_->Update(key, value);
  }
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    int existing = node->FindKey(key, fingerprint);
    if (existing < 0) {
      if (!node->lock.Validate(version)) {
        stat_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return Status::kNotFound;
    }
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    existing = node->FindKey(key, fingerprint);
    if (existing < 0) {
      node->lock.WriteUnlock();
      return Status::kNotFound;
    }
    int free = node->FindFreeSlot();
    if (free < 0) {
      DataNode* owner = SplitLocked(node, key);
      if (owner == nullptr) {
        node->lock.WriteUnlock();
        return Status::kFull;  // split unwound; see Insert
      }
      node = owner;
      // The key was present under the lock, so it lives in the half that now
      // owns it; a freshly split node always has free slots.
      existing = node->FindKey(key, fingerprint);
      free = node->FindFreeSlot();
    }
    if (existing < 0 || free < 0) {
      node->lock.WriteUnlock();
      return Status::kNotFound;  // defensive: invariant violated
    }
    node->FillSlot(free, key, fingerprint, value);
    uint64_t bm = (node->Bitmap() | (1ULL << free)) & ~(1ULL << existing);
    node->PublishBitmap(bm);
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    node->lock.WriteUnlock();
    return Status::kOk;
  }
}

Status PacTree::Remove(const Key& key) {
  // Deliberately NOT gated on degraded mode: deletes allocate nothing (merges
  // log SMOs into pre-allocated rings) and are the caller's only way to shrink
  // the tree back below the resume watermark. Frozen absorb shards still
  // refuse the append (kFull) via WaitRingSpace.
  if (absorb_ != nullptr) {
    return absorb_->Remove(key);
  }
  EpochGuard guard;
  uint8_t fingerprint = key.Fingerprint();
  while (true) {
    uint64_t version;
    DataNode* node = FindDataNode(key, &version);
    int slot = node->FindKey(key, fingerprint);
    if (slot < 0) {
      if (!node->lock.Validate(version)) {
        stat_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return Status::kNotFound;
    }
    if (!node->lock.TryUpgrade(version)) {
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    slot = node->FindKey(key, fingerprint);
    if (slot < 0) {
      node->lock.WriteUnlock();
      return Status::kNotFound;
    }
    node->PublishBitmap(node->Bitmap() & ~(1ULL << slot));
    if (!opts_.selective_persistence) {
      MaintainPermutation(node);
    }
    TryMergeLocked(node);
    node->lock.WriteUnlock();
    return Status::kOk;
  }
}

// ---------------------------------------------------------------------------
// Structural modifications
// ---------------------------------------------------------------------------

DataNode* PacTree::SplitLocked(DataNode* node, const Key& key) {
  uint8_t order[kDataNodeEntries];
  int n = node->ComputeSortedOrder(order);
  assert(n == static_cast<int>(kDataNodeEntries));
  const Key split_anchor = node->keys[order[n / 2]];

  // (1) Log the split; the new node is allocated straight into the log entry's
  // placeholder, so a crash can never leak it (§5.6).
  SmoLogEntry* e =
      updater_->Log(kSmoTypeSplit, ToPPtr(node).Cast<void>().raw, 0, split_anchor);
  PPtr<void> new_block = data_heap_->AllocTo(ToPPtr(&e->other_raw), sizeof(DataNode));
  if (new_block.IsNull()) {
    // Data pool exhausted. Unwind: durably cancel the log entry (nothing was
    // published and no layer was touched, so recovery and live replay both
    // see a clean ring) and report failure with |node| still write-locked --
    // the caller releases it and fails its op with kFull.
    updater_->Cancel(e);
    stat_split_alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    PollPressure();
    return nullptr;
  }
  // AllocTo filled other_raw after the entry's checksum was computed; re-seal
  // before any data-layer mutation. A crash inside this window leaves a
  // checksum that validates only with other_raw treated as 0 -- recovery
  // detects exactly that state, frees the fresh node, and drops the split.
  e->checksum = SmoEntryChecksum(*e);
  PersistFence(&e->checksum, sizeof(e->checksum));
  auto* new_node = static_cast<DataNode*>(new_block.get());

  // (2) Build the new (right) node, born write-locked.
  new_node->lock.WriteLock();  // unreachable: uncontended
  new_node->anchor = split_anchor;
  new_node->deleted = 0;
  new_node->perm_version = kPermBuilding;
  new_node->next_raw = node->NextRaw();
  new_node->prev_raw = ToPPtr(node).Cast<void>().raw;
  uint64_t moved_bits = 0;
  uint64_t new_bitmap = 0;
  for (int i = n / 2; i < n; ++i) {
    int src = order[i];
    int dst = i - n / 2;
    new_node->keys[dst] = node->keys[src];
    new_node->values[dst] = node->values[src];
    new_node->fp[dst] = node->fp[src];
    moved_bits |= 1ULL << src;
    new_bitmap |= 1ULL << dst;
  }
  new_node->bitmap = new_bitmap;
  PersistFence(new_node, sizeof(DataNode));

  // (3) Publish in the paper's order: link right of splitting node, trim the
  // splitting node's bitmap, fix the right neighbor's back pointer.
  DataNode* old_right = node->Next();
  node->StoreNextPersist(new_block.raw);
  node->PublishBitmap(node->Bitmap() & ~moved_bits);
  if (old_right != nullptr) {
    old_right->StorePrevPersist(new_block.raw);
  }
  stat_splits_.fetch_add(1, std::memory_order_relaxed);
  updater_->Publish(e);

  // (4) Search layer: asynchronously via the updater services, or inline in
  // sync mode (the SL update sits on the critical path -- what Figure 12
  // ablates).
  if (!opts_.async_search_update) {
    updater_->ApplySync(e);
  }

  // Hand back the half that owns |key|, still locked; unlock the other half.
  if (key < split_anchor) {
    new_node->lock.WriteUnlock();
    return node;
  }
  node->lock.WriteUnlock();
  return new_node;
}

void PacTree::TryMergeLocked(DataNode* node) {
  // Prefer absorbing the right sibling; fall back to being absorbed by the
  // left one (sequential deletes would otherwise never find a small right
  // neighbor). All sibling locks are try-only, so lock ordering cannot
  // deadlock. |survivor| keeps its anchor; |victim| is logically deleted.
  DataNode* survivor = nullptr;
  DataNode* victim = nullptr;
  DataNode* right = node->Next();
  if (right != nullptr && right->lock.TryWriteLock()) {
    if (!right->IsDeleted() &&
        node->CountLive() + right->CountLive() < kMergeThreshold) {
      survivor = node;
      victim = right;
    } else {
      right->lock.WriteUnlock();
    }
  }
  if (survivor == nullptr) {
    DataNode* left = node->Prev();
    if (left == nullptr || !left->lock.TryWriteLock()) {
      return;
    }
    if (left->IsDeleted() || left->NextRaw() != ToPPtr(node).Cast<void>().raw ||
        left->CountLive() + node->CountLive() >= kMergeThreshold) {
      left->lock.WriteUnlock();
      return;
    }
    survivor = left;
    victim = node;
  }
  uint64_t survivor_raw = ToPPtr(survivor).Cast<void>().raw;
  uint64_t victim_raw = ToPPtr(victim).Cast<void>().raw;
  SmoLogEntry* e =
      updater_->Log(kSmoTypeMerge, survivor_raw, victim_raw, victim->anchor);

  // Move the victim's live pairs into the survivor.
  uint64_t bm = victim->Bitmap();
  uint64_t add = 0;
  while (bm != 0) {
    int i = __builtin_ctzll(bm);
    bm &= bm - 1;
    uint64_t live = survivor->Bitmap() | add;
    int free = __builtin_ctzll(~live);
    survivor->FillSlot(free, victim->keys[i], victim->fp[i], victim->values[i]);
    add |= 1ULL << free;
  }
  survivor->PublishBitmap(survivor->Bitmap() | add);

  // Logically delete the victim, then unlink it.
  std::atomic_ref<uint32_t>(victim->deleted).store(1, std::memory_order_release);
  PersistFence(&victim->deleted, sizeof(victim->deleted));
  DataNode* r2 = victim->Next();
  survivor->StoreNextPersist(victim->NextRaw());
  if (r2 != nullptr) {
    r2->StorePrevPersist(survivor_raw);
  }
  stat_merges_.fetch_add(1, std::memory_order_relaxed);
  // Publish (and, in sync mode, apply) while both nodes are still locked:
  // once the survivor's lock drops, a racing split of the survivor can
  // re-create this victim's anchor, and its SMO must publish -- and apply --
  // strictly after this merge's. Publishing after the unlock would let that
  // split draw a smaller seq than the causally-earlier merge, inverting the
  // per-anchor order that replay (and recovery) rely on.
  updater_->Publish(e);
  if (!opts_.async_search_update) {
    updater_->ApplySync(e);
  }

  // Unlock whichever sibling we locked here; the caller's node stays locked.
  DataNode* locked_sibling = survivor == node ? victim : survivor;
  locked_sibling->lock.WriteUnlock();
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

size_t PacTree::Scan(const Key& start, size_t count,
                     std::vector<std::pair<Key, uint64_t>>* out) const {
  if (absorb_ == nullptr) {
    return ScanBase(start, count, out);
  }
  // Merge the absorb shards' staged ops with the data layer. Snapshot the
  // staging first: an op that drains between the snapshot and the base scan
  // then appears in both streams, and the equal-key dedupe below (staging
  // wins) still emits it exactly once. Over-fetch the base scan by the staged
  // tombstone count so each tombstone can mask one base key and the merge can
  // still produce |count| results.
  std::map<Key, AbsorbPending> pending;
  absorb_->CollectFrom(start, &pending);
  size_t tomb = 0;
  for (const auto& [k, p] : pending) {
    (void)k;
    if (p.tombstone) {
      ++tomb;
    }
  }
  std::vector<std::pair<Key, uint64_t>> base;
  ScanBase(start, count + tomb, &base);
  // When the base scan filled its window there may be further data-layer keys
  // just past base.back(); a staged-only key beyond that point cannot be
  // emitted without skipping them.
  const bool have_limit = base.size() == count + tomb && !base.empty();
  const Key limit = have_limit ? base.back().first : Key();

  out->clear();
  auto it = pending.begin();
  size_t bi = 0;
  while (out->size() < count && (it != pending.end() || bi < base.size())) {
    bool take_pending;
    if (it == pending.end()) {
      take_pending = false;
    } else if (bi >= base.size()) {
      take_pending = true;
    } else {
      take_pending = !(base[bi].first < it->first);
    }
    if (take_pending) {
      if (bi < base.size() && !(it->first < base[bi].first)) {
        ++bi;  // same key surfaced by the base scan: the staged op supersedes
      } else if (bi >= base.size() && have_limit && limit < it->first) {
        break;  // staged-only key beyond the truncated base window
      }
      if (!it->second.tombstone) {
        out->push_back({it->first, it->second.value});
      }
      ++it;
    } else {
      out->push_back(base[bi]);
      ++bi;
    }
  }
  return out->size();
}

size_t PacTree::ScanBase(const Key& start, size_t count,
                         std::vector<std::pair<Key, uint64_t>>* out) const {
  stat_epoch_enters_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard;
  out->clear();
  Key cursor = start;  // smallest key still wanted
  uint64_t version;
  DataNode* node = FindDataNode(cursor, &version);

  std::pair<Key, uint64_t> batch[kDataNodeEntries];
  while (node != nullptr && out->size() < count) {
    size_t batch_n;
    uint64_t next_raw;
    while (true) {
      batch_n = 0;
      AnnotateNvmRead(node, sizeof(DataNode));  // sequential whole-node read (GA5)
      uint8_t order[kDataNodeEntries];
      int n;
      // Permutation-array fast path (§5.4): reuse the cached sorted order when
      // its version matches; otherwise rebuild and try to publish it. The
      // kPermBuilding bit makes publishers mutually exclusive; the array is
      // never persisted (selective persistence, §4.4).
      uint64_t pv = std::atomic_ref<uint64_t>(node->perm_version)
                        .load(std::memory_order_acquire);
      if (pv == version) {
        n = node->CountLive();
        std::memcpy(order, node->perm, kDataNodeEntries);
      } else {
        n = node->ComputeSortedOrder(order);
        if ((pv & kPermBuilding) == 0 &&
            std::atomic_ref<uint64_t>(node->perm_version)
                .compare_exchange_strong(pv, kPermBuilding, std::memory_order_acq_rel)) {
          std::memcpy(node->perm, order, kDataNodeEntries);
          std::atomic_ref<uint64_t>(node->perm_version)
              .store(node->lock.Validate(version) ? version : 0,
                     std::memory_order_release);
        }
      }
      for (int i = 0; i < n && i < static_cast<int>(kDataNodeEntries); ++i) {
        const Key& k = node->keys[order[i]];
        if (k < cursor) {
          continue;
        }
        batch[batch_n++] = {k, node->values[order[i]]};
      }
      next_raw = node->NextRaw();
      if (node->lock.Validate(version)) {
        break;
      }
      // Concurrent writer (or merge) hit this node: re-locate the cursor.
      stat_retries_.fetch_add(1, std::memory_order_relaxed);
      node = FindDataNode(cursor, &version);
    }
    if (next_raw != 0) {
      // One node ahead: start the sibling's metadata/anchor/fingerprint line
      // fetching while this node's batch drains into |out|, so the sequential
      // whole-node read above finds its first XPLine warm.
      PPtr<DataNode>(next_raw).get()->PrefetchProbe();
    }
    for (size_t i = 0; i < batch_n && out->size() < count; ++i) {
      out->push_back(batch[i]);
    }
    if (next_raw == 0) {
      break;
    }
    node = PPtr<DataNode>(next_raw).get();
    cursor = node->anchor;  // anchors are immutable
    version = node->lock.ReadLock();
    stat_node_locks_.fetch_add(1, std::memory_order_relaxed);
    if (node->IsDeleted()) {
      node = FindDataNode(cursor, &version);
    }
  }
  return out->size();
}

// ---------------------------------------------------------------------------
// Pool pressure / degraded mode
// ---------------------------------------------------------------------------

void PacTree::PollPressure() {
  // The signal is the WORST sub-pool over the data and log heaps: one
  // exhausted sub-pool stalls every writer routed to it regardless of how
  // much room its siblings have. The search heap is excluded -- trie growth
  // failures are absorbed by pending SMO entries and jump walks, not by
  // refusing index writes.
  const double used =
      std::max(data_heap_->MaxUsedFraction(), log_heap_->MaxUsedFraction());
  if (used >= opts_.pressure_soft && absorb_ != nullptr) {
    // Emergency drain kick: flushing staged writes while chunks remain beats
    // stranding them in rings past the hard watermark.
    for (BackgroundService* s : absorb_->services()) {
      s->Notify();
    }
  }
  if (degraded_pinned_) {
    return;  // incomplete-replay degradation never clears (see Init)
  }
  const bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && used >= opts_.pressure_hard) {
    degraded_.store(true, std::memory_order_relaxed);
  } else if (degraded && used <= opts_.pressure_resume) {
    degraded_.store(false, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t PacTree::Size() const {
  uint64_t total = 0;
  DataNode* node = PPtr<DataNode>(root_->head_raw).get();
  while (node != nullptr) {
    if (!node->IsDeleted()) {
      total += static_cast<uint64_t>(node->CountLive());
    }
    node = node->Next();
  }
  if (absorb_ != nullptr) {
    // Staged ops not yet drained: an upsert of a key absent from the data
    // layer adds one, a tombstone of a present key removes one.
    std::map<Key, AbsorbPending> pending;
    absorb_->CollectFrom(Key::Min(), &pending);
    for (const auto& [k, p] : pending) {
      const bool in_base = LookupBase(k, nullptr) == Status::kOk;
      if (p.tombstone && in_base) {
        --total;
      } else if (!p.tombstone && !in_base) {
        ++total;
      }
    }
  }
  return total;
}

bool PacTree::CheckInvariants(std::string* why) const {
  DataNode* node = PPtr<DataNode>(root_->head_raw).get();
  if (node == nullptr) {
    *why = "missing head node";
    return false;
  }
  if (node->anchor != Key::Min()) {
    *why = "head anchor is not Min";
    return false;
  }
  // With the SMO logs drained, the search layer must exactly mirror the data
  // layer: every live node's anchor maps to that node. (While entries are
  // pending the trie may legitimately be stale -- the jump-node walk covers
  // it -- so the check only runs on a drained tree, and only when this
  // incarnation did not re-attach a persistent search layer whose pre-crash
  // updates may have been evicted: section 5.9 staleness is permanent there.)
  const bool check_search_layer = search_layer_exact_ && updater_->Drained();
  uint64_t prev_raw = 0;
  while (node != nullptr) {
    if (check_search_layer) {
      uint64_t mapped = 0;
      if (art_->Lookup(node->anchor, &mapped) != Status::kOk) {
        *why = "drained search layer is missing anchor " + node->anchor.ToString();
        return false;
      }
      if (mapped != ToPPtr(node).Cast<void>().raw) {
        *why = "drained search layer maps anchor " + node->anchor.ToString() +
               " to the wrong node";
        return false;
      }
    }
    if (node->IsDeleted()) {
      *why = "deleted node still linked";
      return false;
    }
    if (node->PrevRaw() != prev_raw) {
      *why = "prev pointer mismatch at anchor " + node->anchor.ToString();
      return false;
    }
    DataNode* next = node->Next();
    Key upper = next != nullptr ? next->anchor : Key::Max();
    if (next != nullptr && !(node->anchor < next->anchor)) {
      *why = "anchors not strictly increasing";
      return false;
    }
    uint64_t bm = node->Bitmap();
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      bm &= bm - 1;
      if (node->keys[i] < node->anchor ||
          (next != nullptr && node->keys[i] >= upper)) {
        *why = "key outside node range";
        return false;
      }
      if (node->fp[i] != node->keys[i].Fingerprint()) {
        *why = "stale fingerprint";
        return false;
      }
    }
    prev_raw = ToPPtr(node).Cast<void>().raw;
    node = next;
  }
  return true;
}

PacTreeStats PacTree::Stats() const {
  PacTreeStats s;
  s.splits = stat_splits_.load(std::memory_order_relaxed);
  s.merges = stat_merges_.load(std::memory_order_relaxed);
  s.smo_applied = updater_->applied();
  s.smo_ring_full_waits = updater_->ring_full_waits();
  for (int i = 0; i < kHopHistBuckets; ++i) {
    s.hop_hist[i] = stat_hops_[i].load(std::memory_order_relaxed);
  }
  // Legacy 4-bucket view (0, 1, 2, >=3) derived from the full histogram.
  for (int i = 0; i < kHopHistBuckets; ++i) {
    s.jump_hops[i < 3 ? i : 3] += s.hop_hist[i];
  }
  s.retries = stat_retries_.load(std::memory_order_relaxed);
  s.epoch_enters = stat_epoch_enters_.load(std::memory_order_relaxed);
  s.node_locks = stat_node_locks_.load(std::memory_order_relaxed);
  s.multiget_batches = stat_multiget_batches_.load(std::memory_order_relaxed);
  s.multiget_keys = stat_multiget_keys_.load(std::memory_order_relaxed);
  s.multiget_node_groups = stat_multiget_node_groups_.load(std::memory_order_relaxed);
  s.multiget_group_retries = stat_multiget_group_retries_.load(std::memory_order_relaxed);
  s.multiscan_batches = stat_multiscan_batches_.load(std::memory_order_relaxed);
  if (absorb_ != nullptr) {
    s.absorb = absorb_->Stats();
  }
  // Recovery replays through a temporary buffer (see recovery.cc) whose
  // counters die with it; the replay count is carried here.
  s.absorb.replayed += absorb_replayed_;
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.write_rejects = stat_write_rejects_.load(std::memory_order_relaxed);
  s.split_alloc_failures =
      stat_split_alloc_failures_.load(std::memory_order_relaxed);
  s.used_fraction =
      std::max(data_heap_->MaxUsedFraction(), log_heap_->MaxUsedFraction());
  s.alloc_failures = search_heap_->AllocFailures() +
                     data_heap_->AllocFailures() + log_heap_->AllocFailures();
  return s;
}

}  // namespace pactree
