// Zipfian key-index generator (Gray et al., "Quickly generating billion-record
// synthetic databases", SIGMOD'94) -- the same generator YCSB uses.
#ifndef PACTREE_SRC_WORKLOAD_ZIPF_H_
#define PACTREE_SRC_WORKLOAD_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "src/common/random.h"

namespace pactree {

class ZipfGenerator {
 public:
  // Distribution over [0, n). theta in (0, 1); YCSB default 0.99.
  ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Rng& rng) const {
    double u = rng.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    uint64_t v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace pactree

#endif  // PACTREE_SRC_WORKLOAD_ZIPF_H_
