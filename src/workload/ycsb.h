// YCSB-style workload driver (paper §6 "Workload configuration"):
//   Load A : 100% insert of the record set
//   A      : 50% lookup / 50% update        (update replaced by upsert, §6)
//   B      : 95% lookup /  5% update
//   C      : 100% lookup
//   E      : 95% scan (1-100 records) / 5% insert
// Uniform or Zipfian key choice, integer or 23-byte string keys, configurable
// thread count, 10% latency sampling (paper §6.4), NVM media-traffic deltas.
#ifndef PACTREE_SRC_WORKLOAD_YCSB_H_
#define PACTREE_SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>

#include "src/common/histogram.h"
#include "src/index/range_index.h"
#include "src/nvm/stats.h"
#include "src/workload/keyset.h"

namespace pactree {

enum class YcsbKind { kLoadA, kA, kB, kC, kE, kAInsert /* 50% lookup + 50% insert (Fig. 15) */ };

const char* YcsbKindName(YcsbKind kind);

struct YcsbSpec {
  YcsbKind kind = YcsbKind::kC;
  uint64_t record_count = 1'000'000;  // loaded before the run phase
  uint64_t op_count = 1'000'000;
  uint32_t threads = 4;
  bool string_keys = false;
  bool zipfian = true;
  double zipf_theta = 0.99;
  uint64_t scan_max_len = 100;  // E: uniform 1..max
  double sample_rate = 0.1;     // latency sampling probability
  uint64_t seed = 42;
  // >1: each worker buffers lookups into MultiGet batches and scans into
  // MultiScan batches of this size (bench --batch=N). Buffers flush when
  // full, before any write op (preserving per-thread read-your-writes), and
  // at the end of the run. Latency samples then cover a whole batch divided
  // by its size (mean per-op latency), so percentiles flatten vs per-key
  // sampling; throughput and media counters stay directly comparable.
  uint64_t read_batch = 1;
};

struct YcsbResult {
  double seconds = 0;
  uint64_t ops = 0;
  double mops = 0;
  LatencyHistogram latency;       // sampled, all op types
  LatencyHistogram scan_latency;  // sampled, scans only
  NvmStatsSnapshot nvm;           // media traffic during the phase
};

class YcsbDriver {
 public:
  // Loads |spec.record_count| keys (threads stripe the key range).
  static YcsbResult Load(RangeIndex* index, const YcsbSpec& spec);
  // Runs |spec.op_count| operations of the spec's mix against a loaded index.
  static YcsbResult Run(RangeIndex* index, const YcsbSpec& spec);

  static void PrintHeader();
  static void PrintRow(const std::string& index_name, const YcsbSpec& spec,
                       const YcsbResult& r);
};

}  // namespace pactree

#endif  // PACTREE_SRC_WORKLOAD_YCSB_H_
