// Deterministic key universes for the YCSB-style workloads (paper §6):
// 8-byte integer keys and 23-byte string keys ("user" + 19 digits), generated
// lazily from a bijective 64-bit mix so no materialized array is needed even
// at 64M-key scale.
#ifndef PACTREE_SRC_WORKLOAD_KEYSET_H_
#define PACTREE_SRC_WORKLOAD_KEYSET_H_

#include <cstdint>
#include <cstdio>

#include "src/common/key.h"

namespace pactree {

class KeySet {
 public:
  KeySet(bool string_keys, uint64_t seed = 0x5eedULL)
      : string_keys_(string_keys), seed_(seed) {}

  bool string_keys() const { return string_keys_; }

  // The i-th key of the universe (i unbounded: run-phase inserts draw indices
  // beyond the loaded range). Distinct i yield distinct keys.
  Key At(uint64_t i) const {
    uint64_t v = Mix(i + seed_);
    if (!string_keys_) {
      return Key::FromInt(v);
    }
    // "user" + 19 zero-padded digits = 23 bytes, YCSB's key shape.
    char buf[24];
    std::snprintf(buf, sizeof(buf), "user%019llu",
                  static_cast<unsigned long long>(v));
    return Key::FromBytes(buf, 23);
  }

 private:
  // SplitMix64 finalizer: a bijection on 64-bit values.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  bool string_keys_;
  uint64_t seed_;
};

}  // namespace pactree

#endif  // PACTREE_SRC_WORKLOAD_KEYSET_H_
