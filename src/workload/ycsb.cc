#include "src/workload/ycsb.h"

#include <atomic>
#include <cstdio>
#include <span>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"
#include "src/runtime/workers.h"
#include "src/workload/zipf.h"

namespace pactree {
namespace {

struct OpMix {
  int read_pct;
  int update_pct;
  int insert_pct;
  int scan_pct;
};

OpMix MixFor(YcsbKind kind) {
  switch (kind) {
    case YcsbKind::kLoadA:
      return {0, 0, 100, 0};
    case YcsbKind::kA:
      return {50, 50, 0, 0};
    case YcsbKind::kB:
      return {95, 5, 0, 0};
    case YcsbKind::kC:
      return {100, 0, 0, 0};
    case YcsbKind::kE:
      return {0, 0, 5, 95};
    case YcsbKind::kAInsert:
      return {50, 0, 50, 0};
  }
  return {100, 0, 0, 0};
}

}  // namespace

const char* YcsbKindName(YcsbKind kind) {
  switch (kind) {
    case YcsbKind::kLoadA:
      return "L-A";
    case YcsbKind::kA:
      return "W-A";
    case YcsbKind::kB:
      return "W-B";
    case YcsbKind::kC:
      return "W-C";
    case YcsbKind::kE:
      return "W-E";
    case YcsbKind::kAInsert:
      return "A-INS";
  }
  return "?";
}

YcsbResult YcsbDriver::Load(RangeIndex* index, const YcsbSpec& spec) {
  KeySet keys(spec.string_keys, spec.seed);
  YcsbResult result;
  NvmStatsSnapshot before = GlobalNvmStats();
  std::atomic<bool> start{false};
  std::vector<LatencyHistogram> lats(spec.threads);
  uint64_t t0 = 0;
  RunWorkerThreads(
      spec.threads,
      [&](uint32_t t) {
        AssignWorkerThread(t);
        Rng rng(spec.seed * 131 + t);
        while (!start.load(std::memory_order_acquire)) {
          CpuRelax();
        }
        uint64_t from = spec.record_count * t / spec.threads;
        uint64_t to = spec.record_count * (t + 1) / spec.threads;
        for (uint64_t i = from; i < to; ++i) {
          bool sample = rng.NextDouble() < spec.sample_rate;
          uint64_t s0 = sample ? NowNs() : 0;
          index->Insert(keys.At(i), i + 1);
          if (sample) {
            lats[t].Record(NowNs() - s0);
          }
        }
      },
      [&] {
        // Stamp t0 after every worker exists: thread creation stays out of the
        // measured window, exactly as the hand-rolled spawn loop did.
        t0 = NowNs();
        start.store(true, std::memory_order_release);
      });
  uint64_t t1 = NowNs();
  result.seconds = static_cast<double>(t1 - t0) / 1e9;
  result.ops = spec.record_count;
  result.mops = static_cast<double>(result.ops) / 1e6 / result.seconds;
  for (auto& h : lats) {
    result.latency.Merge(h);
  }
  result.nvm = GlobalNvmStats() - before;
  return result;
}

YcsbResult YcsbDriver::Run(RangeIndex* index, const YcsbSpec& spec) {
  KeySet keys(spec.string_keys, spec.seed);
  OpMix mix = MixFor(spec.kind);
  YcsbResult result;
  // One shared Zipfian distribution (zeta is O(n) to build; share it).
  ZipfGenerator zipf(spec.record_count, spec.zipf_theta);

  NvmStatsSnapshot before = GlobalNvmStats();
  std::atomic<bool> start{false};
  std::vector<LatencyHistogram> lats(spec.threads);
  std::vector<LatencyHistogram> scan_lats(spec.threads);
  // Run-phase inserts take fresh key indices beyond the loaded range.
  std::atomic<uint64_t> insert_cursor{spec.record_count};

  uint64_t t0 = 0;
  RunWorkerThreads(
      spec.threads,
      [&](uint32_t t) {
        AssignWorkerThread(t);
        Rng rng(spec.seed * 31 + t + 1);
        std::vector<std::pair<Key, uint64_t>> scan_buf;
        // Batched read pipeline (spec.read_batch > 1): lookups and scans
        // buffer here and flush through MultiGet/MultiScan. Write ops flush
        // the buffers first so a thread still observes its own writes in
        // program order.
        const uint64_t rb = spec.read_batch > 1 ? spec.read_batch : 1;
        std::vector<Key> mget_keys;
        std::vector<uint64_t> mget_vals;
        std::vector<Key> mscan_starts;
        std::vector<size_t> mscan_lens;
        std::vector<std::vector<std::pair<Key, uint64_t>>> mscan_out;
        if (rb > 1) {
          mget_keys.reserve(rb);
          mget_vals.resize(rb);
          mscan_starts.reserve(rb);
          mscan_lens.reserve(rb);
        }
        auto flush_reads = [&] {
          if (mget_keys.empty()) {
            return;
          }
          bool sample = spec.sample_rate >= 1.0 || rng.NextDouble() < spec.sample_rate;
          uint64_t s0 = sample ? NowNs() : 0;
          index->MultiGet(std::span<const Key>(mget_keys.data(), mget_keys.size()),
                          mget_vals.data(), nullptr);
          if (sample) {
            lats[t].Record((NowNs() - s0) / mget_keys.size());
          }
          mget_keys.clear();
        };
        auto flush_scans = [&] {
          if (mscan_starts.empty()) {
            return;
          }
          bool sample = spec.sample_rate >= 1.0 || rng.NextDouble() < spec.sample_rate;
          uint64_t s0 = sample ? NowNs() : 0;
          index->MultiScan(
              std::span<const Key>(mscan_starts.data(), mscan_starts.size()),
              std::span<const size_t>(mscan_lens.data(), mscan_lens.size()),
              &mscan_out);
          if (sample) {
            uint64_t per_op = (NowNs() - s0) / mscan_starts.size();
            lats[t].Record(per_op);
            scan_lats[t].Record(per_op);
          }
          mscan_starts.clear();
          mscan_lens.clear();
        };
        while (!start.load(std::memory_order_acquire)) {
          CpuRelax();
        }
        uint64_t ops = spec.op_count / spec.threads;
        for (uint64_t i = 0; i < ops; ++i) {
          uint64_t pick = spec.zipfian ? zipf.Next(rng) : rng.Uniform(spec.record_count);
          int dice = static_cast<int>(rng.Uniform(100));
          if (rb > 1) {
            if (dice < mix.read_pct) {
              mget_keys.push_back(keys.At(pick));
              if (mget_keys.size() >= rb) {
                flush_reads();
              }
            } else if (dice < mix.read_pct + mix.update_pct + mix.insert_pct) {
              flush_reads();
              flush_scans();
              bool sample = spec.sample_rate >= 1.0 || rng.NextDouble() < spec.sample_rate;
              uint64_t s0 = sample ? NowNs() : 0;
              if (dice < mix.read_pct + mix.update_pct) {
                index->Update(keys.At(pick), i + 1);
              } else {
                uint64_t fresh = insert_cursor.fetch_add(1, std::memory_order_relaxed);
                index->Insert(keys.At(fresh), fresh);
              }
              if (sample) {
                lats[t].Record(NowNs() - s0);
              }
            } else {
              mscan_starts.push_back(keys.At(pick));
              mscan_lens.push_back(1 + rng.Uniform(spec.scan_max_len));
              if (mscan_starts.size() >= rb) {
                flush_scans();
              }
            }
            continue;
          }
          bool sample = spec.sample_rate >= 1.0 || rng.NextDouble() < spec.sample_rate;
          uint64_t s0 = sample ? NowNs() : 0;
          bool is_scan = false;
          if (dice < mix.read_pct) {
            uint64_t v;
            index->Lookup(keys.At(pick), &v);
          } else if (dice < mix.read_pct + mix.update_pct) {
            index->Update(keys.At(pick), i + 1);
          } else if (dice < mix.read_pct + mix.update_pct + mix.insert_pct) {
            uint64_t fresh = insert_cursor.fetch_add(1, std::memory_order_relaxed);
            index->Insert(keys.At(fresh), fresh);
          } else {
            is_scan = true;
            size_t len = 1 + rng.Uniform(spec.scan_max_len);
            index->Scan(keys.At(pick), len, &scan_buf);
          }
          if (sample) {
            uint64_t dt = NowNs() - s0;
            lats[t].Record(dt);
            if (is_scan) {
              scan_lats[t].Record(dt);
            }
          }
        }
        if (rb > 1) {
          flush_reads();
          flush_scans();
        }
      },
      [&] {
        t0 = NowNs();
        start.store(true, std::memory_order_release);
      });
  uint64_t t1 = NowNs();
  result.seconds = static_cast<double>(t1 - t0) / 1e9;
  result.ops = spec.op_count / spec.threads * spec.threads;
  result.mops = static_cast<double>(result.ops) / 1e6 / result.seconds;
  for (uint32_t t = 0; t < spec.threads; ++t) {
    result.latency.Merge(lats[t]);
    result.scan_latency.Merge(scan_lats[t]);
  }
  result.nvm = GlobalNvmStats() - before;
  return result;
}

void YcsbDriver::PrintHeader() {
  std::printf(
      "%-10s %-5s %8s %6s %10s %12s %12s %12s %12s %12s\n", "index", "wl", "threads",
      "keys", "Mops/s", "p50(ns)", "p99(ns)", "p99.99(ns)", "nvm_rd(MB)", "nvm_wr(MB)");
}

void YcsbDriver::PrintRow(const std::string& index_name, const YcsbSpec& spec,
                          const YcsbResult& r) {
  std::printf("%-10s %-5s %8u %5lluM %10.3f %12llu %12llu %12llu %12.1f %12.1f\n",
              index_name.c_str(), YcsbKindName(spec.kind), spec.threads,
              static_cast<unsigned long long>(spec.record_count / 1000000),
              r.mops, static_cast<unsigned long long>(r.latency.Percentile(50)),
              static_cast<unsigned long long>(r.latency.Percentile(99)),
              static_cast<unsigned long long>(r.latency.Percentile(99.99)),
              static_cast<double>(r.nvm.media_read_bytes) / 1e6,
              static_cast<double>(r.nvm.media_write_bytes) / 1e6);
  std::fflush(stdout);
}

}  // namespace pactree
