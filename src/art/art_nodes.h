// Internal node variants and per-type operations for PDL-ART.
//
// Invariants load-bearing for optimistic concurrency:
//   * a node's prefix is immutable after construction (structural changes are
//     copy-on-write), so readers may copy it without atomics;
//   * child slots and key bytes are mutated only under the node's write lock,
//     through 1- or 8-byte stores readers re-validate against the version.
#ifndef PACTREE_SRC_ART_ART_NODES_H_
#define PACTREE_SRC_ART_ART_NODES_H_

#include <cstdint>

#include "src/art/art.h"

namespace pactree {

struct ArtNode4 {
  ArtNode hdr;
  uint8_t keys[4];
  uint8_t pad[4];
  uint64_t children[4];
};

struct ArtNode16 {
  ArtNode hdr;
  uint8_t keys[16];
  uint64_t children[16];
};

struct ArtNode48 {
  ArtNode hdr;
  uint8_t child_index[256];  // 0 = empty, else slot+1
  uint64_t children[48];
};

struct ArtNode256 {
  ArtNode hdr;
  uint64_t children[256];
};

size_t ArtNodeSize(uint8_t type);
uint16_t ArtNodeCapacity(uint8_t type);

// Returns the child pointer for byte |b| (0 if absent).
uint64_t ArtFindChild(const ArtNode* n, uint8_t b);

// Address of the slot holding byte |b|'s child, or nullptr. Caller holds the
// node's write lock (used for in-place pointer swings).
uint64_t* ArtChildSlot(ArtNode* n, uint8_t b);

// Adds (b -> child) in place with crash-ordered persists. Returns false when
// the node is full. Caller holds the write lock.
bool ArtAddChild(ArtNode* n, uint8_t b, uint64_t child);

// Removes byte |b|'s entry in place; returns false if absent. Caller holds the
// write lock.
bool ArtRemoveChild(ArtNode* n, uint8_t b);

// Greatest mapped byte strictly below limits / helpers for floor & scans.
// Returns the child and sets *byte; 0 if none.
uint64_t ArtMaxChildBelow(const ArtNode* n, int below_exclusive, uint8_t* byte);
uint64_t ArtMaxChild(const ArtNode* n, uint8_t* byte);
uint64_t ArtMinChild(const ArtNode* n, uint8_t* byte);

// Copies entries into (bytes[], children[]) sorted by byte; returns count.
// Readers must validate the version afterwards.
int ArtCollectSorted(const ArtNode* n, uint8_t* bytes, uint64_t* children);

// Copies all of |src|'s entries into |dst| (fresh, unpublished node).
void ArtCopyEntries(const ArtNode* src, ArtNode* dst);

}  // namespace pactree

#endif  // PACTREE_SRC_ART_ART_NODES_H_
