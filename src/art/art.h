// PDL-ART: Persistent Durable-Linearizable Adaptive Radix Tree (paper §5.1).
//
// An ART (Leis et al., ICDE'13) over the 32-byte zero-padded key image, with:
//   * optimistic version locks + the global generation ID instead of ROWEX, so
//     readers block on a locked node and can never observe unpersisted writes
//     (durable linearizability), and crash recovery does not visit nodes;
//   * log-free crash consistency: in-place changes use ordered persists with the
//     visibility store last; multi-line structural changes (grow/shrink/prefix
//     split) are copy-on-write with a single persisted 8-byte pointer swing as
//     the linearization point;
//   * persistent-leak prevention: every new node/leaf is allocated with
//     malloc-to semantics into a per-tree allocation log; recovery frees
//     blocks that never became reachable;
//   * epoch-based reclamation for nodes replaced by copy-on-write.
//
// Leaves are out-of-node {key, value} records -- one NVM allocation per insert,
// exactly the property the paper measures against (GA3, Figures 3/4/5). Values
// are opaque 8-byte words (PACTree stores data-node PPtrs in them).
#ifndef PACTREE_SRC_ART_ART_H_
#define PACTREE_SRC_ART_ART_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/key.h"
#include "src/common/status.h"
#include "src/pmem/heap.h"
#include "src/pmem/pptr.h"
#include "src/sync/version_lock.h"

namespace pactree {

// Child pointers are raw PPtr words; bit 63 tags a leaf (pool ids stay < 2^15).
inline constexpr uint64_t kArtLeafTag = 1ULL << 63;
inline bool ArtIsLeaf(uint64_t raw) { return (raw & kArtLeafTag) != 0; }
inline uint64_t ArtUntag(uint64_t raw) { return raw & ~kArtLeafTag; }

struct ArtLeaf {
  Key key;
  uint32_t pad;
  uint64_t value;
};
static_assert(sizeof(ArtLeaf) == 48, "leaf record layout");

enum ArtNodeType : uint8_t { kArtN4 = 1, kArtN16, kArtN48, kArtN256 };

struct ArtNode {
  OptVersionLock lock;
  uint8_t type;
  uint8_t pad;
  uint16_t count;
  uint32_t prefix_len;  // logical length; only kMaxPrefix bytes stored
  static constexpr uint32_t kMaxPrefix = 24;
  uint8_t prefix[kMaxPrefix];
};
static_assert(sizeof(ArtNode) == 40, "node header layout");

// Per-tree persistent allocation log entry (up to two blocks per operation:
// e.g., a prefix split allocates one inner node and one leaf).
struct ArtAllocLogEntry {
  uint64_t state;      // 0 = empty
  uint64_t blocks[2];  // raw PPtrs of in-flight allocations
  Key key;             // the key whose path the blocks belong to
  uint8_t pad[4];
};
static_assert(sizeof(ArtAllocLogEntry) == 64, "log entry is one cache line");

inline constexpr size_t kArtAllocLogSlots = 256;

// Persistent root object of one PDL-ART instance. The caller owns its placement
// (e.g., inside a heap root area or a PACTree metadata block).
struct ArtTreeRoot {
  uint64_t magic;
  uint64_t root_raw;  // PPtr of the root N256
  uint64_t pad[6];
  ArtAllocLogEntry alloc_log[kArtAllocLogSlots];
};

struct PdlArtStats {
  uint64_t restarts = 0;  // optimistic validation failures
};

class PdlArt {
 public:
  // Attaches to (or initializes) the tree rooted at |root|. |heap| provides
  // NUMA-local persistent allocation. When attaching to an existing tree the
  // caller must invoke Recover() before concurrent use.
  PdlArt(PmemHeap* heap, ArtTreeRoot* root);

  PdlArt(const PdlArt&) = delete;
  PdlArt& operator=(const PdlArt&) = delete;

  // Upsert. Returns kOk for a fresh insert, kExists when an existing key's
  // value was overwritten.
  Status Insert(const Key& key, uint64_t value);

  // Insert only if absent; returns kExists (value untouched) otherwise.
  Status InsertIfAbsent(const Key& key, uint64_t value);

  Status Lookup(const Key& key, uint64_t* value) const;
  Status Remove(const Key& key);

  // Greatest key <= |key|. Returns kNotFound when the tree has no key <= key.
  Status LookupFloor(const Key& key, Key* found, uint64_t* value) const;

  // One floor-resolution step WITHOUT its own EpochGuard: the caller must
  // hold one (nesting is fine). This is the unit the batched read pipeline
  // composes -- PACTree's MultiGet takes ONE guard for a whole batch and
  // resolves every miss key through this entry point.
  Status LookupFloorNoGuard(const Key& key, Key* found, uint64_t* value) const;

  // Best-effort, lock-free software prefetch of |key|'s root path: descends
  // up to |max_levels| levels issuing __builtin_prefetch on each node it
  // would visit, validating nothing. Reads may race with writers -- a stale
  // child pointer prefetches a retired (epoch-protected, still mapped) node,
  // which is harmless. Caller must hold an EpochGuard. Used by the batch
  // pipeline to overlap key i+1's trie walk with key i's probe.
  void PrefetchFloorPath(const Key& key, int max_levels = 8) const;

  // Collects up to |limit| pairs with key >= |start| in ascending order.
  size_t Scan(const Key& start, size_t limit,
              std::vector<std::pair<Key, uint64_t>>* out) const;

  // Ordered visit of every pair (test/debug; not concurrency-safe vs writers).
  void ForEach(const std::function<void(const Key&, uint64_t)>& fn) const;

  // Post-crash GC of the allocation log (frees unreachable blocks).
  void Recover();

  uint64_t Size() const;  // number of leaves (O(n) walk)
  PdlArtStats Stats() const { return {restarts_.load(std::memory_order_relaxed)}; }

 private:
  struct AllocGuard;

  ArtNode* RootNode() const { return PPtr<ArtNode>(root_->root_raw).get(); }

  Status InsertImpl(const Key& key, uint64_t value, bool upsert, bool* existed);
  bool InsertAttempt(const Key& key, uint64_t value, bool upsert, bool* existed,
                     Status* result);
  bool RemoveAttempt(const Key& key, Status* result);
  bool FloorAttempt(const Key& key, Key* found, uint64_t* value, Status* result) const;
  // Floor within a subtree known to be entirely <= key; false -> restart.
  bool SubtreeMax(uint64_t raw, Key* found, uint64_t* value, bool* ok) const;
  bool ScanAttempt(const Key& start, size_t limit,
                   std::vector<std::pair<Key, uint64_t>>* out) const;
  bool ScanNode(uint64_t raw, uint32_t depth, const Key& start, bool bounded,
                size_t limit, std::vector<std::pair<Key, uint64_t>>* out) const;

  // Allocation helpers (malloc-to into the tree's log).
  int AcquireLogSlot(const Key& key);
  void ReleaseLogSlot(int slot);
  void* AllocBlock(int slot, int which, size_t size);

  ArtNode* NewInnerNode(int slot, int which, ArtNodeType type);
  uint64_t NewLeaf(int slot, int which, const Key& key, uint64_t value);
  ArtNode* GrowCopy(int slot, int which, const ArtNode* n);
  ArtNode* ShrinkCopy(int slot, int which, const ArtNode* n);

  void RetireSubtreeNode(ArtNode* n);

  bool IsReachableOnPath(uint64_t block_raw, const Key& key) const;

  PmemHeap* heap_;
  ArtTreeRoot* root_;
  std::vector<std::atomic<uint8_t>> log_busy_;
  mutable std::atomic<uint64_t> restarts_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_ART_ART_H_
