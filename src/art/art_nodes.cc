#include "src/art/art_nodes.h"

#include <cstring>

#include "src/nvm/persist.h"

namespace pactree {
namespace {

inline std::atomic_ref<uint64_t> Slot(uint64_t* p) { return std::atomic_ref<uint64_t>(*p); }
inline uint64_t LoadSlot(const uint64_t* p) {
  return std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(p)).load(std::memory_order_acquire);
}
inline uint8_t LoadByte(const uint8_t* p) {
  return std::atomic_ref<uint8_t>(*const_cast<uint8_t*>(p)).load(std::memory_order_acquire);
}
inline void StoreByte(uint8_t* p, uint8_t v) {
  std::atomic_ref<uint8_t>(*p).store(v, std::memory_order_release);
}
inline uint16_t LoadCount(const ArtNode* n) {
  return std::atomic_ref<uint16_t>(const_cast<ArtNode*>(n)->count).load(std::memory_order_acquire);
}
inline void StoreCount(ArtNode* n, uint16_t c) {
  std::atomic_ref<uint16_t>(n->count).store(c, std::memory_order_release);
}

}  // namespace

size_t ArtNodeSize(uint8_t type) {
  switch (type) {
    case kArtN4:
      return sizeof(ArtNode4);
    case kArtN16:
      return sizeof(ArtNode16);
    case kArtN48:
      return sizeof(ArtNode48);
    case kArtN256:
      return sizeof(ArtNode256);
  }
  return 0;
}

uint16_t ArtNodeCapacity(uint8_t type) {
  switch (type) {
    case kArtN4:
      return 4;
    case kArtN16:
      return 16;
    case kArtN48:
      return 48;
    case kArtN256:
      return 256;
  }
  return 0;
}

uint64_t ArtFindChild(const ArtNode* n, uint8_t b) {
  switch (n->type) {
    case kArtN4: {
      const auto* n4 = reinterpret_cast<const ArtNode4*>(n);
      uint16_t cnt = LoadCount(n);
      for (uint16_t i = 0; i < cnt && i < 4; ++i) {
        if (LoadByte(&n4->keys[i]) == b) {
          return LoadSlot(&n4->children[i]);
        }
      }
      return 0;
    }
    case kArtN16: {
      const auto* n16 = reinterpret_cast<const ArtNode16*>(n);
      uint16_t cnt = LoadCount(n);
      for (uint16_t i = 0; i < cnt && i < 16; ++i) {
        if (LoadByte(&n16->keys[i]) == b) {
          return LoadSlot(&n16->children[i]);
        }
      }
      return 0;
    }
    case kArtN48: {
      const auto* n48 = reinterpret_cast<const ArtNode48*>(n);
      uint8_t idx = LoadByte(&n48->child_index[b]);
      if (idx == 0) {
        return 0;
      }
      return LoadSlot(&n48->children[idx - 1]);
    }
    case kArtN256: {
      const auto* n256 = reinterpret_cast<const ArtNode256*>(n);
      return LoadSlot(&n256->children[b]);
    }
  }
  return 0;
}

uint64_t* ArtChildSlot(ArtNode* n, uint8_t b) {
  switch (n->type) {
    case kArtN4: {
      auto* n4 = reinterpret_cast<ArtNode4*>(n);
      for (uint16_t i = 0; i < n->count; ++i) {
        if (n4->keys[i] == b) {
          return &n4->children[i];
        }
      }
      return nullptr;
    }
    case kArtN16: {
      auto* n16 = reinterpret_cast<ArtNode16*>(n);
      for (uint16_t i = 0; i < n->count; ++i) {
        if (n16->keys[i] == b) {
          return &n16->children[i];
        }
      }
      return nullptr;
    }
    case kArtN48: {
      auto* n48 = reinterpret_cast<ArtNode48*>(n);
      uint8_t idx = n48->child_index[b];
      return idx == 0 ? nullptr : &n48->children[idx - 1];
    }
    case kArtN256: {
      auto* n256 = reinterpret_cast<ArtNode256*>(n);
      return n256->children[b] != 0 ? &n256->children[b] : nullptr;
    }
  }
  return nullptr;
}

bool ArtAddChild(ArtNode* n, uint8_t b, uint64_t child) {
  switch (n->type) {
    case kArtN4:
    case kArtN16: {
      uint16_t cap = ArtNodeCapacity(n->type);
      if (n->count >= cap) {
        return false;
      }
      uint8_t* keys = n->type == kArtN4 ? reinterpret_cast<ArtNode4*>(n)->keys
                                        : reinterpret_cast<ArtNode16*>(n)->keys;
      uint64_t* children = n->type == kArtN4 ? reinterpret_cast<ArtNode4*>(n)->children
                                             : reinterpret_cast<ArtNode16*>(n)->children;
      uint16_t slot = n->count;
      StoreByte(&keys[slot], b);
      Slot(&children[slot]).store(child, std::memory_order_release);
      // Persist the entry before making it visible through count (GA4: the
      // count store is the single-word visibility/durability pivot).
      PersistRange(&keys[slot], 1);
      PersistFence(&children[slot], sizeof(uint64_t));
      StoreCount(n, slot + 1);
      PersistFence(&n->count, sizeof(n->count));
      return true;
    }
    case kArtN48: {
      auto* n48 = reinterpret_cast<ArtNode48*>(n);
      if (n->count >= 48) {
        return false;
      }
      int slot = -1;
      for (int i = 0; i < 48; ++i) {
        if (n48->children[i] == 0) {
          slot = i;
          break;
        }
      }
      if (slot < 0) {
        return false;
      }
      Slot(&n48->children[slot]).store(child, std::memory_order_release);
      PersistFence(&n48->children[slot], sizeof(uint64_t));
      std::atomic_ref<uint8_t>(n48->child_index[b])
          .store(static_cast<uint8_t>(slot + 1), std::memory_order_release);
      PersistFence(&n48->child_index[b], 1);
      StoreCount(n, n->count + 1);
      PersistFence(&n->count, sizeof(n->count));
      return true;
    }
    case kArtN256: {
      auto* n256 = reinterpret_cast<ArtNode256*>(n);
      Slot(&n256->children[b]).store(child, std::memory_order_release);
      PersistFence(&n256->children[b], sizeof(uint64_t));
      StoreCount(n, n->count + 1);
      PersistFence(&n->count, sizeof(n->count));
      return true;
    }
  }
  return false;
}

bool ArtRemoveChild(ArtNode* n, uint8_t b) {
  switch (n->type) {
    case kArtN4:
    case kArtN16: {
      uint8_t* keys = n->type == kArtN4 ? reinterpret_cast<ArtNode4*>(n)->keys
                                        : reinterpret_cast<ArtNode16*>(n)->keys;
      uint64_t* children = n->type == kArtN4 ? reinterpret_cast<ArtNode4*>(n)->children
                                             : reinterpret_cast<ArtNode16*>(n)->children;
      for (uint16_t i = 0; i < n->count; ++i) {
        if (keys[i] == b) {
          uint16_t last = n->count - 1;
          // Swap-remove: copy the last entry over the hole, persist, then
          // shrink count. A crash in between leaves a duplicate entry past the
          // new count, which is invisible.
          StoreByte(&keys[i], keys[last]);
          Slot(&children[i]).store(children[last], std::memory_order_release);
          PersistRange(&keys[i], 1);
          PersistFence(&children[i], sizeof(uint64_t));
          StoreCount(n, last);
          PersistFence(&n->count, sizeof(n->count));
          Slot(&children[last]).store(0, std::memory_order_release);
          return true;
        }
      }
      return false;
    }
    case kArtN48: {
      auto* n48 = reinterpret_cast<ArtNode48*>(n);
      uint8_t idx = n48->child_index[b];
      if (idx == 0) {
        return false;
      }
      std::atomic_ref<uint8_t>(n48->child_index[b]).store(0, std::memory_order_release);
      PersistFence(&n48->child_index[b], 1);
      Slot(&n48->children[idx - 1]).store(0, std::memory_order_release);
      PersistFence(&n48->children[idx - 1], sizeof(uint64_t));
      StoreCount(n, n->count - 1);
      PersistFence(&n->count, sizeof(n->count));
      return true;
    }
    case kArtN256: {
      auto* n256 = reinterpret_cast<ArtNode256*>(n);
      if (n256->children[b] == 0) {
        return false;
      }
      Slot(&n256->children[b]).store(0, std::memory_order_release);
      PersistFence(&n256->children[b], sizeof(uint64_t));
      StoreCount(n, n->count - 1);
      PersistFence(&n->count, sizeof(n->count));
      return true;
    }
  }
  return false;
}

uint64_t ArtMaxChildBelow(const ArtNode* n, int below_exclusive, uint8_t* byte) {
  int best = -1;
  uint64_t best_child = 0;
  switch (n->type) {
    case kArtN4:
    case kArtN16: {
      const uint8_t* keys = n->type == kArtN4
                                ? reinterpret_cast<const ArtNode4*>(n)->keys
                                : reinterpret_cast<const ArtNode16*>(n)->keys;
      const uint64_t* children = n->type == kArtN4
                                     ? reinterpret_cast<const ArtNode4*>(n)->children
                                     : reinterpret_cast<const ArtNode16*>(n)->children;
      uint16_t cnt = LoadCount(n);
      uint16_t cap = ArtNodeCapacity(n->type);
      for (uint16_t i = 0; i < cnt && i < cap; ++i) {
        int k = LoadByte(&keys[i]);
        if (k < below_exclusive && k > best) {
          uint64_t c = LoadSlot(&children[i]);
          if (c != 0) {
            best = k;
            best_child = c;
          }
        }
      }
      break;
    }
    case kArtN48: {
      const auto* n48 = reinterpret_cast<const ArtNode48*>(n);
      for (int k = below_exclusive - 1; k >= 0; --k) {
        uint8_t idx = LoadByte(&n48->child_index[k]);
        if (idx != 0) {
          uint64_t c = LoadSlot(&n48->children[idx - 1]);
          if (c != 0) {
            best = k;
            best_child = c;
            break;
          }
        }
      }
      break;
    }
    case kArtN256: {
      const auto* n256 = reinterpret_cast<const ArtNode256*>(n);
      for (int k = below_exclusive - 1; k >= 0; --k) {
        uint64_t c = LoadSlot(&n256->children[k]);
        if (c != 0) {
          best = k;
          best_child = c;
          break;
        }
      }
      break;
    }
  }
  if (best < 0) {
    return 0;
  }
  *byte = static_cast<uint8_t>(best);
  return best_child;
}

uint64_t ArtMaxChild(const ArtNode* n, uint8_t* byte) {
  return ArtMaxChildBelow(n, 256, byte);
}

uint64_t ArtMinChild(const ArtNode* n, uint8_t* byte) {
  int best = 256;
  uint64_t best_child = 0;
  switch (n->type) {
    case kArtN4:
    case kArtN16: {
      const uint8_t* keys = n->type == kArtN4
                                ? reinterpret_cast<const ArtNode4*>(n)->keys
                                : reinterpret_cast<const ArtNode16*>(n)->keys;
      const uint64_t* children = n->type == kArtN4
                                     ? reinterpret_cast<const ArtNode4*>(n)->children
                                     : reinterpret_cast<const ArtNode16*>(n)->children;
      uint16_t cnt = LoadCount(n);
      uint16_t cap = ArtNodeCapacity(n->type);
      for (uint16_t i = 0; i < cnt && i < cap; ++i) {
        int k = LoadByte(&keys[i]);
        if (k < best) {
          uint64_t c = LoadSlot(&children[i]);
          if (c != 0) {
            best = k;
            best_child = c;
          }
        }
      }
      break;
    }
    case kArtN48: {
      const auto* n48 = reinterpret_cast<const ArtNode48*>(n);
      for (int k = 0; k < 256; ++k) {
        uint8_t idx = LoadByte(&n48->child_index[k]);
        if (idx != 0) {
          uint64_t c = LoadSlot(&n48->children[idx - 1]);
          if (c != 0) {
            best = k;
            best_child = c;
            break;
          }
        }
      }
      break;
    }
    case kArtN256: {
      const auto* n256 = reinterpret_cast<const ArtNode256*>(n);
      for (int k = 0; k < 256; ++k) {
        uint64_t c = LoadSlot(&n256->children[k]);
        if (c != 0) {
          best = k;
          best_child = c;
          break;
        }
      }
      break;
    }
  }
  if (best > 255) {
    return 0;
  }
  *byte = static_cast<uint8_t>(best);
  return best_child;
}

int ArtCollectSorted(const ArtNode* n, uint8_t* bytes, uint64_t* children) {
  int count = 0;
  switch (n->type) {
    case kArtN4:
    case kArtN16: {
      const uint8_t* keys = n->type == kArtN4
                                ? reinterpret_cast<const ArtNode4*>(n)->keys
                                : reinterpret_cast<const ArtNode16*>(n)->keys;
      const uint64_t* kids = n->type == kArtN4
                                 ? reinterpret_cast<const ArtNode4*>(n)->children
                                 : reinterpret_cast<const ArtNode16*>(n)->children;
      uint16_t cnt = LoadCount(n);
      uint16_t cap = ArtNodeCapacity(n->type);
      for (uint16_t i = 0; i < cnt && i < cap; ++i) {
        uint64_t c = LoadSlot(&kids[i]);
        if (c != 0) {
          bytes[count] = LoadByte(&keys[i]);
          children[count] = c;
          count++;
        }
      }
      // Insertion sort by byte (<=16 entries).
      for (int i = 1; i < count; ++i) {
        uint8_t b = bytes[i];
        uint64_t c = children[i];
        int j = i - 1;
        while (j >= 0 && bytes[j] > b) {
          bytes[j + 1] = bytes[j];
          children[j + 1] = children[j];
          --j;
        }
        bytes[j + 1] = b;
        children[j + 1] = c;
      }
      return count;
    }
    case kArtN48: {
      const auto* n48 = reinterpret_cast<const ArtNode48*>(n);
      for (int k = 0; k < 256; ++k) {
        uint8_t idx = LoadByte(&n48->child_index[k]);
        if (idx != 0) {
          uint64_t c = LoadSlot(&n48->children[idx - 1]);
          if (c != 0) {
            bytes[count] = static_cast<uint8_t>(k);
            children[count] = c;
            count++;
          }
        }
      }
      return count;
    }
    case kArtN256: {
      const auto* n256 = reinterpret_cast<const ArtNode256*>(n);
      for (int k = 0; k < 256; ++k) {
        uint64_t c = LoadSlot(&n256->children[k]);
        if (c != 0) {
          bytes[count] = static_cast<uint8_t>(k);
          children[count] = c;
          count++;
        }
      }
      return count;
    }
  }
  return 0;
}

void ArtCopyEntries(const ArtNode* src, ArtNode* dst) {
  uint8_t bytes[256];
  uint64_t children[256];
  int cnt = ArtCollectSorted(src, bytes, children);
  for (int i = 0; i < cnt; ++i) {
    switch (dst->type) {
      case kArtN4: {
        auto* d = reinterpret_cast<ArtNode4*>(dst);
        d->keys[dst->count] = bytes[i];
        d->children[dst->count] = children[i];
        break;
      }
      case kArtN16: {
        auto* d = reinterpret_cast<ArtNode16*>(dst);
        d->keys[dst->count] = bytes[i];
        d->children[dst->count] = children[i];
        break;
      }
      case kArtN48: {
        auto* d = reinterpret_cast<ArtNode48*>(dst);
        d->children[dst->count] = children[i];
        d->child_index[bytes[i]] = static_cast<uint8_t>(dst->count + 1);
        break;
      }
      case kArtN256: {
        auto* d = reinterpret_cast<ArtNode256*>(dst);
        d->children[bytes[i]] = children[i];
        break;
      }
    }
    dst->count++;
  }
}

}  // namespace pactree
