#include "src/art/art.h"

#include <cassert>
#include <cstring>

#include "src/art/art_nodes.h"
#include "src/nvm/persist.h"
#include "src/pmem/registry.h"
#include "src/runtime/thread_context.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

constexpr uint64_t kArtMagic = 0x3154524144504150ULL;  // "PAPDART1"

inline ArtNode* NodeOf(uint64_t raw) { return PPtr<ArtNode>(raw).get(); }
inline ArtLeaf* LeafOf(uint64_t raw) { return PPtr<ArtLeaf>(ArtUntag(raw)).get(); }

// Approximate NVM traffic of one node visit: header + the accessed slot area.
inline void AnnotateNodeVisit(const ArtNode* n) { AnnotateNvmRead(n, 128); }
inline void AnnotateLeafVisit(const ArtLeaf* l) { AnnotateNvmRead(l, sizeof(ArtLeaf)); }

}  // namespace

PdlArt::PdlArt(PmemHeap* heap, ArtTreeRoot* root)
    : heap_(heap), root_(root), log_busy_(kArtAllocLogSlots) {
  if (root_->magic != kArtMagic) {
    // Fresh tree: build an empty N256 root. A crash inside this window can
    // leak at most one node, re-created on the next attach (documented).
    PPtr<void> block = heap_->Alloc(sizeof(ArtNode256));
    auto* n = static_cast<ArtNode256*>(block.get());
    std::memset(static_cast<void*>(n), 0, sizeof(ArtNode256));
    n->hdr.type = kArtN256;
    PersistFence(n, sizeof(ArtNode256));
    root_->root_raw = block.raw;
    PersistFence(&root_->root_raw, sizeof(uint64_t));
    std::memset(static_cast<void*>(root_->alloc_log), 0, sizeof(root_->alloc_log));
    PersistFence(root_->alloc_log, sizeof(root_->alloc_log));
    root_->magic = kArtMagic;
    PersistFence(&root_->magic, sizeof(uint64_t));
  }
}

// ---------------------------------------------------------------------------
// Allocation-log plumbing (leak prevention, §5.1(3))
// ---------------------------------------------------------------------------

int PdlArt::AcquireLogSlot(const Key& key) {
  // Per-(thread, trie) cursor so independent tries do not share scan positions.
  uint64_t& start = ThreadContext::Current().InstanceWord(this);
  for (size_t i = 0; i < kArtAllocLogSlots; ++i) {
    size_t idx = (start + i) % kArtAllocLogSlots;
    uint8_t expected = 0;
    if (log_busy_[idx].compare_exchange_strong(expected, 1, std::memory_order_acquire)) {
      start = idx + 1;
      ArtAllocLogEntry& e = root_->alloc_log[idx];
      e.blocks[0] = 0;
      e.blocks[1] = 0;
      e.key = key;
      PersistRange(&e, sizeof(e));
      e.state = 1;
      PersistFence(&e, sizeof(e));
      return static_cast<int>(idx);
    }
  }
  return -1;  // log exhausted; callers treat as OOM
}

void PdlArt::ReleaseLogSlot(int slot) {
  ArtAllocLogEntry& e = root_->alloc_log[slot];
  e.state = 0;
  PersistFence(&e.state, sizeof(e.state));
  log_busy_[slot].store(0, std::memory_order_release);
}

void* PdlArt::AllocBlock(int slot, int which, size_t size) {
  ArtAllocLogEntry& e = root_->alloc_log[slot];
  PPtr<uint64_t> dest = ToPPtr(&e.blocks[which]);
  PPtr<void> block = heap_->AllocTo(dest, size);
  return block.get();
}

ArtNode* PdlArt::NewInnerNode(int slot, int which, ArtNodeType type) {
  auto* n = static_cast<ArtNode*>(AllocBlock(slot, which, ArtNodeSize(type)));
  if (n == nullptr) {
    return nullptr;
  }
  n->type = type;
  n->count = 0;
  n->prefix_len = 0;
  return n;
}

uint64_t PdlArt::NewLeaf(int slot, int which, const Key& key, uint64_t value) {
  auto* l = static_cast<ArtLeaf*>(AllocBlock(slot, which, sizeof(ArtLeaf)));
  if (l == nullptr) {
    return 0;
  }
  l->key = key;
  l->value = value;
  PersistFence(l, sizeof(ArtLeaf));
  return ToPPtr(l).Cast<void>().raw | kArtLeafTag;
}

ArtNode* PdlArt::GrowCopy(int slot, int which, const ArtNode* n) {
  ArtNodeType bigger;
  switch (n->type) {
    case kArtN4:
      bigger = kArtN16;
      break;
    case kArtN16:
      bigger = kArtN48;
      break;
    case kArtN48:
      bigger = kArtN256;
      break;
    default:
      return nullptr;
  }
  ArtNode* d = NewInnerNode(slot, which, bigger);
  if (d == nullptr) {
    return nullptr;
  }
  d->prefix_len = n->prefix_len;
  std::memcpy(d->prefix, n->prefix, ArtNode::kMaxPrefix);
  ArtCopyEntries(n, d);
  return d;
}

ArtNode* PdlArt::ShrinkCopy(int slot, int which, const ArtNode* n) {
  ArtNodeType smaller;
  switch (n->type) {
    case kArtN16:
      smaller = kArtN4;
      break;
    case kArtN48:
      smaller = kArtN16;
      break;
    case kArtN256:
      smaller = kArtN48;
      break;
    default:
      return nullptr;
  }
  ArtNode* d = NewInnerNode(slot, which, smaller);
  if (d == nullptr) {
    return nullptr;
  }
  d->prefix_len = n->prefix_len;
  std::memcpy(d->prefix, n->prefix, ArtNode::kMaxPrefix);
  ArtCopyEntries(n, d);
  return d;
}

void PdlArt::RetireSubtreeNode(ArtNode* n) {
  EpochManager::Instance().Retire(ToPPtr(n).Cast<void>());
}

// ---------------------------------------------------------------------------
// Shared traversal helpers
// ---------------------------------------------------------------------------

namespace {

// Reads the key of some leaf under |node| to reconstruct prefix bytes that are
// not stored inline (prefix_len > kMaxPrefix). Returns false on a concurrent
// change (caller restarts).
bool LoadSubtreeKey(const ArtNode* node, uint64_t version, Key* out) {
  const ArtNode* cur = node;
  uint64_t cur_version = version;
  for (int hops = 0; hops < 64; ++hops) {
    uint8_t byte;
    uint64_t child = ArtMinChild(cur, &byte);
    if (!cur->lock.Validate(cur_version)) {
      return false;
    }
    if (child == 0) {
      return false;  // empty node mid-walk: racing structural change
    }
    if (ArtIsLeaf(child)) {
      const ArtLeaf* leaf = LeafOf(child);
      *out = leaf->key;
      return cur->lock.Validate(cur_version) && node->lock.Validate(version);
    }
    const ArtNode* next = NodeOf(child);
    uint64_t next_version = next->lock.ReadLock();
    if (!cur->lock.Validate(cur_version)) {
      return false;
    }
    cur = next;
    cur_version = next_version;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status PdlArt::Insert(const Key& key, uint64_t value) {
  bool existed = false;
  Status s = InsertImpl(key, value, /*upsert=*/true, &existed);
  if (s != Status::kOk) {
    return s;
  }
  return existed ? Status::kExists : Status::kOk;
}

Status PdlArt::InsertIfAbsent(const Key& key, uint64_t value) {
  bool existed = false;
  Status s = InsertImpl(key, value, /*upsert=*/false, &existed);
  if (s != Status::kOk) {
    return s;
  }
  return existed ? Status::kExists : Status::kOk;
}

Status PdlArt::InsertImpl(const Key& key, uint64_t value, bool upsert, bool* existed) {
  EpochGuard guard;
  Status result = Status::kOk;
  while (!InsertAttempt(key, value, upsert, existed, &result)) {
    restarts_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

bool PdlArt::InsertAttempt(const Key& key, uint64_t value, bool upsert, bool* existed,
                           Status* result) {
  ArtNode* parent = nullptr;
  uint64_t parent_version = 0;
  uint8_t parent_byte = 0;
  ArtNode* node = RootNode();
  uint64_t version = node->lock.ReadLock();
  uint32_t depth = 0;

  while (true) {
    AnnotateNodeVisit(node);
    // ---- prefix check (prefix is immutable) ----
    uint32_t plen = node->prefix_len;
    uint32_t stored = plen < ArtNode::kMaxPrefix ? plen : ArtNode::kMaxPrefix;
    uint32_t mismatch = stored;
    uint8_t existing_byte = 0;
    for (uint32_t i = 0; i < stored; ++i) {
      if (node->prefix[i] != key.At(depth + i)) {
        mismatch = i;
        existing_byte = node->prefix[i];
        break;
      }
    }
    bool have_mismatch = mismatch < stored;
    if (!have_mismatch && plen > stored) {
      // Reconstruct the unstored tail from any leaf in the subtree.
      Key probe;
      if (!LoadSubtreeKey(node, version, &probe)) {
        return false;
      }
      for (uint32_t i = stored; i < plen; ++i) {
        if (probe.At(depth + i) != key.At(depth + i)) {
          mismatch = i;
          existing_byte = probe.At(depth + i);
          have_mismatch = true;
          break;
        }
      }
    }
    if (!node->lock.Validate(version)) {
      return false;
    }

    if (have_mismatch) {
      // ---- prefix split (copy-on-write) ----
      assert(parent != nullptr && "root has no prefix");
      // Fetch a full key from the subtree: the trimmed copy's prefix bytes may
      // extend past what |node| stores inline and must be reconstructed.
      Key probe;
      if (!LoadSubtreeKey(node, version, &probe)) {
        return false;
      }
      if (!parent->lock.TryUpgrade(parent_version)) {
        return false;
      }
      if (!node->lock.TryUpgrade(version)) {
        parent->lock.WriteUnlock();
        return false;
      }
      int slot = AcquireLogSlot(key);
      if (slot < 0) {
        node->lock.WriteUnlock();
        parent->lock.WriteUnlock();
        *result = Status::kFull;
        return true;
      }
      // New inner N4 holding the common prefix [0, mismatch).
      auto* split = reinterpret_cast<ArtNode4*>(NewInnerNode(slot, 0, kArtN4));
      // Copy of |node| with its prefix trimmed past the mismatch byte.
      int slot2 = AcquireLogSlot(key);
      ArtNode* trimmed = nullptr;
      uint64_t leaf_raw = 0;
      if (split != nullptr && slot2 >= 0) {
        trimmed = NewInnerNode(slot2, 0, static_cast<ArtNodeType>(node->type));
        if (trimmed != nullptr) {
          std::memset(reinterpret_cast<char*>(trimmed) + sizeof(ArtNode), 0,
                      ArtNodeSize(node->type) - sizeof(ArtNode));
          trimmed->count = 0;
          trimmed->prefix_len = plen - mismatch - 1;
          uint32_t to_copy = trimmed->prefix_len < ArtNode::kMaxPrefix
                                 ? trimmed->prefix_len
                                 : ArtNode::kMaxPrefix;
          for (uint32_t j = 0; j < to_copy; ++j) {
            trimmed->prefix[j] = probe.At(depth + mismatch + 1 + j);
          }
          ArtCopyEntries(node, trimmed);
          leaf_raw = NewLeaf(slot2, 1, key, value);
        }
      }
      if (split == nullptr || trimmed == nullptr || leaf_raw == 0) {
        if (slot >= 0) {
          ReleaseLogSlot(slot);
        }
        if (slot2 >= 0) {
          ReleaseLogSlot(slot2);
        }
        node->lock.WriteUnlock();
        parent->lock.WriteUnlock();
        *result = Status::kFull;
        return true;
      }
      split->hdr.prefix_len = mismatch;
      std::memcpy(split->hdr.prefix, node->prefix,
                  mismatch < ArtNode::kMaxPrefix ? mismatch : ArtNode::kMaxPrefix);
      split->keys[0] = existing_byte;
      split->children[0] = ToPPtr(trimmed).Cast<void>().raw;
      split->keys[1] = key.At(depth + mismatch);
      split->children[1] = leaf_raw;
      split->hdr.count = 2;
      PersistRange(trimmed, ArtNodeSize(trimmed->type));
      PersistFence(split, sizeof(ArtNode4));
      // Linearization: swing the parent's child pointer.
      uint64_t* pslot = ArtChildSlot(parent, parent_byte);
      std::atomic_ref<uint64_t>(*pslot).store(ToPPtr(&split->hdr).Cast<void>().raw,
                                              std::memory_order_release);
      PersistFence(pslot, sizeof(uint64_t));
      ReleaseLogSlot(slot);
      ReleaseLogSlot(slot2);
      node->lock.WriteUnlock();
      parent->lock.WriteUnlock();
      RetireSubtreeNode(node);
      *result = Status::kOk;
      return true;
    }

    depth += plen;
    uint8_t b = key.At(depth);
    uint64_t child = ArtFindChild(node, b);
    if (!node->lock.Validate(version)) {
      return false;
    }

    if (child == 0) {
      // ---- add a leaf to this node ----
      bool full = node->count >= ArtNodeCapacity(node->type) && node->type != kArtN256;
      if (full) {
        if (parent == nullptr || !parent->lock.TryUpgrade(parent_version)) {
          return false;
        }
        if (!node->lock.TryUpgrade(version)) {
          parent->lock.WriteUnlock();
          return false;
        }
        int slot = AcquireLogSlot(key);
        ArtNode* bigger = slot >= 0 ? GrowCopy(slot, 0, node) : nullptr;
        uint64_t leaf_raw = bigger != nullptr ? NewLeaf(slot, 1, key, value) : 0;
        if (bigger == nullptr || leaf_raw == 0) {
          if (slot >= 0) {
            ReleaseLogSlot(slot);
          }
          node->lock.WriteUnlock();
          parent->lock.WriteUnlock();
          *result = Status::kFull;
          return true;
        }
        ArtAddChild(bigger, b, leaf_raw);
        PersistFence(bigger, ArtNodeSize(bigger->type));
        uint64_t* pslot = ArtChildSlot(parent, parent_byte);
        std::atomic_ref<uint64_t>(*pslot).store(ToPPtr(bigger).Cast<void>().raw,
                                                std::memory_order_release);
        PersistFence(pslot, sizeof(uint64_t));
        ReleaseLogSlot(slot);
        node->lock.WriteUnlock();
        parent->lock.WriteUnlock();
        RetireSubtreeNode(node);
        *result = Status::kOk;
        return true;
      }
      if (!node->lock.TryUpgrade(version)) {
        return false;
      }
      int slot = AcquireLogSlot(key);
      uint64_t leaf_raw = slot >= 0 ? NewLeaf(slot, 0, key, value) : 0;
      if (leaf_raw == 0) {
        if (slot >= 0) {
          ReleaseLogSlot(slot);
        }
        node->lock.WriteUnlock();
        *result = Status::kFull;
        return true;
      }
      ArtAddChild(node, b, leaf_raw);
      ReleaseLogSlot(slot);
      node->lock.WriteUnlock();
      *result = Status::kOk;
      return true;
    }

    if (ArtIsLeaf(child)) {
      ArtLeaf* leaf = LeafOf(child);
      AnnotateLeafVisit(leaf);
      Key leaf_key = leaf->key;
      if (!node->lock.Validate(version)) {
        return false;
      }
      if (leaf_key == key) {
        *existed = true;
        if (!upsert) {
          *result = Status::kOk;
          return true;
        }
        if (!node->lock.TryUpgrade(version)) {
          return false;
        }
        // Out-of-place update, like the paper's P-ART/RECIPE lineage: a fresh
        // leaf record per update -- one NVM allocation every time (GA3; this
        // cost is exactly what Figures 3/9/10 charge PDL-ART for).
        int slot = AcquireLogSlot(key);
        uint64_t fresh = slot >= 0 ? NewLeaf(slot, 0, key, value) : 0;
        if (fresh == 0) {
          if (slot >= 0) {
            ReleaseLogSlot(slot);
          }
          node->lock.WriteUnlock();
          *result = Status::kFull;
          return true;
        }
        uint64_t* cslot = ArtChildSlot(node, b);
        std::atomic_ref<uint64_t>(*cslot).store(fresh, std::memory_order_release);
        PersistFence(cslot, sizeof(uint64_t));
        ReleaseLogSlot(slot);
        node->lock.WriteUnlock();
        EpochManager::Instance().Retire(PPtr<void>(ArtUntag(child)));
        *result = Status::kOk;
        return true;
      }
      // ---- leaf split: push both keys below a new N4 ----
      uint32_t i = depth + 1;
      while (i < Key::kMaxLen && key.At(i) == leaf_key.At(i)) {
        ++i;
      }
      assert(i < Key::kMaxLen && "distinct keys must diverge");
      if (!node->lock.TryUpgrade(version)) {
        return false;
      }
      int slot = AcquireLogSlot(key);
      auto* n4 = slot >= 0 ? reinterpret_cast<ArtNode4*>(NewInnerNode(slot, 0, kArtN4))
                           : nullptr;
      uint64_t new_leaf = n4 != nullptr ? NewLeaf(slot, 1, key, value) : 0;
      if (n4 == nullptr || new_leaf == 0) {
        if (slot >= 0) {
          ReleaseLogSlot(slot);
        }
        node->lock.WriteUnlock();
        *result = Status::kFull;
        return true;
      }
      n4->hdr.prefix_len = i - (depth + 1);
      uint32_t to_copy = n4->hdr.prefix_len < ArtNode::kMaxPrefix ? n4->hdr.prefix_len
                                                                  : ArtNode::kMaxPrefix;
      for (uint32_t j = 0; j < to_copy; ++j) {
        n4->hdr.prefix[j] = key.At(depth + 1 + j);
      }
      n4->keys[0] = leaf_key.At(i);
      n4->children[0] = child;
      n4->keys[1] = key.At(i);
      n4->children[1] = new_leaf;
      n4->hdr.count = 2;
      PersistFence(n4, sizeof(ArtNode4));
      uint64_t* cslot = ArtChildSlot(node, b);
      std::atomic_ref<uint64_t>(*cslot).store(ToPPtr(&n4->hdr).Cast<void>().raw,
                                              std::memory_order_release);
      PersistFence(cslot, sizeof(uint64_t));
      ReleaseLogSlot(slot);
      node->lock.WriteUnlock();
      *result = Status::kOk;
      return true;
    }

    // ---- descend (hand-over-hand validation) ----
    ArtNode* next = NodeOf(child);
    uint64_t next_version = next->lock.ReadLock();
    if (!node->lock.Validate(version)) {
      return false;
    }
    parent = node;
    parent_version = version;
    parent_byte = b;
    node = next;
    version = next_version;
    depth += 1;
  }
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

Status PdlArt::Lookup(const Key& key, uint64_t* value) const {
  EpochGuard guard;
  while (true) {
    ArtNode* node = RootNode();
    uint64_t version = node->lock.ReadLock();
    uint32_t depth = 0;
    bool restart = false;
    while (true) {
      AnnotateNodeVisit(node);
      uint32_t plen = node->prefix_len;
      uint32_t stored = plen < ArtNode::kMaxPrefix ? plen : ArtNode::kMaxPrefix;
      bool mismatch = false;
      for (uint32_t i = 0; i < stored; ++i) {
        if (node->prefix[i] != key.At(depth + i)) {
          mismatch = true;
          break;
        }
      }
      if (!node->lock.Validate(version)) {
        restart = true;
        break;
      }
      if (mismatch) {
        return Status::kNotFound;
      }
      depth += plen;  // bytes beyond |stored| are verified at the leaf
      uint8_t b = key.At(depth);
      uint64_t child = ArtFindChild(node, b);
      if (!node->lock.Validate(version)) {
        restart = true;
        break;
      }
      if (child == 0) {
        return Status::kNotFound;
      }
      if (ArtIsLeaf(child)) {
        ArtLeaf* leaf = LeafOf(child);
        AnnotateLeafVisit(leaf);
        Key leaf_key = leaf->key;
        uint64_t v =
            std::atomic_ref<uint64_t>(leaf->value).load(std::memory_order_acquire);
        if (!node->lock.Validate(version)) {
          restart = true;
          break;
        }
        if (leaf_key != key) {
          return Status::kNotFound;
        }
        if (value != nullptr) {
          *value = v;
        }
        return Status::kOk;
      }
      ArtNode* next = NodeOf(child);
      uint64_t next_version = next->lock.ReadLock();
      if (!node->lock.Validate(version)) {
        restart = true;
        break;
      }
      node = next;
      version = next_version;
      depth += 1;
    }
    if (restart) {
      restarts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Remove
// ---------------------------------------------------------------------------

Status PdlArt::Remove(const Key& key) {
  EpochGuard guard;
  Status result = Status::kOk;
  while (!RemoveAttempt(key, &result)) {
    restarts_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

bool PdlArt::RemoveAttempt(const Key& key, Status* result) {
  ArtNode* parent = nullptr;
  uint64_t parent_version = 0;
  uint8_t parent_byte = 0;
  ArtNode* node = RootNode();
  uint64_t version = node->lock.ReadLock();
  uint32_t depth = 0;

  while (true) {
    AnnotateNodeVisit(node);
    uint32_t plen = node->prefix_len;
    uint32_t stored = plen < ArtNode::kMaxPrefix ? plen : ArtNode::kMaxPrefix;
    bool mismatch = false;
    for (uint32_t i = 0; i < stored; ++i) {
      if (node->prefix[i] != key.At(depth + i)) {
        mismatch = true;
        break;
      }
    }
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (mismatch) {
      *result = Status::kNotFound;
      return true;
    }
    depth += plen;
    uint8_t b = key.At(depth);
    uint64_t child = ArtFindChild(node, b);
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (child == 0) {
      *result = Status::kNotFound;
      return true;
    }
    if (ArtIsLeaf(child)) {
      ArtLeaf* leaf = LeafOf(child);
      Key leaf_key = leaf->key;
      if (!node->lock.Validate(version)) {
        return false;
      }
      if (leaf_key != key) {
        *result = Status::kNotFound;
        return true;
      }
      // Shrink to a smaller node type when occupancy drops low enough.
      uint16_t cnt = node->count;
      bool shrink = parent != nullptr &&
                    ((node->type == kArtN16 && cnt - 1 <= 3) ||
                     (node->type == kArtN48 && cnt - 1 <= 12) ||
                     (node->type == kArtN256 && cnt - 1 <= 40));
      if (shrink) {
        if (!parent->lock.TryUpgrade(parent_version)) {
          return false;
        }
        if (!node->lock.TryUpgrade(version)) {
          parent->lock.WriteUnlock();
          return false;
        }
        int slot = AcquireLogSlot(key);
        ArtNode* smaller = slot >= 0 ? ShrinkCopy(slot, 0, node) : nullptr;
        if (smaller == nullptr) {
          // Fall back to the in-place removal below.
          if (slot >= 0) {
            ReleaseLogSlot(slot);
          }
          ArtRemoveChild(node, b);
          node->lock.WriteUnlock();
          parent->lock.WriteUnlock();
          EpochManager::Instance().Retire(PPtr<void>(ArtUntag(child)));
          *result = Status::kOk;
          return true;
        }
        ArtRemoveChild(smaller, b);
        PersistFence(smaller, ArtNodeSize(smaller->type));
        uint64_t* pslot = ArtChildSlot(parent, parent_byte);
        std::atomic_ref<uint64_t>(*pslot).store(ToPPtr(smaller).Cast<void>().raw,
                                                std::memory_order_release);
        PersistFence(pslot, sizeof(uint64_t));
        ReleaseLogSlot(slot);
        node->lock.WriteUnlock();
        parent->lock.WriteUnlock();
        RetireSubtreeNode(node);
        EpochManager::Instance().Retire(PPtr<void>(ArtUntag(child)));
        *result = Status::kOk;
        return true;
      }
      if (!node->lock.TryUpgrade(version)) {
        return false;
      }
      ArtRemoveChild(node, b);
      node->lock.WriteUnlock();
      EpochManager::Instance().Retire(PPtr<void>(ArtUntag(child)));
      *result = Status::kOk;
      return true;
    }
    ArtNode* next = NodeOf(child);
    uint64_t next_version = next->lock.ReadLock();
    if (!node->lock.Validate(version)) {
      return false;
    }
    parent = node;
    parent_version = version;
    parent_byte = b;
    node = next;
    version = next_version;
    depth += 1;
  }
}

// ---------------------------------------------------------------------------
// Floor lookup (greatest key <= target) -- used by PACTree's search layer
// ---------------------------------------------------------------------------

bool PdlArt::SubtreeMax(uint64_t raw, Key* found, uint64_t* value, bool* ok) const {
  // Returns false on concurrency restart; *ok=false when the subtree is empty.
  for (int hops = 0; hops < 64; ++hops) {
    if (ArtIsLeaf(raw)) {
      ArtLeaf* leaf = LeafOf(raw);
      AnnotateLeafVisit(leaf);
      *found = leaf->key;
      if (value != nullptr) {
        *value = std::atomic_ref<uint64_t>(leaf->value).load(std::memory_order_acquire);
      }
      *ok = true;
      return true;
    }
    ArtNode* node = NodeOf(raw);
    uint64_t version = node->lock.ReadLock();
    AnnotateNodeVisit(node);
    uint8_t byte;
    uint64_t child = ArtMaxChild(node, &byte);
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (child == 0) {
      *ok = false;
      return true;
    }
    raw = child;
  }
  return false;
}

Status PdlArt::LookupFloor(const Key& key, Key* found, uint64_t* value) const {
  EpochGuard guard;
  return LookupFloorNoGuard(key, found, value);
}

Status PdlArt::LookupFloorNoGuard(const Key& key, Key* found, uint64_t* value) const {
  Status result = Status::kNotFound;
  while (!FloorAttempt(key, found, value, &result)) {
    restarts_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

void PdlArt::PrefetchFloorPath(const Key& key, int max_levels) const {
  // Advisory only: no ReadLock, no Validate. Prefixes are immutable after
  // construction and child slots are 8-byte valid-or-null words, so every
  // pointer this walk chases is a node that is (or recently was) reachable;
  // the epoch guard the caller holds keeps retired nodes mapped. A racing
  // writer can at worst send the walk down a stale path, warming lines the
  // validated walk will not touch.
  ArtNode* node = RootNode();
  uint32_t depth = 0;
  for (int level = 0; level < max_levels && node != nullptr; ++level) {
    AnnotateNvmPrefetch(node, 128);
    uint32_t plen = node->prefix_len;
    depth += plen;
    if (plen > Key::kMaxLen || depth >= Key::kMaxLen) {
      return;
    }
    uint64_t child = ArtFindChild(node, key.At(depth));
    if (child == 0) {
      return;
    }
    if (ArtIsLeaf(child)) {
      AnnotateNvmPrefetch(LeafOf(child), sizeof(ArtLeaf));
      return;
    }
    node = NodeOf(child);
    depth += 1;
  }
}

bool PdlArt::FloorAttempt(const Key& key, Key* found, uint64_t* value,
                          Status* result) const {
  struct Frame {
    ArtNode* node;
    uint64_t version;
    uint32_t depth;   // depth at node entry (before prefix)
    uint8_t byte;     // branch byte taken downward
  };
  Frame stack[64];
  int top = 0;

  ArtNode* node = RootNode();
  uint64_t version = node->lock.ReadLock();
  uint32_t depth = 0;

  // Phase 1: descend along the key, recording the path.
  while (true) {
    AnnotateNodeVisit(node);
    uint32_t plen = node->prefix_len;
    uint32_t stored = plen < ArtNode::kMaxPrefix ? plen : ArtNode::kMaxPrefix;
    int cmp = 0;
    for (uint32_t i = 0; i < stored && cmp == 0; ++i) {
      uint8_t kb = key.At(depth + i);
      if (node->prefix[i] != kb) {
        cmp = node->prefix[i] < kb ? -1 : 1;
      }
    }
    if (cmp == 0 && plen > stored) {
      Key probe;
      if (!LoadSubtreeKey(node, version, &probe)) {
        return false;
      }
      for (uint32_t i = stored; i < plen && cmp == 0; ++i) {
        uint8_t kb = key.At(depth + i);
        if (probe.At(depth + i) != kb) {
          cmp = probe.At(depth + i) < kb ? -1 : 1;
        }
      }
    }
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (cmp < 0) {
      // Entire subtree < key: its max is the floor.
      bool ok = false;
      if (!SubtreeMax(ToPPtr(node).Cast<void>().raw, found, value, &ok)) {
        return false;
      }
      if (ok) {
        *result = Status::kOk;
        return true;
      }
      break;  // empty subtree: backtrack
    }
    if (cmp > 0) {
      break;  // entire subtree > key: backtrack to find a left sibling
    }
    depth += plen;
    uint8_t b = key.At(depth);
    uint64_t child = ArtFindChild(node, b);
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (child != 0 && ArtIsLeaf(child)) {
      ArtLeaf* leaf = LeafOf(child);
      AnnotateLeafVisit(leaf);
      Key leaf_key = leaf->key;
      uint64_t v = std::atomic_ref<uint64_t>(leaf->value).load(std::memory_order_acquire);
      if (!node->lock.Validate(version)) {
        return false;
      }
      if (leaf_key <= key) {
        *found = leaf_key;
        if (value != nullptr) {
          *value = v;
        }
        *result = Status::kOk;
        return true;
      }
      // Leaf > key: fall through to the left-sibling search at this node.
      stack[top++] = {node, version, depth, b};
      break;
    }
    if (child == 0) {
      stack[top++] = {node, version, depth, b};
      break;
    }
    ArtNode* next = NodeOf(child);
    uint64_t next_version = next->lock.ReadLock();
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (top >= 63) {
      return false;  // defensive; depth is bounded by key length
    }
    stack[top++] = {node, version, depth, b};
    node = next;
    version = next_version;
    depth += 1;
  }

  // Phase 2: walk the recorded path upward looking for a smaller branch.
  for (int i = top - 1; i >= 0; --i) {
    Frame& f = stack[i];
    uint8_t byte;
    uint64_t left = ArtMaxChildBelow(f.node, f.byte, &byte);
    if (!f.node->lock.Validate(f.version)) {
      return false;
    }
    if (left != 0) {
      bool ok = false;
      if (!SubtreeMax(left, found, value, &ok)) {
        return false;
      }
      if (ok) {
        *result = Status::kOk;
        return true;
      }
    }
  }
  *result = Status::kNotFound;
  return true;
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

size_t PdlArt::Scan(const Key& start, size_t limit,
                    std::vector<std::pair<Key, uint64_t>>* out) const {
  EpochGuard guard;
  while (true) {
    out->clear();
    if (ScanAttempt(start, limit, out)) {
      return out->size();
    }
    restarts_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool PdlArt::ScanAttempt(const Key& start, size_t limit,
                         std::vector<std::pair<Key, uint64_t>>* out) const {
  return ScanNode(root_->root_raw, 0, start, /*bounded=*/true, limit, out);
}

bool PdlArt::ScanNode(uint64_t raw, uint32_t depth, const Key& start, bool bounded,
                      size_t limit, std::vector<std::pair<Key, uint64_t>>* out) const {
  if (out->size() >= limit) {
    return true;
  }
  if (ArtIsLeaf(raw)) {
    ArtLeaf* leaf = LeafOf(raw);
    AnnotateLeafVisit(leaf);
    Key k = leaf->key;
    uint64_t v = std::atomic_ref<uint64_t>(leaf->value).load(std::memory_order_acquire);
    if (!bounded || k >= start) {
      out->emplace_back(k, v);
    }
    return true;
  }
  ArtNode* node = NodeOf(raw);
  uint64_t version = node->lock.ReadLock();
  AnnotateNodeVisit(node);

  uint32_t plen = node->prefix_len;
  bool sub_bounded = bounded;
  if (bounded && plen > 0) {
    uint32_t stored = plen < ArtNode::kMaxPrefix ? plen : ArtNode::kMaxPrefix;
    int cmp = 0;
    for (uint32_t i = 0; i < stored && cmp == 0; ++i) {
      uint8_t sb = start.At(depth + i);
      if (node->prefix[i] != sb) {
        cmp = node->prefix[i] < sb ? -1 : 1;
      }
    }
    if (cmp == 0 && plen > stored) {
      Key probe;
      if (!LoadSubtreeKey(node, version, &probe)) {
        return false;
      }
      for (uint32_t i = stored; i < plen && cmp == 0; ++i) {
        uint8_t sb = start.At(depth + i);
        if (probe.At(depth + i) != sb) {
          cmp = probe.At(depth + i) < sb ? -1 : 1;
        }
      }
    }
    if (!node->lock.Validate(version)) {
      return false;
    }
    if (cmp < 0) {
      return true;  // subtree entirely < start
    }
    if (cmp > 0) {
      sub_bounded = false;  // subtree entirely > start: take everything
    }
  }
  depth += plen;

  uint8_t bytes[256];
  uint64_t children[256];
  int cnt = ArtCollectSorted(node, bytes, children);
  if (!node->lock.Validate(version)) {
    return false;
  }
  uint8_t start_byte = sub_bounded ? start.At(depth) : 0;
  for (int i = 0; i < cnt && out->size() < limit; ++i) {
    if (sub_bounded && bytes[i] < start_byte) {
      continue;
    }
    bool child_bounded = sub_bounded && bytes[i] == start_byte;
    if (!ScanNode(children[i], depth + 1, start, child_bounded, limit, out)) {
      return false;
    }
    if (!node->lock.Validate(version)) {
      return false;
    }
  }
  return true;
}

void PdlArt::ForEach(const std::function<void(const Key&, uint64_t)>& fn) const {
  std::vector<std::pair<Key, uint64_t>> all;
  Scan(Key::Min(), ~size_t{0} >> 1, &all);
  for (const auto& [k, v] : all) {
    fn(k, v);
  }
}

uint64_t PdlArt::Size() const {
  uint64_t n = 0;
  ForEach([&](const Key&, uint64_t) { n++; });
  return n;
}

// ---------------------------------------------------------------------------
// Recovery (allocation-log GC)
// ---------------------------------------------------------------------------

bool PdlArt::IsReachableOnPath(uint64_t block_raw, const Key& key) const {
  uint64_t raw = root_->root_raw;
  uint32_t depth = 0;
  for (int hops = 0; hops < 64; ++hops) {
    if (ArtUntag(raw) == block_raw) {
      return true;
    }
    if (ArtIsLeaf(raw)) {
      return false;
    }
    ArtNode* node = NodeOf(raw);
    depth += node->prefix_len;
    if (depth >= Key::kMaxLen) {
      return false;
    }
    uint64_t child = ArtFindChild(node, key.At(depth));
    if (child == 0) {
      return false;
    }
    raw = child;
    depth += 1;
  }
  return false;
}

void PdlArt::Recover() {
  for (size_t i = 0; i < kArtAllocLogSlots; ++i) {
    ArtAllocLogEntry& e = root_->alloc_log[i];
    if (e.state == 0) {
      continue;
    }
    for (uint64_t block : e.blocks) {
      if (block != 0 && !IsReachableOnPath(ArtUntag(block), e.key)) {
        PmemFree(PPtr<void>(ArtUntag(block)));
      }
    }
    e.state = 0;
    PersistFence(&e.state, sizeof(e.state));
  }
}

}  // namespace pactree
