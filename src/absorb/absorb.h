// DRAM write-absorption buffer (the "batched write absorption" service the
// ROADMAP names; PRISM-style, see PAPERS.md "Evaluating Persistent Memory
// Range Indexes: Part Two").
//
// Motivation: at XPLine (256 B) media granularity every unbatched index write
// pays one-or-more full-line media writes for a few bytes of payload. The
// AbsorbBuffer takes acknowledged writes off that path: an Insert/Update/
// Remove appends one checksummed 128 B entry to a per-shard persistent op-log
// ring (ONE flush+fence; consecutive appends share an XPLine and combine in
// the XPBuffer window) and stages the op in a DRAM-resident sorted map. The
// op is durable -- and therefore acknowledgeable -- the moment its log entry
// is flushed, long before it reaches a data node. Per-shard drain
// BackgroundServices ("<name>/absorb/drain-<i>") later pull batches off the
// ring, sort them by key, and hand them to the index's AbsorbSink, which
// applies all ops targeting one data node under a single lock acquisition
// with coalesced slot flushes and a single bitmap publish.
//
// Sharding: a key's owning shard is hash(key) % shards (so Lookup consults
// exactly one shard); shard i's drain worker is pinned to logical NUMA node
// i % nodes and its ring is allocated from that node's log sub-pool, giving
// one absorb pipeline per NUMA node at the default shard count.
//
// Durability argument (DESIGN.md §6e):
//   * ack => logged: the append's PersistFence covers the whole entry
//     including its checksum; the checksum spans every meaningful word
//     (seq, type, value, all key words), so any torn commit -- including a
//     fresh entry torn over a recycled slot's stale words -- fails
//     validation and collapses to "op never happened", which is only ever
//     the fate of unacknowledged ops.
//   * drain idempotence: applying an upsert/tombstone to the data layer
//     twice converges (same value / already-absent), so recovery replays
//     every un-trimmed entry in per-shard seq order without tracking how far
//     a crashed drain got.
//   * log-trim ordering: a drained batch's entries are durably zeroed only
//     after the data-node application is durable (slot flushes fenced, then
//     the bitmap publish's own fence), so an acked op always survives in at
//     least one of {op log, data layer}.
#ifndef PACTREE_SRC_ABSORB_ABSORB_H_
#define PACTREE_SRC_ABSORB_ABSORB_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/checksum.h"
#include "src/common/key.h"
#include "src/common/status.h"

namespace pactree {

class BackgroundService;

inline constexpr uint32_t kAbsorbOpUpsert = 1;
inline constexpr uint32_t kAbsorbOpTombstone = 2;

// Ring sized so sizeof(AbsorbLogRing) = 128 + 1022*128 = 130944 fits the
// allocator's 128 KiB size class exactly.
inline constexpr size_t kAbsorbLogEntries = 1022;
inline constexpr size_t kAbsorbMaxShards = 8;

// One acked-but-not-yet-drained operation. The checksum covers every
// meaningful word *including seq*, so the whole entry publishes with a single
// PersistFence: recovery accepts an entry iff its checksum validates, and
// every torn-commit state (8 B failure atomicity) fails validation. A
// retired slot's first 32 bytes (seq/value/type/checksum) are durably zeroed
// at trim; the stale key bytes that remain can never validate against a
// zero checksum (LogChecksum is seeded nonzero).
struct AbsorbLogEntry {
  uint64_t seq;       // per-shard, strictly increasing; 0 = empty slot
  uint64_t value;     // upsert payload (0 for tombstones)
  uint32_t type;      // kAbsorbOpUpsert / kAbsorbOpTombstone; 0 = empty
  uint32_t pad0;
  uint64_t checksum;
  Key key;
  uint8_t pad1[sizeof(uint64_t) * 12 - sizeof(Key)];
};
static_assert(sizeof(AbsorbLogEntry) == 128, "two cache lines per entry");

inline uint64_t AbsorbEntryChecksum(const AbsorbLogEntry& e) {
  uint64_t kw[5] = {};
  std::memcpy(kw, &e.key, sizeof(Key));
  return LogChecksum({e.seq, e.value, e.type, kw[0], kw[1], kw[2], kw[3], kw[4]});
}

// Persistent per-shard ring. head/tail are element counters (mod the
// effective capacity), persisted lazily at trim time for observability only:
// recovery scans every slot and trusts checksums, never the counters.
struct AbsorbLogRing {
  uint64_t head;
  uint64_t tail;
  uint8_t pad[112];
  AbsorbLogEntry entries[kAbsorbLogEntries];
};
static_assert(sizeof(AbsorbLogRing) == 128 + 128 * kAbsorbLogEntries);

// A drained (or replayed) op in application order: batches handed to the sink
// are sorted by (key, seq), so same-key ops apply oldest-first and runs of
// keys owned by one data node are contiguous.
struct AbsorbOp {
  Key key;
  uint64_t value;
  uint64_t seq;
  uint32_t type;
};

// The index side of the drain pipeline. Implemented by PacTree.
class AbsorbSink {
 public:
  virtual ~AbsorbSink() = default;
  // Data-layer-only lookup (no absorb consult), used for presence checks
  // under the shard mutex.
  virtual Status AbsorbBaseLookup(const Key& key, uint64_t* value) const = 0;
  // Applies a (key, seq)-sorted batch to the data layer. Returns true when the
  // whole batch is durably applied: the caller trims the op log immediately
  // after. Returns false when a data-layer allocation failed mid-batch (pool
  // exhaustion); a durable *prefix* of the batch may have applied, which is
  // safe because re-application converges (upserts rewrite the same value,
  // tombstones find the key gone) -- the caller must keep every entry logged
  // and staged and retry the batch later.
  virtual bool AbsorbApply(const AbsorbOp* ops, size_t n) = 0;
};

struct AbsorbOptions {
  std::string name = "pactree";  // service-name prefix
  uint32_t shards = 1;           // clamped to [1, kAbsorbMaxShards]
  // Effective ring capacity (<= kAbsorbLogEntries); tests shrink it to force
  // writer-side backpressure with few ops.
  size_t ring_capacity = kAbsorbLogEntries;
  size_t drain_batch = 128;  // max ops pulled off a ring per pass
  bool async = true;         // false: no services; drains run inline
};

struct AbsorbStats {
  uint64_t staged = 0;          // acked ops appended to the log
  uint64_t drained = 0;         // ops applied to the data layer by drains
  uint64_t batches = 0;         // drain batches applied
  uint64_t lookup_hits = 0;     // lookups answered from staging
  uint64_t ring_full_waits = 0; // writer backpressure retries
  uint64_t replayed = 0;        // entries replayed by recovery
  uint64_t pending = 0;         // ops currently staged (all shards)
  uint64_t apply_full = 0;      // drain batches rejected by a full data layer
};

// What a staged key currently resolves to, for Scan's merge.
struct AbsorbPending {
  uint64_t value = 0;
  bool tombstone = false;
};

class AbsorbBuffer {
 public:
  AbsorbBuffer(AbsorbOptions opts, AbsorbSink* sink);
  ~AbsorbBuffer();  // stops services; pending ops stay in the rings

  AbsorbBuffer(const AbsorbBuffer&) = delete;
  AbsorbBuffer& operator=(const AbsorbBuffer&) = delete;

  // Ring plumbing (PacTree::Init attaches after the log heap maps, before
  // Replay/StartServices).
  void AttachRing(uint32_t shard, AbsorbLogRing* ring);

  // Recovery: replays every attached ring's valid entries through the sink in
  // per-shard seq order, then durably resets the rings. Single-threaded; call
  // before StartServices. Returns entries replayed (including entries of
  // shards whose application eventually succeeded after internal retries).
  //
  // When the sink rejects a shard's batch (data layer full) even after
  // retries, that shard's ring is left byte-for-byte intact -- it holds the
  // only durable copy of acked ops -- its volatile state reads as full (so a
  // stray append can never overwrite a frozen slot), and the surviving ops
  // are adopted into the *live* staging maps (keyed by this incarnation's
  // ShardOf) so lookups and scans still observe them. |complete| (may be
  // null) is set false in that case; the caller must fail writes fast
  // (degraded mode) and leave the rings for the next recovery.
  size_t ReplayAndReset(bool* complete = nullptr);

  // Registers the per-shard drain services (async mode only). Idempotent.
  void StartServices();
  void StopServices();
  const std::vector<BackgroundService*>& services() const { return services_; }

  uint32_t shards() const { return opts_.shards; }
  uint32_t ShardOf(const Key& key) const {
    // FNV-1a's low bits see only the low bits of each word (odd-multiply
    // carries propagate upward only), and big-endian integer keys vary in the
    // words' HIGH bytes -- a bare modulus would park every small int in one
    // shard. Fold the high bits down first (murmur3 finalizer step).
    uint64_t h = key.Hash();
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<uint32_t>(h % opts_.shards);
  }

  // --- front end (ack => the op's log entry is durable) --------------------
  Status Insert(const Key& key, uint64_t value);  // kOk fresh, kExists overwrite
  Status Update(const Key& key, uint64_t value);  // kNotFound when absent
  Status Remove(const Key& key);                  // kNotFound when absent

  enum class Hit { kMiss, kValue, kTombstone };
  // Consults the key's owning shard. kMiss => caller falls through to the
  // data layer.
  Hit Lookup(const Key& key, uint64_t* value) const;

  // Batched Lookup for the MultiGet pipeline: routes every key to its owning
  // shard first, then takes each involved shard's mutex ONCE and probes all
  // of that shard's keys under it. hits[i]/values[i] end up exactly as
  // Lookup(keys[i], &values[i]) would leave them (values[i] written only on
  // kValue). Returns the number of keys answered (kValue or kTombstone).
  size_t MultiLookup(std::span<const Key> keys, Hit* hits, uint64_t* values) const;

  // Snapshot of every pending op with key >= |start| across all shards, for
  // Scan's staging/data-layer merge.
  void CollectFrom(const Key& start, std::map<Key, AbsorbPending>* out) const;

  // --- drain side ----------------------------------------------------------
  // One drain round over shard |shard|; returns ops applied. A batch the sink
  // rejects (data layer full) applies nothing observable: no trim, no
  // un-stage, apply_full bumped, 0 returned.
  size_t Pass(uint32_t shard);
  // Blocks until every shard's ring is empty: CV drain barrier against live
  // services, inline passes otherwise. Gives up on a shard when consecutive
  // rounds make no head progress while the sink keeps rejecting batches
  // (permanently full data layer); the undrained ops remain durable in the
  // ring and staged in DRAM.
  void Drain();
  bool Drained() const;

  AbsorbStats Stats() const;

 private:
  struct Pending {
    uint64_t value;
    uint64_t seq;  // log seq of the newest staged op for this key
    bool tombstone;
  };

  struct Shard {
    mutable std::mutex mu;
    // Serializes whole drain passes. The service worker already guarantees
    // one pass at a time, but in sync mode several writers stuck in
    // WaitRingSpace can drain concurrently; overlapping passes could apply a
    // superseded value after the newer one. Lock order: drain_mu before mu.
    std::mutex drain_mu;
    std::map<Key, Pending> staging;
    AbsorbLogRing* ring = nullptr;
    uint64_t head = 0;      // volatile element counters; truth is the checksums
    uint64_t tail = 0;
    uint64_t next_seq = 1;
    // Incomplete replay froze this shard: the ring bytes are the acked ops'
    // only durable copy and must survive to the next recovery. Appends and
    // drain passes are refused; staging still serves reads.
    bool frozen = false;
  };

  // Presence of |key| as the shard (mutex held) + data layer see it.
  bool PresentLocked(const Shard& sh, const Key& key) const;
  // Blocks (dropping and re-taking |lock|) until the shard's ring has a free
  // slot: kicks the drain service when one is live, runs a pass inline
  // otherwise. Presence checks must run *after* this returns. Returns false
  // when the ring stays full while the sink keeps rejecting batches (data
  // layer exhausted): waiting longer cannot help, the caller returns kFull.
  bool WaitRingSpace(std::unique_lock<std::mutex>& lock, Shard& sh,
                     uint32_t shard_idx);
  // Appends one entry (single PersistFence) and stages it. Shard mutex held,
  // ring known non-full.
  void AppendLocked(Shard& sh, const Key& key, uint32_t type, uint64_t value);
  bool ShardDrained(uint32_t shard) const;

  AbsorbOptions opts_;
  AbsorbSink* sink_;
  std::unique_ptr<Shard[]> shards_;
  std::vector<BackgroundService*> services_;

  mutable std::atomic<uint64_t> st_staged_{0};
  mutable std::atomic<uint64_t> st_drained_{0};
  mutable std::atomic<uint64_t> st_batches_{0};
  mutable std::atomic<uint64_t> st_lookup_hits_{0};
  mutable std::atomic<uint64_t> st_ring_full_waits_{0};
  mutable std::atomic<uint64_t> st_replayed_{0};
  mutable std::atomic<uint64_t> st_apply_full_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_ABSORB_ABSORB_H_
