#include "src/absorb/absorb.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/failpoint.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/nvm/topology.h"
#include "src/runtime/maintenance.h"

namespace pactree {

AbsorbBuffer::AbsorbBuffer(AbsorbOptions opts, AbsorbSink* sink)
    : opts_(std::move(opts)), sink_(sink) {
  opts_.shards = std::max<uint32_t>(
      1, std::min<uint32_t>(opts_.shards, kAbsorbMaxShards));
  opts_.ring_capacity = std::max<size_t>(
      1, std::min<size_t>(opts_.ring_capacity, kAbsorbLogEntries));
  if (opts_.drain_batch == 0) {
    opts_.drain_batch = 1;
  }
  shards_ = std::make_unique<Shard[]>(opts_.shards);
}

AbsorbBuffer::~AbsorbBuffer() { StopServices(); }

void AbsorbBuffer::AttachRing(uint32_t shard, AbsorbLogRing* ring) {
  shards_[shard].ring = ring;
}

// ---------------------------------------------------------------------------
// Front end
// ---------------------------------------------------------------------------

bool AbsorbBuffer::PresentLocked(const Shard& sh, const Key& key) const {
  auto it = sh.staging.find(key);
  if (it != sh.staging.end()) {
    return !it->second.tombstone;
  }
  return sink_->AbsorbBaseLookup(key, nullptr) == Status::kOk;
}

bool AbsorbBuffer::WaitRingSpace(std::unique_lock<std::mutex>& lock, Shard& sh,
                                 uint32_t shard_idx) {
  uint64_t backoff_us = 1;
  // Fail point "absorb/ring_full": forces one backpressure round even with
  // ring space available (exercises the wait path with few ops).
  bool forced = PACTREE_FAILPOINT("absorb/ring_full");
  uint64_t full_at_entry = st_apply_full_.load(std::memory_order_relaxed);
  int stuck_rounds = 0;
  while (forced || sh.tail - sh.head >= opts_.ring_capacity) {
    if (sh.frozen) {
      return false;  // ring preserved for the next recovery; nothing drains it
    }
    forced = false;
    st_ring_full_waits_.fetch_add(1, std::memory_order_relaxed);
    uint64_t head_before = sh.head;
    BackgroundService* svc =
        shard_idx < services_.size() ? services_[shard_idx] : nullptr;
    lock.unlock();
    if (svc != nullptr && svc->running()) {
      svc->Notify();
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min<uint64_t>(backoff_us * 2, 1000);
    } else {
      Pass(shard_idx);  // no worker to wait for: the writer drains
    }
    lock.lock();
    // Escape hatch: a ring that stays full while the sink keeps rejecting
    // batches (data layer exhausted) can never make space; spinning here
    // would wedge the writer forever. Transient rejections recover -- head
    // progress resets the counter -- so only a persistently stuck ring bails.
    if (sh.head == head_before &&
        st_apply_full_.load(std::memory_order_relaxed) > full_at_entry) {
      if (++stuck_rounds >= 16) {
        return false;
      }
    } else if (sh.head != head_before) {
      stuck_rounds = 0;
    }
  }
  return true;
}

void AbsorbBuffer::AppendLocked(Shard& sh, const Key& key, uint32_t type,
                                uint64_t value) {
  AbsorbLogEntry& e = sh.ring->entries[sh.tail % opts_.ring_capacity];
  e.key = key;
  e.value = value;
  e.type = type;
  e.seq = sh.next_seq;
  e.checksum = AbsorbEntryChecksum(e);
  // The single durability point of the op: the checksum spans every word
  // written above, so a crash tearing this 128 B flush leaves a state that
  // recovery provably discards. Consecutive appends land in the same or the
  // adjacent XPLine and write-combine in the XPBuffer window.
  PersistFence(&e, sizeof(e));
  sh.staging[key] =
      Pending{value, sh.next_seq, /*tombstone=*/type == kAbsorbOpTombstone};
  sh.tail++;
  sh.next_seq++;
  st_staged_.fetch_add(1, std::memory_order_relaxed);
}

Status AbsorbBuffer::Insert(const Key& key, uint64_t value) {
  uint32_t idx = ShardOf(key);
  Shard& sh = shards_[idx];
  std::unique_lock<std::mutex> lock(sh.mu);
  if (!WaitRingSpace(lock, sh, idx)) {
    return Status::kFull;
  }
  bool present = PresentLocked(sh, key);
  AppendLocked(sh, key, kAbsorbOpUpsert, value);
  return present ? Status::kExists : Status::kOk;
}

Status AbsorbBuffer::Update(const Key& key, uint64_t value) {
  uint32_t idx = ShardOf(key);
  Shard& sh = shards_[idx];
  std::unique_lock<std::mutex> lock(sh.mu);
  if (!WaitRingSpace(lock, sh, idx)) {
    return Status::kFull;
  }
  if (!PresentLocked(sh, key)) {
    return Status::kNotFound;
  }
  AppendLocked(sh, key, kAbsorbOpUpsert, value);
  return Status::kOk;
}

Status AbsorbBuffer::Remove(const Key& key) {
  uint32_t idx = ShardOf(key);
  Shard& sh = shards_[idx];
  std::unique_lock<std::mutex> lock(sh.mu);
  if (!WaitRingSpace(lock, sh, idx)) {
    return Status::kFull;
  }
  if (!PresentLocked(sh, key)) {
    return Status::kNotFound;
  }
  AppendLocked(sh, key, kAbsorbOpTombstone, 0);
  return Status::kOk;
}

AbsorbBuffer::Hit AbsorbBuffer::Lookup(const Key& key, uint64_t* value) const {
  const Shard& sh = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.staging.find(key);
  if (it == sh.staging.end()) {
    return Hit::kMiss;
  }
  st_lookup_hits_.fetch_add(1, std::memory_order_relaxed);
  if (it->second.tombstone) {
    return Hit::kTombstone;
  }
  if (value != nullptr) {
    *value = it->second.value;
  }
  return Hit::kValue;
}

size_t AbsorbBuffer::MultiLookup(std::span<const Key> keys, Hit* hits,
                                 uint64_t* values) const {
  // Route once, then lock each involved shard once and probe all of its keys
  // under that single acquisition; with B keys over S shards this is
  // min(B, S) lock acquisitions instead of B.
  std::vector<uint32_t> route(keys.size());
  uint64_t involved = 0;  // bitmask; kAbsorbMaxShards <= 64
  for (size_t i = 0; i < keys.size(); ++i) {
    route[i] = ShardOf(keys[i]);
    involved |= 1ULL << route[i];
  }
  size_t answered = 0;
  uint64_t lookup_hits = 0;
  for (uint32_t s = 0; s < opts_.shards; ++s) {
    if ((involved & (1ULL << s)) == 0) {
      continue;
    }
    const Shard& sh = shards_[s];
    std::lock_guard<std::mutex> lock(sh.mu);
    for (size_t i = 0; i < keys.size(); ++i) {
      if (route[i] != s) {
        continue;
      }
      auto it = sh.staging.find(keys[i]);
      if (it == sh.staging.end()) {
        hits[i] = Hit::kMiss;
        continue;
      }
      lookup_hits++;
      answered++;
      if (it->second.tombstone) {
        hits[i] = Hit::kTombstone;
      } else {
        hits[i] = Hit::kValue;
        if (values != nullptr) {
          values[i] = it->second.value;
        }
      }
    }
  }
  if (lookup_hits != 0) {
    st_lookup_hits_.fetch_add(lookup_hits, std::memory_order_relaxed);
  }
  return answered;
}

void AbsorbBuffer::CollectFrom(const Key& start,
                               std::map<Key, AbsorbPending>* out) const {
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    const Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    for (auto it = sh.staging.lower_bound(start); it != sh.staging.end(); ++it) {
      (*out)[it->first] = AbsorbPending{it->second.value, it->second.tombstone};
    }
  }
}

// ---------------------------------------------------------------------------
// Drain side
// ---------------------------------------------------------------------------

size_t AbsorbBuffer::Pass(uint32_t shard) {
  Shard& sh = shards_[shard];
  std::lock_guard<std::mutex> drain_lock(sh.drain_mu);
  std::vector<AbsorbOp> batch;
  uint64_t from;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.frozen) {
      return 0;  // ring frozen by incomplete replay; see ReplayAndReset
    }
    uint64_t n = std::min<uint64_t>(sh.tail - sh.head, opts_.drain_batch);
    if (n == 0) {
      return 0;
    }
    from = sh.head;
    batch.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const AbsorbLogEntry& e =
          sh.ring->entries[(from + i) % opts_.ring_capacity];
      batch.push_back(AbsorbOp{e.key, e.value, e.seq, e.type});
    }
  }
  // Key-sorted application: runs targeting one data node become contiguous,
  // so the sink takes each node's lock once and publishes one bitmap per
  // node. Same-key ops keep seq order (last-writer-wins preserved).
  std::sort(batch.begin(), batch.end(), [](const AbsorbOp& a, const AbsorbOp& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  });
  if (!sink_->AbsorbApply(batch.data(), batch.size())) {
    // Data layer full mid-batch. A durable prefix may have applied, which is
    // fine (re-application converges); what must NOT happen is a trim or
    // un-stage -- the ops' ack durability still rests on the ring entries,
    // and the staged values still mask the partially-applied data layer.
    st_apply_full_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  // The application above is durable; now un-stage and trim the log.
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const AbsorbOp& op : batch) {
      auto it = sh.staging.find(op.key);
      if (it != sh.staging.end() && it->second.seq == op.seq) {
        sh.staging.erase(it);  // newest staged op for the key just drained
      }
    }
    for (uint64_t i = 0; i < batch.size(); ++i) {
      AbsorbLogEntry& e = sh.ring->entries[(from + i) % opts_.ring_capacity];
      // Durably retire: zero the checksummed head words in one line flush.
      // The stale key bytes beyond them can never validate again.
      e.seq = 0;
      e.value = 0;
      e.type = 0;
      e.pad0 = 0;
      e.checksum = 0;
      PersistRange(&e, 32);
    }
    Fence();
    // Counters move under mu: a Drain() barrier may observe the shard empty
    // the moment head reaches tail, and the stats it reads next must already
    // include this batch.
    st_drained_.fetch_add(batch.size(), std::memory_order_relaxed);
    st_batches_.fetch_add(1, std::memory_order_relaxed);
    sh.head = from + batch.size();
    sh.ring->head = sh.head;
    sh.ring->tail = sh.tail;
    PersistFence(sh.ring, 2 * sizeof(uint64_t));
  }
  return batch.size();
}

bool AbsorbBuffer::ShardDrained(uint32_t shard) const {
  const Shard& sh = shards_[shard];
  std::lock_guard<std::mutex> lock(sh.mu);
  // A frozen shard is as drained as it will ever be in this incarnation;
  // reporting false would wedge every drain barrier (including shutdown).
  return sh.frozen || sh.tail == sh.head;
}

bool AbsorbBuffer::Drained() const {
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    if (!ShardDrained(i)) {
      return false;
    }
  }
  return true;
}

void AbsorbBuffer::Drain() {
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    int stuck_rounds = 0;
    while (!ShardDrained(i)) {
      uint64_t full_before = st_apply_full_.load(std::memory_order_relaxed);
      uint64_t head_before;
      {
        std::lock_guard<std::mutex> lock(shards_[i].mu);
        head_before = shards_[i].head;
      }
      if (i < services_.size() && services_[i] != nullptr) {
        // CV barrier, additionally released when a pass fails on a full data
        // layer so the stuck check below runs instead of waiting forever.
        services_[i]->Drain([this, i, full_before] {
          return ShardDrained(i) ||
                 st_apply_full_.load(std::memory_order_relaxed) != full_before;
        });
      } else {
        Pass(i);
      }
      if (ShardDrained(i)) {
        break;
      }
      uint64_t head_after;
      {
        std::lock_guard<std::mutex> lock(shards_[i].mu);
        head_after = shards_[i].head;
      }
      if (head_after == head_before &&
          st_apply_full_.load(std::memory_order_relaxed) > full_before) {
        // No progress and the sink rejected again: the data layer is full.
        // Give up after a few rounds -- the undrained ops remain durable in
        // the ring and staged in DRAM, so nothing acked is lost.
        if (++stuck_rounds >= 3) {
          break;
        }
      } else {
        stuck_rounds = 0;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

size_t AbsorbBuffer::ReplayAndReset(bool* complete) {
  if (complete != nullptr) {
    *complete = true;
  }
  size_t replayed = 0;
  // Ops of shards whose application failed: preserved in their rings, adopted
  // into this incarnation's staging maps (below) so reads observe them.
  std::vector<AbsorbOp> stranded;
  for (uint32_t s = 0; s < opts_.shards; ++s) {
    Shard& sh = shards_[s];
    if (sh.ring == nullptr) {
      continue;
    }
    std::vector<AbsorbOp> ops;
    uint64_t max_seq = 0;
    // Scan every slot, not [head, tail]: the persisted counters may lag the
    // last acked append. Checksums are the only truth.
    for (size_t i = 0; i < kAbsorbLogEntries; ++i) {
      const AbsorbLogEntry& e = sh.ring->entries[i];
      if (e.type == 0 || e.checksum != AbsorbEntryChecksum(e)) {
        continue;  // empty, retired, or torn: the op was never acked
      }
      ops.push_back(AbsorbOp{e.key, e.value, e.seq, e.type});
      max_seq = std::max(max_seq, e.seq);
    }
    bool applied = true;
    if (!ops.empty()) {
      // Same (key, seq) order as a drain batch: replay is just a big drain.
      // Re-applying ops a crashed drain already applied converges (upserts
      // rewrite the same value, tombstones find the key already gone) --
      // which also makes the retry loop below safe.
      std::sort(ops.begin(), ops.end(), [](const AbsorbOp& a, const AbsorbOp& b) {
        return a.key != b.key ? a.key < b.key : a.seq < b.seq;
      });
      applied = false;
      for (int attempt = 0; attempt < 3 && !applied; ++attempt) {
        applied = sink_->AbsorbApply(ops.data(), ops.size());
      }
    }
    if (!applied) {
      // Data layer full: the ring is the acked ops' only complete durable
      // copy, so leave its bytes untouched for the next recovery. Volatile
      // counters read as "full" so a write slipping past the caller's
      // degraded-mode gate blocks/kFulls instead of overwriting a slot.
      if (complete != nullptr) {
        *complete = false;
      }
      st_apply_full_.fetch_add(1, std::memory_order_relaxed);
      sh.frozen = true;
      sh.head = 0;
      sh.tail = opts_.ring_capacity;
      sh.next_seq = max_seq + 1;
      stranded.insert(stranded.end(), ops.begin(), ops.end());
      continue;
    }
    replayed += ops.size();
    std::memset(static_cast<void*>(sh.ring), 0, sizeof(AbsorbLogRing));
    PersistFence(sh.ring, sizeof(AbsorbLogRing));
    sh.head = 0;
    sh.tail = 0;
    sh.next_seq = max_seq + 1;
  }
  if (!stranded.empty()) {
    // Stage by this incarnation's ShardOf (shard counts can differ across
    // runs) in ascending seq so the newest op wins per key, exactly like the
    // original appends would have staged.
    std::sort(stranded.begin(), stranded.end(),
              [](const AbsorbOp& a, const AbsorbOp& b) { return a.seq < b.seq; });
    for (const AbsorbOp& op : stranded) {
      Shard& home = shards_[ShardOf(op.key)];
      std::lock_guard<std::mutex> lock(home.mu);
      home.staging[op.key] =
          Pending{op.value, op.seq, op.type == kAbsorbOpTombstone};
    }
  }
  st_replayed_.fetch_add(replayed, std::memory_order_relaxed);
  return replayed;
}

// ---------------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------------

void AbsorbBuffer::StartServices() {
  if (!opts_.async || !services_.empty()) {
    return;
  }
  uint32_t nodes = std::max<uint32_t>(1, GlobalNvmConfig().numa_nodes);
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    BackgroundService::Options o;
    o.name = opts_.name + "/absorb/drain-" + std::to_string(i);
    int node = static_cast<int>(i % nodes);
    o.numa_node = node;
    o.thread_init = [node] { SetCurrentNumaNode(static_cast<uint32_t>(node)); };
    services_.push_back(MaintenanceRegistry::Instance().Register(
        std::move(o), [this, i] { return Pass(i); }));
  }
}

void AbsorbBuffer::StopServices() {
  for (BackgroundService* s : services_) {
    MaintenanceRegistry::Instance().Unregister(s);
  }
  services_.clear();
}

AbsorbStats AbsorbBuffer::Stats() const {
  AbsorbStats s;
  s.staged = st_staged_.load(std::memory_order_relaxed);
  s.drained = st_drained_.load(std::memory_order_relaxed);
  s.batches = st_batches_.load(std::memory_order_relaxed);
  s.lookup_hits = st_lookup_hits_.load(std::memory_order_relaxed);
  s.ring_full_waits = st_ring_full_waits_.load(std::memory_order_relaxed);
  s.replayed = st_replayed_.load(std::memory_order_relaxed);
  s.apply_full = st_apply_full_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < opts_.shards; ++i) {
    const Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    // A frozen shard's tail is pinned to "full"; its staged keys are the
    // meaningful pending count.
    s.pending += sh.frozen ? sh.staging.size() : sh.tail - sh.head;
  }
  return s;
}

}  // namespace pactree
