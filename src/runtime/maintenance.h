// Background-maintenance service runtime.
//
// Long-running index structures accumulate deferred work -- SMO-log replay,
// epoch reclamation, and (in the future) heap defragmentation, batched-write
// flushing, or shard rebalancing. This runtime makes that work a first-class,
// observable subsystem instead of ad-hoc `std::thread` loops buried in each
// index: a BackgroundService is a named worker with logical-NUMA-node
// affinity, an explicit lifecycle (start/stop/pause/resume), a
// condition-variable drain *barrier* (no caller-side polling), a shared
// exponential idle-backoff policy, and per-service statistics (passes, items
// applied, idle wakeups, and a per-pass apply-latency histogram). The
// process-wide MaintenanceRegistry owns every service so harnesses can
// enumerate and report them uniformly.
//
// A service's unit of execution is a *pass*: the registered callback performs
// one bounded round of maintenance and returns how many items it applied.
// Zero means "nothing to do" and triggers idle backoff; the worker doubles its
// sleep up to idle_max_us, and any Notify() (e.g. a writer hitting ring-full
// backpressure) wakes it immediately and resets the backoff.
//
// Thread model: exactly one worker thread runs passes while the service is
// live. Drain() on a stopped or paused service executes passes *inline* on
// the calling thread; a per-service pass mutex keeps worker and inline
// execution mutually exclusive, so pass callbacks never run concurrently with
// themselves. Pass callbacks may therefore assume single-threaded execution
// per service but must tolerate running on different OS threads over time.
//
// This file lives in src/runtime/ because it is (with the worker-spawn helper
// in workers.h) the only place in src/ allowed to construct std::thread --
// enforced by the `thread_lint` ctest (cmake/check_no_raw_threads.cmake).
#ifndef PACTREE_SRC_RUNTIME_MAINTENANCE_H_
#define PACTREE_SRC_RUNTIME_MAINTENANCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"

namespace pactree {

// Snapshot of one service's counters, taken under the service's stats lock.
struct MaintenanceStats {
  std::string name;
  int numa_node = -1;   // logical node the worker is pinned to; -1 = unpinned
  bool running = false;
  bool paused = false;
  uint64_t passes = 0;        // pass invocations (worker + inline drain)
  uint64_t items = 0;         // total items applied across passes
  uint64_t idle_wakeups = 0;  // idle sleeps that expired with no new work
  uint64_t notifies = 0;      // external Notify() kicks received
  uint64_t drains = 0;        // drain barriers served
  LatencyHistogram pass_latency;  // latency of passes that applied >= 1 item
};

class BackgroundService {
 public:
  struct Options {
    std::string name = "service";
    // Logical NUMA node for the worker thread; -1 leaves the thread unpinned.
    // The node is applied through |thread_init| when provided (callers route
    // it through src/nvm/topology so config clamping applies), else directly
    // on the worker's ThreadContext.
    int numa_node = -1;
    uint64_t idle_min_us = 100;
    uint64_t idle_max_us = 20000;
    // Runs on the worker thread before its first pass (NUMA placement, CPU
    // affinity). May be null.
    std::function<void()> thread_init;
  };

  // One maintenance round; returns the number of items applied (0 = idle).
  using PassFn = std::function<size_t()>;

  BackgroundService(Options opts, PassFn pass);
  ~BackgroundService();  // stops and joins the worker

  BackgroundService(const BackgroundService&) = delete;
  BackgroundService& operator=(const BackgroundService&) = delete;

  void Start();
  // Stops and joins the worker. Pending work stays pending (the backing log
  // is the source of truth); a later Start() or inline Drain() picks it up.
  // Safe against concurrent callers: the losing caller blocks until the
  // winner has finished joining, then returns.
  void Stop();

  // Pause is a barrier: when it returns, no pass is in flight and none will
  // start until Resume(). Idempotent.
  void Pause();
  void Resume();

  // Wakes the worker out of idle backoff (resets the backoff to idle_min_us).
  void Notify();

  // Blocks until |done| returns true, running passes as needed. On a live
  // service this is a condition-variable barrier: the caller re-evaluates
  // |done| after every completed pass, and the worker keeps a short cadence
  // (idle_min_us) while drainers wait -- progress may depend on a *peer*
  // service applying first, so the worker must not park. On a stopped or
  // paused service the caller executes the passes inline instead, backing
  // off between unproductive passes; that fallback still requires |done| to
  // eventually be satisfiable by this service's passes (or by concurrent
  // external progress) -- it never returns early.
  void Drain(const std::function<bool()>& done);

  // Executes one pass on the calling thread, mutually exclusive with the
  // worker. For synchronous fallback paths.
  size_t RunPassInline();

  MaintenanceStats Stats() const;
  const std::string& name() const { return opts_.name; }
  int numa_node() const { return opts_.numa_node; }
  bool running() const;
  bool paused() const;

 private:
  void WorkerLoop();
  size_t ExecutePass();

  Options opts_;
  PassFn pass_;
  std::thread thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_worker_;  // wakes the worker: notify/resume/stop/drain
  std::condition_variable cv_pass_;    // signals pass completion: drain barrier, pause barrier
  bool running_ = false;
  bool stop_ = false;
  bool stopping_ = false;  // a Stop() call is joining the worker (cleared last)
  bool paused_ = false;
  bool pass_in_flight_ = false;
  uint64_t kicks_ = 0;     // bumped by Notify/Resume/Stop/Drain to break idle waits
  uint64_t pass_gen_ = 0;  // completed-pass counter (drain barrier condition)
  int drain_waiters_ = 0;

  // Serializes pass execution between the worker and inline callers.
  std::mutex pass_mu_;

  std::atomic<uint64_t> st_passes_{0};
  std::atomic<uint64_t> st_items_{0};
  std::atomic<uint64_t> st_idle_wakeups_{0};
  std::atomic<uint64_t> st_notifies_{0};
  std::atomic<uint64_t> st_drains_{0};
  mutable std::mutex hist_mu_;
  LatencyHistogram pass_latency_;
};

// Process-wide directory of live background services. Owns the services;
// Register starts the worker, Unregister stops and destroys it. Subsystems
// keep the raw pointer for Notify/Pause/Drain while registered.
class MaintenanceRegistry {
 public:
  static MaintenanceRegistry& Instance();

  BackgroundService* Register(BackgroundService::Options opts,
                              BackgroundService::PassFn pass);
  void Unregister(BackgroundService* service);

  size_t ServiceCount() const;
  // Visits every registered service under the registry lock.
  void ForEach(const std::function<void(BackgroundService&)>& fn);
  // Stats for every service whose name starts with |prefix| ("" = all).
  std::vector<MaintenanceStats> StatsSnapshot(const std::string& prefix = "") const;

  MaintenanceRegistry(const MaintenanceRegistry&) = delete;
  MaintenanceRegistry& operator=(const MaintenanceRegistry&) = delete;

 private:
  MaintenanceRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BackgroundService>> services_;
};

}  // namespace pactree

#endif  // PACTREE_SRC_RUNTIME_MAINTENANCE_H_
