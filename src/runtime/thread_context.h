// Explicit per-thread runtime layer.
//
// Every piece of per-thread substrate state in this codebase -- the NVM media
// model and its XPLine read cache, per-pool traffic counters, the logical NUMA
// node assignment, the ShadowHeap staged-line buffer, the fault-injection
// window, the epoch-reclamation record, and the various allocator round-robin
// cursors -- lives in one ThreadContext object per thread, tracked by a
// process-wide ThreadRegistry.
//
// Why not scattered `thread_local` globals (the previous design)?
//   * Lifecycle: a `thread_local` either leaks past thread exit (the old
//     EpochManager kept every exited thread's record forever and scanned it on
//     every epoch advance) or vanishes silently under aggregation code that
//     still wants the totals. The registry makes the lifecycle explicit:
//     contexts register on first use, run per-subsystem retire hooks (e.g.
//     fold traffic counters into a process-wide "retired" accumulator) and
//     unlink from the registry when the thread exits.
//   * Multi-instance isolation: state that is logically per (thread, instance)
//     -- media-model caches, media traffic counters, allocation cursors --
//     was process-global per thread, so two heaps or two indexes in one
//     process shared and leaked counters across each other. The context keys
//     such state per instance (see ThreadSlot and InstanceWord).
//   * Enumeration: subsystems that must scan all threads (epoch min-scan,
//     stats aggregation) iterate the registry's live contexts instead of
//     maintaining their own never-shrinking side tables.
//
// The rule enforced by the `thread_local_lint` ctest: `thread_local` appears
// nowhere in src/ outside src/runtime/.
//
// Thread-safety model:
//   * A context's slots are created and mutated only by the owning thread;
//     slot *pointers* are published with release stores so other threads
//     (epoch scans, stats aggregation) may Peek them with acquire loads. The
//     pointed-to state must use atomics for any field a foreign thread reads.
//   * Registration/unregistration and ForEach serialize on the registry mutex,
//     so a context never disappears mid-scan.
#ifndef PACTREE_SRC_RUNTIME_THREAD_CONTEXT_H_
#define PACTREE_SRC_RUNTIME_THREAD_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pactree {

class ThreadContext;
class ThreadRegistry;

namespace runtime_internal {

// Type-erased per-slot behavior. `retire` (optional) runs at thread teardown
// before `destroy`, with the slot object and the user cookie -- subsystems use
// it to fold per-thread state into process-wide accumulators.
struct SlotVtable {
  void* (*create)() = nullptr;
  void (*destroy)(void*) = nullptr;
  void (*retire)(void*, void*) = nullptr;
  void* user = nullptr;
};

// Assigns a process-unique slot id (static-init safe; aborts past capacity).
size_t RegisterSlot(const SlotVtable& vt);

}  // namespace runtime_internal

// Fixed slot capacity: slots are one-per-subsystem (epoch, nvm stats, shadow,
// fault, ...), not one-per-instance, so a small constant bound suffices.
inline constexpr size_t kMaxThreadSlots = 16;

class ThreadContext {
 public:
  // The calling thread's context; registers it on first use. The context is
  // torn down automatically at thread exit (or explicitly via
  // ThreadRegistry::UnregisterCurrentThread).
  static ThreadContext& Current();
  // Like Current() but never registers; null when the thread has no context.
  static ThreadContext* CurrentIfRegistered();

  // Registration-order id (0 = first thread to register, typically main).
  // Deterministic input for round-robin striping decisions.
  uint32_t tid() const { return tid_; }

  // --- logical NUMA assignment (see src/nvm/topology.h for the policy) ----
  bool numa_assigned() const { return numa_assigned_.load(std::memory_order_acquire); }
  uint32_t numa_node() const { return numa_node_.load(std::memory_order_relaxed); }
  void AssignNumaNode(uint32_t node) {
    numa_node_.store(node, std::memory_order_relaxed);
    numa_assigned_.store(true, std::memory_order_release);
  }

  // --- per-(thread, instance) scratch ------------------------------------
  // A 64-bit word keyed by an instance pointer plus a small tag, created
  // zeroed on first use. Backs allocation cursors and round-robin hints that
  // were previously `thread_local` (and therefore wrongly shared across
  // instances). Owner-thread access only. The word is not purged when the
  // instance dies; users must treat its value as a hint (e.g. reduce it
  // modulo a capacity), never as an authoritative index.
  uint64_t& InstanceWord(const void* owner, uint32_t tag = 0);

  // --- typed slots (use ThreadSlot<T>, not these directly) ----------------
  void* PeekSlot(size_t id) const {
    return slots_[id].load(std::memory_order_acquire);
  }
  void* GetOrCreateSlot(size_t id);  // owning thread only

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

 private:
  friend class ThreadRegistry;
  ThreadContext() = default;
  ~ThreadContext();

  uint32_t tid_ = 0;
  std::atomic<uint32_t> numa_node_{0};
  std::atomic<bool> numa_assigned_{false};
  std::atomic<void*> slots_[kMaxThreadSlots] = {};
  std::unordered_map<uint64_t, uint64_t> words_;  // key = mix(owner, tag)
};

// One per-thread object of type T, lazily default-constructed in each thread's
// context and destroyed at thread teardown. Declare one ThreadSlot<T> at
// namespace scope per subsystem (ids are a process-wide resource).
template <typename T>
class ThreadSlot {
 public:
  using RetireFn = void (*)(T&);

  explicit ThreadSlot(RetireFn retire = nullptr) {
    runtime_internal::SlotVtable vt;
    vt.create = []() -> void* { return new T(); };
    vt.destroy = [](void* p) { delete static_cast<T*>(p); };
    vt.retire = [](void* p, void* user) {
      if (user != nullptr) {
        reinterpret_cast<RetireFn>(user)(*static_cast<T*>(p));
      }
    };
    vt.user = reinterpret_cast<void*>(retire);
    id_ = runtime_internal::RegisterSlot(vt);
  }

  // The calling thread's instance (created on first use).
  T& Get() const { return Get(ThreadContext::Current()); }
  T& Get(ThreadContext& ctx) const {
    return *static_cast<T*>(ctx.GetOrCreateSlot(id_));
  }
  // |ctx|'s instance if it exists, else null. Safe from foreign threads while
  // the context is pinned by a registry scan.
  T* Peek(ThreadContext& ctx) const { return static_cast<T*>(ctx.PeekSlot(id_)); }

 private:
  size_t id_;
};

class ThreadRegistry {
 public:
  static ThreadRegistry& Instance();

  // Live (registered, not yet torn down) contexts.
  size_t LiveCount() const { return live_count_.load(std::memory_order_acquire); }
  // Monotone count of registrations ever (tids are drawn from this).
  uint64_t TotalRegistered() const { return total_.load(std::memory_order_acquire); }

  // Visits every live context under the registry lock; contexts cannot be
  // torn down mid-scan. Do not register/unregister from |fn|.
  void ForEach(const std::function<void(ThreadContext&)>& fn);

  // Tears down the calling thread's context now: runs retire hooks, unlinks
  // it, frees it. The thread may keep running; its next ThreadContext::Current
  // registers a fresh context (new tid). For thread pools that recycle OS
  // threads across logical jobs.
  static void UnregisterCurrentThread();

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

 private:
  friend class ThreadContext;
  ThreadRegistry() = default;

  ThreadContext* RegisterCurrent();
  void Teardown(ThreadContext* ctx);

  mutable std::mutex mu_;
  std::vector<ThreadContext*> live_;
  std::atomic<size_t> live_count_{0};
  std::atomic<uint64_t> total_{0};
};

// RAII registration scope: registers the calling thread's context on entry
// (idempotent) and tears it down on exit. Worker-pool threads wrap each job in
// one of these so per-thread substrate state never outlives the job.
class ThreadContextScope {
 public:
  ThreadContextScope() { ThreadContext::Current(); }
  ~ThreadContextScope() { ThreadRegistry::UnregisterCurrentThread(); }
  ThreadContextScope(const ThreadContextScope&) = delete;
  ThreadContextScope& operator=(const ThreadContextScope&) = delete;
};

}  // namespace pactree

#endif  // PACTREE_SRC_RUNTIME_THREAD_CONTEXT_H_
