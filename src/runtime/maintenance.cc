#include "src/runtime/maintenance.h"

#include <algorithm>
#include <chrono>

#include "src/common/clock.h"
#include "src/runtime/thread_context.h"

namespace pactree {

BackgroundService::BackgroundService(Options opts, PassFn pass)
    : opts_(std::move(opts)), pass_(std::move(pass)) {
  if (opts_.idle_min_us == 0) {
    opts_.idle_min_us = 1;
  }
  if (opts_.idle_max_us < opts_.idle_min_us) {
    opts_.idle_max_us = opts_.idle_min_us;
  }
}

BackgroundService::~BackgroundService() { Stop(); }

void BackgroundService::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  // A Start() racing a Stop() must not observe the stopping worker as "still
  // running" and silently drop the restart.
  cv_pass_.wait(lock, [&] { return !stopping_; });
  if (running_) {
    return;
  }
  stop_ = false;
  paused_ = false;
  running_ = true;
  thread_ = std::thread([this] { WorkerLoop(); });
}

void BackgroundService::Stop() {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    // Another caller is already joining the worker; wait for it to finish so
    // Stop()'s postcondition (worker gone) holds for every caller, and never
    // join the same thread twice.
    cv_pass_.wait(lock, [&] { return !stopping_; });
    return;
  }
  if (!running_) {
    return;
  }
  stopping_ = true;
  stop_ = true;
  kicks_++;
  lock.unlock();
  cv_worker_.notify_all();
  cv_pass_.notify_all();
  thread_.join();
  lock.lock();
  running_ = false;
  stop_ = false;
  stopping_ = false;
  lock.unlock();
  // Wake concurrent Stop() callers and any Drain() waiter that raced the
  // stop_ reset above (its wait predicate also checks !running_).
  cv_pass_.notify_all();
}

void BackgroundService::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!running_ || stopping_) {
    // No worker to park (before Start(), after Stop(), or mid-Stop()): a
    // stale paused_ here would either be silently dropped by the next
    // Start() or mislead Drain() into its synchronous fallback. No-op.
    return;
  }
  if (paused_) {
    return;
  }
  paused_ = true;
  kicks_++;
  cv_worker_.notify_all();
  // Barrier: the worker sets pass_in_flight_ under mu_ before running a pass
  // and clears it after, so once this wait returns no pass is executing and
  // none will start (paused_ is already visible to the worker).
  cv_pass_.wait(lock, [&] { return !pass_in_flight_; });
}

void BackgroundService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!paused_) {
      return;
    }
    paused_ = false;
    kicks_++;
  }
  cv_worker_.notify_all();
}

void BackgroundService::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stopping_) {
      return;  // no worker to kick; don't count phantom notifies
    }
    kicks_++;
  }
  st_notifies_.fetch_add(1, std::memory_order_relaxed);
  cv_worker_.notify_all();
}

size_t BackgroundService::ExecutePass() {
  std::lock_guard<std::mutex> guard(pass_mu_);
  uint64_t t0 = NowNs();
  size_t n = pass_();
  st_passes_.fetch_add(1, std::memory_order_relaxed);
  if (n > 0) {
    st_items_.fetch_add(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> hl(hist_mu_);
    pass_latency_.Record(NowNs() - t0);
  }
  return n;
}

size_t BackgroundService::RunPassInline() { return ExecutePass(); }

void BackgroundService::WorkerLoop() {
  if (opts_.thread_init) {
    opts_.thread_init();
  } else if (opts_.numa_node >= 0) {
    ThreadContext::Current().AssignNumaNode(static_cast<uint32_t>(opts_.numa_node));
  }
  uint64_t idle_us = opts_.idle_min_us;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (paused_) {
      cv_pass_.notify_all();  // release any Pause() barrier waiter
      cv_worker_.wait(lock, [&] { return stop_ || !paused_; });
      continue;
    }
    uint64_t kicks_seen = kicks_;
    pass_in_flight_ = true;
    lock.unlock();
    size_t n = ExecutePass();
    lock.lock();
    pass_in_flight_ = false;
    pass_gen_++;
    cv_pass_.notify_all();
    if (n > 0) {
      idle_us = opts_.idle_min_us;
      continue;
    }
    if (drain_waiters_ > 0) {
      // A drain is pending but this pass applied nothing -- completion may
      // depend on a peer service's progress, so keep a short fixed cadence
      // instead of backing off (a kick breaks the wait immediately).
      cv_worker_.wait_for(lock, std::chrono::microseconds(opts_.idle_min_us),
                          [&] { return stop_ || paused_ || kicks_ != kicks_seen; });
      continue;
    }
    st_idle_wakeups_.fetch_add(1, std::memory_order_relaxed);
    cv_worker_.wait_for(lock, std::chrono::microseconds(idle_us), [&] {
      return stop_ || paused_ || kicks_ != kicks_seen || drain_waiters_ > 0;
    });
    idle_us = std::min(idle_us * 2, opts_.idle_max_us);
  }
  cv_pass_.notify_all();
}

void BackgroundService::Drain(const std::function<bool()>& done) {
  st_drains_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_ || !running_ || paused_) {
      // Synchronous fallback: the caller becomes the maintenance thread.
      // Back off between unproductive passes -- |done| may be waiting on a
      // peer's progress, and spinning at full speed would starve it.
      lock.unlock();
      uint64_t backoff_us = 0;
      while (!done()) {
        if (ExecutePass() > 0) {
          backoff_us = 0;
        } else if (backoff_us == 0) {
          std::this_thread::yield();
          backoff_us = 1;
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = std::min(backoff_us * 2, opts_.idle_max_us);
        }
      }
      return;
    }
    drain_waiters_++;
    kicks_++;
    cv_worker_.notify_all();
    uint64_t gen = pass_gen_;
    lock.unlock();
    bool finished = done();
    lock.lock();
    if (finished) {
      drain_waiters_--;
      return;
    }
    // Wait for the next completed pass or a lifecycle change, then re-check.
    // !running_ matters: a concurrent Stop() clears stop_ again after joining
    // the worker, and a waiter whose wakeup loses the mutex race to that
    // final critical section would otherwise re-sleep with no notifier left.
    cv_pass_.wait(lock, [&] {
      return pass_gen_ != gen || stop_ || !running_ || paused_;
    });
    drain_waiters_--;
  }
}

MaintenanceStats BackgroundService::Stats() const {
  MaintenanceStats s;
  s.name = opts_.name;
  s.numa_node = opts_.numa_node;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.running = running_ && !stop_;
    s.paused = paused_;
  }
  s.passes = st_passes_.load(std::memory_order_relaxed);
  s.items = st_items_.load(std::memory_order_relaxed);
  s.idle_wakeups = st_idle_wakeups_.load(std::memory_order_relaxed);
  s.notifies = st_notifies_.load(std::memory_order_relaxed);
  s.drains = st_drains_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> hl(hist_mu_);
    s.pass_latency = pass_latency_;
  }
  return s;
}

bool BackgroundService::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stop_;
}

bool BackgroundService::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

// ---------------------------------------------------------------------------
// MaintenanceRegistry
// ---------------------------------------------------------------------------

MaintenanceRegistry& MaintenanceRegistry::Instance() {
  // Leaked: services may be unregistered from static teardown paths.
  static MaintenanceRegistry* registry = new MaintenanceRegistry();
  return *registry;
}

BackgroundService* MaintenanceRegistry::Register(BackgroundService::Options opts,
                                                 BackgroundService::PassFn pass) {
  auto service = std::make_unique<BackgroundService>(std::move(opts), std::move(pass));
  BackgroundService* raw = service.get();
  raw->Start();
  std::lock_guard<std::mutex> lock(mu_);
  services_.push_back(std::move(service));
  return raw;
}

void MaintenanceRegistry::Unregister(BackgroundService* service) {
  std::unique_ptr<BackgroundService> owned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < services_.size(); ++i) {
      if (services_[i].get() == service) {
        owned = std::move(services_[i]);
        services_.erase(services_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  // Stop (via the destructor) outside the registry lock: the worker's last
  // pass may itself consult the registry.
  owned.reset();
}

size_t MaintenanceRegistry::ServiceCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return services_.size();
}

void MaintenanceRegistry::ForEach(const std::function<void(BackgroundService&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : services_) {
    fn(*s);
  }
}

std::vector<MaintenanceStats> MaintenanceRegistry::StatsSnapshot(
    const std::string& prefix) const {
  std::vector<MaintenanceStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : services_) {
    if (prefix.empty() || s->name().rfind(prefix, 0) == 0) {
      out.push_back(s->Stats());
    }
  }
  return out;
}

}  // namespace pactree
