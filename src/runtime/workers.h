// Worker-thread spawn/join helper.
//
// Alongside BackgroundService (maintenance.h), this is the only place in src/
// allowed to construct std::thread -- the `thread_lint` ctest
// (cmake/check_no_raw_threads.cmake) rejects raw thread construction anywhere
// else. Funneling thread creation through src/runtime/ keeps lifecycle
// concerns (ThreadContext registration and teardown, NUMA placement) in one
// layer instead of scattered across drivers.
#ifndef PACTREE_SRC_RUNTIME_WORKERS_H_
#define PACTREE_SRC_RUNTIME_WORKERS_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace pactree {

// Spawns |n| worker threads running body(index), then joins them all.
// |after_spawn| (optional) runs on the calling thread once every worker has
// been created -- drivers use it to release a start gate and stamp t0 so
// thread-creation cost stays out of the measured window. Each worker's
// ThreadContext is registered lazily on first use and torn down at thread
// exit, exactly as with a hand-rolled std::thread.
inline void RunWorkerThreads(uint32_t n, const std::function<void(uint32_t)>& body,
                             const std::function<void()>& after_spawn = nullptr) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    threads.emplace_back([&body, t] { body(t); });
  }
  if (after_spawn) {
    after_spawn();
  }
  for (auto& th : threads) {
    th.join();
  }
}

}  // namespace pactree

#endif  // PACTREE_SRC_RUNTIME_WORKERS_H_
