#include "src/runtime/thread_context.h"

#include <cstdio>
#include <cstdlib>

namespace pactree {
namespace {

// Slot vtables, indexed by slot id. Leaked (never destroyed): retire hooks run
// from thread_local destructors, including the main thread's at process exit,
// and must never observe a torn-down table.
struct SlotTable {
  runtime_internal::SlotVtable vtables[kMaxThreadSlots];
  std::atomic<size_t> count{0};
};

SlotTable& Slots() {
  static SlotTable* table = new SlotTable();
  return *table;
}

// Owns the calling thread's context pointer; its destructor is the automatic
// thread-exit teardown. This is the single `thread_local` of the codebase.
struct TlsHolder {
  ThreadContext* ctx = nullptr;
  ~TlsHolder() { ThreadRegistry::UnregisterCurrentThread(); }
};

thread_local TlsHolder t_holder;

inline uint64_t WordKey(const void* owner, uint32_t tag) {
  // Owners are heap pointers (>= 8-byte aligned), so the low bits are free to
  // carry the tag without colliding across owners.
  return (reinterpret_cast<uint64_t>(owner) << 8) | (tag & 0xff);
}

}  // namespace

namespace runtime_internal {

size_t RegisterSlot(const SlotVtable& vt) {
  SlotTable& t = Slots();
  size_t id = t.count.fetch_add(1, std::memory_order_acq_rel);
  if (id >= kMaxThreadSlots) {
    std::fprintf(stderr, "ThreadContext: slot capacity (%zu) exhausted\n",
                 kMaxThreadSlots);
    std::abort();
  }
  t.vtables[id] = vt;
  return id;
}

}  // namespace runtime_internal

// ---------------------------------------------------------------------------
// ThreadContext
// ---------------------------------------------------------------------------

ThreadContext& ThreadContext::Current() {
  ThreadContext* ctx = t_holder.ctx;
  if (ctx == nullptr) {
    ctx = ThreadRegistry::Instance().RegisterCurrent();
    t_holder.ctx = ctx;
  }
  return *ctx;
}

ThreadContext* ThreadContext::CurrentIfRegistered() { return t_holder.ctx; }

uint64_t& ThreadContext::InstanceWord(const void* owner, uint32_t tag) {
  return words_[WordKey(owner, tag)];
}

void* ThreadContext::GetOrCreateSlot(size_t id) {
  void* p = slots_[id].load(std::memory_order_relaxed);  // owner thread: no race
  if (p == nullptr) {
    p = Slots().vtables[id].create();
    // Release-publish so foreign Peek()ers see the fully constructed object.
    slots_[id].store(p, std::memory_order_release);
  }
  return p;
}

ThreadContext::~ThreadContext() {
  SlotTable& t = Slots();
  size_t n = t.count.load(std::memory_order_acquire);
  for (size_t id = 0; id < n && id < kMaxThreadSlots; ++id) {
    void* p = slots_[id].load(std::memory_order_relaxed);
    if (p != nullptr) {
      t.vtables[id].destroy(p);
      slots_[id].store(nullptr, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// ThreadRegistry
// ---------------------------------------------------------------------------

ThreadRegistry& ThreadRegistry::Instance() {
  // Leaked: must outlive every thread_local destructor, including main's.
  static ThreadRegistry* registry = new ThreadRegistry();
  return *registry;
}

ThreadContext* ThreadRegistry::RegisterCurrent() {
  auto* ctx = new ThreadContext();
  std::lock_guard<std::mutex> lock(mu_);
  ctx->tid_ = static_cast<uint32_t>(total_.fetch_add(1, std::memory_order_acq_rel));
  live_.push_back(ctx);
  live_count_.store(live_.size(), std::memory_order_release);
  return ctx;
}

void ThreadRegistry::Teardown(ThreadContext* ctx) {
  // Unlink first: aggregators must never see a context whose state was already
  // folded into retired totals (that would double-count). The window where the
  // state is in neither place only under-counts concurrent aggregation.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < live_.size(); ++i) {
      if (live_[i] == ctx) {
        live_[i] = live_.back();
        live_.pop_back();
        break;
      }
    }
    live_count_.store(live_.size(), std::memory_order_release);
  }
  SlotTable& t = Slots();
  size_t n = t.count.load(std::memory_order_acquire);
  for (size_t id = 0; id < n && id < kMaxThreadSlots; ++id) {
    void* p = ctx->slots_[id].load(std::memory_order_relaxed);
    if (p != nullptr && t.vtables[id].retire != nullptr) {
      t.vtables[id].retire(p, t.vtables[id].user);
    }
  }
  delete ctx;
}

void ThreadRegistry::ForEach(const std::function<void(ThreadContext&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadContext* ctx : live_) {
    fn(*ctx);
  }
}

void ThreadRegistry::UnregisterCurrentThread() {
  if (t_holder.ctx != nullptr) {
    Instance().Teardown(t_holder.ctx);
    t_holder.ctx = nullptr;
  }
}

}  // namespace pactree
