// FastFair (Hwang et al., FAST'18): a lock-based persistent B+-tree with
// logless ("failure-atomic shift") crash consistency.
//
// Fidelity notes for this reimplementation:
//   * sorted in-node entry arrays, shift-based failure-atomic inserts whose
//     8-byte stores are persisted in order (duplicates during a shift are
//     tolerable; an explicit count store is the visibility pivot);
//   * synchronous SMOs on the critical path with writer lock coupling -- the
//     blocking behaviour the PACTree paper measures against (GC2);
//   * integer keys embedded in the node; string keys stored out-of-node behind
//     a pointer (the paper's explanation for FastFair's 3x string-key slowdown);
//   * leaf sibling chain for sequential scans (GA5: FastFair's strength).
// Readers use optimistic version validation rather than the original's
// tolerance proofs; they still write nothing to NVM (GA2). Documented in
// DESIGN.md.
#ifndef PACTREE_SRC_BASELINES_FASTFAIR_H_
#define PACTREE_SRC_BASELINES_FASTFAIR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/key.h"
#include "src/common/status.h"
#include "src/pmem/heap.h"
#include "src/sync/version_lock.h"

namespace pactree {

inline constexpr size_t kFfCardinality = 30;  // 30 kv pairs per node (paper §3.3)

struct FfKeyRecord {
  Key key;
};

struct FfNode {
  OptVersionLock lock;   // writers exclusive; readers optimistic
  uint32_t is_leaf;
  uint32_t count;        // visibility pivot, persisted last
  uint64_t leftmost_raw; // internal nodes: child for keys < entries[0]
  uint64_t sibling_raw;  // right sibling (leaves and internals)
  uint64_t low_key_word; // lower bound of this node's key range (B-link)
  uint32_t has_low;      // 0 for the leftmost node at each level (-inf)
  uint8_t pad[20];
  // Sorted entries. key_word: embedded big-endian 8-byte key image (integer
  // mode) or PPtr to an out-of-node FfKeyRecord (string mode).
  uint64_t key_words[kFfCardinality];
  uint64_t values[kFfCardinality];  // leaf: user value; internal: child PPtr
};
static_assert(sizeof(FfNode) == 64 + 16 * kFfCardinality, "node layout");

struct FastFairOptions {
  std::string name = "fastfair";
  uint16_t pool_id_base = 200;
  size_t pool_size = 512ULL << 20;
  bool string_keys = false;  // out-of-node key records (pointer chase)
  bool per_numa_pools = true;
};

class FastFair {
 public:
  static std::unique_ptr<FastFair> Open(const FastFairOptions& opts);
  static void Destroy(const std::string& name);

  ~FastFair() = default;
  FastFair(const FastFair&) = delete;
  FastFair& operator=(const FastFair&) = delete;

  Status Insert(const Key& key, uint64_t value);  // upsert
  Status Lookup(const Key& key, uint64_t* value) const;
  Status Remove(const Key& key);
  size_t Scan(const Key& start, size_t count,
              std::vector<std::pair<Key, uint64_t>>* out) const;

  uint64_t Size() const;
  bool CheckInvariants(std::string* why) const;
  // Backing heap (crash tests shadow its pools and audit its alloc logs).
  PmemHeap* heap() const { return heap_.get(); }

 private:
  struct FfRoot;

  FastFair() = default;
  bool Init(const FastFairOptions& opts);
  void RepairSplitOverlaps();

  uint64_t EncodeKey(const Key& key);         // may allocate a key record
  Key DecodeKey(uint64_t key_word) const;
  int CompareKeyWord(uint64_t key_word, const Key& key) const;

  FfNode* NewNode(bool leaf);
  // Returns the index of the first entry with key >= |key| (count if none).
  int LowerBound(const FfNode* n, const Key& key) const;
  uint64_t ChildFor(const FfNode* n, const Key& key, int* idx) const;

  FfNode* FindLeafOptimistic(const Key& key, uint64_t* version) const;
  // Write path: lock-coupled descent that keeps ancestors locked only while
  // they might be modified (split propagation is synchronous -- GC2).
  Status InsertRec(FfNode* node, const Key& key, uint64_t key_word, uint64_t value,
                   Key* up_key, uint64_t* up_key_word, uint64_t* new_child,
                   bool* existed);

  void InsertAt(FfNode* n, int pos, uint64_t key_word, uint64_t value);
  void RemoveAt(FfNode* n, int pos);

  FastFairOptions opts_;
  std::unique_ptr<PmemHeap> heap_;
  FfRoot* root_ = nullptr;
  mutable OptVersionLock root_lock_;  // guards root pointer swaps
};

}  // namespace pactree

#endif  // PACTREE_SRC_BASELINES_FASTFAIR_H_
