// BzTree (Arulraj et al., VLDB'18): a latch-free persistent B+-tree built on
// PMwCAS.
//
// Reimplementation for the PACTree paper's comparisons:
//   * every structural word (node status, record metadata, child pointers)
//     changes only through PMwCAS, inheriting its heavy flush traffic -- the
//     paper counts >= 15 flushes per insert;
//   * leaf inserts reserve space with a 2-word PMwCAS (status + metadata),
//     copy the record, then flip the visible bit;
//   * internal nodes are immutable: consolidation and splits copy-on-write new
//     nodes and swing one child pointer in the parent (checked against the
//     parent's status word) -- each SMO allocates NVM (GA3);
//   * no sibling pointers: scans re-traverse from the root per leaf, the
//     "additional dereferencing and snapshotting" §6.1 blames for its scan
//     performance;
//   * replaced nodes are reclaimed through epochs; recovery rolls in-flight
//     PMwCAS descriptors forward/back.
#ifndef PACTREE_SRC_BASELINES_BZTREE_H_
#define PACTREE_SRC_BASELINES_BZTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/key.h"
#include "src/common/status.h"
#include "src/pmem/heap.h"
#include "src/pmwcas/pmwcas.h"

namespace pactree {

inline constexpr size_t kBzMaxRecords = 48;
inline constexpr size_t kBzRecordBytes = 40;  // 8-byte value + <=32 key bytes
inline constexpr size_t kBzDataBytes = kBzMaxRecords * kBzRecordBytes;

struct BzNode {
  uint64_t status;  // packed; mutated via PMwCAS only
  uint32_t is_leaf;
  uint32_t sorted_count;  // records [0, sorted_count) are sorted & immutable
  uint8_t pad[48];
  uint64_t meta[kBzMaxRecords];  // packed record metadata; PMwCAS-mutated
  uint8_t data[kBzDataBytes];    // records: [value:8][key bytes]

  // --- status packing (bits 62-63 reserved for PMwCAS) ---
  static constexpr uint64_t kFrozenBit = 1ULL << 56;
  static uint64_t PackStatus(uint32_t count, uint32_t block_used, bool frozen) {
    return (frozen ? kFrozenBit : 0) | (static_cast<uint64_t>(count) << 40) |
           (static_cast<uint64_t>(block_used) & 0xffffff);
  }
  static uint32_t StatusCount(uint64_t s) { return static_cast<uint32_t>(s >> 40) & 0xffff; }
  static uint32_t StatusBlock(uint64_t s) { return static_cast<uint32_t>(s & 0xffffff); }
  static bool StatusFrozen(uint64_t s) { return (s & kFrozenBit) != 0; }

  // --- metadata packing ---
  static constexpr uint64_t kVisibleBit = 1ULL << 56;
  static constexpr uint64_t kDeletedBit = 1ULL << 57;
  static uint64_t PackMeta(uint32_t offset, uint32_t key_len, bool visible,
                           bool deleted) {
    return (visible ? kVisibleBit : 0) | (deleted ? kDeletedBit : 0) |
           (static_cast<uint64_t>(offset) << 32) |
           (static_cast<uint64_t>(key_len) << 24);
  }
  static uint32_t MetaOffset(uint64_t m) { return static_cast<uint32_t>(m >> 32) & 0xffff; }
  static uint32_t MetaKeyLen(uint64_t m) { return static_cast<uint32_t>(m >> 24) & 0xff; }
  static bool MetaVisible(uint64_t m) { return (m & kVisibleBit) != 0; }
  static bool MetaDeleted(uint64_t m) { return (m & kDeletedBit) != 0; }

  Key KeyAt(uint64_t m) const {
    return Key::FromBytes(data + MetaOffset(m) + 8, MetaKeyLen(m));
  }
  uint64_t* ValueAddr(uint64_t m) {
    return reinterpret_cast<uint64_t*>(data + MetaOffset(m));
  }
};
static_assert(sizeof(BzNode) % 64 == 0, "node is cache-line aligned");

struct BzTreeOptions {
  std::string name = "bztree";
  uint16_t pool_id_base = 240;
  size_t pool_size = 512ULL << 20;
  bool per_numa_pools = true;
};

class BzTree {
 public:
  static std::unique_ptr<BzTree> Open(const BzTreeOptions& opts);
  static void Destroy(const std::string& name);

  ~BzTree() = default;
  BzTree(const BzTree&) = delete;
  BzTree& operator=(const BzTree&) = delete;

  // Upsert. |value| must keep bits 62-63 clear: every value word is mutated
  // through PMwCAS, which reserves those bits as descriptor/dirty markers.
  Status Insert(const Key& key, uint64_t value);
  Status Lookup(const Key& key, uint64_t* value) const;
  Status Remove(const Key& key);
  size_t Scan(const Key& start, size_t count,
              std::vector<std::pair<Key, uint64_t>>* out) const;

  uint64_t Size() const;
  uint64_t PmwcasSucceeded() const { return pmwcas_->SucceededCount(); }
  // Backing heap (crash tests shadow its pools and audit its alloc logs).
  PmemHeap* heap() const { return heap_.get(); }

 private:
  struct BzRoot;
  struct PathEntry {
    BzNode* node;
    uint64_t status;       // status observed during descent
    uint64_t* child_slot;  // word in |node| holding the child pointer taken
  };

  BzTree() = default;
  bool Init(const BzTreeOptions& opts);

  BzNode* NewNode(bool leaf);
  // Descends to the leaf for |key|; fills |path| (root first). |upper| gets
  // the smallest separator greater than the chosen subtree (Key::Max if none).
  BzNode* FindLeaf(const Key& key, std::vector<PathEntry>* path, Key* upper) const;

  // Record search within a node: latest unsorted match wins, else binary
  // search of the sorted prefix. Returns meta index or -1.
  int FindRecord(const BzNode* n, const Key& key, uint64_t* meta_out) const;

  // Freezes |leaf| and replaces it (consolidate or split) under |path|.
  // Returns false if the caller must retry from the root.
  bool SmoReplace(BzNode* leaf, std::vector<PathEntry>& path);

  uint64_t NodeRaw(const BzNode* n) const;

  BzTreeOptions opts_;
  std::unique_ptr<PmemHeap> heap_;
  std::unique_ptr<PmwcasPool> pmwcas_;
  BzRoot* root_ = nullptr;
};

}  // namespace pactree

#endif  // PACTREE_SRC_BASELINES_BZTREE_H_
