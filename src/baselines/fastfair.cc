#include "src/baselines/fastfair.h"

#include <cassert>
#include <cstring>

#include "src/nvm/persist.h"
#include "src/pmem/registry.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"
#include "src/sync/generation.h"

namespace pactree {
namespace {

constexpr uint64_t kFfMagic = 0x3152494146544641ULL;  // "AFTFAIR1" (ish)

inline uint64_t LoadU64(const uint64_t* p) {
  return std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(p)).load(std::memory_order_acquire);
}
inline void StoreU64(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_release);
}

}  // namespace

struct FastFair::FfRoot {
  uint64_t magic;
  uint64_t root_raw;
  uint64_t height;
};

std::unique_ptr<FastFair> FastFair::Open(const FastFairOptions& opts) {
  auto tree = std::unique_ptr<FastFair>(new FastFair());
  if (!tree->Init(opts)) {
    return nullptr;
  }
  return tree;
}

void FastFair::Destroy(const std::string& name) { PmemHeap::Destroy(name); }

bool FastFair::Init(const FastFairOptions& opts) {
  opts_ = opts;
  PmemHeapOptions h;
  h.pool_id_base = opts.pool_id_base;
  h.pool_size = opts.pool_size;
  h.single_pool = !opts.per_numa_pools;
  heap_ = PmemHeap::OpenOrCreate(opts.name, h);
  if (heap_ == nullptr) {
    return false;
  }
  AdvanceGenerations({heap_.get()});
  root_ = heap_->Root<FfRoot>();
  if (root_->magic != kFfMagic) {
    FfNode* leaf = NewNode(/*leaf=*/true);
    if (leaf == nullptr) {
      return false;
    }
    root_->root_raw = ToPPtr(leaf).Cast<void>().raw;
    root_->height = 1;
    PersistFence(root_, sizeof(FfRoot));
    root_->magic = kFfMagic;
    PersistFence(&root_->magic, sizeof(uint64_t));
  } else {
    RepairSplitOverlaps();
  }
  return true;
}

void FastFair::RepairSplitOverlaps() {
  // A split publishes the sibling link before trimming the left node's count;
  // a crash between the two fences leaves the moved half durable in both
  // nodes. The original FAST&FAIR leaves that state in place and relies on
  // readers tolerating duplicates; our scans and invariant checks demand
  // disjoint nodes, so re-apply the trim on reopen: every key >= a linked
  // sibling's low key belongs to the sibling (for an internal node this also
  // drops the median, whose child is reachable as the sibling's leftmost).
  FfNode* level = PPtr<FfNode>(root_->root_raw).get();
  while (level != nullptr) {
    for (FfNode* n = level; n != nullptr; n = PPtr<FfNode>(n->sibling_raw).get()) {
      FfNode* sib = PPtr<FfNode>(n->sibling_raw).get();
      if (sib == nullptr || !sib->has_low) {
        continue;
      }
      Key low = DecodeKey(sib->low_key_word);
      uint32_t c = n->count;
      while (c > 0 && CompareKeyWord(n->key_words[c - 1], low) >= 0) {
        --c;
      }
      if (c != n->count) {
        std::atomic_ref<uint32_t>(n->count).store(c, std::memory_order_release);
        PersistFence(&n->count, sizeof(n->count));
      }
    }
    level = level->is_leaf ? nullptr : PPtr<FfNode>(level->leftmost_raw).get();
  }
}

FfNode* FastFair::NewNode(bool leaf) {
  PPtr<void> p = heap_->Alloc(sizeof(FfNode));
  if (p.IsNull()) {
    return nullptr;
  }
  auto* n = static_cast<FfNode*>(p.get());
  n->is_leaf = leaf ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

uint64_t FastFair::EncodeKey(const Key& key) {
  if (!opts_.string_keys) {
    // Big-endian 8-byte image: word comparison == key comparison (keys <= 8 B).
    uint64_t w = 0;
    for (size_t i = 0; i < 8; ++i) {
      w = (w << 8) | key.At(i);
    }
    return w;
  }
  // Out-of-node key record (one NVM allocation + pointer chase per key).
  PPtr<void> rec = heap_->Alloc(sizeof(FfKeyRecord));
  if (rec.IsNull()) {
    return 0;
  }
  auto* kr = static_cast<FfKeyRecord*>(rec.get());
  kr->key = key;
  PersistFence(kr, sizeof(FfKeyRecord));
  return rec.raw;
}

Key FastFair::DecodeKey(uint64_t key_word) const {
  if (!opts_.string_keys) {
    return Key::FromInt(key_word);
  }
  const auto* kr = PPtr<FfKeyRecord>(key_word).get();
  AnnotateNvmRead(kr, sizeof(FfKeyRecord));
  return kr->key;
}

int FastFair::CompareKeyWord(uint64_t key_word, const Key& key) const {
  if (!opts_.string_keys) {
    uint64_t w = 0;
    for (size_t i = 0; i < 8; ++i) {
      w = (w << 8) | key.At(i);
    }
    return key_word < w ? -1 : (key_word == w ? 0 : 1);
  }
  const auto* kr = PPtr<FfKeyRecord>(key_word).get();
  AnnotateNvmRead(kr, sizeof(FfKeyRecord));  // the string-key pointer chase
  return kr->key.Compare(key);
}

int FastFair::LowerBound(const FfNode* n, const Key& key) const {
  int lo = 0;
  int hi = static_cast<int>(std::atomic_ref<uint32_t>(const_cast<FfNode*>(n)->count)
                                .load(std::memory_order_acquire));
  if (hi > static_cast<int>(kFfCardinality)) {
    hi = kFfCardinality;
  }
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CompareKeyWord(LoadU64(&n->key_words[mid]), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t FastFair::ChildFor(const FfNode* n, const Key& key, int* idx) const {
  int pos = LowerBound(n, key);
  // Internal node semantics: separator key k routes keys >= k to its child.
  if (pos < static_cast<int>(n->count) &&
      CompareKeyWord(LoadU64(&n->key_words[pos]), key) == 0) {
    pos++;
  }
  *idx = pos;
  if (pos == 0) {
    return LoadU64(&n->leftmost_raw);
  }
  return LoadU64(&n->values[pos - 1]);
}

// ---------------------------------------------------------------------------
// Optimistic read path
// ---------------------------------------------------------------------------

FfNode* FastFair::FindLeafOptimistic(const Key& key, uint64_t* version) const {
  while (true) {
    FfNode* node = PPtr<FfNode>(LoadU64(&root_->root_raw)).get();
    uint64_t v = node->lock.ReadLock();
    bool restart = false;
    while (true) {
      AnnotateNvmRead(node, 64);  // header; key words counted per comparison
      if (!opts_.string_keys) {
        AnnotateNvmRead(node->key_words, sizeof(node->key_words));
      }
      // B-link-style move right: a concurrent split links the new node via the
      // sibling pointer before the parent learns about it.
      FfNode* sib = PPtr<FfNode>(LoadU64(&node->sibling_raw)).get();
      if (sib != nullptr && sib->has_low &&
          CompareKeyWord(LoadU64(&sib->low_key_word), key) <= 0) {
        uint64_t sv = sib->lock.ReadLock();
        if (!node->lock.Validate(v)) {
          restart = true;
          break;
        }
        node = sib;
        v = sv;
        continue;
      }
      if (node->is_leaf) {
        if (!node->lock.Validate(v)) {
          restart = true;
          break;
        }
        *version = v;
        return node;
      }
      int idx;
      uint64_t child_raw = ChildFor(node, key, &idx);
      if (child_raw == 0) {
        restart = true;
        break;
      }
      FfNode* child = PPtr<FfNode>(child_raw).get();
      uint64_t cv = child->lock.ReadLock();
      if (!node->lock.Validate(v)) {
        restart = true;
        break;
      }
      node = child;
      v = cv;
    }
    if (!restart) {
      return nullptr;  // unreachable
    }
  }
}

Status FastFair::Lookup(const Key& key, uint64_t* value) const {
  EpochGuard guard;
  while (true) {
    uint64_t version;
    FfNode* leaf = FindLeafOptimistic(key, &version);
    int pos = LowerBound(leaf, key);
    bool found = pos < static_cast<int>(leaf->count) &&
                 CompareKeyWord(LoadU64(&leaf->key_words[pos]), key) == 0;
    uint64_t v = found ? LoadU64(&leaf->values[pos]) : 0;
    if (!leaf->lock.Validate(version)) {
      continue;
    }
    if (!found) {
      return Status::kNotFound;
    }
    if (value != nullptr) {
      *value = v;
    }
    return Status::kOk;
  }
}

// ---------------------------------------------------------------------------
// In-node failure-atomic shifts
// ---------------------------------------------------------------------------

void FastFair::InsertAt(FfNode* n, int pos, uint64_t key_word, uint64_t value) {
  // Shift right with ordered 8-byte stores (FastFair's failure-atomic shift:
  // a crash mid-shift leaves a duplicate, which is invisible behind count).
  for (int j = static_cast<int>(n->count); j > pos; --j) {
    StoreU64(&n->values[j], n->values[j - 1]);
    StoreU64(&n->key_words[j], n->key_words[j - 1]);
  }
  StoreU64(&n->key_words[pos], key_word);
  StoreU64(&n->values[pos], value);
  PersistRange(&n->key_words[pos], (n->count - pos + 1) * sizeof(uint64_t));
  PersistRange(&n->values[pos], (n->count - pos + 1) * sizeof(uint64_t));
  Fence();
  std::atomic_ref<uint32_t>(n->count).store(n->count + 1, std::memory_order_release);
  PersistFence(&n->count, sizeof(n->count));
}

void FastFair::RemoveAt(FfNode* n, int pos) {
  for (int j = pos; j + 1 < static_cast<int>(n->count); ++j) {
    StoreU64(&n->key_words[j], n->key_words[j + 1]);
    StoreU64(&n->values[j], n->values[j + 1]);
  }
  PersistRange(&n->key_words[pos], (n->count - pos) * sizeof(uint64_t));
  PersistRange(&n->values[pos], (n->count - pos) * sizeof(uint64_t));
  Fence();
  std::atomic_ref<uint32_t>(n->count).store(n->count - 1, std::memory_order_release);
  PersistFence(&n->count, sizeof(n->count));
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status FastFair::Insert(const Key& key, uint64_t value) {
  EpochGuard guard;
  // Fast path: only the leaf is touched.
  while (true) {
    uint64_t version;
    FfNode* leaf = FindLeafOptimistic(key, &version);
    int pos = LowerBound(leaf, key);
    bool exists = pos < static_cast<int>(leaf->count) &&
                  CompareKeyWord(LoadU64(&leaf->key_words[pos]), key) == 0;
    if (!exists && leaf->count >= kFfCardinality) {
      break;  // needs a split: take the slow path
    }
    if (!leaf->lock.TryUpgrade(version)) {
      continue;
    }
    if (exists) {
      StoreU64(&leaf->values[pos], value);
      PersistFence(&leaf->values[pos], sizeof(uint64_t));
      leaf->lock.WriteUnlock();
      return Status::kExists;
    }
    uint64_t key_word = EncodeKey(key);
    InsertAt(leaf, pos, key_word, value);
    leaf->lock.WriteUnlock();
    return Status::kOk;
  }
  // Slow path: lock-coupled descent from the root; splits propagate on the
  // critical path, blocking every concurrent writer on the path (GC2).
  while (true) {
    uint64_t rv = root_lock_.ReadLock();
    FfNode* root_node = PPtr<FfNode>(LoadU64(&root_->root_raw)).get();
    Key up_key;
    uint64_t up_key_word = 0;
    uint64_t new_child = 0;
    bool existed = false;
    uint64_t key_word = EncodeKey(key);
    Status s = InsertRec(root_node, key, key_word, value, &up_key, &up_key_word,
                         &new_child, &existed);
    if (s == Status::kRetry) {
      continue;
    }
    if (new_child != 0) {
      // Root split: build a new root.
      if (!root_lock_.TryUpgrade(rv)) {
        // Someone else replaced the root first; the new child stays reachable
        // through sibling links; retry to install a separator.
        continue;
      }
      FfNode* new_root = NewNode(/*leaf=*/false);
      assert(new_root != nullptr);
      new_root->leftmost_raw = ToPPtr(root_node).Cast<void>().raw;
      new_root->key_words[0] = up_key_word;
      new_root->values[0] = new_child;
      new_root->count = 1;
      PersistFence(new_root, sizeof(FfNode));
      StoreU64(&root_->root_raw, ToPPtr(new_root).Cast<void>().raw);
      root_->height++;
      PersistFence(root_, sizeof(FfRoot));
      root_lock_.WriteUnlock();
    }
    return existed ? Status::kExists : s;
  }
}

Status FastFair::InsertRec(FfNode* node, const Key& key, uint64_t key_word,
                           uint64_t value, Key* up_key, uint64_t* up_key_word,
                           uint64_t* new_child, bool* existed) {
  node->lock.WriteLock();
  // Move right if a concurrent split redirected our key range.
  while (true) {
    FfNode* sib = PPtr<FfNode>(LoadU64(&node->sibling_raw)).get();
    if (sib != nullptr && sib->has_low &&
        CompareKeyWord(sib->low_key_word, key) <= 0) {
      sib->lock.WriteLock();
      node->lock.WriteUnlock();
      node = sib;
      continue;
    }
    break;
  }

  if (!node->is_leaf) {
    int idx;
    uint64_t child_raw = ChildFor(node, key, &idx);
    FfNode* child = PPtr<FfNode>(child_raw).get();
    Key child_up;
    uint64_t child_up_word = 0;
    uint64_t child_new = 0;
    Status s = InsertRec(child, key, key_word, value, &child_up, &child_up_word,
                         &child_new, existed);
    if (child_new != 0) {
      // Insert the separator here (we still hold this node's lock).
      int pos = LowerBound(node, child_up);
      if (node->count < kFfCardinality) {
        InsertAt(node, pos, child_up_word, child_new);
      } else {
        // Split this internal node; the median moves up.
        FfNode* right = NewNode(/*leaf=*/false);
        assert(right != nullptr);
        int mid = kFfCardinality / 2;
        right->leftmost_raw = node->values[mid];  // median's child
        int moved = 0;
        for (int i = mid + 1; i < static_cast<int>(kFfCardinality); ++i) {
          right->key_words[moved] = node->key_words[i];
          right->values[moved] = node->values[i];
          moved++;
        }
        right->count = static_cast<uint32_t>(moved);
        right->sibling_raw = node->sibling_raw;
        uint64_t median_word = node->key_words[mid];
        Key median = DecodeKey(median_word);
        right->low_key_word = median_word;
        right->has_low = 1;
        PersistFence(right, sizeof(FfNode));
        StoreU64(&node->sibling_raw, ToPPtr(right).Cast<void>().raw);
        PersistFence(&node->sibling_raw, sizeof(uint64_t));
        std::atomic_ref<uint32_t>(node->count).store(mid, std::memory_order_release);
        PersistFence(&node->count, sizeof(node->count));
        FfNode* target = child_up < median ? node : right;
        InsertAt(target, LowerBound(target, child_up), child_up_word, child_new);
        *up_key = median;
        *up_key_word = median_word;
        *new_child = ToPPtr(right).Cast<void>().raw;
      }
    }
    node->lock.WriteUnlock();
    return s;
  }

  // Leaf.
  int pos = LowerBound(node, key);
  if (pos < static_cast<int>(node->count) &&
      CompareKeyWord(node->key_words[pos], key) == 0) {
    StoreU64(&node->values[pos], value);
    PersistFence(&node->values[pos], sizeof(uint64_t));
    *existed = true;
    node->lock.WriteUnlock();
    return Status::kOk;
  }
  if (node->count < kFfCardinality) {
    InsertAt(node, pos, key_word, value);
    node->lock.WriteUnlock();
    return Status::kOk;
  }
  // Leaf split (synchronous, on the critical path).
  FfNode* right = NewNode(/*leaf=*/true);
  assert(right != nullptr);
  int mid = kFfCardinality / 2;
  int moved = 0;
  for (int i = mid; i < static_cast<int>(kFfCardinality); ++i) {
    right->key_words[moved] = node->key_words[i];
    right->values[moved] = node->values[i];
    moved++;
  }
  right->count = static_cast<uint32_t>(moved);
  right->sibling_raw = node->sibling_raw;
  right->low_key_word = right->key_words[0];
  right->has_low = 1;
  PersistFence(right, sizeof(FfNode));
  StoreU64(&node->sibling_raw, ToPPtr(right).Cast<void>().raw);
  PersistFence(&node->sibling_raw, sizeof(uint64_t));
  std::atomic_ref<uint32_t>(node->count).store(mid, std::memory_order_release);
  PersistFence(&node->count, sizeof(node->count));
  Key split_key = DecodeKey(right->key_words[0]);
  FfNode* target = key < split_key ? node : right;
  InsertAt(target, LowerBound(target, key), key_word, value);
  *up_key = split_key;
  *up_key_word = right->key_words[0];
  *new_child = ToPPtr(right).Cast<void>().raw;
  node->lock.WriteUnlock();
  return Status::kOk;
}

Status FastFair::Remove(const Key& key) {
  EpochGuard guard;
  while (true) {
    uint64_t version;
    FfNode* leaf = FindLeafOptimistic(key, &version);
    int pos = LowerBound(leaf, key);
    bool found = pos < static_cast<int>(leaf->count) &&
                 CompareKeyWord(LoadU64(&leaf->key_words[pos]), key) == 0;
    if (!found) {
      if (!leaf->lock.Validate(version)) {
        continue;
      }
      return Status::kNotFound;
    }
    if (!leaf->lock.TryUpgrade(version)) {
      continue;
    }
    RemoveAt(leaf, pos);
    leaf->lock.WriteUnlock();
    return Status::kOk;
  }
}

size_t FastFair::Scan(const Key& start, size_t count,
                      std::vector<std::pair<Key, uint64_t>>* out) const {
  EpochGuard guard;
  out->clear();
  uint64_t version;
  FfNode* leaf = FindLeafOptimistic(start, &version);
  std::pair<Key, uint64_t> batch[kFfCardinality];
  bool first = true;
  while (leaf != nullptr && out->size() < count) {
    size_t bn;
    uint64_t next_raw;
    while (true) {
      bn = 0;
      // Sorted, embedded entries: one sequential node read (GA5).
      AnnotateNvmRead(leaf, sizeof(FfNode));
      int n = static_cast<int>(leaf->count);
      for (int i = 0; i < n && i < static_cast<int>(kFfCardinality); ++i) {
        Key k = DecodeKey(LoadU64(&leaf->key_words[i]));
        if (first && k < start) {
          continue;
        }
        batch[bn++] = {k, LoadU64(&leaf->values[i])};
      }
      next_raw = LoadU64(&leaf->sibling_raw);
      if (leaf->lock.Validate(version)) {
        break;
      }
      version = leaf->lock.ReadLock();
    }
    for (size_t i = 0; i < bn && out->size() < count; ++i) {
      out->push_back(batch[i]);
    }
    first = false;
    if (next_raw == 0) {
      break;
    }
    leaf = PPtr<FfNode>(next_raw).get();
    version = leaf->lock.ReadLock();
  }
  return out->size();
}

uint64_t FastFair::Size() const {
  // Walk to the leftmost leaf, then the sibling chain.
  FfNode* node = PPtr<FfNode>(root_->root_raw).get();
  while (!node->is_leaf) {
    node = PPtr<FfNode>(node->leftmost_raw).get();
  }
  uint64_t total = 0;
  while (node != nullptr) {
    total += node->count;
    node = PPtr<FfNode>(node->sibling_raw).get();
  }
  return total;
}

bool FastFair::CheckInvariants(std::string* why) const {
  FfNode* node = PPtr<FfNode>(root_->root_raw).get();
  while (!node->is_leaf) {
    node = PPtr<FfNode>(node->leftmost_raw).get();
  }
  Key prev;
  bool has_prev = false;
  while (node != nullptr) {
    for (uint32_t i = 0; i < node->count; ++i) {
      Key k = DecodeKey(node->key_words[i]);
      if (has_prev && !(prev < k)) {
        *why = "leaf keys out of order";
        return false;
      }
      prev = k;
      has_prev = true;
    }
    node = PPtr<FfNode>(node->sibling_raw).get();
  }
  return true;
}

}  // namespace pactree
