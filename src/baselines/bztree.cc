#include "src/baselines/bztree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <mutex>

#include "src/nvm/persist.h"
#include "src/pmem/registry.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"

namespace pactree {
namespace {

constexpr uint64_t kBzMagic = 0x31454552545a42ULL;
constexpr size_t kBzConsolidateMax = 28;  // consolidate below, split above

inline size_t RecordBytes(size_t key_len) { return 8 + ((key_len + 7) & ~size_t{7}); }

std::mutex g_smo_mu;  // serializes SMOs (simplification documented in DESIGN.md)

}  // namespace

struct BzTree::BzRoot {
  uint64_t magic;
  uint64_t root_word;    // PPtr raw of the root node (PMwCAS-swung)
  uint64_t desc_anchor;  // PMwCAS descriptor pool
};

std::unique_ptr<BzTree> BzTree::Open(const BzTreeOptions& opts) {
  auto tree = std::unique_ptr<BzTree>(new BzTree());
  if (!tree->Init(opts)) {
    return nullptr;
  }
  return tree;
}

void BzTree::Destroy(const std::string& name) { PmemHeap::Destroy(name); }

bool BzTree::Init(const BzTreeOptions& opts) {
  opts_ = opts;
  PmemHeapOptions h;
  h.pool_id_base = opts.pool_id_base;
  h.pool_size = opts.pool_size;
  h.single_pool = !opts.per_numa_pools;
  heap_ = PmemHeap::OpenOrCreate(opts.name, h);
  if (heap_ == nullptr) {
    return false;
  }
  AdvanceGenerations({heap_.get()});
  root_ = heap_->Root<BzRoot>();
  bool fresh = root_->magic != kBzMagic;
  if (fresh) {
    std::memset(static_cast<void*>(root_), 0, sizeof(BzRoot));
    PersistFence(root_, sizeof(BzRoot));
  }
  pmwcas_ = std::make_unique<PmwcasPool>(heap_.get(), &root_->desc_anchor);
  if (fresh) {
    BzNode* leaf = NewNode(/*leaf=*/true);
    if (leaf == nullptr) {
      return false;
    }
    PersistFence(leaf, sizeof(BzNode));
    root_->root_word = NodeRaw(leaf);
    PersistFence(&root_->root_word, sizeof(uint64_t));
    root_->magic = kBzMagic;
    PersistFence(&root_->magic, sizeof(uint64_t));
  } else {
    pmwcas_->Recover();
  }
  return true;
}

BzNode* BzTree::NewNode(bool leaf) {
  PPtr<void> p = heap_->Alloc(sizeof(BzNode));
  if (p.IsNull()) {
    return nullptr;
  }
  auto* n = static_cast<BzNode*>(p.get());
  n->is_leaf = leaf ? 1 : 0;
  return n;
}

uint64_t BzTree::NodeRaw(const BzNode* n) const { return ToPPtr(n).Cast<void>().raw; }

// ---------------------------------------------------------------------------
// Descent & search
// ---------------------------------------------------------------------------

BzNode* BzTree::FindLeaf(const Key& key, std::vector<PathEntry>* path,
                         Key* upper) const {
  if (upper != nullptr) {
    *upper = Key::Max();
  }
  auto* self = const_cast<BzTree*>(this);
  BzNode* node =
      PPtr<BzNode>(self->pmwcas_->ReadWord(&root_->root_word)).get();
  while (!node->is_leaf) {
    AnnotateNvmRead(node, 128);
    uint64_t status = self->pmwcas_->ReadWord(&node->status);
    uint32_t count = node->sorted_count;
    // Binary search: greatest separator <= key (entry 0 has the empty key).
    uint32_t lo = 0;
    uint32_t hi = count;
    while (lo + 1 < hi) {
      uint32_t mid = (lo + hi) / 2;
      AnnotateNvmRead(&node->meta[mid], 8);
      if (node->KeyAt(node->meta[mid]) <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    if (upper != nullptr && lo + 1 < count) {
      *upper = node->KeyAt(node->meta[lo + 1]);
    }
    uint64_t* slot = const_cast<BzNode*>(node)->ValueAddr(node->meta[lo]);
    uint64_t child_raw = self->pmwcas_->ReadWord(slot);
    if (path != nullptr) {
      path->push_back({node, status, slot});
    }
    node = PPtr<BzNode>(child_raw).get();
  }
  AnnotateNvmRead(node, 128);
  return node;
}

int BzTree::FindRecord(const BzNode* n, const Key& key, uint64_t* meta_out) const {
  auto* self = const_cast<BzTree*>(this);
  uint64_t status = self->pmwcas_->ReadWord(const_cast<uint64_t*>(&n->status));
  uint32_t count = BzNode::StatusCount(status);
  // Unsorted tail, newest first (last write wins).
  for (int i = static_cast<int>(count) - 1; i >= static_cast<int>(n->sorted_count);
       --i) {
    uint64_t m = self->pmwcas_->ReadWord(const_cast<uint64_t*>(&n->meta[i]));
    if (!BzNode::MetaVisible(m) && !BzNode::MetaDeleted(m)) {
      continue;  // reserved, in flight
    }
    AnnotateNvmRead(n->data + BzNode::MetaOffset(m), RecordBytes(BzNode::MetaKeyLen(m)));
    if (n->KeyAt(m) == key) {
      *meta_out = m;
      return i;
    }
  }
  // Sorted prefix.
  int lo = 0;
  int hi = static_cast<int>(n->sorted_count);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    AnnotateNvmRead(n->data + BzNode::MetaOffset(n->meta[mid]), 40);
    if (n->KeyAt(n->meta[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < static_cast<int>(n->sorted_count)) {
    uint64_t m = self->pmwcas_->ReadWord(const_cast<uint64_t*>(&n->meta[lo]));
    if (n->KeyAt(m) == key && (BzNode::MetaVisible(m) || BzNode::MetaDeleted(m))) {
      *meta_out = m;
      return lo;
    }
  }
  return -1;
}

Status BzTree::Lookup(const Key& key, uint64_t* value) const {
  EpochGuard guard;
  uint64_t meta;
  BzNode* leaf = FindLeaf(key, nullptr, nullptr);
  int idx = FindRecord(leaf, key, &meta);
  if (idx < 0 || BzNode::MetaDeleted(meta)) {
    return Status::kNotFound;
  }
  if (value != nullptr) {
    *value = const_cast<BzTree*>(this)->pmwcas_->ReadWord(leaf->ValueAddr(meta));
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Insert / Remove
// ---------------------------------------------------------------------------

Status BzTree::Insert(const Key& key, uint64_t value) {
  std::vector<PathEntry> path;
  while (true) {
    // Let deferred descriptor recycling make progress between attempts.
    EpochManager::Instance().TryAdvanceAndReclaim();
    // Per-attempt guard: holding one epoch across retries would stall
    // descriptor recycling (and with it, every other writer).
    EpochGuard guard;
    path.clear();
    BzNode* leaf = FindLeaf(key, &path, nullptr);
    uint64_t status = pmwcas_->ReadWord(&leaf->status);
    if (BzNode::StatusFrozen(status)) {
      SmoReplace(leaf, path);
      continue;
    }
    uint64_t meta;
    int idx = FindRecord(leaf, key, &meta);
    if (idx >= 0 && BzNode::MetaVisible(meta)) {
      // Upsert: swing the 8-byte value, guarded by an unchanged status word.
      uint64_t old_v = pmwcas_->ReadWord(leaf->ValueAddr(meta));
      PmwcasWordEntry entries[2] = {
          {ToPPtr(&leaf->status).raw, status, status},
          {ToPPtr(leaf->ValueAddr(meta)).raw, old_v, value},
      };
      if (pmwcas_->Run(entries, 2)) {
        return Status::kExists;
      }
      continue;
    }
    uint32_t count = BzNode::StatusCount(status);
    uint32_t block = BzNode::StatusBlock(status);
    size_t rec = RecordBytes(key.size());
    if (count >= kBzMaxRecords || block + rec > kBzDataBytes) {
      if (SmoReplace(leaf, path)) {
        continue;
      }
      continue;
    }
    // Reserve: status + metadata in one PMwCAS.
    uint64_t new_status = BzNode::PackStatus(count + 1, block + static_cast<uint32_t>(rec),
                                             false);
    uint64_t new_meta = BzNode::PackMeta(block, static_cast<uint32_t>(key.size()),
                                         /*visible=*/false, /*deleted=*/false);
    PmwcasWordEntry reserve[2] = {
        {ToPPtr(&leaf->status).raw, status, new_status},
        {ToPPtr(&leaf->meta[count]).raw, 0, new_meta},
    };
    if (!pmwcas_->Run(reserve, 2)) {
      continue;
    }
    // Copy the record payload and persist it.
    uint64_t* vaddr = leaf->ValueAddr(new_meta);
    *vaddr = value;
    std::memcpy(reinterpret_cast<uint8_t*>(vaddr) + 8, key.data(), key.size());
    PersistFence(vaddr, rec);
    // Flip visible (status must still be unfrozen).
    while (true) {
      uint64_t s = pmwcas_->ReadWord(&leaf->status);
      if (BzNode::StatusFrozen(s)) {
        // A consolidation won the race: our reserved record dies with the old
        // node (it was never acknowledged). Retry against the new node.
        break;
      }
      PmwcasWordEntry flip[2] = {
          {ToPPtr(&leaf->status).raw, s, s},
          {ToPPtr(&leaf->meta[count]).raw, new_meta,
           new_meta | BzNode::kVisibleBit},
      };
      bool exhausted = false;
      if (pmwcas_->Run(flip, 2, &exhausted)) {
        return Status::kOk;
      }
      if (exhausted) {
        // Abandon the reserved (invisible) slot; consolidation reclaims it.
        // Unwinding drops our epoch guard so descriptor recycling proceeds.
        break;
      }
    }
  }
}

Status BzTree::Remove(const Key& key) {
  std::vector<PathEntry> path;
  while (true) {
    EpochManager::Instance().TryAdvanceAndReclaim();
    EpochGuard guard;
    path.clear();
    BzNode* leaf = FindLeaf(key, &path, nullptr);
    uint64_t status = pmwcas_->ReadWord(&leaf->status);
    if (BzNode::StatusFrozen(status)) {
      SmoReplace(leaf, path);
      continue;
    }
    uint64_t meta;
    int idx = FindRecord(leaf, key, &meta);
    if (idx < 0 || BzNode::MetaDeleted(meta)) {
      return Status::kNotFound;
    }
    PmwcasWordEntry entries[2] = {
        {ToPPtr(&leaf->status).raw, status, status},
        {ToPPtr(&leaf->meta[idx]).raw, meta,
         (meta & ~BzNode::kVisibleBit) | BzNode::kDeletedBit},
    };
    if (pmwcas_->Run(entries, 2)) {
      return Status::kOk;
    }
  }
}

// ---------------------------------------------------------------------------
// SMOs (consolidate / split), serialized by a mutex
// ---------------------------------------------------------------------------

bool BzTree::SmoReplace(BzNode* leaf, std::vector<PathEntry>& path) {
  std::lock_guard<std::mutex> lock(g_smo_mu);
  // Freeze the node (idempotent; loop against concurrent reservations).
  uint64_t status;
  while (true) {
    status = pmwcas_->ReadWord(&leaf->status);
    if (BzNode::StatusFrozen(status)) {
      break;
    }
    PmwcasWordEntry freeze = {ToPPtr(&leaf->status).raw, status,
                              status | BzNode::kFrozenBit};
    bool exhausted = false;
    if (pmwcas_->Run(&freeze, 1, &exhausted)) {
      break;
    }
    if (exhausted) {
      return false;  // unwind so descriptor recycling can proceed
    }
  }
  // Verify the WHOLE recorded path is still the current root-to-leaf path.
  // Checking only the parent slot is not enough: a retired (but not yet
  // reclaimed) ancestor still points at the leaf, and swinging pointers inside
  // a dead subtree would retire nodes that the live tree still reaches.
  // Child slots change only under this mutex, so a verified path stays valid
  // for the rest of the SMO.
  uint64_t leaf_raw = NodeRaw(leaf);
  {
    uint64_t expect = pmwcas_->ReadWord(&root_->root_word);
    for (const PathEntry& pe : path) {
      if (expect != NodeRaw(pe.node)) {
        return false;  // stale path; caller retries from the root
      }
      expect = pmwcas_->ReadWord(pe.child_slot);
    }
    if (expect != leaf_raw) {
      return false;
    }
  }

  // Gather live sorted records.
  std::vector<std::pair<Key, uint64_t>> lives;
  {
    uint64_t st = pmwcas_->ReadWord(&leaf->status);
    uint32_t count = BzNode::StatusCount(st);
    std::map<Key, uint64_t> live;
    for (int i = static_cast<int>(count) - 1; i >= 0; --i) {
      uint64_t m = pmwcas_->ReadWord(&leaf->meta[i]);
      if (!BzNode::MetaVisible(m) && !BzNode::MetaDeleted(m)) {
        continue;
      }
      Key k = leaf->KeyAt(m);
      if (live.count(k)) {
        continue;
      }
      live[k] = BzNode::MetaDeleted(m) ? ~0ULL : *leaf->ValueAddr(m);
    }
    for (const auto& [k, v] : live) {
      if (v != ~0ULL) {
        lives.emplace_back(k, v);
      }
    }
  }

  // Build replacement node(s).
  std::vector<std::pair<Key, uint64_t>> repl;  // (low key, node raw)
  auto build = [&](size_t from, size_t to) -> uint64_t {
    BzNode* fresh = NewNode(leaf->is_leaf != 0);
    assert(fresh != nullptr);
    uint32_t block = 0;
    uint32_t out = 0;
    for (size_t i = from; i < to; ++i) {
      size_t rec = RecordBytes(lives[i].first.size());
      fresh->meta[out] = BzNode::PackMeta(block,
                                          static_cast<uint32_t>(lives[i].first.size()),
                                          true, false);
      uint64_t* vaddr = fresh->ValueAddr(fresh->meta[out]);
      *vaddr = lives[i].second;
      std::memcpy(reinterpret_cast<uint8_t*>(vaddr) + 8, lives[i].first.data(),
                  lives[i].first.size());
      out++;
      block += static_cast<uint32_t>(rec);
    }
    fresh->sorted_count = out;
    fresh->status = BzNode::PackStatus(out, block, false);
    PersistFence(fresh, sizeof(BzNode));
    return NodeRaw(fresh);
  };
  if (lives.size() <= kBzConsolidateMax) {
    Key low = path.empty() ? Key::Min()
                           : (lives.empty() ? Key::Min() : lives.front().first);
    repl.emplace_back(low, build(0, lives.size()));
  } else {
    size_t mid = lives.size() / 2;
    repl.emplace_back(Key::Min(), build(0, mid));  // low key unused for [0]
    repl.emplace_back(lives[mid].first, build(mid, lives.size()));
  }

  // Swing pointers up the path.
  uint64_t old_raw = leaf_raw;
  int level = static_cast<int>(path.size()) - 1;
  std::vector<BzNode*> retired;
  retired.push_back(leaf);
  while (true) {
    if (repl.size() == 1) {
      // In-place child-pointer swap (the one in-place internal update BzTree
      // allows) or root swap.
      uint64_t* slot = level < 0 ? &root_->root_word : path[level].child_slot;
      PmwcasWordEntry swing = {ToPPtr(slot).raw, old_raw, repl[0].second};
      bool ok = pmwcas_->Run(&swing, 1);
      if (!ok) {
        // Path stale: free unpublished nodes and retry from the root.
        for (auto& [k, raw] : repl) {
          PmemFree(PPtr<void>(raw));
        }
        return false;
      }
      break;
    }
    // Two replacements: the parent needs a new separator -> CoW the parent.
    if (level < 0) {
      // New root above the split halves.
      BzNode* new_root = NewNode(/*leaf=*/false);
      assert(new_root != nullptr);
      uint32_t block = 0;
      for (size_t i = 0; i < 2; ++i) {
        Key k = i == 0 ? Key::Min() : repl[i].first;
        size_t rec = RecordBytes(k.size());
        new_root->meta[i] = BzNode::PackMeta(block, static_cast<uint32_t>(k.size()),
                                             true, false);
        uint64_t* vaddr = new_root->ValueAddr(new_root->meta[i]);
        *vaddr = repl[i].second;
        std::memcpy(reinterpret_cast<uint8_t*>(vaddr) + 8, k.data(), k.size());
        block += static_cast<uint32_t>(rec);
      }
      new_root->sorted_count = 2;
      new_root->status = BzNode::PackStatus(2, block, false);
      PersistFence(new_root, sizeof(BzNode));
      PmwcasWordEntry swing = {ToPPtr(&root_->root_word).raw, old_raw,
                               NodeRaw(new_root)};
      if (!pmwcas_->Run(&swing, 1)) {
        for (auto& [k, raw] : repl) {
          PmemFree(PPtr<void>(raw));
        }
        PmemFree(ToPPtr(new_root).Cast<void>());
        return false;
      }
      break;
    }
    BzNode* parent = path[level].node;
    uint64_t p_status = pmwcas_->ReadWord(&parent->status);
    uint32_t p_count = BzNode::StatusCount(p_status);
    // Collect parent entries, replacing old_raw's entry and inserting the new
    // separator.
    std::vector<std::pair<Key, uint64_t>> entries;
    for (uint32_t i = 0; i < p_count; ++i) {
      uint64_t m = parent->meta[i];
      Key k = parent->KeyAt(m);
      uint64_t child = pmwcas_->ReadWord(parent->ValueAddr(m));
      if (child == old_raw) {
        entries.emplace_back(k, repl[0].second);
        entries.emplace_back(repl[1].first, repl[1].second);
      } else {
        entries.emplace_back(k, child);
      }
    }
    // Build one or two new internal nodes from |entries|.
    auto build_inner = [&](size_t from, size_t to) -> uint64_t {
      BzNode* fresh = NewNode(/*leaf=*/false);
      assert(fresh != nullptr);
      uint32_t block = 0;
      uint32_t out = 0;
      for (size_t i = from; i < to; ++i) {
        Key k = i == from && from == 0 && level == 0 ? entries[i].first
                                                     : entries[i].first;
        size_t rec = RecordBytes(k.size());
        fresh->meta[out] = BzNode::PackMeta(block, static_cast<uint32_t>(k.size()),
                                            true, false);
        uint64_t* vaddr = fresh->ValueAddr(fresh->meta[out]);
        *vaddr = entries[i].second;
        std::memcpy(reinterpret_cast<uint8_t*>(vaddr) + 8, k.data(), k.size());
        out++;
        block += static_cast<uint32_t>(rec);
      }
      fresh->sorted_count = out;
      fresh->status = BzNode::PackStatus(out, block, false);
      PersistFence(fresh, sizeof(BzNode));
      return NodeRaw(fresh);
    };
    repl.clear();
    if (entries.size() <= kBzMaxRecords) {
      repl.emplace_back(entries.front().first, build_inner(0, entries.size()));
    } else {
      size_t mid = entries.size() / 2;
      repl.emplace_back(entries.front().first, build_inner(0, mid));
      repl.emplace_back(entries[mid].first, build_inner(mid, entries.size()));
    }
    retired.push_back(parent);
    old_raw = NodeRaw(parent);
    level--;
  }
  for (BzNode* n : retired) {
    EpochManager::Instance().Retire(ToPPtr(n).Cast<void>());
  }
  EpochManager::Instance().TryAdvanceAndReclaim();
  return true;
}

// ---------------------------------------------------------------------------
// Scan / Size
// ---------------------------------------------------------------------------

size_t BzTree::Scan(const Key& start, size_t count,
                    std::vector<std::pair<Key, uint64_t>>* out) const {
  EpochGuard guard;
  out->clear();
  Key cursor = start;
  bool first = true;
  while (out->size() < count) {
    Key upper;
    BzNode* leaf = FindLeaf(cursor, nullptr, &upper);
    AnnotateNvmRead(leaf, sizeof(BzNode));
    // Snapshot + sort (BzTree's per-leaf scan overhead).
    uint64_t status = const_cast<BzTree*>(this)->pmwcas_->ReadWord(&leaf->status);
    uint32_t n = BzNode::StatusCount(status);
    std::map<Key, uint64_t> snap;
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      uint64_t m = const_cast<BzTree*>(this)->pmwcas_->ReadWord(&leaf->meta[i]);
      if (!BzNode::MetaVisible(m) && !BzNode::MetaDeleted(m)) {
        continue;
      }
      Key k = leaf->KeyAt(m);
      if (snap.count(k)) {
        continue;
      }
      snap[k] = BzNode::MetaDeleted(m) ? ~0ULL : *leaf->ValueAddr(m);
    }
    for (const auto& [k, v] : snap) {
      if (v == ~0ULL || k < cursor || (!first && k == cursor)) {
        continue;
      }
      if (out->size() >= count) {
        break;
      }
      out->emplace_back(k, v);
    }
    if (upper == Key::Max()) {
      break;
    }
    cursor = upper;
    first = true;  // upper bound is exclusive of the previous subtree
  }
  return out->size();
}

uint64_t BzTree::Size() const {
  std::vector<std::pair<Key, uint64_t>> all;
  Scan(Key::Min(), ~size_t{0} >> 1, &all);
  return all.size();
}

}  // namespace pactree
