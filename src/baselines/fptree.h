// FP-Tree (Oukid et al., SIGMOD'16): a hybrid DRAM/NVM persistent B+-tree.
//
// Reimplementation for the PACTree paper's comparisons:
//   * inner nodes live in DRAM and are rebuilt from the leaf chain at startup
//     (the restart cost the paper criticizes);
//   * leaves live on NVM with a fingerprint array and a bitmap durability pivot;
//   * traversals run inside (soft-)HTM transactions; writers transactionally
//     acquire the leaf lock, commit, then modify the leaf outside the
//     transaction (the original's TSX + leaf-spinlock protocol). Repeated
//     aborts fall back to a global lock -- the GC3 pathology of Figure 6;
//   * splits update the DRAM inner nodes under the fallback lock with
//     copy-on-write, synchronously on the critical path (GC2);
//   * a persistent micro-log makes leaf splits crash consistent.
// Integer (<= 8 byte) keys only, like the authors' binary the paper evaluated.
#ifndef PACTREE_SRC_BASELINES_FPTREE_H_
#define PACTREE_SRC_BASELINES_FPTREE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/key.h"
#include "src/common/status.h"
#include "src/pmem/heap.h"
#include "src/sync/soft_htm.h"
#include "src/sync/version_lock.h"

namespace pactree {

inline constexpr size_t kFpLeafSlots = 32;
inline constexpr size_t kFpInnerFan = 32;
inline constexpr size_t kFpMuLogSlots = 64;

struct FpLeaf {
  uint64_t bitmap;
  uint64_t next_raw;
  OptVersionLock lock;
  uint64_t pad;
  uint8_t fp[kFpLeafSlots];
  uint64_t keys[kFpLeafSlots];    // big-endian 8-byte key images
  uint64_t values[kFpLeafSlots];
};
static_assert(sizeof(FpLeaf) == 32 + 32 + 16 * kFpLeafSlots, "leaf layout");

// DRAM inner node. All fields are read through SoftHtm::Txn::Read64 and
// written either transactionally or via version-bumping non-transactional
// stores, so concurrent transactions detect every change.
struct FpInner {
  uint64_t meta;  // [count:32 | leaf_children:1]
  uint64_t keys[kFpInnerFan - 1];
  uint64_t children[kFpInnerFan];  // FpInner* (DRAM) or leaf PPtr raw

  static uint64_t PackMeta(uint32_t count, bool leaf_children) {
    return (static_cast<uint64_t>(count) << 1) | (leaf_children ? 1 : 0);
  }
  static uint32_t MetaCount(uint64_t m) { return static_cast<uint32_t>(m >> 1); }
  static bool MetaLeafChildren(uint64_t m) { return (m & 1) != 0; }
};

struct FpTreeOptions {
  std::string name = "fptree";
  uint16_t pool_id_base = 220;
  size_t pool_size = 512ULL << 20;
  bool per_numa_pools = true;
  SoftHtmConfig htm;  // Figure 6 knobs (spurious abort rate etc.)
  int max_htm_retries = 8;
};

class FpTree {
 public:
  static std::unique_ptr<FpTree> Open(const FpTreeOptions& opts);
  static void Destroy(const std::string& name);

  ~FpTree();
  FpTree(const FpTree&) = delete;
  FpTree& operator=(const FpTree&) = delete;

  Status Insert(const Key& key, uint64_t value);  // upsert
  Status Lookup(const Key& key, uint64_t* value) const;
  Status Remove(const Key& key);
  size_t Scan(const Key& start, size_t count,
              std::vector<std::pair<Key, uint64_t>>* out) const;

  uint64_t Size() const;
  SoftHtmStats HtmStats() const { return htm_->Stats(); }
  // Backing heap (crash tests shadow its pools and audit its alloc logs).
  PmemHeap* heap() const { return heap_.get(); }

 private:
  struct FpRoot;

  FpTree() = default;
  bool Init(const FpTreeOptions& opts);
  void RebuildInner();
  void FreeInnerRec(FpInner* n);
  void RecoverMuLog();

  FpLeaf* NewLeaf(int mu_slot);
  static uint64_t KeyWord(const Key& key) {
    uint64_t w = 0;
    for (size_t i = 0; i < 8; ++i) {
      w = (w << 8) | key.At(i);
    }
    return w;
  }

  // Transactional descent; returns the leaf PPtr raw, or 0 on abort.
  uint64_t FindLeafTxn(SoftHtm::Txn* txn, uint64_t key_word) const;
  // Non-transactional descent (fallback lock held).
  uint64_t FindLeafDirect(uint64_t key_word) const;

  int LeafFindKey(const FpLeaf* leaf, uint64_t key_word, uint8_t fingerprint) const;

  // Direct leaf-lock ops that participate in HTM conflict detection.
  void LeafLockDirect(FpLeaf* leaf) const;
  void LeafUnlock(FpLeaf* leaf) const;

  // Leaf modification helpers (leaf lock held).
  Status LeafInsert(FpLeaf* leaf, uint64_t key_word, uint8_t fingerprint,
                    uint64_t value, bool* needs_split);
  // Splits the leaf and inserts (median, new leaf) into the DRAM inner tree.
  // Caller holds the fallback lock and the leaf lock.
  void SplitLeaf(FpLeaf* leaf, uint64_t leaf_raw);
  void InnerInsert(uint64_t split_key, uint64_t left_raw, uint64_t right_raw);

  FpTreeOptions opts_;
  std::unique_ptr<PmemHeap> heap_;
  std::unique_ptr<SoftHtm> htm_;
  FpRoot* root_ = nullptr;
  // [ptr:63 | is_leaf:1]; is_leaf means the root itself is a leaf PPtr raw.
  std::atomic<uint64_t> root_word_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_BASELINES_FPTREE_H_
