#include "src/baselines/fptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/nvm/persist.h"
#include "src/pmem/registry.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"
#include "src/sync/generation.h"

namespace pactree {
namespace {

constexpr uint64_t kFpMagic = 0x3145455254504546ULL;

inline uint64_t PackRoot(void* inner) { return reinterpret_cast<uint64_t>(inner); }
inline uint64_t PackRootLeaf(uint64_t leaf_raw) { return leaf_raw | 1; }
inline bool RootIsLeaf(uint64_t w) { return (w & 1) != 0; }
inline FpInner* RootInner(uint64_t w) { return reinterpret_cast<FpInner*>(w); }
inline uint64_t RootLeafRaw(uint64_t w) { return w & ~uint64_t{1}; }

inline uint8_t FpFingerprint(uint64_t key_word) {
  uint64_t h = key_word * 0x9e3779b97f4a7c15ULL;
  return static_cast<uint8_t>(h >> 56);
}

}  // namespace

struct FpTree::FpRoot {
  uint64_t magic;
  uint64_t head_leaf_raw;
  uint64_t pad[6];
  struct MuLogEntry {
    uint64_t leaf_raw;      // splitting leaf
    uint64_t new_leaf_raw;  // AllocTo placeholder
  } mu_log[kFpMuLogSlots];
};

std::unique_ptr<FpTree> FpTree::Open(const FpTreeOptions& opts) {
  auto tree = std::unique_ptr<FpTree>(new FpTree());
  if (!tree->Init(opts)) {
    return nullptr;
  }
  return tree;
}

void FpTree::Destroy(const std::string& name) { PmemHeap::Destroy(name); }

FpTree::~FpTree() {
  uint64_t w = root_word_.load(std::memory_order_acquire);
  if (!RootIsLeaf(w)) {
    FreeInnerRec(RootInner(w));
  }
}

void FpTree::FreeInnerRec(FpInner* n) {
  if (n == nullptr) {
    return;
  }
  uint64_t m = n->meta;
  if (!FpInner::MetaLeafChildren(m)) {
    for (uint32_t i = 0; i <= FpInner::MetaCount(m); ++i) {
      FreeInnerRec(reinterpret_cast<FpInner*>(n->children[i]));
    }
  }
  delete n;
}

bool FpTree::Init(const FpTreeOptions& opts) {
  opts_ = opts;
  htm_ = std::make_unique<SoftHtm>(opts.htm);
  PmemHeapOptions h;
  h.pool_id_base = opts.pool_id_base;
  h.pool_size = opts.pool_size;
  h.single_pool = !opts.per_numa_pools;
  heap_ = PmemHeap::OpenOrCreate(opts.name, h);
  if (heap_ == nullptr) {
    return false;
  }
  AdvanceGenerations({heap_.get()});
  root_ = heap_->Root<FpRoot>();
  if (root_->magic != kFpMagic) {
    std::memset(static_cast<void*>(root_), 0, sizeof(FpRoot));
    PPtr<void> leaf = heap_->Alloc(sizeof(FpLeaf));
    if (leaf.IsNull()) {
      return false;
    }
    PersistFence(leaf.get(), sizeof(FpLeaf));
    root_->head_leaf_raw = leaf.raw;
    PersistFence(root_, sizeof(FpRoot));
    root_->magic = kFpMagic;
    PersistFence(&root_->magic, sizeof(uint64_t));
    root_word_.store(PackRootLeaf(leaf.raw), std::memory_order_release);
  } else {
    RecoverMuLog();
    RebuildInner();
  }
  return true;
}

void FpTree::RecoverMuLog() {
  for (auto& e : root_->mu_log) {
    if (e.leaf_raw == 0) {
      continue;
    }
    FpLeaf* leaf = PPtr<FpLeaf>(e.leaf_raw).get();
    if (e.new_leaf_raw != 0) {
      FpLeaf* fresh = PPtr<FpLeaf>(e.new_leaf_raw).get();
      if (leaf->next_raw != e.new_leaf_raw) {
        PmemFree(PPtr<void>(e.new_leaf_raw));  // never linked: reclaim
      } else if (fresh->bitmap != 0) {
        // Linked: make sure moved keys were trimmed from the splitting leaf.
        uint64_t min_new = ~0ULL;
        uint64_t bm = fresh->bitmap;
        while (bm != 0) {
          int i = __builtin_ctzll(bm);
          min_new = std::min(min_new, fresh->keys[i]);
          bm &= bm - 1;
        }
        uint64_t trimmed = leaf->bitmap;
        bm = leaf->bitmap;
        while (bm != 0) {
          int i = __builtin_ctzll(bm);
          if (leaf->keys[i] >= min_new) {
            trimmed &= ~(1ULL << i);
          }
          bm &= bm - 1;
        }
        if (trimmed != leaf->bitmap) {
          AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&leaf->bitmap),
                             trimmed);
        }
      }
    }
    e.leaf_raw = 0;
    e.new_leaf_raw = 0;
    PersistFence(&e, sizeof(e));
  }
}

void FpTree::RebuildInner() {
  // Collect (min key, leaf raw) along the sorted leaf chain.
  std::vector<std::pair<uint64_t, uint64_t>> leaves;
  uint64_t raw = root_->head_leaf_raw;
  while (raw != 0) {
    FpLeaf* leaf = PPtr<FpLeaf>(raw).get();
    uint64_t bm = leaf->bitmap;
    uint64_t min_key = ~0ULL;
    while (bm != 0) {
      int i = __builtin_ctzll(bm);
      min_key = std::min(min_key, leaf->keys[i]);
      bm &= bm - 1;
    }
    leaves.emplace_back(min_key, raw);
    raw = leaf->next_raw;
  }
  if (leaves.size() == 1) {
    root_word_.store(PackRootLeaf(leaves[0].second), std::memory_order_release);
    return;
  }
  // Build inner levels bottom-up.
  std::vector<std::pair<uint64_t, uint64_t>> level = leaves;  // (sep, child-word)
  bool leaf_children = true;
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, uint64_t>> up;
    for (size_t i = 0; i < level.size();) {
      size_t n = std::min(level.size() - i, kFpInnerFan);
      if (level.size() - i - n == 1) {
        n--;  // avoid a trailing 1-child node
      }
      auto* inner = new FpInner();
      std::memset(static_cast<void*>(inner), 0, sizeof(FpInner));
      inner->meta = FpInner::PackMeta(static_cast<uint32_t>(n - 1), leaf_children);
      for (size_t j = 0; j < n; ++j) {
        inner->children[j] = level[i + j].second;
        if (j > 0) {
          inner->keys[j - 1] = level[i + j].first;
        }
      }
      up.emplace_back(level[i].first, reinterpret_cast<uint64_t>(inner));
      i += n;
    }
    level = std::move(up);
    leaf_children = false;
  }
  root_word_.store(PackRoot(reinterpret_cast<void*>(level[0].second)),
                   std::memory_order_release);
}

// Direct (non-transactional) leaf-lock acquisition/release. Must bump the
// HTM lock table so concurrent transactions that read the lock word abort;
// a plain CAS here would be invisible to their commit-time validation.
void FpTree::LeafLockDirect(FpLeaf* leaf) const {
  auto* word = const_cast<uint64_t*>(leaf->lock.WordAddr());
  while (true) {
    uint64_t v = std::atomic_ref<uint64_t>(*word).load(std::memory_order_acquire);
    if ((v & 1) == 0 && htm_->NonTxCas64(word, v, v + 1)) {
      return;
    }
    CpuRelax();
  }
}

void FpTree::LeafUnlock(FpLeaf* leaf) const {
  auto* word = const_cast<uint64_t*>(leaf->lock.WordAddr());
  uint64_t v = std::atomic_ref<uint64_t>(*word).load(std::memory_order_acquire);
  htm_->NonTxWrite64(word, v + 1);
}

FpLeaf* FpTree::NewLeaf(int mu_slot) {
  PPtr<void> p = heap_->AllocTo(ToPPtr(&root_->mu_log[mu_slot].new_leaf_raw),
                                sizeof(FpLeaf));
  return static_cast<FpLeaf*>(p.get());
}

// ---------------------------------------------------------------------------
// Descent
// ---------------------------------------------------------------------------

uint64_t FpTree::FindLeafTxn(SoftHtm::Txn* txn, uint64_t key_word) const {
  uint64_t w = txn->Read64(const_cast<std::atomic<uint64_t>*>(&root_word_));
  if (!txn->ok()) {
    return 0;
  }
  while (!RootIsLeaf(w)) {
    FpInner* inner = RootInner(w);
    uint64_t m = txn->Read64(&inner->meta);
    uint32_t count = FpInner::MetaCount(m);
    // Binary search over separators, each read transactionally.
    uint32_t lo = 0;
    uint32_t hi = count;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      uint64_t sep = txn->Read64(&inner->keys[mid]);
      if (!txn->ok()) {
        return 0;
      }
      if (key_word < sep) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    uint64_t child = txn->Read64(&inner->children[lo]);
    if (!txn->ok()) {
      return 0;
    }
    if (FpInner::MetaLeafChildren(m)) {
      return child;  // leaf PPtr raw
    }
    w = child;
  }
  return RootLeafRaw(w);
}

uint64_t FpTree::FindLeafDirect(uint64_t key_word) const {
  uint64_t w = root_word_.load(std::memory_order_acquire);
  while (!RootIsLeaf(w)) {
    FpInner* inner = RootInner(w);
    uint64_t m = inner->meta;
    uint32_t count = FpInner::MetaCount(m);
    uint32_t lo = 0;
    uint32_t hi = count;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (key_word < inner->keys[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    uint64_t child = inner->children[lo];
    if (FpInner::MetaLeafChildren(m)) {
      return child;
    }
    w = child;
  }
  return RootLeafRaw(w);
}

int FpTree::LeafFindKey(const FpLeaf* leaf, uint64_t key_word,
                        uint8_t fingerprint) const {
  uint64_t live = std::atomic_ref<uint64_t>(const_cast<FpLeaf*>(leaf)->bitmap)
                      .load(std::memory_order_acquire);
  uint64_t bm = live;
  while (bm != 0) {
    int i = __builtin_ctzll(bm);
    bm &= bm - 1;
    if (leaf->fp[i] == fingerprint && leaf->keys[i] == key_word) {
      return i;
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

Status FpTree::Lookup(const Key& key, uint64_t* value) const {
  EpochGuard guard;
  uint64_t key_word = KeyWord(key);
  uint8_t fingerprint = FpFingerprint(key_word);
  int retries = 0;
  while (true) {
    if (retries >= opts_.max_htm_retries) {
      // Global fallback: exclusive, non-transactional.
      const_cast<SoftHtm*>(htm_.get())->LockFallback();
      uint64_t leaf_raw = FindLeafDirect(key_word);
      FpLeaf* leaf = PPtr<FpLeaf>(leaf_raw).get();
      AnnotateNvmRead(leaf, sizeof(FpLeaf));
      int slot = LeafFindKey(leaf, key_word, fingerprint);
      if (slot >= 0 && value != nullptr) {
        *value = leaf->values[slot];
      }
      const_cast<SoftHtm*>(htm_.get())->UnlockFallback();
      return slot >= 0 ? Status::kOk : Status::kNotFound;
    }
    SoftHtm::Txn txn(htm_.get());
    if (!txn.Begin()) {
      retries++;
      continue;
    }
    uint64_t leaf_raw = FindLeafTxn(&txn, key_word);
    if (!txn.ok()) {
      retries++;
      continue;
    }
    FpLeaf* leaf = PPtr<FpLeaf>(leaf_raw).get();
    AnnotateNvmRead(leaf, 64);
    // Read the leaf inside the transaction (the original executes the whole
    // lookup in TSX): lock word, bitmap, fingerprints, then the match.
    uint64_t lock_word = txn.Read64(leaf->lock.WordAddr());
    if ((lock_word & 1) != 0) {
      txn.Abort(HtmAbortCause::kConflict);
      retries++;
      continue;
    }
    uint64_t live = txn.Read64(&leaf->bitmap);
    int found = -1;
    uint64_t v = 0;
    uint64_t bm = live;
    while (bm != 0 && txn.ok()) {
      int i = __builtin_ctzll(bm);
      bm &= bm - 1;
      if (leaf->fp[i] != fingerprint) {
        continue;
      }
      AnnotateNvmRead(&leaf->keys[i], sizeof(uint64_t));
      uint64_t k = txn.Read64(&leaf->keys[i]);
      if (k == key_word) {
        v = txn.Read64(&leaf->values[i]);
        found = i;
        break;
      }
    }
    if (!txn.ok() || !txn.Commit()) {
      retries++;
      continue;
    }
    if (found < 0) {
      return Status::kNotFound;
    }
    if (value != nullptr) {
      *value = v;
    }
    return Status::kOk;
  }
}

// ---------------------------------------------------------------------------
// Insert / Remove
// ---------------------------------------------------------------------------

Status FpTree::LeafInsert(FpLeaf* leaf, uint64_t key_word, uint8_t fingerprint,
                          uint64_t value, bool* needs_split) {
  *needs_split = false;
  int existing = LeafFindKey(leaf, key_word, fingerprint);
  uint64_t live = leaf->bitmap;
  if (existing >= 0) {
    // Out-of-place update: new slot + one atomic bitmap flip.
    if (live == ~0ULL >> (64 - kFpLeafSlots) && false) {
      // unreachable guard
    }
    uint64_t free_mask = ~live & ((1ULL << kFpLeafSlots) - 1);
    if (free_mask == 0) {
      *needs_split = true;
      return Status::kRetry;
    }
    int slot = __builtin_ctzll(free_mask);
    leaf->keys[slot] = key_word;
    leaf->values[slot] = value;
    leaf->fp[slot] = fingerprint;
    PersistRange(&leaf->keys[slot], sizeof(uint64_t));
    PersistRange(&leaf->values[slot], sizeof(uint64_t));
    PersistRange(&leaf->fp[slot], 1);
    Fence();
    uint64_t bm = (live | (1ULL << slot)) & ~(1ULL << existing);
    AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&leaf->bitmap), bm);
    return Status::kExists;
  }
  uint64_t free_mask = ~live & ((1ULL << kFpLeafSlots) - 1);
  if (free_mask == 0) {
    *needs_split = true;
    return Status::kRetry;
  }
  int slot = __builtin_ctzll(free_mask);
  leaf->keys[slot] = key_word;
  leaf->values[slot] = value;
  leaf->fp[slot] = fingerprint;
  PersistRange(&leaf->keys[slot], sizeof(uint64_t));
  PersistRange(&leaf->values[slot], sizeof(uint64_t));
  PersistRange(&leaf->fp[slot], 1);
  Fence();
  AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&leaf->bitmap),
                     live | (1ULL << slot));
  return Status::kOk;
}

void FpTree::SplitLeaf(FpLeaf* leaf, uint64_t leaf_raw) {
  // Pick a free micro-log slot (fallback lock held: no contention).
  int mu_slot = -1;
  for (size_t i = 0; i < kFpMuLogSlots; ++i) {
    if (root_->mu_log[i].leaf_raw == 0) {
      mu_slot = static_cast<int>(i);
      break;
    }
  }
  assert(mu_slot >= 0);
  root_->mu_log[mu_slot].leaf_raw = leaf_raw;
  root_->mu_log[mu_slot].new_leaf_raw = 0;
  PersistFence(&root_->mu_log[mu_slot], sizeof(FpRoot::MuLogEntry));

  FpLeaf* fresh = NewLeaf(mu_slot);
  assert(fresh != nullptr);
  uint64_t fresh_raw = root_->mu_log[mu_slot].new_leaf_raw;

  // Median by sorting the live keys.
  std::vector<std::pair<uint64_t, int>> sorted;
  uint64_t bm = leaf->bitmap;
  while (bm != 0) {
    int i = __builtin_ctzll(bm);
    sorted.emplace_back(leaf->keys[i], i);
    bm &= bm - 1;
  }
  std::sort(sorted.begin(), sorted.end());
  size_t half = sorted.size() / 2;
  uint64_t moved_bits = 0;
  uint64_t fresh_bm = 0;
  for (size_t i = half; i < sorted.size(); ++i) {
    int src = sorted[i].second;
    int dst = static_cast<int>(i - half);
    fresh->keys[dst] = leaf->keys[src];
    fresh->values[dst] = leaf->values[src];
    fresh->fp[dst] = leaf->fp[src];
    fresh_bm |= 1ULL << dst;
    moved_bits |= 1ULL << src;
  }
  fresh->bitmap = fresh_bm;
  fresh->next_raw = leaf->next_raw;
  PersistFence(fresh, sizeof(FpLeaf));
  // Link, then trim (bitmap is the pivot; recovery can redo the trim).
  AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&leaf->next_raw),
                     fresh_raw);
  AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&leaf->bitmap),
                     leaf->bitmap & ~moved_bits);

  // DRAM inner update, synchronous, on the critical path (GC2). Conflict
  // safety: every store bumps the HTM lock table.
  InnerInsert(sorted[half].first, leaf_raw, fresh_raw);

  root_->mu_log[mu_slot].leaf_raw = 0;
  root_->mu_log[mu_slot].new_leaf_raw = 0;
  PersistFence(&root_->mu_log[mu_slot], sizeof(FpRoot::MuLogEntry));
}

void FpTree::InnerInsert(uint64_t split_key, uint64_t left_raw, uint64_t right_raw) {
  uint64_t w = root_word_.load(std::memory_order_acquire);
  if (RootIsLeaf(w)) {
    auto* inner = new FpInner();
    std::memset(static_cast<void*>(inner), 0, sizeof(FpInner));
    inner->children[0] = left_raw;
    inner->children[1] = right_raw;
    inner->keys[0] = split_key;
    inner->meta = FpInner::PackMeta(1, /*leaf_children=*/true);
    htm_->NonTxWrite64(&root_word_, PackRoot(inner));
    return;
  }
  // Copy-on-write along the descent path; old nodes retire via epochs so
  // in-flight transactions stay memory-safe.
  struct PathEntry {
    FpInner* node;
    uint32_t child_idx;
  };
  std::vector<PathEntry> path;
  FpInner* cur = RootInner(w);
  while (true) {
    uint64_t m = cur->meta;
    uint32_t count = FpInner::MetaCount(m);
    uint32_t lo = 0;
    while (lo < count && split_key >= cur->keys[lo]) {
      lo++;
    }
    path.push_back({cur, lo});
    if (FpInner::MetaLeafChildren(m)) {
      break;
    }
    cur = reinterpret_cast<FpInner*>(cur->children[lo]);
  }
  // Insert bottom-up with node copies.
  uint64_t carry_key = split_key;
  uint64_t carry_child = right_raw;
  bool done = false;
  for (int level = static_cast<int>(path.size()) - 1; level >= 0 && !done; --level) {
    FpInner* node = path[level].node;
    uint32_t idx = path[level].child_idx;
    uint64_t m = node->meta;
    uint32_t count = FpInner::MetaCount(m);
    auto* copy = new FpInner(*node);
    if (count + 1 < kFpInnerFan) {
      for (uint32_t j = count; j > idx; --j) {
        copy->keys[j] = copy->keys[j - 1];
      }
      for (uint32_t j = count + 1; j > idx + 1; --j) {
        copy->children[j] = copy->children[j - 1];
      }
      copy->keys[idx] = carry_key;
      copy->children[idx + 1] = carry_child;
      copy->meta = FpInner::PackMeta(count + 1, FpInner::MetaLeafChildren(m));
      done = true;
    } else {
      // Split the copy: left keeps [0, mid), median moves up.
      uint64_t keys_tmp[kFpInnerFan];
      uint64_t children_tmp[kFpInnerFan + 1];
      std::memcpy(keys_tmp, node->keys, sizeof(uint64_t) * count);
      std::memcpy(children_tmp, node->children, sizeof(uint64_t) * (count + 1));
      for (uint32_t j = count; j > idx; --j) {
        keys_tmp[j] = keys_tmp[j - 1];
      }
      for (uint32_t j = count + 1; j > idx + 1; --j) {
        children_tmp[j] = children_tmp[j - 1];
      }
      keys_tmp[idx] = carry_key;
      children_tmp[idx + 1] = carry_child;
      uint32_t total = count + 1;
      uint32_t mid = total / 2;
      auto* right = new FpInner();
      std::memset(static_cast<void*>(copy), 0, sizeof(FpInner));
      std::memset(static_cast<void*>(right), 0, sizeof(FpInner));
      bool lc = FpInner::MetaLeafChildren(m);
      copy->meta = FpInner::PackMeta(mid, lc);
      std::memcpy(copy->keys, keys_tmp, sizeof(uint64_t) * mid);
      std::memcpy(copy->children, children_tmp, sizeof(uint64_t) * (mid + 1));
      uint32_t rcount = total - mid - 1;
      right->meta = FpInner::PackMeta(rcount, lc);
      std::memcpy(right->keys, keys_tmp + mid + 1, sizeof(uint64_t) * rcount);
      std::memcpy(right->children, children_tmp + mid + 1,
                  sizeof(uint64_t) * (rcount + 1));
      carry_key = keys_tmp[mid];
      carry_child = reinterpret_cast<uint64_t>(right);
    }
    // Swing the parent's pointer (or the root) to the copy.
    uint64_t copy_word = reinterpret_cast<uint64_t>(copy);
    if (level == 0) {
      if (done) {
        htm_->NonTxWrite64(&root_word_, copy_word);
      } else {
        auto* new_root = new FpInner();
        std::memset(static_cast<void*>(new_root), 0, sizeof(FpInner));
        new_root->children[0] = copy_word;
        new_root->children[1] = carry_child;
        new_root->keys[0] = carry_key;
        new_root->meta = FpInner::PackMeta(1, /*leaf_children=*/false);
        htm_->NonTxWrite64(&root_word_, PackRoot(new_root));
        done = true;
      }
    } else {
      FpInner* parent = path[level - 1].node;
      htm_->NonTxWrite64(&parent->children[path[level - 1].child_idx], copy_word);
      // The parent keeps its identity; if a split carried up, continue the
      // loop to insert (carry_key, carry_child) into the parent.
    }
    EpochManager::Instance().Retire(
        PPtr<void>::Null(), [](void* p) { delete static_cast<FpInner*>(p); }, node);
  }
}

Status FpTree::Insert(const Key& key, uint64_t value) {
  EpochGuard guard;
  uint64_t key_word = KeyWord(key);
  uint8_t fingerprint = FpFingerprint(key_word);
  int retries = 0;
  while (true) {
    FpLeaf* leaf = nullptr;
    uint64_t leaf_raw = 0;
    bool have_fallback = false;
    if (retries >= opts_.max_htm_retries) {
      htm_->LockFallback();
      have_fallback = true;
      leaf_raw = FindLeafDirect(key_word);
      leaf = PPtr<FpLeaf>(leaf_raw).get();
      LeafLockDirect(leaf);
    } else {
      SoftHtm::Txn txn(htm_.get());
      if (!txn.Begin()) {
        retries++;
        continue;
      }
      leaf_raw = FindLeafTxn(&txn, key_word);
      if (!txn.ok()) {
        retries++;
        continue;
      }
      leaf = PPtr<FpLeaf>(leaf_raw).get();
      // Transactionally acquire the leaf lock, then commit (TSX idiom).
      uint64_t lock_word = txn.Read64(leaf->lock.WordAddr());
      if ((lock_word & 1) != 0) {
        txn.Abort(HtmAbortCause::kConflict);
        retries++;
        continue;
      }
      txn.Write64(const_cast<uint64_t*>(leaf->lock.WordAddr()), lock_word + 1);
      if (!txn.Commit()) {
        retries++;
        continue;
      }
    }
    AnnotateNvmRead(leaf, sizeof(FpLeaf));
    bool needs_split = false;
    Status s = LeafInsert(leaf, key_word, fingerprint, value, &needs_split);
    if (!needs_split) {
      LeafUnlock(leaf);
      if (have_fallback) {
        htm_->UnlockFallback();
      }
      return s;
    }
    // Split path: the DRAM inner update needs the fallback lock. Lock order
    // is fallback -> leaf everywhere, so release the leaf first (another
    // fallback-path writer may be spinning on it while holding the fallback
    // lock), then re-acquire and re-check under the fallback lock.
    if (!have_fallback) {
      LeafUnlock(leaf);
      htm_->LockFallback();
      LeafLockDirect(leaf);
      uint64_t live = std::atomic_ref<uint64_t>(leaf->bitmap).load(std::memory_order_acquire);
      if ((~live & ((1ULL << kFpLeafSlots) - 1)) != 0) {
        // Someone split it meanwhile; retry the insert.
        LeafUnlock(leaf);
        htm_->UnlockFallback();
        retries = 0;
        continue;
      }
    }
    SplitLeaf(leaf, leaf_raw);
    LeafUnlock(leaf);
    htm_->UnlockFallback();
    retries = 0;  // retry the insert into the split halves
  }
}

Status FpTree::Remove(const Key& key) {
  EpochGuard guard;
  uint64_t key_word = KeyWord(key);
  uint8_t fingerprint = FpFingerprint(key_word);
  int retries = 0;
  while (true) {
    FpLeaf* leaf = nullptr;
    bool have_fallback = false;
    if (retries >= opts_.max_htm_retries) {
      htm_->LockFallback();
      have_fallback = true;
      leaf = PPtr<FpLeaf>(FindLeafDirect(key_word)).get();
      LeafLockDirect(leaf);
    } else {
      SoftHtm::Txn txn(htm_.get());
      if (!txn.Begin()) {
        retries++;
        continue;
      }
      uint64_t leaf_raw = FindLeafTxn(&txn, key_word);
      if (!txn.ok()) {
        retries++;
        continue;
      }
      leaf = PPtr<FpLeaf>(leaf_raw).get();
      uint64_t lock_word = txn.Read64(leaf->lock.WordAddr());
      if ((lock_word & 1) != 0) {
        txn.Abort(HtmAbortCause::kConflict);
        retries++;
        continue;
      }
      txn.Write64(const_cast<uint64_t*>(leaf->lock.WordAddr()), lock_word + 1);
      if (!txn.Commit()) {
        retries++;
        continue;
      }
    }
    AnnotateNvmRead(leaf, sizeof(FpLeaf));
    int slot = LeafFindKey(leaf, key_word, fingerprint);
    if (slot >= 0) {
      AtomicStorePersist(reinterpret_cast<std::atomic<uint64_t>*>(&leaf->bitmap),
                         leaf->bitmap & ~(1ULL << slot));
    }
    LeafUnlock(leaf);
    if (have_fallback) {
      htm_->UnlockFallback();
    }
    return slot >= 0 ? Status::kOk : Status::kNotFound;
  }
}

// ---------------------------------------------------------------------------
// Scan (unsorted leaves: gather + sort + filter -- FP-Tree's weakness)
// ---------------------------------------------------------------------------

size_t FpTree::Scan(const Key& start, size_t count,
                    std::vector<std::pair<Key, uint64_t>>* out) const {
  EpochGuard guard;
  out->clear();
  uint64_t start_word = KeyWord(start);
  int retries = 0;
  uint64_t leaf_raw = 0;
  while (leaf_raw == 0) {
    if (retries >= opts_.max_htm_retries) {
      const_cast<SoftHtm*>(htm_.get())->LockFallback();
      leaf_raw = FindLeafDirect(start_word);
      const_cast<SoftHtm*>(htm_.get())->UnlockFallback();
      break;
    }
    SoftHtm::Txn txn(htm_.get());
    if (!txn.Begin()) {
      retries++;
      continue;
    }
    leaf_raw = FindLeafTxn(&txn, start_word);
    if (!txn.ok() || !txn.Commit()) {
      leaf_raw = 0;
      retries++;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> batch;
  while (leaf_raw != 0 && out->size() < count) {
    FpLeaf* leaf = PPtr<FpLeaf>(leaf_raw).get();
    uint64_t next;
    while (true) {
      batch.clear();
      AnnotateNvmRead(leaf, sizeof(FpLeaf));
      uint64_t token;
      if (!leaf->lock.TryReadLock(&token)) {
        CpuRelax();
        continue;
      }
      uint64_t bm = std::atomic_ref<uint64_t>(leaf->bitmap).load(std::memory_order_acquire);
      while (bm != 0) {
        int i = __builtin_ctzll(bm);
        bm &= bm - 1;
        if (leaf->keys[i] >= start_word) {
          batch.emplace_back(leaf->keys[i], leaf->values[i]);
        }
      }
      next = leaf->next_raw;
      if (leaf->lock.Validate(token)) {
        break;
      }
    }
    std::sort(batch.begin(), batch.end());
    for (const auto& [k, v] : batch) {
      if (out->size() >= count) {
        break;
      }
      out->emplace_back(Key::FromInt(k), v);
    }
    leaf_raw = next;
  }
  return out->size();
}

uint64_t FpTree::Size() const {
  uint64_t total = 0;
  uint64_t raw = root_->head_leaf_raw;
  while (raw != 0) {
    FpLeaf* leaf = PPtr<FpLeaf>(raw).get();
    total += static_cast<uint64_t>(__builtin_popcountll(leaf->bitmap));
    raw = leaf->next_raw;
  }
  return total;
}

}  // namespace pactree
