#include "src/index/verify.h"

#include <cstdio>

namespace pactree {
namespace {

std::string KeyRepr(const Key& k) {
  // Integer keys (the common sweep case) print as numbers, others as hex.
  if (k.size() == Key::kIntLen) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(k.ToInt()));
    return buf;
  }
  std::string out = "0x";
  for (size_t i = 0; i < k.size(); ++i) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02x", k.At(i));
    out += buf;
  }
  return out;
}

void Violation(VerifyReport* r, std::string msg) { r->violations.push_back(std::move(msg)); }

}  // namespace

std::string VerifyReport::ToString() const {
  if (violations.empty()) {
    return "ok";
  }
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) {
      out += "; ";
    }
    out += v;
  }
  return out;
}

VerifyReport VerifyRecoveredIndex(const RangeIndex& index,
                                  const RecoveryExpectation& expect) {
  VerifyReport report;

  // Full scan: the bound exceeds everything the test could have inserted, so
  // the scan is total and the sortedness check covers the whole key space.
  std::vector<std::pair<Key, uint64_t>> all;
  size_t limit = expect.acked.size() + expect.inflight.size() + expect.removed.size();
  index.Scan(Key::Min(), 16 * limit + 1024, &all);
  report.scanned = all.size();

  std::map<Key, uint64_t> scanned;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0 && !(all[i - 1].first < all[i].first)) {
      Violation(&report, "scan not strictly ascending at " + KeyRepr(all[i].first) +
                             (all[i - 1].first == all[i].first ? " (duplicate key)" : ""));
    }
    scanned.emplace(all[i].first, all[i].second);
  }

  // Acknowledged keys: present in scan and lookup, with the acked value.
  for (const auto& [key, value] : expect.acked) {
    auto it = scanned.find(key);
    if (it == scanned.end()) {
      Violation(&report, "acked key " + KeyRepr(key) + " missing from scan");
    } else if (it->second != value) {
      Violation(&report, "acked key " + KeyRepr(key) + " has wrong value in scan");
    }
    uint64_t got = 0;
    Status s = index.Lookup(key, &got);
    if (s != Status::kOk) {
      Violation(&report, "acked key " + KeyRepr(key) + " lookup failed: " + StatusString(s));
    } else if (got != value) {
      Violation(&report, "acked key " + KeyRepr(key) + " has wrong value in lookup");
    }
  }

  // Removed keys must not resurrect.
  for (const Key& key : expect.removed) {
    if (scanned.count(key) != 0) {
      Violation(&report, "removed key " + KeyRepr(key) + " resurrected in scan");
    }
    uint64_t got = 0;
    if (index.Lookup(key, &got) == Status::kOk) {
      Violation(&report, "removed key " + KeyRepr(key) + " resurrected in lookup");
    }
  }

  // In-flight keys: atomic outcome, scan and lookup agreeing.
  for (const auto& [key, value] : expect.inflight) {
    auto it = scanned.find(key);
    uint64_t got = 0;
    Status s = index.Lookup(key, &got);
    bool in_scan = it != scanned.end();
    bool in_lookup = s == Status::kOk;
    if (in_scan != in_lookup) {
      Violation(&report, "in-flight key " + KeyRepr(key) + " torn: scan and lookup disagree");
    }
    if (in_scan && it->second != value) {
      Violation(&report, "in-flight key " + KeyRepr(key) + " present with wrong value");
    }
    if (in_lookup && got != value) {
      Violation(&report, "in-flight key " + KeyRepr(key) + " lookup returned wrong value");
    }
  }

  // Ghost keys: anything scanned that no part of the history explains.
  for (const auto& [key, value] : scanned) {
    (void)value;
    if (expect.acked.count(key) == 0 && expect.inflight.count(key) == 0) {
      Violation(&report, "ghost key " + KeyRepr(key) + " appeared from nowhere");
    }
  }

  size_t pending = index.PendingLogEntries();
  if (pending != 0) {
    Violation(&report, "allocation log not drained: " + std::to_string(pending) +
                           " entries pending");
  }
  if (!index.OperationLogsDrained()) {
    Violation(&report, "operation (SMO) logs not empty after recovery");
  }
  std::string why;
  if (!index.CheckInvariants(&why)) {
    Violation(&report, "structural invariant violated: " + why);
  }
  return report;
}

}  // namespace pactree
