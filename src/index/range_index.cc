#include "src/index/range_index.h"

#include <atomic>

#include "src/art/art.h"
#include "src/baselines/bztree.h"
#include "src/baselines/fastfair.h"
#include "src/baselines/fptree.h"
#include "src/pactree/pactree.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"

namespace pactree {
namespace {

// Auto-assigned pool id bases: 32 ids per index instance, starting high enough
// to never collide with the fixed ids used in tests/examples.
std::atomic<uint16_t> g_next_pool_base{1000};

uint16_t PoolBase(const IndexFactoryOptions& opts) {
  if (opts.pool_id_base != 0) {
    return opts.pool_id_base;
  }
  return g_next_pool_base.fetch_add(32, std::memory_order_relaxed);
}

class PacTreeIndex : public RangeIndex {
 public:
  explicit PacTreeIndex(std::unique_ptr<PacTree> tree) : tree_(std::move(tree)) {}
  Status Insert(const Key& k, uint64_t v) override { return tree_->Insert(k, v); }
  Status Update(const Key& k, uint64_t v) override {
    Status s = tree_->Update(k, v);
    // YCSB updates may target not-yet-inserted keys in mixed phases.
    return s == Status::kNotFound ? tree_->Insert(k, v) : s;
  }
  Status Lookup(const Key& k, uint64_t* v) const override { return tree_->Lookup(k, v); }
  Status Remove(const Key& k) override { return tree_->Remove(k); }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    return tree_->Scan(s, n, out);
  }
  size_t MultiGet(std::span<const Key> keys, uint64_t* values,
                  Status* statuses) const override {
    return tree_->MultiGet(keys, values, statuses);
  }
  void MultiScan(std::span<const Key> starts, std::span<const size_t> counts,
                 std::vector<std::vector<std::pair<Key, uint64_t>>>* out)
      const override {
    tree_->MultiScan(starts, counts, out);
  }
  uint64_t Size() const override { return tree_->Size(); }
  std::string Name() const override { return "PACTree"; }
  std::string StatsJson() const override {
    PacTreeStats s = tree_->Stats();
    std::string j = "{";
    auto field = [&j](const char* k, uint64_t v) {
      if (j.size() > 1) {
        j += ",";
      }
      j += "\"";
      j += k;
      j += "\":";
      j += std::to_string(v);
    };
    field("splits", s.splits);
    field("merges", s.merges);
    field("smo_applied", s.smo_applied);
    field("retries", s.retries);
    field("epoch_enters", s.epoch_enters);
    field("node_locks", s.node_locks);
    field("multiget_batches", s.multiget_batches);
    field("multiget_keys", s.multiget_keys);
    field("multiget_node_groups", s.multiget_node_groups);
    field("multiget_group_retries", s.multiget_group_retries);
    field("multiscan_batches", s.multiscan_batches);
    field("absorb_staged", s.absorb.staged);
    field("absorb_drained", s.absorb.drained);
    field("absorb_lookup_hits", s.absorb.lookup_hits);
    field("absorb_apply_full", s.absorb.apply_full);
    // Exhaustion / degraded-mode visibility.
    field("degraded", s.degraded ? 1 : 0);
    field("write_rejects", s.write_rejects);
    field("split_alloc_failures", s.split_alloc_failures);
    field("alloc_failures", s.alloc_failures);
    field("heap_remote_allocs", tree_->search_heap()->RemoteAllocs() +
                                    tree_->data_heap()->RemoteAllocs() +
                                    tree_->log_heap()->RemoteAllocs());
    j += ",\"used_fraction\":" + std::to_string(s.used_fraction);
    j += ",\"hop_hist\":[";
    for (int i = 0; i < kHopHistBuckets; ++i) {
      if (i > 0) {
        j += ",";
      }
      j += std::to_string(s.hop_hist[i]);
    }
    j += "]}";
    return j;
  }
  void Drain() override {
    // Absorb first: drained batches may log SMOs.
    tree_->DrainAbsorb();
    tree_->DrainSmoLogs();
  }
  bool CheckInvariants(std::string* why) const override {
    return tree_->CheckInvariants(why);
  }
  size_t PendingLogEntries() const override {
    return tree_->search_heap()->PendingLogEntries() +
           tree_->data_heap()->PendingLogEntries() +
           tree_->log_heap()->PendingLogEntries();
  }
  bool OperationLogsDrained() const override {
    return tree_->SmoLogsDrained() && tree_->AbsorbDrained();
  }
  std::vector<PmemHeap*> Heaps() const override {
    return {tree_->search_heap(), tree_->data_heap(), tree_->log_heap()};
  }
  PacTree* tree() { return tree_.get(); }

 private:
  std::unique_ptr<PacTree> tree_;
};

class PdlArtIndex : public RangeIndex {
 public:
  PdlArtIndex(std::unique_ptr<PmemHeap> heap, std::string name)
      : heap_(std::move(heap)), name_(std::move(name)) {
    AdvanceGenerations({heap_.get()});
    art_ = std::make_unique<PdlArt>(heap_.get(), heap_->Root<ArtTreeRoot>());
    art_->Recover();
  }
  Status Insert(const Key& k, uint64_t v) override {
    Status s = art_->Insert(k, v);
    return s;
  }
  Status Lookup(const Key& k, uint64_t* v) const override { return art_->Lookup(k, v); }
  Status Remove(const Key& k) override { return art_->Remove(k); }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    return art_->Scan(s, n, out);
  }
  uint64_t Size() const override { return art_->Size(); }
  std::string Name() const override { return "PDL-ART"; }
  size_t PendingLogEntries() const override { return heap_->PendingLogEntries(); }
  std::vector<PmemHeap*> Heaps() const override { return {heap_.get()}; }
  const std::string& heap_name() const { return name_; }

 private:
  std::unique_ptr<PmemHeap> heap_;
  std::unique_ptr<PdlArt> art_;
  std::string name_;
};

class FastFairIndex : public RangeIndex {
 public:
  explicit FastFairIndex(std::unique_ptr<FastFair> tree) : tree_(std::move(tree)) {}
  Status Insert(const Key& k, uint64_t v) override { return tree_->Insert(k, v); }
  Status Lookup(const Key& k, uint64_t* v) const override { return tree_->Lookup(k, v); }
  Status Remove(const Key& k) override { return tree_->Remove(k); }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    return tree_->Scan(s, n, out);
  }
  uint64_t Size() const override { return tree_->Size(); }
  std::string Name() const override { return "FastFair"; }
  bool CheckInvariants(std::string* why) const override {
    return tree_->CheckInvariants(why);
  }
  size_t PendingLogEntries() const override { return tree_->heap()->PendingLogEntries(); }
  std::vector<PmemHeap*> Heaps() const override { return {tree_->heap()}; }

 private:
  std::unique_ptr<FastFair> tree_;
};

class FpTreeIndex : public RangeIndex {
 public:
  explicit FpTreeIndex(std::unique_ptr<FpTree> tree) : tree_(std::move(tree)) {}
  Status Insert(const Key& k, uint64_t v) override { return tree_->Insert(k, v); }
  Status Lookup(const Key& k, uint64_t* v) const override { return tree_->Lookup(k, v); }
  Status Remove(const Key& k) override { return tree_->Remove(k); }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    return tree_->Scan(s, n, out);
  }
  uint64_t Size() const override { return tree_->Size(); }
  std::string Name() const override { return "FPTree"; }
  // The authors' FP-Tree binary supports fixed 8-byte keys only (paper §6).
  bool SupportsStringKeys() const override { return false; }
  size_t PendingLogEntries() const override { return tree_->heap()->PendingLogEntries(); }
  std::vector<PmemHeap*> Heaps() const override { return {tree_->heap()}; }
  FpTree* tree() { return tree_.get(); }

 private:
  std::unique_ptr<FpTree> tree_;
};

class BzTreeIndex : public RangeIndex {
 public:
  explicit BzTreeIndex(std::unique_ptr<BzTree> tree) : tree_(std::move(tree)) {}
  Status Insert(const Key& k, uint64_t v) override { return tree_->Insert(k, v); }
  Status Lookup(const Key& k, uint64_t* v) const override { return tree_->Lookup(k, v); }
  Status Remove(const Key& k) override { return tree_->Remove(k); }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    return tree_->Scan(s, n, out);
  }
  uint64_t Size() const override { return tree_->Size(); }
  std::string Name() const override { return "BzTree"; }
  size_t PendingLogEntries() const override { return tree_->heap()->PendingLogEntries(); }
  std::vector<PmemHeap*> Heaps() const override { return {tree_->heap()}; }

 private:
  std::unique_ptr<BzTree> tree_;
};

}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kPacTree:
      return "pactree";
    case IndexKind::kPdlArt:
      return "pdlart";
    case IndexKind::kFastFair:
      return "fastfair";
    case IndexKind::kFpTree:
      return "fptree";
    case IndexKind::kBzTree:
      return "bztree";
  }
  return "unknown";
}

std::unique_ptr<RangeIndex> CreateIndex(IndexKind kind, const IndexFactoryOptions& opts) {
  std::string name = opts.name.empty() ? IndexKindName(kind) : opts.name;
  uint16_t base = PoolBase(opts);
  switch (kind) {
    case IndexKind::kPacTree: {
      if (!opts.open_existing) {
        PacTree::Destroy(name);
      }
      PacTreeOptions o;
      o.name = name;
      o.pool_id_base = base;
      o.pool_size = opts.pool_size;
      o.async_search_update = opts.pactree_async_update;
      o.selective_persistence = opts.pactree_selective_persistence;
      o.dram_search_layer = opts.pactree_dram_search_layer;
      o.per_numa_pools = opts.per_numa_pools;
      o.updater_count = opts.pactree_updaters;
      o.absorb_writes = opts.pactree_absorb_writes;
      auto tree = PacTree::Open(o);
      return tree == nullptr ? nullptr
                             : std::make_unique<PacTreeIndex>(std::move(tree));
    }
    case IndexKind::kPdlArt: {
      if (!opts.open_existing) {
        PmemHeap::Destroy(name);
      }
      PmemHeapOptions h;
      h.pool_id_base = base;
      h.pool_size = opts.pool_size;
      h.single_pool = !opts.per_numa_pools;
      auto heap = PmemHeap::OpenOrCreate(name, h);
      return heap == nullptr ? nullptr
                             : std::make_unique<PdlArtIndex>(std::move(heap), name);
    }
    case IndexKind::kFastFair: {
      if (!opts.open_existing) {
        FastFair::Destroy(name);
      }
      FastFairOptions o;
      o.name = name;
      o.pool_id_base = base;
      o.pool_size = opts.pool_size;
      o.string_keys = opts.string_keys;
      o.per_numa_pools = opts.per_numa_pools;
      auto tree = FastFair::Open(o);
      return tree == nullptr ? nullptr
                             : std::make_unique<FastFairIndex>(std::move(tree));
    }
    case IndexKind::kFpTree: {
      if (!opts.open_existing) {
        FpTree::Destroy(name);
      }
      FpTreeOptions o;
      o.name = name;
      o.pool_id_base = base;
      o.pool_size = opts.pool_size;
      o.per_numa_pools = opts.per_numa_pools;
      o.htm.spurious_abort_per_line = opts.fptree_spurious_abort_per_line;
      auto tree = FpTree::Open(o);
      return tree == nullptr ? nullptr : std::make_unique<FpTreeIndex>(std::move(tree));
    }
    case IndexKind::kBzTree: {
      if (!opts.open_existing) {
        BzTree::Destroy(name);
      }
      BzTreeOptions o;
      o.name = name;
      o.pool_id_base = base;
      o.pool_size = opts.pool_size;
      o.per_numa_pools = opts.per_numa_pools;
      auto tree = BzTree::Open(o);
      return tree == nullptr ? nullptr : std::make_unique<BzTreeIndex>(std::move(tree));
    }
  }
  return nullptr;
}

void DestroyIndex(IndexKind kind, const std::string& name) {
  std::string n = name.empty() ? IndexKindName(kind) : name;
  switch (kind) {
    case IndexKind::kPacTree:
      PacTree::Destroy(n);
      break;
    case IndexKind::kPdlArt:
      PmemHeap::Destroy(n);
      break;
    case IndexKind::kFastFair:
      FastFair::Destroy(n);
      break;
    case IndexKind::kFpTree:
      FpTree::Destroy(n);
      break;
    case IndexKind::kBzTree:
      BzTree::Destroy(n);
      break;
  }
  EpochManager::Instance().DrainAll();
}

}  // namespace pactree
