// Uniform interface over every persistent range index in this repository, plus
// a factory. The benchmark harness (bench/) drives indexes exclusively through
// this interface, like the paper's index-microbench.
#ifndef PACTREE_SRC_INDEX_RANGE_INDEX_H_
#define PACTREE_SRC_INDEX_RANGE_INDEX_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/key.h"
#include "src/common/status.h"

namespace pactree {

class PmemHeap;

class RangeIndex {
 public:
  virtual ~RangeIndex() = default;

  virtual Status Insert(const Key& key, uint64_t value) = 0;  // upsert
  // Paper §6: "we replace the update operation with insert" for indexes that
  // lack native update; the default does exactly that.
  virtual Status Update(const Key& key, uint64_t value) { return Insert(key, value); }
  virtual Status Lookup(const Key& key, uint64_t* value) const = 0;
  virtual Status Remove(const Key& key) = 0;
  virtual size_t Scan(const Key& start, size_t count,
                      std::vector<std::pair<Key, uint64_t>>* out) const = 0;

  // --- batched read pipeline ----------------------------------------------
  // Point-looks-up every key of |keys| in one call. |values| and |statuses|
  // (when non-null) must each have room for keys.size() elements; statuses[i]
  // is kOk/kNotFound exactly as the per-key Lookup would report, values[i] is
  // filled on kOk. Duplicate and out-of-order keys are allowed. Returns the
  // number of keys found. The default loops over Lookup, so every index works
  // through the batch harness unchanged; PACTree overrides it with a real
  // pipeline (batched absorb routing, one epoch for the batch, node-grouped
  // probing -- see src/pactree/multiget.cc).
  virtual size_t MultiGet(std::span<const Key> keys, uint64_t* values,
                          Status* statuses) const {
    size_t found = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      uint64_t v = 0;
      Status s = Lookup(keys[i], &v);
      if (s == Status::kOk) {
        ++found;
        if (values != nullptr) {
          values[i] = v;
        }
      }
      if (statuses != nullptr) {
        statuses[i] = s;
      }
    }
    return found;
  }

  // Runs starts.size() range scans; out->at(i) receives up to counts[i] pairs
  // with key >= starts[i], exactly as the per-start Scan would. The default
  // loops over Scan; PACTree amortizes the epoch entry and processes starts
  // in ascending key order.
  virtual void MultiScan(std::span<const Key> starts, std::span<const size_t> counts,
                         std::vector<std::vector<std::pair<Key, uint64_t>>>* out) const {
    out->resize(starts.size());
    for (size_t i = 0; i < starts.size(); ++i) {
      Scan(starts[i], counts[i], &(*out)[i]);
    }
  }

  virtual uint64_t Size() const = 0;
  virtual std::string Name() const = 0;
  // Machine-readable per-index counters for the bench JSON emitter
  // (bench_common.h --json): one JSON object literal; "{}" when the index
  // exports nothing. PACTree reports hop/retry/batch-pipeline counters here.
  virtual std::string StatsJson() const { return "{}"; }
  virtual bool SupportsStringKeys() const { return true; }
  // Flushes background work (PACTree's SMO logs) before measurement phases.
  virtual void Drain() {}

  // --- recovery-verification hooks (see src/index/verify.h) ----------------

  // Implementation-specific structural audit (node ordering, sibling links,
  // ...). Defaults to "no structural checks available".
  virtual bool CheckInvariants(std::string* why) const {
    (void)why;
    return true;
  }
  // Unretired persistent allocation-log entries across the index's heaps.
  // Must be zero after recovery.
  virtual size_t PendingLogEntries() const { return 0; }
  // True when every operation log (PACTree's SMO rings) is empty. Must hold
  // after recovery.
  virtual bool OperationLogsDrained() const { return true; }
  // The persistent heaps backing this index, for crash harnesses that shadow
  // every pool of the index.
  virtual std::vector<PmemHeap*> Heaps() const { return {}; }
};

enum class IndexKind {
  kPacTree,
  kPdlArt,
  kFastFair,
  kFpTree,
  kBzTree,
};

const char* IndexKindName(IndexKind kind);

struct IndexFactoryOptions {
  std::string name;        // pool file prefix; defaults to the kind's name
  uint16_t pool_id_base = 0;  // 0 -> auto-assigned
  size_t pool_size = 512ULL << 20;
  bool string_keys = false;  // FastFair: out-of-node key records
  bool per_numa_pools = true;
  // PACTree factor-analysis toggles (ignored by other kinds).
  bool pactree_async_update = true;
  bool pactree_selective_persistence = true;
  bool pactree_dram_search_layer = false;
  // Background updater services (0 = auto: PAC_UPDATERS env var if set, else
  // one per logical NUMA node).
  uint32_t pactree_updaters = 0;
  // Route writes through the DRAM absorb buffer (src/absorb); also enabled by
  // PAC_ABSORB=1 (the bench --absorb flag).
  bool pactree_absorb_writes = false;
  // FP-Tree HTM model (ignored by other kinds).
  double fptree_spurious_abort_per_line = 0.0;
  // Reopen existing pool files and run recovery instead of destroying them --
  // how crash tests bring an index back up over captured images.
  bool open_existing = false;
};

// Creates a fresh index (destroys leftover pools of the same name first),
// or -- with opts.open_existing -- recovers one from its existing pools.
std::unique_ptr<RangeIndex> CreateIndex(IndexKind kind, const IndexFactoryOptions& opts);

// Removes an index's backing pools.
void DestroyIndex(IndexKind kind, const std::string& name);

}  // namespace pactree

#endif  // PACTREE_SRC_INDEX_RANGE_INDEX_H_
