// Generic post-recovery invariant checker for any RangeIndex.
//
// A crash test records what it *knows* about the pre-crash history -- which
// keys were acknowledged as durably inserted, which were acknowledged as
// removed, and which single operation was in flight at the crash -- and the
// checker audits the recovered index against that knowledge:
//
//   1. a full scan yields strictly ascending (sorted, duplicate-free) keys;
//   2. every acknowledged key is present, via scan AND point lookup, with the
//      acknowledged value;
//   3. no removed key is resurrected (absent from both scan and lookup);
//   4. nothing outside acknowledged ∪ in-flight appears (no ghost keys);
//   5. an in-flight key is either fully present with its value or fully
//      absent (atomic outcome), and scan/lookup agree on which;
//   6. the persistent allocation logs are fully drained;
//   7. the operation logs (PACTree's SMO rings) are empty;
//   8. the index's own structural audit (CheckInvariants) passes.
//
// Violations are human-readable strings naming the failed invariant; an empty
// report means the crash point recovered cleanly.
#ifndef PACTREE_SRC_INDEX_VERIFY_H_
#define PACTREE_SRC_INDEX_VERIFY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/key.h"
#include "src/index/range_index.h"

namespace pactree {

struct RecoveryExpectation {
  // Keys acknowledged as durably inserted (with their last acknowledged
  // value) and not subsequently removed. MUST be present.
  std::map<Key, uint64_t> acked;
  // Keys acknowledged as removed (and not re-inserted). MUST be absent.
  std::vector<Key> removed;
  // Keys whose insert/remove was in flight at the crash: each MAY be present
  // or absent, but the outcome must be atomic and internally consistent. The
  // mapped value is the value the key must carry IF it is present: the new
  // value for an in-flight insert, the prior value for an in-flight remove
  // (the key moves here from |acked| when its remove is the crashed op).
  std::map<Key, uint64_t> inflight;
};

struct VerifyReport {
  std::vector<std::string> violations;
  // Keys seen by the full scan (diagnostics; also how ghost keys surface).
  size_t scanned = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Audits |index| (already recovered) against |expect|. Runs a full scan, one
// point lookup per scanned/expected key, and the drain/structure hooks.
VerifyReport VerifyRecoveredIndex(const RangeIndex& index, const RecoveryExpectation& expect);

}  // namespace pactree

#endif  // PACTREE_SRC_INDEX_VERIFY_H_
