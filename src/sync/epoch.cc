#include "src/sync/epoch.h"

#include <mutex>

#include "src/common/compiler.h"
#include "src/pmem/pool.h"
#include "src/runtime/maintenance.h"
#include "src/runtime/thread_context.h"

namespace pactree {
namespace {

class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      CpuRelax();
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

// Per-thread epoch participation, held in the thread's ThreadContext and
// destroyed at thread exit. A quiescent record (active_epoch == 0) vanishing
// is indistinguishable from a thread that never entered, so teardown needs no
// handshake with the manager; a thread cannot exit inside an EpochGuard.
struct EpochRecord {
  std::atomic<uint64_t> active_epoch{0};  // 0 = quiescent, else epoch+1
  std::atomic<uint32_t> nesting{0};
};

ThreadSlot<EpochRecord>& EpochSlot() {
  static ThreadSlot<EpochRecord>* slot = new ThreadSlot<EpochRecord>();
  return *slot;
}

}  // namespace

EpochManager& EpochManager::Instance() {
  // Leaked: Retire/TryAdvance may run from teardown paths after static
  // destruction begins.
  static EpochManager* mgr = new EpochManager();
  return *mgr;
}

void EpochManager::Enter() {
  EpochRecord& rec = EpochSlot().Get();
  if (rec.nesting.fetch_add(1, std::memory_order_relaxed) == 0) {
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    rec.active_epoch.store(e + 1, std::memory_order_release);
    // Re-read to close the race where the epoch advanced between load/store.
    uint64_t e2 = global_epoch_.load(std::memory_order_acquire);
    if (e2 != e) {
      rec.active_epoch.store(e2 + 1, std::memory_order_release);
    }
  }
}

void EpochManager::Exit() {
  EpochRecord& rec = EpochSlot().Get();
  if (rec.nesting.fetch_sub(1, std::memory_order_relaxed) == 1) {
    rec.active_epoch.store(0, std::memory_order_release);
  }
}

void EpochManager::Retire(PPtr<void> block, void (*fn)(void*), void* arg) {
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  {
    SpinGuard guard(retired_lock_);
    retired_.push_back({e, block, fn, arg});
  }
  retired_count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t EpochManager::MinActiveEpoch() {
  // Scan live threads via the registry: exited threads' records are gone, so
  // the scan cost tracks the *current* thread count, not the historical one.
  uint64_t min_e = ~uint64_t{0};
  ThreadRegistry::Instance().ForEach([&](ThreadContext& ctx) {
    EpochRecord* r = EpochSlot().Peek(ctx);
    if (r == nullptr) {
      return;  // thread never used an EpochGuard
    }
    uint64_t a = r->active_epoch.load(std::memory_order_acquire);
    if (a != 0 && a - 1 < min_e) {
      min_e = a - 1;
    }
  });
  return min_e;
}

size_t EpochManager::LiveRecordCount() const {
  size_t n = 0;
  ThreadRegistry::Instance().ForEach([&](ThreadContext& ctx) {
    if (EpochSlot().Peek(ctx) != nullptr) {
      n++;
    }
  });
  return n;
}

size_t EpochManager::TryAdvanceAndReclaim() {
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  uint64_t min_active = MinActiveEpoch();
  if (min_active == ~uint64_t{0} || min_active >= e) {
    global_epoch_.compare_exchange_strong(e, e + 1, std::memory_order_acq_rel);
  }
  // Everything retired at epoch <= current-2 is unreachable: one epoch flushes
  // new references, a second flushes in-flight readers (§5.6).
  uint64_t reclaim_before = global_epoch_.load(std::memory_order_acquire);
  uint64_t min_now = MinActiveEpoch();
  if (min_now != ~uint64_t{0} && min_now < reclaim_before) {
    reclaim_before = min_now;
  }
  if (reclaim_before >= 2) {
    return ReclaimUpTo(reclaim_before - 2);
  }
  return 0;
}

size_t EpochManager::ReclaimUpTo(uint64_t epoch) {
  std::vector<Retired> ready;
  {
    SpinGuard guard(retired_lock_);
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].epoch <= epoch) {
        ready.push_back(retired_[i]);
      } else {
        retired_[kept++] = retired_[i];
      }
    }
    retired_.resize(kept);
  }
  for (const Retired& r : ready) {
    if (r.fn != nullptr) {
      r.fn(r.arg);
    }
    if (!r.block.IsNull()) {
      PmemFree(r.block);
    }
    retired_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return ready.size();
}

void EpochManager::DrainAll() {
  global_epoch_.fetch_add(4, std::memory_order_acq_rel);
  ReclaimUpTo(~uint64_t{0});
}

// ---------------------------------------------------------------------------
// EpochReclaimService
// ---------------------------------------------------------------------------

namespace {
std::mutex g_reclaim_mu;
int g_reclaim_refs = 0;
BackgroundService* g_reclaim_service = nullptr;
}  // namespace

void EpochReclaimService::Acquire() {
  std::lock_guard<std::mutex> lock(g_reclaim_mu);
  if (g_reclaim_refs++ > 0) {
    return;
  }
  BackgroundService::Options o;
  o.name = "epoch/reclaim";
  o.idle_min_us = 200;
  o.idle_max_us = 20000;
  g_reclaim_service = MaintenanceRegistry::Instance().Register(
      std::move(o), [] { return EpochManager::Instance().TryAdvanceAndReclaim(); });
}

void EpochReclaimService::Release() {
  BackgroundService* to_stop = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_reclaim_mu);
    if (g_reclaim_refs == 0) {
      return;
    }
    if (--g_reclaim_refs == 0) {
      to_stop = g_reclaim_service;
      g_reclaim_service = nullptr;
    }
  }
  if (to_stop != nullptr) {
    // Outside g_reclaim_mu: Unregister joins the worker, whose pass never
    // touches this refcount but a re-Acquire must not deadlock behind it.
    MaintenanceRegistry::Instance().Unregister(to_stop);
  }
}

}  // namespace pactree
