// Optimistic persistent version lock (paper §5.7).
//
// An 8-byte word: [generation:32 | version:32]. Odd version = write-locked.
// Readers never store to the word (GA2: reads generate zero NVM writes), except
// the one-time lazy reset when the embedded generation is stale -- which is how
// "incrementing the global generation ID resets all locks at once" works.
//
// The lock lives inside persistent nodes, so it is a plain uint64_t accessed
// through std::atomic_ref.
#ifndef PACTREE_SRC_SYNC_VERSION_LOCK_H_
#define PACTREE_SRC_SYNC_VERSION_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/compiler.h"
#include "src/sync/generation.h"

namespace pactree {

class OptVersionLock {
 public:
  OptVersionLock() = default;

  // Waits until the lock is free and returns a validation token.
  uint64_t ReadLock() const {
    while (true) {
      uint64_t w = Normalized();
      if ((w & 1) == 0) {
        return w;
      }
      CpuRelax();
    }
  }

  // Non-blocking variant: returns false while a writer holds the lock.
  bool TryReadLock(uint64_t* token) const {
    uint64_t w = Normalized();
    if ((w & 1) != 0) {
      return false;
    }
    *token = w;
    return true;
  }

  // True iff no writer interleaved since |token| was taken.
  bool Validate(uint64_t token) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return Ref().load(std::memory_order_relaxed) == token;
  }

  bool TryWriteLock() {
    uint64_t w = Normalized();
    if ((w & 1) != 0) {
      return false;
    }
    return Ref().compare_exchange_strong(w, w + 1, std::memory_order_acquire);
  }

  // Upgrades a read token to a write lock iff nothing changed in between.
  bool TryUpgrade(uint64_t token) {
    uint64_t expected = token;
    return Ref().compare_exchange_strong(expected, token + 1, std::memory_order_acquire);
  }

  void WriteLock() {
    while (!TryWriteLock()) {
      CpuRelax();
    }
  }

  void WriteUnlock() { Ref().fetch_add(1, std::memory_order_release); }

  bool IsLocked() const { return (Ref().load(std::memory_order_acquire) & 1) != 0; }

  uint64_t RawWord() const { return Ref().load(std::memory_order_acquire); }

  // Address of the word (for explicit persistence by callers that persist the
  // surrounding metadata line).
  const uint64_t* WordAddr() const { return &word_; }

 private:
  std::atomic_ref<uint64_t> Ref() const {
    return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(word_));
  }

  // Loads the word; lazily reinitializes it when its generation is stale
  // (previous incarnation's lock state is void after a restart).
  uint64_t Normalized() const {
    uint64_t w = Ref().load(std::memory_order_acquire);
    uint32_t gen = GlobalGeneration();
    if (PACTREE_LIKELY(static_cast<uint32_t>(w >> 32) == gen)) {
      return w;
    }
    uint64_t fresh = static_cast<uint64_t>(gen) << 32;
    if (Ref().compare_exchange_strong(w, fresh, std::memory_order_acq_rel)) {
      return fresh;
    }
    return w;  // someone else normalized (or locked) it; caller re-examines
  }

  uint64_t word_ = 0;
};

static_assert(sizeof(OptVersionLock) == 8, "lock must be one atomic word");

}  // namespace pactree

#endif  // PACTREE_SRC_SYNC_VERSION_LOCK_H_
