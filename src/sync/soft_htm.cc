#include "src/sync/soft_htm.h"

#include <cstring>

#include "src/common/compiler.h"

namespace pactree {

SoftHtmStats SoftHtm::Stats() const {
  SoftHtmStats s;
  s.begins = begins_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.conflict_aborts = conflict_aborts_.load(std::memory_order_relaxed);
  s.capacity_aborts = capacity_aborts_.load(std::memory_order_relaxed);
  s.spurious_aborts = spurious_aborts_.load(std::memory_order_relaxed);
  s.fallback_acquisitions = fallback_acqs_.load(std::memory_order_relaxed);
  return s;
}

std::atomic<uint64_t>* SoftHtm::LockFor(const void* addr) {
  uint64_t line = CacheLineOf(addr);
  // Fibonacci hash over the line address.
  uint64_t h = (line * 0x9e3779b97f4a7c15ULL) >> (64 - 16);
  return &locks_[h & (kLockTableSize - 1)];
}

void SoftHtm::LockFallback() {
  uint64_t v = fallback_.load(std::memory_order_acquire);
  while (true) {
    if ((v & 1) == 0 &&
        fallback_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
      fallback_acqs_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    CpuRelax();
    v = fallback_.load(std::memory_order_acquire);
  }
}

void SoftHtm::UnlockFallback() { fallback_.fetch_add(1, std::memory_order_release); }

bool SoftHtm::NonTxCas64(void* addr, uint64_t expected, uint64_t desired) {
  std::atomic<uint64_t>* lock = LockFor(addr);
  uint64_t v = lock->load(std::memory_order_acquire);
  while ((v & 1) != 0 ||
         !lock->compare_exchange_weak(v, v | 1, std::memory_order_acquire)) {
    CpuRelax();
    v = lock->load(std::memory_order_acquire);
  }
  bool ok = std::atomic_ref<uint64_t>(*static_cast<uint64_t*>(addr))
                .compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
  lock->fetch_add(1, std::memory_order_release);  // odd -> next even version
  return ok;
}

void SoftHtm::NonTxWrite64(void* addr, uint64_t value) {
  std::atomic<uint64_t>* lock = LockFor(addr);
  uint64_t v = lock->load(std::memory_order_acquire);
  while ((v & 1) != 0 ||
         !lock->compare_exchange_weak(v, v | 1, std::memory_order_acquire)) {
    CpuRelax();
    v = lock->load(std::memory_order_acquire);
  }
  std::atomic_ref<uint64_t>(*static_cast<uint64_t*>(addr))
      .store(value, std::memory_order_release);
  lock->fetch_add(1, std::memory_order_release);  // odd -> next even version
}

uint64_t SoftHtm::Txn::NextSeed() {
  static std::atomic<uint64_t> counter{0x5eed};
  return counter.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
}

bool SoftHtm::Txn::Begin() {
  htm_->begins_.fetch_add(1, std::memory_order_relaxed);
  cause_ = HtmAbortCause::kNone;
  reads_.clear();
  writes_.clear();
  tracked_lines_ = 0;
  l1_.assign(size_t{htm_->cfg_.l1_sets} * htm_->cfg_.l1_ways, 0);
  // Subscribe to the fallback lock: a held lock aborts us immediately, and any
  // later acquisition is caught at Commit() via version validation.
  fallback_version_ = htm_->fallback_.load(std::memory_order_acquire);
  if ((fallback_version_ & 1) != 0) {
    cause_ = HtmAbortCause::kFallbackLocked;
    htm_->conflict_aborts_.fetch_add(1, std::memory_order_relaxed);
    began_ = false;
    return false;
  }
  began_ = true;
  return true;
}

bool SoftHtm::Txn::TouchLine(const void* addr) {
  const SoftHtmConfig& cfg = htm_->cfg_;
  if (cfg.spurious_abort_per_line > 0.0 && rng_.NextDouble() < cfg.spurious_abort_per_line) {
    cause_ = HtmAbortCause::kSpurious;
    htm_->spurious_aborts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t line = CacheLineOf(addr);
  uint32_t set = static_cast<uint32_t>((line >> 6) & (cfg.l1_sets - 1));
  uint64_t* ways = &l1_[size_t{set} * cfg.l1_ways];
  // Hit?
  for (uint32_t i = 0; i < cfg.l1_ways; ++i) {
    if (ways[i] == line) {
      // Move to MRU position.
      for (uint32_t j = i; j > 0; --j) {
        ways[j] = ways[j - 1];
      }
      ways[0] = line;
      return true;
    }
  }
  // Miss: evicting the LRU way loses a transactionally tracked line -> the
  // hardware would abort with a capacity abort.
  if (ways[cfg.l1_ways - 1] != 0) {
    cause_ = HtmAbortCause::kCapacity;
    htm_->capacity_aborts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  for (uint32_t j = cfg.l1_ways - 1; j > 0; --j) {
    ways[j] = ways[j - 1];
  }
  ways[0] = line;
  if (++tracked_lines_ > cfg.max_tracked_lines) {
    cause_ = HtmAbortCause::kCapacity;
    htm_->capacity_aborts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

uint64_t SoftHtm::Txn::Read64(const void* addr) {
  if (!ok()) {
    return 0;
  }
  // Read-your-writes.
  for (const WriteEntry& w : writes_) {
    if (w.addr == addr) {
      return w.value;
    }
  }
  if (!TouchLine(addr)) {
    return 0;
  }
  std::atomic<uint64_t>* lock = htm_->LockFor(addr);
  uint64_t v1 = lock->load(std::memory_order_acquire);
  if ((v1 & 1) != 0) {
    cause_ = HtmAbortCause::kConflict;
    htm_->conflict_aborts_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  uint64_t value = std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(
                       static_cast<const uint64_t*>(addr)))
                       .load(std::memory_order_acquire);
  uint64_t v2 = lock->load(std::memory_order_acquire);
  if (v1 != v2) {
    cause_ = HtmAbortCause::kConflict;
    htm_->conflict_aborts_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  uint32_t idx = static_cast<uint32_t>(lock - htm_->locks_);
  for (const ReadEntry& r : reads_) {
    if (r.lock_idx == idx) {
      if (r.version != v1) {
        cause_ = HtmAbortCause::kConflict;
        htm_->conflict_aborts_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      return value;
    }
  }
  reads_.push_back({idx, v1});
  return value;
}

void SoftHtm::Txn::Write64(void* addr, uint64_t value) {
  if (!ok()) {
    return;
  }
  if (!TouchLine(addr)) {
    return;
  }
  for (WriteEntry& w : writes_) {
    if (w.addr == addr) {
      w.value = value;
      return;
    }
  }
  writes_.push_back({static_cast<uint64_t*>(addr), value});
}

void SoftHtm::Txn::Abort(HtmAbortCause cause) {
  if (cause_ == HtmAbortCause::kNone) {
    cause_ = cause;
  }
  began_ = false;
}

bool SoftHtm::Txn::Commit() {
  if (!began_ || !ok()) {
    began_ = false;
    return false;
  }
  began_ = false;
  // Acquire write locks.
  std::vector<std::atomic<uint64_t>*> acquired;
  acquired.reserve(writes_.size());
  for (const WriteEntry& w : writes_) {
    std::atomic<uint64_t>* lock = htm_->LockFor(w.addr);
    bool mine = false;
    for (std::atomic<uint64_t>* a : acquired) {
      if (a == lock) {
        mine = true;
        break;
      }
    }
    if (mine) {
      continue;
    }
    uint64_t v = lock->load(std::memory_order_acquire);
    int spins = 0;
    while ((v & 1) != 0 || !lock->compare_exchange_weak(v, v | 1, std::memory_order_acquire)) {
      if ((v & 1) != 0 && ++spins > 64) {
        for (std::atomic<uint64_t>* a : acquired) {
          a->fetch_sub(1, std::memory_order_release);  // undo lock bit, version intact
        }
        cause_ = HtmAbortCause::kConflict;
        htm_->conflict_aborts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      CpuRelax();
      v = lock->load(std::memory_order_acquire);
    }
    acquired.push_back(lock);
  }
  // Validate the read set (locks we own validate against pre-lock versions).
  bool valid = htm_->fallback_.load(std::memory_order_acquire) == fallback_version_;
  for (const ReadEntry& r : reads_) {
    if (!valid) {
      break;
    }
    std::atomic<uint64_t>* lock = &htm_->locks_[r.lock_idx];
    uint64_t v = lock->load(std::memory_order_acquire);
    bool mine = false;
    for (std::atomic<uint64_t>* a : acquired) {
      if (a == lock) {
        mine = true;
        break;
      }
    }
    if (mine) {
      valid = (v & ~uint64_t{1}) == r.version;  // we set the lock bit ourselves
    } else {
      valid = v == r.version;
    }
  }
  if (!valid) {
    for (std::atomic<uint64_t>* a : acquired) {
      a->fetch_sub(1, std::memory_order_release);  // undo lock bit, version intact
    }
    cause_ = HtmAbortCause::kConflict;
    htm_->conflict_aborts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Publish.
  for (const WriteEntry& w : writes_) {
    std::atomic_ref<uint64_t>(*w.addr).store(w.value, std::memory_order_release);
  }
  for (std::atomic<uint64_t>* a : acquired) {
    a->fetch_add(1, std::memory_order_release);  // odd -> next even version
  }
  htm_->commits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace pactree
