// Software emulation of Intel restricted transactional memory (RTM/TSX).
//
// FP-Tree protects its DRAM internal nodes with HTM; the paper's finding GC3
// (Figure 6) is that HTM aborts explode with large data sets (capacity/TLB
// misses) and high thread counts (conflicts), crippling FP-Tree. Real TSX is
// unavailable here, so this module provides transactions with the same failure
// modes, produced by real mechanisms where possible:
//
//   * conflict aborts  -- genuine: a versioned-lock table detects concurrent
//     writers (including the fallback-lock subscription an RTM guard uses);
//   * capacity aborts  -- an L1-like set-associative model tracks the lines a
//     transaction touches; evicting a tracked line aborts, exactly like losing
//     a line from the read set in L1;
//   * spurious aborts  -- a per-access probability models TLB-miss/interrupt
//     aborts, scaled by the index's working-set size (documented substitution).
//
// Values are read/written at 8-byte granularity through Txn::Read64/Write64.
#ifndef PACTREE_SRC_SYNC_SOFT_HTM_H_
#define PACTREE_SRC_SYNC_SOFT_HTM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace pactree {

enum class HtmAbortCause : uint8_t {
  kNone = 0,
  kConflict,
  kCapacity,
  kSpurious,
  kFallbackLocked,
};

struct SoftHtmConfig {
  size_t max_tracked_lines = 512;     // read+write set bound (L1 lines)
  uint32_t l1_sets = 64;              // 64 sets x 8 ways x 64 B = 32 KiB L1d
  uint32_t l1_ways = 8;
  double spurious_abort_per_line = 0.0;  // TLB/interrupt abort probability
};

struct SoftHtmStats {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t conflict_aborts = 0;
  uint64_t capacity_aborts = 0;
  uint64_t spurious_aborts = 0;
  uint64_t fallback_acquisitions = 0;
};

class SoftHtm {
 public:
  explicit SoftHtm(const SoftHtmConfig& cfg = SoftHtmConfig()) : cfg_(cfg) {}

  const SoftHtmConfig& config() const { return cfg_; }
  void set_config(const SoftHtmConfig& cfg) { cfg_ = cfg; }

  SoftHtmStats Stats() const;

  // Non-transactional exclusive fallback (what _xbegin failure paths take).
  void LockFallback();
  void UnlockFallback();

  // Non-transactional store that still participates in conflict detection:
  // bumps the address's lock-table version around the store so concurrent
  // transactions that read the line abort (what a real cache-coherent store
  // does to a hardware transaction). Used by fallback-path writers.
  void NonTxWrite64(void* addr, uint64_t value);

  // Non-transactional CAS with the same conflict-detection property. Every
  // direct mutation of a word that transactions also read/write MUST go
  // through these two, or a committed transaction can miss the change.
  bool NonTxCas64(void* addr, uint64_t expected, uint64_t desired);

  class Txn {
   public:
    explicit Txn(SoftHtm* htm) : htm_(htm), rng_(NextSeed()) {}

    // Starts the transaction; false when the fallback lock is held (the RTM
    // idiom reads the lock inside the transaction and aborts if taken).
    bool Begin();

    // Transactional 8-byte read/write. After any Read64 the caller must check
    // ok(); a failed transaction's reads return 0.
    uint64_t Read64(const void* addr);
    void Write64(void* addr, uint64_t value);

    bool ok() const { return cause_ == HtmAbortCause::kNone; }
    HtmAbortCause cause() const { return cause_; }

    // Validates and publishes. Returns false on abort (stats recorded).
    bool Commit();

    // Explicit user abort (no stats beyond conflict accounting).
    void Abort(HtmAbortCause cause);

   private:
    struct ReadEntry {
      uint32_t lock_idx;
      uint64_t version;
    };
    struct WriteEntry {
      uint64_t* addr;
      uint64_t value;
    };

    static uint64_t NextSeed();
    bool TouchLine(const void* addr);  // L1 model + spurious; false = abort

    SoftHtm* htm_;
    Rng rng_;
    HtmAbortCause cause_ = HtmAbortCause::kNone;
    uint64_t fallback_version_ = 0;
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
    std::vector<uint64_t> l1_;  // set-associative tag store, sets x ways
    size_t tracked_lines_ = 0;
    bool began_ = false;
  };

 private:
  friend class Txn;

  static constexpr size_t kLockTableSize = 1 << 16;

  std::atomic<uint64_t>* LockFor(const void* addr);

  SoftHtmConfig cfg_;
  // Versioned write locks hashed by cache line; lsb = locked.
  std::atomic<uint64_t> locks_[kLockTableSize] = {};
  std::atomic<uint64_t> fallback_{0};

  std::atomic<uint64_t> begins_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> conflict_aborts_{0};
  std::atomic<uint64_t> capacity_aborts_{0};
  std::atomic<uint64_t> spurious_aborts_{0};
  std::atomic<uint64_t> fallback_acqs_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_SYNC_SOFT_HTM_H_
