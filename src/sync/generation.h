// Global generation ID (paper §5.7): bumped every time a persistent index is
// loaded. Version locks embed the generation under which they were last
// touched; a mismatch means the lock state predates the current incarnation
// and is void, so a crash never requires visiting every node to reset locks.
#ifndef PACTREE_SRC_SYNC_GENERATION_H_
#define PACTREE_SRC_SYNC_GENERATION_H_

#include <atomic>
#include <cstdint>

namespace pactree {

inline std::atomic<uint32_t>& GlobalGenerationRef() {
  static std::atomic<uint32_t> gen{1};
  return gen;
}

inline uint32_t GlobalGeneration() {
  return GlobalGenerationRef().load(std::memory_order_acquire);
}

inline void SetGlobalGeneration(uint32_t g) {
  GlobalGenerationRef().store(g, std::memory_order_release);
}

}  // namespace pactree

#endif  // PACTREE_SRC_SYNC_GENERATION_H_
