// Generation alignment between persistent pools and the process-global
// generation ID (paper §5.7).
//
// Opening an index must void every version lock persisted by a previous
// incarnation, including locks captured in a *held* state by a crash. The pool
// header's generation alone is not enough inside a long-lived process (a
// re-created pool restarts at 1 while the global generation has moved on), so
// each open advances every involved pool to a generation strictly above the
// current global one and publishes it.
//
// Constraint (documented in DESIGN.md): other persistent indexes in the same
// process must be quiescent while one is being opened -- their in-flight lock
// words would otherwise be voided mid-operation.
#ifndef PACTREE_SRC_SYNC_GEN_SYNC_H_
#define PACTREE_SRC_SYNC_GEN_SYNC_H_

#include <algorithm>
#include <initializer_list>

#include "src/nvm/persist.h"
#include "src/pmem/heap.h"
#include "src/sync/generation.h"

namespace pactree {

inline uint32_t AdvanceGenerations(std::initializer_list<PmemHeap*> heaps) {
  uint64_t g = GlobalGeneration();
  for (PmemHeap* h : heaps) {
    if (h != nullptr) {
      g = std::max(g, h->generation());
    }
  }
  uint32_t target = static_cast<uint32_t>(g) + 1;
  for (PmemHeap* h : heaps) {
    if (h == nullptr) {
      continue;
    }
    for (uint32_t i = 0; i < h->pool_count(); ++i) {
      PoolHeader* hdr = h->pool(i)->header();
      hdr->generation = target;
      PersistFence(&hdr->generation, sizeof(hdr->generation));
    }
  }
  SetGlobalGeneration(target);
  return target;
}

}  // namespace pactree

#endif  // PACTREE_SRC_SYNC_GEN_SYNC_H_
