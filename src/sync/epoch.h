// Epoch-based memory reclamation (paper §5.6).
//
// PACTree frees a merged data node only after two epochs: the first guarantees
// no new references can be created from the search layer, the second that every
// reference created before then has finished. Threads wrap index operations in
// an EpochGuard; retiring hands a block (plus optional callback) to the manager.
#ifndef PACTREE_SRC_SYNC_EPOCH_H_
#define PACTREE_SRC_SYNC_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/pmem/pptr.h"

namespace pactree {

class EpochManager {
 public:
  static EpochManager& Instance();

  // Marks the calling thread active in the current epoch (nestable).
  void Enter();
  void Exit();

  // Schedules a persistent block for PmemFree after two epochs. Optional
  // callback runs just before the free (may be null). Thread-safe.
  void Retire(PPtr<void> block, void (*fn)(void*) = nullptr, void* arg = nullptr);

  // Attempts to advance the global epoch (succeeds when every active thread
  // has entered the current epoch) and reclaims anything two epochs old.
  // Returns the number of blocks reclaimed (the maintenance service's
  // items-applied metric).
  size_t TryAdvanceAndReclaim();

  // Forces reclamation of everything; callers must guarantee no concurrent
  // guards (used at shutdown and between benchmark phases).
  void DrainAll();

  uint64_t CurrentEpoch() const { return global_epoch_.load(std::memory_order_acquire); }
  uint64_t RetiredCount() const { return retired_count_.load(std::memory_order_relaxed); }

  // Threads currently holding an epoch record (i.e. live threads that have
  // used an EpochGuard). Records live in each thread's ThreadContext
  // (src/runtime/) and are destroyed at thread exit, so this returns to its
  // baseline after worker threads join -- the old design leaked one record
  // per thread forever and re-scanned all of them on every epoch advance.
  size_t LiveRecordCount() const;

 private:
  struct Retired {
    uint64_t epoch;
    PPtr<void> block;
    void (*fn)(void*);
    void* arg;
  };

  EpochManager() = default;
  uint64_t MinActiveEpoch();
  size_t ReclaimUpTo(uint64_t epoch);

  std::atomic<uint64_t> global_epoch_{2};
  std::atomic<uint64_t> retired_count_{0};

  // Shared retire list (mutex-protected; retire volume is SMO-rate, not
  // op-rate, so contention is negligible).
  std::vector<Retired> retired_;
  std::atomic_flag retired_lock_ = ATOMIC_FLAG_INIT;
};

// Epoch reclamation as a maintenance service: a refcounted handle on a single
// process-wide "epoch/reclaim" BackgroundService that periodically calls
// TryAdvanceAndReclaim. Every async index acquires a reference on open and
// releases it on close; the service exists while any reference is held.
// Retire() deliberately does not kick the service (a kick would have to hold a
// pointer a concurrent Release may destroy); reclamation latency is bounded by
// the service's idle cadence, which is fine for SMO-rate retire volume.
class EpochReclaimService {
 public:
  static void Acquire();
  static void Release();
};

class EpochGuard {
 public:
  EpochGuard() { EpochManager::Instance().Enter(); }
  ~EpochGuard() { EpochManager::Instance().Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

}  // namespace pactree

#endif  // PACTREE_SRC_SYNC_EPOCH_H_
