// Bounded, binary-comparable key type shared by all indexes in this repository.
//
// PACTree (SOSP'21, §5.2) stores at most 32 key bytes inline in a data node; integer
// keys are encoded big-endian so that byte-lexicographic order equals numeric order,
// which is what a radix trie requires. Keys are canonicalized by stripping trailing
// zero bytes: the zero-padded 32-byte image is then a bijective representation, so
// trie traversal over the padded view and memcmp over the padded image agree for
// every pair of distinct keys.
#ifndef PACTREE_SRC_COMMON_KEY_H_
#define PACTREE_SRC_COMMON_KEY_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

namespace pactree {

class Key {
 public:
  static constexpr size_t kMaxLen = 32;
  static constexpr size_t kIntLen = 8;

  Key() = default;

  // Builds a key whose byte order sorts like the unsigned integer value.
  static Key FromInt(uint64_t value) {
    Key k;
    for (size_t i = 0; i < kIntLen; ++i) {
      k.data_[i] = static_cast<uint8_t>(value >> (8 * (kIntLen - 1 - i)));
    }
    k.len_ = kIntLen;
    k.Canonicalize();
    return k;
  }

  // Builds a key from raw bytes; input longer than kMaxLen is truncated.
  static Key FromBytes(const void* bytes, size_t len) {
    Key k;
    k.len_ = static_cast<uint32_t>(len < kMaxLen ? len : kMaxLen);
    std::memcpy(k.data_, bytes, k.len_);
    k.Canonicalize();
    return k;
  }

  static Key FromString(std::string_view s) { return FromBytes(s.data(), s.size()); }

  // Smallest possible key (empty); anchors the head data node.
  static Key Min() { return Key(); }

  // Largest representable key (32 x 0xff).
  static Key Max() {
    Key k;
    std::memset(k.data_, 0xff, kMaxLen);
    k.len_ = kMaxLen;
    return k;
  }

  uint64_t ToInt() const {
    uint64_t v = 0;
    for (size_t i = 0; i < kIntLen; ++i) {
      v = (v << 8) | data_[i];
    }
    return v;
  }

  std::string_view View() const {
    return std::string_view(reinterpret_cast<const char*>(data_), len_);
  }
  std::string ToString() const { return std::string(View()); }

  size_t size() const { return len_; }
  const uint8_t* data() const { return data_; }
  bool empty() const { return len_ == 0; }

  // Byte at position |i| of the zero-padded image; valid for any i < kMaxLen.
  uint8_t At(size_t i) const { return i < kMaxLen ? data_[i] : 0; }

  int Compare(const Key& o) const { return std::memcmp(data_, o.data_, kMaxLen); }

  bool operator==(const Key& o) const { return Compare(o) == 0; }
  bool operator!=(const Key& o) const { return Compare(o) != 0; }
  bool operator<(const Key& o) const { return Compare(o) < 0; }
  bool operator<=(const Key& o) const { return Compare(o) <= 0; }
  bool operator>(const Key& o) const { return Compare(o) > 0; }
  bool operator>=(const Key& o) const { return Compare(o) >= 0; }

  // One-byte fingerprint used by the data-node fingerprint array (FP-Tree style).
  uint8_t Fingerprint() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < kMaxLen; i += 8) {
      uint64_t w;
      std::memcpy(&w, data_ + i, 8);
      h = (h ^ w) * 0x100000001b3ULL;
    }
    h ^= h >> 32;
    h ^= h >> 16;
    h ^= h >> 8;
    return static_cast<uint8_t>(h);
  }

  uint64_t Hash() const {
    uint64_t h = 14695981039346656037ULL;
    for (size_t i = 0; i < kMaxLen; i += 8) {
      uint64_t w;
      std::memcpy(&w, data_ + i, 8);
      h = (h ^ w) * 1099511628211ULL;
    }
    return h;
  }

 private:
  // Trailing zero bytes are semantically padding; strip them so that the padded
  // 32-byte image uniquely identifies a key.
  void Canonicalize() {
    while (len_ > 0 && data_[len_ - 1] == 0) {
      --len_;
    }
  }

  uint32_t len_ = 0;
  uint8_t data_[kMaxLen] = {};
};

static_assert(sizeof(Key) == 36, "Key layout is load-bearing for data-node sizing");

}  // namespace pactree

namespace std {
template <>
struct hash<pactree::Key> {
  size_t operator()(const pactree::Key& k) const { return k.Hash(); }
};
}  // namespace std

#endif  // PACTREE_SRC_COMMON_KEY_H_
