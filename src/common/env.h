// Environment-variable helpers used by benchmark binaries to scale experiments
// (PAC_KEYS, PAC_THREADS, PAC_OPS, ...).
#ifndef PACTREE_SRC_COMMON_ENV_H_
#define PACTREE_SRC_COMMON_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace pactree {

inline uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return def;
  }
  char* end = nullptr;
  uint64_t parsed = std::strtoull(v, &end, 10);
  // Accept k/m/g suffixes: PAC_KEYS=64m.
  if (end != nullptr) {
    switch (*end) {
      case 'k':
      case 'K':
        parsed *= 1000;
        break;
      case 'm':
      case 'M':
        parsed *= 1000 * 1000;
        break;
      case 'g':
      case 'G':
        parsed *= 1000 * 1000 * 1000;
        break;
      default:
        break;
    }
  }
  return parsed;
}

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? def : std::atof(v);
}

inline std::string EnvStr(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? def : std::string(v);
}

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_ENV_H_
