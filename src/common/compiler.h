// Small portability helpers: cache-line constants, pause, branch hints.
#ifndef PACTREE_SRC_COMMON_COMPILER_H_
#define PACTREE_SRC_COMMON_COMPILER_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pactree {

inline constexpr size_t kCacheLineSize = 64;
// Optane media access granularity (one XPLine).
inline constexpr size_t kXpLineSize = 256;

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

#define PACTREE_LIKELY(x) __builtin_expect(!!(x), 1)
#define PACTREE_UNLIKELY(x) __builtin_expect(!!(x), 0)

inline uintptr_t CacheLineOf(const void* p) {
  return reinterpret_cast<uintptr_t>(p) & ~(kCacheLineSize - 1);
}

inline uintptr_t XpLineOf(uintptr_t p) { return p & ~(kXpLineSize - 1); }

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_COMPILER_H_
