// Small portability helpers: cache-line constants, pause, branch hints.
#ifndef PACTREE_SRC_COMMON_COMPILER_H_
#define PACTREE_SRC_COMMON_COMPILER_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pactree {

inline constexpr size_t kCacheLineSize = 64;
// Optane media access granularity (one XPLine).
inline constexpr size_t kXpLineSize = 256;

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

#define PACTREE_LIKELY(x) __builtin_expect(!!(x), 1)
#define PACTREE_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Exempts a function from ThreadSanitizer instrumentation. Reserved for the
// validated-optimistic-read pattern (seqlock-style): readers deliberately race
// with in-place writers over multi-word slot data (SIMD fingerprint probes,
// 36-byte key compares) and discard any observation whose version check fails.
// The C++ memory model cannot express a validated racy read of non-atomic
// aggregates, so both sides of the protocol carry this attribute; every use
// must sit next to the version-lock Validate() call that makes it sound.
#if defined(__SANITIZE_THREAD__)
#define PACTREE_NO_TSAN __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PACTREE_NO_TSAN __attribute__((no_sanitize("thread")))
#else
#define PACTREE_NO_TSAN
#endif
#else
#define PACTREE_NO_TSAN
#endif

inline uintptr_t CacheLineOf(const void* p) {
  return reinterpret_cast<uintptr_t>(p) & ~(kCacheLineSize - 1);
}

inline uintptr_t XpLineOf(uintptr_t p) { return p & ~(kXpLineSize - 1); }

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_COMPILER_H_
