// Monotonic nanosecond clock + calibrated busy-wait used for NVM latency injection.
#ifndef PACTREE_SRC_COMMON_CLOCK_H_
#define PACTREE_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "src/common/compiler.h"

namespace pactree {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Busy-waits for approximately |ns| nanoseconds. Used to emulate NVM media
// latency; the spin keeps the delay on the calling thread's critical path,
// exactly like a stalled clwb would.
inline void SpinNs(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  uint64_t deadline = NowNs() + ns;
  while (NowNs() < deadline) {
    CpuRelax();
  }
}

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_CLOCK_H_
