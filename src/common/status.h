// Result codes shared by every index implementation in this repository.
#ifndef PACTREE_SRC_COMMON_STATUS_H_
#define PACTREE_SRC_COMMON_STATUS_H_

namespace pactree {

enum class Status {
  kOk = 0,
  kNotFound,   // key absent
  kExists,     // insert hit an existing key
  kRetry,      // optimistic validation failed; caller retries
  kFull,       // node/structure out of space (internal)
  kCorrupted,  // recovery found an unrecoverable inconsistency
  kIoError,    // pool open/map failure
};

inline const char* StatusString(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kNotFound:
      return "not-found";
    case Status::kExists:
      return "exists";
    case Status::kRetry:
      return "retry";
    case Status::kFull:
      return "full";
    case Status::kCorrupted:
      return "corrupted";
    case Status::kIoError:
      return "io-error";
  }
  return "unknown";
}

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_STATUS_H_
