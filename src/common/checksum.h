// Mixing checksum for persistent log entries.
//
// Persistent logs update a whole entry and retire it with single fences, but
// the media only guarantees 8-byte failure atomicity: a torn line write can
// commit the state/type word of a fresh entry next to payload words left over
// from a previously retired one. Every log entry therefore carries a 64-bit
// checksum over its meaningful words, written in the same fence as the entry
// and durably zeroed at retirement; recovery rejects any entry whose checksum
// does not match, which collapses all partial-commit states into "entry never
// happened" (safe, because the entry's fence precedes every data-structure
// mutation of the logged operation).
#ifndef PACTREE_SRC_COMMON_CHECKSUM_H_
#define PACTREE_SRC_COMMON_CHECKSUM_H_

#include <cstdint>
#include <initializer_list>

namespace pactree {

// SplitMix64 finalizer: full avalanche, so a single stale payload word flips
// the checksum with overwhelming probability (unlike a plain XOR/sum).
inline uint64_t MixBits64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-sensitive checksum of a small sequence of 64-bit words.
inline uint64_t LogChecksum(std::initializer_list<uint64_t> words) {
  uint64_t h = 0x243f6a8885a308d3ULL;  // nonzero seed: all-zero words -> nonzero sum
  for (uint64_t w : words) {
    h = MixBits64(h ^ w);
  }
  return h;
}

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_CHECKSUM_H_
