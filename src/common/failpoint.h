// Fail-point framework: named failure-injection sites for robustness testing.
//
// A fail point is a named site compiled into a resource-acquisition path
// (pmem allocation, ring publish, descriptor acquire). In production it costs
// one relaxed atomic load; in tests it can be armed to fire on the Nth hit,
// every Nth hit, or probabilistically, optionally scoped to the arming thread
// so background services keep running clean while the test thread is faulted.
//
// Sites are plain string literals. The convention is "layer/resource":
//   pmem/alloc        PmemPool::AllocInternal (covers Alloc and AllocTo's
//                     block reservation)
//   pmem/alloc_to     PmemPool::AllocTo entry (malloc-to protocol)
//   heap/fallback     PmemHeap cross-NUMA fallback loop (fires = local-only)
//   smo/ring_full     SmoUpdater::Log ring-full check (forces one
//                     backpressure round)
//   absorb/ring_full  AbsorbBuffer::WaitRingSpace (forces one full round)
//   pmwcas/descriptor PmwcasPool::Acquire (simulates descriptor exhaustion)
//
// Configuration:
//   - Programmatic: FailPoints::Arm("pmem/alloc", FailPointTrigger::NthHit(3)).
//   - Environment:  PAC_FAILPOINTS="pmem/alloc=hit:3;smo/ring_full=every:10;
//                   absorb/ring_full=prob:0.01:42" parsed at process start
//                   (env-armed sites are process-scoped, not thread-scoped).
//
// Counters: every armed site counts hits (evaluations that passed the thread
// filter) and triggers (evaluations that returned true). kCountOnly arms a
// site purely for counting -- the discovery phase of an exhaustive sweep
// ("how many allocations does this scenario perform?") before the K-th-hit
// failure phase.
#ifndef PACTREE_SRC_COMMON_FAILPOINT_H_
#define PACTREE_SRC_COMMON_FAILPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pactree {

struct FailPointTrigger {
  enum Kind : uint32_t {
    kCountOnly = 0,    // never fires; counts hits (sweep discovery phase)
    kNthHit = 1,       // fires exactly once, on the n-th hit (1-based)
    kEveryNth = 2,     // fires on every n-th hit (n, 2n, 3n, ...)
    kProbability = 3,  // fires with probability |probability| per hit
  };
  Kind kind = kCountOnly;
  uint64_t n = 1;
  double probability = 0.0;
  uint64_t seed = 0x9e3779b97f4a7c15ull;  // kProbability RNG stream
  // When true (default for programmatic arming) only the arming thread's hits
  // count and fire; other threads pass through untouched. Env-armed sites set
  // this false (there is no arming thread at process start).
  bool thread_scoped = true;

  static FailPointTrigger CountOnly() { return {}; }
  static FailPointTrigger NthHit(uint64_t n) {
    FailPointTrigger t;
    t.kind = kNthHit;
    t.n = n;
    return t;
  }
  static FailPointTrigger EveryNth(uint64_t n) {
    FailPointTrigger t;
    t.kind = kEveryNth;
    t.n = n;
    return t;
  }
  static FailPointTrigger Probability(double p, uint64_t seed = 0) {
    FailPointTrigger t;
    t.kind = kProbability;
    t.probability = p;
    if (seed != 0) {
      t.seed = seed;
    }
    return t;
  }
};

class FailPoints {
 public:
  // Evaluates the site: returns true when the site is armed and its trigger
  // fires for this hit. Sites that are not armed cost one relaxed atomic load.
  // This is what the PACTREE_FAILPOINT macro expands to; call sites treat a
  // true return exactly like the natural failure (alloc returns Null, ring
  // reads as full, pool returns nullptr).
  static bool Hit(const char* site);

  // Arms |site| with |trigger|, replacing any previous arming and zeroing its
  // counters. Thread-scoped triggers bind to the calling thread.
  static void Arm(const std::string& site, const FailPointTrigger& trigger);
  static void Disarm(const std::string& site);
  static void DisarmAll();

  // Counters for an armed site (0 when not armed).
  static uint64_t HitCount(const std::string& site);
  static uint64_t TriggerCount(const std::string& site);
  static void ResetCounters(const std::string& site);

  // Hook invoked (on the hitting thread) every time any site fires, before
  // Hit returns true. Lets crash tests freeze the shadow heap at the exact
  // failed-allocation point. Pass nullptr to clear.
  static void SetTriggerHook(std::function<void(const char* site)> hook);

  static std::vector<std::string> ListArmed();

  // Parses a PAC_FAILPOINTS-style spec ("site=hit:3;site2=every:10;
  // site3=prob:0.01[:seed]") and arms each entry (not thread-scoped).
  // Returns the number of sites armed; malformed entries are skipped.
  static size_t ArmFromSpec(const std::string& spec);
};

}  // namespace pactree

// Guards injected-failure branches. Usage:
//   if (chunk < 0 || PACTREE_FAILPOINT("pmem/alloc")) return PPtr<void>::Null();
#define PACTREE_FAILPOINT(site) (::pactree::FailPoints::Hit(site))

#endif  // PACTREE_SRC_COMMON_FAILPOINT_H_
