// Fast per-thread PRNG (xoshiro256**) used by workload generation and tests.
#ifndef PACTREE_SRC_COMMON_RANDOM_H_
#define PACTREE_SRC_COMMON_RANDOM_H_

#include <cstdint>

namespace pactree {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding so that nearby seeds yield independent streams.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t Uniform(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / (1ULL << 53)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_RANDOM_H_
