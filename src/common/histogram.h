// Log-bucketed latency histogram (HdrHistogram-style) for the tail-latency
// experiments (paper Figure 13). Mergeable across threads; reports percentiles.
#ifndef PACTREE_SRC_COMMON_HISTOGRAM_H_
#define PACTREE_SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace pactree {

class LatencyHistogram {
 public:
  // 64 exponents x 16 linear sub-buckets covers [0, 2^63] ns with <6.25% error.
  static constexpr int kExponents = 64;
  static constexpr int kSubBuckets = 16;

  LatencyHistogram() { Reset(); }

  void Reset() {
    counts_.fill(0);
    total_ = 0;
    max_ = 0;
  }

  void Record(uint64_t value_ns) {
    counts_[BucketOf(value_ns)]++;
    total_++;
    if (value_ns > max_) {
      max_ = value_ns;
    }
  }

  void Merge(const LatencyHistogram& o) {
    for (size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += o.counts_[i];
    }
    total_ += o.total_;
    if (o.max_ > max_) {
      max_ = o.max_;
    }
  }

  uint64_t TotalCount() const { return total_; }
  uint64_t Max() const { return max_; }

  // Returns the lower bound of the bucket containing the p-th percentile
  // (p in [0, 100]).
  uint64_t Percentile(double p) const {
    if (total_ == 0) {
      return 0;
    }
    uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total_));
    if (target >= total_) {
      target = total_ - 1;
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) {
        return BucketLowerBound(i);
      }
    }
    return max_;
  }

 private:
  static size_t BucketOf(uint64_t v) {
    if (v < kSubBuckets) {
      return static_cast<size_t>(v);
    }
    int msb = 63 - __builtin_clzll(v);
    int shift = msb - 4;  // keep 4 bits of mantissa after the leading 1
    size_t exponent = static_cast<size_t>(msb - 3);
    size_t sub = static_cast<size_t>((v >> shift) & (kSubBuckets - 1));
    size_t idx = exponent * kSubBuckets + sub;
    return idx < kExponents * kSubBuckets ? idx : kExponents * kSubBuckets - 1;
  }

  static uint64_t BucketLowerBound(size_t idx) {
    size_t exponent = idx / kSubBuckets;
    size_t sub = idx % kSubBuckets;
    if (exponent == 0) {
      return sub;
    }
    int msb = static_cast<int>(exponent) + 3;
    uint64_t base = 1ULL << msb;
    return base | (static_cast<uint64_t>(sub) << (msb - 4));
  }

  std::array<uint64_t, kExponents * kSubBuckets> counts_;
  uint64_t total_ = 0;
  uint64_t max_ = 0;
};

}  // namespace pactree

#endif  // PACTREE_SRC_COMMON_HISTOGRAM_H_
