#include "src/common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace pactree {
namespace {

struct SiteState {
  FailPointTrigger trigger;
  std::thread::id armer;  // meaningful only when trigger.thread_scoped
  uint64_t hits = 0;
  uint64_t triggers = 0;
  uint64_t rng = 0;  // xorshift64 state for kProbability
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
  std::function<void(const char*)> hook;
};

// Armed-site count. The unarmed fast path is one relaxed load of this word;
// std::memory_order_relaxed is fine because arming happens-before the armed
// thread's next Hit via the registry mutex on the slow path.
std::atomic<int> g_active{0};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: outlives static destructors
  return *r;
}

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

// PAC_FAILPOINTS is parsed once at process start (a static initializer, not
// lazily inside Hit: the g_active fast path would otherwise skip the parse
// forever). Test binaries arm programmatically and never rely on this.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("PAC_FAILPOINTS");
    if (spec != nullptr && spec[0] != '\0') {
      FailPoints::ArmFromSpec(spec);
    }
  }
};
EnvInit g_env_init;

}  // namespace

bool FailPoints::Hit(const char* site) {
  if (g_active.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::function<void(const char*)> hook;
  {
    Registry& reg = Reg();
    std::lock_guard<std::mutex> guard(reg.mu);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) {
      return false;
    }
    SiteState& st = it->second;
    if (st.trigger.thread_scoped && st.armer != std::this_thread::get_id()) {
      return false;
    }
    st.hits++;
    bool fire = false;
    switch (st.trigger.kind) {
      case FailPointTrigger::kCountOnly:
        break;
      case FailPointTrigger::kNthHit:
        fire = st.hits == st.trigger.n;
        break;
      case FailPointTrigger::kEveryNth:
        fire = st.trigger.n != 0 && st.hits % st.trigger.n == 0;
        break;
      case FailPointTrigger::kProbability: {
        // Top 53 bits -> uniform double in [0, 1).
        double u = static_cast<double>(XorShift64(&st.rng) >> 11) * 0x1.0p-53;
        fire = u < st.trigger.probability;
        break;
      }
    }
    if (!fire) {
      return false;
    }
    st.triggers++;
    hook = reg.hook;  // copy out: the hook may re-enter FailPoints
  }
  if (hook) {
    hook(site);
  }
  return true;
}

void FailPoints::Arm(const std::string& site, const FailPointTrigger& trigger) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  auto [it, inserted] = reg.sites.insert_or_assign(site, SiteState{});
  SiteState& st = it->second;
  st.trigger = trigger;
  st.armer = std::this_thread::get_id();
  st.rng = trigger.seed != 0 ? trigger.seed : 0x9e3779b97f4a7c15ull;
  if (inserted) {
    g_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailPoints::Disarm(const std::string& site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  if (reg.sites.erase(site) != 0) {
    g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  g_active.fetch_sub(static_cast<int>(reg.sites.size()),
                     std::memory_order_relaxed);
  reg.sites.clear();
}

uint64_t FailPoints::HitCount(const std::string& site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::TriggerCount(const std::string& site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.triggers;
}

void FailPoints::ResetCounters(const std::string& site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  auto it = reg.sites.find(site);
  if (it != reg.sites.end()) {
    it->second.hits = 0;
    it->second.triggers = 0;
  }
}

void FailPoints::SetTriggerHook(std::function<void(const char*)> hook) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  reg.hook = std::move(hook);
}

std::vector<std::string> FailPoints::ListArmed() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  std::vector<std::string> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, st] : reg.sites) {
    out.push_back(name);
  }
  return out;
}

size_t FailPoints::ArmFromSpec(const std::string& spec) {
  size_t armed = 0;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      continue;
    }
    std::string site = entry.substr(0, eq);
    std::string rule = entry.substr(eq + 1);
    size_t c1 = rule.find(':');
    std::string kind = c1 == std::string::npos ? rule : rule.substr(0, c1);
    std::string arg = c1 == std::string::npos ? "" : rule.substr(c1 + 1);
    FailPointTrigger t;
    t.thread_scoped = false;  // no arming thread at env-parse time
    char* parse_end = nullptr;
    if (kind == "hit") {
      t.kind = FailPointTrigger::kNthHit;
      t.n = std::strtoull(arg.c_str(), &parse_end, 10);
      if (parse_end == arg.c_str() || t.n == 0) {
        continue;
      }
    } else if (kind == "every") {
      t.kind = FailPointTrigger::kEveryNth;
      t.n = std::strtoull(arg.c_str(), &parse_end, 10);
      if (parse_end == arg.c_str() || t.n == 0) {
        continue;
      }
    } else if (kind == "prob") {
      t.kind = FailPointTrigger::kProbability;
      size_t c2 = arg.find(':');
      std::string p = c2 == std::string::npos ? arg : arg.substr(0, c2);
      t.probability = std::strtod(p.c_str(), &parse_end);
      if (parse_end == p.c_str() || t.probability <= 0.0) {
        continue;
      }
      if (c2 != std::string::npos) {
        uint64_t seed = std::strtoull(arg.c_str() + c2 + 1, nullptr, 10);
        if (seed != 0) {
          t.seed = seed;
        }
      }
    } else if (kind == "count") {
      t.kind = FailPointTrigger::kCountOnly;
    } else {
      continue;
    }
    Arm(site, t);
    armed++;
  }
  return armed;
}

}  // namespace pactree
