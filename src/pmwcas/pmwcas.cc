#include "src/pmwcas/pmwcas.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/compiler.h"
#include "src/common/failpoint.h"
#include "src/nvm/persist.h"
#include "src/pmem/registry.h"
#include "src/runtime/thread_context.h"
#include "src/sync/epoch.h"

namespace pactree {
namespace {

inline std::atomic_ref<uint64_t> Word(uint64_t* p) { return std::atomic_ref<uint64_t>(*p); }

}  // namespace

PmwcasPool::PmwcasPool(PmemHeap* heap, uint64_t* anchor_raw, size_t capacity)
    : heap_(heap), capacity_(capacity) {
  busy_ = std::make_unique<std::atomic<uint8_t>[]>(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    busy_[i].store(0, std::memory_order_relaxed);
  }
  if (*anchor_raw != 0) {
    descs_raw_ = *anchor_raw;
    descs_ = PPtr<PmwcasDescriptor>(descs_raw_).get();
    return;
  }
  PPtr<void> block =
      heap->AllocTo(ToPPtr(anchor_raw), capacity * sizeof(PmwcasDescriptor));
  assert(!block.IsNull());
  descs_raw_ = block.raw;
  descs_ = static_cast<PmwcasDescriptor*>(block.get());
  std::memset(descs_, 0, capacity * sizeof(PmwcasDescriptor));
  PersistFence(descs_, capacity * sizeof(PmwcasDescriptor));
}

PmwcasPool::~PmwcasPool() {
  // Pending Release() callbacks reference this pool; flush them while the
  // descriptors are still mapped.
  EpochManager::Instance().DrainAll();
}

uint64_t PmwcasPool::DescRaw(PmwcasDescriptor* desc) const {
  uint64_t idx = static_cast<uint64_t>(desc - descs_);
  return (descs_raw_ + idx * sizeof(PmwcasDescriptor)) | kPmwcasDescriptorFlag;
}

PmwcasDescriptor* PmwcasPool::DescOf(uint64_t word) const {
  uint64_t raw = word & ~(kPmwcasDescriptorFlag | kPmwcasDirtyFlag);
  return PPtr<PmwcasDescriptor>(raw).get();
}

PmwcasDescriptor* PmwcasPool::Acquire() {
  // Fail point "pmwcas/descriptor": simulated descriptor exhaustion, exercised
  // by the Run() retry/exhausted contract exactly like a genuinely full pool.
  if (PACTREE_FAILPOINT("pmwcas/descriptor")) {
    return nullptr;
  }
  // Per-(thread, pool) cursor so concurrent pools do not share scan positions.
  uint64_t& start = ThreadContext::Current().InstanceWord(this);
  for (size_t i = 0; i < capacity_; ++i) {
    size_t idx = (start + i) % capacity_;
    uint8_t expected = 0;
    if (busy_[idx].compare_exchange_strong(expected, 1, std::memory_order_acquire)) {
      start = idx + 1;
      return &descs_[idx];
    }
  }
  return nullptr;
}

void PmwcasPool::Release(PmwcasDescriptor* desc) {
  // Descriptors are recycled only after two epochs: a helper that read the
  // raw descriptor pointer from a target word must never observe the slot
  // being refilled for a different operation (ABA). Callers run inside an
  // EpochGuard, so the grace period covers them.
  struct Pending {
    PmwcasPool* pool;
    PmwcasDescriptor* desc;
  };
  auto* p = new Pending{this, desc};
  EpochManager::Instance().Retire(
      PPtr<void>::Null(),
      [](void* arg) {
        auto* pending = static_cast<Pending*>(arg);
        PmwcasDescriptor* d = pending->desc;
        d->count = 0;
        std::atomic_ref<uint64_t>(d->status).store(kPmwcasUndecided,
                                                   std::memory_order_release);
        PersistFence(d, sizeof(uint64_t) + sizeof(uint32_t));
        pending->pool->busy_[d - pending->pool->descs_].store(0,
                                                              std::memory_order_release);
        delete pending;
      },
      p);
}

bool PmwcasPool::Run(const PmwcasWordEntry* entries, uint32_t count, bool* exhausted) {
  if (exhausted != nullptr) {
    *exhausted = false;
  }
  assert(count <= kPmwcasMaxWords);
  // Keep the descriptor pool healthy: reclamation otherwise only happens when
  // some caller happens to advance the epoch.
  uint64_t& run_counter = ThreadContext::Current().InstanceWord(this, /*tag=*/1);
  if ((++run_counter & 127) == 0) {
    EpochManager::Instance().TryAdvanceAndReclaim();
  }
  PmwcasDescriptor* desc = Acquire();
  for (int tries = 0; desc == nullptr && tries < 64; ++tries) {
    // Pool exhausted: retired descriptors are waiting out their grace period.
    EpochManager::Instance().TryAdvanceAndReclaim();
    CpuRelax();
    desc = Acquire();
  }
  if (desc == nullptr) {
    if (exhausted != nullptr) {
      *exhausted = true;
    }
    return false;  // caller must drop its epoch guard and retry
  }
  // Fill + persist the descriptor, sorted by address to avoid helping cycles.
  std::memcpy(desc->words, entries, count * sizeof(PmwcasWordEntry));
  std::sort(desc->words, desc->words + count,
            [](const PmwcasWordEntry& a, const PmwcasWordEntry& b) {
              return a.addr_raw < b.addr_raw;
            });
  desc->count = count;
  desc->status = kPmwcasUndecided;
  PersistFence(desc, sizeof(PmwcasDescriptor));

  Complete(desc);

  uint64_t st = Word(&desc->status).load(std::memory_order_acquire) & ~kPmwcasDirtyFlag;
  bool ok = st == kPmwcasSucceeded;
  (ok ? succeeded_ : failed_).fetch_add(1, std::memory_order_relaxed);
  Release(desc);
  return ok;
}

void PmwcasPool::Complete(PmwcasDescriptor* desc) {
  uint64_t desc_word = DescRaw(desc) | kPmwcasDirtyFlag;
  uint32_t count = desc->count;

  // ---- phase 1: install the descriptor into every target word ----
  uint64_t decided = kPmwcasSucceeded;
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t st = Word(&desc->status).load(std::memory_order_acquire) & ~kPmwcasDirtyFlag;
    if (st != kPmwcasUndecided) {
      decided = st;  // another helper already decided
      break;
    }
    uint64_t* addr = PPtr<uint64_t>(desc->words[i].addr_raw).get();
    while (true) {
      uint64_t cur = Word(addr).load(std::memory_order_acquire);
      if ((cur & ~kPmwcasDirtyFlag) == (desc_word & ~kPmwcasDirtyFlag)) {
        break;  // already installed (by a helper)
      }
      if ((cur & kPmwcasDescriptorFlag) != 0) {
        // Another PMwCAS is mid-flight here: help it first, then retry.
        PmwcasDescriptor* other = DescOf(cur);
        if (other != desc) {
          Complete(other);
          continue;
        }
        break;
      }
      if ((cur & kPmwcasDirtyFlag) != 0) {
        PersistFence(addr, sizeof(uint64_t));
        Word(addr).compare_exchange_strong(cur, cur & ~kPmwcasDirtyFlag,
                                           std::memory_order_acq_rel);
        continue;
      }
      if (cur != desc->words[i].old_val) {
        decided = kPmwcasFailed;
        break;
      }
      if (Word(addr).compare_exchange_weak(cur, desc_word, std::memory_order_acq_rel)) {
        // Persist the installation before the status may flip (dirty protocol).
        PersistFence(addr, sizeof(uint64_t));
        Word(addr).compare_exchange_strong(desc_word, desc_word & ~kPmwcasDirtyFlag,
                                           std::memory_order_acq_rel);
        desc_word |= kPmwcasDirtyFlag;  // restore for the next word's install
        break;
      }
    }
    if (decided == kPmwcasFailed) {
      break;
    }
  }

  // ---- phase 2: decide ----
  uint64_t expected = kPmwcasUndecided;
  Word(&desc->status)
      .compare_exchange_strong(expected, decided | kPmwcasDirtyFlag,
                               std::memory_order_acq_rel);
  PersistFence(&desc->status, sizeof(uint64_t));
  uint64_t st = Word(&desc->status).load(std::memory_order_acquire);
  if ((st & kPmwcasDirtyFlag) != 0) {
    Word(&desc->status)
        .compare_exchange_strong(st, st & ~kPmwcasDirtyFlag, std::memory_order_acq_rel);
  }
  uint64_t final_status = Word(&desc->status).load(std::memory_order_acquire) &
                          ~kPmwcasDirtyFlag;

  // ---- phase 3: detach ----
  uint64_t installed = DescRaw(desc);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t* addr = PPtr<uint64_t>(desc->words[i].addr_raw).get();
    uint64_t target = (final_status == kPmwcasSucceeded ? desc->words[i].new_val
                                                        : desc->words[i].old_val) |
                      kPmwcasDirtyFlag;
    uint64_t cur = Word(addr).load(std::memory_order_acquire);
    if ((cur & ~kPmwcasDirtyFlag) == installed) {
      if (Word(addr).compare_exchange_strong(cur, target, std::memory_order_acq_rel)) {
        PersistFence(addr, sizeof(uint64_t));
        Word(addr).compare_exchange_strong(target, target & ~kPmwcasDirtyFlag,
                                           std::memory_order_acq_rel);
      }
    }
  }
}

uint64_t PmwcasPool::ReadWord(uint64_t* addr) {
  while (true) {
    uint64_t cur = Word(addr).load(std::memory_order_acquire);
    if ((cur & kPmwcasDescriptorFlag) != 0) {
      Complete(DescOf(cur));
      continue;
    }
    if ((cur & kPmwcasDirtyFlag) != 0) {
      PersistFence(addr, sizeof(uint64_t));
      Word(addr).compare_exchange_strong(cur, cur & ~kPmwcasDirtyFlag,
                                         std::memory_order_acq_rel);
      continue;
    }
    return cur;
  }
}

void PmwcasPool::Recover() {
  for (size_t i = 0; i < capacity_; ++i) {
    PmwcasDescriptor* desc = &descs_[i];
    // The fill fence can tear (128 B descriptor, 8 B commit granularity):
    // count may land without some word entries, whose fields then read as
    // zero (virgin slot) or stale (recycled slot). Such a descriptor was
    // never installed into any target word -- installation starts only after
    // the fill fence completes -- so entries that do not resolve are skipped
    // and the |cur == installed| test rejects the stale ones.
    uint32_t n = desc->count;
    if (n == 0) {
      continue;
    }
    if (n > kPmwcasMaxWords) {
      n = kPmwcasMaxWords;
    }
    uint64_t st = desc->status & ~kPmwcasDirtyFlag;
    uint64_t installed = DescRaw(desc);
    // Undecided rolls back; succeeded rolls forward.
    for (uint32_t w = 0; w < n; ++w) {
      uint64_t* addr = PPtr<uint64_t>(desc->words[w].addr_raw).get();
      if (addr == nullptr) {
        continue;  // torn fill: this entry never reached a target word
      }
      uint64_t cur = *addr & ~kPmwcasDirtyFlag;
      if (cur == (installed & ~kPmwcasDirtyFlag)) {
        *addr = st == kPmwcasSucceeded ? desc->words[w].new_val
                                       : desc->words[w].old_val;
        PersistFence(addr, sizeof(uint64_t));
      } else if ((*addr & kPmwcasDirtyFlag) != 0) {
        *addr = cur;
        PersistFence(addr, sizeof(uint64_t));
      }
    }
    desc->count = 0;
    desc->status = kPmwcasUndecided;
    PersistFence(desc, sizeof(uint64_t) + sizeof(uint32_t));
  }
}

}  // namespace pactree
