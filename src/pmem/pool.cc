#include "src/pmem/pool.h"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include "src/common/compiler.h"
#include "src/common/failpoint.h"
#include "src/nvm/persist.h"
#include "src/nvm/stats.h"
#include "src/pmem/registry.h"
#include "src/runtime/thread_context.h"

namespace pactree {
namespace {

inline std::atomic_ref<uint64_t> AtomicRef64(uint64_t* p) { return std::atomic_ref<uint64_t>(*p); }
inline std::atomic_ref<uint32_t> AtomicRef32(uint32_t* p) { return std::atomic_ref<uint32_t>(*p); }

}  // namespace

size_t SizeClassFor(size_t size) {
  for (size_t i = 0; i < kNumClasses; ++i) {
    if (size <= kSizeClasses[i]) {
      return i;
    }
  }
  return kNumClasses;  // whole-chunk path
}

// ---------------------------------------------------------------------------
// Construction / layout
// ---------------------------------------------------------------------------

std::unique_ptr<PmemPool> PmemPool::Create(const std::string& path, uint16_t pool_id,
                                           uint32_t node, const PmemPoolOptions& opts,
                                           std::string* error) {
  assert(pool_id != 0 && "pool id 0 is the null pool");
  auto pool = std::unique_ptr<PmemPool>(new PmemPool());
  size_t size = opts.size != 0 ? opts.size : (64ULL << 20);
  pool->crash_consistent_ = opts.crash_consistent && !opts.dram;
  pool->dram_ = opts.dram;
  pool->path_ = path;
  if (opts.dram) {
    void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      if (error != nullptr) {
        *error = std::string("mmap(anonymous DRAM pool): ") + std::strerror(errno);
      }
      return nullptr;
    }
    pool->dram_base_ = base;
    pool->base_ = base;
    pool->size_ = size;
    pool->node_ = node;
  } else {
    if (!pool->file_.Create(path, size, node, pool_id)) {
      if (error != nullptr) {
        *error = pool->file_.last_error();
      }
      return nullptr;
    }
    pool->base_ = pool->file_.base();
    pool->size_ = pool->file_.size();
    pool->node_ = node;
  }
  if (!pool->InitNew(pool_id, node, size)) {
    if (error != nullptr) {
      *error = path + ": pool size " + std::to_string(size) +
               " too small for one chunk plus metadata";
    }
    return nullptr;
  }
  return pool;
}

Status PmemPool::Open(const std::string& path, uint16_t pool_id, uint32_t node,
                      const PmemPoolOptions& opts, std::unique_ptr<PmemPool>* out,
                      std::string* error) {
  out->reset();
  if (error != nullptr) {
    error->clear();
  }
  if (!NvmPoolFile::Exists(path)) {
    if (error != nullptr) {
      *error = path + ": pool file does not exist";
    }
    return Status::kNotFound;
  }
  auto pool = std::unique_ptr<PmemPool>(new PmemPool());
  pool->crash_consistent_ = opts.crash_consistent;
  pool->path_ = path;
  if (!pool->file_.Open(path, node, pool_id)) {
    // The file exists but cannot be mapped (zero-length, unreadable): treat a
    // present-but-unmappable pool as corrupt so callers never recreate over it
    // silently. The pool-file layer recorded the syscall + errno + path.
    if (error != nullptr) {
      *error = pool->file_.last_error();
    }
    return Status::kCorrupted;
  }
  pool->base_ = pool->file_.base();
  pool->size_ = pool->file_.size();
  pool->node_ = node;
  Status st = pool->ValidateHeader(pool_id);
  if (st != Status::kOk) {
    if (error != nullptr) {
      *error = path + ": superblock validation failed (bad magic, pool id, or layout)";
    }
    return st;
  }
  if (!pool->AttachExisting(pool_id, !opts.defer_log_recovery)) {
    if (error != nullptr) {
      *error = path + ": attach failed (header mutated between validate and attach)";
    }
    return Status::kCorrupted;
  }
  *out = std::move(pool);
  return Status::kOk;
}

Status PmemPool::ValidateHeader(uint16_t pool_id) const {
  // Everything here must be provably inside the mapping before it is read:
  // a truncated file must fail validation, not fault.
  if (size_ < sizeof(PoolHeader)) {
    return Status::kCorrupted;
  }
  const PoolHeader* h = header();
  if (h->magic != kPoolMagic) {
    return Status::kCorrupted;
  }
  if (h->layout_version != 1 || h->pool_id != pool_id) {
    return Status::kCorrupted;
  }
  if (h->size < sizeof(PoolHeader) || h->size > size_) {
    return Status::kCorrupted;
  }
  if (h->chunk_count == 0 || h->log_slots == 0 || h->log_slots > kLogSlots) {
    return Status::kCorrupted;
  }
  uint64_t chunk_meta_end = h->chunk_meta_off + uint64_t{h->chunk_count} * sizeof(uint32_t);
  uint64_t bitmap_end =
      h->bitmap_off + uint64_t{h->chunk_count} * kBitmapWordsPerChunk * sizeof(uint64_t);
  uint64_t log_end = h->log_off + uint64_t{h->log_slots} * sizeof(AllocLogSlot);
  uint64_t data_end = h->data_off + uint64_t{h->chunk_count} * kChunkSize;
  if (h->chunk_meta_off < sizeof(PoolHeader) || chunk_meta_end > h->bitmap_off ||
      bitmap_end > h->log_off || log_end > h->data_off || data_end > h->size) {
    return Status::kCorrupted;
  }
  return Status::kOk;
}

bool PmemPool::InitNew(uint16_t pool_id, uint32_t node, size_t size) {
  pool_id_ = pool_id;
  // Layout: header | chunk states | bitmaps | log slots | data chunks.
  size_t meta = sizeof(PoolHeader);
  size_t chunk_meta_off = meta;
  // Solve for chunk count: each chunk costs kChunkSize data + 4 B state +
  // bitmap words.
  size_t per_chunk_meta = sizeof(uint32_t) + kBitmapWordsPerChunk * sizeof(uint64_t);
  size_t fixed = meta + kLogSlots * sizeof(AllocLogSlot) + 4096;
  if (size <= fixed + kChunkSize + per_chunk_meta) {
    return false;
  }
  uint32_t chunks = static_cast<uint32_t>((size - fixed) / (kChunkSize + per_chunk_meta));
  size_t bitmap_off = chunk_meta_off + chunks * sizeof(uint32_t);
  bitmap_off = (bitmap_off + 63) & ~size_t{63};
  size_t log_off = bitmap_off + chunks * kBitmapWordsPerChunk * sizeof(uint64_t);
  log_off = (log_off + 63) & ~size_t{63};
  size_t data_off = log_off + kLogSlots * sizeof(AllocLogSlot);
  data_off = (data_off + 4095) & ~size_t{4095};
  while (data_off + static_cast<size_t>(chunks) * kChunkSize > size) {
    --chunks;
  }

  PoolHeader* h = header();
  std::memset(h, 0, sizeof(PoolHeader));
  h->layout_version = 1;
  h->pool_id = pool_id;
  h->node = static_cast<uint16_t>(node);
  h->size = size;
  h->chunk_count = chunks;
  h->log_slots = kLogSlots;
  h->chunk_meta_off = chunk_meta_off;
  h->bitmap_off = bitmap_off;
  h->log_off = log_off;
  h->data_off = data_off;
  h->generation = 1;
  PersistFence(h, sizeof(PoolHeader));
  // Chunk states / bitmaps / logs start zeroed (fresh file or fresh mapping).
  h->magic = kPoolMagic;  // linearization point for pool validity
  PersistFence(&h->magic, sizeof(h->magic));

  SetPoolBase(pool_id_, base_);
  RegisterPoolRange(base_, size_, pool_id_);
  RegisterPoolAllocator(pool_id_, this);
  RebuildVolatileState();
  return true;
}

bool PmemPool::AttachExisting(uint16_t pool_id, bool recover_logs) {
  PoolHeader* h = header();
  if (h->magic != kPoolMagic || h->pool_id != pool_id || h->size > size_) {
    return false;
  }
  pool_id_ = pool_id;
  SetPoolBase(pool_id_, base_);
  RegisterPoolRange(base_, size_, pool_id_);
  RegisterPoolAllocator(pool_id_, this);
  h->generation++;
  PersistFence(&h->generation, sizeof(h->generation));
  RebuildVolatileState();
  if (recover_logs) {
    RecoverLogs();
  }
  return true;
}

PmemPool::~PmemPool() {
  if (base_ != nullptr) {
    RegisterPoolAllocator(pool_id_, nullptr);
    UnregisterPoolRange(base_);
    SetPoolBase(pool_id_, nullptr);
  }
  if (dram_base_ != nullptr) {
    ::munmap(dram_base_, size_);
  }
}

AllocLogSlot* PmemPool::Logs() const {
  return reinterpret_cast<AllocLogSlot*>(static_cast<char*>(base_) + header()->log_off);
}

uint32_t* PmemPool::ChunkStates() const {
  return reinterpret_cast<uint32_t*>(static_cast<char*>(base_) + header()->chunk_meta_off);
}

uint64_t* PmemPool::BitmapOf(uint32_t chunk) const {
  return reinterpret_cast<uint64_t*>(static_cast<char*>(base_) + header()->bitmap_off) +
         static_cast<size_t>(chunk) * kBitmapWordsPerChunk;
}

uint64_t PmemPool::ChunkDataOffset(uint32_t chunk) const {
  return header()->data_off + static_cast<uint64_t>(chunk) * kChunkSize;
}

// ---------------------------------------------------------------------------
// Volatile state reconstruction & log recovery
// ---------------------------------------------------------------------------

void PmemPool::RebuildVolatileState() {
  PoolHeader* h = header();
  std::lock_guard<std::mutex> lock(mu_);
  free_chunks_.clear();
  free_counts_ = std::vector<std::atomic<uint32_t>>(h->chunk_count);
  in_partial_ = std::vector<std::atomic<uint8_t>>(h->chunk_count);
  log_busy_ = std::vector<std::atomic<uint8_t>>(h->log_slots);
  for (auto& c : classes_) {
    c.current.store(-1, std::memory_order_relaxed);
    c.hint.store(0, std::memory_order_relaxed);
    c.partial.clear();
  }
  uint32_t* states = ChunkStates();
  for (uint32_t i = 0; i < h->chunk_count; ++i) {
    uint32_t st = states[i];
    if (st == kChunkStateFree) {
      free_chunks_.push_back(i);
      continue;
    }
    if (st == kChunkStateWhole || st > kNumClasses) {
      // Whole-chunk allocation (or continuation marker): occupied iff bit 0.
      free_counts_[i].store(0, std::memory_order_relaxed);
      continue;
    }
    size_t class_idx = st - 1;
    uint32_t blocks = static_cast<uint32_t>(kChunkSize / kSizeClasses[class_idx]);
    uint64_t* bm = BitmapOf(i);
    uint32_t used = 0;
    for (uint32_t w = 0; w < (blocks + 63) / 64; ++w) {
      used += static_cast<uint32_t>(__builtin_popcountll(bm[w]));
    }
    free_counts_[i].store(blocks - used, std::memory_order_relaxed);
    if (used == 0) {
      // Empty assigned chunk: make it reusable for any class.
      states[i] = kChunkStateFree;
      PersistFence(&states[i], sizeof(uint32_t));
      free_chunks_.push_back(i);
    } else if (used < blocks) {
      classes_[class_idx].partial.push_back(i);
      in_partial_[i].store(1, std::memory_order_relaxed);
    }
  }
}

void PmemPool::RecoverLogs() {
  PoolHeader* h = header();
  AllocLogSlot* logs = Logs();
  for (uint32_t i = 0; i < h->log_slots; ++i) {
    AllocLogSlot& s = logs[i];
    if (s.state == kLogEmpty && s.checksum == 0) {
      continue;
    }
    if (s.state != kLogEmpty && s.checksum != AllocSlotChecksum(s)) {
      // Torn publish: part of the entry (possibly just the state word next to
      // a retired entry's stale payload) reached the media. The entry's fence
      // precedes any data mutation of the logged operation, so discarding it
      // is exactly "the operation never started".
      s.state = kLogEmpty;
      s.checksum = 0;
      PersistFence(&s, sizeof(s));
      continue;
    }
    if (s.state == kLogAllocPending) {
      PPtr<uint64_t> dest(s.dest);
      PPtr<void> block(s.block);
      if (!block.IsNull()) {
        // |dest| may live in another pool (cross-heap malloc-to): recovery
        // runs only after all of the index's pools are mapped (deferred log
        // recovery), and a dest in a pool that is gone entirely cannot hold a
        // reachable attachment -- roll back.
        bool attached = !dest.IsNull() && GetPoolBase(dest.pool()) != nullptr &&
                        *dest.get() == s.block;
        if (!attached) {
          // Roll back: release the block.
          FreeInternal(block.offset(), /*log=*/false);
        }
      }
    } else if (s.state == kLogFreePending) {
      PPtr<void> block(s.block);
      if (!block.IsNull()) {
        FreeInternal(block.offset(), /*log=*/false);  // idempotent bit clear
      }
    }
    s.state = kLogEmpty;
    s.checksum = 0;
    PersistFence(&s, sizeof(s));
  }
}

size_t PmemPool::PendingLogEntries() const {
  const PoolHeader* h = header();
  const AllocLogSlot* logs = Logs();
  size_t pending = 0;
  for (uint32_t i = 0; i < h->log_slots; ++i) {
    if (logs[i].state != kLogEmpty) {
      pending++;
    }
  }
  return pending;
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

int PmemPool::AcquireLogSlot() {
  size_t n = log_busy_.size();
  // Round-robin cursor per (thread, pool): a process-global per-thread cursor
  // would make one pool's workload contend on slots another pool just used.
  uint64_t& start = ThreadContext::Current().InstanceWord(this);
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (start + i) % n;
    uint8_t expected = 0;
    if (log_busy_[idx].compare_exchange_strong(expected, 1, std::memory_order_acquire)) {
      start = idx + 1;
      return static_cast<int>(idx);
    }
  }
  return -1;
}

void PmemPool::ReleaseLogSlot(int slot) {
  log_busy_[slot].store(0, std::memory_order_release);
}

uint64_t PmemPool::TryAllocInChunk(uint32_t chunk, size_t class_idx, bool persist_meta) {
  size_t block_size = kSizeClasses[class_idx];
  uint32_t blocks = static_cast<uint32_t>(kChunkSize / block_size);
  uint32_t words = (blocks + 63) / 64;
  uint64_t* bm = BitmapOf(chunk);
  uint32_t start_word = classes_[class_idx].hint.load(std::memory_order_relaxed) % words;
  for (uint32_t i = 0; i < words; ++i) {
    uint32_t w = (start_word + i) % words;
    uint64_t cur = AtomicRef64(&bm[w]).load(std::memory_order_relaxed);
    while (true) {
      uint64_t valid_mask = (w == words - 1 && blocks % 64 != 0)
                                ? ((1ULL << (blocks % 64)) - 1)
                                : ~0ULL;
      uint64_t free_bits = ~cur & valid_mask;
      if (free_bits == 0) {
        break;
      }
      int bit = __builtin_ctzll(free_bits);
      uint64_t want = cur | (1ULL << bit);
      if (AtomicRef64(&bm[w]).compare_exchange_weak(cur, want, std::memory_order_acq_rel)) {
        if (persist_meta && crash_consistent_) {
          PersistFence(&bm[w], sizeof(uint64_t));
        }
        classes_[class_idx].hint.store(w, std::memory_order_relaxed);
        free_counts_[chunk].fetch_sub(1, std::memory_order_relaxed);
        uint32_t block_idx = w * 64 + static_cast<uint32_t>(bit);
        return ChunkDataOffset(chunk) + static_cast<uint64_t>(block_idx) * block_size;
      }
      // CAS failed: cur reloaded, retry this word.
    }
  }
  return 0;
}

int PmemPool::AcquireChunk(size_t class_idx) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& cs = classes_[class_idx];
  // Prefer partially-filled chunks of this class.
  while (!cs.partial.empty()) {
    uint32_t c = cs.partial.back();
    cs.partial.pop_back();
    in_partial_[c].store(0, std::memory_order_relaxed);
    if (free_counts_[c].load(std::memory_order_relaxed) > 0) {
      cs.current.store(c, std::memory_order_release);
      cs.hint.store(0, std::memory_order_relaxed);
      return static_cast<int>(c);
    }
  }
  if (free_chunks_.empty()) {
    return -1;
  }
  uint32_t c = free_chunks_.back();
  free_chunks_.pop_back();
  // Scrub the bitmap before assignment: the chunk may carry a stale
  // whole-chunk span word, or claim bits from a crash-interrupted release.
  uint64_t* bm = BitmapOf(c);
  std::memset(bm, 0, kBitmapWordsPerChunk * sizeof(uint64_t));
  if (crash_consistent_) {
    PersistFence(bm, kBitmapWordsPerChunk * sizeof(uint64_t));
  }
  uint32_t* states = ChunkStates();
  states[c] = static_cast<uint32_t>(class_idx) + 1;
  if (crash_consistent_) {
    PersistFence(&states[c], sizeof(uint32_t));
  }
  uint32_t blocks = static_cast<uint32_t>(kChunkSize / kSizeClasses[class_idx]);
  free_counts_[c].store(blocks, std::memory_order_relaxed);
  cs.current.store(c, std::memory_order_release);
  cs.hint.store(0, std::memory_order_relaxed);
  return static_cast<int>(c);
}

uint64_t PmemPool::AllocWholeChunks(size_t size, bool persist_meta) {
  uint32_t span = static_cast<uint32_t>((size + kChunkSize - 1) / kChunkSize);
  std::lock_guard<std::mutex> lock(mu_);
  if (free_chunks_.size() < span) {
    return 0;
  }
  // Contiguity is only required within the span; find a run among free chunks.
  // Free list is unordered, so scan the persistent states directly.
  uint32_t* states = ChunkStates();
  uint32_t count = header()->chunk_count;
  for (uint32_t start = 0; start + span <= count; ++start) {
    bool ok = true;
    for (uint32_t i = 0; i < span; ++i) {
      if (states[start + i] != kChunkStateFree) {
        ok = false;
        start += i;  // skip past the blocker
        break;
      }
    }
    if (!ok) {
      continue;
    }
    for (uint32_t i = 0; i < span; ++i) {
      states[start + i] = kChunkStateWhole;
      free_counts_[start + i].store(0, std::memory_order_relaxed);
    }
    // Mark bit 0 of the head chunk's bitmap: "whole allocation present".
    uint64_t* bm = BitmapOf(start);
    bm[0] = 1;
    // Record the span in the head bitmap's second word for BlockSize/Free.
    bm[1] = span;
    if (persist_meta && crash_consistent_) {
      PersistRange(bm, 2 * sizeof(uint64_t));
      PersistFence(states + start, span * sizeof(uint32_t));
    }
    // Rebuild the free list without the taken chunks.
    std::vector<uint32_t> rest;
    rest.reserve(free_chunks_.size());
    for (uint32_t c : free_chunks_) {
      if (c < start || c >= start + span) {
        rest.push_back(c);
      }
    }
    free_chunks_.swap(rest);
    return ChunkDataOffset(start);
  }
  return 0;
}

uint64_t PmemPool::AllocOffset(size_t size, bool persist_meta) {
  if (size == 0) {
    size = 1;
  }
  size_t class_idx = SizeClassFor(size);
  if (class_idx == kNumClasses) {
    return AllocWholeChunks(size, persist_meta);
  }
  ClassState& cs = classes_[class_idx];
  for (int attempts = 0; attempts < 1024; ++attempts) {
    int64_t chunk = cs.current.load(std::memory_order_acquire);
    if (chunk >= 0) {
      uint64_t off = TryAllocInChunk(static_cast<uint32_t>(chunk), class_idx, persist_meta);
      if (off != 0) {
        return off;
      }
    }
    int fresh = AcquireChunk(class_idx);
    if (fresh < 0) {
      return 0;  // pool exhausted
    }
  }
  return 0;
}

PPtr<void> PmemPool::AllocInternal(size_t size, bool persist_meta) {
  // Fail point "pmem/alloc": injected exhaustion, indistinguishable from a
  // genuinely full pool to every caller.
  uint64_t off = PACTREE_FAILPOINT("pmem/alloc") ? 0 : AllocOffset(size, persist_meta);
  if (off == 0) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return PPtr<void>::Null();
  }
  void* p = static_cast<char*>(base_) + off;
  std::memset(p, 0, size <= kSizeClasses[kNumClasses - 1] ? kSizeClasses[SizeClassFor(size)]
                                                          : size);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  uint64_t live = live_bytes_.fetch_add(BlockSize(off), std::memory_order_relaxed) +
                  BlockSize(off);
  uint64_t hwm = hwm_live_bytes_.load(std::memory_order_relaxed);
  while (live > hwm &&
         !hwm_live_bytes_.compare_exchange_weak(hwm, live, std::memory_order_relaxed)) {
  }
  LocalNvmCounters(pool_id_).alloc_ops++;
  return PPtr<void>::FromParts(pool_id_, off);
}

PPtr<void> PmemPool::Alloc(size_t size) { return AllocInternal(size, /*persist_meta=*/true); }

void PmemPool::PersistBlockMetadata(uint64_t offset) {
  if (!crash_consistent_) {
    return;
  }
  PoolHeader* h = header();
  uint32_t chunk = static_cast<uint32_t>((offset - h->data_off) / kChunkSize);
  uint32_t st = ChunkStates()[chunk];
  uint64_t* bm = BitmapOf(chunk);
  if (st == kChunkStateWhole) {
    uint32_t span = static_cast<uint32_t>(bm[1]);
    PersistRange(bm, 2 * sizeof(uint64_t));
    PersistFence(ChunkStates() + chunk, span * sizeof(uint32_t));
  } else if (st >= 1 && st <= kNumClasses) {
    size_t block_size = kSizeClasses[st - 1];
    uint32_t block_idx = static_cast<uint32_t>(
        (offset - h->data_off - uint64_t{chunk} * kChunkSize) / block_size);
    PersistFence(&bm[block_idx / 64], sizeof(uint64_t));
  }
}

PPtr<void> PmemPool::AllocTo(PPtr<uint64_t> dest, size_t size) {
  if (!crash_consistent_) {
    // Transient mode: plain allocate + store (Figure 3's Jemalloc arm).
    PPtr<void> block = Alloc(size);
    if (!block.IsNull() && !dest.IsNull()) {
      *dest.get() = block.raw;
    }
    return block;
  }
  // Fail point "pmem/alloc_to": fail the malloc-to protocol before any slot or
  // block is reserved (nothing to unwind; callers see plain exhaustion).
  if (PACTREE_FAILPOINT("pmem/alloc_to")) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return PPtr<void>::Null();
  }
  int slot_idx = AcquireLogSlot();
  if (slot_idx < 0) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return PPtr<void>::Null();
  }
  // (1) reserve a block, bitmap *not* yet persisted: until the log entry below
  // is durable there must be no durable trace of the block, otherwise a crash
  // here leaks it (log empty, bit set, nobody pointing at it).
  PPtr<void> block = AllocInternal(size, /*persist_meta=*/false);
  if (block.IsNull()) {
    ReleaseLogSlot(slot_idx);
    return block;
  }
  AllocLogSlot& slot = Logs()[slot_idx];
  // (2) publish the complete entry -- payload, state, checksum -- in one
  // fence. From here the block cannot leak: recovery either rolls it back
  // (not attached) or keeps it (attached). A torn commit of this line fails
  // the checksum and reads as "never happened", matching the volatile bitmap.
  slot.dest = dest.raw;
  slot.block = block.raw;
  slot.size = size;
  slot.state = kLogAllocPending;
  slot.checksum = AllocSlotChecksum(slot);
  PersistFence(&slot, sizeof(slot));
  // (3) now make the reservation durable
  PersistBlockMetadata(block.offset());
  // (4) attach to the destination word
  if (!dest.IsNull()) {
    std::atomic_ref<uint64_t>(*dest.get()).store(block.raw, std::memory_order_release);
    PersistFence(dest.get(), sizeof(uint64_t));
  }
  // (5) retire: state and checksum durably cleared together, so slot reuse can
  // never resurrect this entry via a torn write.
  slot.state = kLogEmpty;
  slot.checksum = 0;
  PersistFence(&slot, sizeof(slot));
  ReleaseLogSlot(slot_idx);
  return block;
}

// ---------------------------------------------------------------------------
// Free
// ---------------------------------------------------------------------------

size_t PmemPool::BlockSize(uint64_t offset) const {
  const PoolHeader* h = header();
  if (offset < h->data_off) {
    return 0;
  }
  uint32_t chunk = static_cast<uint32_t>((offset - h->data_off) / kChunkSize);
  uint32_t st = ChunkStates()[chunk];
  if (st == kChunkStateWhole) {
    return BitmapOf(chunk)[1] * kChunkSize;
  }
  if (st == kChunkStateFree || st > kNumClasses) {
    return 0;
  }
  return kSizeClasses[st - 1];
}

void PmemPool::FreeInternal(uint64_t offset, bool log) {
  PoolHeader* h = header();
  if (offset < h->data_off || offset >= h->data_off + uint64_t{h->chunk_count} * kChunkSize) {
    return;
  }
  uint32_t chunk = static_cast<uint32_t>((offset - h->data_off) / kChunkSize);
  uint32_t* states = ChunkStates();
  uint32_t st = states[chunk];
  if (st == kChunkStateFree) {
    return;
  }

  int slot_idx = -1;
  if (log && crash_consistent_) {
    slot_idx = AcquireLogSlot();
    if (slot_idx >= 0) {
      AllocLogSlot& slot = Logs()[slot_idx];
      slot.dest = 0;
      slot.block = PPtr<void>::FromParts(pool_id_, offset).raw;
      slot.size = 0;
      slot.state = kLogFreePending;
      slot.checksum = AllocSlotChecksum(slot);
      PersistFence(&slot, sizeof(slot));
    }
  }

  if (st == kChunkStateWhole) {
    uint64_t* bm = BitmapOf(chunk);
    uint32_t span = static_cast<uint32_t>(bm[1]);
    bm[0] = 0;
    if (crash_consistent_) {
      PersistFence(&bm[0], sizeof(uint64_t));
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t i = 0; i < span; ++i) {
      states[chunk + i] = kChunkStateFree;
      free_chunks_.push_back(chunk + i);
    }
    if (crash_consistent_) {
      PersistFence(states + chunk, span * sizeof(uint32_t));
    }
  } else if (st <= kNumClasses && st > 0) {
    size_t class_idx = st - 1;
    size_t block_size = kSizeClasses[class_idx];
    uint32_t block_idx =
        static_cast<uint32_t>((offset - h->data_off - uint64_t{chunk} * kChunkSize) /
                              block_size);
    uint64_t* bm = BitmapOf(chunk);
    uint32_t w = block_idx / 64;
    uint64_t mask = 1ULL << (block_idx % 64);
    uint64_t prev = AtomicRef64(&bm[w]).fetch_and(~mask, std::memory_order_acq_rel);
    if (crash_consistent_) {
      PersistFence(&bm[w], sizeof(uint64_t));
    }
    if ((prev & mask) != 0 && !free_counts_.empty()) {
      uint32_t now = free_counts_[chunk].fetch_add(1, std::memory_order_relaxed) + 1;
      // Put the chunk on its class's partial list so the space is found again.
      if (classes_[class_idx].current.load(std::memory_order_relaxed) !=
              static_cast<int64_t>(chunk) &&
          !in_partial_[chunk].exchange(1, std::memory_order_acq_rel)) {
        std::lock_guard<std::mutex> lock(mu_);
        classes_[class_idx].partial.push_back(chunk);
      }
      if (now == static_cast<uint32_t>(kChunkSize / block_size)) {
        TryReleaseEmptyChunk(chunk, class_idx);
      }
    }
  }

  if (slot_idx >= 0) {
    AllocLogSlot& slot = Logs()[slot_idx];
    slot.state = kLogEmpty;
    slot.checksum = 0;
    PersistFence(&slot, sizeof(slot));
    ReleaseLogSlot(slot_idx);
  }
}

void PmemPool::TryReleaseEmptyChunk(uint32_t chunk, size_t class_idx) {
  uint32_t blocks = static_cast<uint32_t>(kChunkSize / kSizeClasses[class_idx]);
  uint32_t words = (blocks + 63) / 64;
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& cs = classes_[class_idx];
  if (cs.current.load(std::memory_order_relaxed) == static_cast<int64_t>(chunk)) {
    return;  // the class's active allocation target stays resident
  }
  if (ChunkStates()[chunk] != static_cast<uint32_t>(class_idx) + 1 ||
      free_counts_[chunk].load(std::memory_order_relaxed) != blocks) {
    return;
  }
  // Claim every block word with a 0 -> ~0 CAS. Allocators reach a chunk only
  // through the class's |current| (excluded above) or AcquireChunk (blocked on
  // mu_), but a thread that read |current| before it moved on can still be
  // inside TryAllocInChunk: once a word reads full it cannot win a CAS there,
  // and if it won one first, our claim fails and the release aborts. The
  // claim stores are volatile-only -- a crash mid-claim durably shows at
  // worst a superset of set bits, which recovery reads as allocated blocks
  // (bounded leak), never as a double assignment.
  uint64_t* bm = BitmapOf(chunk);
  uint32_t claimed = 0;
  bool aborted = false;
  for (; claimed < words; ++claimed) {
    uint64_t expected = 0;
    if (!AtomicRef64(&bm[claimed])
             .compare_exchange_strong(expected, ~0ULL, std::memory_order_acq_rel)) {
      aborted = true;
      break;
    }
  }
  if (aborted) {
    for (uint32_t w = 0; w < claimed; ++w) {
      AtomicRef64(&bm[w]).store(0, std::memory_order_release);
    }
    return;  // a racing allocation took a block; the chunk stays assigned
  }
  auto& part = cs.partial;
  part.erase(std::remove(part.begin(), part.end(), chunk), part.end());
  in_partial_[chunk].store(0, std::memory_order_relaxed);
  free_counts_[chunk].store(0, std::memory_order_relaxed);
  uint32_t* states = ChunkStates();
  states[chunk] = kChunkStateFree;
  if (crash_consistent_) {
    PersistFence(&states[chunk], sizeof(uint32_t));
  }
  for (uint32_t w = 0; w < words; ++w) {
    AtomicRef64(&bm[w]).store(0, std::memory_order_relaxed);
  }
  if (crash_consistent_) {
    PersistFence(bm, words * sizeof(uint64_t));
  }
  free_chunks_.push_back(chunk);
  chunks_released_.fetch_add(1, std::memory_order_relaxed);
}

void PmemPool::Free(uint64_t offset) {
  uint64_t bytes = BlockSize(offset);
  FreeInternal(offset, /*log=*/true);
  frees_.fetch_add(1, std::memory_order_relaxed);
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  LocalNvmCounters(pool_id_).free_ops++;
}

double PmemPool::UsedFraction() const {
  uint32_t total = header()->chunk_count;
  if (total == 0) {
    return 1.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(total - free_chunks_.size()) / static_cast<double>(total);
}

PmemPoolStats PmemPool::Stats() const {
  PmemPoolStats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.alloc_failures = alloc_failures_.load(std::memory_order_relaxed);
  s.hwm_live_bytes = hwm_live_bytes_.load(std::memory_order_relaxed);
  s.chunks_released = chunks_released_.load(std::memory_order_relaxed);
  s.used_fraction = UsedFraction();
  return s;
}

void PmemFree(PPtr<void> p) {
  if (p.IsNull()) {
    return;
  }
  PmemPool* pool = PoolAllocatorOf(p.pool());
  if (pool != nullptr) {
    pool->Free(p.offset());
  }
}

}  // namespace pactree
