#include "src/pmem/heap.h"

#include <cstdio>

#include "src/common/failpoint.h"
#include "src/nvm/config.h"
#include "src/nvm/topology.h"

namespace pactree {
namespace {

std::string PoolPath(const std::string& name, uint32_t node) {
  return NvmConfig::DefaultPoolDir() + "/" + name + "." + std::to_string(node) + ".pool";
}

}  // namespace

std::unique_ptr<PmemHeap> PmemHeap::OpenOrCreate(const std::string& name,
                                                 const PmemHeapOptions& opts,
                                                 bool* created, std::string* error) {
  auto heap = std::unique_ptr<PmemHeap>(new PmemHeap());
  heap->name_ = name;
  heap->opts_ = opts;
  uint32_t nodes = opts.single_pool ? 1 : GlobalNvmConfig().numa_nodes;
  if (nodes == 0) {
    nodes = 1;
  }
  PmemPoolOptions popts;
  popts.size = opts.pool_size != 0 ? opts.pool_size : (64ULL << 20);
  popts.crash_consistent = opts.crash_consistent;
  popts.dram = opts.dram;
  // Pools of one heap can cross-reference via malloc-to dest words: map every
  // pool first, recover logs after (or leave it to the caller entirely).
  popts.defer_log_recovery = true;

  bool did_create = false;
  for (uint32_t n = 0; n < nodes; ++n) {
    uint16_t pool_id = static_cast<uint16_t>(opts.pool_id_base + n);
    std::string path = PoolPath(name, n);
    std::unique_ptr<PmemPool> pool;
    std::string pool_error;
    if (!opts.dram && NvmPoolFile::Exists(path)) {
      Status st = PmemPool::Open(path, pool_id, n, popts, &pool, &pool_error);
      if (st != Status::kOk) {
        // The file exists but is unusable (truncated, bad magic, foreign pool
        // id). Recreating would silently discard whatever data it held, so
        // surface the failure instead.
        std::fprintf(stderr, "pactree: heap '%s' open failed: %s\n", name.c_str(),
                     pool_error.c_str());
        if (error != nullptr) {
          *error = pool_error;
        }
        return nullptr;
      }
    }
    if (pool == nullptr) {
      pool = PmemPool::Create(path, pool_id, n, popts, &pool_error);
      did_create = true;
    }
    if (pool == nullptr) {
      std::fprintf(stderr, "pactree: heap '%s' create failed: %s\n", name.c_str(),
                   pool_error.c_str());
      if (error != nullptr) {
        *error = pool_error;
      }
      return nullptr;
    }
    heap->pools_.push_back(std::move(pool));
  }
  if (!opts.defer_log_recovery) {
    heap->RecoverPendingLogs();
  }
  if (created != nullptr) {
    *created = did_create;
  }
  return heap;
}

void PmemHeap::Destroy(const std::string& name) {
  for (uint32_t n = 0; n < 64; ++n) {
    std::string path = PoolPath(name, n);
    if (!NvmPoolFile::Exists(path)) {
      break;
    }
    NvmPoolFile::Remove(path);
  }
}

PmemPool* PmemHeap::LocalPool() const {
  uint32_t node = CurrentNumaNode();
  return pools_[node % pools_.size()].get();
}

PPtr<void> PmemHeap::Alloc(size_t size) {
  PmemPool* local = LocalPool();
  PPtr<void> p = local->Alloc(size);
  if (!p.IsNull()) {
    return p;
  }
  // Local pool exhausted: fall back to the other nodes. Fail point
  // "heap/fallback": firing suppresses the fallback, simulating every node's
  // pool being as full as the local one.
  if (PACTREE_FAILPOINT("heap/fallback")) {
    return PPtr<void>::Null();
  }
  for (const auto& pool : pools_) {
    if (pool.get() == local) {
      continue;
    }
    p = pool->Alloc(size);
    if (!p.IsNull()) {
      remote_allocs_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  return PPtr<void>::Null();
}

PPtr<void> PmemHeap::AllocTo(PPtr<uint64_t> dest, size_t size) {
  PmemPool* local = LocalPool();
  PPtr<void> p = local->AllocTo(dest, size);
  if (!p.IsNull()) {
    return p;
  }
  if (PACTREE_FAILPOINT("heap/fallback")) {
    return PPtr<void>::Null();
  }
  for (const auto& pool : pools_) {
    if (pool.get() == local) {
      continue;
    }
    p = pool->AllocTo(dest, size);
    if (!p.IsNull()) {
      remote_allocs_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  return PPtr<void>::Null();
}

}  // namespace pactree
