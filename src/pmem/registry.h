// Process-global registries for persistent pools:
//   * pool id -> mapped base address (PPtr decode),
//   * address range -> pool id (raw pointer -> PPtr encode),
//   * pool id -> allocator (so Free() can route a PPtr to its owning pool).
#ifndef PACTREE_SRC_PMEM_REGISTRY_H_
#define PACTREE_SRC_PMEM_REGISTRY_H_

#include <cstddef>
#include <cstdint>

#include "src/pmem/pptr.h"

namespace pactree {

class PmemPool;

// Registers a mapped pool range for reverse translation (includes DRAM-backed
// pools, which are not part of the NVM media model).
void RegisterPoolRange(void* base, size_t size, uint16_t pool_id);
void UnregisterPoolRange(void* base);

// Returns the pool id containing p, or 0 if none.
uint16_t PoolIdOf(const void* p, uint64_t* offset_out);

void RegisterPoolAllocator(uint16_t pool_id, PmemPool* alloc);
PmemPool* PoolAllocatorOf(uint16_t pool_id);

template <typename T>
PPtr<T> ToPPtr(const T* p) {
  if (p == nullptr) {
    return PPtr<T>::Null();
  }
  uint64_t offset = 0;
  uint16_t pool = PoolIdOf(p, &offset);
  return pool == 0 ? PPtr<T>::Null() : PPtr<T>::FromParts(pool, offset);
}

}  // namespace pactree

#endif  // PACTREE_SRC_PMEM_REGISTRY_H_
