// Compact persistent pointer (paper §5.8): 16-bit pool id + 48-bit offset.
//
// Pool base addresses live in a process-global table initialized when a pool is
// mapped, so persistent pointers are position independent: a pool image can be
// remapped anywhere (or copied, as the crash tests do) and pointers still resolve.
#ifndef PACTREE_SRC_PMEM_PPTR_H_
#define PACTREE_SRC_PMEM_PPTR_H_

#include <cstdint>
#include <type_traits>

namespace pactree {

// Base-address table; readable lock-free from hot paths.
void SetPoolBase(uint16_t pool_id, void* base);
void* GetPoolBase(uint16_t pool_id);

template <typename T>
struct PPtr {
  uint64_t raw = 0;

  PPtr() = default;
  explicit PPtr(uint64_t r) : raw(r) {}

  static PPtr FromParts(uint16_t pool, uint64_t offset) {
    return PPtr((static_cast<uint64_t>(pool) << 48) | (offset & ((1ULL << 48) - 1)));
  }
  static PPtr Null() { return PPtr(); }

  uint16_t pool() const { return static_cast<uint16_t>(raw >> 48); }
  uint64_t offset() const { return raw & ((1ULL << 48) - 1); }
  bool IsNull() const { return raw == 0; }
  explicit operator bool() const { return raw != 0; }

  T* get() const {
    if (raw == 0) {
      return nullptr;
    }
    return reinterpret_cast<T*>(static_cast<char*>(GetPoolBase(pool())) + offset());
  }
  T* operator->() const { return get(); }
  template <typename U = T>
  std::enable_if_t<!std::is_void_v<U>, U&> operator*() const {
    return *get();
  }

  bool operator==(const PPtr& o) const { return raw == o.raw; }
  bool operator!=(const PPtr& o) const { return raw != o.raw; }

  template <typename U>
  PPtr<U> Cast() const {
    return PPtr<U>(raw);
  }
};

static_assert(sizeof(PPtr<int>) == 8, "PPtr must be one atomic word");

// Reverse translation: raw pointer inside a mapped pool -> persistent pointer.
// Declared here, implemented over the pmem pool registry.
template <typename T>
PPtr<T> ToPPtr(const T* p);

}  // namespace pactree

#endif  // PACTREE_SRC_PMEM_PPTR_H_
