#include "src/pmem/registry.h"

#include <atomic>
#include <mutex>

namespace pactree {
namespace {

constexpr size_t kMaxPools = 1 << 16;
void* g_pool_bases[kMaxPools] = {};
PmemPool* g_pool_allocs[kMaxPools] = {};

struct PoolRange {
  uintptr_t base = 0;
  size_t size = 0;
  uint16_t pool_id = 0;
  bool active = false;
};

constexpr size_t kMaxRanges = 512;
PoolRange g_ranges[kMaxRanges];
std::atomic<size_t> g_range_count{0};
std::mutex g_mu;

}  // namespace

void SetPoolBase(uint16_t pool_id, void* base) { g_pool_bases[pool_id] = base; }

void* GetPoolBase(uint16_t pool_id) { return g_pool_bases[pool_id]; }

void RegisterPoolRange(void* base, size_t size, uint16_t pool_id) {
  std::lock_guard<std::mutex> lock(g_mu);
  size_t n = g_range_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    if (!g_ranges[i].active) {
      g_ranges[i] = {reinterpret_cast<uintptr_t>(base), size, pool_id, false};
      std::atomic_thread_fence(std::memory_order_release);
      g_ranges[i].active = true;
      return;
    }
  }
  if (n >= kMaxRanges) {
    return;
  }
  g_ranges[n] = {reinterpret_cast<uintptr_t>(base), size, pool_id, true};
  g_range_count.store(n + 1, std::memory_order_release);
}

void UnregisterPoolRange(void* base) {
  std::lock_guard<std::mutex> lock(g_mu);
  size_t n = g_range_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    if (g_ranges[i].base == reinterpret_cast<uintptr_t>(base)) {
      g_ranges[i].active = false;
      return;
    }
  }
}

uint16_t PoolIdOf(const void* p, uint64_t* offset_out) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  size_t n = g_range_count.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    const PoolRange& r = g_ranges[i];
    if (r.active && addr >= r.base && addr < r.base + r.size) {
      if (offset_out != nullptr) {
        *offset_out = addr - r.base;
      }
      return r.pool_id;
    }
  }
  return 0;
}

void RegisterPoolAllocator(uint16_t pool_id, PmemPool* alloc) {
  g_pool_allocs[pool_id] = alloc;
}

PmemPool* PoolAllocatorOf(uint16_t pool_id) { return g_pool_allocs[pool_id]; }

}  // namespace pactree
