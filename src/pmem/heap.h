// NUMA-aware persistent heap (paper §4.5, §5.8): one sub-pool per logical NUMA
// node; allocations come from the calling thread's local pool, so subsequent
// writes stay NUMA-local (GS2). A single-pool mode exists for the Figure 12
// factor analysis ("ART(SC)" baseline without the per-NUMA pool feature).
#ifndef PACTREE_SRC_PMEM_HEAP_H_
#define PACTREE_SRC_PMEM_HEAP_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/nvm/stats.h"
#include "src/pmem/pool.h"

namespace pactree {

struct PmemHeapOptions {
  uint16_t pool_id_base = 1;  // pool ids base .. base+nodes-1 (must be stable)
  size_t pool_size = 0;       // per sub-pool bytes (0 -> 64 MiB)
  bool crash_consistent = true;
  bool dram = false;         // volatile heap (no files, no persistence)
  bool single_pool = false;  // disable per-NUMA pools
  // Skip allocation-log recovery in OpenOrCreate; the caller invokes
  // RecoverPendingLogs() once every heap a log's malloc-to dest may reference
  // is mapped (PACTree opens three heaps whose logs cross-reference).
  bool defer_log_recovery = false;
};

class PmemHeap {
 public:
  // Opens the heap if its files exist, otherwise creates it. |created| (may be
  // null) reports which happened. Returns null on failure; |error| (may be
  // null) then receives the failing syscall, errno, and pool path.
  static std::unique_ptr<PmemHeap> OpenOrCreate(const std::string& name,
                                                const PmemHeapOptions& opts,
                                                bool* created = nullptr,
                                                std::string* error = nullptr);

  // Removes the heap's backing files.
  static void Destroy(const std::string& name);

  // NUMA-local allocation. Falls back to other nodes' pools when local space
  // runs out.
  PPtr<void> Alloc(size_t size);
  PPtr<void> AllocTo(PPtr<uint64_t> dest, size_t size);
  void Free(PPtr<void> p) { PmemFree(p); }

  uint32_t pool_count() const { return static_cast<uint32_t>(pools_.size()); }
  PmemPool* pool(uint32_t i) const { return pools_[i].get(); }
  PmemPool* LocalPool() const;
  // The node-0 pool holds the heap's generation counter and root area.
  PmemPool* primary() const { return pools_[0].get(); }
  uint64_t generation() const { return primary()->generation(); }

  // Typed access to the primary pool's root area (sizeof(T) <= kRootAreaSize).
  template <typename T>
  T* Root() const {
    static_assert(sizeof(T) <= kRootAreaSize, "root object too large");
    return reinterpret_cast<T*>(primary()->RootArea());
  }

  const std::string& name() const { return name_; }

  // Deferred allocation-log recovery over every sub-pool. Idempotent.
  void RecoverPendingLogs() {
    for (const auto& p : pools_) {
      p->RecoverPendingLogs();
    }
  }

  // Media traffic attributed to this heap's sub-pools, across all threads
  // (live and exited). Counters are keyed per (thread, pool) in each thread's
  // ThreadContext, so two heaps in one process report disjoint numbers;
  // fences are unattributed and never appear here.
  NvmStatsSnapshot MediaStats() const {
    NvmStatsSnapshot s;
    for (const auto& p : pools_) {
      s += PoolNvmStats(p->pool_id());
    }
    s.heap_remote_allocs = RemoteAllocs();
    return s;
  }

  // Allocations that fell back to a non-local sub-pool because the NUMA-local
  // pool was exhausted. Nonzero means NUMA locality (GS2) is degrading: the
  // returned blocks generate remote media traffic for their whole lifetime.
  uint64_t RemoteAllocs() const {
    return remote_allocs_.load(std::memory_order_relaxed);
  }

  // Highest chunk-used fraction across the sub-pools -- the capacity-pressure
  // signal for watermark policy. The max (not the mean) matters: one exhausted
  // sub-pool fails its writers' allocations regardless of siblings' space.
  double MaxUsedFraction() const {
    double f = 0.0;
    for (const auto& p : pools_) {
      f = std::max(f, p->UsedFraction());
    }
    return f;
  }

  // Failed Alloc/AllocTo calls summed over the sub-pools. A post-fallback
  // failure counts once per pool it was attempted against.
  uint64_t AllocFailures() const {
    uint64_t n = 0;
    for (const auto& p : pools_) {
      n += p->AllocFailures();
    }
    return n;
  }

  // Unretired alloc/free log entries across all sub-pools (zero when drained).
  size_t PendingLogEntries() const {
    size_t n = 0;
    for (const auto& p : pools_) {
      n += p->PendingLogEntries();
    }
    return n;
  }

 private:
  PmemHeap() = default;

  std::string name_;
  PmemHeapOptions opts_;
  std::vector<std::unique_ptr<PmemPool>> pools_;
  std::atomic<uint64_t> remote_allocs_{0};
};

}  // namespace pactree

#endif  // PACTREE_SRC_PMEM_HEAP_H_
