// Crash-consistent persistent pool + slab allocator (the PMDK stand-in).
//
// One PmemPool owns one mapped file (or an anonymous DRAM region). The body is
// divided into 1 MiB chunks; each chunk is assigned a size class and carries a
// persistent allocation bitmap. The costs the paper attributes to PMDK (GS1) come
// from the crash-consistency protocol implemented here: persistent allocation
// logs, persisted bitmap words, and malloc-to semantics (allocate + persistently
// attach to a destination word atomically, used for leak prevention, §5.1(3)).
// A transient mode skips logs and persistence -- the "modified Jemalloc" of
// Figure 3.
#ifndef PACTREE_SRC_PMEM_POOL_H_
#define PACTREE_SRC_PMEM_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/checksum.h"
#include "src/common/status.h"
#include "src/nvm/pool_file.h"
#include "src/pmem/pptr.h"

namespace pactree {

inline constexpr uint64_t kPoolMagic = 0x314c4f4f50434150ULL;  // "PACPOOL1"
inline constexpr size_t kChunkSize = 1ULL << 20;
inline constexpr size_t kRootAreaSize = 32768;
inline constexpr size_t kLogSlots = 2048;
inline constexpr size_t kMinBlock = 64;
inline constexpr size_t kMaxBlocksPerChunk = kChunkSize / kMinBlock;  // 16384
inline constexpr size_t kBitmapWordsPerChunk = kMaxBlocksPerChunk / 64;  // 256

// Size classes; allocations above the last class take a whole chunk.
inline constexpr size_t kSizeClasses[] = {64,   128,  256,  512,   768,   1024,
                                          1536, 2048, 3072, 4096,  6144,  8192,
                                          16384, 32768, 65536, 131072, 262144};
inline constexpr size_t kNumClasses = sizeof(kSizeClasses) / sizeof(kSizeClasses[0]);
inline constexpr uint32_t kChunkStateFree = 0;
inline constexpr uint32_t kChunkStateWhole = 0xffffffffu;  // whole-chunk allocation

struct PoolHeader {
  uint64_t magic;
  uint32_t layout_version;
  uint16_t pool_id;
  uint16_t node;
  uint64_t size;
  uint32_t chunk_count;
  uint32_t log_slots;
  uint64_t chunk_meta_off;
  uint64_t bitmap_off;
  uint64_t log_off;
  uint64_t data_off;
  uint64_t generation;  // bumped on every Open; voids stale version locks
  uint8_t pad[952];
  uint8_t root[kRootAreaSize];  // application root area
};
static_assert(sizeof(PoolHeader) == 1024 + kRootAreaSize, "header layout");

// Persistent allocation/free log entry (the malloc-to protocol). The whole
// entry -- payload, state, and checksum -- is published with one fence and the
// checksum is durably zeroed at retirement, so a torn line write (8 B
// granularity) can never pair a fresh state word with stale payload words that
// recovery would act on: any partial commit fails the checksum and the entry
// is discarded.
struct AllocLogSlot {
  uint64_t state;     // kLogEmpty / kLogAllocPending / kLogFreePending
  uint64_t dest;      // raw PPtr of the destination word (alloc) or 0
  uint64_t block;     // raw PPtr of the block
  uint64_t size;
  uint64_t checksum;  // LogChecksum over the four words above
  uint8_t pad[24];
};
static_assert(sizeof(AllocLogSlot) == 64, "log slot is one cache line");

inline constexpr uint64_t kLogEmpty = 0;
inline constexpr uint64_t kLogAllocPending = 1;
inline constexpr uint64_t kLogFreePending = 2;

inline uint64_t AllocSlotChecksum(const AllocLogSlot& s) {
  return LogChecksum({s.state, s.dest, s.block, s.size});
}

struct PmemPoolOptions {
  size_t size = 0;              // 0 -> NvmConfig::pool_size
  bool crash_consistent = true;
  bool dram = false;            // anonymous DRAM region (Figure 12 "DRAM SL")
  // Skip allocation-log recovery in Open; the caller invokes
  // RecoverPendingLogs() once every pool the logs may reference is mapped. A
  // pending malloc-to entry's |dest| can live in a *different* pool (PACTree's
  // split allocates into an SMO-log-heap word), so recovering a pool the
  // moment it is opened would dereference an unmapped persistent pointer.
  bool defer_log_recovery = false;
};

struct PmemPoolStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t live_bytes = 0;
  uint64_t alloc_failures = 0;   // Alloc/AllocTo calls that returned Null
  uint64_t hwm_live_bytes = 0;   // high watermark of live_bytes
  uint64_t chunks_released = 0;  // emptied size-class chunks returned to free
  double used_fraction = 0.0;    // assigned chunks / total chunks
};

class PmemPool {
 public:
  // Creates a fresh pool file (truncates an existing one). On failure returns
  // nullptr and, when |error| is non-null, stores a description naming the
  // failing syscall, errno, and path.
  static std::unique_ptr<PmemPool> Create(const std::string& path, uint16_t pool_id,
                                          uint32_t node, const PmemPoolOptions& opts,
                                          std::string* error = nullptr);
  // Opens an existing pool, runs allocation-log recovery, bumps the
  // generation. Validates the superblock (file size, magic, pool id, layout
  // offsets) before touching anything else, so a truncated, zero-length, or
  // foreign file yields Status::kCorrupted / kIoError instead of a crash.
  // |error| (optional) receives the failing syscall + errno + path for I/O
  // failures, or which validation step rejected the superblock.
  static Status Open(const std::string& path, uint16_t pool_id, uint32_t node,
                     const PmemPoolOptions& opts, std::unique_ptr<PmemPool>* out,
                     std::string* error = nullptr);

  ~PmemPool();
  PmemPool(const PmemPool&) = delete;
  PmemPool& operator=(const PmemPool&) = delete;

  // Allocates |size| bytes; returns a persistent pointer (null on OOM). The
  // block is zeroed (not persisted; callers persist what they initialize).
  PPtr<void> Alloc(size_t size);

  // malloc-to: allocates and persistently stores the new block's PPtr into the
  // word addressed by |dest| (which must itself live in a registered pool).
  // Crash-atomic: after recovery either *dest holds the block or the block is
  // free. Returns the block.
  PPtr<void> AllocTo(PPtr<uint64_t> dest, size_t size);

  // Frees a block previously returned by this pool.
  void Free(uint64_t offset);

  uint16_t pool_id() const { return pool_id_; }
  uint32_t node() const { return node_; }
  void* base() const { return base_; }
  size_t size() const { return size_; }
  PoolHeader* header() const { return reinterpret_cast<PoolHeader*>(base_); }
  void* RootArea() const { return header()->root; }
  uint64_t generation() const { return header()->generation; }
  const std::string& path() const { return path_; }
  bool crash_consistent() const { return crash_consistent_; }

  size_t BlockSize(uint64_t offset) const;
  PmemPoolStats Stats() const;

  // Number of alloc/free log entries not yet retired. Zero after recovery (and
  // in any quiescent state): the invariant checker asserts the log is drained.
  size_t PendingLogEntries() const;

  // Runs (deferred) allocation-log recovery. Idempotent; call after every
  // pool a pending entry's |dest| may reference has been mapped.
  void RecoverPendingLogs() { RecoverLogs(); }

  // Total bytes of blocks currently allocated (approximate under concurrency).
  uint64_t LiveBytes() const { return live_bytes_.load(std::memory_order_relaxed); }

  // High watermark of LiveBytes() over the pool's lifetime (volatile).
  uint64_t HighWatermark() const {
    return hwm_live_bytes_.load(std::memory_order_relaxed);
  }

  // Alloc/AllocTo calls that returned Null (OOM or an injected fail point).
  uint64_t AllocFailures() const {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

  // Fraction of chunks assigned to a size class or whole-chunk allocation
  // (0.0 = empty, 1.0 = every chunk taken). Capacity-pressure signal: a pool
  // with no free chunk fails any allocation its partial chunks cannot serve.
  double UsedFraction() const;

 private:
  PmemPool() = default;

  bool InitNew(uint16_t pool_id, uint32_t node, size_t size);
  Status ValidateHeader(uint16_t pool_id) const;
  bool AttachExisting(uint16_t pool_id, bool recover_logs);
  void RecoverLogs();
  void RebuildVolatileState();

  uint64_t AllocOffset(size_t size, bool persist_meta);
  uint64_t AllocWholeChunks(size_t size, bool persist_meta);
  int AcquireChunk(size_t class_idx);
  uint64_t TryAllocInChunk(uint32_t chunk, size_t class_idx, bool persist_meta);
  PPtr<void> AllocInternal(size_t size, bool persist_meta);
  void PersistBlockMetadata(uint64_t offset);
  void FreeInternal(uint64_t offset, bool log);
  // Returns a fully-empty size-class chunk to the free list so another class
  // (or a whole-chunk allocation) can reuse it. Without this, UsedFraction is
  // monotone and deletes can never bring a tree back under the pool-pressure
  // resume watermark. The live-path analogue of RebuildVolatileState's
  // empty-chunk release; no-op when the chunk is the class's active target or
  // a racing allocation claims a block mid-release.
  void TryReleaseEmptyChunk(uint32_t chunk, size_t class_idx);

  AllocLogSlot* Logs() const;
  uint32_t* ChunkStates() const;
  uint64_t* BitmapOf(uint32_t chunk) const;
  uint64_t ChunkDataOffset(uint32_t chunk) const;
  int AcquireLogSlot();
  void ReleaseLogSlot(int slot);

  // --- mapped state ---
  NvmPoolFile file_;       // file-backed pools
  void* dram_base_ = nullptr;  // DRAM pools
  void* base_ = nullptr;
  size_t size_ = 0;
  uint16_t pool_id_ = 0;
  uint32_t node_ = 0;
  bool crash_consistent_ = true;
  bool dram_ = false;
  std::string path_;

  // --- volatile allocator state ---
  struct ClassState {
    std::atomic<int64_t> current{-1};
    std::atomic<uint32_t> hint{0};
    std::vector<uint32_t> partial;  // chunks with free blocks (guarded by mu_)
  };
  ClassState classes_[kNumClasses];
  std::vector<uint32_t> free_chunks_;               // guarded by mu_
  std::vector<std::atomic<uint32_t>> free_counts_;  // per chunk
  std::vector<std::atomic<uint8_t>> in_partial_;    // per chunk
  std::vector<std::atomic<uint8_t>> log_busy_;      // per log slot
  mutable std::mutex mu_;

  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint64_t> live_bytes_{0};
  std::atomic<uint64_t> alloc_failures_{0};
  std::atomic<uint64_t> hwm_live_bytes_{0};
  std::atomic<uint64_t> chunks_released_{0};
};

// Routes a free to the owning pool (by pool id). Safe for any PPtr returned by
// a live PmemPool.
void PmemFree(PPtr<void> p);

// Size-class helper exposed for tests.
size_t SizeClassFor(size_t size);

}  // namespace pactree

#endif  // PACTREE_SRC_PMEM_POOL_H_
