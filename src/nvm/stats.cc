#include "src/nvm/stats.h"

#include <mutex>
#include <vector>

namespace pactree {
namespace {

// Registry of every thread's counters. Counter blocks are leaked on purpose:
// they must outlive their thread so that GlobalNvmStats() stays safe to call
// after worker threads join.
std::mutex g_registry_mu;
std::vector<NvmThreadCounters*>& Registry() {
  static std::vector<NvmThreadCounters*> registry;
  return registry;
}

NvmThreadCounters* NewRegisteredCounters() {
  auto* counters = new NvmThreadCounters();
  std::lock_guard<std::mutex> lock(g_registry_mu);
  Registry().push_back(counters);
  return counters;
}

}  // namespace

NvmThreadCounters& LocalNvmCounters() {
  thread_local NvmThreadCounters* counters = NewRegisteredCounters();
  return *counters;
}

NvmStatsSnapshot GlobalNvmStats() {
  NvmStatsSnapshot s;
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (const NvmThreadCounters* c : Registry()) {
    s.media_read_bytes += c->media_read_bytes;
    s.media_write_bytes += c->media_write_bytes;
    s.flushes += c->flushes;
    s.fences += c->fences;
    s.read_hits += c->read_hits;
    s.read_misses += c->read_misses;
    s.remote_reads += c->remote_reads;
    s.remote_writes += c->remote_writes;
    s.directory_writes += c->directory_writes;
    s.alloc_ops += c->alloc_ops;
    s.free_ops += c->free_ops;
  }
  return s;
}

}  // namespace pactree
