#include "src/nvm/stats.h"

#include <mutex>
#include <unordered_map>

#include "src/nvm/thread_state.h"
#include "src/runtime/thread_context.h"

namespace pactree {
namespace {

// Accumulated traffic of exited threads, by pool id (0 = unattributed).
// Leaked: thread teardown hooks (including the main thread's at process exit)
// must always find it alive.
struct RetiredTotals {
  std::mutex mu;
  std::unordered_map<uint16_t, NvmStatsSnapshot> by_pool;
};

RetiredTotals& Retired() {
  static RetiredTotals* totals = new RetiredTotals();
  return *totals;
}

// Thread-teardown hook: fold the exiting thread's counters into the retired
// accumulator so aggregate queries stay correct after worker threads join.
void FoldIntoRetired(NvmThreadState& state) {
  RetiredTotals& totals = Retired();
  std::lock_guard<std::mutex> lock(totals.mu);
  state.unattributed.counters.AddTo(&totals.by_pool[0]);
  size_t n = state.ndomains.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    NvmDomain* d = state.domains[i].load(std::memory_order_acquire);
    d->counters.AddTo(&totals.by_pool[d->pool_id]);
  }
}

ThreadSlot<NvmThreadState>& NvmSlot() {
  static ThreadSlot<NvmThreadState>* slot =
      new ThreadSlot<NvmThreadState>(&FoldIntoRetired);
  return *slot;
}

// Sums live threads' counters: all pools when |pool_id| is negative, else just
// that pool's domain (0 = the unattributed bucket).
void AddLiveCounters(NvmStatsSnapshot* s, int pool_id) {
  ThreadRegistry::Instance().ForEach([&](ThreadContext& ctx) {
    NvmThreadState* state = NvmSlot().Peek(ctx);
    if (state == nullptr) {
      return;
    }
    if (pool_id < 0 || pool_id == 0) {
      state->unattributed.counters.AddTo(s);
    }
    size_t n = state->ndomains.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      NvmDomain* d = state->domains[i].load(std::memory_order_acquire);
      if (pool_id < 0 || d->pool_id == pool_id) {
        d->counters.AddTo(s);
      }
    }
  });
}

}  // namespace

NvmThreadState& LocalNvmState() { return NvmSlot().Get(); }

NvmThreadState* PeekNvmState(ThreadContext& ctx) { return NvmSlot().Peek(ctx); }

NvmThreadCounters& LocalNvmCounters(uint16_t pool_id) {
  return LocalNvmState().DomainFor(pool_id).counters;
}

NvmStatsSnapshot GlobalNvmStats() {
  NvmStatsSnapshot s;
  {
    RetiredTotals& totals = Retired();
    std::lock_guard<std::mutex> lock(totals.mu);
    for (const auto& [pool, snap] : totals.by_pool) {
      s += snap;
    }
  }
  AddLiveCounters(&s, -1);
  return s;
}

NvmStatsSnapshot PoolNvmStats(uint16_t pool_id) {
  NvmStatsSnapshot s;
  {
    RetiredTotals& totals = Retired();
    std::lock_guard<std::mutex> lock(totals.mu);
    auto it = totals.by_pool.find(pool_id);
    if (it != totals.by_pool.end()) {
      s += it->second;
    }
  }
  AddLiveCounters(&s, pool_id);
  return s;
}

}  // namespace pactree
