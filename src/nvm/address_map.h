// Registry of mapped NVM ranges: which addresses are "on NVM", and which logical
// NUMA node owns them. Pool creation registers here; the media model consults it.
#ifndef PACTREE_SRC_NVM_ADDRESS_MAP_H_
#define PACTREE_SRC_NVM_ADDRESS_MAP_H_

#include <cstddef>
#include <cstdint>

namespace pactree {

struct NvmRange {
  uintptr_t base = 0;
  size_t size = 0;
  uint32_t node = 0;     // owning logical NUMA node
  uint16_t pool_id = 0;  // pmem pool id (0 = unregistered)
};

// Registers/unregisters a mapped range. Thread-safe; ranges are few.
void RegisterNvmRange(void* base, size_t size, uint32_t node, uint16_t pool_id);
void UnregisterNvmRange(void* base);

// If p lies on emulated NVM, copies its range into *out and returns true.
// Lock-free: slots publish through per-field atomics, so lookups stay safe
// against a concurrent Register/Unregister (e.g. another instance tearing
// down its pools while this thread's maintenance services persist data).
bool LookupNvmRange(const void* p, NvmRange* out);

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_ADDRESS_MAP_H_
