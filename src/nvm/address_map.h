// Registry of mapped NVM ranges: which addresses are "on NVM", and which logical
// NUMA node owns them. Pool creation registers here; the media model consults it.
#ifndef PACTREE_SRC_NVM_ADDRESS_MAP_H_
#define PACTREE_SRC_NVM_ADDRESS_MAP_H_

#include <cstddef>
#include <cstdint>

namespace pactree {

struct NvmRange {
  uintptr_t base = 0;
  size_t size = 0;
  uint32_t node = 0;     // owning logical NUMA node
  uint16_t pool_id = 0;  // pmem pool id (0 = unregistered)
  bool active = false;
};

// Registers/unregisters a mapped range. Thread-safe; ranges are few.
void RegisterNvmRange(void* base, size_t size, uint32_t node, uint16_t pool_id);
void UnregisterNvmRange(void* base);

// Returns the range containing p, or nullptr if p is not on emulated NVM.
// Lock-free lookup (ranges are only appended / deactivated).
const NvmRange* LookupNvmRange(const void* p);

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_ADDRESS_MAP_H_
