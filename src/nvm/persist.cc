#include "src/nvm/persist.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "src/common/clock.h"
#include "src/common/compiler.h"
#include "src/nvm/address_map.h"
#include "src/nvm/bandwidth.h"
#include "src/nvm/config.h"
#include "src/nvm/fault.h"
#include "src/nvm/shadow.h"
#include "src/nvm/stats.h"
#include "src/nvm/thread_state.h"
#include "src/nvm/topology.h"

namespace pactree {
namespace {

// Executes the real cache-line write-back instruction (harmless on DRAM; keeps
// the instruction cost on the critical path like real persistent code).
inline void CacheLineWriteBack(const void* line) {
#if defined(__CLWB__)
  _mm_clwb(const_cast<void*>(line));
#elif defined(__CLFLUSHOPT__)
  _mm_clflushopt(const_cast<void*>(line));
#elif defined(__x86_64__)
  _mm_clflush(line);
#else
  (void)line;
#endif
}

inline void StoreFence() {
#if defined(__x86_64__)
  _mm_sfence();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

void PersistRange(const void* p, size_t n) {
  if (n == 0) {
    return;
  }
  NvmRange range;
  if (!LookupNvmRange(p, &range)) {
    return;  // DRAM-resident object: no persistence needed or modeled
  }
  if (ShadowHeap::IsActive()) {
    // Injector first: a crash triggered at this flush must suppress it.
    FaultInjector::OnPersist(p, n);
    ShadowHeap::OnPersist(p, n);
  }

  const NvmConfig& cfg = GlobalNvmConfig();
  // The media model and the traffic counters are keyed per (thread, pool):
  // independent heaps in one process never share cache warmth or counters.
  NvmDomain& dom = LocalNvmState().DomainFor(range.pool_id);
  NvmThreadCounters& c = dom.counters;
  MediaModel& m = dom.media;
  m.EnsureSized();

  uintptr_t start = CacheLineOf(p);
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  bool remote = range.node != CurrentNumaNode();
  double lat_mult = remote ? cfg.remote_multiplier : 1.0;

  uintptr_t prev_xp = ~uintptr_t{0};
  for (uintptr_t line = start; line < end; line += kCacheLineSize) {
    CacheLineWriteBack(reinterpret_cast<const void*>(line));
    c.flushes++;
    if (remote) {
      c.remote_writes++;
    }
    uintptr_t xp = XpLineOf(line);
    if (xp == prev_xp) {
      continue;  // same XPLine as the previous flushed line: combined
    }
    prev_xp = xp;
    if (m.XpBufferLookupInsert(xp)) {
      continue;  // write-combined in the XPBuffer window
    }
    // XPLine write-back: the controller performs a read-modify-write of the
    // whole 256 B line, so a 64 B flush costs a full XPLine of media writes.
    c.media_write_bytes += kXpLineSize;
    if (cfg.emulate_latency) {
      SpinNs(static_cast<uint64_t>(cfg.flush_ns * lat_mult));
    }
    if (cfg.emulate_bandwidth) {
      BandwidthModel::Instance().ConsumeWrite(range.node, kXpLineSize);
    }
  }
}

void Fence() {
  StoreFence();
  if (ShadowHeap::IsActive()) {
    FaultInjector::OnFence();
    ShadowHeap::OnFence();
  }
  // Fences carry no address, so they land in the unattributed bucket.
  NvmThreadCounters& c = LocalNvmCounters();
  c.fences++;
  const NvmConfig& cfg = GlobalNvmConfig();
  if (cfg.emulate_latency && cfg.fence_ns > 0) {
    SpinNs(cfg.fence_ns);
  }
}

void CountFenceOnly() { LocalNvmCounters().fences++; }

void AnnotateNvmRead(const void* p, size_t n) {
  if (n == 0) {
    return;
  }
  NvmRange range;
  if (!LookupNvmRange(p, &range)) {
    return;
  }
  const NvmConfig& cfg = GlobalNvmConfig();
  NvmDomain& dom = LocalNvmState().DomainFor(range.pool_id);
  NvmThreadCounters& c = dom.counters;
  MediaModel& m = dom.media;
  m.EnsureSized();

  bool remote = range.node != CurrentNumaNode();
  bool directory = cfg.coherence == CoherenceProtocol::kDirectory;
  double lat_mult = remote ? cfg.remote_multiplier : 1.0;

  uintptr_t start = XpLineOf(reinterpret_cast<uintptr_t>(p));
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t xp = start; xp < end; xp += kXpLineSize) {
    if (m.ReadCacheLookupInsert(xp)) {
      c.read_hits++;
      continue;
    }
    c.read_misses++;
    c.media_read_bytes += kXpLineSize;
    bool sequential = xp == m.last_miss_line + kXpLineSize;
    m.last_miss_line = xp;
    if (remote) {
      c.remote_reads++;
      if (directory) {
        // FH5: the directory coherence state lives on the 3D-XPoint media, so
        // a remote read miss issues a media *write* to record the new sharer.
        c.directory_writes++;
        c.media_write_bytes += kCacheLineSize;
      }
    }
    if (cfg.emulate_latency) {
      // Sequential fetches ride the prefetchers (FH3 / GA5).
      uint64_t base = sequential ? cfg.seq_read_ns : cfg.read_miss_ns;
      uint64_t ns = static_cast<uint64_t>(base * lat_mult);
      if (remote && directory) {
        ns += cfg.directory_write_ns;
      }
      SpinNs(ns);
    }
    if (cfg.emulate_bandwidth) {
      BandwidthModel::Instance().ConsumeRead(range.node, kXpLineSize);
      if (remote && directory) {
        // The directory update competes for the scarce write bandwidth: this
        // coupling is what melts remote read bandwidth down (Figure 2).
        BandwidthModel::Instance().ConsumeWrite(range.node, kCacheLineSize);
      }
    }
  }
}

void AnnotateNvmPrefetch(const void* p, size_t n) {
  if (n == 0) {
    return;
  }
  uintptr_t cl_start = CacheLineOf(p);
  uintptr_t cl_end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t line = cl_start; line < cl_end; line += kCacheLineSize) {
    __builtin_prefetch(reinterpret_cast<const void*>(line), 0 /*read*/, 1);
  }
  NvmRange range;
  if (!LookupNvmRange(p, &range)) {
    return;  // DRAM-resident object: host prefetch only, nothing to model
  }
  const NvmConfig& cfg = GlobalNvmConfig();
  NvmDomain& dom = LocalNvmState().DomainFor(range.pool_id);
  NvmThreadCounters& c = dom.counters;
  MediaModel& m = dom.media;
  m.EnsureSized();

  bool remote = range.node != CurrentNumaNode();
  bool directory = cfg.coherence == CoherenceProtocol::kDirectory;

  uintptr_t start = XpLineOf(reinterpret_cast<uintptr_t>(p));
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t xp = start; xp < end; xp += kXpLineSize) {
    if (m.ReadCacheLookupInsert(xp)) {
      continue;  // already cached: the prefetch is a no-op at the media
    }
    // The fetch still moves a full XPLine from the media (and, under the
    // directory protocol, still dirties coherence state) -- prefetching only
    // overlaps the latency, it does not reduce traffic. Deliberately NOT
    // counted as a read miss and never SpinNs-stalled: the caller overlaps
    // the fetch with other work before touching the line.
    c.read_prefetches++;
    c.media_read_bytes += kXpLineSize;
    m.last_miss_line = xp;
    if (remote) {
      c.remote_reads++;
      if (directory) {
        c.directory_writes++;
        c.media_write_bytes += kCacheLineSize;
      }
    }
    if (cfg.emulate_bandwidth) {
      BandwidthModel::Instance().ConsumeRead(range.node, kXpLineSize);
      if (remote && directory) {
        BandwidthModel::Instance().ConsumeWrite(range.node, kCacheLineSize);
      }
    }
  }
}

void DropThreadReadCache() {
  NvmThreadState& state = LocalNvmState();
  state.unattributed.media.Reset();
  size_t n = state.ndomains.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    state.domains[i].load(std::memory_order_relaxed)->media.Reset();
  }
}

}  // namespace pactree
