// Logical NUMA topology for the emulated NVM system.
//
// Real PACTree pins threads and allocates from the NUMA-local pool (GS2). In this
// reproduction NUMA domains are logical: each thread is striped onto a node at first
// use (or pinned explicitly by the benchmark driver), and pools belong to a node.
// The media model charges remote-access penalties when a thread touches a pool of
// a different node.
#ifndef PACTREE_SRC_NVM_TOPOLOGY_H_
#define PACTREE_SRC_NVM_TOPOLOGY_H_

#include <cstdint>

namespace pactree {

// Node of the calling thread (assigned on first call by striping the thread's
// registration-order id across the configured nodes; the assignment lives in
// the thread's ThreadContext).
uint32_t CurrentNumaNode();

// Pins the calling thread to a logical node (benchmark drivers use this to
// emulate a NUMA-aware thread placement).
void SetCurrentNumaNode(uint32_t node);

// Process-wide switch: when enabled, AssignWorkerThread additionally pins the
// calling thread to a CPU chosen round-robin across the logical nodes
// (bench --pin / PAC_PIN=1).
void SetThreadPinning(bool enabled);
bool ThreadPinningEnabled();

// Deterministic worker placement: logical node worker_index % numa_nodes,
// plus (opt-in) a matching CPU affinity. Workload drivers call this instead
// of SetCurrentNumaNode directly.
void AssignWorkerThread(uint32_t worker_index);

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_TOPOLOGY_H_
