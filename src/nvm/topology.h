// Logical NUMA topology for the emulated NVM system.
//
// Real PACTree pins threads and allocates from the NUMA-local pool (GS2). In this
// reproduction NUMA domains are logical: each thread is striped onto a node at first
// use (or pinned explicitly by the benchmark driver), and pools belong to a node.
// The media model charges remote-access penalties when a thread touches a pool of
// a different node.
#ifndef PACTREE_SRC_NVM_TOPOLOGY_H_
#define PACTREE_SRC_NVM_TOPOLOGY_H_

#include <cstdint>

namespace pactree {

// Node of the calling thread (assigned round-robin on first call).
uint32_t CurrentNumaNode();

// Pins the calling thread to a logical node (benchmark drivers use this to
// emulate a NUMA-aware thread placement).
void SetCurrentNumaNode(uint32_t node);

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_TOPOLOGY_H_
