// Persistence primitives for the emulated NVM device (ADR mode).
//
// Code that wants to be crash consistent uses exactly the instruction sequence it
// would use on real Optane hardware: PersistRange (clwb per cache line) followed by
// Fence (sfence). On top of executing the real instructions (harmless on DRAM),
// these wrappers:
//   * account media traffic at XPLine (256 B) granularity, with an XPBuffer
//     write-combining window (sequential flushes to one XPLine coalesce);
//   * inject media latency / consume bandwidth tokens when emulation is enabled;
//   * feed the ShadowHeap crash simulator, which treats only persisted bytes as
//     durable.
//
// Reads are annotated explicitly: an index calls AnnotateNvmRead(node, size)
// when it dereferences a node on NVM. A per-thread direct-mapped XPLine cache
// models the CPU cache; only misses reach the media (and, for remote reads under
// the directory protocol, also generate a media directory write -- finding FH5).
#ifndef PACTREE_SRC_NVM_PERSIST_H_
#define PACTREE_SRC_NVM_PERSIST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pactree {

// Flushes every cache line of [p, p+n) toward the persistence domain.
void PersistRange(const void* p, size_t n);

// Store fence; orders prior flushes.
void Fence();

// PersistRange + Fence.
inline void PersistFence(const void* p, size_t n) {
  PersistRange(p, n);
  Fence();
}

// 8-byte atomic store that is immediately persisted and fenced; the canonical
// "linearization point" store (e.g., the data-node bitmap, §5.5).
inline void AtomicStorePersist(std::atomic<uint64_t>* word, uint64_t value,
                               std::memory_order order = std::memory_order_release) {
  word->store(value, order);
  PersistFence(word, sizeof(*word));
}

// Declares that the caller read [p, p+n) from NVM (media model + stats).
void AnnotateNvmRead(const void* p, size_t n);

// Declares a *software prefetch* of [p, p+n): issues the real
// __builtin_prefetch per cache line and models an overlapped media fetch --
// XPLines not already in the thread's modeled CPU cache are inserted and
// charged as media read traffic (and bandwidth), but the calling thread is
// never stalled. The later AnnotateNvmRead of the same lines then hits the
// modeled cache, which is how a correctly pipelined reader (one key path of
// work between prefetch and use, bounding outstanding fetches to what the
// XPPrefetcher queues absorb) hides media latency in this model.
void AnnotateNvmPrefetch(const void* p, size_t n);

// Bumps the fence counter only (used by code paths that batch flushes).
void CountFenceOnly();

// Resets the calling thread's modeled CPU read-cache (tests use this to force
// cold-cache measurements).
void DropThreadReadCache();

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_PERSIST_H_
