// Token-bucket bandwidth model for the emulated NVM media.
//
// Each NUMA node has independent read and write buckets (NVM bandwidth is
// asymmetric, FH2). When emulation is on, media-touching operations consume
// tokens and spin when the bucket is dry -- producing the throughput plateaus
// the paper attributes to bandwidth saturation (FH1) and, in directory mode,
// the remote-read meltdown of Figure 2 (remote read misses also consume WRITE
// tokens for the directory update).
#ifndef PACTREE_SRC_NVM_BANDWIDTH_H_
#define PACTREE_SRC_NVM_BANDWIDTH_H_

#include <atomic>
#include <cstdint>

namespace pactree {

class TokenBucket {
 public:
  TokenBucket() = default;

  // rate in bytes/second; burst in bytes.
  void Configure(uint64_t bytes_per_sec, uint64_t burst_bytes);

  // Blocks (spins) until the bucket can absorb |bytes|. No-op if unconfigured.
  void Consume(uint64_t bytes);

 private:
  // Virtual-time pacing: each consumer advances a shared virtual clock by the
  // cost of its bytes and spins until real time catches up (minus the burst
  // allowance). Lock-free and fair enough for throughput modeling.
  std::atomic<uint64_t> virtual_ns_{0};
  double ns_per_byte_ = 0.0;
  uint64_t burst_ns_ = 0;
};

// Per-node read/write buckets, (re)configured from GlobalNvmConfig().
class BandwidthModel {
 public:
  static constexpr uint32_t kMaxNodes = 8;

  static BandwidthModel& Instance();

  // Applies GlobalNvmConfig() rates. Call after changing config.
  void Reconfigure();

  void ConsumeRead(uint32_t node, uint64_t bytes);
  void ConsumeWrite(uint32_t node, uint64_t bytes);

 private:
  BandwidthModel() = default;
  TokenBucket read_[kMaxNodes];
  TokenBucket write_[kMaxNodes];
};

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_BANDWIDTH_H_
