#include "src/nvm/config.h"

#include <sys/stat.h>

#include <cstdlib>

namespace pactree {

NvmConfig& GlobalNvmConfig() {
  static NvmConfig config;
  return config;
}

std::string NvmConfig::DefaultPoolDir() {
  const char* env = std::getenv("PAC_POOL_DIR");
  std::string dir;
  if (env != nullptr && *env != '\0') {
    dir = env;
  } else {
    struct stat st;
    dir = (stat("/dev/shm", &st) == 0 && S_ISDIR(st.st_mode)) ? "/dev/shm/pactree"
                                                              : "/tmp/pactree";
  }
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

}  // namespace pactree
