#include "src/nvm/address_map.h"

#include <atomic>
#include <mutex>

namespace pactree {
namespace {

constexpr size_t kMaxRanges = 256;

// Slot table with lock-free readers. Every field is atomic; `active` is the
// publication flag: writers store it with release order after filling the
// other fields, readers load it with acquire order before reading them.
// Slots are reused after UnregisterNvmRange — field rewrites happen only
// under g_mu while `active` is false, and readers re-check `active` after
// copying the fields, so a concurrent deactivation is detected and skipped.
// (A full deactivate+reuse cycle inside one reader's copy window could still
// misattribute a single access during teardown churn; that is harmless to the
// media accounting and vanishingly rare.)
struct Slot {
  std::atomic<uintptr_t> base{0};
  std::atomic<size_t> size{0};
  std::atomic<uint32_t> node{0};
  std::atomic<uint16_t> pool_id{0};
  std::atomic<bool> active{false};
};

Slot g_ranges[kMaxRanges];
std::atomic<size_t> g_count{0};
std::mutex g_mu;

void FillSlot(Slot& s, void* base, size_t size, uint32_t node,
              uint16_t pool_id) {
  s.base.store(reinterpret_cast<uintptr_t>(base), std::memory_order_relaxed);
  s.size.store(size, std::memory_order_relaxed);
  s.node.store(node, std::memory_order_relaxed);
  s.pool_id.store(pool_id, std::memory_order_relaxed);
  s.active.store(true, std::memory_order_release);
}

}  // namespace

void RegisterNvmRange(void* base, size_t size, uint32_t node, uint16_t pool_id) {
  std::lock_guard<std::mutex> lock(g_mu);
  size_t n = g_count.load(std::memory_order_relaxed);
  // Reuse a deactivated slot if possible.
  for (size_t i = 0; i < n; ++i) {
    if (!g_ranges[i].active.load(std::memory_order_relaxed)) {
      FillSlot(g_ranges[i], base, size, node, pool_id);
      return;
    }
  }
  if (n >= kMaxRanges) {
    return;  // silently unmodeled; media accounting simply skips the range
  }
  FillSlot(g_ranges[n], base, size, node, pool_id);
  g_count.store(n + 1, std::memory_order_release);
}

void UnregisterNvmRange(void* base) {
  std::lock_guard<std::mutex> lock(g_mu);
  size_t n = g_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    if (g_ranges[i].active.load(std::memory_order_relaxed) &&
        g_ranges[i].base.load(std::memory_order_relaxed) ==
            reinterpret_cast<uintptr_t>(base)) {
      g_ranges[i].active.store(false, std::memory_order_release);
      return;
    }
  }
}

bool LookupNvmRange(const void* p, NvmRange* out) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  size_t n = g_count.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    Slot& s = g_ranges[i];
    if (!s.active.load(std::memory_order_acquire)) {
      continue;
    }
    uintptr_t base = s.base.load(std::memory_order_relaxed);
    size_t size = s.size.load(std::memory_order_relaxed);
    if (addr < base || addr >= base + size) {
      continue;
    }
    out->base = base;
    out->size = size;
    out->node = s.node.load(std::memory_order_relaxed);
    out->pool_id = s.pool_id.load(std::memory_order_relaxed);
    if (!s.active.load(std::memory_order_acquire)) {
      continue;  // deactivated mid-copy: the range is being unmapped
    }
    return true;
  }
  return false;
}

}  // namespace pactree
