#include "src/nvm/address_map.h"

#include <atomic>
#include <mutex>

namespace pactree {
namespace {

constexpr size_t kMaxRanges = 256;

// Append-only table; lookups scan without locks. `count` is released after a
// slot is fully initialized so readers never observe a torn entry.
NvmRange g_ranges[kMaxRanges];
std::atomic<size_t> g_count{0};
std::mutex g_mu;

}  // namespace

void RegisterNvmRange(void* base, size_t size, uint32_t node, uint16_t pool_id) {
  std::lock_guard<std::mutex> lock(g_mu);
  size_t n = g_count.load(std::memory_order_relaxed);
  // Reuse a deactivated slot if possible.
  for (size_t i = 0; i < n; ++i) {
    if (!g_ranges[i].active) {
      g_ranges[i].base = reinterpret_cast<uintptr_t>(base);
      g_ranges[i].size = size;
      g_ranges[i].node = node;
      g_ranges[i].pool_id = pool_id;
      std::atomic_thread_fence(std::memory_order_release);
      g_ranges[i].active = true;
      return;
    }
  }
  if (n >= kMaxRanges) {
    return;  // silently unmodeled; media accounting simply skips the range
  }
  g_ranges[n].base = reinterpret_cast<uintptr_t>(base);
  g_ranges[n].size = size;
  g_ranges[n].node = node;
  g_ranges[n].pool_id = pool_id;
  g_ranges[n].active = true;
  g_count.store(n + 1, std::memory_order_release);
}

void UnregisterNvmRange(void* base) {
  std::lock_guard<std::mutex> lock(g_mu);
  size_t n = g_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    if (g_ranges[i].base == reinterpret_cast<uintptr_t>(base)) {
      g_ranges[i].active = false;
      return;
    }
  }
}

const NvmRange* LookupNvmRange(const void* p) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  size_t n = g_count.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    const NvmRange& r = g_ranges[i];
    if (r.active && addr >= r.base && addr < r.base + r.size) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace pactree
