#include "src/nvm/topology.h"

#include <atomic>

#include "src/nvm/config.h"

namespace pactree {
namespace {

std::atomic<uint32_t> g_next_thread{0};

struct ThreadNode {
  uint32_t node = 0;
  bool assigned = false;
};

thread_local ThreadNode t_node;

}  // namespace

uint32_t CurrentNumaNode() {
  if (!t_node.assigned) {
    uint32_t nodes = GlobalNvmConfig().numa_nodes;
    if (nodes == 0) {
      nodes = 1;
    }
    t_node.node = g_next_thread.fetch_add(1, std::memory_order_relaxed) % nodes;
    t_node.assigned = true;
  }
  return t_node.node;
}

void SetCurrentNumaNode(uint32_t node) {
  uint32_t nodes = GlobalNvmConfig().numa_nodes;
  t_node.node = nodes == 0 ? 0 : node % nodes;
  t_node.assigned = true;
}

}  // namespace pactree
