#include "src/nvm/topology.h"

#include <sched.h>

#include <atomic>
#include <thread>

#include "src/nvm/config.h"
#include "src/runtime/thread_context.h"

namespace pactree {
namespace {

// Process-wide opt-in: AssignWorkerThread also pins to a CPU (bench --pin).
std::atomic<bool> g_pinning{false};

}  // namespace

uint32_t CurrentNumaNode() {
  ThreadContext& ctx = ThreadContext::Current();
  if (!ctx.numa_assigned()) {
    uint32_t nodes = GlobalNvmConfig().numa_nodes;
    if (nodes == 0) {
      nodes = 1;
    }
    // Stripe by registration order: deterministic given thread start order,
    // and re-registered pool threads restripe with their fresh tid.
    ctx.AssignNumaNode(ctx.tid() % nodes);
  }
  return ctx.numa_node();
}

void SetCurrentNumaNode(uint32_t node) {
  uint32_t nodes = GlobalNvmConfig().numa_nodes;
  ThreadContext::Current().AssignNumaNode(nodes == 0 ? 0 : node % nodes);
}

void SetThreadPinning(bool enabled) {
  g_pinning.store(enabled, std::memory_order_release);
}

bool ThreadPinningEnabled() { return g_pinning.load(std::memory_order_acquire); }

void AssignWorkerThread(uint32_t worker_index) {
  uint32_t nodes = GlobalNvmConfig().numa_nodes;
  if (nodes == 0) {
    nodes = 1;
  }
  uint32_t node = worker_index % nodes;
  SetCurrentNumaNode(node);
  if (!ThreadPinningEnabled()) {
    return;
  }
  // Deterministic round-robin CPU placement mirroring the logical topology:
  // the CPUs are split into |nodes| contiguous groups; worker i runs on group
  // i % nodes, seat (i / nodes) within the group.
  uint32_t ncpus = std::thread::hardware_concurrency();
  if (ncpus == 0) {
    return;
  }
  uint32_t per_node = ncpus / nodes;
  if (per_node == 0) {
    per_node = 1;
  }
  uint32_t cpu = (node * per_node + (worker_index / nodes) % per_node) % ncpus;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  sched_setaffinity(0, sizeof(set), &set);  // best effort
}

}  // namespace pactree
