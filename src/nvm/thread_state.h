// Internal: the NVM layer's per-thread state, held in the thread's
// ThreadContext (src/runtime/) and keyed per pmem pool id.
//
// One NvmDomain = one (thread, pool) pair: the media traffic counters plus the
// media model (the direct-mapped XPLine read-tag cache standing in for the CPU
// cache's reach over that pool, and the XPBuffer write-combining window).
// Keying the model per pool keeps independent heaps in one process from
// warming or evicting each other's modeled caches -- two benchmarks or tests
// measuring different instances see the same numbers they would see alone.
#ifndef PACTREE_SRC_NVM_THREAD_STATE_H_
#define PACTREE_SRC_NVM_THREAD_STATE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/nvm/config.h"
#include "src/nvm/stats.h"
#include "src/runtime/thread_context.h"

namespace pactree {

// Models one thread's CPU-cache interaction with one pool's media.
struct MediaModel {
  // Direct-mapped XPLine tag cache modeling this thread's CPU-cache reach.
  std::vector<uintptr_t> read_tags;
  // Last XPLine fetched from media (sequential-prefetch detection, FH3).
  uintptr_t last_miss_line = 0;
  // FIFO window of recently written XPLines modeling the XPBuffer combining.
  static constexpr size_t kXpBufMax = 64;
  uintptr_t xpbuf[kXpBufMax] = {};
  size_t xpbuf_size = 0;
  size_t xpbuf_next = 0;

  void EnsureSized() {
    if (read_tags.empty()) {
      size_t n = GlobalNvmConfig().read_cache_lines;
      if (n == 0) {
        n = 1;
      }
      // Round to power of two for cheap indexing.
      size_t p = 1;
      while (p < n) {
        p <<= 1;
      }
      read_tags.assign(p, 0);
      xpbuf_size = GlobalNvmConfig().xpbuffer_entries;
      if (xpbuf_size > kXpBufMax) {
        xpbuf_size = kXpBufMax;
      }
      if (xpbuf_size == 0) {
        xpbuf_size = 1;
      }
    }
  }

  bool ReadCacheLookupInsert(uintptr_t xpline) {
    size_t idx = (xpline >> 8) & (read_tags.size() - 1);
    if (read_tags[idx] == xpline) {
      return true;
    }
    read_tags[idx] = xpline;
    return false;
  }

  bool XpBufferLookupInsert(uintptr_t xpline) {
    for (size_t i = 0; i < xpbuf_size; ++i) {
      if (xpbuf[i] == xpline) {
        return true;
      }
    }
    xpbuf[xpbuf_next] = xpline;
    xpbuf_next = (xpbuf_next + 1) % xpbuf_size;
    return false;
  }

  void Reset() {
    read_tags.clear();
    last_miss_line = 0;
    xpbuf_size = 0;
    xpbuf_next = 0;
    for (auto& e : xpbuf) {
      e = 0;
    }
  }
};

struct NvmDomain {
  uint16_t pool_id = 0;
  NvmThreadCounters counters;
  MediaModel media;  // owner-thread only
};

// All of one thread's NVM-layer state: an append-only array of domains so
// foreign aggregators can walk it lock-free while the owner appends.
struct NvmThreadState {
  // Bound on distinct pool ids one thread touches; overflow traffic falls into
  // the unattributed bucket (still globally counted, just not per-pool).
  static constexpr size_t kMaxDomains = 64;

  NvmDomain unattributed;  // pool id 0: fences, overflow
  std::atomic<NvmDomain*> domains[kMaxDomains] = {};
  std::atomic<size_t> ndomains{0};
  NvmDomain* last = nullptr;  // owner-thread lookup cache

  // Owner thread only.
  NvmDomain& DomainFor(uint16_t pool_id) {
    if (pool_id == 0) {
      return unattributed;
    }
    if (last != nullptr && last->pool_id == pool_id) {
      return *last;
    }
    size_t n = ndomains.load(std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      NvmDomain* d = domains[i].load(std::memory_order_relaxed);
      if (d->pool_id == pool_id) {
        last = d;
        return *d;
      }
    }
    if (n >= kMaxDomains) {
      return unattributed;
    }
    auto* d = new NvmDomain();
    d->pool_id = pool_id;
    domains[n].store(d, std::memory_order_release);
    ndomains.store(n + 1, std::memory_order_release);
    last = d;
    return *d;
  }

  ~NvmThreadState() {
    size_t n = ndomains.load(std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      delete domains[i].load(std::memory_order_relaxed);
    }
  }
};

// The calling thread's NVM state (slot lives in stats.cc).
NvmThreadState& LocalNvmState();
// |ctx|'s NVM state if it has one (foreign-thread safe under a registry scan).
NvmThreadState* PeekNvmState(ThreadContext& ctx);

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_THREAD_STATE_H_
