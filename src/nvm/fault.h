// FaultInjector: deterministic crash-point injection over the ShadowHeap.
//
// A test arms a *window* on the current thread, runs one index operation, and
// the injector counts persistence events as they pass through PersistRange /
// Fence: every shadow-covered cache-line flush is one event, and every fence
// that retires at least one staged line is one event. Arming with
// crash_event = K freezes the shadow image exactly when event K occurs, so a
// sweep over K in [1, N] visits every reachable crash state of the operation.
// Arming with crash_event = 0 counts without triggering, which is how tests
// discover N for an operation they have never seen before.
//
// What "crash at event K" commits to the durable image depends on the mode:
//   kStrict  event K (and everything after) is lost; events 1..K-1 that were
//            fenced are durable. The flush/fence at K has no effect.
//   kChaos   as kStrict, plus random unflushed cache lines are "evicted" into
//            the image from their live contents at the crash instant
//            (hash-of-(seed, line) decision; see ShadowHeap::EvictLines).
//   kTorn    the line being flushed at K commits only a seed-chosen 8-byte-
//            aligned prefix or suffix (1..7 words); when K is a fence event, a
//            seed-chosen subset of the staged lines drains in full and one
//            more drains partially. Models the 8 B failure-atomicity unit the
//            logging protocols rely on.
//
// The window is thread-local: only events issued by the arming thread count,
// so a deterministic single-threaded trace yields the same event numbering
// run after run. Requires ShadowHeap to be active over the pools of interest.
#ifndef PACTREE_SRC_NVM_FAULT_H_
#define PACTREE_SRC_NVM_FAULT_H_

#include <cstddef>
#include <cstdint>

namespace pactree {

enum class FaultMode {
  kStrict,  // nothing un-fenced survives
  kChaos,   // plus random cache evictions at the crash instant
  kTorn,    // the event-K line/fence commits partially at 8 B granularity
};

struct CrashPlan {
  FaultMode mode = FaultMode::kStrict;
  // 1-based event index at which the crash takes effect. 0 = count-only
  // window: events are tallied but no crash is ever triggered.
  uint64_t crash_event = 0;
  // Drives chaos eviction choices and torn-write subset/width choices.
  uint64_t seed = 0;
  // Per-line eviction probability for kChaos.
  double evict_probability = 0.05;
};

class FaultInjector {
 public:
  // Opens a window on the calling thread. Resets the event counter.
  static void Arm(const CrashPlan& plan);
  // Closes the window. The shadow image stays frozen if a crash triggered;
  // ShadowHeap::Disable (or Enable) resets that.
  static void Disarm();
  static bool Armed();
  // True once the planned crash has taken effect.
  static bool Triggered();
  // Events observed in the current (or just-closed) window. After running an
  // operation under a count-only plan this is the operation's crash-point
  // count N; a sweep then re-runs the operation once per K in [1, N].
  static uint64_t EventCount();

  // Hooks wired into PersistRange/Fence (called only while ShadowHeap is
  // active, *before* the corresponding ShadowHeap hook so a triggered freeze
  // suppresses the event it models).
  static void OnPersist(const void* p, size_t n);
  static void OnFence();
};

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_FAULT_H_
