#include "src/nvm/fault.h"

#include "src/common/compiler.h"
#include "src/nvm/shadow.h"
#include "src/runtime/thread_context.h"

namespace pactree {
namespace {

struct WindowState {
  bool armed = false;
  bool triggered = false;
  CrashPlan plan;
  uint64_t events = 0;
  // Covered lines flushed since the last fence; a fence only counts as an
  // event when it actually retires staged lines.
  uint64_t staged_lines = 0;
};

// Per-thread crash window, held in the thread's ThreadContext. No retire hook:
// an armed window dying with its thread is exactly a disarm.
ThreadSlot<WindowState>& WindowSlot() {
  static ThreadSlot<WindowState>* slot = new ThreadSlot<WindowState>();
  return *slot;
}

WindowState& Window() { return WindowSlot().Get(); }

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Commits a torn fragment of |line|: 1..7 aligned 8-byte words, as a prefix
// or a suffix, chosen by the plan seed and the event index so different crash
// points tear differently.
void CommitTornLine(uintptr_t line, uint64_t seed, uint64_t event) {
  uint64_t h = Mix64(seed ^ Mix64(event));
  size_t words = 1 + h % 7;
  bool suffix = (h >> 32) & 1;
  if (suffix) {
    size_t skip = (kCacheLineSize / 8) - words;
    ShadowHeap::CommitBytes(reinterpret_cast<const void*>(line + skip * 8),
                            words * 8);
  } else {
    ShadowHeap::CommitBytes(reinterpret_cast<const void*>(line), words * 8);
  }
}

// The crash takes effect: apply the mode's durable side effects, then freeze
// the image so nothing later in the doomed operation changes it.
void Trigger(WindowState& w, uintptr_t flush_line, bool at_fence) {
  w.triggered = true;
  switch (w.plan.mode) {
    case FaultMode::kStrict:
      break;
    case FaultMode::kChaos:
      ShadowHeap::EvictLines(w.plan.seed, w.plan.evict_probability);
      break;
    case FaultMode::kTorn:
      if (at_fence) {
        ShadowHeap::CommitStagedSubset(w.plan.seed);
      } else {
        CommitTornLine(flush_line, w.plan.seed, w.events);
      }
      break;
  }
  ShadowHeap::Freeze();
}

}  // namespace

void FaultInjector::Arm(const CrashPlan& plan) {
  WindowState& w = Window();
  w.armed = true;
  w.triggered = false;
  w.plan = plan;
  w.events = 0;
  w.staged_lines = 0;
}

void FaultInjector::Disarm() {
  WindowState& w = Window();
  w.armed = false;
  w.staged_lines = 0;
}

bool FaultInjector::Armed() { return Window().armed; }

bool FaultInjector::Triggered() { return Window().triggered; }

uint64_t FaultInjector::EventCount() { return Window().events; }

void FaultInjector::OnPersist(const void* p, size_t n) {
  WindowState& w = Window();
  if (!w.armed || w.triggered || n == 0) {
    return;
  }
  uintptr_t start = CacheLineOf(p);
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t line = start; line < end; line += kCacheLineSize) {
    if (!ShadowHeap::Covers(reinterpret_cast<const void*>(line))) {
      continue;
    }
    w.events++;
    w.staged_lines++;
    if (w.events == w.plan.crash_event) {
      Trigger(w, line, /*at_fence=*/false);
      return;
    }
  }
}

void FaultInjector::OnFence() {
  WindowState& w = Window();
  if (!w.armed || w.triggered) {
    return;
  }
  if (w.staged_lines == 0) {
    return;  // empty fence: retires nothing, not a distinct durable state
  }
  w.staged_lines = 0;
  w.events++;
  if (w.events == w.plan.crash_event) {
    Trigger(w, 0, /*at_fence=*/true);
  }
}

}  // namespace pactree
