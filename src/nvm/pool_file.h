// File-backed mapping that stands in for a /dev/pmemN DAX mapping.
//
// Pools are sparse files under NvmConfig::pool_dir mapped MAP_SHARED, so a
// SIGKILL'ed process leaves its page-cache contents behind exactly like a DAX
// mapping would leave NVM contents -- which is what the paper's §6.8 recovery
// methodology relies on.
#ifndef PACTREE_SRC_NVM_POOL_FILE_H_
#define PACTREE_SRC_NVM_POOL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace pactree {

class NvmPoolFile {
 public:
  NvmPoolFile() = default;
  ~NvmPoolFile() { Close(); }

  NvmPoolFile(const NvmPoolFile&) = delete;
  NvmPoolFile& operator=(const NvmPoolFile&) = delete;
  NvmPoolFile(NvmPoolFile&& o) noexcept { *this = std::move(o); }
  NvmPoolFile& operator=(NvmPoolFile&& o) noexcept;

  // Creates (truncating any existing file) or opens an existing pool file and
  // maps it. |node| is the owning logical NUMA node. Returns false on failure
  // and records the syscall, errno, and offending path in last_error().
  bool Create(const std::string& path, size_t size, uint32_t node, uint16_t pool_id);
  bool Open(const std::string& path, uint32_t node, uint16_t pool_id);

  // Human-readable description of the most recent Create/Open failure
  // ("open(/path): No space left on device"); empty after a success.
  const std::string& last_error() const { return last_error_; }

  void Close();

  static bool Exists(const std::string& path);
  static void Remove(const std::string& path);

  void* base() const { return base_; }
  size_t size() const { return size_; }
  uint32_t node() const { return node_; }
  const std::string& path() const { return path_; }
  bool valid() const { return base_ != nullptr; }

 private:
  bool MapFd(int fd, size_t size, uint32_t node, uint16_t pool_id, const std::string& path);

  void SetError(const char* op, const std::string& path, int err);

  void* base_ = nullptr;
  size_t size_ = 0;
  uint32_t node_ = 0;
  std::string path_;
  std::string last_error_;
};

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_POOL_FILE_H_
