// Global configuration of the emulated NVM device.
//
// Latency/bandwidth defaults follow the published Optane DCPMM characterization
// (Yang et al., FAST'20; Izraelevitz et al.): ~300 ns random 256 B media read,
// asymmetric read/write bandwidth (~3x), sequential faster than random, and a
// directory-coherence mode in which remote reads generate media writes (the
// paper's finding FH5).
#ifndef PACTREE_SRC_NVM_CONFIG_H_
#define PACTREE_SRC_NVM_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace pactree {

enum class CoherenceProtocol {
  kSnoop,      // remote reads are served by snooping; no media directory update
  kDirectory,  // remote reads write directory state to the 3D-XPoint media (FH5)
};

struct NvmConfig {
  // --- emulation switches -------------------------------------------------
  bool emulate_latency = false;    // inject media latencies on miss/flush
  bool emulate_bandwidth = false;  // throttle media traffic with token buckets

  // --- topology -----------------------------------------------------------
  uint32_t numa_nodes = 2;  // logical NUMA domains (threads are striped across)
  CoherenceProtocol coherence = CoherenceProtocol::kSnoop;

  // --- latency knobs (ns) ---------------------------------------------------
  uint32_t read_miss_ns = 300;   // random XPLine fetch from media
  // Sequential XPLine fetch (CPU prefetcher + XPPrefetcher hide most of the
  // latency; FH3: sequential is 3-5x faster than random).
  uint32_t seq_read_ns = 70;
  uint32_t flush_ns = 90;        // clwb reaching the ADR domain (per line)
  uint32_t fence_ns = 30;        // sfence drain
  double remote_multiplier = 1.8;  // cross-NUMA access penalty
  uint32_t directory_write_ns = 120;  // directory-state write on remote read

  // --- bandwidth knobs (MB/s per NUMA node) --------------------------------
  uint32_t read_bw_mbps = 6000;
  uint32_t write_bw_mbps = 2000;

  // --- cache models ---------------------------------------------------------
  // Per-thread direct-mapped XPLine cache standing in for the CPU cache share;
  // hits do not touch media. Power of two.
  size_t read_cache_lines = 4096;  // 4096 x 256 B = 1 MiB reach
  // Per-thread XPBuffer window: flushes to a recently written XPLine combine.
  size_t xpbuffer_entries = 16;

  // --- pools ----------------------------------------------------------------
  std::string pool_dir;     // default picked at runtime: /dev/shm or /tmp
  size_t pool_size = 2ULL << 30;  // per-pool reserved (sparse) bytes

  // Resolves the pool directory (creates it if needed).
  static std::string DefaultPoolDir();
};

// Mutable global config. Benchmarks set fields before creating pools/threads.
NvmConfig& GlobalNvmConfig();

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_CONFIG_H_
