// Media-level traffic accounting for the emulated NVM device.
//
// These counters are what the paper's PMWatch measurements report: bytes actually
// moved at the 3D-XPoint media (256 B XPLine granularity), flush/fence counts, and
// cross-NUMA traffic including directory-coherence writes. Figures 4 and 5 plot
// exactly these quantities.
#ifndef PACTREE_SRC_NVM_STATS_H_
#define PACTREE_SRC_NVM_STATS_H_

#include <cstdint>

namespace pactree {

struct NvmStatsSnapshot {
  uint64_t media_read_bytes = 0;    // XPLine fetches from media
  uint64_t media_write_bytes = 0;   // XPLine write-backs to media
  uint64_t flushes = 0;             // clwb-equivalent operations
  uint64_t fences = 0;              // sfence-equivalent operations
  uint64_t read_hits = 0;           // satisfied by the modeled CPU cache
  uint64_t read_misses = 0;
  uint64_t remote_reads = 0;        // cross-NUMA XPLine fetches
  uint64_t remote_writes = 0;
  uint64_t directory_writes = 0;    // FH5: media writes caused by remote reads
  uint64_t alloc_ops = 0;           // persistent allocations (filled by pmem)
  uint64_t free_ops = 0;

  NvmStatsSnapshot operator-(const NvmStatsSnapshot& o) const {
    NvmStatsSnapshot d;
    d.media_read_bytes = media_read_bytes - o.media_read_bytes;
    d.media_write_bytes = media_write_bytes - o.media_write_bytes;
    d.flushes = flushes - o.flushes;
    d.fences = fences - o.fences;
    d.read_hits = read_hits - o.read_hits;
    d.read_misses = read_misses - o.read_misses;
    d.remote_reads = remote_reads - o.remote_reads;
    d.remote_writes = remote_writes - o.remote_writes;
    d.directory_writes = directory_writes - o.directory_writes;
    d.alloc_ops = alloc_ops - o.alloc_ops;
    d.free_ops = free_ops - o.free_ops;
    return d;
  }
};

// Aggregates the counters of every thread that ever touched the NVM layer.
NvmStatsSnapshot GlobalNvmStats();

// Per-thread raw counters (exposed so hot paths can increment without locks).
struct NvmThreadCounters {
  uint64_t media_read_bytes = 0;
  uint64_t media_write_bytes = 0;
  uint64_t flushes = 0;
  uint64_t fences = 0;
  uint64_t read_hits = 0;
  uint64_t read_misses = 0;
  uint64_t remote_reads = 0;
  uint64_t remote_writes = 0;
  uint64_t directory_writes = 0;
  uint64_t alloc_ops = 0;
  uint64_t free_ops = 0;
};

// Counters of the calling thread (registered globally on first use; the object
// outlives the thread so aggregation stays safe).
NvmThreadCounters& LocalNvmCounters();

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_STATS_H_
