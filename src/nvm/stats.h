// Media-level traffic accounting for the emulated NVM device.
//
// These counters are what the paper's PMWatch measurements report: bytes actually
// moved at the 3D-XPoint media (256 B XPLine granularity), flush/fence counts, and
// cross-NUMA traffic including directory-coherence writes. Figures 4 and 5 plot
// exactly these quantities.
//
// Counters live in each thread's ThreadContext (src/runtime/), keyed per pmem
// pool id, so two heaps or two indexes in one process never bleed traffic into
// each other's numbers. When a thread exits, its counters are folded into a
// process-wide retired accumulator, so aggregate queries stay correct after
// worker threads join.
#ifndef PACTREE_SRC_NVM_STATS_H_
#define PACTREE_SRC_NVM_STATS_H_

#include <atomic>
#include <cstdint>

namespace pactree {

struct NvmStatsSnapshot {
  uint64_t media_read_bytes = 0;    // XPLine fetches from media
  uint64_t media_write_bytes = 0;   // XPLine write-backs to media
  uint64_t flushes = 0;             // clwb-equivalent operations
  uint64_t fences = 0;              // sfence-equivalent operations
  uint64_t read_hits = 0;           // satisfied by the modeled CPU cache
  uint64_t read_misses = 0;
  uint64_t read_prefetches = 0;     // XPLines fetched by software prefetch
  uint64_t remote_reads = 0;        // cross-NUMA XPLine fetches
  uint64_t remote_writes = 0;
  uint64_t directory_writes = 0;    // FH5: media writes caused by remote reads
  uint64_t alloc_ops = 0;           // persistent allocations (filled by pmem)
  uint64_t free_ops = 0;
  // Allocations served by a non-local sub-pool after the NUMA-local pool ran
  // out (filled by PmemHeap::MediaStats, not per-pool counters): each one is a
  // future stream of remote media accesses, so a silent fallback must show up
  // here before it shows up as remote_reads/remote_writes.
  uint64_t heap_remote_allocs = 0;

  NvmStatsSnapshot operator-(const NvmStatsSnapshot& o) const {
    NvmStatsSnapshot d;
    d.media_read_bytes = media_read_bytes - o.media_read_bytes;
    d.media_write_bytes = media_write_bytes - o.media_write_bytes;
    d.flushes = flushes - o.flushes;
    d.fences = fences - o.fences;
    d.read_hits = read_hits - o.read_hits;
    d.read_misses = read_misses - o.read_misses;
    d.read_prefetches = read_prefetches - o.read_prefetches;
    d.remote_reads = remote_reads - o.remote_reads;
    d.remote_writes = remote_writes - o.remote_writes;
    d.directory_writes = directory_writes - o.directory_writes;
    d.alloc_ops = alloc_ops - o.alloc_ops;
    d.free_ops = free_ops - o.free_ops;
    d.heap_remote_allocs = heap_remote_allocs - o.heap_remote_allocs;
    return d;
  }

  NvmStatsSnapshot& operator+=(const NvmStatsSnapshot& o) {
    media_read_bytes += o.media_read_bytes;
    media_write_bytes += o.media_write_bytes;
    flushes += o.flushes;
    fences += o.fences;
    read_hits += o.read_hits;
    read_misses += o.read_misses;
    read_prefetches += o.read_prefetches;
    remote_reads += o.remote_reads;
    remote_writes += o.remote_writes;
    directory_writes += o.directory_writes;
    alloc_ops += o.alloc_ops;
    free_ops += o.free_ops;
    heap_remote_allocs += o.heap_remote_allocs;
    return *this;
  }
};

// Single-writer counter: only the owning thread increments (plain load+store,
// no RMW, so the hot path costs the same as a non-atomic add), while foreign
// threads may aggregate concurrently without a data race.
struct RelaxedCounter {
  std::atomic<uint64_t> v{0};

  void Add(uint64_t d) {
    v.store(v.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
  void operator++(int) { Add(1); }
  RelaxedCounter& operator+=(uint64_t d) {
    Add(d);
    return *this;
  }
  uint64_t load() const { return v.load(std::memory_order_relaxed); }
};

// Per-thread, per-pool raw counters (exposed so hot paths can bump fields
// without locks). Owning thread writes; any thread may read.
struct NvmThreadCounters {
  RelaxedCounter media_read_bytes;
  RelaxedCounter media_write_bytes;
  RelaxedCounter flushes;
  RelaxedCounter fences;
  RelaxedCounter read_hits;
  RelaxedCounter read_misses;
  RelaxedCounter read_prefetches;
  RelaxedCounter remote_reads;
  RelaxedCounter remote_writes;
  RelaxedCounter directory_writes;
  RelaxedCounter alloc_ops;
  RelaxedCounter free_ops;

  void AddTo(NvmStatsSnapshot* s) const {
    s->media_read_bytes += media_read_bytes.load();
    s->media_write_bytes += media_write_bytes.load();
    s->flushes += flushes.load();
    s->fences += fences.load();
    s->read_hits += read_hits.load();
    s->read_misses += read_misses.load();
    s->read_prefetches += read_prefetches.load();
    s->remote_reads += remote_reads.load();
    s->remote_writes += remote_writes.load();
    s->directory_writes += directory_writes.load();
    s->alloc_ops += alloc_ops.load();
    s->free_ops += free_ops.load();
  }
};

// Every thread's traffic (live and exited), all pools plus unattributed
// events (pool id 0: fences, which carry no address).
NvmStatsSnapshot GlobalNvmStats();

// Traffic attributed to one pmem pool across every thread, live and exited.
// Fences are never pool-attributed and always read as zero here.
NvmStatsSnapshot PoolNvmStats(uint16_t pool_id);

// The calling thread's counters for |pool_id| (0 = the unattributed bucket).
// Registered in the thread's context on first use; folded into the retired
// accumulator at thread exit.
NvmThreadCounters& LocalNvmCounters(uint16_t pool_id = 0);

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_STATS_H_
