// ShadowHeap: an adversarial ADR crash simulator.
//
// While enabled over a pool's mapping, every PersistRange stages the flushed
// cache lines' *current contents* and the following Fence commits them to a
// shadow image. A simulated crash captures the shadow image: any store that was
// not explicitly persisted before the crash is absent -- the strictest reading
// of ADR semantics (volatile caches, nothing survives except what reached the
// WPQ). An optional chaos mode additionally "evicts" random unflushed lines
// into the image, modeling cache evictions that make un-flushed stores durable;
// recovery must tolerate both directions.
//
// Eviction decisions are a pure function of (seed, region index, line offset)
// -- never of iteration order or draw count -- so the same (seed,
// evict_probability) always selects the same lines, run to run and capture to
// capture. Staged-but-unfenced lines are tagged with the enable-cycle epoch;
// a line staged before Disable can never leak into a later cycle's image.
//
// Tests rebuild a pool from the captured bytes and run recovery on it; the
// compact persistent-pointer representation (§5.8) makes the image position
// independent.
//
// The fault-injection layer (src/nvm/fault.h) drives the finer-grained entry
// points: Freeze() pins the image at a simulated power-failure instant,
// CommitBytes/CommitStagedSubset model torn line writes at the 8-byte
// atomicity granularity, and EvictLines applies chaos evictions using the
// live bytes at the crash instant.
#ifndef PACTREE_SRC_NVM_SHADOW_H_
#define PACTREE_SRC_NVM_SHADOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pactree {

enum class CrashMode {
  kStrict,  // only persisted bytes survive
  kChaos,   // plus random unflushed lines "evicted" into the image
};

class ShadowHeap {
 public:
  // Starts shadowing [base, base+size). The shadow image is initialized from
  // the current live contents (i.e., the state at enable time is durable).
  // May be called repeatedly to shadow several regions (e.g., each pool of an
  // index). Test-only facility.
  static void Enable(void* base, size_t size);
  static void Disable();
  static bool IsActive();

  // Snapshot of the durable image of the first region as of now.
  static std::vector<uint8_t> Capture(CrashMode mode, uint64_t seed = 0,
                                      double evict_probability = 0.05);
  // Snapshot of the region registered at |base| (first region when null).
  static std::vector<uint8_t> CaptureRegion(void* base, CrashMode mode,
                                            uint64_t seed = 0,
                                            double evict_probability = 0.05);

  // Hooks called from the persistence primitives (no-ops when inactive).
  static void OnPersist(const void* p, size_t n);
  static void OnFence();

  // --- fault-injection entry points (see src/nvm/fault.h) -----------------

  // True iff [p, p+1) falls inside a shadowed region.
  static bool Covers(const void* p);

  // Number of cache lines of [p, p+n) that fall inside shadowed regions.
  static size_t CoveredLines(const void* p, size_t n);

  // Freezes the durable image: subsequent OnPersist/OnFence (from any thread)
  // no longer change it. Models the instant of power failure. Capture still
  // works; Enable/Disable reset the frozen state.
  static void Freeze();
  static bool IsFrozen();

  // Commits [p, p+n) of *live* bytes straight into the image, bypassing the
  // stage/fence protocol; |p| and |n| must be 8-byte aligned (the torn-write
  // model: a cache line drains partially from the WPQ, but 8-byte aligned
  // units are atomic). Works even while frozen is being set up; no-op when
  // the range is not covered.
  static void CommitBytes(const void* p, size_t n);

  // Models a power failure mid-fence: commits a (seed-chosen) subset of the
  // calling thread's staged-but-unfenced lines in full, and one further
  // staged line only partially (an 8-byte-aligned prefix). The WPQ drains in
  // arbitrary order, so any subset is a reachable durable state.
  static void CommitStagedSubset(uint64_t seed);

  // Applies chaos evictions now: each covered line is independently made
  // durable from its live contents with |probability|, decided by
  // hash(seed, region, offset). Used at a simulated crash instant so evicted
  // lines carry the bytes that were actually in the cache at that moment.
  static void EvictLines(uint64_t seed, double probability);

 private:
  static bool EvictDecision(uint64_t seed, size_t region_index, size_t offset,
                            double probability);
};

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_SHADOW_H_
