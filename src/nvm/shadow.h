// ShadowHeap: an adversarial ADR crash simulator.
//
// While enabled over a pool's mapping, every PersistRange stages the flushed
// cache lines' *current contents* and the following Fence commits them to a
// shadow image. A simulated crash captures the shadow image: any store that was
// not explicitly persisted before the crash is absent -- the strictest reading
// of ADR semantics (volatile caches, nothing survives except what reached the
// WPQ). An optional chaos mode additionally "evicts" random unflushed lines
// into the image, modeling cache evictions that make un-flushed stores durable;
// recovery must tolerate both directions.
//
// Tests rebuild a pool from the captured bytes and run recovery on it; the
// compact persistent-pointer representation (§5.8) makes the image position
// independent.
#ifndef PACTREE_SRC_NVM_SHADOW_H_
#define PACTREE_SRC_NVM_SHADOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pactree {

enum class CrashMode {
  kStrict,  // only persisted bytes survive
  kChaos,   // plus random unflushed lines "evicted" into the image
};

class ShadowHeap {
 public:
  // Starts shadowing [base, base+size). The shadow image is initialized from
  // the current live contents (i.e., the state at enable time is durable).
  // May be called repeatedly to shadow several regions (e.g., each pool of an
  // index). Test-only facility.
  static void Enable(void* base, size_t size);
  static void Disable();
  static bool IsActive();

  // Snapshot of the durable image of the first region as of now.
  static std::vector<uint8_t> Capture(CrashMode mode, uint64_t seed = 0,
                                      double evict_probability = 0.05);
  // Snapshot of the region registered at |base| (first region when null).
  static std::vector<uint8_t> CaptureRegion(void* base, CrashMode mode,
                                            uint64_t seed = 0,
                                            double evict_probability = 0.05);

  // Hooks called from the persistence primitives (no-ops when inactive).
  static void OnPersist(const void* p, size_t n);
  static void OnFence();
};

}  // namespace pactree

#endif  // PACTREE_SRC_NVM_SHADOW_H_
