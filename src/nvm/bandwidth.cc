#include "src/nvm/bandwidth.h"

#include "src/common/clock.h"
#include "src/nvm/config.h"

namespace pactree {

void TokenBucket::Configure(uint64_t bytes_per_sec, uint64_t burst_bytes) {
  if (bytes_per_sec == 0) {
    ns_per_byte_ = 0.0;
    return;
  }
  ns_per_byte_ = 1e9 / static_cast<double>(bytes_per_sec);
  burst_ns_ = static_cast<uint64_t>(static_cast<double>(burst_bytes) * ns_per_byte_);
  virtual_ns_.store(NowNs(), std::memory_order_relaxed);
}

void TokenBucket::Consume(uint64_t bytes) {
  if (ns_per_byte_ == 0.0) {
    return;
  }
  uint64_t cost = static_cast<uint64_t>(static_cast<double>(bytes) * ns_per_byte_);
  uint64_t now = NowNs();
  // If the bucket has been idle, pull the virtual clock forward so old credit
  // does not accumulate beyond the burst allowance.
  uint64_t vt = virtual_ns_.load(std::memory_order_relaxed);
  while (vt + burst_ns_ < now) {
    if (virtual_ns_.compare_exchange_weak(vt, now - burst_ns_, std::memory_order_relaxed)) {
      vt = now - burst_ns_;
      break;
    }
  }
  uint64_t end = virtual_ns_.fetch_add(cost, std::memory_order_relaxed) + cost;
  if (end > now + burst_ns_) {
    SpinNs(end - now - burst_ns_);
  }
}

BandwidthModel& BandwidthModel::Instance() {
  static BandwidthModel model;
  return model;
}

void BandwidthModel::Reconfigure() {
  const NvmConfig& cfg = GlobalNvmConfig();
  // Burst of 64 KiB keeps short bursts unthrottled while sustained traffic
  // converges to the configured rate.
  constexpr uint64_t kBurst = 64 * 1024;
  for (uint32_t i = 0; i < kMaxNodes; ++i) {
    read_[i].Configure(static_cast<uint64_t>(cfg.read_bw_mbps) * 1000 * 1000, kBurst);
    write_[i].Configure(static_cast<uint64_t>(cfg.write_bw_mbps) * 1000 * 1000, kBurst);
  }
}

void BandwidthModel::ConsumeRead(uint32_t node, uint64_t bytes) {
  read_[node % kMaxNodes].Consume(bytes);
}

void BandwidthModel::ConsumeWrite(uint32_t node, uint64_t bytes) {
  write_[node % kMaxNodes].Consume(bytes);
}

}  // namespace pactree
