#include "src/nvm/shadow.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "src/common/compiler.h"
#include "src/runtime/thread_context.h"

namespace pactree {
namespace {

struct StagedLine {
  uintptr_t addr;
  uint8_t bytes[kCacheLineSize];
};

struct ShadowRegion {
  uint8_t* live = nullptr;
  size_t size = 0;
  std::vector<uint8_t> image;
};

struct ShadowState {
  // Few regions (one per pool); scanned linearly.
  std::vector<ShadowRegion> regions;
  std::mutex image_mu;

  ShadowRegion* Find(uintptr_t addr, size_t* index = nullptr) {
    for (size_t i = 0; i < regions.size(); ++i) {
      ShadowRegion& r = regions[i];
      uintptr_t base = reinterpret_cast<uintptr_t>(r.live);
      if (addr >= base && addr < base + r.size) {
        if (index != nullptr) {
          *index = i;
        }
        return &r;
      }
    }
    return nullptr;
  }
};

ShadowState* g_state = nullptr;
std::atomic<bool> g_active{false};
std::atomic<bool> g_frozen{false};
// Enable/Disable cycle counter. Staged lines are tagged with the epoch they
// were staged in; a fence drops lines from other epochs. Without this, a
// thread that flushed without fencing before Disable would commit those stale
// bytes into the *next* cycle's image (nondeterministic, depends on thread
// timing).
std::atomic<uint64_t> g_epoch{0};

// Lines staged by clwb but not yet fenced by this thread, plus the shadow
// cycle they belong to. Held in the thread's ThreadContext; unfenced lines die
// with their thread, matching real WPQ contents lost when a CPU is lost.
struct ShadowThreadState {
  std::vector<StagedLine> staged;
  uint64_t epoch = 0;
};

ThreadSlot<ShadowThreadState>& ShadowSlot() {
  static ThreadSlot<ShadowThreadState>* slot = new ThreadSlot<ShadowThreadState>();
  return *slot;
}

ShadowThreadState& Staged() { return ShadowSlot().Get(); }

// SplitMix64: decision hash for chaos evictions and torn-write subsets.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / (1ULL << 53));
}

// Commits one staged line into its region's image. Caller holds image_mu.
void CommitStagedLocked(ShadowState* s, const StagedLine& staged, size_t nbytes) {
  ShadowRegion* r = s->Find(staged.addr);
  if (r != nullptr) {
    std::memcpy(r->image.data() + (staged.addr - reinterpret_cast<uintptr_t>(r->live)),
                staged.bytes, nbytes);
  }
}

}  // namespace

void ShadowHeap::Enable(void* base, size_t size) {
  if (g_state == nullptr) {
    g_state = new ShadowState();
    g_epoch.fetch_add(1, std::memory_order_acq_rel);
  }
  ShadowRegion r;
  r.live = static_cast<uint8_t*>(base);
  r.size = size;
  r.image.assign(r.live, r.live + size);
  g_state->regions.push_back(std::move(r));
  g_frozen.store(false, std::memory_order_release);
  g_active.store(true, std::memory_order_release);
}

void ShadowHeap::Disable() {
  if (g_state != nullptr) {
    g_active.store(false, std::memory_order_release);
    g_frozen.store(false, std::memory_order_release);
    g_epoch.fetch_add(1, std::memory_order_acq_rel);
    delete g_state;
    g_state = nullptr;
  }
  Staged().staged.clear();
}

bool ShadowHeap::IsActive() { return g_active.load(std::memory_order_acquire); }

void ShadowHeap::Freeze() { g_frozen.store(true, std::memory_order_release); }

bool ShadowHeap::IsFrozen() { return g_frozen.load(std::memory_order_acquire); }

bool ShadowHeap::Covers(const void* p) {
  ShadowState* s = g_state;
  return s != nullptr && s->Find(reinterpret_cast<uintptr_t>(p)) != nullptr;
}

size_t ShadowHeap::CoveredLines(const void* p, size_t n) {
  ShadowState* s = g_state;
  if (s == nullptr || n == 0) {
    return 0;
  }
  size_t covered = 0;
  uintptr_t start = CacheLineOf(p);
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t line = start; line < end; line += kCacheLineSize) {
    if (s->Find(line) != nullptr) {
      covered++;
    }
  }
  return covered;
}

void ShadowHeap::OnPersist(const void* p, size_t n) {
  ShadowState* s = g_state;
  if (s == nullptr || IsFrozen()) {
    return;
  }
  ShadowThreadState& t = Staged();
  if (t.epoch != g_epoch.load(std::memory_order_acquire)) {
    t.staged.clear();
    t.epoch = g_epoch.load(std::memory_order_acquire);
  }
  uintptr_t start = CacheLineOf(p);
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t line = start; line < end; line += kCacheLineSize) {
    if (s->Find(line) == nullptr) {
      continue;
    }
    // Stage the *current* contents: that is what clwb writes back. Later
    // stores to the same line are not durable unless flushed again.
    StagedLine staged;
    staged.addr = line;
    std::memcpy(staged.bytes, reinterpret_cast<const void*>(line), kCacheLineSize);
    t.staged.push_back(staged);
  }
}

void ShadowHeap::OnFence() {
  ShadowState* s = g_state;
  ShadowThreadState& t = Staged();
  if (s == nullptr || t.staged.empty()) {
    t.staged.clear();
    return;
  }
  if (IsFrozen() || t.epoch != g_epoch.load(std::memory_order_acquire)) {
    // Frozen: the machine already died; stale epoch: these lines were staged
    // against a previous shadow cycle and must not leak into this image.
    t.staged.clear();
    return;
  }
  std::lock_guard<std::mutex> lock(s->image_mu);
  for (const StagedLine& staged : t.staged) {
    CommitStagedLocked(s, staged, kCacheLineSize);
  }
  t.staged.clear();
}

void ShadowHeap::CommitBytes(const void* p, size_t n) {
  ShadowState* s = g_state;
  if (s == nullptr || n == 0) {
    return;
  }
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  std::lock_guard<std::mutex> lock(s->image_mu);
  ShadowRegion* r = s->Find(addr);
  if (r == nullptr) {
    return;
  }
  size_t off = addr - reinterpret_cast<uintptr_t>(r->live);
  size_t len = n;
  if (off + len > r->size) {
    len = r->size - off;
  }
  std::memcpy(r->image.data() + off, r->live + off, len);
}

void ShadowHeap::CommitStagedSubset(uint64_t seed) {
  ShadowState* s = g_state;
  ShadowThreadState& t = Staged();
  if (s == nullptr || t.staged.empty() ||
      t.epoch != g_epoch.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(s->image_mu);
  // Each staged line independently drained (or not) from the WPQ; one of the
  // undrained lines is caught mid-write and commits only an 8-byte-aligned
  // prefix of its bytes.
  int torn_candidate = -1;
  for (size_t i = 0; i < t.staged.size(); ++i) {
    if (HashToUnit(Mix64(seed ^ (0x5157ULL + i))) < 0.5) {
      CommitStagedLocked(s, t.staged[i], kCacheLineSize);
    } else if (torn_candidate < 0) {
      torn_candidate = static_cast<int>(i);
    }
  }
  if (torn_candidate >= 0) {
    // 1..7 words: a genuine tear (0 = not drained, 8 = fully drained are the
    // cases covered above).
    size_t words = 1 + Mix64(seed ^ 0x70524eULL) % 7;
    CommitStagedLocked(s, t.staged[static_cast<size_t>(torn_candidate)], words * 8);
  }
  t.staged.clear();
}

bool ShadowHeap::EvictDecision(uint64_t seed, size_t region_index, size_t offset,
                               double probability) {
  uint64_t h = Mix64(seed ^ Mix64((static_cast<uint64_t>(region_index) << 48) ^
                                  static_cast<uint64_t>(offset)));
  return HashToUnit(h) < probability;
}

void ShadowHeap::EvictLines(uint64_t seed, double probability) {
  ShadowState* s = g_state;
  if (s == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(s->image_mu);
  for (size_t ri = 0; ri < s->regions.size(); ++ri) {
    ShadowRegion& r = s->regions[ri];
    for (size_t off = 0; off < r.size; off += kCacheLineSize) {
      if (EvictDecision(seed, ri, off, probability)) {
        size_t len = r.size - off < kCacheLineSize ? r.size - off : kCacheLineSize;
        std::memcpy(r.image.data() + off, r.live + off, len);
      }
    }
  }
}

std::vector<uint8_t> ShadowHeap::Capture(CrashMode mode, uint64_t seed,
                                         double evict_probability) {
  return CaptureRegion(nullptr, mode, seed, evict_probability);
}

std::vector<uint8_t> ShadowHeap::CaptureRegion(void* base, CrashMode mode, uint64_t seed,
                                               double evict_probability) {
  ShadowState* s = g_state;
  if (s == nullptr || s->regions.empty()) {
    return {};
  }
  size_t region_index = 0;
  ShadowRegion* r =
      base == nullptr ? &s->regions[0]
                      : s->Find(reinterpret_cast<uintptr_t>(base), &region_index);
  if (r == nullptr) {
    return {};
  }
  std::lock_guard<std::mutex> lock(s->image_mu);
  std::vector<uint8_t> out = r->image;
  if (mode == CrashMode::kChaos) {
    // Random cache evictions made some unflushed lines durable. The per-line
    // decision is a pure hash of (seed, region, offset) so the same seed
    // always evicts the same lines regardless of capture order or run.
    for (size_t off = 0; off < r->size; off += kCacheLineSize) {
      if (EvictDecision(seed, region_index, off, evict_probability)) {
        size_t len = r->size - off < kCacheLineSize ? r->size - off : kCacheLineSize;
        std::memcpy(out.data() + off, r->live + off, len);
      }
    }
  }
  return out;
}

}  // namespace pactree
