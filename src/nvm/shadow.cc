#include "src/nvm/shadow.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "src/common/compiler.h"
#include "src/common/random.h"

namespace pactree {
namespace {

struct StagedLine {
  uintptr_t addr;
  uint8_t bytes[kCacheLineSize];
};

struct ShadowRegion {
  uint8_t* live = nullptr;
  size_t size = 0;
  std::vector<uint8_t> image;
};

struct ShadowState {
  // Few regions (one per pool); scanned linearly.
  std::vector<ShadowRegion> regions;
  std::mutex image_mu;

  ShadowRegion* Find(uintptr_t addr) {
    for (ShadowRegion& r : regions) {
      uintptr_t base = reinterpret_cast<uintptr_t>(r.live);
      if (addr >= base && addr < base + r.size) {
        return &r;
      }
    }
    return nullptr;
  }
};

ShadowState* g_state = nullptr;
std::atomic<bool> g_active{false};

// Lines staged by clwb but not yet fenced by this thread.
thread_local std::vector<StagedLine> t_staged;

}  // namespace

void ShadowHeap::Enable(void* base, size_t size) {
  if (g_state == nullptr) {
    g_state = new ShadowState();
  }
  ShadowRegion r;
  r.live = static_cast<uint8_t*>(base);
  r.size = size;
  r.image.assign(r.live, r.live + size);
  g_state->regions.push_back(std::move(r));
  g_active.store(true, std::memory_order_release);
}

void ShadowHeap::Disable() {
  if (g_state != nullptr) {
    g_active.store(false, std::memory_order_release);
    delete g_state;
    g_state = nullptr;
  }
  t_staged.clear();
}

bool ShadowHeap::IsActive() { return g_active.load(std::memory_order_acquire); }

void ShadowHeap::OnPersist(const void* p, size_t n) {
  ShadowState* s = g_state;
  if (s == nullptr) {
    return;
  }
  uintptr_t start = CacheLineOf(p);
  uintptr_t end = reinterpret_cast<uintptr_t>(p) + n;
  for (uintptr_t line = start; line < end; line += kCacheLineSize) {
    if (s->Find(line) == nullptr) {
      continue;
    }
    // Stage the *current* contents: that is what clwb writes back. Later
    // stores to the same line are not durable unless flushed again.
    StagedLine staged;
    staged.addr = line;
    std::memcpy(staged.bytes, reinterpret_cast<const void*>(line), kCacheLineSize);
    t_staged.push_back(staged);
  }
}

void ShadowHeap::OnFence() {
  ShadowState* s = g_state;
  if (s == nullptr || t_staged.empty()) {
    t_staged.clear();
    return;
  }
  std::lock_guard<std::mutex> lock(s->image_mu);
  for (const StagedLine& staged : t_staged) {
    ShadowRegion* r = s->Find(staged.addr);
    if (r != nullptr) {
      std::memcpy(r->image.data() + (staged.addr - reinterpret_cast<uintptr_t>(r->live)),
                  staged.bytes, kCacheLineSize);
    }
  }
  t_staged.clear();
}

std::vector<uint8_t> ShadowHeap::Capture(CrashMode mode, uint64_t seed,
                                         double evict_probability) {
  return CaptureRegion(nullptr, mode, seed, evict_probability);
}

std::vector<uint8_t> ShadowHeap::CaptureRegion(void* base, CrashMode mode, uint64_t seed,
                                               double evict_probability) {
  ShadowState* s = g_state;
  if (s == nullptr || s->regions.empty()) {
    return {};
  }
  ShadowRegion* r = base == nullptr ? &s->regions[0]
                                    : s->Find(reinterpret_cast<uintptr_t>(base));
  if (r == nullptr) {
    return {};
  }
  std::lock_guard<std::mutex> lock(s->image_mu);
  std::vector<uint8_t> out = r->image;
  if (mode == CrashMode::kChaos) {
    // Random cache evictions made some unflushed lines durable.
    Rng rng(seed);
    for (size_t off = 0; off < r->size; off += kCacheLineSize) {
      if (rng.NextDouble() < evict_probability) {
        std::memcpy(out.data() + off, r->live + off, kCacheLineSize);
      }
    }
  }
  return out;
}

}  // namespace pactree
