#include "src/nvm/pool_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/nvm/address_map.h"

namespace pactree {

NvmPoolFile& NvmPoolFile::operator=(NvmPoolFile&& o) noexcept {
  if (this != &o) {
    Close();
    base_ = std::exchange(o.base_, nullptr);
    size_ = std::exchange(o.size_, 0);
    node_ = std::exchange(o.node_, 0);
    path_ = std::move(o.path_);
    o.path_.clear();
    last_error_ = std::move(o.last_error_);
    o.last_error_.clear();
  }
  return *this;
}

void NvmPoolFile::SetError(const char* op, const std::string& path, int err) {
  last_error_ = std::string(op) + "(" + path + "): " +
                (err != 0 ? std::strerror(err) : "unexpected file state");
}

bool NvmPoolFile::Create(const std::string& path, size_t size, uint32_t node,
                         uint16_t pool_id) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError("open", path, errno);
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    SetError("ftruncate", path, errno);
    ::close(fd);
    return false;
  }
  return MapFd(fd, size, node, pool_id, path);
}

bool NvmPoolFile::Open(const std::string& path, uint32_t node, uint16_t pool_id) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    SetError("open", path, errno);
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    SetError("fstat", path, errno);
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    SetError("fstat", path, 0);
    last_error_ = "fstat(" + path + "): pool file is empty";
    ::close(fd);
    return false;
  }
  return MapFd(fd, static_cast<size_t>(st.st_size), node, pool_id, path);
}

bool NvmPoolFile::MapFd(int fd, size_t size, uint32_t node, uint16_t pool_id,
                        const std::string& path) {
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    SetError("mmap", path, errno);
    return false;
  }
  Close();
  last_error_.clear();
  base_ = base;
  size_ = size;
  node_ = node;
  path_ = path;
  RegisterNvmRange(base_, size_, node_, pool_id);
  return true;
}

void NvmPoolFile::Close() {
  if (base_ != nullptr) {
    UnregisterNvmRange(base_);
    ::munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
  }
}

bool NvmPoolFile::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void NvmPoolFile::Remove(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace pactree
