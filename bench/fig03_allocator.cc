// Figure 3: persistent-memory allocation cost (guideline GS1).
//
// PDL-ART insert-only load with the crash-consistent allocator (PMDK stand-in:
// persistent logs + malloc-to, ~6 flushes per alloc/free pair) vs. the
// transient mode (the paper's modified Jemalloc: NVM space, no crash
// consistency). The paper reports a ~2x gap.
#include <thread>
#include <atomic>

#include "bench/bench_common.h"
#include "src/common/compiler.h"
#include "src/nvm/topology.h"
#include "src/art/art.h"
#include "src/common/clock.h"
#include "src/sync/gen_sync.h"
#include "src/workload/keyset.h"

using namespace pactree;

namespace {

double RunLoad(bool crash_consistent, uint64_t keys, uint32_t threads,
               uint64_t* flushes_out) {
  PmemHeap::Destroy("fig03");
  PmemHeapOptions h;
  h.pool_id_base = 400;
  h.pool_size = std::max<size_t>(256ULL << 20, keys * 512);
  h.crash_consistent = crash_consistent;
  auto heap = PmemHeap::OpenOrCreate("fig03", h);
  AdvanceGenerations({heap.get()});
  PdlArt art(heap.get(), heap->Root<ArtTreeRoot>());
  KeySet ks(/*string_keys=*/false);

  NvmStatsSnapshot before = GlobalNvmStats();
  std::vector<std::thread> workers;
  std::atomic<bool> start{false};
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      SetCurrentNumaNode(t % GlobalNvmConfig().numa_nodes);
      while (!start.load(std::memory_order_acquire)) {
        CpuRelax();
      }
      uint64_t from = keys * t / threads;
      uint64_t to = keys * (t + 1) / threads;
      for (uint64_t i = from; i < to; ++i) {
        art.Insert(ks.At(i), i);
      }
    });
  }
  uint64_t t0 = NowNs();
  start.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  double secs = static_cast<double>(NowNs() - t0) / 1e9;
  *flushes_out = (GlobalNvmStats() - before).flushes;
  EpochManager::Instance().DrainAll();
  heap.reset();
  PmemHeap::Destroy("fig03");
  return static_cast<double>(keys) / 1e6 / secs;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 3", "PDL-ART insert-only: crash-consistent (PMDK-like) vs transient (Jemalloc-like) allocator");
  BenchScale scale = ReadScale(1'000'000, 1'000'000, "4");
  ConfigureNvmMachine();
  uint32_t threads = scale.threads.back();
  std::printf("%-14s %10s %14s %16s\n", "allocator", "threads", "Mops/s", "flushes/op");
  uint64_t flushes = 0;
  double tr = RunLoad(/*crash_consistent=*/false, scale.keys, threads, &flushes);
  std::printf("%-14s %10u %14.3f %16.2f\n", "jemalloc-like", threads, tr,
              static_cast<double>(flushes) / static_cast<double>(scale.keys));
  double cc = RunLoad(/*crash_consistent=*/true, scale.keys, threads, &flushes);
  std::printf("%-14s %10u %14.3f %16.2f\n", "pmdk-like", threads, cc,
              static_cast<double>(flushes) / static_cast<double>(scale.keys));
  std::printf("# paper: ~2x drop with the crash-consistent allocator; measured %.2fx\n",
              tr / cc);
  return 0;
}
