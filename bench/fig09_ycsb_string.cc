// Figure 9: YCSB scalability, STRING keys (23 bytes), Zipfian distribution.
//
// PACTree vs PDL-ART vs BzTree vs FastFair across L-A / W-A / W-B / W-C / W-E.
// FPTree is excluded here, as in the paper (the authors' binary has no
// variable-length key support).
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 9", "YCSB (string keys, Zipfian) thread-scaling, all indexes");
  BenchScale scale = ReadScale(1'000'000, 300'000);
  YcsbDriver::PrintHeader();
  for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kBzTree,
                         IndexKind::kFastFair}) {
    for (uint32_t t : scale.threads) {
      ConfigureNvmMachine();
      YcsbSpec spec;
      spec.record_count = scale.keys;
      spec.op_count = scale.ops;
      spec.threads = t;
      spec.string_keys = true;
      spec.zipfian = true;

      // L-A is the measured load phase.
      spec.kind = YcsbKind::kLoadA;
      IndexFactoryOptions fopts;
      auto index = CreateIndex(kind, [&] {
        IndexFactoryOptions o;
        o.string_keys = true;
        o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
        return o;
      }());
      if (index == nullptr) {
        std::fprintf(stderr, "skipping %s\n", IndexKindName(kind));
        continue;
      }
      YcsbResult load = YcsbDriver::Load(index.get(), spec);
      YcsbDriver::PrintRow(index->Name(), spec, load);
      index->Drain();

      for (YcsbKind wl : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC, YcsbKind::kE}) {
        spec.kind = wl;
        // --batch=N batches the read-heavy mixes (B/C/E) through
        // MultiGet/MultiScan; A stays per-key (write-dominated).
        spec.read_batch = wl == YcsbKind::kA ? 1 : BenchReadBatch();
        YcsbResult r = YcsbDriver::Run(index.get(), spec);
        YcsbDriver::PrintRow(index->Name(), spec, r);
        BenchJsonAdd(YcsbJsonRow(index->Name(), spec, r, index.get()));
      }
      CleanupIndex(std::move(index), kind);
    }
  }
  std::printf("# paper shape: PACTree leads every workload (up to 4x on writes via\n"
              "# async SMOs, up to 3.2x on reads via the trie search layer)\n");
  BenchJsonWrite("fig09_ycsb_string");
  return 0;
}
