// §6.8: crash-recovery evaluation (the paper's SIGKILL methodology).
//
// Phase 1 -- repeatedly: fork a child that loads keys into PACTree, SIGKILL
// it at a random instant, reopen the pools in the parent, run recovery, and
// verify that every acknowledged key is readable. Also reports recovery time
// (the NVM-resident search layer makes it near-instant). PAC_CRASHES sets the
// iteration count (paper: 100).
//
// Phase 2 -- crash-point-resolved recovery timing: the fault-injection layer
// (src/nvm/fault.h) crashes one insert-that-splits at *every* persistence
// event it issues and times PacTree::Open on the rebuilt pool files, so the
// cost of recovery is resolved by what was in flight (allocation logs, SMO
// logs, half-published splits) rather than averaged over random SIGKILL
// instants. PAC_SWEEP=0 skips the phase.
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/index/range_index.h"
#include "src/nvm/fault.h"
#include "src/nvm/shadow.h"
#include "src/pactree/pactree.h"

using namespace pactree;

namespace {

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::pwrite(fd, bytes.data() + off, bytes.size() - off,
                         static_cast<off_t>(off));
    if (w <= 0) {
      break;
    }
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

std::unique_ptr<RangeIndex> OpenSweepIndex(bool open_existing) {
  IndexFactoryOptions o;
  o.name = "sec68_sweep";
  o.pool_id_base = 440;
  o.pool_size = 64ULL << 20;
  o.per_numa_pools = false;
  o.pactree_async_update = false;  // SMO persistence events land on this thread
  o.open_existing = open_existing;
  return CreateIndex(IndexKind::kPacTree, o);
}

// Crashes the trace's insert at event |crash_event| (0 = count only), reopens
// from the captured images, and reports the recovery time in |recover_ns|.
// Returns the window's event count.
uint64_t TimeCrashPoint(uint64_t crash_event, uint64_t* recover_ns) {
  DestroyIndex(IndexKind::kPacTree, "sec68_sweep");
  auto index = OpenSweepIndex(/*open_existing=*/false);
  if (index == nullptr) {
    return 0;
  }
  // Base state: one data node at capacity, so the window insert splits it.
  for (uint64_t i = 1; i <= 64; ++i) {
    index->Insert(Key::FromInt(i * 10), i);
  }
  index->Drain();

  struct PoolInfo {
    std::string path;
    void* base;
  };
  std::vector<PoolInfo> pools;
  for (PmemHeap* heap : index->Heaps()) {
    for (uint32_t i = 0; i < heap->pool_count(); ++i) {
      PmemPool* pool = heap->pool(i);
      ShadowHeap::Enable(pool->base(), pool->size());
      pools.push_back({pool->path(), pool->base()});
    }
  }
  CrashPlan plan;
  plan.mode = FaultMode::kStrict;
  plan.crash_event = crash_event;
  plan.seed = crash_event;
  FaultInjector::Arm(plan);
  index->Insert(Key::FromInt(645), 645);
  uint64_t events = FaultInjector::EventCount();
  FaultInjector::Disarm();

  std::vector<std::vector<uint8_t>> images;
  images.reserve(pools.size());
  for (const PoolInfo& p : pools) {
    images.push_back(ShadowHeap::CaptureRegion(p.base, CrashMode::kStrict));
  }
  index.reset();
  EpochManager::Instance().DrainAll();
  ShadowHeap::Disable();
  for (size_t i = 0; i < pools.size(); ++i) {
    OverwriteFile(pools[i].path, images[i]);
  }

  uint64_t t0 = NowNs();
  auto recovered = OpenSweepIndex(/*open_existing=*/true);
  *recover_ns = NowNs() - t0;
  if (recovered == nullptr) {
    return 0;
  }
  recovered.reset();
  EpochManager::Instance().DrainAll();
  return events;
}

int RunCrashPointSweep() {
  std::printf("\n# crash-point-resolved recovery (PACTree insert+split, strict mode)\n");
  uint64_t ns = 0;
  uint64_t n = TimeCrashPoint(/*crash_event=*/0, &ns);
  if (n == 0) {
    std::printf("# sweep setup failed\n");
    return 1;
  }
  std::vector<double> ms(n + 1, 0.0);
  for (uint64_t k = 1; k <= n; ++k) {
    if (TimeCrashPoint(k, &ns) == 0) {
      std::printf("# recovery failed at K=%llu\n", static_cast<unsigned long long>(k));
      return 1;
    }
    ms[k] = static_cast<double>(ns) / 1e6;
  }
  std::printf("%-8s %14s\n", "K", "recover(ms)");
  for (uint64_t k = 1; k <= n; ++k) {
    std::printf("%-8llu %14.2f\n", static_cast<unsigned long long>(k), ms[k]);
  }
  double lo = ms[1], hi = ms[1], sum = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    lo = std::min(lo, ms[k]);
    hi = std::max(hi, ms[k]);
    sum += ms[k];
  }
  std::printf("# %llu crash points: recovery min %.2f ms / mean %.2f ms / max %.2f ms\n",
              static_cast<unsigned long long>(n), lo, sum / static_cast<double>(n), hi);
  DestroyIndex(IndexKind::kPacTree, "sec68_sweep");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Section 6.8", "SIGKILL crash-recovery loop");
  int iterations = static_cast<int>(EnvU64("PAC_CRASHES", 10));
  ConfigureNvmMachine(/*latency=*/false);
  GlobalNvmConfig().numa_nodes = 1;

  const std::string progress_path = NvmConfig::DefaultPoolDir() + "/sec68.progress";
  PacTreeOptions opts;
  opts.name = "sec68";
  opts.pool_id_base = 430;
  opts.pool_size = 256ULL << 20;

  std::printf("%-6s %12s %14s %14s %8s\n", "iter", "acked_keys", "recover(ms)",
              "verify(ms)", "result");
  int failures = 0;
  Rng rng(7);
  for (int iter = 0; iter < iterations; ++iter) {
    PacTree::Destroy("sec68");
    ::unlink(progress_path.c_str());
    int pfd = ::open(progress_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (pfd < 0 || ::ftruncate(pfd, 4096) != 0) {
      return 1;
    }
    auto* progress = static_cast<volatile uint64_t*>(
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, pfd, 0));
    ::close(pfd);

    pid_t pid = ::fork();
    if (pid == 0) {
      auto tree = PacTree::Open(opts);
      if (tree == nullptr) {
        _exit(1);
      }
      for (uint64_t i = 0;; ++i) {
        tree->Insert(Key::FromInt(i), i * 2 + 1);
        *progress = i + 1;
      }
    }
    ::usleep(static_cast<useconds_t>(30000 + rng.Uniform(200000)));
    ::kill(pid, SIGKILL);
    int status;
    ::waitpid(pid, &status, 0);

    uint64_t acked = *progress;
    ::munmap(const_cast<uint64_t*>(progress), 4096);
    uint64_t t0 = NowNs();
    auto tree = PacTree::Open(opts);
    uint64_t t1 = NowNs();
    bool ok = tree != nullptr;
    uint64_t bad = 0;
    if (ok) {
      for (uint64_t i = 0; i < acked; ++i) {
        uint64_t v = 0;
        if (tree->Lookup(Key::FromInt(i), &v) != Status::kOk || v != i * 2 + 1) {
          bad++;
        }
      }
      std::string why;
      if (!tree->CheckInvariants(&why)) {
        std::fprintf(stderr, "invariant violation: %s\n", why.c_str());
        bad++;
      }
    }
    uint64_t t2 = NowNs();
    std::printf("%-6d %12llu %14.2f %14.2f %8s\n", iter,
                static_cast<unsigned long long>(acked),
                static_cast<double>(t1 - t0) / 1e6, static_cast<double>(t2 - t1) / 1e6,
                ok && bad == 0 ? "OK" : "FAIL");
    std::fflush(stdout);
    if (!ok || bad != 0) {
      failures++;
    }
    tree.reset();
    EpochManager::Instance().DrainAll();
  }
  PacTree::Destroy("sec68");
  ::unlink(progress_path.c_str());
  std::printf("# %d/%d recoveries verified every acknowledged key (paper: 100/100)\n",
              iterations - failures, iterations);
  if (EnvU64("PAC_SWEEP", 1) != 0 && RunCrashPointSweep() != 0) {
    failures++;
  }
  return failures == 0 ? 0 : 1;
}
