// §6.8: crash-recovery evaluation (the paper's SIGKILL methodology).
//
// Repeatedly: fork a child that loads keys into PACTree, SIGKILL it at a
// random instant, reopen the pools in the parent, run recovery, and verify
// that every acknowledged key is readable. Also reports recovery time (the
// NVM-resident search layer makes it near-instant). PAC_CRASHES sets the
// iteration count (paper: 100).
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/pactree/pactree.h"

using namespace pactree;

int main() {
  Banner("Section 6.8", "SIGKILL crash-recovery loop");
  int iterations = static_cast<int>(EnvU64("PAC_CRASHES", 10));
  ConfigureNvmMachine(/*latency=*/false);
  GlobalNvmConfig().numa_nodes = 1;

  const std::string progress_path = NvmConfig::DefaultPoolDir() + "/sec68.progress";
  PacTreeOptions opts;
  opts.name = "sec68";
  opts.pool_id_base = 430;
  opts.pool_size = 256ULL << 20;

  std::printf("%-6s %12s %14s %14s %8s\n", "iter", "acked_keys", "recover(ms)",
              "verify(ms)", "result");
  int failures = 0;
  Rng rng(7);
  for (int iter = 0; iter < iterations; ++iter) {
    PacTree::Destroy("sec68");
    ::unlink(progress_path.c_str());
    int pfd = ::open(progress_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (pfd < 0 || ::ftruncate(pfd, 4096) != 0) {
      return 1;
    }
    auto* progress = static_cast<volatile uint64_t*>(
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, pfd, 0));
    ::close(pfd);

    pid_t pid = ::fork();
    if (pid == 0) {
      auto tree = PacTree::Open(opts);
      if (tree == nullptr) {
        _exit(1);
      }
      for (uint64_t i = 0;; ++i) {
        tree->Insert(Key::FromInt(i), i * 2 + 1);
        *progress = i + 1;
      }
    }
    ::usleep(static_cast<useconds_t>(30000 + rng.Uniform(200000)));
    ::kill(pid, SIGKILL);
    int status;
    ::waitpid(pid, &status, 0);

    uint64_t acked = *progress;
    ::munmap(const_cast<uint64_t*>(progress), 4096);
    uint64_t t0 = NowNs();
    auto tree = PacTree::Open(opts);
    uint64_t t1 = NowNs();
    bool ok = tree != nullptr;
    uint64_t bad = 0;
    if (ok) {
      for (uint64_t i = 0; i < acked; ++i) {
        uint64_t v = 0;
        if (tree->Lookup(Key::FromInt(i), &v) != Status::kOk || v != i * 2 + 1) {
          bad++;
        }
      }
      std::string why;
      if (!tree->CheckInvariants(&why)) {
        std::fprintf(stderr, "invariant violation: %s\n", why.c_str());
        bad++;
      }
    }
    uint64_t t2 = NowNs();
    std::printf("%-6d %12llu %14.2f %14.2f %8s\n", iter,
                static_cast<unsigned long long>(acked),
                static_cast<double>(t1 - t0) / 1e6, static_cast<double>(t2 - t1) / 1e6,
                ok && bad == 0 ? "OK" : "FAIL");
    std::fflush(stdout);
    if (!ok || bad != 0) {
      failures++;
    }
    tree.reset();
    EpochManager::Instance().DrainAll();
  }
  PacTree::Destroy("sec68");
  ::unlink(progress_path.c_str());
  std::printf("# %d/%d recoveries verified every acknowledged key (paper: 100/100)\n",
              iterations - failures, iterations);
  return failures == 0 ? 0 : 1;
}
