// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Scale defaults are sized for this repository's single-core CI-style
// environment; the paper's full scale is reached with environment variables:
//   PAC_KEYS=64m PAC_OPS=64m PAC_THREADS="1 16 32 48 64 80 96 112" <bench>
// Each binary prints the rows/series of the corresponding paper figure.
#ifndef PACTREE_BENCH_BENCH_COMMON_H_
#define PACTREE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/absorb/absorb.h"
#include "src/common/env.h"
#include "src/index/range_index.h"
#include "src/nvm/config.h"
#include "src/nvm/bandwidth.h"
#include "src/nvm/topology.h"
#include "src/runtime/maintenance.h"
#include "src/sync/epoch.h"
#include "src/workload/ycsb.h"

namespace pactree {

// Flag/config state shared by every figure binary (set by ParseBenchFlags).
inline std::string& BenchJsonPath() {
  static std::string path;  // empty = no JSON output
  return path;
}
inline uint64_t& BenchReadBatch() {
  static uint64_t batch = 1;  // 1 = per-key ops; >1 = MultiGet/MultiScan
  return batch;
}
inline bool& BenchPinEnabled() {
  static bool pin = false;
  return pin;
}

inline constexpr bool BenchSimdFingerprints() {
#if defined(PACTREE_AVX2)
  return true;
#else
  return false;
#endif
}

// Flags shared by every figure binary:
//   --pin         pin worker threads to CPUs, round-robin across the logical
//                 NUMA nodes (also enabled by PAC_PIN=1). Placement is
//                 deterministic: worker i lands on logical node i % nodes and
//                 on seat i / nodes of that node's contiguous CPU group, so a
//                 rerun reproduces the same thread-to-CPU map.
//   --updaters=N  run N PACTree background updater services (also settable
//                 via PAC_UPDATERS; default is one per logical NUMA node).
//   --absorb      route PACTree writes through the DRAM absorb buffer
//                 (src/absorb): per-NUMA shards + persistent op-log, batched
//                 sorted drains (also enabled by PAC_ABSORB=1).
//   --batch=N     drive read-heavy YCSB phases through the batched read
//                 pipeline: lookups buffer into MultiGet(N) and scans into
//                 MultiScan(N) (also settable via PAC_BATCH).
//   --json=PATH   append one machine-readable JSON document per binary run to
//                 PATH (throughput, media bytes/op, latency percentiles, and
//                 each index's StatsJson counters) for perf trajectories.
//
// Fault-injection / pressure env knobs (env-only; see DESIGN.md §6g):
//   PAC_FAILPOINTS        arm allocation fail points for the run, e.g.
//                         "pmem/alloc=hit:100;absorb/ring_full=prob:0.001".
//                         Triggers: hit:N (N-th hit), every:N, prob:P[:seed].
//   PAC_PRESSURE_SOFT/HARD/RESUME
//                         pool-pressure watermarks in percent (defaults
//                         85/95/90): soft kicks emergency absorb drains, hard
//                         flips the tree read-only (writes return kFull),
//                         resume re-enables writes once usage falls back.
inline void ParseBenchFlags(int argc, char** argv) {
  bool pin = EnvU64("PAC_PIN", 0) != 0;
  BenchReadBatch() = std::max<uint64_t>(1, EnvU64("PAC_BATCH", 1));
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg == "--pin") {
      pin = true;
    } else if (arg.rfind("--updaters=", 0) == 0) {
      // Indexes read PAC_UPDATERS at Open; routing the flag through the env
      // var keeps one resolution path for flag, env, and library callers.
      setenv("PAC_UPDATERS", arg.substr(11).c_str(), 1);
    } else if (arg == "--absorb") {
      setenv("PAC_ABSORB", "1", 1);  // same env-var resolution path
    } else if (arg.rfind("--batch=", 0) == 0) {
      BenchReadBatch() = std::max<uint64_t>(1, std::strtoull(arg.substr(8).c_str(), nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      BenchJsonPath() = arg.substr(7);
    }
  }
  SetThreadPinning(pin);
  BenchPinEnabled() = pin;
}

struct BenchScale {
  uint64_t keys;
  uint64_t ops;
  std::vector<uint32_t> threads;
};

inline BenchScale ReadScale(uint64_t default_keys = 1'000'000,
                            uint64_t default_ops = 1'000'000,
                            const std::string& default_threads = "1 2 4") {
  BenchScale s;
  s.keys = EnvU64("PAC_KEYS", default_keys);
  s.ops = EnvU64("PAC_OPS", default_ops);
  std::istringstream in(EnvStr("PAC_THREADS", default_threads));
  uint32_t t;
  while (in >> t) {
    s.threads.push_back(t);
  }
  if (s.threads.empty()) {
    s.threads.push_back(1);
  }
  return s;
}

// Applies the default emulated-NVM machine model used by the figure benches
// (2 NUMA nodes, snoop coherence, latency emulation on; bandwidth throttling
// opt-in per figure because it dominates wall-clock).
inline void ConfigureNvmMachine(bool latency = true, bool bandwidth = false) {
  NvmConfig& cfg = GlobalNvmConfig();
  cfg = NvmConfig();
  cfg.numa_nodes = 2;
  cfg.emulate_latency = latency;
  cfg.emulate_bandwidth = bandwidth;
  BandwidthModel::Instance().Reconfigure();
}

inline void Banner(const char* fig, const char* what) {
  std::printf("# %s -- %s\n", fig, what);
  std::printf("# scale: PAC_KEYS / PAC_OPS / PAC_THREADS environment variables\n");
  // A/B hygiene: numbers are meaningless without knowing whether the SIMD
  // fingerprint probe was compiled in and how the run was configured.
  std::printf("# config: fingerprints=%s pin=%d absorb=%s updaters=%s batch=%llu\n",
              BenchSimdFingerprints() ? "avx2" : "scalar",
              BenchPinEnabled() ? 1 : 0,
              EnvU64("PAC_ABSORB", 0) != 0 ? "on" : "off",
              EnvStr("PAC_UPDATERS", "auto").c_str(),
              static_cast<unsigned long long>(BenchReadBatch()));
  std::printf("# faults: failpoints=%s pressure=%llu/%llu/%llu\n",
              EnvStr("PAC_FAILPOINTS", "none").c_str(),
              static_cast<unsigned long long>(EnvU64("PAC_PRESSURE_SOFT", 85)),
              static_cast<unsigned long long>(EnvU64("PAC_PRESSURE_HARD", 95)),
              static_cast<unsigned long long>(EnvU64("PAC_PRESSURE_RESUME", 90)));
  std::fflush(stdout);
}

// --- machine-readable perf baselines (--json=PATH) --------------------------
// Benches build one JsonRow per measured run, then BenchJsonWrite() renders
// {"bench":..., "config":{...}, "rows":[...]} to the --json path at exit.

class JsonRow {
 public:
  JsonRow& U64(const char* k, uint64_t v) { return Raw(k, std::to_string(v)); }
  JsonRow& F64(const char* k, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return Raw(k, buf);
  }
  JsonRow& Str(const char* k, const std::string& v) {
    return Raw(k, "\"" + v + "\"");
  }
  // |json| must already be a rendered JSON value (e.g. RangeIndex::StatsJson).
  JsonRow& Raw(const char* k, const std::string& json) {
    if (!body_.empty()) {
      body_ += ",";
    }
    body_ += "\"";
    body_ += k;
    body_ += "\":";
    body_ += json;
    return *this;
  }
  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

inline std::vector<std::string>& BenchJsonRows() {
  static std::vector<std::string> rows;
  return rows;
}

inline void BenchJsonAdd(const JsonRow& row) {
  if (!BenchJsonPath().empty()) {
    BenchJsonRows().push_back(row.Render());
  }
}

inline void BenchJsonWrite(const char* bench) {
  if (BenchJsonPath().empty()) {
    return;
  }
  std::FILE* f = std::fopen(BenchJsonPath().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", BenchJsonPath().c_str());
    return;
  }
  JsonRow config;
  config.Str("fingerprints", BenchSimdFingerprints() ? "avx2" : "scalar")
      .U64("pin", BenchPinEnabled() ? 1 : 0)
      .U64("absorb", EnvU64("PAC_ABSORB", 0) != 0 ? 1 : 0)
      .Str("updaters", EnvStr("PAC_UPDATERS", "auto"))
      .U64("batch", BenchReadBatch());
  std::fprintf(f, "{\"bench\":\"%s\",\"config\":%s,\"rows\":[", bench,
               config.Render().c_str());
  for (size_t i = 0; i < BenchJsonRows().size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "" : ",", BenchJsonRows()[i].c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("# json: %s (%zu rows)\n", BenchJsonPath().c_str(),
              BenchJsonRows().size());
}

// The standard JSON row for one YCSB run phase: throughput, media bytes/op,
// latency percentiles, and the index's own counters.
inline JsonRow YcsbJsonRow(const std::string& index_name, const YcsbSpec& spec,
                           const YcsbResult& r, const RangeIndex* index) {
  JsonRow row;
  double ops = static_cast<double>(r.ops == 0 ? 1 : r.ops);
  row.Str("index", index_name)
      .Str("workload", YcsbKindName(spec.kind))
      .U64("threads", spec.threads)
      .U64("keys", spec.record_count)
      .U64("ops", r.ops)
      .U64("batch", spec.read_batch)
      .U64("zipfian", spec.zipfian ? 1 : 0)
      .F64("mops", r.mops)
      .F64("read_bytes_per_op", static_cast<double>(r.nvm.media_read_bytes) / ops)
      .F64("write_bytes_per_op", static_cast<double>(r.nvm.media_write_bytes) / ops)
      .U64("read_prefetches", r.nvm.read_prefetches)
      .U64("p50_ns", r.latency.Percentile(50))
      .U64("p99_ns", r.latency.Percentile(99));
  if (index != nullptr) {
    row.Raw("index_stats", index->StatsJson());
  }
  return row;
}

// Creates + loads an index, returning it ready for a run phase.
inline std::unique_ptr<RangeIndex> MakeLoaded(IndexKind kind, const YcsbSpec& spec,
                                              IndexFactoryOptions opts = {}) {
  if (opts.pool_size == 512ULL << 20) {
    // Size pools generously for the requested key count (3 KiB/key covers the
    // fattest index here, plus slack for 2 sub-pools).
    opts.pool_size = std::max<size_t>(512ULL << 20, spec.record_count * 3072 * 2);
  }
  opts.string_keys = spec.string_keys;
  auto index = CreateIndex(kind, opts);
  if (index == nullptr) {
    std::fprintf(stderr, "failed to create %s\n", IndexKindName(kind));
    return nullptr;
  }
  YcsbDriver::Load(index.get(), spec);
  index->Drain();
  return index;
}

// Per-service maintenance report: one comment row per background service whose
// name starts with |prefix| ("" = every registered service). Benches call this
// after a run phase, before CleanupIndex tears the services down.
inline void PrintMaintenanceStats(const std::string& prefix = "") {
  for (const MaintenanceStats& s :
       MaintenanceRegistry::Instance().StatsSnapshot(prefix)) {
    std::printf(
        "# service %-24s node=%-2d passes=%llu applied=%llu idle_wakeups=%llu "
        "drains=%llu pass_p50_us=%.1f pass_p99_us=%.1f\n",
        s.name.c_str(), s.numa_node, static_cast<unsigned long long>(s.passes),
        static_cast<unsigned long long>(s.items),
        static_cast<unsigned long long>(s.idle_wakeups),
        static_cast<unsigned long long>(s.drains),
        s.pass_latency.Percentile(50) / 1e3, s.pass_latency.Percentile(99) / 1e3);
  }
  std::fflush(stdout);
}

// Write-absorption counter report (companion to the per-service rows above,
// which cover the drain services themselves via prefix "<name>/absorb").
// All-zero when absorb is off.
inline void PrintAbsorbStats(const AbsorbStats& a) {
  std::printf(
      "# absorb staged=%llu drained=%llu batches=%llu lookup_hits=%llu "
      "ring_full_waits=%llu replayed=%llu pending=%llu\n",
      static_cast<unsigned long long>(a.staged),
      static_cast<unsigned long long>(a.drained),
      static_cast<unsigned long long>(a.batches),
      static_cast<unsigned long long>(a.lookup_hits),
      static_cast<unsigned long long>(a.ring_full_waits),
      static_cast<unsigned long long>(a.replayed),
      static_cast<unsigned long long>(a.pending));
  std::fflush(stdout);
}

inline void CleanupIndex(std::unique_ptr<RangeIndex> index, IndexKind kind) {
  std::string name = index->Name();
  index.reset();
  EpochManager::Instance().DrainAll();
  DestroyIndex(kind, "");
}

}  // namespace pactree

#endif  // PACTREE_BENCH_BENCH_COMMON_H_
