// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Scale defaults are sized for this repository's single-core CI-style
// environment; the paper's full scale is reached with environment variables:
//   PAC_KEYS=64m PAC_OPS=64m PAC_THREADS="1 16 32 48 64 80 96 112" <bench>
// Each binary prints the rows/series of the corresponding paper figure.
#ifndef PACTREE_BENCH_BENCH_COMMON_H_
#define PACTREE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/absorb/absorb.h"
#include "src/common/env.h"
#include "src/index/range_index.h"
#include "src/nvm/config.h"
#include "src/nvm/bandwidth.h"
#include "src/nvm/topology.h"
#include "src/runtime/maintenance.h"
#include "src/sync/epoch.h"
#include "src/workload/ycsb.h"

namespace pactree {

// Flags shared by every figure binary:
//   --pin         pin worker threads to CPUs, round-robin across the logical
//                 NUMA nodes (also enabled by PAC_PIN=1). Placement is
//                 deterministic: worker i lands on logical node i % nodes and
//                 on seat i / nodes of that node's contiguous CPU group, so a
//                 rerun reproduces the same thread-to-CPU map.
//   --updaters=N  run N PACTree background updater services (also settable
//                 via PAC_UPDATERS; default is one per logical NUMA node).
//   --absorb      route PACTree writes through the DRAM absorb buffer
//                 (src/absorb): per-NUMA shards + persistent op-log, batched
//                 sorted drains (also enabled by PAC_ABSORB=1).
inline void ParseBenchFlags(int argc, char** argv) {
  bool pin = EnvU64("PAC_PIN", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg == "--pin") {
      pin = true;
    } else if (arg.rfind("--updaters=", 0) == 0) {
      // Indexes read PAC_UPDATERS at Open; routing the flag through the env
      // var keeps one resolution path for flag, env, and library callers.
      setenv("PAC_UPDATERS", arg.substr(11).c_str(), 1);
    } else if (arg == "--absorb") {
      setenv("PAC_ABSORB", "1", 1);  // same env-var resolution path
    }
  }
  SetThreadPinning(pin);
}

struct BenchScale {
  uint64_t keys;
  uint64_t ops;
  std::vector<uint32_t> threads;
};

inline BenchScale ReadScale(uint64_t default_keys = 1'000'000,
                            uint64_t default_ops = 1'000'000,
                            const std::string& default_threads = "1 2 4") {
  BenchScale s;
  s.keys = EnvU64("PAC_KEYS", default_keys);
  s.ops = EnvU64("PAC_OPS", default_ops);
  std::istringstream in(EnvStr("PAC_THREADS", default_threads));
  uint32_t t;
  while (in >> t) {
    s.threads.push_back(t);
  }
  if (s.threads.empty()) {
    s.threads.push_back(1);
  }
  return s;
}

// Applies the default emulated-NVM machine model used by the figure benches
// (2 NUMA nodes, snoop coherence, latency emulation on; bandwidth throttling
// opt-in per figure because it dominates wall-clock).
inline void ConfigureNvmMachine(bool latency = true, bool bandwidth = false) {
  NvmConfig& cfg = GlobalNvmConfig();
  cfg = NvmConfig();
  cfg.numa_nodes = 2;
  cfg.emulate_latency = latency;
  cfg.emulate_bandwidth = bandwidth;
  BandwidthModel::Instance().Reconfigure();
}

inline void Banner(const char* fig, const char* what) {
  std::printf("# %s -- %s\n", fig, what);
  std::printf("# scale: PAC_KEYS / PAC_OPS / PAC_THREADS environment variables\n");
  std::fflush(stdout);
}

// Creates + loads an index, returning it ready for a run phase.
inline std::unique_ptr<RangeIndex> MakeLoaded(IndexKind kind, const YcsbSpec& spec,
                                              IndexFactoryOptions opts = {}) {
  if (opts.pool_size == 512ULL << 20) {
    // Size pools generously for the requested key count (3 KiB/key covers the
    // fattest index here, plus slack for 2 sub-pools).
    opts.pool_size = std::max<size_t>(512ULL << 20, spec.record_count * 3072 * 2);
  }
  opts.string_keys = spec.string_keys;
  auto index = CreateIndex(kind, opts);
  if (index == nullptr) {
    std::fprintf(stderr, "failed to create %s\n", IndexKindName(kind));
    return nullptr;
  }
  YcsbDriver::Load(index.get(), spec);
  index->Drain();
  return index;
}

// Per-service maintenance report: one comment row per background service whose
// name starts with |prefix| ("" = every registered service). Benches call this
// after a run phase, before CleanupIndex tears the services down.
inline void PrintMaintenanceStats(const std::string& prefix = "") {
  for (const MaintenanceStats& s :
       MaintenanceRegistry::Instance().StatsSnapshot(prefix)) {
    std::printf(
        "# service %-24s node=%-2d passes=%llu applied=%llu idle_wakeups=%llu "
        "drains=%llu pass_p50_us=%.1f pass_p99_us=%.1f\n",
        s.name.c_str(), s.numa_node, static_cast<unsigned long long>(s.passes),
        static_cast<unsigned long long>(s.items),
        static_cast<unsigned long long>(s.idle_wakeups),
        static_cast<unsigned long long>(s.drains),
        s.pass_latency.Percentile(50) / 1e3, s.pass_latency.Percentile(99) / 1e3);
  }
  std::fflush(stdout);
}

// Write-absorption counter report (companion to the per-service rows above,
// which cover the drain services themselves via prefix "<name>/absorb").
// All-zero when absorb is off.
inline void PrintAbsorbStats(const AbsorbStats& a) {
  std::printf(
      "# absorb staged=%llu drained=%llu batches=%llu lookup_hits=%llu "
      "ring_full_waits=%llu replayed=%llu pending=%llu\n",
      static_cast<unsigned long long>(a.staged),
      static_cast<unsigned long long>(a.drained),
      static_cast<unsigned long long>(a.batches),
      static_cast<unsigned long long>(a.lookup_hits),
      static_cast<unsigned long long>(a.ring_full_waits),
      static_cast<unsigned long long>(a.replayed),
      static_cast<unsigned long long>(a.pending));
  std::fflush(stdout);
}

inline void CleanupIndex(std::unique_ptr<RangeIndex> index, IndexKind kind) {
  std::string name = index->Name();
  index.reset();
  EpochManager::Instance().DrainAll();
  DestroyIndex(kind, "");
}

}  // namespace pactree

#endif  // PACTREE_BENCH_BENCH_COMMON_H_
