// Figure 5: scan throughput and NVM reads (guideline GA5).
//
// FastFair embeds sorted key-value pairs in its leaves: scans are sequential
// XPLine reads. PDL-ART chases one out-of-node record per key: random reads.
// The paper reports FastFair 1.5x faster with 1.6x fewer NVM reads.
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 5", "scan throughput and NVM reads: FastFair vs PDL-ART");
  BenchScale scale = ReadScale(1'000'000, 100'000, "4");
  uint32_t threads = scale.threads.back();
  std::printf("%-10s %10s %12s %14s %16s\n", "index", "threads", "Kscans/s",
              "nvm_read(GB)", "rd_bytes/scan");
  for (IndexKind kind : {IndexKind::kFastFair, IndexKind::kPdlArt}) {
    ConfigureNvmMachine();
    YcsbSpec spec;
    spec.kind = YcsbKind::kE;
    spec.record_count = scale.keys;
    spec.op_count = scale.ops;
    spec.threads = threads;
    spec.string_keys = false;
    spec.zipfian = false;
    spec.scan_max_len = 100;
    spec.read_batch = BenchReadBatch();
    auto index = MakeLoaded(kind, spec);
    if (index == nullptr) {
      return 1;
    }
    YcsbResult r = YcsbDriver::Run(index.get(), spec);
    std::printf("%-10s %10u %12.1f %14.3f %16.1f\n", index->Name().c_str(), threads,
                r.mops * 1000, static_cast<double>(r.nvm.media_read_bytes) / 1e9,
                static_cast<double>(r.nvm.media_read_bytes) / static_cast<double>(r.ops));
    std::fflush(stdout);
    BenchJsonAdd(YcsbJsonRow(index->Name(), spec, r, index.get()));
    CleanupIndex(std::move(index), kind);
  }
  std::printf("# paper shape: FastFair ~1.5x faster scans with ~1.6x fewer reads\n");
  BenchJsonWrite("fig05_scan_bw");
  return 0;
}
