// Figure 4 + the §3.3 analytic model (Eq. 1/2, guideline GA1).
//
// FastFair (B+-tree) vs PDL-ART (trie), 100% lookups (YCSB-C), integer and
// string keys: throughput and the total NVM media reads. The trie compares
// partial keys per level and should read several times less than the B+-tree,
// especially for string keys (out-of-node key records).
#include <cmath>

#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 4", "lookup throughput and NVM reads: FastFair vs PDL-ART");

  // --- Eq. (1)/(2) analytic model table -----------------------------------
  std::printf("# analytic worst-case NVM IO per lookup (Eq. 1 vs Eq. 2):\n");
  std::printf("# %10s %6s %6s %14s %12s %8s\n", "K", "F_bt", "F_trie", "BW_btree(B)",
              "BW_trie(B)", "ratio");
  for (double kkeys : {1e6, 1e8}) {
    for (double s : {8.0, 23.0}) {
      double f_bt = 32, f_trie = 256;
      double bw_bt = std::ceil(std::log(kkeys) / std::log(f_bt)) * std::log2(f_bt) * s;
      double bw_trie = std::log2(f_trie) * s;  // partial-key cmp/level + 1 full cmp
      std::printf("# %10.0f %6.0f %6.0f %14.0f %12.0f %8.1fx  (S=%.0fB)\n", kkeys,
                  f_bt, f_trie, bw_bt, bw_trie, bw_bt / bw_trie, s);
    }
  }

  BenchScale scale = ReadScale(1'000'000, 500'000, "4");
  uint32_t threads = scale.threads.back();
  std::printf("%-10s %-8s %10s %12s %14s %14s\n", "index", "keys", "threads", "Mops/s",
              "nvm_read(GB)", "rd_bytes/op");
  for (bool strings : {false, true}) {
    for (IndexKind kind : {IndexKind::kFastFair, IndexKind::kPdlArt}) {
      ConfigureNvmMachine();
      YcsbSpec spec;
      spec.kind = YcsbKind::kC;
      spec.record_count = scale.keys;
      spec.op_count = scale.ops;
      spec.threads = threads;
      spec.string_keys = strings;
      spec.zipfian = false;  // the paper's Figure 4 uses uniform lookups
      spec.read_batch = BenchReadBatch();
      auto index = MakeLoaded(kind, spec);
      if (index == nullptr) {
        return 1;
      }
      YcsbResult r = YcsbDriver::Run(index.get(), spec);
      std::printf("%-10s %-8s %10u %12.3f %14.3f %14.1f\n", index->Name().c_str(),
                  strings ? "string" : "int", threads, r.mops,
                  static_cast<double>(r.nvm.media_read_bytes) / 1e9,
                  static_cast<double>(r.nvm.media_read_bytes) /
                      static_cast<double>(r.ops));
      std::fflush(stdout);
      BenchJsonAdd(YcsbJsonRow(index->Name(), spec, r, index.get()));
      CleanupIndex(std::move(index), kind);
    }
  }
  std::printf("# paper shape: FastFair reads ~7.7x more NVM for string keys;"
              " PDL-ART ~3.7x higher lookup throughput\n");
  BenchJsonWrite("fig04_lookup_bw");
  return 0;
}
