// Ablation: batched read pipeline (DESIGN.md §6f) vs per-key Lookup.
//
// Phase 1 (uniform): the same uniform key sequence driven once through looped
// Lookup and once through MultiGet(batch) at the configured thread count with
// the NVM latency model on -- the acceptance bar is >= 1.15x throughput at
// batch=16 / 4 threads.
//
// Phase 2 (clustered): batches of consecutive keys (dense int keyspace, so a
// batch lands on one or two data nodes) -- here node-grouping shows up as
// fewer lock acquisitions + epoch enters per key (acceptance: >= 2x fewer).
//
// Both phases replay IDENTICAL access sequences in both modes (same RNG
// seeds); workers are respawned per phase, so each starts with cold modeled
// read caches.
#include <atomic>
#include <span>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/pactree/pactree.h"
#include "src/runtime/workers.h"

using namespace pactree;

namespace {

struct PhaseResult {
  double mops = 0;
  double locks_per_key = 0;
  double epochs_per_key = 0;
  double groups_per_batch = 0;
  uint64_t group_retries = 0;
  uint64_t ops = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Ablation", "batched read pipeline: looped Lookup vs MultiGet");
  BenchScale scale = ReadScale(1'000'000, 400'000, "4");
  uint32_t threads = scale.threads.back();
  const uint64_t batch = BenchReadBatch() > 1 ? BenchReadBatch() : 16;

  ConfigureNvmMachine();  // latency emulation on: misses stall, prefetches don't
  PacTree::Destroy("ablmget");
  PacTreeOptions o;
  o.name = "ablmget";
  o.pool_id_base = 460;
  o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
  auto tree = PacTree::Open(o);
  if (tree == nullptr) {
    return 1;
  }
  // Dense integer keys (NOT the mixed KeySet universe): the clustered phase
  // needs "base..base+15" to be adjacent in key order so a batch covers one
  // or two data nodes.
  RunWorkerThreads(threads, [&](uint32_t t) {
    AssignWorkerThread(t);
    uint64_t from = scale.keys * t / threads;
    uint64_t to = scale.keys * (t + 1) / threads;
    for (uint64_t i = from; i < to; ++i) {
      tree->Insert(Key::FromInt(i), i + 1);
    }
  });
  tree->DrainSmoLogs();

  // One phase: every worker replays per/batch batches; |clustered| batches
  // are |batch| consecutive keys from a random base, uniform batches are
  // independent picks. |batched| switches MultiGet vs a per-key loop over
  // the very same keys.
  auto run_phase = [&](bool batched, bool clustered) {
    PhaseResult res;
    PacTreeStats s0 = tree->Stats();
    std::atomic<bool> start{false};
    uint64_t t0 = 0;
    const uint64_t per = scale.ops / threads / batch * batch;
    RunWorkerThreads(
        threads,
        [&](uint32_t t) {
          AssignWorkerThread(t);
          Rng rng(777 * t + 13);  // same sequence in both modes
          std::vector<Key> kb(batch);
          std::vector<uint64_t> vb(batch);
          std::vector<Status> sb(batch);
          while (!start.load(std::memory_order_acquire)) {
            CpuRelax();
          }
          for (uint64_t b = 0; b < per / batch; ++b) {
            if (clustered) {
              uint64_t base = rng.Uniform(scale.keys - batch);
              for (uint64_t j = 0; j < batch; ++j) {
                kb[j] = Key::FromInt(base + j);
              }
            } else {
              for (uint64_t j = 0; j < batch; ++j) {
                kb[j] = Key::FromInt(rng.Uniform(scale.keys));
              }
            }
            if (batched) {
              tree->MultiGet(std::span<const Key>(kb.data(), kb.size()),
                             vb.data(), sb.data());
            } else {
              for (uint64_t j = 0; j < batch; ++j) {
                uint64_t v;
                tree->Lookup(kb[j], &v);
              }
            }
          }
        },
        [&] {
          t0 = NowNs();
          start.store(true, std::memory_order_release);
        });
    double secs = static_cast<double>(NowNs() - t0) / 1e9;
    PacTreeStats s1 = tree->Stats();
    res.ops = per * threads;
    res.mops = static_cast<double>(res.ops) / 1e6 / secs;
    double n = static_cast<double>(res.ops);
    res.locks_per_key = static_cast<double>(s1.node_locks - s0.node_locks) / n;
    res.epochs_per_key = static_cast<double>(s1.epoch_enters - s0.epoch_enters) / n;
    uint64_t batches = s1.multiget_batches - s0.multiget_batches;
    if (batches > 0) {
      res.groups_per_batch =
          static_cast<double>(s1.multiget_node_groups - s0.multiget_node_groups) /
          static_cast<double>(batches);
    }
    res.group_retries = s1.multiget_group_retries - s0.multiget_group_retries;
    return res;
  };

  std::printf("%-10s %-8s %8s %10s %11s %12s %14s\n", "phase", "mode", "Mops/s",
              "locks/key", "epochs/key", "groups/batch", "group_retries");
  auto print = [&](const char* phase, const char* mode, const PhaseResult& r) {
    std::printf("%-10s %-8s %8.3f %10.3f %11.3f %12.2f %14llu\n", phase, mode,
                r.mops, r.locks_per_key, r.epochs_per_key, r.groups_per_batch,
                static_cast<unsigned long long>(r.group_retries));
    std::fflush(stdout);
    BenchJsonAdd(JsonRow()
                     .Str("phase", phase)
                     .Str("mode", mode)
                     .U64("threads", threads)
                     .U64("batch", batch)
                     .U64("ops", r.ops)
                     .F64("mops", r.mops)
                     .F64("locks_per_key", r.locks_per_key)
                     .F64("epochs_per_key", r.epochs_per_key)
                     .F64("groups_per_batch", r.groups_per_batch)
                     .U64("group_retries", r.group_retries));
  };

  PhaseResult ul = run_phase(/*batched=*/false, /*clustered=*/false);
  print("uniform", "looped", ul);
  PhaseResult ub = run_phase(/*batched=*/true, /*clustered=*/false);
  print("uniform", "batched", ub);
  double speedup = ub.mops / ul.mops;
  std::printf("# uniform speedup: %.2fx (acceptance: >= 1.15x at batch=16, 4 threads)\n",
              speedup);

  PhaseResult cl = run_phase(/*batched=*/false, /*clustered=*/true);
  print("clustered", "looped", cl);
  PhaseResult cb = run_phase(/*batched=*/true, /*clustered=*/true);
  print("clustered", "batched", cb);
  double amort = (cl.locks_per_key + cl.epochs_per_key) /
                 (cb.locks_per_key + cb.epochs_per_key);
  std::printf("# clustered lock+epoch amortization: %.2fx fewer per key "
              "(acceptance: >= 2x)\n", amort);

  BenchJsonAdd(JsonRow()
                   .Str("phase", "summary")
                   .F64("uniform_speedup", speedup)
                   .F64("clustered_amortization", amort));
  BenchJsonWrite("abl_multiget");
  tree.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("ablmget");
  return speedup >= 1.15 && amort >= 2.0 ? 0 : 1;
}
