// §6.7: impact of the asynchronous search-layer update -- jump-node distance.
//
// Write-intensive workload at the highest configured thread count; afterwards
// the jump-hop histogram shows how far lookups had to walk the data layer from
// the (possibly stale) search-layer result. The paper reports 68% direct hits
// and 30% one-hop under 112 threads.
#include "bench/bench_common.h"
#include "src/pactree/pactree.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Section 6.7", "jump-node distance under async search-layer updates");
  BenchScale scale = ReadScale(400'000, 400'000);
  uint32_t threads = scale.threads.back();
  ConfigureNvmMachine();
  PacTree::Destroy("sec67");
  PacTreeOptions o;
  o.name = "sec67";
  o.pool_id_base = 420;
  o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
  auto tree = PacTree::Open(o);
  if (tree == nullptr) {
    return 1;
  }

  // Local adapter; runs the write-heavy phase through the YCSB driver.
  struct Adapter : RangeIndex {
    PacTree* t;
    explicit Adapter(PacTree* t) : t(t) {}
    Status Insert(const Key& k, uint64_t v) override { return t->Insert(k, v); }
    Status Lookup(const Key& k, uint64_t* v) const override { return t->Lookup(k, v); }
    Status Remove(const Key& k) override { return t->Remove(k); }
    size_t Scan(const Key& s, size_t n,
                std::vector<std::pair<Key, uint64_t>>* out) const override {
      return t->Scan(s, n, out);
    }
    uint64_t Size() const override { return t->Size(); }
    std::string Name() const override { return "PACTree"; }
  } adapter(tree.get());

  YcsbSpec spec;
  spec.kind = YcsbKind::kAInsert;  // insert-heavy: worst case for SL lag
  spec.record_count = scale.keys;
  spec.op_count = scale.ops;
  spec.threads = threads;
  spec.zipfian = false;
  YcsbDriver::Load(&adapter, spec);
  PacTreeStats s0 = tree->Stats();
  YcsbDriver::Run(&adapter, spec);
  PacTreeStats s1 = tree->Stats();

  uint64_t hops[4];
  uint64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    hops[i] = s1.jump_hops[i] - s0.jump_hops[i];
    total += hops[i];
  }
  std::printf("%-12s %12s %10s\n", "distance", "count", "share");
  const char* labels[4] = {"direct", "1 hop", "2 hops", ">=3 hops"};
  for (int i = 0; i < 4; ++i) {
    std::printf("%-12s %12llu %9.1f%%\n", labels[i],
                static_cast<unsigned long long>(hops[i]),
                100.0 * static_cast<double>(hops[i]) / static_cast<double>(total));
  }
  std::printf("# paper: 68%% direct, 30%% one hop (112 threads, W-A)\n");
  std::printf("# smo: applied=%llu ring_full_waits=%llu\n",
              static_cast<unsigned long long>(s1.smo_applied),
              static_cast<unsigned long long>(s1.smo_ring_full_waits));
  PrintMaintenanceStats();
  tree.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("sec67");
  return 0;
}
