// Figure 13: tail-latency comparison (uniform integer keys).
//
// 10% of operations are latency-sampled (paper §6.4). PACTree's asynchronous
// SMOs keep writes off the long path; the paper reports up to 20x lower
// 99.99th-percentile latency on write-intensive workloads.
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 13", "latency percentiles per index and workload");
  BenchScale scale = ReadScale(1'000'000, 300'000, "4");
  uint32_t threads = scale.threads.back();
  std::printf("%-10s %-5s %10s %10s %10s %10s %10s %10s\n", "index", "wl", "p50",
              "p90", "p99", "p99.9", "p99.99", "max(ns)");
  for (YcsbKind wl : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC, YcsbKind::kE}) {
    for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kBzTree,
                           IndexKind::kFastFair, IndexKind::kFpTree}) {
      ConfigureNvmMachine();
      YcsbSpec spec;
      spec.kind = wl;
      spec.record_count = scale.keys;
      spec.op_count = scale.ops;
      spec.threads = threads;
      spec.string_keys = false;
      spec.zipfian = false;  // uniform, like the paper's Figure 13
      spec.sample_rate = 0.1;
      auto index = MakeLoaded(kind, spec);
      if (index == nullptr) {
        continue;
      }
      YcsbResult r = YcsbDriver::Run(index.get(), spec);
      const LatencyHistogram& h = r.latency;
      std::printf("%-10s %-5s %10llu %10llu %10llu %10llu %10llu %10llu\n",
                  index->Name().c_str(), YcsbKindName(wl),
                  static_cast<unsigned long long>(h.Percentile(50)),
                  static_cast<unsigned long long>(h.Percentile(90)),
                  static_cast<unsigned long long>(h.Percentile(99)),
                  static_cast<unsigned long long>(h.Percentile(99.9)),
                  static_cast<unsigned long long>(h.Percentile(99.99)),
                  static_cast<unsigned long long>(h.Max()));
      std::fflush(stdout);
      CleanupIndex(std::move(index), kind);
    }
  }
  std::printf("# paper shape: PACTree up to 20x lower p99.99 on write-heavy mixes;\n"
              "# FPTree worst on W-E (scan-time sorting)\n");
  return 0;
}
