// Ablation: DRAM write absorption (src/absorb).
//
// With absorption on, an acked write costs one sequential 128-byte op-log
// append; the data-layer slot writes happen later in key-sorted batches where
// ops targeting the same node coalesce (adjacent slots share 256-byte
// XPLines, the valid bitmap is published once per node per batch instead of
// once per op). The win is therefore a function of write locality: this
// ablation runs an upsert-heavy workload over several key-domain sizes and
// reports emulated media write bytes per acked op, absorb off vs on.
//
// Full-ring drain batches (--absorb's default here) maximize ops-per-node;
// shrink the domain (more upserts per key) to widen the gap, grow it toward
// uniform-random inserts to watch the advantage fade.
#include <cstring>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/pactree/pactree.h"
#include "src/pmem/heap.h"

using namespace pactree;

namespace {

struct RunResult {
  uint64_t media_bytes;
  double ns_per_op;
};

RunResult Run(bool absorb, uint16_t pool_base, const std::vector<uint64_t>& keys) {
  PacTreeOptions o;
  o.name = "abl_absorb";
  o.pool_id_base = pool_base;
  o.pool_size = 256 << 20;
  o.absorb_writes = absorb;
  o.absorb_drain_batch = kAbsorbLogEntries;  // full-ring sorted batches
  PacTree::Destroy(o.name);
  auto tree = PacTree::Open(o);
  if (tree == nullptr) {
    std::fprintf(stderr, "failed to open abl_absorb tree\n");
    std::exit(1);
  }
  NvmStatsSnapshot before = tree->data_heap()->MediaStats();
  before += tree->log_heap()->MediaStats();
  uint64_t t0 = NowNs();
  for (uint64_t k : keys) {
    tree->Insert(Key::FromInt(k), k);
  }
  tree->DrainAbsorb();  // end-to-end: the deferred drain is part of the cost
  uint64_t t1 = NowNs();
  NvmStatsSnapshot after = tree->data_heap()->MediaStats();
  after += tree->log_heap()->MediaStats();
  if (absorb) {
    PrintAbsorbStats(tree->Stats().absorb);
    PrintMaintenanceStats("abl_absorb/absorb");
  }
  tree.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("abl_absorb");
  RunResult r;
  r.media_bytes = after.media_write_bytes - before.media_write_bytes;
  r.ns_per_op = static_cast<double>(t1 - t0) / static_cast<double>(keys.size());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  // This binary sets absorb_writes per run itself; a stray PAC_ABSORB (or this
  // binary's own --absorb flag) must not force the "off" arm on.
  unsetenv("PAC_ABSORB");
  Banner("Ablation", "write absorption: media write bytes per acked upsert, off vs on");
  ConfigureNvmMachine(/*latency=*/false);
  BenchScale scale = ReadScale(/*default_keys=*/50'000, /*default_ops=*/200'000);

  std::printf("%-10s %10s %18s %18s %8s %14s %14s\n", "domain", "ops", "off(B/op)",
              "on(B/op)", "ratio", "off(ns/op)", "on(ns/op)");
  uint16_t pool_base = 840;
  for (uint64_t domain : {scale.keys / 25, scale.keys / 5, scale.keys}) {
    if (domain == 0) {
      continue;
    }
    Rng rng(domain);
    std::vector<uint64_t> keys(scale.ops);
    for (auto& k : keys) {
      k = rng.Uniform(domain);
    }
    // Distinct pool ids per run: the per-(thread,pool) flush-combining windows
    // of the media model must not leak state between arms.
    RunResult off = Run(false, pool_base, keys);
    RunResult on = Run(true, static_cast<uint16_t>(pool_base + 30), keys);
    pool_base = static_cast<uint16_t>(pool_base + 60);
    double off_b = static_cast<double>(off.media_bytes) / static_cast<double>(keys.size());
    double on_b = static_cast<double>(on.media_bytes) / static_cast<double>(keys.size());
    std::printf("%-10llu %10zu %18.1f %18.1f %7.2fx %14.1f %14.1f\n",
                static_cast<unsigned long long>(domain), keys.size(), off_b, on_b,
                off_b / on_b, off.ns_per_op, on.ns_per_op);
  }
  std::printf("# absorption trades per-op slot flushes for one sequential log append\n"
              "# plus batched, XPLine-coalesced drains (PAC guideline: avoid small\n"
              "# random media writes); the gap narrows as the key domain grows\n");
  return 0;
}
