// Google-benchmark microbenchmarks for the substrate primitives: persistence
// ops, crash-consistent vs transient allocation, version locks, PMwCAS, and
// single-threaded index point operations. Complements the figure benches.
#include <benchmark/benchmark.h>

#include "src/art/art.h"
#include "src/nvm/config.h"
#include "src/nvm/persist.h"
#include "src/pactree/pactree.h"
#include "src/pmem/heap.h"
#include "src/pmem/registry.h"
#include "src/pmwcas/pmwcas.h"
#include "src/sync/epoch.h"
#include "src/sync/gen_sync.h"
#include "src/sync/version_lock.h"
#include "src/workload/keyset.h"

namespace pactree {
namespace {

std::unique_ptr<PmemHeap> MakeHeap(const char* name, uint16_t base,
                                   bool crash_consistent = true) {
  GlobalNvmConfig() = NvmConfig();
  PmemHeap::Destroy(name);
  PmemHeapOptions o;
  o.pool_id_base = base;
  o.pool_size = 512 << 20;
  o.crash_consistent = crash_consistent;
  auto heap = PmemHeap::OpenOrCreate(name, o);
  AdvanceGenerations({heap.get()});
  return heap;
}

void BM_PersistFence64B(benchmark::State& state) {
  auto heap = MakeHeap("mb_persist", 500);
  auto* buf = static_cast<char*>(heap->Alloc(4096).get());
  size_t off = 0;
  for (auto _ : state) {
    buf[off] = static_cast<char>(off);
    PersistFence(buf + off, 64);
    off = (off + 64) % 4096;
  }
  PmemHeap::Destroy("mb_persist");
}
BENCHMARK(BM_PersistFence64B);

void BM_AllocFree_CrashConsistent(benchmark::State& state) {
  auto heap = MakeHeap("mb_alloc_cc", 510, true);
  for (auto _ : state) {
    PPtr<void> p = heap->Alloc(64);
    heap->Free(p);
  }
  PmemHeap::Destroy("mb_alloc_cc");
}
BENCHMARK(BM_AllocFree_CrashConsistent);

void BM_AllocFree_Transient(benchmark::State& state) {
  auto heap = MakeHeap("mb_alloc_tr", 520, false);
  for (auto _ : state) {
    PPtr<void> p = heap->Alloc(64);
    heap->Free(p);
  }
  PmemHeap::Destroy("mb_alloc_tr");
}
BENCHMARK(BM_AllocFree_Transient);

void BM_VersionLockReadCycle(benchmark::State& state) {
  OptVersionLock lock;
  for (auto _ : state) {
    uint64_t t = lock.ReadLock();
    benchmark::DoNotOptimize(t);
    benchmark::DoNotOptimize(lock.Validate(t));
  }
}
BENCHMARK(BM_VersionLockReadCycle);

void BM_VersionLockWriteCycle(benchmark::State& state) {
  OptVersionLock lock;
  for (auto _ : state) {
    lock.WriteLock();
    lock.WriteUnlock();
  }
}
BENCHMARK(BM_VersionLockWriteCycle);

void BM_Pmwcas2Words(benchmark::State& state) {
  auto heap = MakeHeap("mb_pmwcas", 530);
  auto* anchor = heap->Root<uint64_t>();
  *anchor = 0;
  PmwcasPool pool(heap.get(), anchor, 1024);
  auto* words = static_cast<uint64_t*>(heap->Alloc(256).get());
  for (auto _ : state) {
    EpochGuard guard;
    uint64_t a = pool.ReadWord(&words[0]);
    uint64_t b = pool.ReadWord(&words[8]);
    PmwcasWordEntry e[2] = {{ToPPtr(&words[0]).raw, a, a + 1},
                            {ToPPtr(&words[8]).raw, b, b + 1}};
    pool.Run(e, 2);
  }
  PmemHeap::Destroy("mb_pmwcas");
}
BENCHMARK(BM_Pmwcas2Words);

void BM_ArtInsert(benchmark::State& state) {
  auto heap = MakeHeap("mb_art", 540);
  PdlArt art(heap.get(), heap->Root<ArtTreeRoot>());
  KeySet ks(false);
  uint64_t i = 0;
  for (auto _ : state) {
    art.Insert(ks.At(i), i + 1);
    ++i;
  }
  EpochManager::Instance().DrainAll();
  PmemHeap::Destroy("mb_art");
}
BENCHMARK(BM_ArtInsert);

void BM_PacTreeInsert(benchmark::State& state) {
  GlobalNvmConfig() = NvmConfig();
  PacTree::Destroy("mb_pactree");
  PacTreeOptions o;
  o.name = "mb_pactree";
  o.pool_id_base = 550;
  o.pool_size = 512 << 20;
  auto tree = PacTree::Open(o);
  KeySet ks(false);
  uint64_t i = 0;
  for (auto _ : state) {
    tree->Insert(ks.At(i), i + 1);
    ++i;
  }
  tree.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("mb_pactree");
}
BENCHMARK(BM_PacTreeInsert);

void BM_PacTreeLookup(benchmark::State& state) {
  GlobalNvmConfig() = NvmConfig();
  PacTree::Destroy("mb_pactree2");
  PacTreeOptions o;
  o.name = "mb_pactree2";
  o.pool_id_base = 560;
  o.pool_size = 512 << 20;
  auto tree = PacTree::Open(o);
  KeySet ks(false);
  constexpr uint64_t kN = 200'000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree->Insert(ks.At(i), i);
  }
  tree->DrainSmoLogs();
  uint64_t i = 0;
  for (auto _ : state) {
    uint64_t v;
    tree->Lookup(ks.At(i % kN), &v);
    ++i;
    benchmark::DoNotOptimize(v);
  }
  tree.reset();
  EpochManager::Instance().DrainAll();
  PacTree::Destroy("mb_pactree2");
}
BENCHMARK(BM_PacTreeLookup);

}  // namespace
}  // namespace pactree

BENCHMARK_MAIN();
