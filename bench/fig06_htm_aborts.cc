// Figure 6: FP-Tree HTM aborts vs data-set size and thread count (GC3).
//
// 50% lookup + 50% insert. Conflict aborts come from real concurrent writers
// via the software-HTM lock table; capacity/TLB aborts are modeled with a
// per-accessed-line spurious-abort rate scaled by the index footprint
// (substitution documented in DESIGN.md).
#include "bench/bench_common.h"
#include "src/baselines/fptree.h"

using namespace pactree;

namespace {

// Local adapter so the bench can read the concrete tree's HTM statistics.
class FpTreeBenchIndex : public RangeIndex {
 public:
  explicit FpTreeBenchIndex(std::unique_ptr<FpTree> tree) : tree_(std::move(tree)) {}
  Status Insert(const Key& k, uint64_t v) override { return tree_->Insert(k, v); }
  Status Lookup(const Key& k, uint64_t* v) const override { return tree_->Lookup(k, v); }
  Status Remove(const Key& k) override { return tree_->Remove(k); }
  size_t Scan(const Key& s, size_t n,
              std::vector<std::pair<Key, uint64_t>>* out) const override {
    return tree_->Scan(s, n, out);
  }
  uint64_t Size() const override { return tree_->Size(); }
  std::string Name() const override { return "FPTree"; }
  FpTree* tree() { return tree_.get(); }

 private:
  std::unique_ptr<FpTree> tree_;
};

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 6", "FP-Tree throughput and HTM aborts/op: small vs large data set");
  BenchScale scale = ReadScale(1'000'000, 300'000);
  uint64_t small_keys = std::max<uint64_t>(scale.keys / 8, 10'000);
  std::printf("%-9s %8s %10s %12s %12s %12s %12s\n", "keys", "threads", "Mops/s",
              "aborts/op", "conflict", "spurious", "fallbacks");
  for (uint64_t keys : {small_keys, scale.keys}) {
    for (uint32_t t : scale.threads) {
      ConfigureNvmMachine();
      // TLB/capacity model: abort probability per accessed line grows with the
      // index footprint (a 64M-key FP-Tree walks far outside the TLB reach).
      double footprint_mb = static_cast<double>(keys) * 24.0 / 1e6;
      double rate = std::min(0.002, footprint_mb / 6.0 * 1e-4);
      FpTree::Destroy("fig06");
      FpTreeOptions o;
      o.name = "fig06";
      o.pool_id_base = 410;
      o.pool_size = std::max<size_t>(256ULL << 20, keys * 64);
      o.htm.spurious_abort_per_line = rate;
      auto tree = FpTree::Open(o);
      if (tree == nullptr) {
        return 1;
      }
      FpTreeBenchIndex index(std::move(tree));
      YcsbSpec spec;
      spec.kind = YcsbKind::kAInsert;
      spec.record_count = keys;
      spec.op_count = scale.ops;
      spec.threads = t;
      spec.string_keys = false;
      spec.zipfian = false;  // the paper uses uniform random keys here
      YcsbDriver::Load(&index, spec);
      SoftHtmStats s0 = index.tree()->HtmStats();
      YcsbResult r = YcsbDriver::Run(&index, spec);
      SoftHtmStats s1 = index.tree()->HtmStats();
      uint64_t aborts = (s1.conflict_aborts - s0.conflict_aborts) +
                        (s1.capacity_aborts - s0.capacity_aborts) +
                        (s1.spurious_aborts - s0.spurious_aborts);
      std::printf("%-9llu %8u %10.3f %12.3f %12llu %12llu %12llu\n",
                  static_cast<unsigned long long>(keys), t, r.mops,
                  static_cast<double>(aborts) / static_cast<double>(r.ops),
                  static_cast<unsigned long long>(s1.conflict_aborts - s0.conflict_aborts),
                  static_cast<unsigned long long>(s1.spurious_aborts - s0.spurious_aborts),
                  static_cast<unsigned long long>(s1.fallback_acquisitions -
                                                  s0.fallback_acquisitions));
      std::fflush(stdout);
      EpochManager::Instance().DrainAll();
      FpTree::Destroy("fig06");
    }
  }
  std::printf("# paper shape: aborts/op grow with data size and threads,"
              " crushing FP-Tree at high concurrency\n");
  return 0;
}
