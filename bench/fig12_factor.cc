// Figure 12: factor analysis of the PACTree design.
//
// Starting from PDL-ART with a single pool ("ART(SC)"), features are added one
// at a time: per-NUMA pools, slotted leaf nodes (the PACTree data layer),
// selective persistence of the permutation array, asynchronous search-layer
// update, and finally a DRAM-resident search layer for reference (the paper
// finds <10% benefit, justifying NVM placement).
#include "bench/bench_common.h"

using namespace pactree;

namespace {

struct Variant {
  const char* label;
  IndexKind kind;
  bool per_numa;
  bool selective_persistence;
  bool async_update;
  bool dram_sl;
};

constexpr Variant kVariants[] = {
    {"ART(SC)", IndexKind::kPdlArt, false, false, false, false},
    {"+PerNUMA", IndexKind::kPdlArt, true, false, false, false},
    {"+SlottedLeaf", IndexKind::kPacTree, true, false, false, false},
    {"+SelectPersist", IndexKind::kPacTree, true, true, false, false},
    {"+AsyncUpdate", IndexKind::kPacTree, true, true, true, false},
    {"DRAM-SL", IndexKind::kPacTree, true, true, true, true},
};

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 12", "factor analysis: ART(SC) -> full PACTree -> DRAM search layer");
  BenchScale scale = ReadScale(1'000'000, 300'000, "4");
  uint32_t threads = scale.threads.back();
  std::printf("%-16s", "variant");
  for (const char* wl : {"L-A", "W-A", "W-B", "W-C", "W-E"}) {
    std::printf(" %10s", wl);
  }
  std::printf("   (Mops/s, string keys, Zipfian, %u threads)\n", threads);

  for (const Variant& v : kVariants) {
    ConfigureNvmMachine();
    YcsbSpec spec;
    spec.record_count = scale.keys;
    spec.op_count = scale.ops;
    spec.threads = threads;
    spec.string_keys = true;
    spec.zipfian = true;

    IndexFactoryOptions o;
    o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
    o.per_numa_pools = v.per_numa;
    o.pactree_async_update = v.async_update;
    o.pactree_selective_persistence = v.selective_persistence;
    o.pactree_dram_search_layer = v.dram_sl;
    auto index = CreateIndex(v.kind, o);
    if (index == nullptr) {
      continue;
    }
    std::printf("%-16s", v.label);
    spec.kind = YcsbKind::kLoadA;
    YcsbResult load = YcsbDriver::Load(index.get(), spec);
    std::printf(" %10.3f", load.mops);
    index->Drain();
    for (YcsbKind wl : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC, YcsbKind::kE}) {
      spec.kind = wl;
      YcsbResult r = YcsbDriver::Run(index.get(), spec);
      std::printf(" %10.3f", r.mops);
      std::fflush(stdout);
    }
    std::printf("\n");
    if (v.async_update) {
      // Per-updater replay accounting for the async variants: how many SMOs
      // each per-NUMA service applied, and at what per-pass latency.
      PrintMaintenanceStats();
    }
    CleanupIndex(std::move(index), v.kind);
  }
  std::printf("# paper shape: +PerNUMA up to 2x on writes, +SlottedLeaf up to 2.5x,\n"
              "# +SelectPersist ~11%% on scans, +AsyncUpdate ~30%% on writes,\n"
              "# DRAM-SL < 10%% (not worth losing instant recovery)\n");
  return 0;
}
