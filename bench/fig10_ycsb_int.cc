// Figure 10: YCSB scalability, INTEGER keys (8 bytes), Zipfian distribution.
// Same as Figure 9 plus FPTree (integer keys only).
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 10", "YCSB (integer keys, Zipfian) thread-scaling, all indexes");
  BenchScale scale = ReadScale(1'000'000, 300'000);
  YcsbDriver::PrintHeader();
  for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kBzTree,
                         IndexKind::kFastFair, IndexKind::kFpTree}) {
    for (uint32_t t : scale.threads) {
      ConfigureNvmMachine();
      YcsbSpec spec;
      spec.record_count = scale.keys;
      spec.op_count = scale.ops;
      spec.threads = t;
      spec.string_keys = false;
      spec.zipfian = true;

      spec.kind = YcsbKind::kLoadA;
      IndexFactoryOptions o;
      o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
      auto index = CreateIndex(kind, o);
      if (index == nullptr) {
        std::fprintf(stderr, "skipping %s\n", IndexKindName(kind));
        continue;
      }
      YcsbResult load = YcsbDriver::Load(index.get(), spec);
      YcsbDriver::PrintRow(index->Name(), spec, load);
      index->Drain();

      for (YcsbKind wl : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC, YcsbKind::kE}) {
        spec.kind = wl;
        // --batch=N batches the read-heavy mixes (B/C/E) through
        // MultiGet/MultiScan; A stays per-key (write-dominated).
        spec.read_batch = wl == YcsbKind::kA ? 1 : BenchReadBatch();
        YcsbResult r = YcsbDriver::Run(index.get(), spec);
        YcsbDriver::PrintRow(index->Name(), spec, r);
        BenchJsonAdd(YcsbJsonRow(index->Name(), spec, r, index.get()));
      }
      CleanupIndex(std::move(index), kind);
    }
  }
  std::printf("# paper shape: PACTree leads; FPTree collapses at high thread counts\n"
              "# (HTM aborts); FastFair competitive on integer keys only\n");
  BenchJsonWrite("fig10_ycsb_int");
  return 0;
}
