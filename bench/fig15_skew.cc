// Figure 15: PACTree under varying Zipfian skew.
//
// 50% lookup + 50% update, and 50% lookup + 50% insert, for theta in
// {0.5 .. 0.99} at two thread counts. The paper finds updates get FASTER under
// high skew (cache locality of hot data nodes) and inserts stay stable
// (asynchronous search-layer updates).
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 15", "PACTree throughput vs Zipfian coefficient");
  BenchScale scale = ReadScale(500'000, 150'000, "2 4");
  std::printf("%-22s %8s", "mix", "threads");
  const double thetas[] = {0.5, 0.6, 0.7, 0.8, 0.9, 0.99};
  for (double th : thetas) {
    std::printf(" %8.2f", th);
  }
  std::printf("   (Mops/s)\n");
  for (YcsbKind mix : {YcsbKind::kA, YcsbKind::kAInsert}) {
    for (uint32_t t : scale.threads) {
      std::printf("%-22s %8u",
                  mix == YcsbKind::kA ? "50%lookup+50%update" : "50%lookup+50%insert",
                  t);
      for (double theta : thetas) {
        ConfigureNvmMachine();
        YcsbSpec spec;
        spec.kind = mix;
        spec.record_count = scale.keys;
        spec.op_count = scale.ops;
        spec.threads = t;
        spec.string_keys = false;
        spec.zipfian = true;
        spec.zipf_theta = theta;
        auto index = MakeLoaded(IndexKind::kPacTree, spec);
        if (index == nullptr) {
          return 1;
        }
        YcsbResult r = YcsbDriver::Run(index.get(), spec);
        std::printf(" %8.3f", r.mops);
        std::fflush(stdout);
        CleanupIndex(std::move(index), IndexKind::kPacTree);
      }
      std::printf("\n");
    }
  }
  return 0;
}
