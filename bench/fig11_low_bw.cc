// Figure 11: performance on a LOW-BANDWIDTH NVM machine.
//
// The paper's second platform has ~3x less cumulative NVM bandwidth; the gap
// between PACTree and PDL-ART widens because asynchronous search-layer updates
// save critical-path bandwidth. Emulated here by throttling the token buckets
// to one third and enabling bandwidth emulation.
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 11", "uniform YCSB on a low-bandwidth NVM machine (1/3 bandwidth)");
  BenchScale scale = ReadScale(1'000'000, 200'000, "4");
  uint32_t threads = scale.threads.back();
  YcsbDriver::PrintHeader();
  for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kBzTree,
                         IndexKind::kFastFair, IndexKind::kFpTree}) {
    ConfigureNvmMachine(/*latency=*/true, /*bandwidth=*/true);
    GlobalNvmConfig().read_bw_mbps = 2000;  // ~1/3 of the default machine
    GlobalNvmConfig().write_bw_mbps = 700;
    BandwidthModel::Instance().Reconfigure();

    YcsbSpec spec;
    spec.record_count = scale.keys;
    spec.op_count = scale.ops;
    spec.threads = threads;
    spec.string_keys = false;
    spec.zipfian = false;  // the paper's Figure 11 uses uniform workloads

    spec.kind = YcsbKind::kLoadA;
    IndexFactoryOptions o;
    o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
    auto index = CreateIndex(kind, o);
    if (index == nullptr) {
      continue;
    }
    YcsbResult load = YcsbDriver::Load(index.get(), spec);
    YcsbDriver::PrintRow(index->Name(), spec, load);
    index->Drain();
    for (YcsbKind wl : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC, YcsbKind::kE}) {
      spec.kind = wl;
      YcsbResult r = YcsbDriver::Run(index.get(), spec);
      YcsbDriver::PrintRow(index->Name(), spec, r);
    }
    CleanupIndex(std::move(index), kind);
  }
  std::printf("# paper shape: PACTree's lead over PDL-ART widens (+0.5x writes,\n"
              "# +1.5x reads) when NVM bandwidth is the binding constraint\n");
  return 0;
}
