// Figure 2: directory vs. snoop cache-coherence protocol (finding FH5).
//
// FastFair, YCSB-A, integer keys, thread sweep. Under the directory protocol a
// remote read miss writes coherence state to the 3D-XPoint media, consuming
// the scarce write bandwidth; with bandwidth emulation enabled the directory
// curve plateaus while snoop keeps scaling -- the paper's meltdown.
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 2", "FastFair YCSB-A throughput: directory vs snoop coherence");
  BenchScale scale = ReadScale(500'000, 300'000);
  std::printf("%-10s %10s %14s %14s %16s\n", "protocol", "threads", "Mops/s",
              "remote_reads", "directory_wr(MB)");
  for (CoherenceProtocol proto :
       {CoherenceProtocol::kDirectory, CoherenceProtocol::kSnoop}) {
    for (uint32_t t : scale.threads) {
      ConfigureNvmMachine(/*latency=*/true, /*bandwidth=*/true);
      // The meltdown only shows when the workload is bandwidth-bound: model a
      // single-DIMM-per-node configuration with scarce write bandwidth.
      GlobalNvmConfig().read_bw_mbps = 350;
      GlobalNvmConfig().write_bw_mbps = 110;
      BandwidthModel::Instance().Reconfigure();
      GlobalNvmConfig().coherence = proto;
      YcsbSpec spec;
      spec.kind = YcsbKind::kA;
      spec.record_count = scale.keys;
      spec.op_count = scale.ops;
      spec.threads = t;
      spec.string_keys = false;
      spec.zipfian = true;
      auto index = MakeLoaded(IndexKind::kFastFair, spec);
      if (index == nullptr) {
        return 1;
      }
      YcsbResult r = YcsbDriver::Run(index.get(), spec);
      std::printf("%-10s %10u %14.3f %14llu %16.1f\n",
                  proto == CoherenceProtocol::kDirectory ? "directory" : "snoop", t,
                  r.mops, static_cast<unsigned long long>(r.nvm.remote_reads),
                  static_cast<double>(r.nvm.directory_writes) * 64 / 1e6);
      std::fflush(stdout);
      CleanupIndex(std::move(index), IndexKind::kFastFair);
    }
  }
  return 0;
}
