// Ablation: the data node's one-byte fingerprint array (§5.2).
//
// PACTree matches a 64-byte fingerprint vector with SIMD before comparing any
// full key. This microbench measures a data-node point search with the
// fingerprint filter vs. a full linear key scan, at several occupancies.
#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/pactree/data_node.h"
#include "src/pmem/heap.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Ablation", "data-node lookup: fingerprint SIMD filter vs full key scan");
  ConfigureNvmMachine(/*latency=*/false);
  PmemHeap::Destroy("abl_fp");
  PmemHeapOptions h;
  h.pool_id_base = 440;
  h.pool_size = 16 << 20;
  auto heap = PmemHeap::OpenOrCreate("abl_fp", h);
  auto* node = static_cast<DataNode*>(heap->Alloc(sizeof(DataNode)).get());

  std::printf("%-10s %16s %16s %8s\n", "occupancy", "with_fp(ns/op)", "no_fp(ns/op)",
              "speedup");
  for (int occupancy : {16, 32, 48, 64}) {
    Rng rng(occupancy);
    std::vector<Key> keys;
    uint64_t bitmap = 0;
    std::memset(static_cast<void*>(node), 0, sizeof(DataNode));
    for (int i = 0; i < occupancy; ++i) {
      Key k = Key::FromInt(rng.Next());
      node->FillSlot(i, k, k.Fingerprint(), i);
      bitmap |= 1ULL << i;
      keys.push_back(k);
    }
    node->PublishBitmap(bitmap);

    constexpr int kProbes = 2'000'000;
    // With fingerprints (the production path).
    uint64_t t0 = NowNs();
    uint64_t sink = 0;
    for (int i = 0; i < kProbes; ++i) {
      const Key& k = keys[static_cast<size_t>(i) % keys.size()];
      sink += static_cast<uint64_t>(node->FindKey(k, k.Fingerprint()));
    }
    double with_fp = static_cast<double>(NowNs() - t0) / kProbes;

    // Without: full key comparison against every live slot.
    t0 = NowNs();
    for (int i = 0; i < kProbes; ++i) {
      const Key& k = keys[static_cast<size_t>(i) % keys.size()];
      uint64_t live = node->Bitmap();
      int found = -1;
      while (live != 0) {
        int s = __builtin_ctzll(live);
        live &= live - 1;
        if (node->keys[s] == k) {
          found = s;
          break;
        }
      }
      sink += static_cast<uint64_t>(found);
    }
    double no_fp = static_cast<double>(NowNs() - t0) / kProbes;
    std::printf("%-10d %16.1f %16.1f %7.2fx   (sink %llu)\n", occupancy, with_fp,
                no_fp, no_fp / with_fp, static_cast<unsigned long long>(sink & 1));
  }
  std::printf("# the fingerprint filter replaces O(live) 32-byte compares with two\n"
              "# AVX2 compares + (usually) one full compare (GA1)\n");
  heap.reset();
  PmemHeap::Destroy("abl_fp");
  return 0;
}
