// Figure 14: single-threaded performance (integer and string workloads).
//
// PACTree's optimistic version locks impose no overhead without contention;
// the paper reports similar-to-3x-better single-thread throughput.
#include "bench/bench_common.h"

using namespace pactree;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  Banner("Figure 14", "single-threaded throughput, integer and string keys");
  BenchScale scale = ReadScale(500'000, 300'000, "1");
  std::printf("%-10s %-8s", "index", "keys");
  for (const char* wl : {"L-A", "W-A", "W-B", "W-C", "W-E"}) {
    std::printf(" %10s", wl);
  }
  std::printf("   (Mops/s, 1 thread, Zipfian)\n");
  for (bool strings : {false, true}) {
    for (IndexKind kind : {IndexKind::kPacTree, IndexKind::kPdlArt, IndexKind::kBzTree,
                           IndexKind::kFastFair, IndexKind::kFpTree}) {
      if (strings && kind == IndexKind::kFpTree) {
        continue;  // integer keys only, as in the paper
      }
      ConfigureNvmMachine();
      YcsbSpec spec;
      spec.record_count = scale.keys;
      spec.op_count = scale.ops;
      spec.threads = 1;
      spec.string_keys = strings;
      spec.zipfian = true;

      IndexFactoryOptions o;
      o.string_keys = strings;
      o.pool_size = std::max<size_t>(512ULL << 20, scale.keys * 3072 * 2);
      auto index = CreateIndex(kind, o);
      if (index == nullptr) {
        continue;
      }
      std::printf("%-10s %-8s", index->Name().c_str(), strings ? "string" : "int");
      spec.kind = YcsbKind::kLoadA;
      YcsbResult load = YcsbDriver::Load(index.get(), spec);
      std::printf(" %10.3f", load.mops);
      index->Drain();
      for (YcsbKind wl : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC, YcsbKind::kE}) {
        spec.kind = wl;
        YcsbResult r = YcsbDriver::Run(index.get(), spec);
        std::printf(" %10.3f", r.mops);
        std::fflush(stdout);
      }
      std::printf("\n");
      CleanupIndex(std::move(index), kind);
    }
  }
  return 0;
}
